module intsched

go 1.22
