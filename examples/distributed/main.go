// Distributed scenario: three-task jobs (e.g. federated training rounds)
// spread over the top-3 ranked edge servers, scheduled by estimated
// bottleneck bandwidth — the paper's Fig 7 setting, where bandwidth-based
// ranking can prefer remote-but-uncongested servers over nearby congested
// ones.
package main

import (
	"fmt"
	"log"

	"intsched/internal/core"
	"intsched/internal/experiment"
	"intsched/internal/workload"
)

func main() {
	metrics := []core.Metric{core.MetricBandwidth, core.MetricNearest, core.MetricRandom}
	cmp, err := experiment.Compare(experiment.Scenario{
		Seed:       11,
		Workload:   workload.Distributed,
		TaskCount:  60, // scaled-down Fig 7; cmd/intbench runs the full 200
		Background: experiment.BackgroundRandom,
	}, metrics)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("distributed workload — average data transfer time per class")
	fmt.Println(cmp.ClassTable(metrics, true))

	fmt.Printf("overall transfer gain: %+.1f%% vs Nearest, %+.1f%% vs Random (paper: 28-40%% vs Nearest)\n",
		cmp.OverallGain(core.MetricBandwidth, core.MetricNearest, true)*100,
		cmp.OverallGain(core.MetricBandwidth, core.MetricRandom, true)*100)

	// Fig 8 flavor: the distribution of per-task gains.
	curve := experiment.BuildFig8Curve("distributed-bandwidth", cmp, core.MetricBandwidth)
	fmt.Printf("\nper-task completion gain vs Nearest: %.0f%% of tasks ≤0, %.0f%% ≥20%%, %.0f%% ≥60%%\n",
		curve.ZeroOrNegativeFraction()*100,
		curve.AtLeastFraction(0.20)*100,
		curve.AtLeastFraction(0.60)*100)
}
