// Serverless scenario: Function-as-a-Service offloading, where most of the
// turnaround time is network transfer. Compares the paper's INT-driven
// delay ranking against the Nearest and Random baselines on the exact same
// workload and background congestion (replayed by seed), mirroring Fig 5.
package main

import (
	"fmt"
	"log"

	"intsched/internal/core"
	"intsched/internal/experiment"
	"intsched/internal/workload"
)

func main() {
	metrics := []core.Metric{core.MetricDelay, core.MetricNearest, core.MetricRandom}
	cmp, err := experiment.Compare(experiment.Scenario{
		Seed:       7,
		Workload:   workload.Serverless,
		TaskCount:  60, // scaled-down Fig 5; cmd/intbench runs the full 200
		Background: experiment.BackgroundRandom,
	}, metrics)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("serverless workload — average task completion time per class")
	fmt.Println(cmp.ClassTable(metrics, false))

	fmt.Println("per-class gain of INT-driven delay ranking vs Nearest:")
	gains := cmp.GainByClass(core.MetricDelay, core.MetricNearest, false)
	for _, cls := range workload.Classes() {
		fmt.Printf("  %-3s %+6.1f%%\n", cls, gains[cls]*100)
	}
	fmt.Printf("\noverall: %+.1f%% vs Nearest, %+.1f%% vs Random (paper reports 17-31%% vs Nearest)\n",
		cmp.OverallGain(core.MetricDelay, core.MetricNearest, false)*100,
		cmp.OverallGain(core.MetricDelay, core.MetricRandom, false)*100)
}
