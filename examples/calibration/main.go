// Calibration: reproduce the paper's Fig 3 measurement — fixed-rate
// traffic through one P4 switch while INT probes flush the max-queue
// register and ping measures RTT — then auto-fit the two models the
// scheduler needs from it:
//
//  1. the queue→utilization curve used by bandwidth ranking, and
//  2. the queue→latency conversion factor k used by delay ranking
//     (the paper hand-sets k = 20 ms and leaves automation as future work).
package main

import (
	"fmt"
	"log"
	"time"

	"intsched/internal/experiment"
)

func main() {
	fmt.Println("sweeping utilization 0% → 100% on the dumbbell topology (20s per step)...")
	points, err := experiment.Fig3(experiment.Fig3Config{
		Duration: 20 * time.Second,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %-22s %-10s %s\n", "utilization", "mean max queue (pkts)", "peak", "mean RTT")
	for _, p := range points {
		fmt.Printf("%-12.0f %-22.1f %-10d %v\n",
			p.Utilization*100, p.MeanMaxQueue, p.PeakQueue, p.MeanRTT.Round(100*time.Microsecond))
	}

	cal, err := experiment.CalibrationFromFig3(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted queue→utilization calibration (for bandwidth ranking):")
	for _, pt := range cal.Points() {
		fmt.Printf("  queue ≥ %2d pkts  →  utilization ≈ %.0f%%\n", pt.Queue, pt.Util*100)
	}

	k, err := experiment.KFromFig3(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted queue→latency factor k = %v per queued packet\n", k)
	fmt.Println("(the paper hand-set k = 20ms; only the induced ordering matters for")
	fmt.Println("ranking, and the k-sweep ablation in cmd/intbench shows both work)")
}
