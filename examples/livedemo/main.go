// Livedemo: the real-socket INT pipeline on loopback. Boots two userspace
// soft switches, three probe agents, and the collector/scheduler daemon;
// lets telemetry build the topology; then congests one path with a
// datagram blast and watches the bandwidth ranking steer away from it.
//
// This is the same scheduler logic as the simulator examples, but over
// real UDP packets, real queues, and a real TCP query API.
package main

import (
	"fmt"
	"log"
	"time"

	"intsched/internal/live"
	"intsched/internal/wire"
)

func main() {
	overlay, err := live.StartOverlay(live.OverlaySpec{
		Scheduler: "sched",
		Switches:  []string{"sA", "sB"},
		Links:     [][2]string{{"sA", "sB"}},
		HostAttach: map[string]string{
			"dev":   "sA",
			"e1":    "sA", // near the device
			"e2":    "sB", // remote
			"sched": "sB",
		},
		RateBps:       10_000_000,
		LinkRateBps:   10_000_000,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer overlay.Close()

	fmt.Printf("collector daemon: probes udp://%s, queries tcp://%s\n",
		overlay.Daemon.UDPAddr(), overlay.Daemon.QueryAddr())

	// Let probes build the learned topology.
	fmt.Println("waiting for INT probes to map the network...")
	for i := 0; i < 100; i++ {
		if len(overlay.Daemon.Collector().Snapshot().Hosts()) == 4 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	topo := overlay.Daemon.Collector().Snapshot()
	fmt.Printf("learned hosts: %v\n", topo.Hosts())
	if path, err := topo.Path("dev", "sched"); err == nil {
		fmt.Printf("learned path dev->sched: %v\n", path)
	}

	query := func(label string) {
		resp, err := live.Query(overlay.Daemon.QueryAddr(), &wire.QueryRequest{
			From: "dev", Metric: "bandwidth", Sorted: true,
		}, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — bandwidth ranking for dev:\n", label)
		for i, c := range resp.Candidates {
			fmt.Printf("  %d. %-5s est. %5.1f Mbps (%d hops)\n",
				i+1, c.Node, c.BandwidthBps/1e6, c.Hops)
		}
	}

	query("idle network")

	// Congest sA's port toward e1 and re-query: e1 should sink.
	fmt.Println("\nblasting datagrams at e1 to congest its path...")
	src, err := live.NewTrafficSource("dev", overlay.Switches["sA"].Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 20; i++ {
		if err := src.Blast("e1", 60, 1200); err != nil {
			log.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	query("congested toward e1")
	fmt.Println("\n(the remote-but-clean e2 should now outrank the congested e1)")
}
