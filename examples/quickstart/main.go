// Quickstart: build the paper's topology, run INT probing, and schedule a
// handful of tasks with the network-aware delay ranking — the minimal
// end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"intsched/internal/core"
	"intsched/internal/experiment"
	"intsched/internal/workload"
)

func main() {
	// A Scenario wires everything: the Fig 4 topology (8 edge nodes, 12
	// P4-style switches), INT register staging on every switch, 100 ms
	// probing toward the scheduler (node n6), background congestion, and
	// the task lifecycle (query -> transfer -> execute).
	res, err := experiment.Run(experiment.Scenario{
		Seed:       1,
		Workload:   workload.Serverless,
		Metric:     core.MetricDelay, // Algorithm 1 from the paper
		TaskCount:  20,
		Background: experiment.BackgroundRandom,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduled %d tasks in %v of virtual time (%d INT probes collected)\n\n",
		len(res.Results), res.VirtualDuration.Round(time.Second), res.ProbesReceived)
	for _, r := range res.Results {
		fmt.Printf("task %2d [%s] %s -> %s  transfer %7v  completion %8v\n",
			r.TaskID, r.Class, r.Device, r.Server,
			r.TransferTime().Round(time.Millisecond),
			r.CompletionTime().Round(time.Millisecond))
	}
	fmt.Printf("\nmean transfer %v, mean completion %v\n",
		res.MeanTransfer().Round(time.Millisecond),
		res.MeanCompletion().Round(time.Millisecond))
}
