// Package intsched is a complete Go implementation of "INT Based
// Network-Aware Task Scheduling for Edge Computing" (Shrestha, Cziva,
// Arslan): an edge-computing task scheduler driven by In-band Network
// Telemetry collected through a P4-style programmable dataplane.
//
// The root package holds the repository-level benchmark suite (one
// benchmark per table/figure of the paper plus substrate microbenchmarks);
// the implementation lives under internal/:
//
//   - internal/simtime — discrete-event engine
//   - internal/netsim — packet-level network simulator
//   - internal/dataplane — P4-style pipeline, registers, INT program
//   - internal/telemetry — INT data model and wire codec
//   - internal/transport — TCP-like flows, CBR, ping, reliable control
//   - internal/probe — probing, coverage planning, relays
//   - internal/collector — topology inference and link-state database
//   - internal/core — ranking algorithms and the scheduler service
//   - internal/workload, internal/traffic, internal/edge — the evaluation
//     workloads, background congestion, and task lifecycle
//   - internal/experiment — scenario runner and figure regeneration
//   - internal/live — the real-socket deployment
//
// See README.md for usage, DESIGN.md for architecture, and EXPERIMENTS.md
// for paper-vs-measured results.
package intsched
