// The root benchmark suite regenerates each of the paper's tables and
// figures at reduced scale (go test -bench=.), reporting the paper's
// headline metrics via b.ReportMetric. cmd/intbench runs the full-size
// versions.
package intsched_test

import (
	"fmt"
	"testing"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/experiment"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
	"intsched/internal/workload"
)

// benchTasks trades bench runtime against statistical noise in the gain
// metrics; intbench runs the paper's full 200 tasks.
const benchTasks = 100

// BenchmarkTable1WorkloadGeneration measures workload synthesis from the
// paper's Table I class definitions.
func BenchmarkTable1WorkloadGeneration(b *testing.B) {
	devices := []netsim.NodeID{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := workload.Generate(workload.GenConfig{
			Kind:      workload.Distributed,
			TaskCount: 200,
			Devices:   devices,
		}, simtime.NewRand(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Utilization runs the calibration sweep at three utilization
// levels and reports the saturated queue depth and RTT.
func BenchmarkFig3Utilization(b *testing.B) {
	var last []experiment.Fig3Point
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Fig3(experiment.Fig3Config{
			Utilizations: []float64{0, 0.5, 1.0},
			Duration:     20 * time.Second,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	if len(last) == 3 {
		b.ReportMetric(last[2].MeanMaxQueue, "satQueue(pkts)")
		b.ReportMetric(last[2].MeanRTT.Seconds()*1000, "satRTT(ms)")
		b.ReportMetric(last[0].MeanRTT.Seconds()*1000, "idleRTT(ms)")
	}
}

// benchCompare runs the scenario under the network-aware metric and the
// Nearest baseline and reports the paper's gain headline.
func benchCompare(b *testing.B, kind workload.Kind, metric core.Metric, transfer bool) {
	b.Helper()
	var gain float64
	for i := 0; i < b.N; i++ {
		cmp, err := experiment.Compare(experiment.Scenario{
			Seed:       int64(42 + i),
			Workload:   kind,
			TaskCount:  benchTasks,
			Background: experiment.BackgroundRandom,
		}, []core.Metric{metric, core.MetricNearest})
		if err != nil {
			b.Fatal(err)
		}
		gain = cmp.OverallGain(metric, core.MetricNearest, transfer)
	}
	b.ReportMetric(gain*100, "gain%vsNearest")
}

// BenchmarkFig5ServerlessDelay regenerates Fig 5 (paper: 17-31% gain).
func BenchmarkFig5ServerlessDelay(b *testing.B) {
	benchCompare(b, workload.Serverless, core.MetricDelay, false)
}

// BenchmarkFig6DistributedDelay regenerates Fig 6 (paper: 7-13% gain).
func BenchmarkFig6DistributedDelay(b *testing.B) {
	benchCompare(b, workload.Distributed, core.MetricDelay, false)
}

// BenchmarkFig7DistributedBandwidth regenerates Fig 7 on transfer times
// (paper: 28-40% reduction).
func BenchmarkFig7DistributedBandwidth(b *testing.B) {
	benchCompare(b, workload.Distributed, core.MetricBandwidth, true)
}

// BenchmarkFig8GainECDF regenerates the per-task gain distribution and
// reports the ≤0-gain fraction (paper: 19% for distributed-bandwidth).
func BenchmarkFig8GainECDF(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		cmp, err := experiment.Compare(experiment.Scenario{
			Seed:       int64(42 + i),
			Workload:   workload.Distributed,
			TaskCount:  benchTasks,
			Background: experiment.BackgroundRandom,
		}, []core.Metric{core.MetricBandwidth, core.MetricNearest})
		if err != nil {
			b.Fatal(err)
		}
		curve := experiment.BuildFig8Curve("bw", cmp, core.MetricBandwidth)
		frac = curve.ZeroOrNegativeFraction()
	}
	b.ReportMetric(frac*100, "zeroOrNegGain%")
}

// BenchmarkFig9ProbingInterval regenerates the probing-frequency sweep at
// its two extremes and reports the slowdown of 30s probing vs 100ms
// (paper: >20%).
func BenchmarkFig9ProbingInterval(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Fig9(experiment.Fig9Config{
			Seed:      int64(42 + i),
			TaskCount: benchTasks,
			Intervals: []time.Duration{100 * time.Millisecond, 30 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		fast, slow := pts[0].Traffic1MeanTransfer, pts[1].Traffic1MeanTransfer
		if fast > 0 {
			slowdown = float64(slow-fast) / float64(fast)
		}
	}
	b.ReportMetric(slowdown*100, "slowdown%@30s")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationKFactor sweeps the queue→latency conversion factor,
// reporting the gain at the paper's k=20ms.
func BenchmarkAblationKFactor(b *testing.B) {
	for _, k := range []time.Duration{time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(k.String(), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				cmp, err := experiment.Compare(experiment.Scenario{
					Seed:       int64(42 + i),
					Workload:   workload.Serverless,
					TaskCount:  benchTasks,
					Background: experiment.BackgroundRandom,
					K:          k,
				}, []core.Metric{core.MetricDelay, core.MetricNearest})
				if err != nil {
					b.Fatal(err)
				}
				gain = cmp.OverallGain(core.MetricDelay, core.MetricNearest, false)
			}
			b.ReportMetric(gain*100, "gain%vsNearest")
		})
	}
}

// BenchmarkAblationQueueCapacity sweeps the switch egress queue depth
// (BMv2 defaults to 64) at 95% utilization: shallow queues drop instead of
// delaying, deep queues buffer-bloat the max-queue signal INT reports.
func BenchmarkAblationQueueCapacity(b *testing.B) {
	for _, cap := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			var q float64
			var drops uint64
			for i := 0; i < b.N; i++ {
				pts, err := experiment.Fig3(experiment.Fig3Config{
					Utilizations: []float64{0.95},
					Duration:     15 * time.Second,
					Seed:         int64(i),
					Links:        experiment.LinkParams{QueueCap: cap},
				})
				if err != nil {
					b.Fatal(err)
				}
				q = pts[0].MeanMaxQueue
				drops = pts[0].Drops
			}
			b.ReportMetric(q, "maxQueue@95%")
			b.ReportMetric(float64(drops), "drops")
		})
	}
}

// --- Microbenchmarks of the substrates -----------------------------------

// BenchmarkEngineEventThroughput measures raw DES event processing.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := simtime.NewEngine()
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			e.After(time.Microsecond, next)
		}
	}
	b.ResetTimer()
	e.After(time.Microsecond, next)
	e.RunUntilIdle()
}

// BenchmarkNetsimPacketForwarding measures per-hop packet cost through the
// Fig 4 topology.
func BenchmarkNetsimPacketForwarding(b *testing.B) {
	engine := simtime.NewEngine()
	topo, err := experiment.BuildFig4(engine, experiment.LinkParams{})
	if err != nil {
		b.Fatal(err)
	}
	nw := topo.Net
	nw.Node("n8").Handler = func(p *netsim.Packet) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.Send(nw.NewPacket(netsim.KindData, "n1", "n8", 1500))
		engine.RunUntilIdle()
	}
}

// BenchmarkTCPTransfer measures the simulated transport: one 1 MB transfer
// across the Fig 4 topology per iteration.
func BenchmarkTCPTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		engine := simtime.NewEngine()
		topo, err := experiment.BuildFig4(engine, experiment.LinkParams{})
		if err != nil {
			b.Fatal(err)
		}
		domain := transport.NewDomain(topo.Net).InstallAll()
		done := false
		domain.Stack("n1").Transfer("n8", 1_000_000, func(transport.FlowStats) { done = true })
		engine.RunUntilIdle()
		if !done {
			b.Fatal("transfer did not finish")
		}
	}
}

// BenchmarkProbeCodec measures INT probe marshal/unmarshal (the live-mode
// hot path): the allocating entry points ("fresh") against the scratch-
// reusing ones a steady telemetry stream should use ("reuse", zero
// allocs/op).
func BenchmarkProbeCodec(b *testing.B) {
	p := &telemetry.ProbePayload{Origin: "n1", Seq: 9, SentAt: time.Second}
	for h := 0; h < 6; h++ {
		p.Stack.Append(telemetry.Record{
			Device: "s01", IngressPort: 1, EgressPort: 2,
			LinkLatency: 10 * time.Millisecond, HopLatency: time.Millisecond,
			EgressTS: time.Second,
			Queues: []telemetry.PortQueue{
				{Port: 0, MaxQueue: 5, Packets: 100},
				{Port: 1, MaxQueue: 0, Packets: 3},
				{Port: 2, MaxQueue: 31, Packets: 999},
			},
		})
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := telemetry.MarshalProbe(p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := telemetry.UnmarshalProbe(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var buf []byte
		var dec telemetry.ProbePayload
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = telemetry.AppendProbe(buf[:0], p)
			if err != nil {
				b.Fatal(err)
			}
			if err := telemetry.UnmarshalProbeInto(&dec, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScenarioRun measures one full scheduling scenario end to end —
// the unit cell the experiment pool fans out — with allocation accounting
// for the DES free list and packet-recycling work.
func BenchmarkScenarioRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.Scenario{
			Seed:             42, // fixed seed: identical work every iteration
			Workload:         workload.Serverless,
			Metric:           core.MetricDelay,
			TaskCount:        20,
			MeanInterarrival: time.Second,
			Background:       experiment.BackgroundRandom,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Incomplete != 0 {
			b.Fatalf("%d incomplete tasks", res.Incomplete)
		}
	}
}

// BenchmarkCollectorIngest measures probe processing at the scheduler.
func BenchmarkCollectorIngest(b *testing.B) {
	coll := collector.New("sched", func() time.Duration { return time.Second }, collector.Config{})
	p := &telemetry.ProbePayload{Origin: "n1"}
	for h := 0; h < 4; h++ {
		p.Stack.Append(telemetry.Record{
			Device: string(rune('a' + h)), EgressPort: 1, EgressTS: time.Second,
			LinkLatency: 10 * time.Millisecond,
			Queues:      []telemetry.PortQueue{{Port: 1, MaxQueue: 4, Packets: 10}},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seq = uint64(i + 1)
		coll.HandleProbe(p)
	}
}

// BenchmarkDelayRanking measures Algorithm 1 over a learned Fig-4-sized
// topology.
func BenchmarkDelayRanking(b *testing.B) {
	coll := warmedCollector(b)
	topo := coll.Snapshot()
	ranker := &core.DelayRanker{}
	candidates := []netsim.NodeID{"n2", "n3", "n4", "n5", "n6", "n7", "n8"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranker.Rank(topo, "n1", candidates)
	}
}

// BenchmarkBandwidthRanking measures the bottleneck estimator.
func BenchmarkBandwidthRanking(b *testing.B) {
	coll := warmedCollector(b)
	topo := coll.Snapshot()
	ranker := &core.BandwidthRanker{}
	candidates := []netsim.NodeID{"n2", "n3", "n4", "n5", "n6", "n7", "n8"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranker.Rank(topo, "n1", candidates)
	}
}

// BenchmarkSchedulerQueryThroughput measures the scheduler's query read
// path on a warmed Fig 4 deployment with telemetry churning at the 100 ms
// probe cadence, 100 queries per probe tick. Cached uses the
// epoch-versioned snapshot + rank cache; Uncached restores the
// pre-refactor behavior (fresh topology copy and re-ranking per query) for
// the before/after comparison. Run with -bench SchedulerQueryThroughput;
// intbench -exp qps prints the same comparison full-size.
func BenchmarkSchedulerQueryThroughput(b *testing.B) {
	for _, mode := range []struct {
		name   string
		cached bool
	}{
		{"Cached", true},
		{"Uncached", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rig, err := experiment.NewQueryRig(mode.cached, experiment.QPSConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			sinceProbe := 0
			for i := 0; i < b.N; i++ {
				if sinceProbe == 100 {
					rig.Tick()
					sinceProbe = 0
				}
				if got := rig.Query(i); len(got) == 0 {
					b.Fatal("empty ranking")
				}
				sinceProbe++
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkIndexHotPath measures the index-space scheduler read path on a
// warmed Fig 4 deployment with a frozen snapshot: PathInto with reused
// scratch, and warm single/batched ranking queries served as zero-copy
// views of shared cache entries (allocs/op must stay 0 on the walk and the
// single query; intbench -exp hotpath prints the full string-vs-index
// comparison with digest checks).
func BenchmarkIndexHotPath(b *testing.B) {
	rig, err := experiment.NewQueryRig(true, experiment.QPSConfig{})
	if err != nil {
		b.Fatal(err)
	}
	snap := rig.Coll.Snapshot()
	src, ok := snap.NodeIndex(string(rig.Devices[0]))
	if !ok {
		b.Fatal("device not in learned topology")
	}
	dst, ok := snap.NodeIndex(snap.Hosts()[len(snap.Hosts())-1])
	if !ok {
		b.Fatal("host not in learned topology")
	}
	b.Run("PathInto", func(b *testing.B) {
		var scratch []int32
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, code, _ := snap.PathInto(src, dst, scratch)
			scratch = p
			if code != collector.PathOK {
				b.Fatalf("path code %v", code)
			}
		}
	})
	req := &core.QueryRequest{From: rig.Devices[0], Metric: core.MetricDelay, Sorted: true}
	rig.Svc.RankOn(snap, req) // warm the cache entry
	b.Run("RankForWarm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := rig.Svc.RankOn(snap, req); len(got) == 0 {
				b.Fatal("empty ranking")
			}
		}
	})
	reqs := make([]*core.QueryRequest, 64)
	for i := range reqs {
		metric := core.MetricDelay
		if i%2 == 1 {
			metric = core.MetricBandwidth
		}
		reqs[i] = &core.QueryRequest{From: rig.Devices[i%len(rig.Devices)], Metric: metric, Sorted: true}
	}
	rig.Svc.RankBatchOn(snap, reqs)
	b.Run("RankBatchWarm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rig.Svc.RankBatchOn(snap, reqs)
		}
	})
}

// warmedCollector builds a collector taught the Fig 4 topology via a short
// simulated probing phase.
func warmedCollector(b *testing.B) *collector.Collector {
	b.Helper()
	engine := simtime.NewEngine()
	topo, err := experiment.BuildFig4(engine, experiment.LinkParams{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := experiment.WarmCollector(topo, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	return res
}
