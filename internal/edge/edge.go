// Package edge implements the task lifecycle of edge devices and edge
// servers on top of the simulated network (Figure 1, steps 3–6):
//
//  1. The device queries the scheduler for ranked candidate servers.
//  2. Serverless jobs submit their single task to the top candidate;
//     distributed jobs submit one task to each of the top three.
//  3. The task's input data is transferred to the server over a reliable
//     (TCP-like) flow.
//  4. The server executes the task for its execution time and returns a
//     small completion message.
//
// Every host plays both roles, matching the paper's setup where all nodes
// (scheduler included) submit tasks as devices and execute tasks as servers.
package edge

import (
	"time"

	"intsched/internal/core"
	"intsched/internal/netsim"
	"intsched/internal/transport"
	"intsched/internal/workload"
)

// taskStart is the control message a device sends to a server once the
// task's input data has been fully transferred.
type taskStart struct {
	TaskID   uint64
	ExecTime time.Duration
}

// taskDone is the server's completion notification back to the device.
type taskDone struct {
	TaskID uint64
}

// controlMsgSize is the wire size of task lifecycle control messages.
const controlMsgSize = 64

// TaskResult records one task's measured timeline.
type TaskResult struct {
	JobID  uint64
	TaskID uint64
	Class  workload.Class
	Kind   workload.Kind
	Device netsim.NodeID
	Server netsim.NodeID

	DataBytes int64
	ExecTime  time.Duration

	// SubmitAt is when the device submitted the job (query sent).
	SubmitAt time.Duration
	// RankedAt is when the scheduler's response arrived.
	RankedAt time.Duration
	// TransferDoneAt is when the final data byte was acknowledged.
	TransferDoneAt time.Duration
	// CompletedAt is when the server's completion message arrived back.
	CompletedAt time.Duration

	// Retransmits counts transport retransmissions during the transfer.
	Retransmits int
}

// TransferTime is the data transfer duration (ranking response to last
// acknowledged byte).
func (r TaskResult) TransferTime() time.Duration { return r.TransferDoneAt - r.RankedAt }

// CompletionTime is the end-to-end task time (submission to completion
// notification).
func (r TaskResult) CompletionTime() time.Duration { return r.CompletedAt - r.SubmitAt }

// Node is one host acting as both edge device and edge server.
type Node struct {
	stack  *transport.Stack
	client *core.Client

	// Slots bounds concurrent executions on this server (0 = unlimited,
	// the default: the paper's evaluation isolates network effects).
	Slots int

	// ReportLoad, when true, sends a backlog report to the scheduler after
	// every backlog change (compute-aware extension).
	ReportLoad bool

	// OnResult, when set, receives every completed task's result.
	OnResult func(TaskResult)

	// OnDecision, when set, receives every task's placement the moment the
	// server is chosen — before the transfer starts, so fault experiments
	// can classify the decision against the network state at decision time
	// (a task sent toward a failed link is mis-scheduled even if the link
	// recovers before the transfer finishes).
	OnDecision func(TaskResult)

	// Selector, when set, enables the paper's second query option: the
	// scheduler returns the full candidate list (with bandwidth and
	// latency estimates, unsorted), and this device-side policy picks the
	// server for each task.
	Selector func(candidates []core.Candidate, task workload.Task) netsim.NodeID

	// Device-side state.
	pending    map[uint64]*TaskResult // keyed by TaskID, awaiting completion
	jobWaiters []*jobWaiter
	fallback   func(from netsim.NodeID, payload any)

	// Server-side state.
	backlog   time.Duration
	running   int
	execQ     []taskStart
	execQFrom []netsim.NodeID
	Executed  uint64

	// Results accumulates completed tasks submitted by this device.
	Results []TaskResult
}

// NewNode wires an edge node onto a host stack with a query client pointing
// at the scheduler. It chains into whatever control handling is already
// installed on the stack (e.g. the scheduler service on the scheduler host).
func NewNode(stack *transport.Stack, scheduler netsim.NodeID) *Node {
	n := &Node{
		stack:   stack,
		pending: make(map[uint64]*TaskResult),
	}
	n.client = core.NewClient(stack, scheduler)
	n.fallback = n.client.Demux // preserve any pre-existing control chain
	n.client.Demux = n.handleControl
	return n
}

// Client exposes the node's scheduler query client.
func (n *Node) Client() *core.Client { return n.client }

// Host returns the node's host ID.
func (n *Node) Host() netsim.NodeID { return n.stack.Host() }

// Backlog returns the server-side pending execution time.
func (n *Node) Backlog() time.Duration { return n.backlog }

func (n *Node) now() time.Duration { return n.stack.Engine().Now() }

// handleControl processes task lifecycle messages for both roles.
func (n *Node) handleControl(from netsim.NodeID, payload any) {
	switch msg := payload.(type) {
	case *taskStart:
		n.serverStart(from, *msg)
	case *taskDone:
		n.deviceComplete(msg.TaskID)
	default:
		if n.fallback != nil {
			n.fallback(from, payload)
		}
	}
}

// SubmitJob runs the full lifecycle for a job using the given ranking
// metric. onDone (may be nil) fires when every task of the job completes.
func (n *Node) SubmitJob(job workload.Job, metric core.Metric, onDone func()) {
	submitAt := n.now()
	// Pass the job's largest task size so size-aware rankers (the
	// transfer-time extension) can estimate full transfer completion.
	var maxData int64
	for _, task := range job.Tasks {
		if task.DataBytes > maxData {
			maxData = task.DataBytes
		}
	}
	handle := func(resp *core.QueryResponse) {
		rankedAt := n.now()
		for i, task := range job.Tasks {
			res := &TaskResult{
				JobID:     job.ID,
				TaskID:    task.ID,
				Class:     task.Class,
				Kind:      job.Kind,
				Device:    n.Host(),
				DataBytes: task.DataBytes,
				ExecTime:  task.ExecTime,
				SubmitAt:  submitAt,
				RankedAt:  rankedAt,
			}
			if len(resp.Candidates) == 0 {
				// No candidates (collector not warmed up): count the task
				// as failed-fast; the experiment harness warms the
				// collector so this should not happen in practice.
				continue
			}
			if n.Selector != nil {
				// Paper option two: custom device-side selection over the
				// unsorted estimate list.
				res.Server = n.Selector(resp.Candidates, task)
			} else {
				// Option one: task i goes to the i-th ranked server
				// (distributed jobs spread over the top three).
				res.Server = resp.Candidates[i%len(resp.Candidates)].Node
			}
			if n.OnDecision != nil {
				n.OnDecision(*res)
			}
			n.pending[task.ID] = res
			n.startTransfer(res, task)
		}
	}
	if n.Selector != nil {
		n.client.QueryUnsorted(metric, maxData, nil, handle)
	} else {
		n.client.QuerySized(metric, 0, maxData, nil, handle)
	}
	if onDone != nil {
		// Completion tracking via OnResult wrapper would complicate the
		// common path; poll instead through deviceComplete bookkeeping.
		n.jobWaiters = append(n.jobWaiters, &jobWaiter{jobID: job.ID, remaining: len(job.Tasks), done: onDone})
	}
}

type jobWaiter struct {
	jobID     uint64
	remaining int
	done      func()
}

// jobWaiters tracks in-flight jobs with completion callbacks.
func (n *Node) startTransfer(res *TaskResult, task workload.Task) {
	n.stack.Transfer(res.Server, task.DataBytes, func(fs transport.FlowStats) {
		res.TransferDoneAt = n.now()
		res.Retransmits = fs.Retransmits
		// Tell the server to begin execution.
		n.stack.SendControl(res.Server, controlMsgSize, &taskStart{TaskID: task.ID, ExecTime: task.ExecTime})
	})
}

// serverStart enqueues or begins execution of a task on this server.
func (n *Node) serverStart(from netsim.NodeID, msg taskStart) {
	n.backlog += msg.ExecTime
	n.reportLoad()
	start := func(run taskStart, dev netsim.NodeID) {
		n.running++
		n.stack.Engine().After(run.ExecTime, func() {
			n.running--
			n.backlog -= run.ExecTime
			n.Executed++
			n.reportLoad()
			n.stack.SendControl(dev, controlMsgSize, &taskDone{TaskID: run.TaskID})
			n.drainQueue()
		})
	}
	if n.Slots > 0 && n.running >= n.Slots {
		n.execQ = append(n.execQ, msg)
		n.execQFrom = append(n.execQFrom, from)
		return
	}
	start(msg, from)
}

// execQFrom parallels execQ with the submitting device of each queued task.
func (n *Node) drainQueue() {
	if n.Slots <= 0 || len(n.execQ) == 0 || n.running >= n.Slots {
		return
	}
	msg := n.execQ[0]
	dev := n.execQFrom[0]
	n.execQ = n.execQ[1:]
	n.execQFrom = n.execQFrom[1:]
	n.running++
	n.stack.Engine().After(msg.ExecTime, func() {
		n.running--
		n.backlog -= msg.ExecTime
		n.Executed++
		n.reportLoad()
		n.stack.SendControl(dev, controlMsgSize, &taskDone{TaskID: msg.TaskID})
		n.drainQueue()
	})
}

func (n *Node) reportLoad() {
	if n.ReportLoad {
		n.client.ReportLoad(n.backlog)
	}
}

// deviceComplete finalizes a task when its completion message arrives.
func (n *Node) deviceComplete(taskID uint64) {
	res := n.pending[taskID]
	if res == nil {
		return
	}
	delete(n.pending, taskID)
	res.CompletedAt = n.now()
	n.Results = append(n.Results, *res)
	if n.OnResult != nil {
		n.OnResult(*res)
	}
	for i, w := range n.jobWaiters {
		if w.jobID == res.JobID {
			w.remaining--
			if w.remaining == 0 {
				n.jobWaiters = append(n.jobWaiters[:i], n.jobWaiters[i+1:]...)
				w.done()
			}
			break
		}
	}
}
