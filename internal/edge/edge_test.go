package edge

import (
	"testing"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/transport"
	"intsched/internal/workload"
)

// fixture wires hosts {dev, e1, e2, sched} through one switch with INT,
// probing, collector, service, and edge nodes on every host.
type fixture struct {
	engine *simtime.Engine
	nw     *netsim.Network
	domain *transport.Domain
	svc    *core.Service
	nodes  map[netsim.NodeID]*Node
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	engine := simtime.NewEngine()
	nw := netsim.New(engine)
	nw.AddSwitch("s1")
	hosts := []netsim.NodeID{"dev", "e1", "e2", "sched"}
	for _, h := range hosts {
		nw.AddHost(h)
		cfg := netsim.LinkConfig{RateBps: 1_000_000_000, ReverseRateBps: 20_000_000, Delay: time.Millisecond}
		if _, err := nw.Connect(h, "s1", cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	dataplane.AttachINT(nw, dataplane.INTConfig{})
	domain := transport.NewDomain(nw).InstallAll()
	coll := collector.New("sched", engine.Now, collector.Config{QueueWindow: time.Second})
	coll.Bind(domain.Stack("sched"))

	nodes := make(map[netsim.NodeID]*Node)
	for _, h := range hosts {
		nodes[h] = NewNode(domain.Stack(h), "sched")
	}
	svc := core.NewService(domain.Stack("sched"), coll, core.ServiceConfig{})
	svc.Register(&core.DelayRanker{})
	svc.Register(&core.BandwidthRanker{})
	svc.Register(&core.ComputeAwareRanker{Network: &core.DelayRanker{}, LoadFn: svc.Load})
	probe.NewFleet(nw, hosts, "sched", 100*time.Millisecond)
	engine.Run(500 * time.Millisecond) // warm the collector
	return &fixture{engine: engine, nw: nw, domain: domain, svc: svc, nodes: nodes}
}

func job(id uint64, device netsim.NodeID, kind workload.Kind, tasks int) workload.Job {
	j := workload.Job{ID: id, Device: device, Kind: kind}
	for i := 0; i < tasks; i++ {
		j.Tasks = append(j.Tasks, workload.Task{
			ID:        id*10 + uint64(i),
			JobID:     id,
			Class:     workload.Small,
			DataBytes: 200_000,
			ExecTime:  300 * time.Millisecond,
		})
	}
	return j
}

func TestServerlessLifecycle(t *testing.T) {
	f := newFixture(t)
	dev := f.nodes["dev"]
	done := false
	dev.SubmitJob(job(1, "dev", workload.Serverless, 1), core.MetricDelay, func() { done = true })
	f.engine.Run(f.engine.Now() + 30*time.Second)
	if !done {
		t.Fatal("job completion callback never fired")
	}
	if len(dev.Results) != 1 {
		t.Fatalf("results %d", len(dev.Results))
	}
	r := dev.Results[0]
	if r.Server == "dev" || r.Server == "" {
		t.Fatalf("bad server %q", r.Server)
	}
	if r.CompletionTime() < r.ExecTime {
		t.Fatalf("completion %v < exec %v", r.CompletionTime(), r.ExecTime)
	}
	if r.TransferTime() <= 0 || r.TransferDoneAt < r.RankedAt || r.RankedAt < r.SubmitAt {
		t.Fatalf("timeline broken: %+v", r)
	}
	// The chosen server executed it.
	if f.nodes[r.Server].Executed != 1 {
		t.Fatalf("server %s executed %d", r.Server, f.nodes[r.Server].Executed)
	}
}

func TestDistributedSpreadsOverTopThree(t *testing.T) {
	f := newFixture(t)
	dev := f.nodes["dev"]
	dev.SubmitJob(job(2, "dev", workload.Distributed, 3), core.MetricDelay, nil)
	f.engine.Run(f.engine.Now() + 30*time.Second)
	if len(dev.Results) != 3 {
		t.Fatalf("results %d", len(dev.Results))
	}
	servers := map[netsim.NodeID]bool{}
	for _, r := range dev.Results {
		servers[r.Server] = true
	}
	// 3 candidates exist (e1, e2, sched): all three distinct.
	if len(servers) != 3 {
		t.Fatalf("tasks not spread: %v", servers)
	}
}

func TestOnResultCallback(t *testing.T) {
	f := newFixture(t)
	dev := f.nodes["dev"]
	var got []TaskResult
	dev.OnResult = func(r TaskResult) { got = append(got, r) }
	dev.SubmitJob(job(3, "dev", workload.Distributed, 3), core.MetricBandwidth, nil)
	f.engine.Run(f.engine.Now() + 30*time.Second)
	if len(got) != 3 {
		t.Fatalf("OnResult fired %d times", len(got))
	}
}

func TestServerSlotsQueueTasks(t *testing.T) {
	f := newFixture(t)
	// Constrain e1 to one slot and force both tasks onto it.
	f.nodes["e1"].Slots = 1
	f.svc.SetCandidateFn(func(netsim.NodeID) []netsim.NodeID { return []netsim.NodeID{"e1"} })
	dev := f.nodes["dev"]
	dev.SubmitJob(job(4, "dev", workload.Serverless, 1), core.MetricDelay, nil)
	dev.SubmitJob(job(5, "dev", workload.Serverless, 1), core.MetricDelay, nil)
	f.engine.Run(f.engine.Now() + 60*time.Second)
	if len(dev.Results) != 2 {
		t.Fatalf("results %d", len(dev.Results))
	}
	if f.nodes["e1"].Executed != 2 {
		t.Fatalf("e1 executed %d", f.nodes["e1"].Executed)
	}
	if f.nodes["e1"].Backlog() != 0 {
		t.Fatalf("backlog %v after drain", f.nodes["e1"].Backlog())
	}
	// With one slot the executions serialized: the later completion is at
	// least one exec time after the earlier.
	d0, d1 := dev.Results[0], dev.Results[1]
	gap := d1.CompletedAt - d0.CompletedAt
	if gap < 0 {
		gap = -gap
	}
	if gap < 250*time.Millisecond {
		t.Fatalf("executions overlapped on 1 slot: gap %v", gap)
	}
}

func TestLoadReportingFeedsComputeAware(t *testing.T) {
	f := newFixture(t)
	for _, n := range f.nodes {
		n.ReportLoad = true
	}
	// Occupy e1 with a long task, then rank compute-aware: e1 must sink.
	f.nodes["dev"].SubmitJob(workload.Job{
		ID: 6, Device: "dev", Kind: workload.Serverless,
		Tasks: []workload.Task{{ID: 60, JobID: 6, Class: workload.Large, DataBytes: 50_000, ExecTime: 20 * time.Second}},
	}, core.MetricDelay, nil)
	f.engine.Run(f.engine.Now() + 3*time.Second)
	// Find where it landed; its backlog must be visible at the scheduler.
	var busy netsim.NodeID
	for id, n := range f.nodes {
		if n.Backlog() > 0 {
			busy = id
		}
	}
	if busy == "" {
		t.Fatal("no server has backlog")
	}
	if f.svc.Load(busy) <= 0 {
		t.Fatalf("scheduler unaware of %s backlog", busy)
	}
	ranked := f.svc.RankFor(&core.QueryRequest{From: "dev", Metric: core.MetricComputeAware, Sorted: true})
	if len(ranked) == 0 {
		t.Fatal("no compute-aware ranking")
	}
	if ranked[0].Node == busy {
		t.Fatalf("busy server %s still ranked first: %v", busy, ranked)
	}
}

func TestCustomSelectorOptionTwo(t *testing.T) {
	f := newFixture(t)
	dev := f.nodes["dev"]
	var sawEstimates bool
	// Custom policy: always pick "e2" regardless of ranking.
	dev.Selector = func(cands []core.Candidate, task workload.Task) netsim.NodeID {
		// Option two must deliver estimates for all candidates, ID-sorted.
		for i := 1; i < len(cands); i++ {
			if cands[i-1].Node > cands[i].Node {
				t.Errorf("candidates not ID-ordered: %v", cands)
			}
		}
		for _, c := range cands {
			if c.Reachable && c.Delay > 0 {
				sawEstimates = true
			}
		}
		return "e2"
	}
	dev.SubmitJob(job(9, "dev", workload.Serverless, 1), core.MetricDelay, nil)
	f.engine.Run(f.engine.Now() + 30*time.Second)
	if len(dev.Results) != 1 {
		t.Fatalf("results %d", len(dev.Results))
	}
	if dev.Results[0].Server != "e2" {
		t.Fatalf("selector ignored: server %s", dev.Results[0].Server)
	}
	if !sawEstimates {
		t.Fatal("option-two response carried no estimates")
	}
}

func TestResultAccessors(t *testing.T) {
	r := TaskResult{
		SubmitAt:       time.Second,
		RankedAt:       1100 * time.Millisecond,
		TransferDoneAt: 2 * time.Second,
		CompletedAt:    3 * time.Second,
	}
	if r.TransferTime() != 900*time.Millisecond {
		t.Fatalf("transfer %v", r.TransferTime())
	}
	if r.CompletionTime() != 2*time.Second {
		t.Fatalf("completion %v", r.CompletionTime())
	}
}

func TestUnknownTaskCompletionIgnored(t *testing.T) {
	f := newFixture(t)
	// A stray taskDone for an unknown task must not panic or record.
	f.domain.Stack("e1").SendControl("dev", 64, &taskDone{TaskID: 999})
	f.engine.Run(f.engine.Now() + time.Second)
	if len(f.nodes["dev"].Results) != 0 {
		t.Fatal("phantom result recorded")
	}
}
