package telemetry

import (
	"bytes"
	"testing"
)

// fuzzSeedV1 hand-encodes a minimal version-1 payload (no mode, sample
// rate, hop count, or per-record hop indices).
func fuzzSeedV1() []byte {
	var b []byte
	b = append(b, 0x01, 0x03) // GeneveMarker
	b = append(b, 1, 0)       // version 1, flags
	b = append(b, make([]byte, 24)...)
	b[4+7] = 9 // seq
	b = append(b, 2)
	b = append(b, "e1"...)
	b = append(b, 0) // empty target
	b = append(b, 1) // one record
	b = append(b, 2)
	b = append(b, "s1"...)
	b = append(b, 1, 2)                // ports
	b = append(b, make([]byte, 24)...) // latencies/timestamps
	b = append(b, 0)                   // no queues
	return b
}

// FuzzUnmarshalProbeInto drives the probe decoder with arbitrary bytes. The
// codec is the trust boundary of live mode — payloads arrive from real
// sockets — so beyond not panicking, decoding must behave identically into
// a dirty reused scratch payload (the ingest path never hands it a zero
// one), and every accepted payload must re-encode and re-decode to a fixed
// point. Seeds cover both wire versions plus forged record/queue counts
// (the guarded header-claims-more-than-the-bytes-carry shape).
func FuzzUnmarshalProbeInto(f *testing.F) {
	v2 := samplePayload()
	v2.Mode = ModeProbabilistic
	v2.SampleRate = RateToWire(0.25)
	v2.HopCount = 7
	for i := range v2.Stack.Records {
		v2.Stack.Records[i].HopIndex = 2 * i
	}
	valid, err := MarshalProbe(v2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(fuzzSeedV1())
	// Forged record count: a header claiming 255 records backed by none.
	forged := append([]byte(nil), valid...)
	forged[len(forged)-1] = 0xff
	f.Add(forged[:len(valid)-4])
	// Forged queue count inside the last record.
	forgedQ := append([]byte(nil), valid...)
	forgedQ[len(forgedQ)-1] = 0xff
	f.Add(forgedQ)
	f.Add([]byte{0x01, 0x03, 3, 0}) // unsupported version
	f.Add([]byte{})
	// Cadence-directive frames share the probe return path, so they also
	// land here: a well-formed directive, a truncated one, one with an
	// unknown version byte, and one with a forged (oversized) length. All
	// must decode as "not a probe" without wedging the decoder, and
	// DecodeDirective must treat the malformed ones as no-directive.
	dir := EncodeDirective(CadenceDirective{Interval: 250 * 1000 * 1000, Seq: 42})
	f.Add(dir)
	f.Add(dir[:DirectiveWireSize-6])
	badVer := append([]byte(nil), dir...)
	badVer[2] = 0x7f
	f.Add(badVer)
	f.Add(append(append([]byte(nil), dir...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeDirective never errors and never panics: arbitrary bytes are
		// either a well-formed current-version frame or "no directive".
		if d, ok := DecodeDirective(data); ok {
			if len(data) != DirectiveWireSize {
				t.Fatalf("accepted a directive frame of %d bytes", len(data))
			}
			if d.Interval <= 0 {
				t.Fatalf("accepted non-positive interval %v", d.Interval)
			}
			if data[2] != directiveVersion {
				t.Fatalf("accepted unknown directive version %#x", data[2])
			}
			reenc := EncodeDirective(d)
			if d2, ok2 := DecodeDirective(reenc); !ok2 || d2 != d {
				t.Fatalf("directive round-trip diverged: %+v -> %+v (ok=%v)", d, d2, ok2)
			}
		}
		var fresh ProbePayload
		freshErr := UnmarshalProbeInto(&fresh, data)

		// The ingest path reuses one scratch payload per origin shard:
		// whatever the previous probe left behind must not change the
		// outcome or the result.
		var dirty ProbePayload
		if err := UnmarshalProbeInto(&dirty, valid); err != nil {
			t.Fatalf("decoding the valid seed failed: %v", err)
		}
		dirtyErr := UnmarshalProbeInto(&dirty, data)
		if (freshErr == nil) != (dirtyErr == nil) {
			t.Fatalf("scratch reuse changed the outcome: fresh=%v dirty=%v", freshErr, dirtyErr)
		}
		if freshErr != nil {
			return
		}

		// Accepted payloads re-encode (all decoded fields are within wire
		// limits by construction) and reach an encode/decode fixed point.
		encFresh, err := MarshalProbe(&fresh)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v\npayload: %+v", err, fresh)
		}
		encDirty, err := MarshalProbe(&dirty)
		if err != nil {
			t.Fatalf("dirty-scratch decode failed to re-encode: %v", err)
		}
		if !bytes.Equal(encFresh, encDirty) {
			t.Fatalf("dirty-scratch decode diverged:\nfresh %x\ndirty %x", encFresh, encDirty)
		}
		var again ProbePayload
		if err := UnmarshalProbeInto(&again, encFresh); err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		encAgain, err := MarshalProbe(&again)
		if err != nil {
			t.Fatalf("re-decoded payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(encFresh, encAgain) {
			t.Fatalf("encode/decode not a fixed point:\nfirst  %x\nsecond %x", encFresh, encAgain)
		}
		if n := len(fresh.Stack.Records); n > 255 {
			t.Fatalf("decoded %d records from a u8 count", n)
		}
	})
}
