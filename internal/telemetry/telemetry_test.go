package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestStackAppendAndPath(t *testing.T) {
	var s Stack
	s.Append(Record{Device: "s1"})
	s.Append(Record{Device: "s2"})
	s.Append(Record{Device: "s3"})
	path := s.Path()
	if len(path) != 3 || path[0] != "s1" || path[2] != "s3" {
		t.Fatalf("path %v", path)
	}
	if s.Truncated {
		t.Fatal("unexpectedly truncated")
	}
}

func TestStackTruncationAtBudget(t *testing.T) {
	var s Stack
	for i := 0; i < MaxRecords+5; i++ {
		s.Append(Record{Device: "sw"})
	}
	if len(s.Records) != MaxRecords {
		t.Fatalf("got %d records, want cap %d", len(s.Records), MaxRecords)
	}
	if !s.Truncated {
		t.Fatal("truncation flag not set")
	}
}

func TestRecordMaxQueueFor(t *testing.T) {
	r := Record{Queues: []PortQueue{{Port: 0, MaxQueue: 3}, {Port: 2, MaxQueue: 9}}}
	if q, ok := r.MaxQueueFor(2); !ok || q != 9 {
		t.Fatalf("port 2: %d,%v", q, ok)
	}
	if q, ok := r.MaxQueueFor(0); !ok || q != 3 {
		t.Fatalf("port 0: %d,%v", q, ok)
	}
	if _, ok := r.MaxQueueFor(1); ok {
		t.Fatal("missing port reported present")
	}
}

func TestStackString(t *testing.T) {
	var s Stack
	s.Append(Record{Device: "s1", IngressPort: 1, EgressPort: 2, LinkLatency: 10 * time.Millisecond})
	s.Append(Record{Device: "s2"})
	out := s.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "->") {
		t.Fatalf("string %q", out)
	}
	s.Truncated = true
	if !strings.Contains(s.String(), "truncated") {
		t.Fatal("truncated marker missing")
	}
}

func TestProbeOverheadMatchesPaper(t *testing.T) {
	// 10 probes/s × 1.5 KB = 120 Kbps for one server; the paper quotes the
	// figure per probing server.
	got := ProbeOverheadBps(1, 100*time.Millisecond)
	if got != 120_000 {
		t.Fatalf("overhead %v bps, want 120000", got)
	}
	// 1.1% of a 10 Mbps link.
	frac := got / 10_000_000
	if frac < 0.011 || frac > 0.013 {
		t.Fatalf("fraction %v, want ≈1.2%%", frac)
	}
	if ProbeOverheadBps(3, 0) != 0 {
		t.Fatal("zero interval should be zero overhead")
	}
}
