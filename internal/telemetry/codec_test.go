package telemetry

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func samplePayload() *ProbePayload {
	p := &ProbePayload{Origin: "n3", Seq: 42, SentAt: 1234 * time.Millisecond}
	p.Stack.Append(Record{
		Device:      "s01",
		IngressPort: 2,
		EgressPort:  3,
		LinkLatency: 10 * time.Millisecond,
		HopLatency:  600 * time.Microsecond,
		EgressTS:    2 * time.Second,
		Queues: []PortQueue{
			{Port: 0, MaxQueue: 12, Packets: 100},
			{Port: 1, MaxQueue: 0, Packets: 0},
		},
	})
	p.Stack.Append(Record{Device: "s02", EgressPort: 1, EgressTS: 3 * time.Second})
	return p
}

func TestProbeCodecRoundTrip(t *testing.T) {
	p := samplePayload()
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(got)) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", p, got)
	}
}

// normalize maps empty and nil slices to a canonical form for comparison.
func normalize(p *ProbePayload) *ProbePayload {
	q := *p
	if len(q.Stack.Records) == 0 {
		q.Stack.Records = nil
	}
	for i := range q.Stack.Records {
		if len(q.Stack.Records[i].Queues) == 0 {
			q.Stack.Records[i].Queues = nil
		}
	}
	return &q
}

func TestProbeCodecEmptyStack(t *testing.T) {
	p := &ProbePayload{Origin: "n1", Seq: 1, SentAt: time.Second}
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "n1" || got.Seq != 1 || len(got.Stack.Records) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestProbeCodecTruncatedFlag(t *testing.T) {
	p := samplePayload()
	p.Stack.Truncated = true
	b, _ := MarshalProbe(p)
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stack.Truncated {
		t.Fatal("truncated flag lost")
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	b, _ := MarshalProbe(samplePayload())
	b[0] = 0xFF
	if _, err := UnmarshalProbe(b); err != ErrBadMagic {
		t.Fatalf("err=%v, want ErrBadMagic", err)
	}
}

func TestUnmarshalTruncatedInputs(t *testing.T) {
	b, _ := MarshalProbe(samplePayload())
	// Every proper prefix must fail cleanly, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := UnmarshalProbe(b[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", i)
		}
	}
}

func TestUnmarshalBadVersion(t *testing.T) {
	b, _ := MarshalProbe(samplePayload())
	b[2] = 99
	if _, err := UnmarshalProbe(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestMarshalValidation(t *testing.T) {
	long := string(bytes.Repeat([]byte("x"), 300))
	if _, err := MarshalProbe(&ProbePayload{Origin: long}); err == nil {
		t.Error("overlong origin accepted")
	}
	p := &ProbePayload{Origin: "n1"}
	p.Stack.Records = []Record{{Device: long}}
	if _, err := MarshalProbe(p); err == nil {
		t.Error("overlong device accepted")
	}
	p = &ProbePayload{Origin: "n1"}
	p.Stack.Records = []Record{{Device: "s1", EgressPort: 300}}
	if _, err := MarshalProbe(p); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestMarshalClampsQueueValues(t *testing.T) {
	p := &ProbePayload{Origin: "n1"}
	p.Stack.Records = []Record{{
		Device: "s1",
		Queues: []PortQueue{{Port: 0, MaxQueue: 1 << 20}, {Port: 1, MaxQueue: -5}},
	}}
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stack.Records[0].Queues[0].MaxQueue != 65535 {
		t.Errorf("large queue not clamped: %d", got.Stack.Records[0].Queues[0].MaxQueue)
	}
	if got.Stack.Records[0].Queues[1].MaxQueue != 0 {
		t.Errorf("negative queue not clamped: %d", got.Stack.Records[0].Queues[1].MaxQueue)
	}
}

func TestProbeCodecPropertyRoundTrip(t *testing.T) {
	f := func(origin string, seq uint64, sentNs int64, dev string, in, out uint8, linkNs, hopNs int64, port uint8, mq uint16, pk uint32) bool {
		if len(origin) > 255 || len(dev) > 255 {
			return true
		}
		p := &ProbePayload{Origin: origin, Seq: seq, SentAt: time.Duration(sentNs)}
		p.Stack.Append(Record{
			Device:      dev,
			IngressPort: int(in),
			EgressPort:  int(out),
			LinkLatency: absDur(linkNs),
			HopLatency:  absDur(hopNs),
			EgressTS:    time.Duration(seq % 1e9),
			Queues:      []PortQueue{{Port: int(port), MaxQueue: int(mq), Packets: pk}},
		})
		b, err := MarshalProbe(p)
		if err != nil {
			return false
		}
		got, err := UnmarshalProbe(b)
		if err != nil {
			return false
		}
		r, g := p.Stack.Records[0], got.Stack.Records[0]
		return got.Origin == origin && got.Seq == seq &&
			g.Device == r.Device && g.IngressPort == r.IngressPort &&
			g.EgressPort == r.EgressPort && g.LinkLatency == r.LinkLatency &&
			g.Queues[0] == r.Queues[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func absDur(ns int64) time.Duration {
	if ns < 0 {
		if ns == -1<<63 {
			ns++
		}
		ns = -ns
	}
	return time.Duration(ns)
}
