package telemetry

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func samplePayload() *ProbePayload {
	p := &ProbePayload{Origin: "n3", Seq: 42, SentAt: 1234 * time.Millisecond}
	p.Stack.Append(Record{
		Device:      "s01",
		IngressPort: 2,
		EgressPort:  3,
		LinkLatency: 10 * time.Millisecond,
		HopLatency:  600 * time.Microsecond,
		EgressTS:    2 * time.Second,
		Queues: []PortQueue{
			{Port: 0, MaxQueue: 12, Packets: 100},
			{Port: 1, MaxQueue: 0, Packets: 0},
		},
	})
	p.Stack.Append(Record{Device: "s02", EgressPort: 1, EgressTS: 3 * time.Second})
	return p
}

func TestProbeCodecRoundTrip(t *testing.T) {
	p := samplePayload()
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(got)) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", p, got)
	}
}

// normalize maps empty and nil slices to a canonical form for comparison.
func normalize(p *ProbePayload) *ProbePayload {
	q := *p
	if len(q.Stack.Records) == 0 {
		q.Stack.Records = nil
	}
	for i := range q.Stack.Records {
		if len(q.Stack.Records[i].Queues) == 0 {
			q.Stack.Records[i].Queues = nil
		}
	}
	return &q
}

func TestProbeCodecEmptyStack(t *testing.T) {
	p := &ProbePayload{Origin: "n1", Seq: 1, SentAt: time.Second}
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "n1" || got.Seq != 1 || len(got.Stack.Records) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestProbeCodecTruncatedFlag(t *testing.T) {
	p := samplePayload()
	p.Stack.Truncated = true
	b, _ := MarshalProbe(p)
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stack.Truncated {
		t.Fatal("truncated flag lost")
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	b, _ := MarshalProbe(samplePayload())
	b[0] = 0xFF
	if _, err := UnmarshalProbe(b); err != ErrBadMagic {
		t.Fatalf("err=%v, want ErrBadMagic", err)
	}
}

func TestUnmarshalTruncatedInputs(t *testing.T) {
	b, _ := MarshalProbe(samplePayload())
	// Every proper prefix must fail cleanly, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := UnmarshalProbe(b[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", i)
		}
	}
}

func TestUnmarshalBadVersion(t *testing.T) {
	b, _ := MarshalProbe(samplePayload())
	b[2] = 99
	if _, err := UnmarshalProbe(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

// TestUnmarshalForgedRecordCount forges probe headers whose declared record
// (or queue) count exceeds what the remaining bytes could possibly hold: the
// decoder must reject them with ErrTruncatedPayload before growing any
// scratch storage, so a hostile datagram cannot drive allocation.
func TestUnmarshalForgedRecordCount(t *testing.T) {
	p := samplePayload()
	good, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	// numRecords sits right after the header strings: magic(2) version(1)
	// flags(1) mode(1) rate(2) hops(1) seq(8) sentAt(8) lastHop(8)
	// originLen(1)+origin targetLen(1)+target.
	recCountOff := 2 + 1 + 1 + 1 + 2 + 1 + 8 + 8 + 8 + 1 + len(p.Origin) + 1 + len(p.Target)
	forged := append([]byte(nil), good...)
	forged[recCountOff] = 255
	var reused ProbePayload
	if err := UnmarshalProbeInto(&reused, forged); err != ErrTruncatedPayload {
		t.Fatalf("forged record count: err=%v, want ErrTruncatedPayload", err)
	}
	if cap(reused.Stack.Records) >= 255 {
		t.Fatalf("forged record count grew scratch to %d records", cap(reused.Stack.Records))
	}
	// Forge the first record's queue count the same way: it follows the
	// record's hopIndex, device string, ports, and three timestamps.
	queueCountOff := recCountOff + 1 +
		1 + 1 + len(p.Stack.Records[0].Device) + 1 + 1 + 8 + 8 + 8
	forged = append(forged[:0], good...)
	forged[queueCountOff] = 255
	if err := UnmarshalProbeInto(&reused, forged); err != ErrTruncatedPayload {
		t.Fatalf("forged queue count: err=%v, want ErrTruncatedPayload", err)
	}
	// The reused payload must still decode good input afterwards.
	if err := UnmarshalProbeInto(&reused, good); err != nil {
		t.Fatalf("good decode after forged inputs: %v", err)
	}
}

// TestProbeCodecModeRoundTrip checks the version-2 header fields survive a
// round trip.
func TestProbeCodecModeRoundTrip(t *testing.T) {
	p := samplePayload()
	p.Mode = ModeProbabilistic
	p.SampleRate = RateToWire(0.25)
	p.HopCount = 7
	p.Stack.Records[0].HopIndex = 3
	p.Stack.Records[1].HopIndex = 6
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeProbabilistic || got.SampleRate != RateToWire(0.25) || got.HopCount != 7 {
		t.Fatalf("header fields lost: mode=%v rate=%d hops=%d", got.Mode, got.SampleRate, got.HopCount)
	}
	if got.Stack.Records[0].HopIndex != 3 || got.Stack.Records[1].HopIndex != 6 {
		t.Fatalf("hop indices lost: %+v", got.Stack.Records)
	}
}

// TestUnmarshalVersion1Compat hand-encodes a version-1 payload (no mode,
// sample-rate, hop-count, or per-record hop-index fields) and checks it still
// decodes, with deterministic-mode defaults filled in.
func TestUnmarshalVersion1Compat(t *testing.T) {
	p := samplePayload()
	var b []byte
	b = append(b, 0x01, 0x03) // GeneveMarker
	b = append(b, 1, 0)       // version 1, flags
	b = append(b, make([]byte, 24)...)
	b[4+7] = 42 // seq = 42
	b = append(b, byte(len(p.Origin)))
	b = append(b, p.Origin...)
	b = append(b, 0) // empty target
	b = append(b, byte(len(p.Stack.Records)))
	for i := range p.Stack.Records {
		r := &p.Stack.Records[i]
		b = append(b, byte(len(r.Device)))
		b = append(b, r.Device...)
		b = append(b, byte(r.IngressPort), byte(r.EgressPort))
		b = append(b, make([]byte, 24)...) // zero latencies/timestamps
		b = append(b, 0)                   // no queues
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeDeterministic || got.Seq != 42 {
		t.Fatalf("v1 decode: mode=%v seq=%d", got.Mode, got.Seq)
	}
	if got.HopCount != len(p.Stack.Records) {
		t.Fatalf("v1 hop count %d, want stack depth %d", got.HopCount, len(p.Stack.Records))
	}
	for i := range got.Stack.Records {
		if got.Stack.Records[i].HopIndex != i {
			t.Fatalf("v1 record %d got hop index %d", i, got.Stack.Records[i].HopIndex)
		}
		if got.Stack.Records[i].Device != p.Stack.Records[i].Device {
			t.Fatalf("v1 record %d device %q", i, got.Stack.Records[i].Device)
		}
	}
}

// TestEncodedSize checks the analytic size against real encodings.
func TestEncodedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		p := randomPayload(rng)
		b, err := MarshalProbe(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(p); got != len(b) {
			t.Fatalf("EncodedSize=%d, encoded %d bytes: %+v", got, len(b), p)
		}
	}
}

func TestMarshalValidation(t *testing.T) {
	long := string(bytes.Repeat([]byte("x"), 300))
	if _, err := MarshalProbe(&ProbePayload{Origin: long}); err == nil {
		t.Error("overlong origin accepted")
	}
	p := &ProbePayload{Origin: "n1"}
	p.Stack.Records = []Record{{Device: long}}
	if _, err := MarshalProbe(p); err == nil {
		t.Error("overlong device accepted")
	}
	p = &ProbePayload{Origin: "n1"}
	p.Stack.Records = []Record{{Device: "s1", EgressPort: 300}}
	if _, err := MarshalProbe(p); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestMarshalClampsQueueValues(t *testing.T) {
	p := &ProbePayload{Origin: "n1"}
	p.Stack.Records = []Record{{
		Device: "s1",
		Queues: []PortQueue{{Port: 0, MaxQueue: 1 << 20}, {Port: 1, MaxQueue: -5}},
	}}
	b, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stack.Records[0].Queues[0].MaxQueue != 65535 {
		t.Errorf("large queue not clamped: %d", got.Stack.Records[0].Queues[0].MaxQueue)
	}
	if got.Stack.Records[0].Queues[1].MaxQueue != 0 {
		t.Errorf("negative queue not clamped: %d", got.Stack.Records[0].Queues[1].MaxQueue)
	}
}

func TestProbeCodecPropertyRoundTrip(t *testing.T) {
	f := func(origin string, seq uint64, sentNs int64, dev string, in, out uint8, linkNs, hopNs int64, port uint8, mq uint16, pk uint32) bool {
		if len(origin) > 255 || len(dev) > 255 {
			return true
		}
		p := &ProbePayload{Origin: origin, Seq: seq, SentAt: time.Duration(sentNs)}
		p.Stack.Append(Record{
			Device:      dev,
			IngressPort: int(in),
			EgressPort:  int(out),
			LinkLatency: absDur(linkNs),
			HopLatency:  absDur(hopNs),
			EgressTS:    time.Duration(seq % 1e9),
			Queues:      []PortQueue{{Port: int(port), MaxQueue: int(mq), Packets: pk}},
		})
		b, err := MarshalProbe(p)
		if err != nil {
			return false
		}
		got, err := UnmarshalProbe(b)
		if err != nil {
			return false
		}
		r, g := p.Stack.Records[0], got.Stack.Records[0]
		return got.Origin == origin && got.Seq == seq &&
			g.Device == r.Device && g.IngressPort == r.IngressPort &&
			g.EgressPort == r.EgressPort && g.LinkLatency == r.LinkLatency &&
			g.Queues[0] == r.Queues[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func absDur(ns int64) time.Duration {
	if ns < 0 {
		if ns == -1<<63 {
			ns++
		}
		ns = -ns
	}
	return time.Duration(ns)
}

// randomPayload builds a pseudo-random payload from a seed: varied record
// counts, queue counts, and device-name lengths so successive decodes into
// one reused payload exercise shrink and grow paths.
func randomPayload(rng *rand.Rand) *ProbePayload {
	p := &ProbePayload{
		Origin:         fmt.Sprintf("n%d", rng.Intn(50)),
		Target:         fmt.Sprintf("t%d", rng.Intn(50)),
		Seq:            rng.Uint64(),
		SentAt:         time.Duration(rng.Int63n(int64(time.Hour))),
		LastHopLatency: time.Duration(rng.Int63n(int64(time.Second))),
	}
	p.Stack.Truncated = rng.Intn(4) == 0
	nrec := rng.Intn(8)
	for i := 0; i < nrec; i++ {
		rec := Record{
			Device:      fmt.Sprintf("sw-%0*d", rng.Intn(6)+1, rng.Intn(1000)),
			IngressPort: rng.Intn(256),
			EgressPort:  rng.Intn(256),
			LinkLatency: time.Duration(rng.Int63n(int64(time.Second))),
			HopLatency:  time.Duration(rng.Int63n(int64(time.Second))),
			EgressTS:    time.Duration(rng.Int63n(int64(time.Hour))),
		}
		for q := rng.Intn(5); q > 0; q-- {
			rec.Queues = append(rec.Queues, PortQueue{
				Port:     rng.Intn(256),
				MaxQueue: rng.Intn(65536),
				Packets:  rng.Uint32(),
			})
		}
		p.Stack.Append(rec)
	}
	return p
}

// TestUnmarshalProbeIntoDirtyReuse decodes a stream of random payloads into
// one reused (dirty, previously populated) payload and checks every decode
// matches a from-scratch UnmarshalProbe of the same bytes.
func TestUnmarshalProbeIntoDirtyReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reused ProbePayload
	var buf []byte
	for i := 0; i < 300; i++ {
		want := randomPayload(rng)
		var err error
		buf, err = AppendProbe(buf[:0], want)
		if err != nil {
			t.Fatalf("iteration %d: AppendProbe: %v", i, err)
		}
		fresh, err := UnmarshalProbe(buf)
		if err != nil {
			t.Fatalf("iteration %d: UnmarshalProbe: %v", i, err)
		}
		if err := UnmarshalProbeInto(&reused, buf); err != nil {
			t.Fatalf("iteration %d: UnmarshalProbeInto: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(&reused), normalize(fresh)) {
			t.Fatalf("iteration %d: reuse mismatch:\n  fresh:  %+v\n  reused: %+v", i, fresh, &reused)
		}
	}
}

// TestUnmarshalProbeIntoBadInputs feeds truncated and corrupted payloads to
// a dirty reused payload: every error from scratch must reproduce under
// reuse, and a subsequent good decode must still succeed.
func TestUnmarshalProbeIntoBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	good, err := MarshalProbe(randomPayload(rng))
	if err != nil {
		t.Fatal(err)
	}
	var reused ProbePayload
	// Dirty the payload first.
	if err := UnmarshalProbeInto(&reused, good); err != nil {
		t.Fatal(err)
	}

	// Every truncation must error identically from scratch and under reuse.
	for i := 0; i < len(good); i++ {
		_, freshErr := UnmarshalProbe(good[:i])
		reuseErr := UnmarshalProbeInto(&reused, good[:i])
		if (freshErr == nil) != (reuseErr == nil) {
			t.Fatalf("truncation at %d: fresh err %v, reuse err %v", i, freshErr, reuseErr)
		}
		if freshErr == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if err := UnmarshalProbeInto(&reused, bad); err != ErrBadMagic {
		t.Fatalf("bad magic under reuse: %v", err)
	}
	// Bad version.
	bad = append(bad[:0], good...)
	bad[2] = 99
	if err := UnmarshalProbeInto(&reused, bad); err == nil {
		t.Fatal("bad version decoded under reuse")
	}

	// The payload must still be reusable after the failed decodes.
	if err := UnmarshalProbeInto(&reused, good); err != nil {
		t.Fatalf("good decode after failures: %v", err)
	}
	fresh, err := UnmarshalProbe(good)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(&reused), normalize(fresh)) {
		t.Fatalf("post-failure decode mismatch:\n  fresh:  %+v\n  reused: %+v", fresh, &reused)
	}
}

// TestAppendProbeExtends checks AppendProbe appends after existing bytes and
// leaves the prefix intact on error.
func TestAppendProbeExtends(t *testing.T) {
	p := samplePayload()
	whole, err := MarshalProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte{0xde, 0xad}
	buf, err := AppendProbe(prefix, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:2], prefix) || !bytes.Equal(buf[2:], whole) {
		t.Fatal("AppendProbe did not append after the existing prefix")
	}

	bad := samplePayload()
	bad.Stack.Records[0].Queues[0].Port = 4096
	out, err := AppendProbe(prefix, bad)
	if err == nil {
		t.Fatal("out-of-range port encoded")
	}
	if len(out) != len(prefix) {
		t.Fatalf("error path returned %d bytes, want the %d-byte prefix", len(out), len(prefix))
	}
}

// BenchmarkProbeCodecReuse measures the zero-allocation encode/decode pair
// against the allocating wrappers (see also BenchmarkProbeCodec at the repo
// root, which feeds the results table in EXPERIMENTS.md).
func BenchmarkProbeCodecReuse(b *testing.B) {
	p := samplePayload()
	buf, err := MarshalProbe(p)
	if err != nil {
		b.Fatal(err)
	}
	var scratch ProbePayload
	var enc []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		enc, err = AppendProbe(enc[:0], p)
		if err != nil {
			b.Fatal(err)
		}
		if err := UnmarshalProbeInto(&scratch, buf); err != nil {
			b.Fatal(err)
		}
	}
}
