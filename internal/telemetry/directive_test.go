package telemetry

import (
	"testing"
	"time"
)

func TestDirectiveRoundTrip(t *testing.T) {
	want := CadenceDirective{Interval: 250 * time.Millisecond, Seq: 7}
	b := EncodeDirective(want)
	if len(b) != DirectiveWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), DirectiveWireSize)
	}
	got, ok := DecodeDirective(b)
	if !ok || got != want {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, want)
	}
}

// Everything malformed decodes as "no directive" — never an error an agent
// could trip over.
func TestDecodeDirectiveRejectsAsNoDirective(t *testing.T) {
	valid := EncodeDirective(CadenceDirective{Interval: time.Second, Seq: 1})
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      valid[:DirectiveWireSize-1],
		"oversized":      append(append([]byte(nil), valid...), 0),
		"wrong magic":    mutate(func(b []byte) { b[0], b[1] = 0x01, 0x03 }),
		"future version": mutate(func(b []byte) { b[2] = directiveVersion + 1 }),
		"zero interval": mutate(func(b []byte) {
			for i := 12; i < 20; i++ {
				b[i] = 0
			}
		}),
		"negative interval": mutate(func(b []byte) { b[12] = 0x80 }),
	}
	for name, frame := range cases {
		if d, ok := DecodeDirective(frame); ok {
			t.Errorf("%s: decoded %+v, want no directive", name, d)
		}
	}
}

// The reserved flags byte is ignored on decode for forward compatibility.
func TestDecodeDirectiveIgnoresFlags(t *testing.T) {
	b := EncodeDirective(CadenceDirective{Interval: time.Millisecond, Seq: 2})
	b[3] = 0xff
	if _, ok := DecodeDirective(b); !ok {
		t.Fatal("set reserved flags rejected the frame")
	}
}

// A directive frame on the probe path must not parse as a probe, and a probe
// payload must not parse as a directive: the markers partition the return
// path.
func TestDirectiveAndProbeFramesAreDisjoint(t *testing.T) {
	dir := EncodeDirective(CadenceDirective{Interval: time.Second, Seq: 3})
	var p ProbePayload
	if err := UnmarshalProbeInto(&p, dir); err == nil {
		t.Fatal("directive frame decoded as a probe payload")
	}
	probe, err := MarshalProbe(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := DecodeDirective(probe[:min(len(probe), DirectiveWireSize)]); ok {
		t.Fatalf("probe payload prefix decoded as directive %+v", d)
	}
}
