package telemetry

import (
	"encoding/binary"
	"time"
)

// Cadence-directive codec. The adaptive control loop sends per-stream
// probing-interval directives from the collector back to the probing
// agents. Unlike the probe codec, the decoder here never errors: an agent
// that cannot parse a directive frame — wrong magic, unknown version,
// forged or truncated length — simply keeps its current cadence. That is
// the v1-compat contract: a new collector talking to an old agent (or a
// corrupted frame) must look like "no directive", never like a protocol
// failure that could wedge the probe stream.
//
// Wire layout (big-endian), fixed size:
//
//	magic    uint16  (DirectiveMarker)
//	version  uint8   (directiveVersion)
//	flags    uint8   (reserved, ignored on decode)
//	seq      uint64  (controller-wide monotonic sequence number)
//	interval int64   (probing period, nanoseconds, > 0)

// DirectiveMarker distinguishes directive frames from probe payloads
// (GeneveMarker) sharing the overlay return path.
const DirectiveMarker uint16 = 0x0AD1

const (
	directiveVersion = 1
	// DirectiveWireSize is the exact encoded size of a directive frame.
	DirectiveWireSize = 2 + 1 + 1 + 8 + 8
)

// CadenceDirective instructs a probe stream to adopt a new emission
// interval. Seq orders directives: appliers ignore frames whose Seq is not
// strictly newer than the last applied one, so reordered datagrams cannot
// roll a cadence back.
type CadenceDirective struct {
	Interval time.Duration
	Seq      uint64
}

// AppendDirective appends the encoded directive frame to buf.
func AppendDirective(buf []byte, d CadenceDirective) []byte {
	buf = binary.BigEndian.AppendUint16(buf, DirectiveMarker)
	buf = append(buf, directiveVersion, 0)
	buf = binary.BigEndian.AppendUint64(buf, d.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.Interval))
	return buf
}

// EncodeDirective encodes the directive frame into a fresh buffer.
func EncodeDirective(d CadenceDirective) []byte {
	return AppendDirective(make([]byte, 0, DirectiveWireSize), d)
}

// DecodeDirective parses a directive frame. ok is false — and the frame
// must be treated as "no directive" — for anything but a well-formed
// current-version frame with a positive interval: short or oversized
// buffers, wrong magic, unknown version bytes, and non-positive intervals
// all decode to nothing rather than an error.
func DecodeDirective(b []byte) (d CadenceDirective, ok bool) {
	if len(b) != DirectiveWireSize {
		return CadenceDirective{}, false
	}
	if binary.BigEndian.Uint16(b) != DirectiveMarker {
		return CadenceDirective{}, false
	}
	if b[2] != directiveVersion {
		return CadenceDirective{}, false
	}
	// b[3] is reserved flags: ignored for forward compatibility.
	iv := int64(binary.BigEndian.Uint64(b[12:]))
	if iv <= 0 {
		return CadenceDirective{}, false
	}
	return CadenceDirective{Seq: binary.BigEndian.Uint64(b[4:]), Interval: time.Duration(iv)}, true
}
