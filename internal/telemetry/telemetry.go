// Package telemetry defines the In-band Network Telemetry (INT) data model
// used by the simulated P4 dataplane, the probing subsystem, and the
// scheduler-side collector: per-device telemetry records, the record stack
// carried by probe packets, and the probe payload itself.
//
// Following the paper, telemetry is *not* embedded in production packets.
// Switches stage telemetry in device registers and flush the registers into
// dedicated probe packets (Geneve-style marked UDP), which keeps the
// per-packet overhead of INT at zero for regular traffic.
package telemetry

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// PortQueue reports the egress-queue occupancy observed on one switch port
// since the registers were last flushed into a probe.
type PortQueue struct {
	// Port is the egress port index on the reporting device.
	Port int
	// MaxQueue is the maximum egress-queue occupancy (in packets) observed
	// for this port since the last register flush. The paper uses the
	// maximum rather than the mean because the mean washes out congestion
	// (most packets see an empty queue even on a saturated port).
	MaxQueue int
	// Packets counts data packets processed through this port since the
	// last flush; it lets the collector distinguish "queue was empty" from
	// "port saw no traffic".
	Packets uint32
}

// Mode selects how devices populate probe packets with INT records.
type Mode uint8

const (
	// ModeDeterministic is the paper's baseline: every traversed device
	// appends its record, so one probe carries the full path.
	ModeDeterministic Mode = 0
	// ModeProbabilistic is the PINT-style lightweight mode: each device
	// inserts its record with probability p (the probe's SampleRate), so a
	// single probe carries a sampled subset of hops and the collector
	// reassembles the path across successive probes.
	ModeProbabilistic Mode = 1
)

// String renders the mode for tables and flags.
func (m Mode) String() string {
	switch m {
	case ModeDeterministic:
		return "deterministic"
	case ModeProbabilistic:
		return "probabilistic"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode parses the string forms accepted by the -telemetry-mode flags.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "deterministic", "det", "":
		return ModeDeterministic, true
	case "probabilistic", "prob", "pint":
		return ModeProbabilistic, true
	default:
		return ModeDeterministic, false
	}
}

// RateToWire converts a sampling probability in [0, 1] to its fixed-point
// wire form. RateFromWire inverts it. The maximum wire value maps to
// exactly p=1.0 so a full-rate probabilistic fleet behaves — and encodes —
// identically to deterministic mode.
func RateToWire(p float64) uint16 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint16
	}
	return uint16(p * math.MaxUint16)
}

// RateFromWire converts a fixed-point wire sampling rate back to [0, 1].
func RateFromWire(w uint16) float64 {
	return float64(w) / math.MaxUint16
}

// Record is the INT report appended by one network device to a probe packet
// as it traverses the device.
type Record struct {
	// Device is the reporting device (switch) identifier.
	Device string
	// HopIndex is the device's position on the probe's path (0-based from
	// the origin). Deterministic probes carry contiguous indices by
	// construction; probabilistic probes carry a sampled subset and the
	// index is what lets the collector reassemble fragments from
	// successive probes into one path.
	HopIndex int
	// IngressPort and EgressPort are the probe's ports on this device.
	IngressPort int
	EgressPort  int
	// LinkLatency is the measured latency of the link the probe arrived on
	// (previous device's egress timestamp extracted at this device's
	// ingress, before enqueueing, so queueing delay is excluded). Zero on
	// the first hop.
	LinkLatency time.Duration
	// HopLatency is the probe's own residence time inside this device
	// (ingress to start of egress transmission), i.e. its queueing delay.
	HopLatency time.Duration
	// EgressTS is the device-local timestamp written as the probe starts
	// transmission out of this device.
	EgressTS time.Duration
	// Queues holds the flushed per-port register state of the device.
	Queues []PortQueue
}

// MaxQueueFor returns the flushed max queue occupancy for the given egress
// port, and whether the device reported that port at all.
func (r *Record) MaxQueueFor(port int) (int, bool) {
	for i := range r.Queues {
		if r.Queues[i].Port == port {
			return r.Queues[i].MaxQueue, true
		}
	}
	return 0, false
}

// Stack is the ordered list of INT records carried by a probe packet. Order
// is significant: consecutive records identify adjacent devices, which is
// what lets the collector infer the network topology.
type Stack struct {
	Records []Record
	// Truncated is set when a record could not be appended because the
	// probe's telemetry budget (MaxRecords) was exhausted.
	Truncated bool
}

// MaxRecords bounds the number of INT records a single probe can carry.
// A 1500-byte probe with ~34 bytes of fixed header leaves room for roughly
// 40 records at ~36 bytes each; we keep a conservative bound.
const MaxRecords = 40

// Append adds a record to the stack, respecting MaxRecords.
func (s *Stack) Append(rec Record) {
	if len(s.Records) >= MaxRecords {
		s.Truncated = true
		return
	}
	s.Records = append(s.Records, rec)
}

// Path returns the ordered device IDs the probe traversed.
func (s *Stack) Path() []string {
	out := make([]string, len(s.Records))
	for i := range s.Records {
		out[i] = s.Records[i].Device
	}
	return out
}

// String renders the stack compactly for logs and tests.
func (s *Stack) String() string {
	var b strings.Builder
	for i := range s.Records {
		r := &s.Records[i]
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s(in=%d,out=%d,link=%v,hop=%v)",
			r.Device, r.IngressPort, r.EgressPort, r.LinkLatency, r.HopLatency)
	}
	if s.Truncated {
		b.WriteString(" [truncated]")
	}
	return b.String()
}

// ProbePayload is the payload of a probe packet: identification plus the
// accumulated INT stack. Probes are emitted by edge servers toward the
// scheduler at a fixed interval (100 ms by default, per the paper).
type ProbePayload struct {
	// Origin is the edge server that emitted the probe.
	Origin string
	// Target is the host the probe is addressed to. Probes planned for
	// link coverage (the paper's probe-route-optimization future work)
	// may target a host other than the scheduler; that host relays the
	// payload to the collector.
	Target string
	// Seq is the per-origin probe sequence number.
	Seq uint64
	// Mode is the telemetry population mode the probe was emitted under.
	// Devices honor the probe's own mode, so a mixed fleet (deterministic
	// and probabilistic probers sharing switches) stays coherent.
	Mode Mode
	// SampleRate is the fixed-point per-hop insertion probability
	// (RateToWire form). Ignored in deterministic mode.
	SampleRate uint16
	// HopCount counts every device the probe traversed, sampled or not:
	// each device increments it, so the collector knows the true path
	// length even when the stack carries only a sampled subset.
	HopCount int
	// SentAt is the origin-local emission timestamp.
	SentAt time.Duration
	// LastHopLatency is the final link's latency measured by the target
	// host (extraction of the last device's egress timestamp at arrival).
	// Zero when the collector itself is the target and measures directly.
	LastHopLatency time.Duration
	// Stack accumulates one Record per traversed device.
	Stack Stack
}

// GeneveMarker is the option class value that marks probe packets so P4
// parsers can distinguish them from regular traffic (the paper marks probes
// using Geneve-style IP header options).
const GeneveMarker uint16 = 0x0103

// ProbePacketSize is the on-wire size of a probe packet in bytes. Probes are
// padded to a full MTU so telemetry never grows the packet mid-path.
const ProbePacketSize = 1500

// ProbeOverheadBps returns the probing traffic rate in bits per second for
// the given number of probing servers and interval (the paper reports
// 120 Kbps for 10 probes/s at 1.5 KB each, i.e. 1.1% of a 10 Mbps link).
func ProbeOverheadBps(servers int, interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	perSecond := float64(servers) / interval.Seconds()
	return perSecond * ProbePacketSize * 8
}
