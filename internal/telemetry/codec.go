package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Binary wire format for probe payloads, shared by the simulator's overhead
// accounting and the live (real-socket) mode. All integers are big-endian.
//
//	header (version 2):
//	  magic      uint16  (GeneveMarker)
//	  version    uint8
//	  flags      uint8   (bit0: truncated)
//	  mode       uint8   (Mode)
//	  sampleRate uint16  (fixed-point p, RateToWire form)
//	  hopCount   uint8   (devices traversed, sampled or not)
//	  seq        uint64
//	  sentAt     int64   (ns)
//	  lastHop    int64   (ns)
//	  originLen  uint8
//	  origin     []byte
//	  targetLen  uint8
//	  target     []byte
//	  numRecords uint8
//	records, each:
//	  hopIndex    uint8   (position on the path; absent in version 1)
//	  deviceLen   uint8
//	  device      []byte
//	  ingressPort uint8
//	  egressPort  uint8
//	  linkLatency int64 (ns)
//	  hopLatency  int64 (ns)
//	  egressTS    int64 (ns)
//	  numQueues   uint8
//	  queues, each: port uint8, maxQueue uint16, packets uint32
//
// Version 1 payloads (no mode/sampleRate/hopCount header fields, no
// per-record hopIndex) still decode: they describe deterministic probes, so
// hop indices are the record positions and the hop count is the stack depth.

const codecVersion = 2

// Minimum wire sizes, used to reject forged record/queue counts before any
// scratch growth: a declared count whose minimum encoding exceeds the bytes
// actually remaining can only be malformed (or hostile) input.
const (
	minRecordWireV1 = 1 + 1 + 1 + 8 + 8 + 8 + 1 // empty device name, no queues
	minRecordWireV2 = minRecordWireV1 + 1       // + hopIndex
	queueWireSize   = 1 + 2 + 4
)

var (
	// ErrBadMagic is returned when a payload does not start with the
	// Geneve probe marker.
	ErrBadMagic = errors.New("telemetry: bad probe magic")
	// ErrTruncatedPayload is returned when a payload ends mid-field.
	ErrTruncatedPayload = errors.New("telemetry: truncated payload")
)

// MarshalProbe encodes a probe payload into its wire format, allocating a
// fresh buffer. Hot paths that encode repeatedly should use AppendProbe with
// a reused buffer instead.
func MarshalProbe(p *ProbePayload) ([]byte, error) {
	return AppendProbe(make([]byte, 0, 64+len(p.Stack.Records)*48), p)
}

// AppendProbe encodes a probe payload into its wire format, appending to dst
// (which may be nil, or a previously returned buffer resliced to [:0] for
// reuse). It returns the extended buffer. On error dst is returned unchanged
// in length, so a reused buffer stays valid.
func AppendProbe(dst []byte, p *ProbePayload) ([]byte, error) {
	if len(p.Origin) > math.MaxUint8 {
		return dst, fmt.Errorf("telemetry: origin %q too long", p.Origin)
	}
	if len(p.Target) > math.MaxUint8 {
		return dst, fmt.Errorf("telemetry: target %q too long", p.Target)
	}
	if len(p.Stack.Records) > math.MaxUint8 {
		return dst, fmt.Errorf("telemetry: too many records (%d)", len(p.Stack.Records))
	}
	if p.HopCount < 0 || p.HopCount > math.MaxUint8 {
		return dst, fmt.Errorf("telemetry: hop count %d out of range", p.HopCount)
	}
	start := len(dst)
	buf := dst
	buf = binary.BigEndian.AppendUint16(buf, GeneveMarker)
	buf = append(buf, codecVersion)
	var flags byte
	if p.Stack.Truncated {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = append(buf, byte(p.Mode))
	buf = binary.BigEndian.AppendUint16(buf, p.SampleRate)
	buf = append(buf, byte(p.HopCount))
	buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.SentAt))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.LastHopLatency))
	buf = append(buf, byte(len(p.Origin)))
	buf = append(buf, p.Origin...)
	buf = append(buf, byte(len(p.Target)))
	buf = append(buf, p.Target...)
	buf = append(buf, byte(len(p.Stack.Records)))
	for i := range p.Stack.Records {
		r := &p.Stack.Records[i]
		if len(r.Device) > math.MaxUint8 {
			return dst[:start], fmt.Errorf("telemetry: device %q too long", r.Device)
		}
		if r.HopIndex < 0 || r.HopIndex > math.MaxUint8 {
			return dst[:start], fmt.Errorf("telemetry: hop index %d out of range in record for %q", r.HopIndex, r.Device)
		}
		if r.IngressPort < 0 || r.IngressPort > math.MaxUint8 ||
			r.EgressPort < 0 || r.EgressPort > math.MaxUint8 {
			return dst[:start], fmt.Errorf("telemetry: port out of range in record for %q", r.Device)
		}
		if len(r.Queues) > math.MaxUint8 {
			return dst[:start], fmt.Errorf("telemetry: too many queue reports for %q", r.Device)
		}
		buf = append(buf, byte(r.HopIndex))
		buf = append(buf, byte(len(r.Device)))
		buf = append(buf, r.Device...)
		buf = append(buf, byte(r.IngressPort), byte(r.EgressPort))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.LinkLatency))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.HopLatency))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.EgressTS))
		buf = append(buf, byte(len(r.Queues)))
		for _, q := range r.Queues {
			if q.Port < 0 || q.Port > math.MaxUint8 {
				return dst[:start], fmt.Errorf("telemetry: queue port %d out of range", q.Port)
			}
			mq := q.MaxQueue
			if mq < 0 {
				mq = 0
			}
			if mq > math.MaxUint16 {
				mq = math.MaxUint16
			}
			buf = append(buf, byte(q.Port))
			buf = binary.BigEndian.AppendUint16(buf, uint16(mq))
			buf = binary.BigEndian.AppendUint32(buf, q.Packets)
		}
	}
	return buf, nil
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.b) {
		return ErrTruncatedPayload
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	return r.strReuse("")
}

// strReuse reads a length-prefixed string, returning prev instead of
// allocating when the wire bytes match it — device and host names recur on
// every probe of a steady telemetry stream, so reused decodes hit this path
// almost always. The comparison below compiles to a byte compare without
// allocating the conversion.
func (r *reader) strReuse(prev string) (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	raw := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	if prev == string(raw) {
		return prev, nil
	}
	return string(raw), nil
}

// UnmarshalProbe decodes a probe payload from its wire format into a fresh
// payload. Hot paths that decode repeatedly should reuse one payload via
// UnmarshalProbeInto instead.
func UnmarshalProbe(b []byte) (*ProbePayload, error) {
	p := &ProbePayload{}
	if err := UnmarshalProbeInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalProbeInto decodes a probe payload from its wire format into p,
// overwriting every field. The record and per-record queue slices already
// present in p are reused (grown only when the incoming payload is larger
// than any previously decoded one), and origin/target/device strings are
// reused when unchanged, so decoding a steady telemetry stream allocates
// nothing. On error p is left in an unspecified, partially overwritten
// state and must not be read — only reused for a later UnmarshalProbeInto
// call.
func UnmarshalProbeInto(p *ProbePayload, b []byte) error {
	r := &reader{b: b}
	magic, err := r.u16()
	if err != nil {
		return err
	}
	if magic != GeneveMarker {
		return ErrBadMagic
	}
	ver, err := r.u8()
	if err != nil {
		return err
	}
	if ver != 1 && ver != codecVersion {
		return fmt.Errorf("telemetry: unsupported codec version %d", ver)
	}
	flags, err := r.u8()
	if err != nil {
		return err
	}
	p.Stack.Truncated = flags&1 != 0
	p.Mode, p.SampleRate, p.HopCount = ModeDeterministic, 0, 0
	if ver >= 2 {
		mode, err := r.u8()
		if err != nil {
			return err
		}
		p.Mode = Mode(mode)
		if p.SampleRate, err = r.u16(); err != nil {
			return err
		}
		hops, err := r.u8()
		if err != nil {
			return err
		}
		p.HopCount = int(hops)
	}
	if p.Seq, err = r.u64(); err != nil {
		return err
	}
	sentAt, err := r.u64()
	if err != nil {
		return err
	}
	p.SentAt = time.Duration(sentAt)
	lastHop, err := r.u64()
	if err != nil {
		return err
	}
	p.LastHopLatency = time.Duration(lastHop)
	if p.Origin, err = r.strReuse(p.Origin); err != nil {
		return err
	}
	if p.Target, err = r.strReuse(p.Target); err != nil {
		return err
	}
	n, err := r.u8()
	if err != nil {
		return err
	}
	// Reject a declared record count that cannot fit in the remaining bytes
	// BEFORE growing scratch storage: a forged count must not be able to
	// drive allocation (the scratch buffers live for the life of a decode
	// loop, so one bad datagram would otherwise pin the growth forever).
	minRecord := minRecordWireV2
	if ver == 1 {
		minRecord = minRecordWireV1
	}
	if int(n)*minRecord > len(r.b)-r.off {
		return ErrTruncatedPayload
	}
	// Reuse previously decoded record storage (notably each slot's Queues
	// backing array); every field is overwritten below. When growing, copy
	// the old slots so their Queues arrays stay reusable.
	recs := p.Stack.Records
	if cap(recs) < int(n) {
		grown := make([]Record, int(n))
		copy(grown, recs[:cap(recs)])
		recs = grown
	}
	recs = recs[:n]
	for i := 0; i < int(n); i++ {
		rec := &recs[i]
		rec.HopIndex = i
		if ver >= 2 {
			hop, err := r.u8()
			if err != nil {
				return err
			}
			rec.HopIndex = int(hop)
		}
		if rec.Device, err = r.strReuse(rec.Device); err != nil {
			return err
		}
		in, err := r.u8()
		if err != nil {
			return err
		}
		out, err := r.u8()
		if err != nil {
			return err
		}
		rec.IngressPort, rec.EgressPort = int(in), int(out)
		ll, err := r.u64()
		if err != nil {
			return err
		}
		hl, err := r.u64()
		if err != nil {
			return err
		}
		ts, err := r.u64()
		if err != nil {
			return err
		}
		rec.LinkLatency = time.Duration(ll)
		rec.HopLatency = time.Duration(hl)
		rec.EgressTS = time.Duration(ts)
		nq, err := r.u8()
		if err != nil {
			return err
		}
		// Same forged-count guard as for records: bound the queue count by
		// the bytes actually present before growing scratch.
		if int(nq)*queueWireSize > len(r.b)-r.off {
			return ErrTruncatedPayload
		}
		queues := rec.Queues
		if cap(queues) < int(nq) {
			queues = make([]PortQueue, int(nq))
		}
		queues = queues[:nq]
		for j := 0; j < int(nq); j++ {
			port, err := r.u8()
			if err != nil {
				return err
			}
			mq, err := r.u16()
			if err != nil {
				return err
			}
			pk, err := r.u32()
			if err != nil {
				return err
			}
			queues[j] = PortQueue{Port: int(port), MaxQueue: int(mq), Packets: pk}
		}
		rec.Queues = queues
	}
	p.Stack.Records = recs
	if ver == 1 {
		// Version-1 probes are deterministic: the stack is the whole path.
		p.HopCount = len(recs)
	}
	return nil
}

// EncodedSize returns the exact wire size AppendProbe would produce for p,
// without encoding. The simulator uses it for bytes-on-wire accounting:
// probes travel as fixed-MTU packets in the sim, so the meaningful overhead
// number is the telemetry payload a real network would carry.
func EncodedSize(p *ProbePayload) int {
	n := 2 + 1 + 1 + 1 + 2 + 1 + 8 + 8 + 8 + // magic..hopCount, seq, sentAt, lastHop
		1 + len(p.Origin) + 1 + len(p.Target) + 1
	for i := range p.Stack.Records {
		r := &p.Stack.Records[i]
		n += minRecordWireV2 + len(r.Device) + len(r.Queues)*queueWireSize
	}
	return n
}
