package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Binary wire format for probe payloads, shared by the simulator's overhead
// accounting and the live (real-socket) mode. All integers are big-endian.
//
//	header:
//	  magic      uint16  (GeneveMarker)
//	  version    uint8
//	  flags      uint8   (bit0: truncated)
//	  seq        uint64
//	  sentAt     int64   (ns)
//	  lastHop    int64   (ns)
//	  originLen  uint8
//	  origin     []byte
//	  targetLen  uint8
//	  target     []byte
//	  numRecords uint8
//	records, each:
//	  deviceLen   uint8
//	  device      []byte
//	  ingressPort uint8
//	  egressPort  uint8
//	  linkLatency int64 (ns)
//	  hopLatency  int64 (ns)
//	  egressTS    int64 (ns)
//	  numQueues   uint8
//	  queues, each: port uint8, maxQueue uint16, packets uint32

const codecVersion = 1

var (
	// ErrBadMagic is returned when a payload does not start with the
	// Geneve probe marker.
	ErrBadMagic = errors.New("telemetry: bad probe magic")
	// ErrTruncatedPayload is returned when a payload ends mid-field.
	ErrTruncatedPayload = errors.New("telemetry: truncated payload")
)

// MarshalProbe encodes a probe payload into its wire format.
func MarshalProbe(p *ProbePayload) ([]byte, error) {
	if len(p.Origin) > math.MaxUint8 {
		return nil, fmt.Errorf("telemetry: origin %q too long", p.Origin)
	}
	if len(p.Target) > math.MaxUint8 {
		return nil, fmt.Errorf("telemetry: target %q too long", p.Target)
	}
	if len(p.Stack.Records) > math.MaxUint8 {
		return nil, fmt.Errorf("telemetry: too many records (%d)", len(p.Stack.Records))
	}
	buf := make([]byte, 0, 64+len(p.Stack.Records)*48)
	buf = binary.BigEndian.AppendUint16(buf, GeneveMarker)
	buf = append(buf, codecVersion)
	var flags byte
	if p.Stack.Truncated {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.SentAt))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.LastHopLatency))
	buf = append(buf, byte(len(p.Origin)))
	buf = append(buf, p.Origin...)
	buf = append(buf, byte(len(p.Target)))
	buf = append(buf, p.Target...)
	buf = append(buf, byte(len(p.Stack.Records)))
	for i := range p.Stack.Records {
		r := &p.Stack.Records[i]
		if len(r.Device) > math.MaxUint8 {
			return nil, fmt.Errorf("telemetry: device %q too long", r.Device)
		}
		if r.IngressPort < 0 || r.IngressPort > math.MaxUint8 ||
			r.EgressPort < 0 || r.EgressPort > math.MaxUint8 {
			return nil, fmt.Errorf("telemetry: port out of range in record for %q", r.Device)
		}
		if len(r.Queues) > math.MaxUint8 {
			return nil, fmt.Errorf("telemetry: too many queue reports for %q", r.Device)
		}
		buf = append(buf, byte(len(r.Device)))
		buf = append(buf, r.Device...)
		buf = append(buf, byte(r.IngressPort), byte(r.EgressPort))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.LinkLatency))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.HopLatency))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.EgressTS))
		buf = append(buf, byte(len(r.Queues)))
		for _, q := range r.Queues {
			if q.Port < 0 || q.Port > math.MaxUint8 {
				return nil, fmt.Errorf("telemetry: queue port %d out of range", q.Port)
			}
			mq := q.MaxQueue
			if mq < 0 {
				mq = 0
			}
			if mq > math.MaxUint16 {
				mq = math.MaxUint16
			}
			buf = append(buf, byte(q.Port))
			buf = binary.BigEndian.AppendUint16(buf, uint16(mq))
			buf = binary.BigEndian.AppendUint32(buf, q.Packets)
		}
	}
	return buf, nil
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.b) {
		return ErrTruncatedPayload
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// UnmarshalProbe decodes a probe payload from its wire format.
func UnmarshalProbe(b []byte) (*ProbePayload, error) {
	r := &reader{b: b}
	magic, err := r.u16()
	if err != nil {
		return nil, err
	}
	if magic != GeneveMarker {
		return nil, ErrBadMagic
	}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("telemetry: unsupported codec version %d", ver)
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	p := &ProbePayload{}
	p.Stack.Truncated = flags&1 != 0
	if p.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	sentAt, err := r.u64()
	if err != nil {
		return nil, err
	}
	p.SentAt = time.Duration(sentAt)
	lastHop, err := r.u64()
	if err != nil {
		return nil, err
	}
	p.LastHopLatency = time.Duration(lastHop)
	if p.Origin, err = r.str(); err != nil {
		return nil, err
	}
	if p.Target, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	p.Stack.Records = make([]Record, 0, n)
	for i := 0; i < int(n); i++ {
		var rec Record
		if rec.Device, err = r.str(); err != nil {
			return nil, err
		}
		in, err := r.u8()
		if err != nil {
			return nil, err
		}
		out, err := r.u8()
		if err != nil {
			return nil, err
		}
		rec.IngressPort, rec.EgressPort = int(in), int(out)
		ll, err := r.u64()
		if err != nil {
			return nil, err
		}
		hl, err := r.u64()
		if err != nil {
			return nil, err
		}
		ts, err := r.u64()
		if err != nil {
			return nil, err
		}
		rec.LinkLatency = time.Duration(ll)
		rec.HopLatency = time.Duration(hl)
		rec.EgressTS = time.Duration(ts)
		nq, err := r.u8()
		if err != nil {
			return nil, err
		}
		rec.Queues = make([]PortQueue, 0, nq)
		for j := 0; j < int(nq); j++ {
			port, err := r.u8()
			if err != nil {
				return nil, err
			}
			mq, err := r.u16()
			if err != nil {
				return nil, err
			}
			pk, err := r.u32()
			if err != nil {
				return nil, err
			}
			rec.Queues = append(rec.Queues, PortQueue{Port: int(port), MaxQueue: int(mq), Packets: pk})
		}
		p.Stack.Records = append(p.Stack.Records, rec)
	}
	return p, nil
}
