package netsim

import (
	"testing"
	"time"

	"intsched/internal/simtime"
)

// buildLine returns h1 - s1 - h2 with the given link config.
func buildLine(t *testing.T, cfg LinkConfig) (*Network, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	if _, err := n.Connect("h1", "s1", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("s1", "h2", cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, e
}

func TestDeliveryTiming(t *testing.T) {
	// 1500B at 12 Mbps = 1 ms serialization; 10 ms propagation per link.
	cfg := LinkConfig{RateBps: 12_000_000, Delay: 10 * time.Millisecond}
	n, e := buildLine(t, cfg)
	var deliveredAt time.Duration
	n.Node("h2").Handler = func(p *Packet) { deliveredAt = e.Now() }
	pkt := n.NewPacket(KindData, "h1", "h2", 1500)
	if err := n.Send(pkt); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	// h1 tx (1ms) + prop (10ms) + s1 tx (1ms) + prop (10ms) = 22ms.
	want := 22 * time.Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if n.Delivered != 1 {
		t.Fatalf("Delivered=%d", n.Delivered)
	}
}

func TestAsymmetricRates(t *testing.T) {
	// h1 egresses at 120 Mbps (0.1 ms/pkt), s1 egresses at 12 Mbps (1 ms).
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	if _, err := n.Connect("h1", "s1", LinkConfig{RateBps: 120_000_000, ReverseRateBps: 12_000_000, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("s1", "h2", LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	n.Node("h2").Handler = func(p *Packet) { at = e.Now() }
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	// 0.1ms + 1ms + 1ms + 1ms = 3.1ms.
	want := 3100 * time.Microsecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestQueueBuildsAtSlowEgress(t *testing.T) {
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	// Fast ingress, slow egress.
	_, _ = n.Connect("h1", "s1", LinkConfig{RateBps: 1_000_000_000, Delay: time.Millisecond})
	_, _ = n.Connect("s1", "h2", LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond, QueueCap: 100})
	_ = n.ComputeRoutes()
	for i := 0; i < 10; i++ {
		_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	}
	e.RunUntilIdle()
	port := n.Node("s1").Ports[n.Node("s1").PortTo("h2")]
	if port.MaxQueueEver < 8 {
		t.Fatalf("slow egress queue max %d, want ≥8", port.MaxQueueEver)
	}
	if n.Delivered != 10 {
		t.Fatalf("delivered %d", n.Delivered)
	}
}

func TestDropTailWhenQueueFull(t *testing.T) {
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	_, _ = n.Connect("h1", "s1", LinkConfig{RateBps: 1_000_000_000, Delay: time.Microsecond})
	_, _ = n.Connect("s1", "h2", LinkConfig{RateBps: 1_000_000, Delay: time.Microsecond, QueueCap: 4})
	_ = n.ComputeRoutes()
	var drops []DropReason
	n.OnDrop = func(p *Packet, at *Node, r DropReason) { drops = append(drops, r) }
	for i := 0; i < 20; i++ {
		_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	}
	e.RunUntilIdle()
	if len(drops) == 0 {
		t.Fatal("no drops with a 4-packet queue and 20-packet burst")
	}
	for _, r := range drops {
		if r != DropQueueFull {
			t.Fatalf("unexpected drop reason %v", r)
		}
	}
	if n.Delivered+n.Dropped != 20 {
		t.Fatalf("delivered %d + dropped %d != 20", n.Delivered, n.Dropped)
	}
}

func TestLocalDelivery(t *testing.T) {
	cfg := LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	n, e := buildLine(t, cfg)
	got := false
	n.Node("h1").Handler = func(p *Packet) { got = true }
	_ = n.Send(n.NewPacket(KindControl, "h1", "h1", 100))
	e.RunUntilIdle()
	if !got {
		t.Fatal("self-addressed packet not delivered")
	}
	if e.Now() != 0 {
		t.Fatalf("local delivery consumed time: %v", e.Now())
	}
}

func TestSendValidation(t *testing.T) {
	cfg := LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	n, _ := buildLine(t, cfg)
	if err := n.Send(n.NewPacket(KindData, "nope", "h2", 100)); err == nil {
		t.Error("unknown source accepted")
	}
	if err := n.Send(n.NewPacket(KindData, "h1", "nope", 100)); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := n.Send(n.NewPacket(KindData, "s1", "h2", 100)); err == nil {
		t.Error("switch as source accepted")
	}
	p := n.NewPacket(KindData, "h1", "h2", 0)
	if err := n.Send(p); err == nil {
		t.Error("zero-size packet accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	if _, err := n.Connect("h1", "h1", LinkConfig{RateBps: 1}); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := n.Connect("h1", "s1", LinkConfig{RateBps: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := n.Connect("h1", "s1", LinkConfig{RateBps: 1, Delay: -time.Second}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := n.Connect("h1", "s1", LinkConfig{RateBps: 1}); err != nil {
		t.Fatalf("valid connect failed: %v", err)
	}
	if _, err := n.Connect("h1", "s1", LinkConfig{RateBps: 1}); err == nil {
		t.Error("second host uplink accepted")
	}
	if _, err := n.Connect("x", "s1", LinkConfig{RateBps: 1}); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	n.AddSwitch("h1")
}

func TestRoutingShortestPathDeterministic(t *testing.T) {
	// Diamond: h1-s1, s1-s2, s1-s3, s2-s4, s3-s4, s4-h2. Two equal paths;
	// lexicographic tie-break must pick s2 over s3.
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	for _, s := range []NodeID{"s1", "s2", "s3", "s4"} {
		n.AddSwitch(s)
	}
	cfg := LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	for _, pair := range [][2]NodeID{{"h1", "s1"}, {"s1", "s2"}, {"s1", "s3"}, {"s2", "s4"}, {"s3", "s4"}, {"s4", "h2"}} {
		if _, err := n.Connect(pair[0], pair[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	path, err := n.PathBetween("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{"h1", "s1", "s2", "s4", "h2"}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	if hops, _ := n.HopCount("h1", "h2"); hops != 4 {
		t.Fatalf("hops=%d, want 4", hops)
	}
}

func TestHostsDoNotForwardTransit(t *testing.T) {
	// h1 - s1 - hMid - s2 - h2: the only "path" runs through host hMid,
	// which must not forward, so h1 cannot reach h2.
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("hMid")
	n.AddHost("h2")
	n.AddSwitch("s1")
	n.AddSwitch("s2")
	cfg := LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	// hMid would need two ports; hosts are single-homed, so connect via
	// two switches that only meet at hMid is impossible by construction.
	// Instead verify PathBetween fails for a disconnected pair.
	_, _ = n.Connect("h1", "s1", cfg)
	_, _ = n.Connect("hMid", "s2", cfg)
	_, _ = n.Connect("h2", "s2", cfg)
	_ = n.ComputeRoutes()
	if _, err := n.PathBetween("h1", "h2"); err == nil {
		t.Fatal("found path across disconnected components")
	}
	// h2 and hMid share s2.
	if hops, err := n.HopCount("h2", "hMid"); err != nil || hops != 2 {
		t.Fatalf("hops=%d err=%v, want 2", hops, err)
	}
}

func TestTTLDrop(t *testing.T) {
	cfg := LinkConfig{RateBps: 1_000_000_000, Delay: time.Microsecond}
	n, e := buildLine(t, cfg)
	var reason DropReason
	dropped := false
	n.OnDrop = func(p *Packet, at *Node, r DropReason) { dropped, reason = true, r }
	pkt := n.NewPacket(KindData, "h1", "h2", 100)
	pkt.TTL = 1
	_ = n.Send(pkt)
	e.RunUntilIdle()
	if !dropped || reason != DropTTL {
		t.Fatalf("dropped=%v reason=%v, want TTL drop", dropped, reason)
	}
}

func TestEgressStampRoundTrip(t *testing.T) {
	p := &Packet{}
	if _, ok := p.TakeEgressStamp(); ok {
		t.Fatal("stamp present on fresh packet")
	}
	p.StampEgress(5 * time.Second)
	ts, ok := p.TakeEgressStamp()
	if !ok || ts != 5*time.Second {
		t.Fatalf("got %v,%v", ts, ok)
	}
	if _, ok := p.TakeEgressStamp(); ok {
		t.Fatal("stamp not cleared after take")
	}
}

func TestNodeAccessors(t *testing.T) {
	cfg := LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	n, _ := buildLine(t, cfg)
	s1 := n.Node("s1")
	if s1.PortTo("h1") < 0 || s1.PortTo("h2") < 0 {
		t.Fatal("PortTo failed for neighbors")
	}
	if s1.PortTo("nope") != -1 {
		t.Fatal("PortTo found nonexistent neighbor")
	}
	nb := s1.Neighbors()
	if len(nb) != 2 {
		t.Fatalf("neighbors %v", nb)
	}
	if len(n.Hosts()) != 2 || len(n.Switches()) != 1 || len(n.Nodes()) != 3 {
		t.Fatal("node listing wrong")
	}
	if len(n.Links()) != 2 {
		t.Fatal("links listing wrong")
	}
	if got := n.Node("h1").Kind.String(); got != "host" {
		t.Fatalf("kind string %q", got)
	}
}

func TestPacketKindStrings(t *testing.T) {
	kinds := []PacketKind{KindData, KindAck, KindProbe, KindPingReq, KindPingResp, KindControl, KindDatagram}
	want := []string{"data", "ack", "probe", "ping-req", "ping-resp", "control", "datagram"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
	if PacketKind(200).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	cfg := LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond, QueueCap: 64}
	n, e := buildLine(t, cfg)
	var got []int64
	n.Node("h2").Handler = func(p *Packet) { got = append(got, p.Seq) }
	for i := 0; i < 30; i++ {
		p := n.NewPacket(KindData, "h1", "h2", 1500)
		p.Seq = int64(i)
		_ = n.Send(p)
	}
	e.RunUntilIdle()
	if len(got) != 30 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("reordered: %v", got)
		}
	}
}

func TestTransientPacketRecycling(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, e := buildLine(t, cfg)
	var got []uint64
	n.Node("h2").Handler = func(p *Packet) { got = append(got, p.ID) }

	// Sequential transient sends: after the first delivery, every NewPacket
	// reuses the recycled node but still gets a fresh ID and clean fields.
	for i := 0; i < 5; i++ {
		pkt := n.NewPacket(KindDatagram, "h1", "h2", 500).MarkTransient()
		if pkt.TTL != DefaultTTL || pkt.Payload != nil || pkt.Probe != nil || pkt.hops != 0 {
			t.Fatalf("reused packet not reset: %+v", pkt)
		}
		if err := n.Send(pkt); err != nil {
			t.Fatal(err)
		}
		e.RunUntilIdle()
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("packet IDs not strictly increasing: %v", got)
		}
	}
	if n.PacketsRecycled != 4 {
		t.Fatalf("PacketsRecycled=%d, want 4", n.PacketsRecycled)
	}

	// Non-transient packets are never recycled.
	for i := 0; i < 3; i++ {
		if err := n.Send(n.NewPacket(KindProbe, "h1", "h2", 500)); err != nil {
			t.Fatal(err)
		}
		e.RunUntilIdle()
	}
	// The free list was drained by the first probe's NewPacket; the probes
	// themselves must not refill it.
	if len(n.freePkts) != 0 {
		t.Fatalf("non-transient packets were recycled: free list %d", len(n.freePkts))
	}
}

func TestTransientPacketRecycledOnDrop(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, e := buildLine(t, cfg)
	pkt := n.NewPacket(KindDatagram, "h1", "h3", 500).MarkTransient()
	pkt.Dst = "nowhere"
	if err := n.Send(pkt); err == nil {
		// Unknown destination is a Send error, not a drop; use a routeless
		// but known destination instead.
		t.Fatal("expected send error for unknown destination")
	}
	// Known node without a route: host h1 -> h1's own switch has routes to
	// all hosts here, so force a TTL drop instead.
	p2 := n.NewPacket(KindDatagram, "h1", "h2", 500).MarkTransient()
	p2.TTL = 1 // decremented to 0 at s1 -> dropped
	if err := n.Send(p2); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	if n.Dropped != 1 {
		t.Fatalf("Dropped=%d, want 1", n.Dropped)
	}
	if len(n.freePkts) != 1 {
		t.Fatalf("dropped transient packet not recycled: free list %d", len(n.freePkts))
	}
}
