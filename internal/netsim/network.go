package netsim

import (
	"fmt"
	"sort"
	"time"

	"intsched/internal/simtime"
)

// NodeKind distinguishes hosts from switches.
type NodeKind uint8

const (
	// Host nodes originate and sink traffic. They have exactly one port.
	Host NodeKind = iota
	// Switch nodes forward traffic between ports and run the dataplane
	// processing pipeline.
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// ProcessorContext is handed to dataplane hooks with everything a P4-style
// program can see about the packet's position in the device.
type ProcessorContext struct {
	// Device is the switch executing the pipeline.
	Device *Node
	// InPort is the port the packet arrived on (-1 if locally generated).
	InPort int
	// OutPort is the egress port selected by forwarding.
	OutPort int
	// QueueLen is the occupancy of the egress queue (packets), measured
	// before this packet is enqueued (ingress) or after it is dequeued
	// for transmission (egress) — mirroring BMv2's enq_qdepth/deq_qdepth.
	QueueLen int
	// Now is the current virtual time.
	Now time.Duration
}

// Processor is the P4-style packet-processing pipeline attached to a switch.
// Ingress runs on arrival, after the forwarding decision but before the
// packet is enqueued. Egress runs when the packet reaches the head of the
// egress queue and starts transmission.
type Processor interface {
	Ingress(ctx *ProcessorContext, pkt *Packet)
	Egress(ctx *ProcessorContext, pkt *Packet)
}

// Handler receives packets delivered to a host.
type Handler func(pkt *Packet)

// Node is a host or switch.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Ports []*Port

	// Processor is the dataplane pipeline (switches only; may be nil).
	Processor Processor
	// Handler is the local delivery callback (hosts only).
	Handler Handler

	net *Network
	// routes maps destination host -> egress port index.
	routes map[NodeID]int
	// halted nodes drop everything (see SetNodeHalted).
	halted bool
}

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// PortTo returns the port whose link leads directly to neighbor, or -1.
func (n *Node) PortTo(neighbor NodeID) int {
	for i, p := range n.Ports {
		if p.peer != nil && p.peer.node.ID == neighbor {
			return i
		}
	}
	return -1
}

// Neighbors returns the IDs of directly connected nodes in port order,
// regardless of link or node state (the physical wiring).
func (n *Node) Neighbors() []NodeID {
	out := make([]NodeID, 0, len(n.Ports))
	for _, p := range n.Ports {
		if p.peer != nil {
			out = append(out, p.peer.node.ID)
		}
	}
	return out
}

// activeNeighbors returns neighbors reachable over live links, excluding
// halted peers — the view routing reconvergence sees.
func (n *Node) activeNeighbors() []NodeID {
	out := make([]NodeID, 0, len(n.Ports))
	for _, p := range n.Ports {
		if p.peer != nil && !p.link.down && !p.peer.node.halted {
			out = append(out, p.peer.node.ID)
		}
	}
	return out
}

// Port is one side of a link. It owns the egress queue and transmitter for
// its direction of the link.
type Port struct {
	node  *Node
	index int
	link  *Link
	peer  *Port

	queue   []*Packet
	busy    bool
	rateBps int64

	// Stats
	TxPackets uint64
	TxBytes   uint64
	RxPackets uint64
	Drops     uint64
	// MaxQueueEver tracks the largest occupancy seen over the port's
	// lifetime (diagnostics; the dataplane keeps its own windowed max).
	MaxQueueEver int
}

// Node returns the owning node.
func (p *Port) Node() *Node { return p.node }

// Index returns the port's index on its node.
func (p *Port) Index() int { return p.index }

// Link returns the attached link.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// QueueLen returns the current egress-queue occupancy in packets, counting
// the packet being transmitted.
func (p *Port) QueueLen() int {
	n := len(p.queue)
	if p.busy {
		n++
	}
	return n
}

// LinkConfig describes one link's characteristics.
type LinkConfig struct {
	// RateBps is the transmission rate of the A→B direction (the first
	// Connect argument's egress) in bits per second.
	RateBps int64
	// ReverseRateBps is the B→A rate; zero means symmetric (RateBps).
	// Asymmetric rates model the paper's testbed, where host NICs are fast
	// but BMv2 switch forwarding caps at ~20 Mbps — the bottleneck (and
	// therefore the queueing) lives at switch egress ports.
	ReverseRateBps int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueCap is the egress queue capacity in packets (per direction).
	// Zero means DefaultQueueCap.
	QueueCap int
}

// DefaultQueueCap is the per-port egress queue capacity used when a link
// does not specify one. BMv2's default queue depth is 64 packets; we use
// the same so Fig-3 queue magnitudes are comparable.
const DefaultQueueCap = 64

// Link is a full-duplex connection between two ports.
type Link struct {
	A, B   *Port
	Config LinkConfig

	// down links pass no traffic (see SetLinkUp). downGen increments on
	// every up→down transition so callbacks scheduled before a flap can
	// tell the link they captured is not the link they see.
	down    bool
	downGen uint64
}

// Ends returns the node IDs at the two ends.
func (l *Link) Ends() (NodeID, NodeID) { return l.A.node.ID, l.B.node.ID }

// DropReason classifies packet drops for stats and tests.
type DropReason uint8

const (
	// DropQueueFull means the egress queue had no room.
	DropQueueFull DropReason = iota
	// DropTTL means the hop limit reached zero.
	DropTTL
	// DropNoRoute means the switch had no route to the destination.
	DropNoRoute
	// DropLinkDown means the packet was queued on, serializing onto, or
	// propagating across a link that went down.
	DropLinkDown
	// DropHalted means the packet met a halted node (as source, transit,
	// or destination).
	DropHalted
)

func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "no-route"
	case DropLinkDown:
		return "link-down"
	case DropHalted:
		return "halted"
	case DropInjected:
		return "injected"
	}
	return "unknown"
}

// Network owns the topology and drives packet motion on a simtime engine.
type Network struct {
	engine *simtime.Engine

	nodes map[NodeID]*Node
	order []NodeID // insertion order, for deterministic iteration
	links []*Link

	nextPacketID uint64
	// freePkts is the free list of recycled transient packets (see
	// Packet.MarkTransient); NewPacket pops from it before allocating.
	freePkts []*Packet

	tracer Tracer
	fault  FaultFn

	// OnDrop, when set, is invoked for every dropped packet.
	OnDrop func(pkt *Packet, at *Node, reason DropReason)

	// Stats
	Delivered uint64
	Dropped   uint64
	// PacketsRecycled counts packets reused from the free list instead of
	// freshly allocated (allocation diagnostics).
	PacketsRecycled uint64
}

// New creates an empty network on the given engine.
func New(engine *simtime.Engine) *Network {
	return &Network{engine: engine, nodes: make(map[NodeID]*Node)}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *simtime.Engine { return n.engine }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.engine.Now() }

func (n *Network) addNode(id NodeID, kind NodeKind) *Node {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("netsim: duplicate node %q", id))
	}
	node := &Node{ID: id, Kind: kind, net: n, routes: make(map[NodeID]int)}
	n.nodes[id] = node
	n.order = append(n.order, id)
	return node
}

// AddHost adds a host node.
func (n *Network) AddHost(id NodeID) *Node { return n.addNode(id, Host) }

// AddSwitch adds a switch node.
func (n *Network) AddSwitch(id NodeID) *Node { return n.addNode(id, Switch) }

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Nodes returns all node IDs in insertion order.
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, len(n.order))
	copy(out, n.order)
	return out
}

// Hosts returns all host IDs in insertion order.
func (n *Network) Hosts() []NodeID {
	var out []NodeID
	for _, id := range n.order {
		if n.nodes[id].Kind == Host {
			out = append(out, id)
		}
	}
	return out
}

// Switches returns all switch IDs in insertion order.
func (n *Network) Switches() []NodeID {
	var out []NodeID
	for _, id := range n.order {
		if n.nodes[id].Kind == Switch {
			out = append(out, id)
		}
	}
	return out
}

// Links returns all links.
func (n *Network) Links() []*Link {
	out := make([]*Link, len(n.links))
	copy(out, n.links)
	return out
}

// Connect joins nodes a and b with a full-duplex link.
func (n *Network) Connect(a, b NodeID, cfg LinkConfig) (*Link, error) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return nil, fmt.Errorf("netsim: connect %s-%s: unknown node", a, b)
	}
	if a == b {
		return nil, fmt.Errorf("netsim: connect %s to itself", a)
	}
	if na.Kind == Host && len(na.Ports) == 1 {
		return nil, fmt.Errorf("netsim: host %s already has an uplink", a)
	}
	if nb.Kind == Host && len(nb.Ports) == 1 {
		return nil, fmt.Errorf("netsim: host %s already has an uplink", b)
	}
	if cfg.RateBps <= 0 {
		return nil, fmt.Errorf("netsim: connect %s-%s: rate must be positive", a, b)
	}
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("netsim: connect %s-%s: negative delay", a, b)
	}
	if cfg.ReverseRateBps < 0 {
		return nil, fmt.Errorf("netsim: connect %s-%s: negative reverse rate", a, b)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.ReverseRateBps == 0 {
		cfg.ReverseRateBps = cfg.RateBps
	}
	pa := &Port{node: na, index: len(na.Ports), rateBps: cfg.RateBps}
	pb := &Port{node: nb, index: len(nb.Ports), rateBps: cfg.ReverseRateBps}
	link := &Link{A: pa, B: pb, Config: cfg}
	pa.link, pb.link = link, link
	pa.peer, pb.peer = pb, pa
	na.Ports = append(na.Ports, pa)
	nb.Ports = append(nb.Ports, pb)
	n.links = append(n.links, link)
	return link, nil
}

// ComputeRoutes installs shortest-path routes (hop count) from every node to
// every host using BFS. Ties are broken deterministically by lexicographic
// neighbor ID so the scheduler-side topology traversal can reproduce the
// exact same paths from learned telemetry.
//
// Down links and halted nodes are invisible to the BFS, so re-running
// ComputeRoutes after a fault models routing reconvergence: destinations cut
// off by the fault simply get no route entry (senders see DropNoRoute).
// Until it is re-run, routes keep pointing at dead links — the black-hole
// window the fault experiments measure.
func (n *Network) ComputeRoutes() error {
	hosts := n.Hosts()
	for _, src := range n.order {
		node := n.nodes[src]
		node.routes = make(map[NodeID]int, len(hosts))
	}
	// BFS from each host backwards: compute, for each node, the next hop
	// toward that host.
	for _, dst := range hosts {
		if n.nodes[dst].halted {
			continue
		}
		// dist and parent via BFS over the undirected graph rooted at dst.
		next := map[NodeID]NodeID{} // node -> neighbor one step closer to dst
		visited := map[NodeID]bool{dst: true}
		frontier := []NodeID{dst}
		for len(frontier) > 0 {
			var nextFrontier []NodeID
			for _, cur := range frontier {
				neighbors := n.nodes[cur].activeNeighbors()
				sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
				for _, nb := range neighbors {
					if visited[nb] {
						continue
					}
					// Hosts never forward transit traffic.
					if n.nodes[nb].Kind == Host && nb != dst {
						visited[nb] = true
						next[nb] = cur
						continue
					}
					visited[nb] = true
					next[nb] = cur
					nextFrontier = append(nextFrontier, nb)
				}
			}
			frontier = nextFrontier
		}
		for id, via := range next {
			node := n.nodes[id]
			port := node.PortTo(via)
			if port < 0 {
				return fmt.Errorf("netsim: internal: no port from %s to %s", id, via)
			}
			node.routes[dst] = port
		}
	}
	return nil
}

// PathBetween returns the node sequence (including endpoints) a packet from
// src to dst traverses under the installed routes, or an error if
// unreachable. Useful for tests and the Nearest baseline.
func (n *Network) PathBetween(src, dst NodeID) ([]NodeID, error) {
	if n.nodes[src] == nil || n.nodes[dst] == nil {
		return nil, fmt.Errorf("netsim: path %s->%s: unknown node", src, dst)
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		node := n.nodes[cur]
		port, ok := node.routes[dst]
		if !ok {
			return nil, fmt.Errorf("netsim: no route from %s to %s (at %s)", src, dst, cur)
		}
		cur = node.Ports[port].peer.node.ID
		path = append(path, cur)
		if len(path) > len(n.order)+1 {
			return nil, fmt.Errorf("netsim: routing loop on path %s->%s", src, dst)
		}
	}
	return path, nil
}

// HopCount returns the number of links on the routed path between two hosts.
func (n *Network) HopCount(src, dst NodeID) (int, error) {
	p, err := n.PathBetween(src, dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// NewPacket returns a packet with a fresh ID and defaults, reusing a
// recycled transient packet when one is available.
func (n *Network) NewPacket(kind PacketKind, src, dst NodeID, size int) *Packet {
	n.nextPacketID++
	var pkt *Packet
	if l := len(n.freePkts); l > 0 {
		pkt = n.freePkts[l-1]
		n.freePkts[l-1] = nil
		n.freePkts = n.freePkts[:l-1]
		*pkt = Packet{}
		n.PacketsRecycled++
	} else {
		pkt = &Packet{}
	}
	pkt.ID = n.nextPacketID
	pkt.Kind = kind
	pkt.Src = src
	pkt.Dst = dst
	pkt.Size = size
	pkt.TTL = DefaultTTL
	return pkt
}

// recycle returns a transient packet to the free list once the network is
// finally done with it (delivered to its handler or dropped).
func (n *Network) recycle(pkt *Packet) {
	if !pkt.transient {
		return
	}
	pkt.transient = false
	pkt.Payload = nil
	pkt.Probe = nil
	n.freePkts = append(n.freePkts, pkt)
}

// Send injects a packet into the network at its source host.
func (n *Network) Send(pkt *Packet) error {
	src := n.nodes[pkt.Src]
	if src == nil {
		return fmt.Errorf("netsim: send: unknown source %s", pkt.Src)
	}
	if src.Kind != Host {
		return fmt.Errorf("netsim: send: source %s is not a host", pkt.Src)
	}
	if n.nodes[pkt.Dst] == nil {
		return fmt.Errorf("netsim: send: unknown destination %s", pkt.Dst)
	}
	if pkt.Size <= 0 {
		return fmt.Errorf("netsim: send: packet size must be positive")
	}
	pkt.SentAt = n.engine.Now()
	pkt.ingressAt = n.engine.Now()
	n.emit(TraceSend, src.ID, -1, pkt, 0, 0)
	if src.halted {
		n.drop(pkt, src, DropHalted)
		return nil
	}
	if pkt.Src == pkt.Dst {
		// Local delivery without touching the network.
		n.engine.After(0, func() { n.deliver(src, pkt) })
		return nil
	}
	port, ok := src.routes[pkt.Dst]
	if !ok {
		n.drop(pkt, src, DropNoRoute)
		return nil
	}
	n.enqueue(src.Ports[port], pkt)
	return nil
}

// enqueue places pkt on port's egress queue, starting transmission if idle.
func (n *Network) enqueue(port *Port, pkt *Packet) {
	if port.link.down {
		port.Drops++
		n.drop(pkt, port.node, DropLinkDown)
		return
	}
	if len(port.queue) >= port.link.Config.QueueCap {
		port.Drops++
		n.drop(pkt, port.node, DropQueueFull)
		return
	}
	port.queue = append(port.queue, pkt)
	q := port.QueueLen()
	if q > port.MaxQueueEver {
		port.MaxQueueEver = q
	}
	n.emit(TraceEnqueue, port.node.ID, port.index, pkt, q, 0)
	if !port.busy {
		n.transmitNext(port)
	}
}

// transmitNext pops the head of the queue and transmits it.
func (n *Network) transmitNext(port *Port) {
	if len(port.queue) == 0 || port.link.down || port.node.halted {
		port.busy = false
		return
	}
	pkt := port.queue[0]
	port.queue = port.queue[1:]
	port.busy = true
	n.emit(TraceTxStart, port.node.ID, port.index, pkt, len(port.queue), 0)

	// Egress processing fires as the packet reaches the head of the queue,
	// matching the paper's "beginning of the egress queue" semantics.
	if port.node.Kind == Switch && port.node.Processor != nil {
		ctx := &ProcessorContext{
			Device:   port.node,
			InPort:   -1,
			OutPort:  port.index,
			QueueLen: len(port.queue),
			Now:      n.engine.Now(),
		}
		port.node.Processor.Egress(ctx, pkt)
	} else if port.node.Kind == Host && pkt.Kind == KindProbe {
		// Hosts stamp outgoing probes so the first link's latency is
		// measurable too.
		pkt.StampEgress(n.engine.Now())
	}

	txTime := time.Duration(float64(pkt.Size*8) / float64(port.rateBps) * float64(time.Second))
	peer := port.peer
	gen := port.link.downGen
	n.engine.After(txTime, func() {
		if port.link.down || gen != port.link.downGen || port.node.halted {
			// The link flapped (or the node halted) while the packet was
			// serializing: it never made it onto the wire intact.
			port.Drops++
			reason := DropLinkDown
			if port.node.halted {
				reason = DropHalted
			}
			n.drop(pkt, port.node, reason)
			port.busy = false
			// If the fault has already cleared, resume draining the queue.
			n.kick(port)
			return
		}
		port.TxPackets++
		port.TxBytes += uint64(pkt.Size)
		// Transmitter is free; start the next packet immediately.
		n.transmitNext(port)
		// Propagation to the far end. The delay is read at departure so a
		// SetLinkDelay applies to transmissions starting after the change.
		n.engine.After(port.link.Config.Delay, func() {
			if port.link.down || gen != port.link.downGen {
				// The link went down under the propagating packet.
				n.drop(pkt, peer.node, DropLinkDown)
				return
			}
			n.arrive(peer, pkt)
		})
	})
}

// arrive handles a packet reaching the near end of a link.
func (n *Network) arrive(port *Port, pkt *Packet) {
	port.RxPackets++
	node := port.node
	pkt.ingressAt = n.engine.Now()
	n.emit(TraceArrive, node.ID, port.index, pkt, 0, 0)
	if node.halted {
		n.drop(pkt, node, DropHalted)
		return
	}
	if n.fault != nil && n.fault(pkt, node) {
		n.drop(pkt, node, DropInjected)
		return
	}
	if node.Kind == Host {
		n.deliver(node, pkt)
		return
	}
	// Switch: TTL, route, ingress processing, enqueue.
	pkt.TTL--
	if pkt.TTL <= 0 {
		n.drop(pkt, node, DropTTL)
		return
	}
	outPort, ok := node.routes[pkt.Dst]
	if !ok {
		n.drop(pkt, node, DropNoRoute)
		return
	}
	pkt.hops++
	if node.Processor != nil {
		ctx := &ProcessorContext{
			Device:   node,
			InPort:   port.index,
			OutPort:  outPort,
			QueueLen: node.Ports[outPort].QueueLen(),
			Now:      n.engine.Now(),
		}
		node.Processor.Ingress(ctx, pkt)
	}
	n.enqueue(node.Ports[outPort], pkt)
}

func (n *Network) deliver(node *Node, pkt *Packet) {
	n.Delivered++
	n.emit(TraceDeliver, node.ID, -1, pkt, 0, 0)
	if node.Handler != nil {
		node.Handler(pkt)
	}
	n.recycle(pkt)
}

func (n *Network) drop(pkt *Packet, at *Node, reason DropReason) {
	n.Dropped++
	n.emit(TraceDrop, at.ID, -1, pkt, 0, reason)
	if n.OnDrop != nil {
		n.OnDrop(pkt, at, reason)
	}
	n.recycle(pkt)
}
