package netsim

import (
	"testing"
	"time"

	"intsched/internal/simtime"
)

// buildDiamond returns h1-s1, s1-s2, s1-s3, s2-s4, s3-s4, s4-h2 with routes
// installed: two equal-cost switch paths, lexicographic tie-break picks s2.
func buildDiamond(t *testing.T, cfg LinkConfig) (*Network, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	for _, s := range []NodeID{"s1", "s2", "s3", "s4"} {
		n.AddSwitch(s)
	}
	for _, pair := range [][2]NodeID{{"h1", "s1"}, {"s1", "s2"}, {"s1", "s3"}, {"s2", "s4"}, {"s3", "s4"}, {"s4", "h2"}} {
		if _, err := n.Connect(pair[0], pair[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, e
}

func TestLinkDownDropsQueuedAndInFlight(t *testing.T) {
	// Slow egress at s1 so a burst builds a queue, then cut s1-h2 while
	// packets are queued, serializing, and propagating.
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	_, _ = n.Connect("h1", "s1", LinkConfig{RateBps: 1_000_000_000, Delay: time.Microsecond})
	_, _ = n.Connect("s1", "h2", LinkConfig{RateBps: 1_000_000, Delay: 5 * time.Millisecond, QueueCap: 32})
	_ = n.ComputeRoutes()
	drops := map[DropReason]int{}
	n.OnDrop = func(p *Packet, at *Node, r DropReason) { drops[r]++ }
	for i := 0; i < 10; i++ {
		_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	}
	// 1500B at 1 Mbps = 12 ms serialization; cut the link mid-burst.
	e.At(20*time.Millisecond, func() {
		if err := n.SetLinkUp("s1", "h2", false); err != nil {
			t.Error(err)
		}
	})
	e.RunUntilIdle()
	if n.Delivered+n.Dropped != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", n.Delivered, n.Dropped)
	}
	if n.Delivered == 0 || n.Dropped == 0 {
		t.Fatalf("want a mix of deliveries and drops, got delivered=%d dropped=%d", n.Delivered, n.Dropped)
	}
	if drops[DropLinkDown] != int(n.Dropped) {
		t.Fatalf("drop reasons %v, want all link-down", drops)
	}
	if l := n.LinkBetween("s1", "h2"); l.Up() {
		t.Fatal("link reports up after SetLinkUp(false)")
	}
}

func TestLinkFlapKillsSerializingPacket(t *testing.T) {
	// A packet that is mid-serialization when the link flaps down and back
	// up before its completion event must still die: the wire it left on is
	// not the wire that exists now.
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	_, _ = n.Connect("h1", "s1", LinkConfig{RateBps: 1_000_000_000, Delay: time.Microsecond})
	_, _ = n.Connect("s1", "h2", LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}) // 12 ms per packet
	_ = n.ComputeRoutes()
	var reasons []DropReason
	n.OnDrop = func(p *Packet, at *Node, r DropReason) { reasons = append(reasons, r) }
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	// First packet serializes on s1->h2 roughly [0.1ms, 12.1ms]; flap within.
	e.At(3*time.Millisecond, func() { _ = n.SetLinkUp("s1", "h2", false) })
	e.At(4*time.Millisecond, func() { _ = n.SetLinkUp("s1", "h2", true) })
	e.RunUntilIdle()
	// Packet 1 died in serialization; packet 2 was flushed from the queue at
	// down time... or survived if it had not reached s1 yet. Either way the
	// serializing packet must not be delivered intact.
	if len(reasons) == 0 {
		t.Fatal("flap dropped nothing")
	}
	for _, r := range reasons {
		if r != DropLinkDown {
			t.Fatalf("unexpected drop reason %v", r)
		}
	}
	if n.Delivered+n.Dropped != 2 {
		t.Fatalf("delivered %d + dropped %d != 2", n.Delivered, n.Dropped)
	}
}

func TestLinkUpResumesQueuedTraffic(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, e := buildLine(t, cfg)
	delivered := 0
	n.Node("h2").Handler = func(p *Packet) { delivered++ }
	_ = n.SetLinkUp("s1", "h2", false)
	// Sent while down: the packet reaches s1 and is dropped at enqueue.
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if delivered != 0 {
		t.Fatalf("delivered %d across a down link", delivered)
	}
	// Recover, then send again.
	_ = n.SetLinkUp("s1", "h2", true)
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered %d after recovery, want 1", delivered)
	}
}

func TestRerouteAroundDownLink(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, _ := buildDiamond(t, cfg)
	if !n.PathUsable("h1", "h2") {
		t.Fatal("path unusable before fault")
	}
	_ = n.SetLinkUp("s1", "s2", false)
	// Routes still point at the dead link: black hole until reconvergence.
	if n.PathUsable("h1", "h2") {
		t.Fatal("path reported usable across a down link")
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	path, err := n.PathBetween("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{"h1", "s1", "s3", "s4", "h2"}
	if len(path) != len(want) {
		t.Fatalf("rerouted path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("rerouted path %v, want %v", path, want)
		}
	}
	if !n.PathUsable("h1", "h2") {
		t.Fatal("rerouted path unusable")
	}
	// Recovery: routes fall back to the lexicographic choice.
	_ = n.SetLinkUp("s1", "s2", true)
	_ = n.ComputeRoutes()
	path, _ = n.PathBetween("h1", "h2")
	if path[2] != "s2" {
		t.Fatalf("post-recovery path %v, want via s2", path)
	}
}

func TestNodeHaltDropsAndRecovers(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, e := buildLine(t, cfg)
	drops := map[DropReason]int{}
	n.OnDrop = func(p *Packet, at *Node, r DropReason) { drops[r]++ }
	delivered := 0
	n.Node("h2").Handler = func(p *Packet) { delivered++ }

	// Halt the transit switch: packets die on arrival there.
	if err := n.SetNodeHalted("s1", true); err != nil {
		t.Fatal(err)
	}
	if !n.Node("s1").Halted() {
		t.Fatal("Halted() false after halt")
	}
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if delivered != 0 || drops[DropHalted] != 1 {
		t.Fatalf("delivered=%d drops=%v, want transit drop", delivered, drops)
	}

	// Halt the source host: packets die at send time.
	_ = n.SetNodeHalted("s1", false)
	_ = n.SetNodeHalted("h1", true)
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if delivered != 0 || drops[DropHalted] != 2 {
		t.Fatalf("delivered=%d drops=%v, want source drop", delivered, drops)
	}

	// Halt the destination: the packet dies on arrival at h2.
	_ = n.SetNodeHalted("h1", false)
	_ = n.SetNodeHalted("h2", true)
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if delivered != 0 || drops[DropHalted] != 3 {
		t.Fatalf("delivered=%d drops=%v, want destination drop", delivered, drops)
	}
	if n.PathUsable("h1", "h2") {
		t.Fatal("path usable to a halted destination")
	}

	// Full recovery.
	_ = n.SetNodeHalted("h2", false)
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered=%d after restart, want 1", delivered)
	}
}

func TestComputeRoutesSkipsHaltedTransit(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, _ := buildDiamond(t, cfg)
	_ = n.SetNodeHalted("s2", true)
	_ = n.ComputeRoutes()
	path, err := n.PathBetween("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if path[2] != "s3" {
		t.Fatalf("path %v, want via s3 while s2 is halted", path)
	}
	// Halting the destination removes all routes to it.
	_ = n.SetNodeHalted("h2", true)
	_ = n.ComputeRoutes()
	if _, err := n.PathBetween("h1", "h2"); err == nil {
		t.Fatal("route installed toward a halted destination")
	}
}

func TestSetLinkDelayAndRate(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: 10 * time.Millisecond}
	n, e := buildLine(t, cfg)
	var deliveredAt time.Duration
	n.Node("h2").Handler = func(p *Packet) { deliveredAt = e.Now() }

	// Baseline from TestDeliveryTiming: 1ms tx + 10ms + 1ms tx + 10ms = 22ms.
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if deliveredAt != 22*time.Millisecond {
		t.Fatalf("baseline delivery at %v", deliveredAt)
	}

	// Degrade the s1-h2 link: 10x delay, 1/10 rate (10ms serialization).
	if err := n.SetLinkDelay("s1", "h2", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkRate("s1", "h2", 1_200_000); err != nil {
		t.Fatal(err)
	}
	start := e.Now()
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	// 1ms tx + 10ms prop + 10ms tx + 100ms prop = 121ms after start.
	if got := deliveredAt - start; got != 121*time.Millisecond {
		t.Fatalf("degraded delivery took %v, want 121ms", got)
	}

	// Restore.
	_ = n.SetLinkDelay("s1", "h2", 10*time.Millisecond)
	_ = n.SetLinkRate("s1", "h2", 12_000_000)
	start = e.Now()
	_ = n.Send(n.NewPacket(KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if got := deliveredAt - start; got != 22*time.Millisecond {
		t.Fatalf("restored delivery took %v, want 22ms", got)
	}
}

func TestFaultAPIValidation(t *testing.T) {
	cfg := LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	n, _ := buildLine(t, cfg)
	if err := n.SetLinkUp("h1", "h2", false); err == nil {
		t.Error("SetLinkUp accepted non-adjacent pair")
	}
	if err := n.SetLinkDelay("h1", "nope", time.Second); err == nil {
		t.Error("SetLinkDelay accepted unknown node")
	}
	if err := n.SetLinkDelay("h1", "s1", -time.Second); err == nil {
		t.Error("SetLinkDelay accepted negative delay")
	}
	if err := n.SetLinkRate("h1", "s1", 0); err == nil {
		t.Error("SetLinkRate accepted zero rate")
	}
	if err := n.SetNodeHalted("nope", true); err == nil {
		t.Error("SetNodeHalted accepted unknown node")
	}
	if n.LinkBetween("nope", "h1") != nil {
		t.Error("LinkBetween found link for unknown node")
	}
	if n.PathUsable("nope", "h2") {
		t.Error("PathUsable true for unknown source")
	}
	// No-ops.
	if err := n.SetLinkUp("h1", "s1", true); err != nil {
		t.Errorf("no-op SetLinkUp: %v", err)
	}
	if err := n.SetNodeHalted("h1", false); err != nil {
		t.Errorf("no-op SetNodeHalted: %v", err)
	}
}

func TestSetLinkRateDirectionality(t *testing.T) {
	e := simtime.NewEngine()
	n := New(e)
	n.AddHost("h1")
	n.AddSwitch("s1")
	_, _ = n.Connect("h1", "s1", LinkConfig{RateBps: 10, ReverseRateBps: 20, Delay: time.Millisecond})
	if err := n.SetLinkRate("s1", "h1", 30); err != nil {
		t.Fatal(err)
	}
	l := n.LinkBetween("h1", "s1")
	if l.Config.RateBps != 10 || l.Config.ReverseRateBps != 30 {
		t.Fatalf("rates %d/%d, want 10/30", l.Config.RateBps, l.Config.ReverseRateBps)
	}
	if l.A.rateBps != 10 || l.B.rateBps != 30 {
		t.Fatalf("port rates %d/%d, want 10/30", l.A.rateBps, l.B.rateBps)
	}
}
