package netsim

import (
	"fmt"
	"time"
)

// TraceEventKind classifies packet lifecycle events emitted to a tracer.
type TraceEventKind uint8

const (
	// TraceSend fires when a packet enters the network at its source.
	TraceSend TraceEventKind = iota
	// TraceEnqueue fires when a packet joins an egress queue.
	TraceEnqueue
	// TraceTxStart fires when a packet begins transmission.
	TraceTxStart
	// TraceArrive fires when a packet reaches a node.
	TraceArrive
	// TraceDeliver fires when a packet is delivered to a host handler.
	TraceDeliver
	// TraceDrop fires when a packet is discarded.
	TraceDrop
)

var traceKindNames = [...]string{"send", "enqueue", "tx-start", "arrive", "deliver", "drop"}

func (k TraceEventKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("trace(%d)", uint8(k))
}

// TraceEvent is one packet lifecycle observation. It copies the packet
// fields a consumer needs so recorded events stay valid after the packet
// moves on.
type TraceEvent struct {
	Kind TraceEventKind
	At   time.Duration
	// Node is where the event happened; Port is the egress port for
	// enqueue/tx events (-1 otherwise).
	Node NodeID
	Port int
	// Packet identity.
	PacketID   uint64
	PacketKind PacketKind
	Src, Dst   NodeID
	Size       int
	FlowID     uint64
	Seq        int64
	// QueueLen is the egress queue occupancy at enqueue time.
	QueueLen int
	// DropReason is set for TraceDrop events.
	DropReason DropReason
}

func (e TraceEvent) String() string {
	base := fmt.Sprintf("%12v %-8s %-5s pkt#%d %s %s->%s flow=%d seq=%d",
		e.At, e.Kind, e.Node, e.PacketID, e.PacketKind, e.Src, e.Dst, e.FlowID, e.Seq)
	switch e.Kind {
	case TraceEnqueue:
		return fmt.Sprintf("%s q=%d", base, e.QueueLen)
	case TraceDrop:
		return fmt.Sprintf("%s reason=%s", base, e.DropReason)
	}
	return base
}

// Tracer receives packet lifecycle events. Installing a tracer costs one
// nil-check per event when absent, so simulations without tracing pay
// almost nothing.
type Tracer func(ev TraceEvent)

// SetTracer installs (or clears, with nil) the network's tracer.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// emit sends a trace event if a tracer is installed.
func (n *Network) emit(kind TraceEventKind, node NodeID, port int, pkt *Packet, queueLen int, reason DropReason) {
	if n.tracer == nil {
		return
	}
	n.tracer(TraceEvent{
		Kind:       kind,
		At:         n.engine.Now(),
		Node:       node,
		Port:       port,
		PacketID:   pkt.ID,
		PacketKind: pkt.Kind,
		Src:        pkt.Src,
		Dst:        pkt.Dst,
		Size:       pkt.Size,
		FlowID:     pkt.FlowID,
		Seq:        pkt.Seq,
		QueueLen:   queueLen,
		DropReason: reason,
	})
}

// FaultFn decides whether to forcibly drop a packet arriving at a node —
// the hook used by loss-injection tests and chaos experiments. Returning
// true discards the packet (reported as DropInjected).
type FaultFn func(pkt *Packet, at *Node) bool

// SetFaultInjector installs (or clears) the arrival fault hook.
//
// Deprecated: a fault.Timeline (internal/fault) owns this hook when one is
// attached to the network; installing a raw FaultFn alongside a timeline
// silently replaces its probe-loss injector. New code should express loss
// as a fault.Event (ProbeLoss) so drops are scheduled, seeded, and counted
// with the rest of the failure schedule. Direct use remains for low-level
// netsim tests only.
func (n *Network) SetFaultInjector(f FaultFn) { n.fault = f }

// DropInjected marks packets discarded by the fault injector.
const DropInjected DropReason = 250
