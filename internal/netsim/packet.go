// Package netsim is a deterministic, packet-level, discrete-event network
// simulator. It models hosts and switches connected by full-duplex links
// with finite bandwidth, propagation delay, and drop-tail egress queues.
//
// netsim stands in for the paper's Mininet + BMv2 testbed: the queueing
// phenomena the paper exploits (queue buildup under load, queueing delay,
// bottleneck-limited throughput) are reproduced exactly by per-port
// serialization and finite FIFO queues, while remaining deterministic and
// fast enough to replay every experiment on a laptop.
//
// Switches expose P4-style ingress/egress processing hooks (see the
// dataplane package) which is how INT register staging and probe stamping
// are implemented without netsim knowing anything about telemetry.
package netsim

import (
	"fmt"
	"time"

	"intsched/internal/telemetry"
)

// NodeID identifies a node (host or switch) in the network.
type NodeID string

// PacketKind tags the role of a packet so hosts and dataplane programs can
// demultiplex without deep payload inspection (the simulator's stand-in for
// protocol/port numbers plus the Geneve probe marker).
type PacketKind uint8

// Packet kinds.
const (
	// KindData is a transport data segment (TCP-like flows and CBR traffic).
	KindData PacketKind = iota
	// KindAck is a transport acknowledgement.
	KindAck
	// KindProbe is an INT probe packet (Geneve-marked UDP in the paper).
	KindProbe
	// KindPingReq and KindPingResp implement ICMP-echo-style RTT probing.
	KindPingReq
	KindPingResp
	// KindControl carries scheduler query requests/responses and task
	// control messages (submission headers, completion notifications).
	KindControl
	// KindDatagram is unreliable datagram traffic (iperf-style CBR
	// background flows); receivers do not acknowledge it.
	KindDatagram
	// KindControlAck acknowledges a control message (control messages are
	// retransmitted until acknowledged — task lifecycle and scheduler
	// queries must survive congestion loss).
	KindControlAck
)

var kindNames = [...]string{"data", "ack", "probe", "ping-req", "ping-resp", "control", "datagram", "control-ack"}

func (k PacketKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DefaultTTL is the initial hop limit assigned to packets.
const DefaultTTL = 64

// Packet is the unit of transmission. Packets are passed by pointer and
// mutated in place as they traverse the network (TTL, INT bookkeeping).
type Packet struct {
	// ID is unique per network instance.
	ID uint64
	// Kind tags the packet's role.
	Kind PacketKind
	// Src and Dst are host node IDs.
	Src, Dst NodeID
	// Size is the on-wire size in bytes (headers included).
	Size int
	// FlowID groups packets of one transport flow.
	FlowID uint64
	// Seq is a transport-defined sequence number.
	Seq int64
	// TTL is decremented by each switch; the packet is dropped at zero.
	TTL int
	// SentAt is the virtual time the packet entered the network at its
	// source host.
	SentAt time.Duration

	// Payload carries higher-layer data (control messages, ack metadata).
	// It is opaque to netsim.
	Payload any

	// Probe points to the INT payload for KindProbe packets. The dataplane
	// appends records here; probes are padded to a fixed size so the
	// on-wire Size never changes mid-path.
	Probe *telemetry.ProbePayload

	// hasEgressTS / egressTS implement the paper's link-latency
	// measurement: the previous device writes its egress timestamp into
	// the probe just before transmission; the next device extracts it at
	// ingress (before enqueueing) so the measurement excludes queueing.
	hasEgressTS bool
	egressTS    time.Duration
	// ingressAt records when this packet arrived at the device currently
	// holding it, used to compute the probe's per-hop residence time.
	ingressAt time.Duration
	// hops counts traversed switches.
	hops int
	// transient marks fire-and-forget packets (acks, pings, control
	// copies, datagrams) whose creator keeps no reference past delivery
	// or drop; the network recycles them through its free list.
	transient bool
}

// MarkTransient declares that no component holds a reference to the packet
// once the network has delivered or dropped it, allowing the network to
// recycle the object for a later NewPacket call. Handlers receiving a
// transient packet must copy out anything they keep (the Probe payload
// pointer may be retained: recycling only clears the packet's reference).
// It returns p so creation sites can chain it.
func (p *Packet) MarkTransient() *Packet {
	p.transient = true
	return p
}

// Hops returns the number of switches the packet has traversed so far.
func (p *Packet) Hops() int { return p.hops }

// StampEgress records the egress timestamp used for link-latency
// measurement at the next hop. Called by the dataplane at egress.
func (p *Packet) StampEgress(now time.Duration) {
	p.hasEgressTS = true
	p.egressTS = now
}

// TakeEgressStamp extracts and clears the previous hop's egress timestamp.
// The boolean reports whether a stamp was present (false on first hop).
func (p *Packet) TakeEgressStamp() (time.Duration, bool) {
	if !p.hasEgressTS {
		return 0, false
	}
	p.hasEgressTS = false
	return p.egressTS, true
}

// IngressAt returns when the packet arrived at the device currently
// processing it.
func (p *Packet) IngressAt() time.Duration { return p.ingressAt }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s %s->%s %dB flow=%d seq=%d", p.ID, p.Kind, p.Src, p.Dst, p.Size, p.FlowID, p.Seq)
}
