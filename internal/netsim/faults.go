package netsim

import (
	"fmt"
	"time"
)

// Runtime topology mutation: links can go down and come back, their rate and
// propagation delay can change, and whole nodes can halt and restart — all
// mid-simulation, interacting with in-flight packets and drop-tail queues.
// The rules are checked at event boundaries:
//
//   - Taking a link down flushes both directions' egress queues
//     (DropLinkDown) and kills every packet currently being serialized or
//     propagating across it, even if the link recovers before the packet's
//     completion event fires (a per-link down generation makes the flap
//     visible to already-scheduled callbacks).
//   - Halting a node flushes its egress queues (DropHalted); packets that
//     arrive at, are sent by, or finish serializing on a halted node are
//     dropped.
//   - Rate and delay changes apply to transmissions that start after the
//     change; packets already on the wire keep the parameters they departed
//     with.
//
// None of this reroutes traffic by itself: installed routes keep pointing at
// dead links until ComputeRoutes runs again (it skips down links and halted
// nodes), modelling the window where the control plane has not yet
// reconverged and traffic black-holes.

// Up reports whether the link is currently passing traffic.
func (l *Link) Up() bool { return !l.down }

// Halted reports whether the node is currently halted.
func (nd *Node) Halted() bool { return nd.halted }

// LinkBetween returns the link directly connecting a and b, or nil.
func (n *Network) LinkBetween(a, b NodeID) *Link {
	na := n.nodes[a]
	if na == nil {
		return nil
	}
	for _, p := range na.Ports {
		if p.peer != nil && p.peer.node.ID == b {
			return p.link
		}
	}
	return nil
}

// SetLinkUp changes the up/down state of the link between a and b. Taking a
// link down flushes both egress queues and dooms in-flight packets; bringing
// it up resumes transmission of anything queued since. Setting the current
// state is a no-op.
func (n *Network) SetLinkUp(a, b NodeID, up bool) error {
	l := n.LinkBetween(a, b)
	if l == nil {
		return fmt.Errorf("netsim: no link between %s and %s", a, b)
	}
	if up == !l.down {
		return nil
	}
	if up {
		l.down = false
		n.kick(l.A)
		n.kick(l.B)
		return nil
	}
	l.down = true
	l.downGen++
	n.flushQueue(l.A, DropLinkDown)
	n.flushQueue(l.B, DropLinkDown)
	return nil
}

// SetLinkDelay changes the one-way propagation delay of the link between a
// and b (both directions). Transmissions that start after the change use the
// new delay.
func (n *Network) SetLinkDelay(a, b NodeID, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("netsim: set delay %s-%s: negative delay", a, b)
	}
	l := n.LinkBetween(a, b)
	if l == nil {
		return fmt.Errorf("netsim: no link between %s and %s", a, b)
	}
	l.Config.Delay = d
	return nil
}

// SetLinkRate changes the transmission rate of the a→b direction of the link
// between a and b. Transmissions that start after the change use the new
// rate.
func (n *Network) SetLinkRate(a, b NodeID, rateBps int64) error {
	if rateBps <= 0 {
		return fmt.Errorf("netsim: set rate %s-%s: rate must be positive", a, b)
	}
	l := n.LinkBetween(a, b)
	if l == nil {
		return fmt.Errorf("netsim: no link between %s and %s", a, b)
	}
	if l.A.node.ID == a {
		l.A.rateBps = rateBps
		l.Config.RateBps = rateBps
	} else {
		l.B.rateBps = rateBps
		l.Config.ReverseRateBps = rateBps
	}
	return nil
}

// SetNodeHalted halts or restarts a node. A halted node drops everything:
// packets arriving at it, packets it would send, and packets finishing
// serialization on its ports; its egress queues are flushed at halt time.
// Restarting resumes queue service but does not restore routes through the
// node — run ComputeRoutes for that. Setting the current state is a no-op.
func (n *Network) SetNodeHalted(id NodeID, halted bool) error {
	node := n.nodes[id]
	if node == nil {
		return fmt.Errorf("netsim: halt: unknown node %s", id)
	}
	if node.halted == halted {
		return nil
	}
	node.halted = halted
	for _, p := range node.Ports {
		if halted {
			n.flushQueue(p, DropHalted)
		} else {
			n.kick(p)
		}
	}
	return nil
}

// PathUsable reports whether the installed routes carry a packet from src to
// dst over live links and running nodes. It is the ground-truth check the
// fault experiments use to classify a scheduling decision as usable or
// black-holed at the moment it was made.
func (n *Network) PathUsable(src, dst NodeID) bool {
	cur := n.nodes[src]
	if cur == nil || n.nodes[dst] == nil || cur.halted || n.nodes[dst].halted {
		return false
	}
	for steps := 0; cur.ID != dst; steps++ {
		if steps > len(n.order) {
			return false // routing loop
		}
		port, ok := cur.routes[dst]
		if !ok {
			return false
		}
		p := cur.Ports[port]
		if p.link.down {
			return false
		}
		cur = p.peer.node
		if cur.halted {
			return false
		}
	}
	return true
}

// kick resumes transmission on a port that has queued packets but no active
// transmission (after a link or node recovers).
func (n *Network) kick(p *Port) {
	if !p.busy && len(p.queue) > 0 && !p.link.down && !p.node.halted {
		n.transmitNext(p)
	}
}

// flushQueue drops every queued packet on the port. The packet currently
// being serialized (if any) is not in the queue; it dies when its completion
// callback observes the state change.
func (n *Network) flushQueue(p *Port, reason DropReason) {
	for i, pkt := range p.queue {
		p.queue[i] = nil
		p.Drops++
		n.drop(pkt, p.node, reason)
	}
	p.queue = p.queue[:0]
}
