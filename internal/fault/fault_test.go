package fault

import (
	"strings"
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// buildDiamond returns h1-s1, s1-s2, s1-s3, s2-s4, s3-s4, s4-h2 with routes
// installed.
func buildDiamond(t *testing.T) (*netsim.Network, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	for _, s := range []netsim.NodeID{"s1", "s2", "s3", "s4"} {
		n.AddSwitch(s)
	}
	cfg := netsim.LinkConfig{RateBps: 12_000_000, Delay: time.Millisecond}
	for _, pair := range [][2]netsim.NodeID{{"h1", "s1"}, {"s1", "s2"}, {"s1", "s3"}, {"s2", "s4"}, {"s3", "s4"}, {"s4", "h2"}} {
		if _, err := n.Connect(pair[0], pair[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, e
}

func TestLinkDownAppliesAndReverts(t *testing.T) {
	n, e := buildDiamond(t)
	tl, err := NewTimeline(n, []Event{
		{Kind: LinkDown, At: time.Second, Duration: 2 * time.Second, A: "s1", B: "s2"},
	}, simtime.NewRand(1), Options{RerouteDelay: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tl.Start()
	tl.Start() // idempotent

	e.Run(1100 * time.Millisecond) // fault applied, reroute pending
	if n.LinkBetween("s1", "s2").Up() {
		t.Fatal("link up after LinkDown event")
	}
	e.Run(1200 * time.Millisecond) // reroute done
	path, err := n.PathBetween("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if path[2] != "s3" {
		t.Fatalf("post-reroute path %v, want via s3", path)
	}
	e.Run(3200 * time.Millisecond) // revert + second reroute done
	if !n.LinkBetween("s1", "s2").Up() {
		t.Fatal("link still down after Duration elapsed")
	}
	path, _ = n.PathBetween("h1", "h2")
	if path[2] != "s2" {
		t.Fatalf("post-recovery path %v, want via s2", path)
	}
	st := tl.Stats()
	if st.EventsApplied != 2 || st.Reroutes != 2 {
		t.Fatalf("stats %+v, want 2 applications and 2 reroutes", st)
	}
}

func TestNoRerouteLeavesBlackHole(t *testing.T) {
	n, e := buildDiamond(t)
	tl, err := NewTimeline(n, []Event{
		{Kind: LinkDown, At: time.Second, A: "s1", B: "s2"}, // permanent
	}, simtime.NewRand(1), Options{RerouteDelay: NoReroute})
	if err != nil {
		t.Fatal(err)
	}
	tl.Start()
	e.Run(10 * time.Second)
	if n.PathUsable("h1", "h2") {
		t.Fatal("path usable: reroute ran despite NoReroute")
	}
	if tl.Stats().Reroutes != 0 {
		t.Fatalf("reroutes = %d, want 0", tl.Stats().Reroutes)
	}
}

func TestNodeHaltAndRestart(t *testing.T) {
	n, e := buildDiamond(t)
	tl, err := NewTimeline(n, []Event{
		{Kind: NodeHalt, At: time.Second, Duration: time.Second, Node: "s2"},
	}, simtime.NewRand(1), Options{RerouteDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tl.Start()
	e.Run(1500 * time.Millisecond)
	if !n.Node("s2").Halted() {
		t.Fatal("s2 not halted")
	}
	if p, _ := n.PathBetween("h1", "h2"); len(p) == 0 || p[2] != "s3" {
		t.Fatalf("path %v, want rerouted via s3", p)
	}
	e.Run(2500 * time.Millisecond)
	if n.Node("s2").Halted() {
		t.Fatal("s2 still halted after Duration")
	}
	if p, _ := n.PathBetween("h1", "h2"); len(p) == 0 || p[2] != "s2" {
		t.Fatalf("path %v, want restored via s2", p)
	}
}

func TestLinkDegradeRestoresBaseline(t *testing.T) {
	n, e := buildDiamond(t)
	tl, err := NewTimeline(n, []Event{
		{Kind: LinkDegrade, At: time.Second, Duration: time.Second, A: "s2", B: "s1",
			RateBps: 1_000_000, Delay: 50 * time.Millisecond},
	}, simtime.NewRand(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl.Start()
	e.Run(1100 * time.Millisecond)
	l := n.LinkBetween("s1", "s2")
	if l.Config.RateBps != 1_000_000 || l.Config.ReverseRateBps != 1_000_000 {
		t.Fatalf("degraded rates %d/%d, want 1M/1M", l.Config.RateBps, l.Config.ReverseRateBps)
	}
	if l.Config.Delay != 50*time.Millisecond {
		t.Fatalf("degraded delay %v", l.Config.Delay)
	}
	e.Run(2100 * time.Millisecond)
	if l.Config.RateBps != 12_000_000 || l.Config.ReverseRateBps != 12_000_000 {
		t.Fatalf("restored rates %d/%d, want 12M/12M", l.Config.RateBps, l.Config.ReverseRateBps)
	}
	if l.Config.Delay != time.Millisecond {
		t.Fatalf("restored delay %v", l.Config.Delay)
	}
}

func TestProbeLossBurstDeterministic(t *testing.T) {
	run := func() (delivered int, injected uint64) {
		n, e := buildDiamond(t)
		tl, err := NewTimeline(n, []Event{
			{Kind: ProbeLoss, At: time.Second, Duration: 4 * time.Second, Rate: 0.5},
		}, simtime.NewRand(42).Stream("fault"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		tl.Start()
		n.Node("h2").Handler = func(p *netsim.Packet) { delivered++ }
		// One probe every 100 ms for 10 s: bursts cover probes 10..49.
		tick := e.NewTicker(100*time.Millisecond, func() {
			_ = n.Send(n.NewPacket(netsim.KindProbe, "h1", "h2", 200))
		})
		e.Run(10 * time.Second)
		tick.Stop()
		return delivered, tl.Stats().ProbesDropped
	}
	d1, i1 := run()
	d2, i2 := run()
	if d1 != d2 || i1 != i2 {
		t.Fatalf("runs diverged: %d/%d vs %d/%d", d1, i1, d2, i2)
	}
	if i1 == 0 {
		t.Fatal("no probes dropped during a 50% burst")
	}
	if d1+int(i1) == d1 {
		t.Fatal("all probes delivered")
	}
	// Roughly half of the ~40 in-burst probes should drop; bound loosely.
	if i1 < 10 || i1 > 35 {
		t.Fatalf("injected drops %d, want roughly half of 40", i1)
	}
	// Data packets are never touched by probe loss.
	n, e := buildDiamond(t)
	tl, _ := NewTimeline(n, []Event{{Kind: ProbeLoss, At: 0, Duration: time.Hour, Rate: 1}},
		simtime.NewRand(1), Options{})
	tl.Start()
	got := 0
	n.Node("h2").Handler = func(p *netsim.Packet) { got++ }
	_ = n.Send(n.NewPacket(netsim.KindData, "h1", "h2", 1500))
	e.RunUntilIdle()
	if got != 1 {
		t.Fatal("data packet dropped by probe-loss burst")
	}
}

func TestNewTimelineValidation(t *testing.T) {
	n, _ := buildDiamond(t)
	rng := simtime.NewRand(1)
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{"negative at", []Event{{Kind: LinkDown, At: -time.Second, A: "s1", B: "s2"}}, "negative start"},
		{"unknown link", []Event{{Kind: LinkDown, A: "s1", B: "s4"}}, "no link"},
		{"unknown node", []Event{{Kind: NodeHalt, Node: "nope"}}, "unknown node"},
		{"bad loss rate", []Event{{Kind: ProbeLoss, Rate: 1.5}}, "outside [0,1]"},
		{"empty degrade", []Event{{Kind: LinkDegrade, A: "s1", B: "s2"}}, "neither rate nor delay"},
		{"negative degrade", []Event{{Kind: LinkDegrade, A: "s1", B: "s2", RateBps: -1}}, "negative rate"},
		{"unknown kind", []Event{{Kind: Kind(99)}}, "unknown kind"},
	}
	for _, tc := range cases {
		if _, err := NewTimeline(n, tc.evs, rng, Options{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	if _, err := NewTimeline(nil, nil, rng, Options{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewTimeline(n, nil, nil, Options{}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestEventAndKindStrings(t *testing.T) {
	evs := []Event{
		{Kind: LinkDown, At: time.Second, Duration: 2 * time.Second, A: "s1", B: "s2"},
		{Kind: NodeHalt, At: time.Second, Node: "n3"},
		{Kind: ProbeLoss, At: time.Second, Rate: 0.25},
	}
	for _, ev := range evs {
		if ev.String() == "" {
			t.Errorf("empty String for %v", ev.Kind)
		}
	}
	if !strings.Contains(evs[0].String(), "s1-s2") {
		t.Errorf("link event string %q", evs[0].String())
	}
	if !strings.Contains(evs[2].String(), "25%") {
		t.Errorf("loss event string %q", evs[2].String())
	}
	if Kind(99).String() != "fault(99)" {
		t.Errorf("unknown kind string %q", Kind(99).String())
	}
}

func TestParseSchedule(t *testing.T) {
	data := []byte(`[
	  {"kind": "link-down", "at": "30s", "duration": "20s", "a": "s01", "b": "s02"},
	  {"kind": "link-degrade", "at": "1m", "duration": "30s", "a": "s04", "b": "s05", "rate_bps": 2000000, "delay": "50ms"},
	  {"kind": "node-halt", "at": "90s", "duration": "15s", "node": "n3"},
	  {"kind": "probe-loss", "at": "2m", "loss": 0.5}
	]`)
	evs, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("parsed %d events", len(evs))
	}
	want := []Event{
		{Kind: LinkDown, At: 30 * time.Second, Duration: 20 * time.Second, A: "s01", B: "s02"},
		{Kind: LinkDegrade, At: time.Minute, Duration: 30 * time.Second, A: "s04", B: "s05", RateBps: 2_000_000, Delay: 50 * time.Millisecond},
		{Kind: NodeHalt, At: 90 * time.Second, Duration: 15 * time.Second, Node: "n3"},
		{Kind: ProbeLoss, At: 2 * time.Minute, Rate: 0.5},
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}

	bad := []string{
		`{"not": "an array"}`,
		`[{"kind": "volcano", "at": "1s"}]`,
		`[{"kind": "link-down", "a": "x", "b": "y"}]`,          // missing at
		`[{"kind": "link-down", "at": "soon"}]`,                // bad duration syntax
		`[{"kind": "link-degrade", "at": "1s", "delay": "x"}]`, // bad delay
	}
	for _, s := range bad {
		if _, err := ParseSchedule([]byte(s)); err == nil {
			t.Errorf("accepted %s", s)
		}
	}
}
