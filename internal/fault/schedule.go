package fault

import (
	"encoding/json"
	"fmt"
	"time"

	"intsched/internal/netsim"
)

// scheduleEvent is the JSON wire form of one Event, with durations written
// as Go duration strings ("30s", "1m30s").
type scheduleEvent struct {
	Kind     string  `json:"kind"`
	At       string  `json:"at"`
	Duration string  `json:"duration,omitempty"`
	A        string  `json:"a,omitempty"`
	B        string  `json:"b,omitempty"`
	Node     string  `json:"node,omitempty"`
	RateBps  int64   `json:"rate_bps,omitempty"`
	Delay    string  `json:"delay,omitempty"`
	Loss     float64 `json:"loss,omitempty"`
}

// ParseSchedule decodes a JSON fault schedule — an array of events like
//
//	[
//	  {"kind": "link-down", "at": "30s", "duration": "20s", "a": "s01", "b": "s02"},
//	  {"kind": "link-degrade", "at": "1m", "duration": "30s", "a": "s04", "b": "s05",
//	   "rate_bps": 2000000, "delay": "50ms"},
//	  {"kind": "node-halt", "at": "90s", "duration": "15s", "node": "n3"},
//	  {"kind": "probe-loss", "at": "2m", "duration": "10s", "loss": 0.5}
//	]
//
// — into Events. Omitted durations mean the fault is permanent. Structural
// validation (do the named links and nodes exist?) happens later, in
// NewTimeline.
func ParseSchedule(data []byte) ([]Event, error) {
	var raw []scheduleEvent
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("fault: parse schedule: %w", err)
	}
	events := make([]Event, 0, len(raw))
	for i, se := range raw {
		ev := Event{
			A:       netsim.NodeID(se.A),
			B:       netsim.NodeID(se.B),
			Node:    netsim.NodeID(se.Node),
			RateBps: se.RateBps,
			Rate:    se.Loss,
		}
		switch se.Kind {
		case "link-down":
			ev.Kind = LinkDown
		case "link-degrade":
			ev.Kind = LinkDegrade
		case "node-halt":
			ev.Kind = NodeHalt
		case "probe-loss":
			ev.Kind = ProbeLoss
		default:
			return nil, fmt.Errorf("fault: parse schedule: event %d: unknown kind %q", i, se.Kind)
		}
		var err error
		if ev.At, err = parseDur(se.At, "at"); err != nil {
			return nil, fmt.Errorf("fault: parse schedule: event %d (%s): %w", i, se.Kind, err)
		}
		if se.Duration != "" {
			if ev.Duration, err = parseDur(se.Duration, "duration"); err != nil {
				return nil, fmt.Errorf("fault: parse schedule: event %d (%s): %w", i, se.Kind, err)
			}
		}
		if se.Delay != "" {
			if ev.Delay, err = parseDur(se.Delay, "delay"); err != nil {
				return nil, fmt.Errorf("fault: parse schedule: event %d (%s): %w", i, se.Kind, err)
			}
		}
		events = append(events, ev)
	}
	return events, nil
}

func parseDur(s, field string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("missing %q", field)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %w", field, err)
	}
	return d, nil
}
