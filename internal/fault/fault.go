// Package fault schedules deterministic failures against a running netsim
// network: links going down and recovering, links degrading in rate or
// delay, nodes halting and restarting, and probe-loss bursts. A Timeline is
// a pure function of (events, seed) on the virtual clock — the same schedule
// against the same network produces byte-identical runs, which is what lets
// the fault experiments compare schedulers under identical failures.
//
// The timeline also models control-plane reconvergence: after every
// connectivity-changing event it re-runs ComputeRoutes once RerouteDelay has
// elapsed, so there is a window where installed routes still point into the
// failure (the black hole the scheduler-recovery experiments measure),
// followed by a window where the network has rerouted but the collector's
// learned map has not yet caught up.
package fault

import (
	"fmt"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// Kind enumerates fault event types.
type Kind uint8

const (
	// LinkDown takes the link A-B down at At and (if Duration > 0) back up
	// at At+Duration.
	LinkDown Kind = iota
	// LinkDegrade overrides the A-B link's rate (RateBps, both directions
	// if nonzero) and/or propagation delay (Delay, if nonzero) for
	// Duration, then restores the original values.
	LinkDegrade
	// NodeHalt halts Node at At and restarts it at At+Duration. Halting an
	// edge server models a crash; halting a switch kills all transit
	// through it.
	NodeHalt
	// ProbeLoss drops probe packets arriving at their destination with
	// probability Rate for Duration — telemetry loss without touching data
	// traffic. Overlapping bursts compound.
	ProbeLoss
)

var kindNames = [...]string{"link-down", "link-degrade", "node-halt", "probe-loss"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Event is one scheduled fault. Duration <= 0 means the fault is permanent
// (never auto-reverted).
type Event struct {
	Kind     Kind
	At       time.Duration
	Duration time.Duration

	// A, B name the link endpoints for LinkDown and LinkDegrade.
	A, B netsim.NodeID
	// Node names the target for NodeHalt.
	Node netsim.NodeID
	// RateBps is the degraded rate for LinkDegrade (0 = keep current).
	RateBps int64
	// Delay is the degraded propagation delay for LinkDegrade (0 = keep).
	Delay time.Duration
	// Rate is the drop probability for ProbeLoss, in [0, 1].
	Rate float64
}

func (e Event) String() string {
	switch e.Kind {
	case NodeHalt:
		return fmt.Sprintf("%s %s at %v for %v", e.Kind, e.Node, e.At, e.Duration)
	case ProbeLoss:
		return fmt.Sprintf("%s %.0f%% at %v for %v", e.Kind, e.Rate*100, e.At, e.Duration)
	default:
		return fmt.Sprintf("%s %s-%s at %v for %v", e.Kind, e.A, e.B, e.At, e.Duration)
	}
}

// DefaultRerouteDelay is the control-plane reconvergence lag used when
// Options.RerouteDelay is zero: the gap between a connectivity change and
// the re-run of ComputeRoutes. Real SDN failover sits in the hundreds of
// milliseconds; 500 ms keeps the black-hole window visible at the default
// 100 ms probe interval without dominating it.
const DefaultRerouteDelay = 500 * time.Millisecond

// NoReroute disables route reconvergence entirely: routes keep pointing
// into every failure until something else recomputes them.
const NoReroute = time.Duration(-1)

// Options tunes a Timeline.
type Options struct {
	// RerouteDelay is the lag between a connectivity-changing event (link
	// down/up, node halt/restart) and the ComputeRoutes re-run that models
	// reconvergence. Zero means DefaultRerouteDelay; NoReroute disables.
	RerouteDelay time.Duration
}

// Stats counts what a timeline has done so far (virtual-time deterministic).
type Stats struct {
	// EventsApplied counts fault applications plus auto-reverts.
	EventsApplied int
	// Reroutes counts ComputeRoutes re-runs triggered by reconvergence.
	Reroutes int
	// ProbesDropped counts probe packets killed by ProbeLoss bursts.
	ProbesDropped uint64
}

// Timeline owns a schedule of Events against one network. Create with
// NewTimeline, arm with Start before running the engine.
type Timeline struct {
	nw     *netsim.Network
	events []Event
	rng    *simtime.Rand
	opts   Options

	// originals snapshots the pre-timeline config of every link a
	// LinkDegrade event touches; reverts restore these baselines (so
	// overlapping degrades of one link both restore the same values).
	originals map[linkKey]linkBaseline

	// activeLoss holds the drop rates of currently-open ProbeLoss bursts;
	// overlaps compound as 1 - Π(1-rate).
	activeLoss []float64

	started bool
	stats   Stats
}

// linkKey identifies a link by its endpoints in the A→B orientation the
// event names them.
type linkKey struct{ a, b netsim.NodeID }

type linkBaseline struct {
	rate, reverseRate int64
	delay             time.Duration
}

// NewTimeline validates the schedule against the network and returns an
// unarmed timeline. rng must be a dedicated sub-stream (the timeline draws
// from it for probe-loss coin flips); pass any seeded stream when the
// schedule has no ProbeLoss events.
func NewTimeline(nw *netsim.Network, events []Event, rng *simtime.Rand, opts Options) (*Timeline, error) {
	if nw == nil {
		return nil, fmt.Errorf("fault: nil network")
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	for i, ev := range events {
		if ev.At < 0 {
			return nil, fmt.Errorf("fault: event %d (%s): negative start time", i, ev)
		}
		switch ev.Kind {
		case LinkDown, LinkDegrade:
			if nw.LinkBetween(ev.A, ev.B) == nil {
				return nil, fmt.Errorf("fault: event %d (%s): no link between %s and %s", i, ev.Kind, ev.A, ev.B)
			}
			if ev.Kind == LinkDegrade {
				if ev.RateBps < 0 || ev.Delay < 0 {
					return nil, fmt.Errorf("fault: event %d (%s): negative rate or delay", i, ev)
				}
				if ev.RateBps == 0 && ev.Delay == 0 {
					return nil, fmt.Errorf("fault: event %d (%s): degrade with neither rate nor delay", i, ev)
				}
			}
		case NodeHalt:
			if nw.Node(ev.Node) == nil {
				return nil, fmt.Errorf("fault: event %d (%s): unknown node %s", i, ev.Kind, ev.Node)
			}
		case ProbeLoss:
			if ev.Rate < 0 || ev.Rate > 1 {
				return nil, fmt.Errorf("fault: event %d (%s): loss rate %v outside [0,1]", i, ev.Kind, ev.Rate)
			}
		default:
			return nil, fmt.Errorf("fault: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	if opts.RerouteDelay == 0 {
		opts.RerouteDelay = DefaultRerouteDelay
	}
	out := make([]Event, len(events))
	copy(out, events)
	originals := make(map[linkKey]linkBaseline)
	for _, ev := range out {
		if ev.Kind != LinkDegrade {
			continue
		}
		key := linkKey{ev.A, ev.B}
		if _, ok := originals[key]; ok {
			continue
		}
		l := nw.LinkBetween(ev.A, ev.B)
		cfg := l.Config
		rate, rev := cfg.RateBps, cfg.ReverseRateBps
		if l.B.Node().ID == ev.A {
			// The event names the link in the opposite orientation to the
			// one it was connected in; SetLinkRate(A, B, ·) will write the
			// reverse direction, so swap the baseline to match.
			rate, rev = rev, rate
		}
		originals[key] = linkBaseline{rate: rate, reverseRate: rev, delay: cfg.Delay}
	}
	return &Timeline{nw: nw, events: out, rng: rng, opts: opts, originals: originals}, nil
}

// Events returns a copy of the schedule.
func (t *Timeline) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Stats returns counters accumulated so far.
func (t *Timeline) Stats() Stats { return t.stats }

// Start installs the probe-loss injector (taking ownership of the network's
// fault hook) and schedules every event on the engine. Events whose At has
// already passed fire on the next engine step. Start is idempotent.
func (t *Timeline) Start() {
	if t.started {
		return
	}
	t.started = true
	t.nw.SetFaultInjector(t.inject)
	eng := t.nw.Engine()
	for i := range t.events {
		ev := t.events[i]
		eng.At(ev.At, func() { t.apply(ev) })
		if ev.Duration > 0 {
			eng.At(ev.At+ev.Duration, func() { t.revert(ev) })
		}
	}
}

func (t *Timeline) apply(ev Event) {
	t.stats.EventsApplied++
	switch ev.Kind {
	case LinkDown:
		t.mustDo(t.nw.SetLinkUp(ev.A, ev.B, false))
		t.scheduleReroute()
	case LinkDegrade:
		if ev.RateBps > 0 {
			t.mustDo(t.nw.SetLinkRate(ev.A, ev.B, ev.RateBps))
			t.mustDo(t.nw.SetLinkRate(ev.B, ev.A, ev.RateBps))
		}
		if ev.Delay > 0 {
			t.mustDo(t.nw.SetLinkDelay(ev.A, ev.B, ev.Delay))
		}
	case NodeHalt:
		t.mustDo(t.nw.SetNodeHalted(ev.Node, true))
		t.scheduleReroute()
	case ProbeLoss:
		t.activeLoss = append(t.activeLoss, ev.Rate)
	}
}

func (t *Timeline) revert(ev Event) {
	t.stats.EventsApplied++
	switch ev.Kind {
	case LinkDown:
		t.mustDo(t.nw.SetLinkUp(ev.A, ev.B, true))
		t.scheduleReroute()
	case LinkDegrade:
		o := t.originals[linkKey{ev.A, ev.B}]
		if ev.RateBps > 0 {
			t.mustDo(t.nw.SetLinkRate(ev.A, ev.B, o.rate))
			t.mustDo(t.nw.SetLinkRate(ev.B, ev.A, o.reverseRate))
		}
		if ev.Delay > 0 {
			t.mustDo(t.nw.SetLinkDelay(ev.A, ev.B, o.delay))
		}
	case NodeHalt:
		t.mustDo(t.nw.SetNodeHalted(ev.Node, false))
		t.scheduleReroute()
	case ProbeLoss:
		for i, r := range t.activeLoss {
			if r == ev.Rate {
				t.activeLoss = append(t.activeLoss[:i], t.activeLoss[i+1:]...)
				break
			}
		}
	}
}

func (t *Timeline) scheduleReroute() {
	if t.opts.RerouteDelay == NoReroute {
		return
	}
	t.nw.Engine().After(t.opts.RerouteDelay, func() {
		t.stats.Reroutes++
		if err := t.nw.ComputeRoutes(); err != nil {
			panic(fmt.Sprintf("fault: reroute failed: %v", err))
		}
	})
}

// inject is the netsim FaultFn: drop probe packets at their destination
// while a loss burst is active.
func (t *Timeline) inject(pkt *netsim.Packet, at *netsim.Node) bool {
	if len(t.activeLoss) == 0 || pkt.Kind != netsim.KindProbe || at.ID != pkt.Dst {
		return false
	}
	keep := 1.0
	for _, r := range t.activeLoss {
		keep *= 1 - r
	}
	if t.rng.Float64() >= keep {
		t.stats.ProbesDropped++
		return true
	}
	return false
}

func (t *Timeline) mustDo(err error) {
	if err != nil {
		// Every event was validated against the network at construction;
		// a failure here means the topology changed under the timeline.
		panic(fmt.Sprintf("fault: apply failed: %v", err))
	}
}
