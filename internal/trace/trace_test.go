package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/transport"
)

// lineNet builds h1 - s1 - h2 with transport installed.
func lineNet(t *testing.T) (*netsim.Network, *transport.Domain, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine()
	nw := netsim.New(e)
	nw.AddHost("h1")
	nw.AddHost("h2")
	nw.AddSwitch("s1")
	cfg := netsim.LinkConfig{RateBps: 50_000_000, Delay: time.Millisecond}
	if _, err := nw.Connect("h1", "s1", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Connect("h2", "s1", cfg); err != nil {
		t.Fatal(err)
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return nw, transport.NewDomain(nw).InstallAll(), e
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	nw, domain, e := lineNet(t)
	rec := NewRecorder(1024, nil).Attach(nw)
	domain.Stack("h1").Transfer("h2", 10_000, nil)
	e.RunUntilIdle()
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[netsim.TraceEventKind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, k := range []netsim.TraceEventKind{netsim.TraceSend, netsim.TraceEnqueue, netsim.TraceTxStart, netsim.TraceArrive, netsim.TraceDeliver} {
		if kinds[k] == 0 {
			t.Errorf("no %s events", k)
		}
	}
	// Every send eventually delivered on an idle network.
	if kinds[netsim.TraceSend] != kinds[netsim.TraceDeliver] {
		t.Errorf("sends %d != delivers %d", kinds[netsim.TraceSend], kinds[netsim.TraceDeliver])
	}
}

func TestRecorderFilters(t *testing.T) {
	nw, domain, e := lineNet(t)
	rec := NewRecorder(1024, All(ByPacketKind(netsim.KindData), ByEventKind(netsim.TraceDeliver))).Attach(nw)
	domain.Stack("h1").Transfer("h2", 5_000, nil)
	e.RunUntilIdle()
	for _, ev := range rec.Events() {
		if ev.PacketKind != netsim.KindData || ev.Kind != netsim.TraceDeliver {
			t.Fatalf("filter leaked %v", ev)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("filter dropped everything")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4, nil)
	for i := 0; i < 10; i++ {
		r.Record(netsim.TraceEvent{PacketID: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 || r.Len() != 4 {
		t.Fatalf("held %d", len(evs))
	}
	// Oldest retained is #6.
	for i, ev := range evs {
		if ev.PacketID != uint64(6+i) {
			t.Fatalf("ring order wrong: %v", evs)
		}
	}
	if r.Seen != 10 {
		t.Fatalf("seen %d", r.Seen)
	}
	r.Reset()
	if r.Len() != 0 || r.Seen != 0 {
		t.Fatal("reset failed")
	}
}

func TestPathOfReconstructsRoute(t *testing.T) {
	nw, _, e := lineNet(t)
	rec := NewRecorder(256, nil).Attach(nw)
	nw.Node("h2").Handler = func(p *netsim.Packet) {}
	pkt := nw.NewPacket(netsim.KindData, "h1", "h2", 500)
	_ = nw.Send(pkt)
	e.RunUntilIdle()
	path := rec.PathOf(pkt.ID)
	want := []netsim.NodeID{"h1", "s1", "h2"}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestSummarizeAndDrops(t *testing.T) {
	nw, domain, e := lineNet(t)
	rec := NewRecorder(8192, nil).Attach(nw)
	// Inject 100% loss at s1 for datagrams so drops accumulate there.
	nw.SetFaultInjector(func(p *netsim.Packet, at *netsim.Node) bool {
		return at.ID == "s1" && p.Kind == netsim.KindDatagram
	})
	c := domain.Stack("h1").StartCBR("h2", transport.CBRConfig{RateBps: 1_000_000, Duration: time.Second})
	e.Run(2 * time.Second)
	if c.PacketsSent == 0 {
		t.Fatal("no CBR packets")
	}
	drops := rec.DropsByNode()
	if drops["s1"] == 0 {
		t.Fatalf("no drops recorded at s1: %v", drops)
	}
	sums := rec.Summarize()
	found := false
	for _, s := range sums {
		if s.FlowID != 0 && s.Dropped > 0 && s.Delivered == 0 {
			found = true
			if s.LastSeen < s.FirstSeen {
				t.Fatal("summary time range inverted")
			}
			// Every drop here came from the fault injector, and the
			// summary must attribute them as such.
			if s.DropInjected != s.Dropped {
				t.Fatalf("injected drops %d != dropped %d", s.DropInjected, s.Dropped)
			}
		}
	}
	if !found {
		t.Fatalf("no fully-dropped flow in %v", sums)
	}
}

func TestDumpText(t *testing.T) {
	nw, _, e := lineNet(t)
	rec := NewRecorder(64, nil).Attach(nw)
	nw.Node("h2").Handler = func(p *netsim.Packet) {}
	_ = nw.Send(nw.NewPacket(netsim.KindData, "h1", "h2", 100))
	e.RunUntilIdle()
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "send") || !strings.Contains(out, "deliver") {
		t.Fatalf("dump:\n%s", out)
	}
}

func TestFaultInjectorDropReason(t *testing.T) {
	nw, _, e := lineNet(t)
	var reason netsim.DropReason
	nw.OnDrop = func(p *netsim.Packet, at *netsim.Node, r netsim.DropReason) { reason = r }
	nw.SetFaultInjector(func(p *netsim.Packet, at *netsim.Node) bool { return at.ID == "s1" })
	nw.Node("h2").Handler = func(p *netsim.Packet) {}
	_ = nw.Send(nw.NewPacket(netsim.KindData, "h1", "h2", 100))
	e.RunUntilIdle()
	if reason != netsim.DropInjected {
		t.Fatalf("reason %v", reason)
	}
	if reason.String() != "injected" {
		t.Fatalf("reason string %q", reason.String())
	}
}
