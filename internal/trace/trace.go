// Package trace records packet lifecycle events from the network simulator
// for debugging and analysis: a bounded ring-buffer recorder with
// composable filters, per-flow and per-node summaries, and a text dump —
// the simulator's stand-in for a pcap.
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"intsched/internal/netsim"
)

// Filter decides whether an event is recorded.
type Filter func(ev netsim.TraceEvent) bool

// ByFlow keeps only events of the given transport flow.
func ByFlow(flowID uint64) Filter {
	return func(ev netsim.TraceEvent) bool { return ev.FlowID == flowID }
}

// ByNode keeps only events observed at the given node.
func ByNode(node netsim.NodeID) Filter {
	return func(ev netsim.TraceEvent) bool { return ev.Node == node }
}

// ByPacketKind keeps only events for packets of the given kind.
func ByPacketKind(kind netsim.PacketKind) Filter {
	return func(ev netsim.TraceEvent) bool { return ev.PacketKind == kind }
}

// ByEventKind keeps only events of the given lifecycle kind.
func ByEventKind(kind netsim.TraceEventKind) Filter {
	return func(ev netsim.TraceEvent) bool { return ev.Kind == kind }
}

// DropsOnly keeps only drop events.
func DropsOnly() Filter { return ByEventKind(netsim.TraceDrop) }

// All combines filters conjunctively.
func All(filters ...Filter) Filter {
	return func(ev netsim.TraceEvent) bool {
		for _, f := range filters {
			if !f(ev) {
				return false
			}
		}
		return true
	}
}

// Recorder is a bounded ring buffer of trace events.
type Recorder struct {
	filter Filter
	buf    []netsim.TraceEvent
	next   int
	full   bool

	// Seen counts events matching the filter (including ones evicted from
	// the ring).
	Seen uint64
}

// NewRecorder creates a recorder holding the most recent capacity events
// that pass the filter (nil filter records everything).
func NewRecorder(capacity int, filter Filter) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{filter: filter, buf: make([]netsim.TraceEvent, capacity)}
}

// Attach installs the recorder as the network's tracer and returns it.
func (r *Recorder) Attach(nw *netsim.Network) *Recorder {
	nw.SetTracer(r.Record)
	return r
}

// Record ingests one event (usable directly as a netsim.Tracer).
func (r *Recorder) Record(ev netsim.TraceEvent) {
	if r.filter != nil && !r.filter(ev) {
		return
	}
	r.Seen++
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the recorded events in arrival order.
func (r *Recorder) Events() []netsim.TraceEvent {
	if !r.full {
		out := make([]netsim.TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]netsim.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.next = 0
	r.full = false
	r.Seen = 0
}

// Dump writes the held events as text, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// FlowSummary aggregates one flow's recorded lifecycle.
type FlowSummary struct {
	FlowID    uint64
	Sent      int
	Delivered int
	Dropped   int
	// DropInjected counts the subset of Dropped discarded by the fault
	// injector (scripted probe loss) rather than by the network itself.
	DropInjected int
	FirstSeen    time.Duration
	LastSeen     time.Duration
}

// Summarize aggregates held events per flow, ordered by flow ID.
func (r *Recorder) Summarize() []FlowSummary {
	byFlow := map[uint64]*FlowSummary{}
	for _, ev := range r.Events() {
		s := byFlow[ev.FlowID]
		if s == nil {
			s = &FlowSummary{FlowID: ev.FlowID, FirstSeen: ev.At}
			byFlow[ev.FlowID] = s
		}
		s.LastSeen = ev.At
		switch ev.Kind {
		case netsim.TraceSend:
			s.Sent++
		case netsim.TraceDeliver:
			s.Delivered++
		case netsim.TraceDrop:
			s.Dropped++
			if ev.DropReason == netsim.DropInjected {
				s.DropInjected++
			}
		}
	}
	out := make([]FlowSummary, 0, len(byFlow))
	for _, s := range byFlow {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FlowID < out[j].FlowID })
	return out
}

// DropsByNode tallies drop events per node.
func (r *Recorder) DropsByNode() map[netsim.NodeID]int {
	out := map[netsim.NodeID]int{}
	for _, ev := range r.Events() {
		if ev.Kind == netsim.TraceDrop {
			out[ev.Node]++
		}
	}
	return out
}

// PathOf reconstructs the node sequence a packet visited from its recorded
// arrive/deliver events.
func (r *Recorder) PathOf(packetID uint64) []netsim.NodeID {
	var out []netsim.NodeID
	for _, ev := range r.Events() {
		if ev.PacketID != packetID {
			continue
		}
		switch ev.Kind {
		case netsim.TraceSend, netsim.TraceArrive:
			out = append(out, ev.Node)
		}
	}
	return out
}
