package experiment

import (
	"testing"
	"time"

	"intsched/internal/core"
	"intsched/internal/workload"
)

func TestRunSmallScenarioCompletes(t *testing.T) {
	res, err := Run(Scenario{
		Seed:      1,
		Workload:  workload.Serverless,
		Metric:    core.MetricDelay,
		TaskCount: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("incomplete tasks: %d of 12", res.Incomplete)
	}
	if len(res.Results) != 12 {
		t.Fatalf("got %d results, want 12", len(res.Results))
	}
	for _, r := range res.Results {
		if r.CompletionTime() <= 0 {
			t.Errorf("task %d: non-positive completion time %v", r.TaskID, r.CompletionTime())
		}
		if r.TransferTime() <= 0 {
			t.Errorf("task %d: non-positive transfer time %v", r.TaskID, r.TransferTime())
		}
		if r.CompletionTime() < r.ExecTime {
			t.Errorf("task %d: completion %v < exec %v", r.TaskID, r.CompletionTime(), r.ExecTime)
		}
		if r.Server == "" || r.Server == r.Device {
			t.Errorf("task %d: bad server %q (device %q)", r.TaskID, r.Server, r.Device)
		}
	}
	if res.ProbesReceived == 0 {
		t.Error("no probes reached the collector")
	}
	t.Logf("virtual=%v events=%d probes=%d/%d drops=%d meanCompletion=%v meanTransfer=%v",
		res.VirtualDuration, res.EventsProcessed, res.ProbesReceived, res.ProbesSent,
		res.PacketsDropped, res.MeanCompletion(), res.MeanTransfer())
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	sc := Scenario{Seed: 7, Workload: workload.Distributed, Metric: core.MetricBandwidth, TaskCount: 9}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.TaskID != rb.TaskID || ra.Server != rb.Server || ra.CompletedAt != rb.CompletedAt {
			t.Fatalf("run diverged at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestAllMetricsComplete(t *testing.T) {
	for _, m := range []core.Metric{core.MetricDelay, core.MetricBandwidth, core.MetricNearest, core.MetricRandom} {
		res, err := Run(Scenario{Seed: 3, Workload: workload.Serverless, Metric: m, TaskCount: 6})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Incomplete != 0 {
			t.Errorf("%s: %d incomplete tasks", m, res.Incomplete)
		}
	}
}

func TestScenarioTimelineInvariants(t *testing.T) {
	res, err := Run(Scenario{
		Seed:       13,
		Workload:   workload.Distributed,
		Metric:     core.MetricBandwidth,
		TaskCount:  18,
		Background: BackgroundRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d incomplete", res.Incomplete)
	}
	byJob := map[uint64][]string{}
	for _, r := range res.Results {
		// Timeline strictly ordered: submit ≤ ranked ≤ transfer ≤ done.
		if !(r.SubmitAt <= r.RankedAt && r.RankedAt <= r.TransferDoneAt && r.TransferDoneAt <= r.CompletedAt) {
			t.Fatalf("timeline disordered: %+v", r)
		}
		// Execution time fits inside the completion window.
		if r.CompletedAt-r.TransferDoneAt < r.ExecTime {
			t.Fatalf("exec %v doesn't fit window %v: %+v", r.ExecTime, r.CompletedAt-r.TransferDoneAt, r)
		}
		if r.Server == r.Device {
			t.Fatalf("self-scheduled task: %+v", r)
		}
		byJob[r.JobID] = append(byJob[r.JobID], string(r.Server))
	}
	// Distributed jobs spread over distinct servers (7 candidates exist).
	for job, servers := range byJob {
		if len(servers) != 3 {
			continue // truncated tail job
		}
		seen := map[string]bool{}
		for _, s := range servers {
			if seen[s] {
				t.Fatalf("job %d reused server %s: %v", job, s, servers)
			}
			seen[s] = true
		}
	}
}

func TestSchedulerHostActsAsDeviceAndServer(t *testing.T) {
	// All 8 nodes (scheduler n6 included) submit and execute tasks.
	res, err := Run(Scenario{
		Seed:      21,
		Workload:  workload.Serverless,
		Metric:    core.MetricDelay,
		TaskCount: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitted, served := false, false
	for _, r := range res.Results {
		if r.Device == "n6" {
			submitted = true
		}
		if r.Server == "n6" {
			served = true
		}
	}
	if !submitted {
		t.Error("scheduler host never submitted a task")
	}
	if !served {
		t.Error("scheduler host never executed a task")
	}
}

func TestFig3SweepShapes(t *testing.T) {
	pts, err := Fig3(Fig3Config{
		Utilizations: []float64{0, 0.5, 1.0},
		Duration:     20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	idle, half, full := pts[0], pts[1], pts[2]
	// Paper shape: idle RTT ≈ 4 × link delay (40 ms), queues near zero.
	if idle.MeanRTT < 35*time.Millisecond || idle.MeanRTT > 60*time.Millisecond {
		t.Errorf("idle RTT %v, want ≈40ms", idle.MeanRTT)
	}
	if idle.MeanMaxQueue > 1 {
		t.Errorf("idle queue %v, want ≈0", idle.MeanMaxQueue)
	}
	// Monotone growth with utilization, sharp at saturation.
	if !(half.MeanMaxQueue >= idle.MeanMaxQueue && full.MeanMaxQueue > half.MeanMaxQueue) {
		t.Errorf("queue not monotone: %v / %v / %v", idle.MeanMaxQueue, half.MeanMaxQueue, full.MeanMaxQueue)
	}
	if full.MeanRTT <= half.MeanRTT {
		t.Errorf("RTT not growing at saturation: half=%v full=%v", half.MeanRTT, full.MeanRTT)
	}
	t.Logf("fig3: idle(q=%.1f rtt=%v) half(q=%.1f rtt=%v) full(q=%.1f rtt=%v drops=%d)",
		idle.MeanMaxQueue, idle.MeanRTT, half.MeanMaxQueue, half.MeanRTT,
		full.MeanMaxQueue, full.MeanRTT, full.Drops)
}
