package experiment

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"intsched/internal/core"
	"intsched/internal/workload"
)

// poolTestScenario is small enough for the -race CI job yet exercises the
// full pipeline (probing, background traffic, scheduling, transport).
var poolTestScenario = Scenario{
	Workload:         workload.Serverless,
	TaskCount:        10,
	MeanInterarrival: time.Second, // keep virtual time short for -race CI
	Background:       BackgroundRandom,
}

var poolTestMetrics = []core.Metric{core.MetricDelay, core.MetricNearest, core.MetricRandom}

// TestPoolCompareSeedsDeterminism is the tentpole guarantee: the parallel
// pool must return results deep-equal — and exports byte-equal — to the
// serial path, across every (seed, metric) cell.
func TestPoolCompareSeedsDeterminism(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	serial, err := CompareSeeds(poolTestScenario, poolTestMetrics, seeds)
	if err != nil {
		t.Fatalf("serial CompareSeeds: %v", err)
	}
	parallel, err := NewPool(8).CompareSeeds(poolTestScenario, poolTestMetrics, seeds)
	if err != nil {
		t.Fatalf("parallel CompareSeeds: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("comparison count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Scenario, parallel[i].Scenario) {
			t.Errorf("seed %d: scenario differs", seeds[i])
		}
		for _, m := range poolTestMetrics {
			s, p := serial[i].Runs[m], parallel[i].Runs[m]
			if !reflect.DeepEqual(s, p) {
				t.Errorf("seed %d metric %s: run results differ", seeds[i], m)
			}
			var sb, pb bytes.Buffer
			if err := WriteResultsCSV(&sb, s); err != nil {
				t.Fatalf("serial CSV: %v", err)
			}
			if err := WriteResultsCSV(&pb, p); err != nil {
				t.Fatalf("parallel CSV: %v", err)
			}
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Errorf("seed %d metric %s: CSV export not byte-identical", seeds[i], m)
			}
		}
		var sj, pj bytes.Buffer
		if err := WriteComparisonJSON(&sj, serial[i], core.MetricNearest); err != nil {
			t.Fatalf("serial JSON: %v", err)
		}
		if err := WriteComparisonJSON(&pj, parallel[i], core.MetricNearest); err != nil {
			t.Fatalf("parallel JSON: %v", err)
		}
		if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
			t.Errorf("seed %d: JSON export not byte-identical", seeds[i])
		}
	}
}

// TestPoolCompareMatchesSerial covers the single-seed Compare entry point
// with more workers than cells.
func TestPoolCompareMatchesSerial(t *testing.T) {
	sc := poolTestScenario
	sc.Seed = 7
	serial, err := Compare(sc, poolTestMetrics)
	if err != nil {
		t.Fatalf("serial Compare: %v", err)
	}
	parallel, err := NewPool(8).Compare(sc, poolTestMetrics)
	if err != nil {
		t.Fatalf("parallel Compare: %v", err)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatalf("parallel Compare results differ from serial")
	}
}

// TestPoolErrorLowestIndexWins pins the error contract: with several
// failing cells, the pool reports the one a serial pass would have hit
// first.
func TestPoolErrorLowestIndexWins(t *testing.T) {
	p := NewPool(4)
	err := p.run(8, func(i int) error {
		if i >= 2 {
			return errIndexed(i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if err != errIndexed(2) {
		t.Fatalf("got %v, want %v", err, errIndexed(2))
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "cell failed" }

func TestPoolWorkers(t *testing.T) {
	if w := (*Pool)(nil).Workers(); w != 1 {
		t.Fatalf("nil pool workers = %d, want 1", w)
	}
	if w := NewPool(3).Workers(); w != 3 {
		t.Fatalf("NewPool(3).Workers() = %d", w)
	}
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("NewPool(0).Workers() = %d, want >= 1", w)
	}
}
