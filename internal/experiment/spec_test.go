package experiment

import (
	"encoding/json"
	"testing"
	"time"

	"intsched/internal/core"
	"intsched/internal/simtime"
	"intsched/internal/workload"
)

func TestFig4SpecEquivalentToBuilder(t *testing.T) {
	spec := Fig4Spec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	fromSpec, err := spec.Build(simtime.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildFig4(simtime.NewEngine(), LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	if fromSpec.Scheduler != direct.Scheduler {
		t.Fatalf("scheduler %s vs %s", fromSpec.Scheduler, direct.Scheduler)
	}
	if len(fromSpec.Hosts) != len(direct.Hosts) {
		t.Fatalf("hosts %d vs %d", len(fromSpec.Hosts), len(direct.Hosts))
	}
	// Same routed paths between every pair.
	for _, a := range direct.Hosts {
		for _, b := range direct.Hosts {
			if a == b {
				continue
			}
			p1, err1 := fromSpec.Net.PathBetween(a, b)
			p2, err2 := direct.Net.PathBetween(a, b)
			if err1 != nil || err2 != nil {
				t.Fatalf("path errors: %v %v", err1, err2)
			}
			if len(p1) != len(p2) {
				t.Fatalf("path %s->%s differs: %v vs %v", a, b, p1, p2)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("path %s->%s differs: %v vs %v", a, b, p1, p2)
				}
			}
		}
	}
}

func TestParseTopoSpecJSONRoundTrip(t *testing.T) {
	spec := Fig4Spec()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTopoSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Scheduler != spec.Scheduler || len(parsed.Switches) != len(spec.Switches) {
		t.Fatalf("parsed %+v", parsed)
	}
}

func TestTopoSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*TopoSpec)
	}{
		{"no switches", func(s *TopoSpec) { s.Switches = nil }},
		{"one host", func(s *TopoSpec) { s.Hosts = map[string]string{"n1": "s01"} }},
		{"unknown attach", func(s *TopoSpec) { s.Hosts["nX"] = "sZZ" }},
		{"host is switch", func(s *TopoSpec) { s.Hosts["s01"] = "s02" }},
		{"no scheduler", func(s *TopoSpec) { s.Scheduler = "" }},
		{"scheduler not host", func(s *TopoSpec) { s.Scheduler = "s01" }},
		{"bad link", func(s *TopoSpec) { s.Links = append(s.Links, [2]string{"s01", "sZZ"}) }},
		{"self link", func(s *TopoSpec) { s.Links = append(s.Links, [2]string{"s01", "s01"}) }},
		{"dup switch", func(s *TopoSpec) { s.Switches = append(s.Switches, "s01") }},
	}
	for _, tc := range cases {
		spec := Fig4Spec()
		tc.mut(spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestTopoSpecBuildRejectsPartitioned(t *testing.T) {
	spec := &TopoSpec{
		Name:      "split",
		Scheduler: "a",
		Switches:  []string{"s1", "s2"},
		Hosts:     map[string]string{"a": "s1", "b": "s2"},
		// no links between s1 and s2
	}
	if _, err := spec.Build(simtime.NewEngine()); err == nil {
		t.Fatal("partitioned topology accepted")
	}
}

func TestFatTreeSpec(t *testing.T) {
	spec, err := FatTreeSpec(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := spec.Build(simtime.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Hosts) != 6 {
		t.Fatalf("hosts %d", len(topo.Hosts))
	}
	if len(topo.Net.Switches()) != 5 {
		t.Fatalf("switches %d", len(topo.Net.Switches()))
	}
	// Same-leaf hosts: 2 hops; cross-leaf: 4 hops (host-leaf-spine-leaf-host).
	if h, _ := topo.Net.HopCount("h0000", "h0001"); h != 2 {
		t.Fatalf("same-leaf hops %d", h)
	}
	if h, _ := topo.Net.HopCount("h0000", "h0100"); h != 4 {
		t.Fatalf("cross-leaf hops %d", h)
	}
	if _, err := FatTreeSpec(0, 1, 0); err == nil {
		t.Fatal("degenerate fat tree accepted")
	}
}

func TestScenarioOnCustomTopology(t *testing.T) {
	spec, err := FatTreeSpec(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Scenario{
		Seed:      3,
		Workload:  workload.Serverless,
		Metric:    core.MetricDelay,
		TaskCount: 6,
		Topo:      spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 || len(res.Results) != 6 {
		t.Fatalf("incomplete=%d results=%d", res.Incomplete, len(res.Results))
	}
}

func TestCompareSeedsAndGainStats(t *testing.T) {
	cmps, err := CompareSeeds(Scenario{
		Workload:   workload.Serverless,
		TaskCount:  8,
		Background: BackgroundRandom,
	}, []core.Metric{core.MetricDelay, core.MetricNearest}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 3 {
		t.Fatalf("comparisons %d", len(cmps))
	}
	mean, std := GainStats(cmps, core.MetricDelay, core.MetricNearest, false)
	if mean < -1 || mean > 1 {
		t.Fatalf("mean gain %v out of range", mean)
	}
	if std < 0 {
		t.Fatalf("negative std %v", std)
	}
	if m, s := GainStats(nil, core.MetricDelay, core.MetricNearest, false); m != 0 || s != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestScenarioHysteresisAndTransferTime(t *testing.T) {
	for _, sc := range []Scenario{
		{Seed: 2, Workload: workload.Serverless, Metric: core.MetricDelay, TaskCount: 5, Hysteresis: 0.3},
		{Seed: 2, Workload: workload.Serverless, Metric: core.MetricTransferTime, TaskCount: 5},
		{Seed: 2, Workload: workload.Serverless, Metric: core.MetricDelay, TaskCount: 5, SchedulerOnlyProbes: true},
		{Seed: 2, Workload: workload.Serverless, Metric: core.MetricDelay, TaskCount: 5, ClockSkew: 2 * time.Millisecond},
	} {
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete != 0 {
			t.Fatalf("%+v: %d incomplete", sc, res.Incomplete)
		}
	}
}
