package experiment

import (
	"reflect"
	"testing"
)

func telemetryTestConfig() TelemetryConfig {
	return TelemetryConfig{
		Seed:      3,
		TaskCount: 40,
		Rates:     []float64{1.0, 0.25},
		Rounds:    6,
		Smoke:     true,
	}
}

// TestTelemetrySmoke: the sweep runs end to end, the p=1.0 identity check
// passes (enforced inside Telemetry), probabilistic cells actually
// reassemble fragments, and lower sampling rates shrink probes.
func TestTelemetrySmoke(t *testing.T) {
	res, err := Telemetry(telemetryTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quality) != 3 || len(res.Overhead) != 3 {
		t.Fatalf("quality=%d overhead=%d cells, want 3/3", len(res.Quality), len(res.Overhead))
	}
	det := res.Quality[0]
	if det.Mode != "deterministic" || det.RecordsReassembled != 0 {
		t.Fatalf("baseline cell %+v", det)
	}
	if det.Decisions == 0 || det.TelemetryBytes == 0 {
		t.Fatalf("baseline made no decisions or ingested no telemetry: %+v", det)
	}
	for _, c := range res.Quality[1:] {
		if c.Decisions != det.Decisions {
			t.Fatalf("cell %s: %d decisions, det made %d (same workload)", c.Mode, c.Decisions, det.Decisions)
		}
		if c.RecordsReassembled == 0 {
			t.Fatalf("cell %s reassembled nothing", c.Mode)
		}
	}
	// Full-rate sampling is the identity: same digest, same byte volume.
	if full := res.Quality[1]; full.Digest != det.Digest || full.TelemetryBytes != det.TelemetryBytes {
		t.Fatalf("p=1.0 cell diverged from deterministic: %+v vs %+v", full, det)
	}
	// Overhead: bytes per probe must fall monotonically with the rate.
	over := res.Overhead
	if over[0].Probes == 0 || over[0].BytesPerProbe <= 0 {
		t.Fatalf("overhead baseline measured nothing: %+v", over[0])
	}
	for i, c := range over {
		if c.Probes != over[0].Probes {
			t.Fatalf("cell %s: %d probes, det sent %d (same rig)", c.Mode, c.Probes, over[0].Probes)
		}
		if i > 1 && c.BytesPerProbe >= over[i-1].BytesPerProbe {
			t.Fatalf("bytes/probe not shrinking: %s %.1f vs %s %.1f",
				c.Mode, c.BytesPerProbe, over[i-1].Mode, over[i-1].BytesPerProbe)
		}
	}
	if last := over[len(over)-1]; last.Reduction < 1.5 {
		t.Fatalf("p=%.2f reduction only %.2fx", last.Rate, last.Reduction)
	}
	if over[len(over)-1].ReassemblyCompletions == 0 {
		t.Fatal("overhead rig closed no reassembly cycles")
	}
}

// TestTelemetryParallelMatchesSerial: the pooled sweep must reproduce the
// serial sweep exactly — cells may not depend on -parallel.
func TestTelemetryParallelMatchesSerial(t *testing.T) {
	cfg := telemetryTestConfig()
	serial, err := Telemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPool(4).Telemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Quality, parallel.Quality) {
		t.Fatalf("quality cells depend on -parallel:\nserial   %+v\nparallel %+v", serial.Quality, parallel.Quality)
	}
	if !reflect.DeepEqual(serial.Overhead, parallel.Overhead) {
		t.Fatalf("overhead cells depend on -parallel:\nserial   %+v\nparallel %+v", serial.Overhead, parallel.Overhead)
	}
}
