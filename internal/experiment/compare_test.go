package experiment

import (
	"strings"
	"testing"

	"intsched/internal/core"
	"intsched/internal/edge"
	"intsched/internal/workload"
)

// smallComparison runs a tiny two-metric comparison once per test binary.
var cachedCmp *Comparison

func smallComparison(t *testing.T) *Comparison {
	t.Helper()
	if cachedCmp != nil {
		return cachedCmp
	}
	cmp, err := Compare(Scenario{
		Seed:       5,
		Workload:   workload.Serverless,
		TaskCount:  16,
		Background: BackgroundRandom,
	}, []core.Metric{core.MetricDelay, core.MetricNearest})
	if err != nil {
		t.Fatal(err)
	}
	cachedCmp = cmp
	return cmp
}

func TestCompareReplaysIdenticalWorkload(t *testing.T) {
	cmp := smallComparison(t)
	a := cmp.Runs[core.MetricDelay].Results
	b := cmp.Runs[core.MetricNearest].Results
	if len(a) != len(b) {
		t.Fatalf("task counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Same task identity, class, size, device, and submission time —
		// only the chosen server and timings may differ.
		if a[i].TaskID != b[i].TaskID || a[i].Class != b[i].Class ||
			a[i].DataBytes != b[i].DataBytes || a[i].Device != b[i].Device ||
			a[i].SubmitAt != b[i].SubmitAt || a[i].ExecTime != b[i].ExecTime {
			t.Fatalf("workload not replayed identically at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestSummarizeByClassCountsAllTasks(t *testing.T) {
	cmp := smallComparison(t)
	run := cmp.Runs[core.MetricDelay]
	sum := SummarizeByClass(run)
	total := 0
	for _, c := range workload.Classes() {
		total += sum[c].Count
	}
	if total != len(run.Results) {
		t.Fatalf("summaries cover %d of %d tasks", total, len(run.Results))
	}
}

func TestPerTaskGainsMatchedByID(t *testing.T) {
	cmp := smallComparison(t)
	gains := cmp.PerTaskGains(core.MetricDelay, core.MetricNearest, false)
	if len(gains) != len(cmp.Runs[core.MetricDelay].Results) {
		t.Fatalf("gain samples %d, want %d", len(gains), len(cmp.Runs[core.MetricDelay].Results))
	}
	for _, g := range gains {
		if g > 1 {
			t.Fatalf("gain %v > 1 is impossible (completion times are positive)", g)
		}
	}
}

func TestGainByClassConsistentWithSummaries(t *testing.T) {
	cmp := smallComparison(t)
	gains := cmp.GainByClass(core.MetricDelay, core.MetricNearest, false)
	sums := map[core.Metric]map[workload.Class]ClassStats{
		core.MetricDelay:   SummarizeByClass(cmp.Runs[core.MetricDelay]),
		core.MetricNearest: SummarizeByClass(cmp.Runs[core.MetricNearest]),
	}
	for _, cls := range workload.Classes() {
		b := sums[core.MetricNearest][cls].MeanCompletion
		m := sums[core.MetricDelay][cls].MeanCompletion
		if b == 0 {
			continue
		}
		want := float64(b-m) / float64(b)
		if diff := gains[cls] - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("class %s gain %v, want %v", cls, gains[cls], want)
		}
	}
}

func TestClassTableRenders(t *testing.T) {
	cmp := smallComparison(t)
	out := cmp.ClassTable([]core.Metric{core.MetricDelay, core.MetricNearest}, false)
	for _, want := range []string{"class", "delay", "nearest", "gain(nearest)", "VS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareValidatesScenario(t *testing.T) {
	_, err := Compare(Scenario{
		Seed: 1, Workload: workload.Serverless, TaskCount: 2,
	}, []core.Metric{core.MetricComputeAware})
	if err == nil {
		t.Fatal("compute-aware without load reporting accepted")
	}
}

func TestBuildFig8CurveShape(t *testing.T) {
	cmp := smallComparison(t)
	curve := BuildFig8Curve("test", cmp, core.MetricDelay)
	if len(curve.Gains) == 0 || len(curve.ECDF) == 0 {
		t.Fatal("empty curve")
	}
	if curve.Label != "test" {
		t.Fatal("label lost")
	}
	z := curve.ZeroOrNegativeFraction()
	if z < 0 || z > 1 {
		t.Fatalf("fraction %v", z)
	}
	if curve.AtLeastFraction(-10) != 1 {
		t.Fatal("AtLeastFraction(-10) must be 1")
	}
}

func TestRunResultMeans(t *testing.T) {
	r := &RunResult{Results: []edge.TaskResult{
		{RankedAt: 0, TransferDoneAt: 2e9, SubmitAt: 0, CompletedAt: 4e9},
		{RankedAt: 0, TransferDoneAt: 4e9, SubmitAt: 0, CompletedAt: 8e9},
	}}
	if r.MeanTransfer().Seconds() != 3 {
		t.Fatalf("mean transfer %v", r.MeanTransfer())
	}
	if r.MeanCompletion().Seconds() != 6 {
		t.Fatalf("mean completion %v", r.MeanCompletion())
	}
	empty := &RunResult{}
	if empty.MeanTransfer() != 0 || empty.MeanCompletion() != 0 {
		t.Fatal("empty means not zero")
	}
}
