package experiment

import (
	"reflect"
	"testing"
	"time"

	"intsched/internal/core"
)

func faultsTestConfig() FaultsConfig {
	return FaultsConfig{
		Seed:             42,
		TaskCount:        80,
		MeanInterarrival: 300 * time.Millisecond,
		Metrics:          []core.Metric{core.MetricDelay, core.MetricNearest},
	}
}

// TestFaultsExperimentRecovery is the experiment's headline contract: under
// the scripted failure schedule, the network-aware delay ranker stops
// mis-scheduling within the detection budget (the fault ages out of the
// learned topology), while the static Nearest baseline keeps scheduling into
// the failure for the whole fault window.
func TestFaultsExperimentRecovery(t *testing.T) {
	res, err := Faults(faultsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	delay, nearest := rows[0], rows[1]

	if delay.Decisions == 0 || nearest.Decisions == 0 {
		t.Fatalf("no decisions recorded: %+v", rows)
	}
	if delay.PreMis != 0 || nearest.PreMis != 0 {
		t.Fatalf("mis-scheduling before any fault: delay %d, nearest %d", delay.PreMis, nearest.PreMis)
	}
	if !delay.Recovered() {
		t.Fatalf("delay ranker did not recover: %+v", delay)
	}
	if nearest.Recovered() {
		t.Fatalf("nearest unexpectedly recovered (no steady-state mis-scheduling): %+v", nearest)
	}
	if nearest.SteadyMis == 0 || nearest.Mis <= delay.Mis {
		t.Fatalf("nearest should keep mis-scheduling into the fault: delay %+v, nearest %+v", delay, nearest)
	}
	// Recovery must actually be driven by the re-mapping machinery.
	if delay.Evictions == 0 {
		t.Fatalf("no adjacency evictions during faults: %+v", delay)
	}
	if res.Runs[0].FaultStats.EventsApplied == 0 || delay.Reroutes == 0 {
		t.Fatalf("fault timeline inactive: %+v", res.Runs[0].FaultStats)
	}
	if delay.RecoveryIntervals < 0 || delay.RecoveryIntervals > DetectBudgetIntervals {
		t.Fatalf("delay recovery offset %.0f probe intervals, want within the detection budget", delay.RecoveryIntervals)
	}
}

// TestFaultsExperimentDeterministic: the experiment must be byte-identical
// across pool sizes (the CI smoke diff relies on it).
func TestFaultsExperimentDeterministic(t *testing.T) {
	cfg := faultsTestConfig()
	cfg.TaskCount = 40
	serial, err := Faults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPool(4).Faults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatal("serial and parallel fault runs diverged")
	}
	if serial.Table() != parallel.Table() {
		t.Fatal("rendered tables diverged across pool sizes")
	}
}
