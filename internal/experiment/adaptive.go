package experiment

import (
	"fmt"
	"time"

	"intsched/internal/core"
	"intsched/internal/stats"
	"intsched/internal/workload"
)

// The adaptive experiment measures what the control loop buys: total probe
// bytes against fault-detection latency and mis-schedule rate, static
// versus adaptive at several telemetry budgets. Every cell replays the
// fault-recovery workload (the same Fig 4 schedule as -exp faults). Three
// kinds of cells share the axis:
//
//   - static-full: the paper's static cadence at the base interval — the
//     bytes ceiling every adaptive cell must undercut.
//   - static-<f>: static cadence stretched to base/f, i.e. the naive way to
//     spend a fraction-f budget. Its queue window and adjacency TTL stretch
//     with the interval, so fault detection slows proportionally.
//   - adaptive-<f>: the controller at the base interval under a budget of
//     f × the static full rate. The queue window (and therefore the TTL)
//     stays anchored to the base interval, so detection stays fast while
//     back-off spends the budget where the network churns.
//
// The experiment enforces its claims as errors rather than reporting them:
// each adaptive cell must use fewer probe bytes than static-full, mis-
// schedule no more than the equal-budget static cell, and detect faults
// (worst-case eviction silence) no slower than the equal-budget static
// cell. Each cell's digest folds the placement decisions and the
// controller's decision counters, so a `-parallel 1` vs `-parallel 4` diff
// proves the control loop replays identically under pool interleaving.

// AdaptiveConfig shapes the adaptive experiment.
type AdaptiveConfig struct {
	// Seed drives workload generation and probe-loss draws.
	Seed int64
	// TaskCount is the number of tasks per cell (default 200).
	TaskCount int
	// ProbeInterval is the base probing period (default 100 ms).
	ProbeInterval time.Duration
	// MeanInterarrival is the mean job inter-arrival time (default 600 ms,
	// matching the faults experiment every cell replays).
	MeanInterarrival time.Duration
	// Metric is the ranking strategy under test (zero value: delay).
	Metric core.Metric
	// Budgets are the telemetry budget fractions to sweep (default 0.5,
	// 0.25). Each adds a static-<f> and an adaptive-<f> cell.
	Budgets []float64
	// Smoke shrinks the experiment to CI size: fewer tasks, one budget.
	Smoke bool
}

func (c *AdaptiveConfig) normalize() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TaskCount <= 0 {
		c.TaskCount = 200
		if c.Smoke {
			c.TaskCount = 60
		}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 600 * time.Millisecond
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []float64{0.5, 0.25}
		if c.Smoke {
			c.Budgets = []float64{0.5}
		}
	}
}

// AdaptiveCell is one measured configuration.
type AdaptiveCell struct {
	// Name labels the cell: "static-full", "static-<f>", "adaptive-<f>".
	Name string
	// Budget is the telemetry budget fraction (1.0 for static-full).
	Budget float64
	// Adaptive marks controller-driven cells.
	Adaptive bool
	// ProbeInterval is the cell's configured (base) probing period.
	ProbeInterval time.Duration
	// Decisions / Mis / MisPct measure scheduling quality.
	Decisions, Mis int
	MisPct         float64
	MeanCompletion time.Duration
	Incomplete     int
	// ProbesSent / TelemetryBytes are the telemetry spend.
	ProbesSent     uint64
	TelemetryBytes uint64
	// Evictions counts adjacency evictions; MaxDetect is the worst-case
	// probe silence at eviction (the fault-detection latency bound).
	Evictions int
	MaxDetect time.Duration
	// Controller activity (zero for static cells).
	Directives, Tightens, SilenceTightens, Backoffs, BudgetClamps uint64
	// Digest hashes the placement decisions, task metrics, probe spend,
	// and controller counters — byte-identical across pool parallelism.
	Digest string
}

// AdaptiveResult is the full experiment.
type AdaptiveResult struct {
	Cfg AdaptiveConfig
	// Cells: static-full first, then static-<f>, adaptive-<f> per budget.
	Cells []AdaptiveCell
}

// adaptiveDigest extends the decision digest with the run's probe spend
// and controller decision counters, so the CI parallelism diff also proves
// the control loop itself — not just its scheduling consequences — replays
// deterministically.
func adaptiveDigest(run *RunResult) string {
	return fmt.Sprintf("%s-%x", telemetryDigest(run),
		run.ProbesSent^run.DirectivesApplied<<1^run.CadenceTightens<<2^
			run.SilenceTightens<<3^run.CadenceBackoffs<<4^run.BudgetClamps<<5^
			uint64(len(run.EvictionSilences))<<6)
}

// Adaptive sweeps static and adaptive cadence control over the fault-
// recovery workload and enforces the control loop's claims.
func (p *Pool) Adaptive(cfg AdaptiveConfig) (*AdaptiveResult, error) {
	cfg.normalize()

	type axis struct {
		name     string
		interval time.Duration
		adaptive bool
		budget   float64
	}
	cells := []axis{{name: "static-full", interval: cfg.ProbeInterval, budget: 1.0}}
	for _, f := range cfg.Budgets {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("adaptive: budget fraction %v outside (0, 1]", f)
		}
		cells = append(cells,
			axis{name: fmt.Sprintf("static-%.2f", f), interval: time.Duration(float64(cfg.ProbeInterval) / f), budget: f},
			axis{name: fmt.Sprintf("adaptive-%.2f", f), interval: cfg.ProbeInterval, adaptive: true, budget: f},
		)
	}

	events := FaultsConfig{
		TaskCount:        cfg.TaskCount,
		MeanInterarrival: cfg.MeanInterarrival,
	}.normalize().Schedule()
	scenarios := make([]Scenario, len(cells))
	for i, ax := range cells {
		scenarios[i] = Scenario{
			Seed:               cfg.Seed,
			Workload:           workload.Serverless,
			Metric:             cfg.Metric,
			TaskCount:          cfg.TaskCount,
			MeanInterarrival:   cfg.MeanInterarrival,
			ProbeInterval:      ax.interval,
			Faults:             events,
			ExcludeUnreachable: true,
			RecordDecisions:    true,
			Adaptive:           ax.adaptive,
		}
		if ax.adaptive {
			scenarios[i].ProbeBudget = ax.budget
		}
		if err := scenarios[i].Validate(); err != nil {
			return nil, err
		}
	}
	runs, err := p.RunScenarios(scenarios)
	if err != nil {
		return nil, err
	}

	out := &AdaptiveResult{Cfg: cfg, Cells: make([]AdaptiveCell, len(runs))}
	for i, run := range runs {
		cell := AdaptiveCell{
			Name:            cells[i].name,
			Budget:          cells[i].budget,
			Adaptive:        cells[i].adaptive,
			ProbeInterval:   cells[i].interval,
			Decisions:       len(run.Decisions),
			Mis:             run.MisScheduled(),
			MeanCompletion:  run.MeanCompletion(),
			Incomplete:      run.Incomplete,
			ProbesSent:      run.ProbesSent,
			TelemetryBytes:  run.TelemetryBytes,
			Evictions:       len(run.EvictionSilences),
			MaxDetect:       run.MaxEvictionSilence(),
			Directives:      run.DirectivesApplied,
			Tightens:        run.CadenceTightens,
			SilenceTightens: run.SilenceTightens,
			Backoffs:        run.CadenceBackoffs,
			BudgetClamps:    run.BudgetClamps,
			Digest:          adaptiveDigest(run),
		}
		if cell.Decisions > 0 {
			cell.MisPct = 100 * float64(cell.Mis) / float64(cell.Decisions)
		}
		out.Cells[i] = cell
	}

	// Enforce the control loop's claims cell by cell. Index layout:
	// 0 = static-full, then (static, adaptive) pairs per budget.
	full := &out.Cells[0]
	for bi := range cfg.Budgets {
		st, ad := &out.Cells[1+2*bi], &out.Cells[2+2*bi]
		if ad.TelemetryBytes >= full.TelemetryBytes {
			return nil, fmt.Errorf("adaptive: %s spent %d probe bytes, not below static-full's %d (back-off never paid for itself)",
				ad.Name, ad.TelemetryBytes, full.TelemetryBytes)
		}
		if ad.Mis > st.Mis {
			return nil, fmt.Errorf("adaptive: %s mis-scheduled %d tasks vs %d for %s at the same budget (fresh cadence should not schedule worse)",
				ad.Name, ad.Mis, st.Mis, st.Name)
		}
		if st.Evictions > 0 && ad.Evictions > 0 && ad.MaxDetect > st.MaxDetect {
			return nil, fmt.Errorf("adaptive: %s worst-case detection %v exceeds %v for %s at the same budget (the controller masked a failure)",
				ad.Name, ad.MaxDetect, st.MaxDetect, st.Name)
		}
		// Tight budgets may reach max cadence purely through budget clamps
		// (the allocator grows every interval on the first evaluation before
		// any stream earns a voluntary back-off), so "the controller
		// engaged" means directives were applied, not that any one reason
		// fired.
		if ad.Directives == 0 {
			return nil, fmt.Errorf("adaptive: %s applied no directives — the controller never engaged", ad.Name)
		}
	}
	return out, nil
}

// Adaptive runs the sweep serially; see (*Pool).Adaptive.
func Adaptive(cfg AdaptiveConfig) (*AdaptiveResult, error) {
	return (*Pool)(nil).Adaptive(cfg)
}

// Table renders the sweep.
func (r *AdaptiveResult) Table() string {
	tb := stats.NewTable("adaptive", "budget", "interval", "probes", "probe bytes", "mis", "mis %",
		"evictions", "max detect", "directives", "backoffs", "clamps", "digest")
	for _, c := range r.Cells {
		tb.AddRow(c.Name, fmt.Sprintf("%.2f", c.Budget), c.ProbeInterval,
			c.ProbesSent, c.TelemetryBytes, c.Mis, fmt.Sprintf("%.2f", c.MisPct),
			c.Evictions, c.MaxDetect.Round(time.Millisecond),
			c.Directives, c.Backoffs, c.BudgetClamps, c.Digest)
	}
	return tb.String()
}
