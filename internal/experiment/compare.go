package experiment

import (
	"fmt"
	"time"

	"intsched/internal/core"
	"intsched/internal/edge"
	"intsched/internal/stats"
	"intsched/internal/workload"
)

// ClassStats summarizes the tasks of one size class within a run.
type ClassStats struct {
	Count          int
	MeanCompletion time.Duration
	MeanTransfer   time.Duration
}

// SummarizeByClass groups a run's tasks by Table I class.
func SummarizeByClass(r *RunResult) map[workload.Class]ClassStats {
	comp := make(map[workload.Class][]time.Duration)
	xfer := make(map[workload.Class][]time.Duration)
	for _, res := range r.Results {
		comp[res.Class] = append(comp[res.Class], res.CompletionTime())
		xfer[res.Class] = append(xfer[res.Class], res.TransferTime())
	}
	out := make(map[workload.Class]ClassStats)
	for _, c := range workload.Classes() {
		out[c] = ClassStats{
			Count:          len(comp[c]),
			MeanCompletion: stats.MeanDuration(comp[c]),
			MeanTransfer:   stats.MeanDuration(xfer[c]),
		}
	}
	return out
}

// Comparison holds the same scenario run under several scheduling metrics
// with identical workload and background traffic (same seed).
type Comparison struct {
	Scenario Scenario
	Runs     map[core.Metric]*RunResult
}

// Compare runs the scenario once per metric, replaying the same inputs.
// It executes serially; use Pool.Compare to spread the metrics across
// workers with identical output.
func Compare(sc Scenario, metrics []core.Metric) (*Comparison, error) {
	return (*Pool)(nil).Compare(sc, metrics)
}

func metricErr(m core.Metric, err error) error {
	return fmt.Errorf("experiment: metric %s: %w", m, err)
}

// GainByClass computes, per class, the relative improvement of metric over
// baseline on class-mean completion time (or transfer time when transfer is
// true) — the paper's per-class "performance gain" bars.
func (c *Comparison) GainByClass(metric, baseline core.Metric, transfer bool) map[workload.Class]float64 {
	m := SummarizeByClass(c.Runs[metric])
	b := SummarizeByClass(c.Runs[baseline])
	out := make(map[workload.Class]float64)
	for _, cls := range workload.Classes() {
		var mv, bv time.Duration
		if transfer {
			mv, bv = m[cls].MeanTransfer, b[cls].MeanTransfer
		} else {
			mv, bv = m[cls].MeanCompletion, b[cls].MeanCompletion
		}
		out[cls] = stats.GainDuration(bv, mv)
	}
	return out
}

// OverallGain computes the mean-over-all-tasks improvement of metric over
// baseline.
func (c *Comparison) OverallGain(metric, baseline core.Metric, transfer bool) float64 {
	mr, br := c.Runs[metric], c.Runs[baseline]
	if transfer {
		return stats.GainDuration(br.MeanTransfer(), mr.MeanTransfer())
	}
	return stats.GainDuration(br.MeanCompletion(), mr.MeanCompletion())
}

// PerTaskGains matches tasks by TaskID across two runs (the workload replay
// guarantees identical task sets) and returns each task's completion-time
// (or transfer-time) gain of metric over baseline — the samples behind the
// paper's Fig 8 ECDF.
func (c *Comparison) PerTaskGains(metric, baseline core.Metric, transfer bool) []float64 {
	mr, br := c.Runs[metric], c.Runs[baseline]
	base := make(map[uint64]edge.TaskResult, len(br.Results))
	for _, r := range br.Results {
		base[r.TaskID] = r
	}
	var out []float64
	for _, r := range mr.Results {
		b, ok := base[r.TaskID]
		if !ok {
			continue
		}
		if transfer {
			out = append(out, stats.GainDuration(b.TransferTime(), r.TransferTime()))
		} else {
			out = append(out, stats.GainDuration(b.CompletionTime(), r.CompletionTime()))
		}
	}
	return out
}

// ClassTable renders the per-class comparison across metrics as a text
// table (one row per class, one column pair per metric).
func (c *Comparison) ClassTable(metrics []core.Metric, transfer bool) string {
	header := []string{"class"}
	for _, m := range metrics {
		header = append(header, m.String())
	}
	for _, m := range metrics[1:] {
		header = append(header, fmt.Sprintf("gain(%s)", m))
	}
	// metrics[0] is the network-aware strategy; the remaining metrics are
	// baselines gains are computed against.
	t := stats.NewTable(header...)
	sums := make(map[core.Metric]map[workload.Class]ClassStats)
	for _, m := range metrics {
		sums[m] = SummarizeByClass(c.Runs[m])
	}
	for _, cls := range workload.Classes() {
		row := []any{cls.String()}
		for _, m := range metrics {
			if transfer {
				row = append(row, sums[m][cls].MeanTransfer)
			} else {
				row = append(row, sums[m][cls].MeanCompletion)
			}
		}
		for _, m := range metrics[1:] {
			g := c.GainByClass(metrics[0], m, transfer)[cls]
			row = append(row, fmt.Sprintf("%.1f%%", g*100))
		}
		t.AddRow(row...)
	}
	return t.String()
}
