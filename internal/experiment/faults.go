package experiment

import (
	"fmt"
	"time"

	"intsched/internal/core"
	"intsched/internal/fault"
	"intsched/internal/stats"
	"intsched/internal/workload"
)

// The faults experiment measures scheduler recovery on the Fig 4 deployment:
// the same workload replays once per ranking metric while a scripted failure
// schedule runs — an edge server's access link goes down, another edge server
// crashes and restarts, and a probe-loss burst degrades telemetry delivery.
// Every placement decision is classified against the simulator's ground-truth
// routing state at decision time, so the report shows, per metric, how long
// mis-scheduling persists after each failure. Network-aware rankers recover
// once probe silence ages the failed branch out of the learned topology
// (bounded by the adjacency TTL, i.e. a fixed number of probe intervals);
// the static Nearest baseline keeps scheduling into the failure for the whole
// fault window.

// FaultsConfig shapes the fault-recovery experiment.
type FaultsConfig struct {
	// Seed drives workload generation and probe-loss draws.
	Seed int64
	// TaskCount is the number of tasks per metric cell (default 200).
	TaskCount int
	// ProbeInterval is the INT probing period (default 100 ms).
	ProbeInterval time.Duration
	// MeanInterarrival is the mean job inter-arrival time (default 600 ms —
	// denser than the paper's 5 s so each fault window holds enough
	// decisions to estimate mis-scheduling rates).
	MeanInterarrival time.Duration
	// Metrics are the strategies to compare (default delay, bandwidth,
	// nearest, random).
	Metrics []core.Metric
}

func (c FaultsConfig) normalize() FaultsConfig {
	if c.TaskCount <= 0 {
		c.TaskCount = 200
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 600 * time.Millisecond
	}
	if len(c.Metrics) == 0 {
		c.Metrics = []core.Metric{core.MetricDelay, core.MetricBandwidth, core.MetricNearest, core.MetricRandom}
	}
	return c
}

// span is the expected workload duration the failure schedule is placed in.
func (c FaultsConfig) span() time.Duration {
	return time.Duration(c.TaskCount) * c.MeanInterarrival
}

// Schedule is the scripted failure sequence, with event times relative to
// the end of the collector warmup (Scenario.Faults semantics). Names refer
// to the Fig 4 topology:
//
//   - n3's access link (n3-s04) goes down at 15% of the workload span for
//     25% of it — n3 stays unreachable for the whole window since an access
//     link has no alternate path.
//   - edge server n2 crashes at 55% for 20% — probes from n2 stop and
//     traffic toward it is dropped until it restarts.
//   - a 30% probe-loss burst runs at 80% for 10% — telemetry degradation
//     without any connectivity change.
func (c FaultsConfig) Schedule() []fault.Event {
	s := c.span()
	return []fault.Event{
		{Kind: fault.LinkDown, At: s * 15 / 100, Duration: s * 25 / 100, A: "n3", B: "s04"},
		{Kind: fault.NodeHalt, At: s * 55 / 100, Duration: s * 20 / 100, Node: "n2"},
		{Kind: fault.ProbeLoss, At: s * 80 / 100, Duration: s * 10 / 100, Rate: 0.3},
	}
}

// FaultsResult is the outcome of the fault-recovery experiment: one full run
// per metric over the identical workload and failure schedule.
type FaultsResult struct {
	Cfg FaultsConfig
	// Events is the shared schedule (times relative to the warmup end).
	Events []fault.Event
	// Warm is the warmup offset that places Events on the absolute clock.
	Warm time.Duration
	// Runs holds one result per Cfg.Metrics entry, in order.
	Runs []*RunResult
}

// Faults runs the experiment serially; use Pool.Faults to spread the metric
// cells across workers with identical output.
func Faults(cfg FaultsConfig) (*FaultsResult, error) {
	return (*Pool)(nil).Faults(cfg)
}

// Faults runs one cell per metric through the pool.
func (p *Pool) Faults(cfg FaultsConfig) (*FaultsResult, error) {
	cfg = cfg.normalize()
	evs := cfg.Schedule()
	cells := make([]Scenario, len(cfg.Metrics))
	for i, m := range cfg.Metrics {
		cells[i] = Scenario{
			Seed:               cfg.Seed,
			Workload:           workload.Serverless,
			Metric:             m,
			TaskCount:          cfg.TaskCount,
			MeanInterarrival:   cfg.MeanInterarrival,
			ProbeInterval:      cfg.ProbeInterval,
			Faults:             evs,
			ExcludeUnreachable: true,
			RecordDecisions:    true,
		}
		if err := cells[i].Validate(); err != nil {
			return nil, err
		}
	}
	runs, err := p.RunScenarios(cells)
	if err != nil {
		return nil, err
	}
	return &FaultsResult{
		Cfg:    cfg,
		Events: evs,
		Warm:   cells[0].withDefaults().warmup(),
		Runs:   runs,
	}, nil
}

// DetectBudgetIntervals bounds, in probe intervals, how long the scheduler
// may keep mis-scheduling after a failure before it counts as unrecovered:
// the adjacency TTL (DefaultAdjacencyWindows x 2 probe intervals = 10) plus
// slack for the failure-straddling probe round and in-flight queries.
const DetectBudgetIntervals = 15

// FaultsRow is the per-metric summary of the experiment.
type FaultsRow struct {
	Metric core.Metric
	// Decisions / Mis count all placement decisions and the mis-scheduled
	// ones (placements unusable at decision time).
	Decisions, Mis int
	// PreMis counts mis-scheduled decisions before the first fault.
	PreMis int
	// DetectMis counts mis-scheduled decisions inside a connectivity-fault
	// window within the detection budget of its start — the unavoidable
	// stale-view phase every collector-driven ranker pays.
	DetectMis int
	// SteadyMis counts mis-scheduled decisions inside a fault window past
	// the detection budget: a recovered scheduler scores zero here.
	SteadyMis int
	// RecoveryIntervals is the worst case, over the connectivity faults, of
	// the last mis-scheduled in-window decision's offset from the fault
	// start, in probe intervals (-1 when the metric never mis-scheduled).
	RecoveryIntervals float64
	// MeanCompletion / Incomplete summarize task outcomes under faults.
	MeanCompletion time.Duration
	Incomplete     int
	// Evictions / Remaps / Reroutes are the re-mapping and reconvergence
	// counters from the run.
	Evictions, Remaps uint64
	Reroutes          int
}

// Recovered reports whether the metric stopped mis-scheduling within the
// detection budget of every connectivity fault.
func (r FaultsRow) Recovered() bool { return r.SteadyMis == 0 }

// Rows computes the per-metric summary, in Cfg.Metrics order.
func (f *FaultsResult) Rows() []FaultsRow {
	type window struct{ start, end time.Duration }
	var wins []window
	for _, ev := range f.Events {
		if ev.Kind == fault.ProbeLoss {
			continue // no connectivity change to recover from
		}
		wins = append(wins, window{f.Warm + ev.At, f.Warm + ev.At + ev.Duration})
	}
	budget := DetectBudgetIntervals * f.Cfg.ProbeInterval
	out := make([]FaultsRow, len(f.Runs))
	for i, run := range f.Runs {
		row := FaultsRow{
			Metric:            f.Cfg.Metrics[i],
			Decisions:         len(run.Decisions),
			RecoveryIntervals: -1,
			MeanCompletion:    run.MeanCompletion(),
			Incomplete:        run.Incomplete,
			Evictions:         run.AdjacencyEvictions,
			Remaps:            run.PathRemaps,
			Reroutes:          run.FaultStats.Reroutes,
		}
		firstFault := wins[0].start
		for _, d := range run.Decisions {
			if d.Usable {
				continue
			}
			row.Mis++
			if d.At < firstFault {
				row.PreMis++
			}
			for _, w := range wins {
				if d.At < w.start || d.At >= w.end {
					continue
				}
				if d.At < w.start+budget {
					row.DetectMis++
				} else {
					row.SteadyMis++
				}
				if off := float64(d.At-w.start) / float64(f.Cfg.ProbeInterval); off > row.RecoveryIntervals {
					row.RecoveryIntervals = off
				}
			}
		}
		out[i] = row
	}
	return out
}

// Table renders the per-metric summary.
func (f *FaultsResult) Table() string {
	tb := stats.NewTable("metric", "decisions", "mis", "pre-fault", "detect", "steady",
		"last mis (probe ivals)", "recovered", "mean completion", "incomplete", "evictions", "remaps", "reroutes")
	for _, r := range f.Rows() {
		last := "-"
		if r.RecoveryIntervals >= 0 {
			last = fmt.Sprintf("%.0f", r.RecoveryIntervals)
		}
		tb.AddRow(r.Metric.String(), r.Decisions, r.Mis, r.PreMis, r.DetectMis, r.SteadyMis,
			last, r.Recovered(), r.MeanCompletion.Round(time.Millisecond), r.Incomplete,
			r.Evictions, r.Remaps, r.Reroutes)
	}
	return tb.String()
}
