package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"intsched/internal/core"
)

// Pool executes independent scenario cells (one full simulation each) on a
// bounded set of worker goroutines. Every cell owns its engine, network,
// and RNG — the packages under internal/ hold no mutable package-level
// state — so cells are embarrassingly parallel, and because results are
// reassembled in submission order, serial and parallel execution produce
// byte-identical reports.
//
// A nil *Pool is valid and runs every cell serially on the calling
// goroutine, so the package-level Compare/CompareSeeds/Fig3/Fig9 helpers
// are simply delegations to (*Pool)(nil).
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers cells concurrently.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound (1 for a nil or serial pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// run executes fn(0..n-1) across the pool's workers and waits for all of
// them. fn stores its own result by index, which is what makes reassembly
// order-independent of goroutine scheduling. When several cells fail, the
// lowest-indexed error is returned — the same error a serial pass would
// have surfaced first.
func (p *Pool) run(n int, fn func(i int) error) error {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunScenarios runs each scenario as one cell and returns the results in
// input order.
func (p *Pool) RunScenarios(scs []Scenario) ([]*RunResult, error) {
	out := make([]*RunResult, len(scs))
	err := p.run(len(scs), func(i int) error {
		r, err := Run(scs[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compare runs the scenario once per metric (each metric one cell),
// replaying the same inputs.
func (p *Pool) Compare(sc Scenario, metrics []core.Metric) (*Comparison, error) {
	cells := make([]Scenario, len(metrics))
	for i, m := range metrics {
		run := sc
		run.Metric = m
		if err := run.Validate(); err != nil {
			return nil, err
		}
		cells[i] = run
	}
	results := make([]*RunResult, len(metrics))
	err := p.run(len(metrics), func(i int) error {
		res, err := Run(cells[i])
		if err != nil {
			return metricErr(metrics[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	c := &Comparison{Scenario: sc, Runs: make(map[core.Metric]*RunResult, len(metrics))}
	for i, m := range metrics {
		c.Runs[m] = results[i]
	}
	return c, nil
}

// CompareSeeds replays the comparison across several seeds, flattening the
// seeds × metrics grid into independent cells so a large pool keeps every
// worker busy even with few seeds.
func (p *Pool) CompareSeeds(sc Scenario, metrics []core.Metric, seeds []int64) ([]*Comparison, error) {
	nm := len(metrics)
	cells := make([]Scenario, 0, len(seeds)*nm)
	for _, seed := range seeds {
		for _, m := range metrics {
			run := sc
			run.Seed = seed
			run.Metric = m
			if err := run.Validate(); err != nil {
				return nil, err
			}
			cells = append(cells, run)
		}
	}
	results := make([]*RunResult, len(cells))
	err := p.run(len(cells), func(i int) error {
		res, err := Run(cells[i])
		if err != nil {
			return metricErr(metrics[i%nm], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Comparison, 0, len(seeds))
	for si, seed := range seeds {
		s := sc
		s.Seed = seed
		cmp := &Comparison{Scenario: s, Runs: make(map[core.Metric]*RunResult, nm)}
		for mi, m := range metrics {
			cmp.Runs[m] = results[si*nm+mi]
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Fig3 sweeps utilization levels, one cell per level.
func (p *Pool) Fig3(cfg Fig3Config) ([]Fig3Point, error) {
	cfg = cfg.withDefaults()
	out := make([]Fig3Point, len(cfg.Utilizations))
	err := p.run(len(cfg.Utilizations), func(i int) error {
		pt, err := fig3Point(cfg, cfg.Utilizations[i])
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig9 sweeps the probing interval under both background patterns; each
// (interval, traffic-pattern) pair is one cell.
func (p *Pool) Fig9(cfg Fig9Config) ([]Fig9Point, error) {
	cfg = cfg.withDefaults()
	cells := make([]Scenario, 0, 2*len(cfg.Intervals))
	for _, interval := range cfg.Intervals {
		cells = append(cells, fig9Scenario(cfg, interval, false), fig9Scenario(cfg, interval, true))
	}
	results, err := p.RunScenarios(cells)
	if err != nil {
		return nil, err
	}
	out := make([]Fig9Point, len(cfg.Intervals))
	for i, interval := range cfg.Intervals {
		out[i] = Fig9Point{
			Interval:             interval,
			Traffic1MeanTransfer: results[2*i].MeanTransfer(),
			Traffic2MeanTransfer: results[2*i+1].MeanTransfer(),
		}
	}
	return out, nil
}
