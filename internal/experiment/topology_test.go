package experiment

import (
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

func TestBuildFig4Structure(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildFig4(engine, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	nw := topo.Net
	if got := len(nw.Switches()); got != 12 {
		t.Fatalf("switches %d, want 12", got)
	}
	if got := len(nw.Hosts()); got != 8 {
		t.Fatalf("hosts %d, want 8", got)
	}
	if topo.Scheduler != "n6" {
		t.Fatalf("scheduler %s, want n6 (the paper's Node 6)", topo.Scheduler)
	}
	// 12 ring links + 2 chords + 8 host uplinks.
	if got := len(nw.Links()); got != 22 {
		t.Fatalf("links %d, want 22", got)
	}
}

func TestBuildFig4NearestPairs(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildFig4(engine, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: every node has a 3-hop nearest neighbor; n7 and n8 are
	// each other's nearest nodes.
	pairs := [][2]netsim.NodeID{{"n1", "n2"}, {"n3", "n4"}, {"n5", "n6"}, {"n7", "n8"}}
	for _, p := range pairs {
		hops, err := topo.Net.HopCount(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if hops != 3 {
			t.Errorf("hops(%s,%s)=%d, want 3", p[0], p[1], hops)
		}
	}
	// And for every host the minimum distance to any other host is 3.
	for _, a := range topo.Hosts {
		best := 1 << 30
		for _, b := range topo.Hosts {
			if a == b {
				continue
			}
			h, err := topo.Net.HopCount(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if h < best {
				best = h
			}
		}
		if best != 3 {
			t.Errorf("host %s nearest distance %d, want 3", a, best)
		}
	}
}

func TestBuildFig4AllPairsReachable(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildFig4(engine, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range topo.Hosts {
		for _, b := range topo.Hosts {
			if a == b {
				continue
			}
			if _, err := topo.Net.PathBetween(a, b); err != nil {
				t.Errorf("no path %s -> %s: %v", a, b, err)
			}
		}
	}
}

func TestBuildFig4HostUplinksAsymmetric(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildFig4(engine, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	// Host uplinks: host side egresses at NIC rate, switch side at the
	// switch rate.
	n1 := topo.Net.Node("n1")
	link := n1.Ports[0].Link()
	if link.Config.RateBps != DefaultHostEgressRate {
		t.Errorf("host egress %d, want %d", link.Config.RateBps, DefaultHostEgressRate)
	}
	if link.Config.ReverseRateBps != DefaultLinkRate {
		t.Errorf("switch egress %d, want %d", link.Config.ReverseRateBps, DefaultLinkRate)
	}
}

func TestBuildDumbbell(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildDumbbell(engine, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	hops, err := topo.Net.HopCount("h1", "h2")
	if err != nil || hops != 2 {
		t.Fatalf("hops %d err %v", hops, err)
	}
}

func TestBuildLinear(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildLinear(engine, 5, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	hops, err := topo.Net.HopCount("h1", "h2")
	if err != nil || hops != 6 {
		t.Fatalf("hops %d err %v", hops, err)
	}
	if _, err := BuildLinear(engine, 0, LinkParams{}); err == nil {
		t.Fatal("zero switches accepted")
	}
}

func TestWarmCollectorLearnsEverything(t *testing.T) {
	engine := simtime.NewEngine()
	topo, err := BuildFig4(engine, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := WarmCollector(topo, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	learned := coll.Snapshot()
	if got := len(learned.Hosts()); got != 8 {
		t.Fatalf("learned %d hosts, want 8", got)
	}
	// The learned path must equal the simulator's routed path for every
	// host pair — the property the delay estimate depends on.
	for _, a := range topo.Hosts {
		for _, b := range topo.Hosts {
			if a == b {
				continue
			}
			want, err := topo.Net.PathBetween(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := learned.Path(string(a), string(b))
			if err != nil {
				t.Errorf("no learned path %s->%s: %v", a, b, err)
				continue
			}
			if len(got) != len(want) {
				t.Errorf("path %s->%s learned %v, routed %v", a, b, got, want)
				continue
			}
			for i := range want {
				if got[i] != string(want[i]) {
					t.Errorf("path %s->%s learned %v, routed %v", a, b, got, want)
					break
				}
			}
		}
	}
	// Link delays converge to the configured 10 ms (plus sub-ms
	// serialization).
	d, ok := coll.LinkDelay("s01", "s02")
	if !ok {
		t.Fatal("no delay for s01-s02")
	}
	if d < 10*time.Millisecond || d > 12*time.Millisecond {
		t.Errorf("learned s01-s02 delay %v, want ≈10.6ms", d)
	}
}
