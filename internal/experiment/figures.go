package experiment

import (
	"math"
	"time"

	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/stats"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
	"intsched/internal/workload"
)

// Fig3Config parameterizes the utilization→(queue, delay) calibration sweep
// of the paper's Fig 3: fixed-rate traffic between two hosts through one P4
// switch, with background ping measuring RTT and 100 ms INT probes flushing
// the switch's max-queue register.
type Fig3Config struct {
	// Utilizations are the offered-load fractions to sweep (default
	// 0.0–1.0 in steps of 0.1).
	Utilizations []float64
	// Duration is the measurement time per utilization level (paper:
	// 300 s; default 60 s which converges to the same averages).
	Duration time.Duration
	// Links sets link parameters (paper defaults when zero).
	Links LinkParams
	// Seed drives the traffic source's Poisson pacing.
	Seed int64
	// ProbeInterval is the register flush cadence (default 100 ms).
	ProbeInterval time.Duration
}

func (c Fig3Config) withDefaults() Fig3Config {
	if len(c.Utilizations) == 0 {
		for u := 0.0; u <= 1.001; u += 0.1 {
			c.Utilizations = append(c.Utilizations, math.Round(u*10)/10)
		}
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	c.Links = c.Links.withDefaults()
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = probe.DefaultInterval
	}
	return c
}

// Fig3Point is one measured point of the calibration sweep.
type Fig3Point struct {
	// Utilization is the offered load as a fraction of link rate.
	Utilization float64
	// MeanMaxQueue is the mean of the per-interval max queue occupancies
	// flushed by probes (packets).
	MeanMaxQueue float64
	// PeakQueue is the largest single flushed value.
	PeakQueue int
	// MeanRTT is the mean ping round-trip time.
	MeanRTT time.Duration
	// Drops counts packets lost at the bottleneck during the run.
	Drops uint64
}

// Fig3 runs the calibration sweep and returns one point per utilization.
func Fig3(cfg Fig3Config) ([]Fig3Point, error) {
	return (*Pool)(nil).Fig3(cfg)
}

func fig3Point(cfg Fig3Config, util float64) (Fig3Point, error) {
	engine := simtime.NewEngine()
	topo, err := BuildDumbbell(engine, cfg.Links)
	if err != nil {
		return Fig3Point{}, err
	}
	nw := topo.Net
	dataplane.AttachINT(nw, dataplane.INTConfig{})
	domain := transport.NewDomain(nw).InstallAll()

	// The congested direction is h1 -> h2, so we watch s1's egress port
	// toward h2.
	watchPort := nw.Node("s1").PortTo("h2")

	var queueSamples []float64
	peak := 0
	domain.Stack("h1").ProbeHandler = func(pkt *netsim.Packet) {
		for _, rec := range pkt.Probe.Stack.Records {
			if rec.Device != "s1" {
				continue
			}
			if q, ok := rec.MaxQueueFor(watchPort); ok {
				queueSamples = append(queueSamples, float64(q))
				if q > peak {
					peak = q
				}
			}
		}
	}
	probe.NewProber(nw, "h2", "h1", cfg.ProbeInterval)

	// Fixed-rate traffic at the requested utilization, with the Poisson
	// pacing of a real iperf UDP sender.
	if util > 0 {
		rate := int64(util * float64(cfg.Links.RateBps))
		domain.Stack("h1").StartCBR("h2", transport.CBRConfig{
			RateBps: rate,
			Jitter:  simtime.NewRand(cfg.Seed).Stream("fig3-cbr"),
		})
	}

	// Background ping at 1 s intervals, as in the paper.
	pinger := domain.Stack("h1").StartPinger("h2", time.Second)

	engine.Run(cfg.Duration)

	return Fig3Point{
		Utilization:  util,
		MeanMaxQueue: stats.Mean(queueSamples),
		PeakQueue:    peak,
		MeanRTT:      pinger.MeanRTT(),
		Drops:        nw.Dropped,
	}, nil
}

// CalibrationFromFig3 converts sweep results into a queue→utilization
// calibration usable by the bandwidth ranker — closing the loop the paper
// leaves as manual tuning.
func CalibrationFromFig3(points []Fig3Point) (*core.Calibration, error) {
	obs := make([]core.CalPoint, 0, len(points))
	for _, p := range points {
		obs = append(obs, core.CalPoint{Queue: int(math.Round(p.MeanMaxQueue)), Util: p.Utilization})
	}
	return core.FitCalibration(obs)
}

// KFromFig3 fits the queue→latency conversion factor k from the sweep: the
// extra delay beyond the uncongested baseline attributed to queueing,
// regressed against queue occupancy (the paper's future-work automation of
// k, which it hand-set to 20 ms).
func KFromFig3(points []Fig3Point) (time.Duration, error) {
	if len(points) == 0 {
		return 0, nil
	}
	base := points[0].MeanRTT
	var samples []core.KSample
	for _, p := range points[1:] {
		extra := p.MeanRTT - base
		if extra < 0 {
			extra = 0
		}
		samples = append(samples, core.KSample{
			QueueSum:   int(math.Round(p.MeanMaxQueue)),
			ExtraDelay: extra / 2, // RTT crosses the queue twice
		})
	}
	return core.CalibrateK(samples)
}

// Fig9Config parameterizes the probing-interval sweep.
type Fig9Config struct {
	// Intervals are the probing periods to sweep (paper: 0.1, 5, 10, 20,
	// 30 s).
	Intervals []time.Duration
	// Seed drives the replayed workload/traffic.
	Seed int64
	// TaskCount is the tasks per run (default 200).
	TaskCount int
	// Metric is the network-aware strategy used (default bandwidth
	// ranking, which drives the paper's transfer-time metric).
	Metric core.Metric
}

func (c Fig9Config) withDefaults() Fig9Config {
	if len(c.Intervals) == 0 {
		c.Intervals = []time.Duration{
			100 * time.Millisecond, 5 * time.Second, 10 * time.Second,
			20 * time.Second, 30 * time.Second,
		}
	}
	if c.TaskCount <= 0 {
		c.TaskCount = 200
	}
	return c
}

// Fig9Point is one measured point of the probing-interval sweep.
type Fig9Point struct {
	Interval time.Duration
	// Traffic1MeanTransfer is the mean data transfer time under the
	// infrequently changing background (medium tasks).
	Traffic1MeanTransfer time.Duration
	// Traffic2MeanTransfer is the mean under the frequently changing
	// background (small tasks).
	Traffic2MeanTransfer time.Duration
}

// Fig9 sweeps the probing interval under both background patterns.
func Fig9(cfg Fig9Config) ([]Fig9Point, error) {
	return (*Pool)(nil).Fig9(cfg)
}

// fig9Scenario builds one sweep cell: the infrequently changing background
// with medium tasks (traffic2=false) or the frequently changing background
// with small tasks (traffic2=true).
func fig9Scenario(cfg Fig9Config, interval time.Duration, traffic2 bool) Scenario {
	sc := Scenario{
		Seed:          cfg.Seed,
		Workload:      workload.Distributed,
		Metric:        cfg.Metric,
		TaskCount:     cfg.TaskCount,
		Classes:       []workload.Class{workload.Medium},
		ProbeInterval: interval,
		Background:    BackgroundTraffic1,
	}
	if traffic2 {
		sc.Classes = []workload.Class{workload.Small}
		sc.Background = BackgroundTraffic2
	}
	return sc
}

// Fig8Curve is one ECDF curve of per-task completion-time gains vs the
// Nearest baseline.
type Fig8Curve struct {
	Label string
	// Gains holds the per-task gain samples.
	Gains []float64
	// ECDF is the empirical CDF of Gains.
	ECDF []stats.ECDFPoint
}

// ZeroOrNegativeFraction returns the fraction of tasks with gain ≤ 0 — the
// paper reports 38% (distributed-delay) and 19% (distributed-bandwidth).
func (c Fig8Curve) ZeroOrNegativeFraction() float64 {
	return stats.FractionAtMost(c.Gains, 0)
}

// AtLeastFraction returns the fraction of tasks with gain ≥ g.
func (c Fig8Curve) AtLeastFraction(g float64) float64 {
	return stats.FractionAtLeast(c.Gains, g)
}

// BuildFig8Curve assembles a Fig 8 curve from a comparison.
func BuildFig8Curve(label string, cmp *Comparison, metric core.Metric) Fig8Curve {
	gains := cmp.PerTaskGains(metric, core.MetricNearest, false)
	return Fig8Curve{Label: label, Gains: gains, ECDF: stats.ECDF(gains)}
}

// OverheadTelemetryBytes reports the measured on-wire size of a probe
// payload carrying records from the given number of hops — used by the
// overhead ablation comparing register staging against per-packet INT.
func OverheadTelemetryBytes(hops int) (int, error) {
	p := &telemetry.ProbePayload{Origin: "n1", Seq: 1}
	for i := 0; i < hops; i++ {
		p.Stack.Append(telemetry.Record{
			Device:      "s01",
			IngressPort: 1,
			EgressPort:  2,
			LinkLatency: 10 * time.Millisecond,
			HopLatency:  time.Millisecond,
			EgressTS:    time.Second,
			Queues: []telemetry.PortQueue{
				{Port: 0, MaxQueue: 10, Packets: 100},
				{Port: 1, MaxQueue: 0, Packets: 50},
				{Port: 2, MaxQueue: 3, Packets: 75},
			},
		})
	}
	b, err := telemetry.MarshalProbe(p)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}
