package experiment

import (
	"reflect"
	"testing"
	"time"
)

func scaleTestConfig() ScaleConfig {
	return ScaleConfig{
		Seed:            3,
		ShardCounts:     []int{1, 2, 3},
		Rounds:          3,
		QueriesPerRound: 16,
		ProbeInterval:   50 * time.Millisecond,
		Warm:            400 * time.Millisecond,
		Smoke:           true,
	}
}

// TestScaleSmoke: the smoke sweep runs end to end, every cell answered
// queries against live telemetry, and (enforced inside Scale) every shard
// count reproduced the single-shard digest.
func TestScaleSmoke(t *testing.T) {
	res, err := Scale(scaleTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 { // 2 topologies × shard counts {1,2,3}
		t.Fatalf("%d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Queries != 48 || c.QPS <= 0 {
			t.Fatalf("cell %s shards=%d: queries %d qps %f", c.Topo, c.Shards, c.Queries, c.QPS)
		}
		if c.ProbesReceived == 0 {
			t.Fatalf("cell %s shards=%d ingested no probes", c.Topo, c.Shards)
		}
		if c.IngestDrops != 0 {
			t.Fatalf("cell %s shards=%d dropped %d probes on the synchronous path", c.Topo, c.Shards, c.IngestDrops)
		}
		if c.SnapshotP99 < c.SnapshotP50 {
			t.Fatalf("cell %s shards=%d: p99 %v < p50 %v", c.Topo, c.Shards, c.SnapshotP99, c.SnapshotP50)
		}
	}
	// Both generated fabrics carry partition maps for the sharded collector.
	for _, c := range res.Cells {
		if c.Partitions < 2 {
			t.Fatalf("cell %s: partition count %d", c.Topo, c.Partitions)
		}
	}
}

// TestScaleParallelMatchesSerial: the pooled sweep must reproduce the serial
// sweep cell for cell once wall-clock fields are masked — the digest (and
// everything else derived from the simulation) may not depend on -parallel.
func TestScaleParallelMatchesSerial(t *testing.T) {
	cfg := scaleTestConfig()
	serial, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPool(4).Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mask := func(cells []ScaleCell) []ScaleCell {
		out := make([]ScaleCell, len(cells))
		for i, c := range cells {
			c.QPS, c.SnapshotP50, c.SnapshotP99, c.Elapsed = 0, 0, 0, 0
			out[i] = c
		}
		return out
	}
	if !reflect.DeepEqual(mask(serial.Cells), mask(parallel.Cells)) {
		t.Fatalf("parallel sweep diverged from serial:\n%v\n%v", mask(serial.Cells), mask(parallel.Cells))
	}
}
