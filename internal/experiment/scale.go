package experiment

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/transport"
	"intsched/internal/wallclock"
)

// The scale experiment drives the sharded collector on generated metro-scale
// fabrics: every edge server probes toward the scheduler (a star plan —
// full pairwise coverage is quadratic in thousands of hosts), the scheduler
// answers batched ranking queries between probe rounds, and each cell
// reports merge-on-read snapshot latency, query throughput, and an FNV-1a
// digest of every ranked answer. The digest is the determinism contract:
// for one topology it must be byte-identical across shard counts (sharding
// repartitions state, never results) and across -parallel widths (the pool
// reassembles cells by index).

// ScaleConfig shapes the scale experiment.
type ScaleConfig struct {
	// Seed drives the generated fabrics' link jitter (default 1).
	Seed int64
	// ShardCounts lists the collector shard counts to sweep per topology
	// (default 1, 2, 4; always deduplicated and sorted, and 1 is always
	// included as the digest baseline).
	ShardCounts []int
	// Rounds is the number of measured probe→query rounds (default 12).
	Rounds int
	// QueriesPerRound is the batch size submitted to RankBatchOn each
	// round (default 256).
	QueriesPerRound int
	// ProbeInterval is the fleet cadence (default 100 ms).
	ProbeInterval time.Duration
	// Warm is the probing phase before measurement (default 1 s).
	Warm time.Duration
	// Smoke shrinks the fabrics to CI size: a 2-pod Clos and a 2-region
	// metro instead of the full >=200-switch / >=1000-host defaults.
	Smoke bool
}

func (c *ScaleConfig) normalize() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4}
	}
	seen := map[int]bool{}
	counts := []int{1} // the single-shard baseline anchors every digest diff
	seen[1] = true
	for _, n := range c.ShardCounts {
		if n > 1 && !seen[n] {
			seen[n] = true
			counts = append(counts, n)
		}
	}
	sort.Ints(counts)
	c.ShardCounts = counts
	if c.Rounds <= 0 {
		c.Rounds = 12
	}
	if c.QueriesPerRound <= 0 {
		c.QueriesPerRound = 256
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.Warm <= 0 {
		c.Warm = time.Second
	}
}

// specs returns the generated fabrics the sweep runs on.
func (c *ScaleConfig) specs() ([]*TopoSpec, error) {
	if c.Smoke {
		clos, err := ClosSpec(ClosConfig{Pods: 2, Cores: 2, AggsPerPod: 2, TorsPerPod: 2, HostsPerTor: 2, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		metro, err := MetroSpec(MetroConfig{Regions: 2, PodsPerRegion: 2, TorsPerPod: 2, ServersPerTor: 2, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		return []*TopoSpec{clos, metro}, nil
	}
	clos, err := ClosSpec(ClosConfig{Seed: c.Seed}) // 208 switches, 256 hosts
	if err != nil {
		return nil, err
	}
	metro, err := MetroSpec(MetroConfig{Seed: c.Seed}) // 148 switches, 1025 hosts
	if err != nil {
		return nil, err
	}
	return []*TopoSpec{clos, metro}, nil
}

// ScaleCell is one measured (topology, shard count) configuration.
type ScaleCell struct {
	Topo       string
	Shards     int
	Partitions int
	Switches   int
	Hosts      int
	Queries    int
	// QPS is batched ranking throughput over the measured rounds
	// (wall-clock; excluded from the digest).
	QPS float64
	// SnapshotP50/P99 are merge-on-read latencies of the first Snapshot
	// after each probe round (the epoch moved, so every sampled call pays
	// the shard merge).
	SnapshotP50 time.Duration
	SnapshotP99 time.Duration
	// IngestDrops counts probes dropped at the async ingest queues
	// (zero on this synchronous rig; reported for parity with live).
	IngestDrops uint64
	// ProbesReceived is the collector's ingest count at the end of the run.
	ProbesReceived uint64
	// Digest is the FNV-1a hash over every ranked answer of every round.
	Digest string
	// Elapsed is the cell's wall-clock measurement time.
	Elapsed time.Duration
}

// ScaleResult is the full sweep, cells in (topology, shard count) order.
type ScaleResult struct {
	Cells []ScaleCell
}

// runScaleCell builds one deployment and measures it.
func runScaleCell(spec *TopoSpec, shards int, cfg ScaleConfig) (ScaleCell, error) {
	engine := simtime.NewEngine()
	topo, err := spec.Build(engine)
	if err != nil {
		return ScaleCell{}, err
	}
	dataplane.AttachINT(topo.Net, dataplane.INTConfig{})
	domain := transport.NewDomain(topo.Net).InstallAll()
	part, nparts := spec.PartitionFn()
	coll := collector.New(topo.Scheduler, engine.Now, collector.Config{
		QueueWindow: 2 * cfg.ProbeInterval,
		Shards:      shards,
		Partition:   part,
	})
	coll.Bind(domain.Stack(topo.Scheduler))
	svc := core.NewService(domain.Stack(topo.Scheduler), coll, core.ServiceConfig{})
	svc.Register(&core.DelayRanker{})
	svc.Register(&core.BandwidthRanker{})
	devices := make([]netsim.NodeID, 0, len(topo.Hosts))
	for _, h := range topo.Hosts {
		if h != topo.Scheduler {
			probe.InstallRelay(domain.Stack(h), topo.Scheduler)
			devices = append(devices, h)
		}
	}
	probe.NewFleet(topo.Net, devices, topo.Scheduler, cfg.ProbeInterval)
	engine.Run(engine.Now() + cfg.Warm)

	digest := fnv.New64a()
	snapLat := make([]time.Duration, 0, cfg.Rounds)
	reqs := make([]*core.QueryRequest, cfg.QueriesPerRound)
	queries := 0
	start := wallclock.Now()
	for round := 0; round < cfg.Rounds; round++ {
		engine.Run(engine.Now() + cfg.ProbeInterval)
		// The probe round moved shard epochs, so this Snapshot pays the
		// merge; time it from the caller's side (the collector itself
		// never reads the wall clock).
		t0 := wallclock.Now()
		snap := coll.Snapshot()
		snapLat = append(snapLat, wallclock.Since(t0))
		for i := range reqs {
			q := round*cfg.QueriesPerRound + i
			metric := core.MetricDelay
			if q%2 == 1 {
				metric = core.MetricBandwidth
			}
			reqs[i] = &core.QueryRequest{
				From:   devices[q%len(devices)],
				Metric: metric,
				Sorted: true,
				Count:  8,
			}
		}
		results := svc.RankBatchOn(snap, reqs)
		queries += len(reqs)
		for i, ranked := range results {
			fmt.Fprintf(digest, "r%d q%d %s %d\n", round, i, reqs[i].From, reqs[i].Metric)
			for _, c := range ranked {
				fmt.Fprintf(digest, "%s %d %.0f %d %t\n", c.Node, c.Delay.Nanoseconds(), c.BandwidthBps, c.Hops, c.Reachable)
			}
		}
	}
	elapsed := wallclock.Since(start)
	sort.Slice(snapLat, func(i, j int) bool { return snapLat[i] < snapLat[j] })
	st := coll.Stats()
	cell := ScaleCell{
		Topo:           spec.Name,
		Shards:         shards,
		Partitions:     nparts,
		Switches:       len(spec.Switches),
		Hosts:          len(spec.Hosts),
		Queries:        queries,
		SnapshotP50:    snapLat[len(snapLat)/2],
		SnapshotP99:    snapLat[(len(snapLat)*99)/100],
		IngestDrops:    st.IngestDrops,
		ProbesReceived: st.ProbesReceived,
		Digest:         fmt.Sprintf("%016x", digest.Sum64()),
		Elapsed:        elapsed,
	}
	if elapsed > 0 {
		cell.QPS = float64(queries) / elapsed.Seconds()
	}
	return cell, nil
}

// Scale sweeps topologies × shard counts, one cell per configuration, and
// verifies the sharding determinism contract: for each topology, every
// shard count must produce the digest of the single-shard baseline.
func (p *Pool) Scale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	type cellSpec struct {
		spec   *TopoSpec
		shards int
	}
	var cells []cellSpec
	for _, spec := range specs {
		for _, n := range cfg.ShardCounts {
			cells = append(cells, cellSpec{spec, n})
		}
	}
	out := make([]ScaleCell, len(cells))
	err = p.run(len(cells), func(i int) error {
		cell, err := runScaleCell(cells[i].spec, cells[i].shards, cfg)
		if err != nil {
			return fmt.Errorf("scale %s shards=%d: %w", cells[i].spec.Name, cells[i].shards, err)
		}
		out[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	baseline := map[string]string{}
	for _, cell := range out {
		if cell.Shards == 1 {
			baseline[cell.Topo] = cell.Digest
		}
	}
	for _, cell := range out {
		if want := baseline[cell.Topo]; cell.Digest != want {
			return nil, fmt.Errorf("scale %s: shards=%d digest %s != single-shard %s (sharding changed results)",
				cell.Topo, cell.Shards, cell.Digest, want)
		}
	}
	return &ScaleResult{Cells: out}, nil
}

// Scale runs the sweep serially; see (*Pool).Scale.
func Scale(cfg ScaleConfig) (*ScaleResult, error) {
	return (*Pool)(nil).Scale(cfg)
}
