package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"intsched/internal/core"
	"intsched/internal/stats"
	"intsched/internal/workload"
)

// WriteResultsCSV exports a run's per-task results as CSV (one row per
// task), suitable for external plotting of the paper's figures.
func WriteResultsCSV(w io.Writer, r *RunResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"task_id", "job_id", "class", "kind", "device", "server",
		"data_bytes", "exec_ms", "submit_ms", "ranked_ms",
		"transfer_done_ms", "completed_ms", "transfer_ms", "completion_ms",
		"retransmits",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	for _, res := range r.Results {
		row := []string{
			strconv.FormatUint(res.TaskID, 10),
			strconv.FormatUint(res.JobID, 10),
			res.Class.String(),
			res.Kind.String(),
			string(res.Device),
			string(res.Server),
			strconv.FormatInt(res.DataBytes, 10),
			ms(res.ExecTime),
			ms(res.SubmitAt),
			ms(res.RankedAt),
			ms(res.TransferDoneAt),
			ms(res.CompletedAt),
			ms(res.TransferTime()),
			ms(res.CompletionTime()),
			strconv.Itoa(res.Retransmits),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteECDFCSV exports an ECDF as two-column CSV (value, fraction).
func WriteECDFCSV(w io.Writer, points []stats.ECDFPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"value", "fraction"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.Value, 'f', 6, 64),
			strconv.FormatFloat(p.Fraction, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary is the JSON-exportable digest of one run.
type Summary struct {
	Workload       string               `json:"workload"`
	Metric         string               `json:"metric"`
	Seed           int64                `json:"seed"`
	TaskCount      int                  `json:"task_count"`
	Incomplete     int                  `json:"incomplete"`
	ProbeInterval  string               `json:"probe_interval"`
	MeanTransfer   float64              `json:"mean_transfer_ms"`
	MeanCompletion float64              `json:"mean_completion_ms"`
	PacketsDropped uint64               `json:"packets_dropped"`
	ProbesReceived uint64               `json:"probes_received"`
	Classes        map[string]ClassJSON `json:"classes"`
}

// ClassJSON is the per-class digest.
type ClassJSON struct {
	Count          int     `json:"count"`
	MeanTransfer   float64 `json:"mean_transfer_ms"`
	MeanCompletion float64 `json:"mean_completion_ms"`
}

// Summarize builds the JSON digest of a run.
func Summarize(r *RunResult) Summary {
	msf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s := Summary{
		Workload:       r.Scenario.Workload.String(),
		Metric:         r.Scenario.Metric.String(),
		Seed:           r.Scenario.Seed,
		TaskCount:      r.Scenario.TaskCount,
		Incomplete:     r.Incomplete,
		ProbeInterval:  r.Scenario.ProbeInterval.String(),
		MeanTransfer:   msf(r.MeanTransfer()),
		MeanCompletion: msf(r.MeanCompletion()),
		PacketsDropped: r.PacketsDropped,
		ProbesReceived: r.ProbesReceived,
		Classes:        make(map[string]ClassJSON),
	}
	for cls, cs := range SummarizeByClass(r) {
		s.Classes[cls.String()] = ClassJSON{
			Count:          cs.Count,
			MeanTransfer:   msf(cs.MeanTransfer),
			MeanCompletion: msf(cs.MeanCompletion),
		}
	}
	return s
}

// WriteSummaryJSON exports the run digest as indented JSON.
func WriteSummaryJSON(w io.Writer, r *RunResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Summarize(r))
}

// ComparisonSummary digests a multi-metric comparison, including the
// paper's headline gain numbers.
type ComparisonSummary struct {
	Runs  map[string]Summary            `json:"runs"`
	Gains map[string]map[string]float64 `json:"gains_vs_baseline_pct"`
}

// SummarizeComparison digests a comparison against the given baseline.
func SummarizeComparison(c *Comparison, baseline core.Metric) ComparisonSummary {
	out := ComparisonSummary{
		Runs:  make(map[string]Summary),
		Gains: make(map[string]map[string]float64),
	}
	for m, run := range c.Runs {
		out.Runs[m.String()] = Summarize(run)
		if m == baseline {
			continue
		}
		g := map[string]float64{
			"overall_completion": c.OverallGain(m, baseline, false) * 100,
			"overall_transfer":   c.OverallGain(m, baseline, true) * 100,
		}
		for cls, v := range c.GainByClass(m, baseline, false) {
			g["completion_"+cls.String()] = v * 100
		}
		out.Gains[m.String()] = g
	}
	return out
}

// WriteComparisonJSON exports the comparison digest as indented JSON.
func WriteComparisonJSON(w io.Writer, c *Comparison, baseline core.Metric) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SummarizeComparison(c, baseline))
}

// WriteFig3CSV exports the calibration sweep.
func WriteFig3CSV(w io.Writer, pts []Fig3Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"utilization", "mean_max_queue", "peak_queue", "mean_rtt_ms", "drops"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			fmt.Sprintf("%.2f", p.Utilization),
			fmt.Sprintf("%.3f", p.MeanMaxQueue),
			strconv.Itoa(p.PeakQueue),
			fmt.Sprintf("%.3f", float64(p.MeanRTT)/float64(time.Millisecond)),
			strconv.FormatUint(p.Drops, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ClassOrder returns Table I classes in presentation order; exported for
// report writers.
func ClassOrder() []workload.Class { return workload.Classes() }
