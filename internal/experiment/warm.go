package experiment

import (
	"time"

	"intsched/internal/collector"
	"intsched/internal/dataplane"
	"intsched/internal/probe"
	"intsched/internal/transport"
)

// WarmCollector attaches INT, transport stacks, a collector on the
// topology's scheduler host, and a probing fleet, then runs the simulation
// for the given duration so the collector learns the full network. It
// returns the warmed collector (used by benchmarks and tests that need a
// realistic learned topology without a whole scenario).
func WarmCollector(topo *Topology, dur time.Duration) (*collector.Collector, error) {
	dataplane.AttachINT(topo.Net, dataplane.INTConfig{})
	domain := transport.NewDomain(topo.Net).InstallAll()
	coll := collector.New(topo.Scheduler, topo.Net.Engine().Now, collector.Config{
		QueueWindow: time.Second,
	})
	coll.Bind(domain.Stack(topo.Scheduler))
	pairs, _, err := probe.PlanCoverage(topo.Net.PathBetween, topo.Hosts, topo.Scheduler)
	if err != nil {
		return nil, err
	}
	for _, h := range topo.Hosts {
		if h != topo.Scheduler {
			probe.InstallRelay(domain.Stack(h), topo.Scheduler)
		}
	}
	fleet := probe.NewPlannedFleet(topo.Net, pairs, probe.DefaultInterval)
	topo.Net.Engine().Run(topo.Net.Engine().Now() + dur)
	fleet.Stop()
	return coll, nil
}
