package experiment

import (
	"encoding/json"
	"fmt"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// TopoSpec is a declarative topology description, loadable from JSON, so
// experiments can run on networks other than the paper's Fig 4 (cmd/intsim
// -topo file.json). Hosts are single-homed to a switch; switch-switch links
// form the fabric; one host is the scheduler.
type TopoSpec struct {
	// Name labels the topology in reports.
	Name string `json:"name"`
	// Scheduler is the host running the collector and scheduler service.
	Scheduler string `json:"scheduler"`
	// Switches lists switch node IDs.
	Switches []string `json:"switches"`
	// Hosts maps host ID -> attachment switch.
	Hosts map[string]string `json:"hosts"`
	// Links are switch-switch adjacencies.
	Links [][2]string `json:"links"`
	// RateBps is the switch egress rate (paper default when zero).
	RateBps int64 `json:"rate_bps,omitempty"`
	// HostEgressBps is the host NIC rate (default 1 Gbps).
	HostEgressBps int64 `json:"host_egress_bps,omitempty"`
	// DelayUs is the per-link propagation delay in microseconds
	// (paper's 10 ms when zero).
	DelayUs int64 `json:"delay_us,omitempty"`
	// LinkDelayUs optionally overrides DelayUs per switch-switch link,
	// aligned by index with Links. Generators fill it with seeded jitter so
	// each fabric link gets a distinct (but reproducible) propagation
	// delay. Empty applies DelayUs everywhere.
	LinkDelayUs []int64 `json:"link_delay_us,omitempty"`
	// Partitions optionally maps node -> collector shard partition index,
	// consumed via PartitionFn as the sharded collector's Config.Partition.
	// Generators fill it by pod/region so shard locality matches physical
	// locality. Nodes absent from the map land in partition 0.
	Partitions map[string]int `json:"partitions,omitempty"`
	// QueueCap is the egress queue depth in packets (default 64).
	QueueCap int `json:"queue_cap,omitempty"`
}

// ParseTopoSpec decodes and validates a JSON topology.
func ParseTopoSpec(data []byte) (*TopoSpec, error) {
	var s TopoSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("experiment: topo spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural consistency.
func (s *TopoSpec) Validate() error {
	if len(s.Switches) == 0 {
		return fmt.Errorf("experiment: topo %q: no switches", s.Name)
	}
	if len(s.Hosts) < 2 {
		return fmt.Errorf("experiment: topo %q: need at least two hosts", s.Name)
	}
	swSet := make(map[string]bool, len(s.Switches))
	for _, sw := range s.Switches {
		if swSet[sw] {
			return fmt.Errorf("experiment: topo %q: duplicate switch %q", s.Name, sw)
		}
		swSet[sw] = true
	}
	for h, sw := range s.Hosts {
		if !swSet[sw] {
			return fmt.Errorf("experiment: topo %q: host %q attached to unknown switch %q", s.Name, h, sw)
		}
		if swSet[h] {
			return fmt.Errorf("experiment: topo %q: %q is both host and switch", s.Name, h)
		}
	}
	if s.Scheduler == "" {
		return fmt.Errorf("experiment: topo %q: no scheduler", s.Name)
	}
	if _, ok := s.Hosts[s.Scheduler]; !ok {
		return fmt.Errorf("experiment: topo %q: scheduler %q is not a host", s.Name, s.Scheduler)
	}
	for _, l := range s.Links {
		if !swSet[l[0]] || !swSet[l[1]] {
			return fmt.Errorf("experiment: topo %q: link %v references unknown switch", s.Name, l)
		}
		if l[0] == l[1] {
			return fmt.Errorf("experiment: topo %q: self-link %v", s.Name, l)
		}
	}
	if len(s.LinkDelayUs) != 0 && len(s.LinkDelayUs) != len(s.Links) {
		return fmt.Errorf("experiment: topo %q: %d per-link delays for %d links", s.Name, len(s.LinkDelayUs), len(s.Links))
	}
	for node, p := range s.Partitions {
		if p < 0 {
			return fmt.Errorf("experiment: topo %q: negative partition %d for %q", s.Name, p, node)
		}
	}
	return nil
}

// PartitionFn returns the collector partition function the spec defines and
// the partition count (highest index + 1). Both are zero when the spec
// defines no partitions (the collector then uses its default hash
// partitioning).
func (s *TopoSpec) PartitionFn() (func(string) int, int) {
	if len(s.Partitions) == 0 {
		return nil, 0
	}
	count := 0
	parts := make(map[string]int, len(s.Partitions))
	for node, p := range s.Partitions {
		parts[node] = p
		if p+1 > count {
			count = p + 1
		}
	}
	return func(node string) int { return parts[node] }, count
}

// params derives LinkParams from the spec's overrides.
func (s *TopoSpec) params() LinkParams {
	p := LinkParams{
		RateBps:       s.RateBps,
		HostEgressBps: s.HostEgressBps,
		QueueCap:      s.QueueCap,
	}
	if s.DelayUs > 0 {
		p.Delay = time.Duration(s.DelayUs) * time.Microsecond
	}
	return p.withDefaults()
}

// Build constructs the network described by the spec.
func (s *TopoSpec) Build(engine *simtime.Engine) (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	params := s.params()
	nw := netsim.New(engine)
	for _, sw := range s.Switches {
		nw.AddSwitch(netsim.NodeID(sw))
	}
	for i, l := range s.Links {
		cfg := params.config()
		if i < len(s.LinkDelayUs) && s.LinkDelayUs[i] > 0 {
			cfg.Delay = time.Duration(s.LinkDelayUs[i]) * time.Microsecond
		}
		if _, err := nw.Connect(netsim.NodeID(l[0]), netsim.NodeID(l[1]), cfg); err != nil {
			return nil, err
		}
	}
	// Deterministic host order.
	hosts := make([]netsim.NodeID, 0, len(s.Hosts))
	for h := range s.Hosts {
		hosts = append(hosts, netsim.NodeID(h))
	}
	sortNodeIDs(hosts)
	for _, h := range hosts {
		nw.AddHost(h)
		if _, err := nw.Connect(h, netsim.NodeID(s.Hosts[string(h)]), params.hostConfig()); err != nil {
			return nil, err
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}
	// Reachability check: every host pair at small scale. Metro-scale
	// fabrics would make this quadratic in thousands of hosts, so beyond
	// 64 hosts only scheduler<->host reachability is verified (those paths
	// span every tier of the generated fabrics).
	checkHosts := hosts
	if len(hosts) > 64 {
		checkHosts = []netsim.NodeID{netsim.NodeID(s.Scheduler)}
	}
	for _, a := range checkHosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if _, err := nw.PathBetween(a, b); err != nil {
				return nil, fmt.Errorf("experiment: topo %q: %w", s.Name, err)
			}
			if _, err := nw.PathBetween(b, a); err != nil {
				return nil, fmt.Errorf("experiment: topo %q: %w", s.Name, err)
			}
		}
	}
	return &Topology{Net: nw, Hosts: hosts, Scheduler: netsim.NodeID(s.Scheduler)}, nil
}

func sortNodeIDs(ids []netsim.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Fig4Spec returns the paper's experimental topology as a spec (the same
// network BuildFig4 constructs), usable as a template for custom specs.
func Fig4Spec() *TopoSpec {
	spec := &TopoSpec{
		Name:      "fig4",
		Scheduler: "n6",
		Hosts: map[string]string{
			"n1": "s01", "n2": "s02", "n3": "s04", "n4": "s05",
			"n5": "s07", "n6": "s08", "n7": "s10", "n8": "s11",
		},
	}
	for i := 1; i <= 12; i++ {
		spec.Switches = append(spec.Switches, fmt.Sprintf("s%02d", i))
	}
	for i := 1; i <= 12; i++ {
		a := fmt.Sprintf("s%02d", i)
		b := fmt.Sprintf("s%02d", i%12+1)
		spec.Links = append(spec.Links, [2]string{a, b})
	}
	spec.Links = append(spec.Links, [2]string{"s01", "s07"}, [2]string{"s04", "s10"})
	return spec
}

// FatTreeSpec returns a small two-tier leaf-spine topology: `leaves` leaf
// switches each hosting `hostsPerLeaf` hosts, fully connected to `spines`
// spine switches. The first host (lexicographically) is the scheduler.
// Useful for evaluating the scheduler beyond the paper's ring.
func FatTreeSpec(spines, leaves, hostsPerLeaf int) (*TopoSpec, error) {
	if spines < 1 || leaves < 2 || hostsPerLeaf < 1 {
		return nil, fmt.Errorf("experiment: fat tree needs ≥1 spine, ≥2 leaves, ≥1 host/leaf")
	}
	spec := &TopoSpec{Name: fmt.Sprintf("leafspine-%dx%dx%d", spines, leaves, hostsPerLeaf)}
	spec.Hosts = make(map[string]string)
	for s := 0; s < spines; s++ {
		spec.Switches = append(spec.Switches, fmt.Sprintf("spine%02d", s))
	}
	for l := 0; l < leaves; l++ {
		leaf := fmt.Sprintf("leaf%02d", l)
		spec.Switches = append(spec.Switches, leaf)
		for s := 0; s < spines; s++ {
			spec.Links = append(spec.Links, [2]string{leaf, fmt.Sprintf("spine%02d", s)})
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := fmt.Sprintf("h%02d%02d", l, h)
			spec.Hosts[host] = leaf
			if spec.Scheduler == "" {
				spec.Scheduler = host
			}
		}
	}
	return spec, spec.Validate()
}
