package experiment

import (
	"fmt"
	"sort"
	"time"

	"intsched/internal/adapt"
	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/edge"
	"intsched/internal/fault"
	"intsched/internal/netsim"
	"intsched/internal/pint"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
	"intsched/internal/traffic"
	"intsched/internal/transport"
	"intsched/internal/workload"
)

// BackgroundKind selects the congestion pattern injected during a scenario.
type BackgroundKind uint8

const (
	// BackgroundNone runs without congestion.
	BackgroundNone BackgroundKind = iota
	// BackgroundRandom is the main experiments' pattern: one or two iperf
	// flows between random nodes, 30 s or 60 s each.
	BackgroundRandom
	// BackgroundTraffic1 is Fig 9's infrequently changing pattern.
	BackgroundTraffic1
	// BackgroundTraffic2 is Fig 9's frequently changing pattern.
	BackgroundTraffic2
)

func (b BackgroundKind) String() string {
	switch b {
	case BackgroundNone:
		return "none"
	case BackgroundRandom:
		return "random"
	case BackgroundTraffic1:
		return "traffic1"
	case BackgroundTraffic2:
		return "traffic2"
	}
	return "unknown"
}

// Scenario fully describes one experiment run. The zero value is not
// runnable; use the field comments' defaults.
type Scenario struct {
	// Seed drives every random stream (workload, traffic, random ranking).
	Seed int64
	// Workload is serverless (1 task/job) or distributed (3 tasks/job).
	Workload workload.Kind
	// Metric is the scheduling strategy under test.
	Metric core.Metric
	// TaskCount is the number of tasks (paper: 200). Default 200.
	TaskCount int
	// Classes restricts task classes (nil = all four).
	Classes []workload.Class
	// MeanInterarrival is the mean job inter-arrival time (default 5 s).
	MeanInterarrival time.Duration
	// ProbeInterval is the INT probing period (default 100 ms).
	ProbeInterval time.Duration
	// PerPacketINT switches telemetry collection to classic per-packet
	// INT embedding (the approach the paper argues against): switches
	// append records to every data packet, destination hosts extract the
	// stacks and export them to the scheduler at ProbeInterval cadence,
	// and no probe packets run. Production packets grow on the wire and
	// only paths carrying task traffic are observed.
	PerPacketINT bool
	// SchedulerOnlyProbes restricts probing to the paper's literal setup
	// (every edge server probes the scheduler), leaving links off those
	// paths unobserved. The default (false) uses the coverage planner —
	// the paper's probe-route-optimization future work — so every link is
	// visited by some probe, which the paper assumes.
	SchedulerOnlyProbes bool
	// Background selects the congestion pattern (the zero value runs
	// without congestion; the paper's main experiments use
	// BackgroundRandom).
	Background BackgroundKind
	// Traffic tunes background flows.
	Traffic traffic.Config
	// Links sets the uniform link parameters (paper defaults when zero).
	Links LinkParams
	// Topo overrides the network topology (the paper's Fig 4 when nil).
	// When set, its link parameters take precedence over Links.
	Topo *TopoSpec
	// K is the queue→latency conversion factor (core.DefaultK when zero).
	K time.Duration
	// Slots bounds concurrent task executions per server (0 = unlimited).
	Slots int
	// ComputeAware enables server load reporting and must be set when
	// Metric is core.MetricComputeAware.
	ComputeAware bool
	// Hysteresis, when positive, wraps the network-aware rankers so the
	// scheduler only switches a device's server when the new best
	// candidate improves on the previous choice by more than this
	// relative margin — the anti-jitter extension motivated by Fig 8.
	Hysteresis float64
	// ClockSkew applies the given skew to odd-numbered switches' clocks
	// (robustness ablation; zero = perfectly synced NTP).
	ClockSkew time.Duration
	// Faults is the failure schedule injected during the run. Event start
	// times are relative to the end of the collector warmup (the epoch of
	// the first possible job submission), so a schedule composes with any
	// ProbeInterval without re-tuning.
	Faults []fault.Event
	// FaultOptions tunes the fault timeline (reroute/reconvergence delay).
	FaultOptions fault.Options
	// ExcludeUnreachable enables the scheduler's fault-recovery policy:
	// candidates whose learned path is gone are dropped from responses.
	ExcludeUnreachable bool
	// RecordDecisions captures every placement decision at the moment it is
	// made, classified against the simulator's ground-truth routing state
	// (RunResult.Decisions). Needed by the fault experiments to measure
	// mis-scheduling and recovery; off by default to keep hot runs lean.
	RecordDecisions bool
	// TelemetryMode selects deterministic (every switch inserts its record
	// into every probe, the default) or probabilistic PINT-style telemetry
	// (each switch samples independently at SampleRate and the collector
	// reassembles fragments across probes).
	TelemetryMode telemetry.Mode
	// SampleRate is the probabilistic per-hop insertion probability in
	// [0, 1]. Defaults to 1.0 when TelemetryMode is probabilistic.
	SampleRate float64
	// QueueDeltaThreshold suppresses a switch's queue report for a port
	// whose maximum changed by no more than this many packets since the
	// last report (PINT value approximation; 0 reports every flush).
	QueueDeltaThreshold int
	// Adaptive enables the adaptive probing control loop (internal/adapt):
	// a sim-time controller re-reads the collector's churn signals every
	// 5×ProbeInterval and retunes each probe stream's cadence within
	// [ProbeInterval/4, 4×ProbeInterval]. Off by default; disabled runs
	// schedule exactly the same events as the pre-adaptive simulator.
	Adaptive bool
	// ProbeBudget caps the adaptive fleet's aggregate probe rate, as a
	// fraction of the static full-cadence rate (streams / ProbeInterval).
	// Zero means uncapped; meaningful only with Adaptive.
	ProbeBudget float64
}

func (s Scenario) withDefaults() Scenario {
	if s.TaskCount <= 0 {
		s.TaskCount = 200
	}
	if s.MeanInterarrival <= 0 {
		s.MeanInterarrival = workload.DefaultInterarrival
	}
	if s.ProbeInterval <= 0 {
		s.ProbeInterval = probe.DefaultInterval
	}
	s.Links = s.Links.withDefaults()
	if s.K <= 0 {
		s.K = core.DefaultK
	}
	if s.TelemetryMode == telemetry.ModeProbabilistic && s.SampleRate <= 0 {
		s.SampleRate = 1.0
	}
	return s
}

// warmup returns how long to run probing before the first job so the
// collector has a complete network view (at least two probe rounds).
func (s Scenario) warmup() time.Duration {
	w := 2 * s.ProbeInterval
	if w < 2*time.Second {
		w = 2 * time.Second
	}
	return w
}

// Decision records one placement decision at the moment it was made.
type Decision struct {
	// At is the virtual time of the decision (the ranking response).
	At time.Duration
	// TaskID identifies the task being placed.
	TaskID uint64
	// Device submitted the task; Server is the chosen placement.
	Device, Server netsim.NodeID
	// Usable reports whether the network could actually deliver traffic
	// from Device to Server at decision time — ground truth from the
	// simulator's routing state, not the collector's learned view. A
	// decision with Usable == false is a mis-scheduling.
	Usable bool
}

// RunResult is the outcome of one scenario run.
type RunResult struct {
	Scenario Scenario
	// Results holds one entry per completed task, ordered by TaskID.
	Results []edge.TaskResult
	// Decisions holds one entry per placement decision, ordered by
	// (At, TaskID). Populated only when Scenario.RecordDecisions is set.
	Decisions []Decision
	// Incomplete counts tasks that had not finished by the horizon.
	Incomplete int
	// VirtualDuration is the virtual time consumed.
	VirtualDuration time.Duration
	// ProbesSent / ProbesReceived measure telemetry delivery.
	ProbesSent     uint64
	ProbesReceived uint64
	// PacketsDropped counts network-wide drops (congestion losses).
	PacketsDropped uint64
	// INTOverheadBytes counts telemetry bytes added to production packets
	// (zero with register staging; the per-packet ablation pays this).
	INTOverheadBytes uint64
	// EventsProcessed counts simulator events (performance diagnostics).
	EventsProcessed uint64
	// FaultStats summarizes the fault timeline (zero without faults).
	FaultStats fault.Stats
	// AdjacencyEvictions / PathRemaps count the collector's live re-mapping
	// activity (edges aged out on probe silence; streams whose hop sequence
	// changed).
	AdjacencyEvictions uint64
	PathRemaps         uint64
	// TelemetryBytes counts encoded probe payload bytes arriving at the
	// collector — the telemetry bytes-on-wire measure the PINT experiment
	// trades against scheduling quality.
	TelemetryBytes uint64
	// RecordsReassembled / ReassemblyCompletions count probabilistic
	// fragments merged and full reassembly cycles closed (zero in
	// deterministic mode).
	RecordsReassembled    uint64
	ReassemblyCompletions uint64
	// Adaptive-controller activity (all zero when Scenario.Adaptive is
	// off): directives applied to fleet probers and the controller's
	// per-rule decision counts.
	DirectivesApplied uint64
	CadenceTightens   uint64
	SilenceTightens   uint64
	CadenceBackoffs   uint64
	BudgetClamps      uint64
	// EvictionSilences records each adjacency eviction's probe silence —
	// the per-edge fault-detection latency — in eviction order. Populated
	// when RecordDecisions or Adaptive is set.
	EvictionSilences []time.Duration
}

// MaxEvictionSilence returns the largest probe silence among recorded
// adjacency evictions — the worst-case fault-detection latency of the run
// (zero when no eviction was recorded).
func (r *RunResult) MaxEvictionSilence() time.Duration {
	var max time.Duration
	for _, s := range r.EvictionSilences {
		if s > max {
			max = s
		}
	}
	return max
}

// MisScheduled counts decisions whose placement was unusable when made.
func (r *RunResult) MisScheduled() int {
	n := 0
	for i := range r.Decisions {
		if !r.Decisions[i].Usable {
			n++
		}
	}
	return n
}

// MeanCompletion returns the mean task completion time across all tasks.
func (r *RunResult) MeanCompletion() time.Duration {
	if len(r.Results) == 0 {
		return 0
	}
	var sum time.Duration
	for i := range r.Results {
		sum += r.Results[i].CompletionTime()
	}
	return sum / time.Duration(len(r.Results))
}

// MeanTransfer returns the mean data transfer time across all tasks.
func (r *RunResult) MeanTransfer() time.Duration {
	if len(r.Results) == 0 {
		return 0
	}
	var sum time.Duration
	for i := range r.Results {
		sum += r.Results[i].TransferTime()
	}
	return sum / time.Duration(len(r.Results))
}

// Run executes one scenario to completion and returns its results.
func Run(sc Scenario) (*RunResult, error) {
	sc = sc.withDefaults()
	engine := simtime.NewEngine()
	rng := simtime.NewRand(sc.Seed)

	var topo *Topology
	var err error
	if sc.Topo != nil {
		topo, err = sc.Topo.Build(engine)
	} else {
		topo, err = BuildFig4(engine, sc.Links)
	}
	if err != nil {
		return nil, err
	}
	nw := topo.Net

	// Dataplane: INT register staging on every switch (or classic
	// per-packet embedding in the ablation mode). Probabilistic telemetry
	// derives the samplers' randomness from a named sub-stream so sampling
	// draws never perturb the workload/traffic streams.
	intCfg := dataplane.INTConfig{PerPacket: sc.PerPacketINT}
	if sc.TelemetryMode == telemetry.ModeProbabilistic {
		intCfg.Sampler = pint.NewSampler(rng.Stream("pint"))
		intCfg.QueueDeltaThreshold = sc.QueueDeltaThreshold
	}
	programs := dataplane.AttachINT(nw, intCfg)
	if sc.ClockSkew != 0 {
		i := 0
		for _, id := range nw.Switches() {
			if i%2 == 1 {
				sw := nw.Node(id)
				cfg := intCfg
				cfg.ClockSkew = sc.ClockSkew
				prog := dataplane.NewINTProgram(string(id), len(sw.Ports), cfg)
				sw.Processor = dataplane.NewPipeline(prog)
				programs[id] = prog
			}
			i++
		}
	}

	// Transport stacks on every host.
	domain := transport.NewDomain(nw).InstallAll()

	// Collector + scheduler service on the scheduler host.
	linkRate := sc.Links.RateBps
	if sc.Topo != nil {
		linkRate = sc.Topo.params().RateBps
	}
	collCfg := collector.Config{
		QueueWindow:        2 * sc.ProbeInterval,
		DefaultLinkRateBps: linkRate,
	}
	if sc.PerPacketINT {
		// Classic INT only observes paths that carry traffic, so streams go
		// silent for long stretches without anything having failed; probe-
		// silence aging would evict live links.
		collCfg.AdjacencyTTL = collector.NoAdjacencyAging
	}
	coll := collector.New(topo.Scheduler, engine.Now, collCfg)
	coll.Bind(domain.Stack(topo.Scheduler))

	// Edge nodes (device + server roles) on every host. The scheduler
	// host gets its edge node first so the service can chain its control
	// handling in front of it.
	nodes := make(map[netsim.NodeID]*edge.Node, len(topo.Hosts))
	for _, h := range topo.Hosts {
		n := edge.NewNode(domain.Stack(h), topo.Scheduler)
		n.Slots = sc.Slots
		n.ReportLoad = sc.ComputeAware
		nodes[h] = n
	}

	service := core.NewService(domain.Stack(topo.Scheduler), coll, core.ServiceConfig{
		ExcludeUnreachable: sc.ExcludeUnreachable,
	})
	wrap := func(r core.Ranker) core.Ranker {
		if sc.Hysteresis > 0 {
			return core.NewHysteresisRanker(r, sc.Hysteresis)
		}
		return r
	}
	service.Register(wrap(&core.DelayRanker{K: sc.K}))
	service.Register(wrap(&core.BandwidthRanker{}))
	service.Register(&core.TransferTimeRanker{
		Delay:     &core.DelayRanker{K: sc.K},
		Bandwidth: &core.BandwidthRanker{},
	})
	nearest, err := core.NewNearestRanker(nw, topo.Hosts)
	if err != nil {
		return nil, err
	}
	service.Register(nearest)
	service.Register(core.NewRandomRanker(rng))
	service.Register(&core.ComputeAwareRanker{
		Network: &core.DelayRanker{K: sc.K},
		LoadFn:  service.Load,
	})

	// Probing fleet. By default, probe routes are planned for full link
	// coverage and non-scheduler sinks relay INT reports to the
	// collector; SchedulerOnlyProbes reproduces the paper's literal
	// server→scheduler probing instead.
	var fleet *probe.Fleet
	if sc.PerPacketINT {
		// Classic INT: no probes; destination hosts are INT sinks that
		// export embedded stacks to the scheduler, rate-limited to the
		// probing cadence per (source, sink) pair.
		for _, h := range topo.Hosts {
			stack := domain.Stack(h)
			sink := h
			lastExport := make(map[netsim.NodeID]time.Duration)
			stack.INTSink = func(pkt *netsim.Packet) {
				if now := engine.Now(); now-lastExport[pkt.Src] >= sc.ProbeInterval {
					lastExport[pkt.Src] = now
					if sink == topo.Scheduler {
						coll.HandleProbe(pkt.Probe)
					} else {
						stack.SendControl(topo.Scheduler, 64+36*len(pkt.Probe.Stack.Records), pkt.Probe)
					}
				}
			}
		}
	} else if sc.SchedulerOnlyProbes {
		fleet = probe.NewFleet(nw, topo.Hosts, topo.Scheduler, sc.ProbeInterval)
	} else {
		pairs, _, err := probe.PlanCoverage(nw.PathBetween, topo.Hosts, topo.Scheduler)
		if err != nil {
			return nil, err
		}
		for _, h := range topo.Hosts {
			if h != topo.Scheduler {
				probe.InstallRelay(domain.Stack(h), topo.Scheduler)
			}
		}
		fleet = probe.NewPlannedFleet(nw, pairs, sc.ProbeInterval)
	}
	if fleet != nil && sc.TelemetryMode == telemetry.ModeProbabilistic {
		fleet.SetTelemetry(sc.TelemetryMode, telemetry.RateToWire(sc.SampleRate))
	}

	// Adaptive probing control loop: a sim-time driver on the engine's own
	// event loop, so controller decisions replay identically per seed. The
	// budget fraction is anchored to the static full-cadence rate of this
	// fleet, making budgets comparable across topologies.
	var adriver *adapt.SimDriver
	if sc.Adaptive && fleet != nil {
		acfg := adapt.Config{BaseInterval: sc.ProbeInterval}
		if sc.ProbeBudget > 0 {
			acfg.MaxProbesPerSec = sc.ProbeBudget * float64(len(fleet.Probers())) / sc.ProbeInterval.Seconds()
		}
		adriver = adapt.NewSimDriver(engine, adapt.NewController(acfg), coll, fleet)
	}

	// Background traffic.
	var bg *traffic.Background
	switch sc.Background {
	case BackgroundRandom:
		bg = traffic.StartRandom(domain, topo.Hosts, rng, sc.Traffic)
	case BackgroundTraffic1:
		cfg := traffic.Traffic1()
		cfg.Traffic = sc.Traffic
		bg = traffic.StartPattern(domain, topo.Hosts, rng, cfg)
	case BackgroundTraffic2:
		cfg := traffic.Traffic2()
		cfg.Traffic = sc.Traffic
		bg = traffic.StartPattern(domain, topo.Hosts, rng, cfg)
	}

	// Workload.
	jobs, err := workload.Generate(workload.GenConfig{
		Kind:             sc.Workload,
		TaskCount:        sc.TaskCount,
		Devices:          topo.Hosts,
		MeanInterarrival: sc.MeanInterarrival,
		Classes:          sc.Classes,
	}, rng)
	if err != nil {
		return nil, err
	}
	totalTasks := workload.TotalTasks(jobs)

	// Result collection across all devices.
	out := &RunResult{Scenario: sc}
	done := 0
	for _, n := range nodes {
		n.OnResult = func(res edge.TaskResult) {
			out.Results = append(out.Results, res)
			done++
			if done == totalTasks {
				engine.Stop()
			}
		}
		if sc.RecordDecisions {
			n.OnDecision = func(res edge.TaskResult) {
				out.Decisions = append(out.Decisions, Decision{
					At:     res.RankedAt,
					TaskID: res.TaskID,
					Device: res.Device,
					Server: res.Server,
					Usable: nw.PathUsable(res.Device, res.Server),
				})
			}
		}
	}
	if sc.RecordDecisions || sc.Adaptive {
		// Record per-eviction probe silence (detection latency). The hook
		// only appends to the result — it cannot perturb the simulation, so
		// recording runs stay byte-identical to non-recording ones.
		coll.SetEvictionHook(func(from, to string, silence time.Duration) {
			out.EvictionSilences = append(out.EvictionSilences, silence)
		})
	}

	// Per-packet INT has no probes: seed initial visibility with small
	// staggered warmup transfers between all host pairs (classic INT can
	// only observe paths that carry traffic).
	if sc.PerPacketINT {
		i := 0
		for _, a := range topo.Hosts {
			for _, b := range topo.Hosts {
				if a == b {
					continue
				}
				src, dst := a, b
				engine.At(time.Duration(i)*30*time.Millisecond, func() {
					domain.Stack(src).Transfer(dst, 50_000, nil)
				})
				i++
			}
		}
	}

	// Schedule job submissions after the warmup.
	warm := sc.warmup()

	// Fault timeline: event times are authored relative to the end of the
	// warmup, so shift them onto the engine's absolute clock here. The RNG
	// is a named sub-stream so fault randomness (probe-loss draws) never
	// perturbs the workload/traffic streams.
	var timeline *fault.Timeline
	if len(sc.Faults) > 0 {
		shifted := make([]fault.Event, len(sc.Faults))
		for i, ev := range sc.Faults {
			ev.At += warm
			shifted[i] = ev
		}
		timeline, err = fault.NewTimeline(nw, shifted, rng.Stream("fault"), sc.FaultOptions)
		if err != nil {
			return nil, err
		}
		timeline.Start()
	}
	var lastSubmit time.Duration
	for _, job := range jobs {
		j := job
		at := warm + j.SubmitAt
		if at > lastSubmit {
			lastSubmit = at
		}
		engine.At(at, func() {
			nodes[j.Device].SubmitJob(j, sc.Metric, nil)
		})
	}

	// Horizon: generous slack beyond the last submission; tasks are at
	// most ~10 s exec + transfers, so 10 min of slack is ample even under
	// heavy congestion.
	horizon := lastSubmit + 10*time.Minute
	engine.Run(horizon)

	if bg != nil {
		bg.Stop()
	}
	if fleet != nil {
		fleet.Stop()
		out.ProbesSent = fleet.TotalSent()
	}
	if adriver != nil {
		adriver.Stop()
		st := adriver.Controller().Stats()
		out.DirectivesApplied = adriver.Applied()
		out.CadenceTightens = st.Tightens
		out.SilenceTightens = st.SilenceTightens
		out.CadenceBackoffs = st.Backoffs
		out.BudgetClamps = st.BudgetClamps
	}

	out.Incomplete = totalTasks - done
	out.VirtualDuration = engine.Now()
	if timeline != nil {
		out.FaultStats = timeline.Stats()
	}
	collStats := coll.Stats()
	out.AdjacencyEvictions = collStats.AdjacencyEvictions
	out.PathRemaps = collStats.PathRemaps
	out.ProbesReceived = collStats.ProbesReceived
	out.TelemetryBytes = collStats.TelemetryBytes
	out.RecordsReassembled = collStats.RecordsReassembled
	out.ReassemblyCompletions = collStats.ReassemblyCompletions
	out.PacketsDropped = nw.Dropped
	out.EventsProcessed = engine.Processed
	for _, prog := range programs {
		out.INTOverheadBytes += prog.OverheadBytes
	}

	sortResults(out.Results)
	sort.Slice(out.Decisions, func(i, j int) bool {
		a, b := &out.Decisions[i], &out.Decisions[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.TaskID < b.TaskID
	})
	return out, nil
}

func sortResults(rs []edge.TaskResult) {
	// TaskIDs are unique within a run, so sort.Slice's unstable order is
	// still deterministic.
	sort.Slice(rs, func(i, j int) bool { return rs[i].TaskID < rs[j].TaskID })
}

// Validate sanity-checks a scenario before running.
func (s Scenario) Validate() error {
	if s.Metric == core.MetricComputeAware && !s.ComputeAware {
		return fmt.Errorf("experiment: compute-aware metric requires ComputeAware load reporting")
	}
	return nil
}
