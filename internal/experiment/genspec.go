package experiment

import (
	"fmt"

	"intsched/internal/simtime"
)

// Parametric fabric generators for the scale experiments: a three-stage
// Clos (pods of ToR and aggregation switches under a core layer) and a
// two-level metro-edge fabric (regions of pods of ToRs, ringed gateways).
// Both are seeded: per-link propagation delays carry deterministic jitter
// drawn from simtime.NewRand, so equal seeds reproduce byte-identical specs
// and different seeds produce genuinely different fabrics. Both fill
// TopoSpec.Partitions (by pod, respectively by region) for the sharded
// collector.

// ClosConfig parameterizes ClosSpec. Zero values take the defaults noted on
// each field.
type ClosConfig struct {
	// Pods is the pod count (default 16).
	Pods int
	// Cores is the core-switch count (default 16).
	Cores int
	// AggsPerPod is the aggregation layer width per pod (default 4).
	AggsPerPod int
	// TorsPerPod is the ToR count per pod (default 8).
	TorsPerPod int
	// HostsPerTor is the edge-server count per ToR (default 2).
	HostsPerTor int
	// Seed drives the per-link delay jitter.
	Seed int64
	// BaseDelayUs is the mean per-link delay in microseconds (default 500).
	BaseDelayUs int64
	// JitterPct spreads each link's delay uniformly within ±pct% of the
	// base (default 20).
	JitterPct int
}

func (c ClosConfig) withDefaults() ClosConfig {
	if c.Pods <= 0 {
		c.Pods = 16
	}
	if c.Cores <= 0 {
		c.Cores = 16
	}
	if c.AggsPerPod <= 0 {
		c.AggsPerPod = 4
	}
	if c.TorsPerPod <= 0 {
		c.TorsPerPod = 8
	}
	if c.HostsPerTor <= 0 {
		c.HostsPerTor = 2
	}
	if c.BaseDelayUs <= 0 {
		c.BaseDelayUs = 500
	}
	if c.JitterPct <= 0 {
		c.JitterPct = 20
	}
	return c
}

// jitteredDelays draws one delay per link: base ± jitterPct%, never below
// 1 µs. The stream name isolates the draw sequence per generator.
func jitteredDelays(seed int64, stream string, n int, baseUs int64, jitterPct int) []int64 {
	rng := simtime.NewRand(seed).Stream(stream)
	out := make([]int64, n)
	spread := float64(baseUs) * float64(jitterPct) / 100
	for i := range out {
		d := int64(float64(baseUs) + rng.Uniform(-spread, spread))
		if d < 1 {
			d = 1
		}
		out[i] = d
	}
	return out
}

// ClosSpec generates a three-stage Clos fabric: every pod's aggregation
// switches connect to every core switch, every ToR to every aggregation
// switch in its pod, and HostsPerTor edge servers hang off each ToR. The
// lexicographically first host is the scheduler. Partitions: pod p -> p+1,
// the core layer -> 0.
func ClosSpec(cfg ClosConfig) (*TopoSpec, error) {
	cfg = cfg.withDefaults()
	spec := &TopoSpec{
		Name:       fmt.Sprintf("clos-p%dc%da%dt%dh%d-seed%d", cfg.Pods, cfg.Cores, cfg.AggsPerPod, cfg.TorsPerPod, cfg.HostsPerTor, cfg.Seed),
		Hosts:      make(map[string]string),
		Partitions: make(map[string]int),
	}
	for c := 0; c < cfg.Cores; c++ {
		core := fmt.Sprintf("core%02d", c)
		spec.Switches = append(spec.Switches, core)
		spec.Partitions[core] = 0
	}
	for p := 0; p < cfg.Pods; p++ {
		part := p + 1
		for a := 0; a < cfg.AggsPerPod; a++ {
			agg := fmt.Sprintf("p%02da%02d", p, a)
			spec.Switches = append(spec.Switches, agg)
			spec.Partitions[agg] = part
			for c := 0; c < cfg.Cores; c++ {
				spec.Links = append(spec.Links, [2]string{agg, fmt.Sprintf("core%02d", c)})
			}
		}
		for t := 0; t < cfg.TorsPerPod; t++ {
			tor := fmt.Sprintf("p%02dt%02d", p, t)
			spec.Switches = append(spec.Switches, tor)
			spec.Partitions[tor] = part
			for a := 0; a < cfg.AggsPerPod; a++ {
				spec.Links = append(spec.Links, [2]string{tor, fmt.Sprintf("p%02da%02d", p, a)})
			}
			for h := 0; h < cfg.HostsPerTor; h++ {
				host := fmt.Sprintf("h%02d%02d%02d", p, t, h)
				spec.Hosts[host] = tor
				spec.Partitions[host] = part
				if spec.Scheduler == "" {
					spec.Scheduler = host
				}
			}
		}
	}
	spec.LinkDelayUs = jitteredDelays(cfg.Seed, "clos-link-delay", len(spec.Links), cfg.BaseDelayUs, cfg.JitterPct)
	return spec, spec.Validate()
}

// MetroConfig parameterizes MetroSpec. Zero values take the defaults noted
// on each field.
type MetroConfig struct {
	// Regions is the metro-region count; region gateways form a ring
	// (default 4).
	Regions int
	// PodsPerRegion is the pod-switch count under each gateway (default 4).
	PodsPerRegion int
	// TorsPerPod is the ToR count under each pod switch (default 8).
	TorsPerPod int
	// ServersPerTor is the edge-server count per ToR (default 8).
	ServersPerTor int
	// Seed drives the per-link delay jitter.
	Seed int64
	// BaseDelayUs is the mean intra-region link delay in microseconds
	// (default 200); inter-region ring links get 10x.
	BaseDelayUs int64
	// JitterPct spreads each link's delay uniformly within ±pct% of its
	// base (default 20).
	JitterPct int
}

func (c MetroConfig) withDefaults() MetroConfig {
	if c.Regions <= 0 {
		c.Regions = 4
	}
	if c.PodsPerRegion <= 0 {
		c.PodsPerRegion = 4
	}
	if c.TorsPerPod <= 0 {
		c.TorsPerPod = 8
	}
	if c.ServersPerTor <= 0 {
		c.ServersPerTor = 8
	}
	if c.BaseDelayUs <= 0 {
		c.BaseDelayUs = 200
	}
	if c.JitterPct <= 0 {
		c.JitterPct = 20
	}
	return c
}

// MetroSpec generates a two-level metro-edge fabric: region gateway
// switches in a ring (inter-region links are 10x slower), pod switches
// under each gateway, ToRs under each pod, and ServersPerTor edge servers
// per ToR. A dedicated "sched" host on region 0's gateway runs the
// scheduler. Partitions are by region.
func MetroSpec(cfg MetroConfig) (*TopoSpec, error) {
	cfg = cfg.withDefaults()
	spec := &TopoSpec{
		Name:       fmt.Sprintf("metro-r%dp%dt%ds%d-seed%d", cfg.Regions, cfg.PodsPerRegion, cfg.TorsPerPod, cfg.ServersPerTor, cfg.Seed),
		Scheduler:  "sched",
		Hosts:      make(map[string]string),
		Partitions: make(map[string]int),
	}
	for r := 0; r < cfg.Regions; r++ {
		gw := fmt.Sprintf("r%02dgw", r)
		spec.Switches = append(spec.Switches, gw)
		spec.Partitions[gw] = r
		if cfg.Regions > 1 && (r+1 < cfg.Regions || cfg.Regions > 2) {
			// Ring edge to the next region (skip the closing edge when it
			// would duplicate the only edge of a two-region "ring").
			spec.Links = append(spec.Links, [2]string{gw, fmt.Sprintf("r%02dgw", (r+1)%cfg.Regions)})
		}
		for p := 0; p < cfg.PodsPerRegion; p++ {
			pod := fmt.Sprintf("r%02dp%02d", r, p)
			spec.Switches = append(spec.Switches, pod)
			spec.Partitions[pod] = r
			spec.Links = append(spec.Links, [2]string{pod, gw})
			for t := 0; t < cfg.TorsPerPod; t++ {
				tor := fmt.Sprintf("r%02dp%02dt%02d", r, p, t)
				spec.Switches = append(spec.Switches, tor)
				spec.Partitions[tor] = r
				spec.Links = append(spec.Links, [2]string{tor, pod})
				for e := 0; e < cfg.ServersPerTor; e++ {
					server := fmt.Sprintf("e%02d%02d%02d%02d", r, p, t, e)
					spec.Hosts[server] = tor
					spec.Partitions[server] = r
				}
			}
		}
	}
	spec.Hosts["sched"] = "r00gw"
	spec.Partitions["sched"] = 0
	spec.LinkDelayUs = jitteredDelays(cfg.Seed, "metro-link-delay", len(spec.Links), cfg.BaseDelayUs, cfg.JitterPct)
	// Inter-region ring links run at 10x the base delay (metro distances).
	for i, l := range spec.Links {
		if len(l[0]) == 5 && len(l[1]) == 5 { // both r%02dgw gateways
			spec.LinkDelayUs[i] *= 10
		}
	}
	return spec, spec.Validate()
}
