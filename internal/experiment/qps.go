package experiment

import (
	"fmt"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/obs"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/transport"
	"intsched/internal/wallclock"
)

// QPSConfig shapes the scheduler query-throughput experiment: a Fig 4
// deployment with the probe fleet churning telemetry at ProbeInterval while
// the scheduler answers QueriesPerProbe ranking queries per probe cadence
// tick.
type QPSConfig struct {
	// Queries is the total number of ranking queries per mode (default
	// 50_000).
	Queries int
	// QueriesPerProbe is the query:probe ratio; one simulated probe
	// cadence tick runs after this many queries (default 100).
	QueriesPerProbe int
	// ProbeInterval is the fleet's probing cadence (default 100 ms, the
	// paper's fastest setting).
	ProbeInterval time.Duration
	// Warm is the initial probing phase before measurement (default 2 s).
	Warm time.Duration
}

func (c *QPSConfig) normalize() {
	if c.Queries <= 0 {
		c.Queries = 50_000
	}
	if c.QueriesPerProbe <= 0 {
		c.QueriesPerProbe = 100
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.Warm <= 0 {
		c.Warm = 2 * time.Second
	}
}

// QueryRig is a warmed Fig 4 deployment ready to serve ranking queries
// while its probe fleet keeps running: the fixture behind the QPS
// experiment and BenchmarkSchedulerQueryThroughput.
type QueryRig struct {
	Engine  *simtime.Engine
	Coll    *collector.Collector
	Svc     *core.Service
	Devices []netsim.NodeID
	// Reg is the rig's metrics registry: the service's rank-cache counters
	// and per-metric query-latency histograms, the same series the live
	// daemon exposes over /metrics.
	Reg *obs.Registry

	probeInterval time.Duration
}

// NewQueryRig builds the deployment. cached selects the epoch-versioned
// snapshot + rank cache read path; false restores the pre-refactor
// behavior (fresh topology copy per query, no memoized rankings) for
// before/after comparison.
func NewQueryRig(cached bool, cfg QPSConfig) (*QueryRig, error) {
	cfg.normalize()
	engine := simtime.NewEngine()
	topo, err := BuildFig4(engine, LinkParams{})
	if err != nil {
		return nil, err
	}
	dataplane.AttachINT(topo.Net, dataplane.INTConfig{})
	domain := transport.NewDomain(topo.Net).InstallAll()
	coll := collector.New(topo.Scheduler, engine.Now, collector.Config{
		QueueWindow: time.Second,
	})
	coll.Bind(domain.Stack(topo.Scheduler))
	svc := core.NewService(domain.Stack(topo.Scheduler), coll, core.ServiceConfig{
		DisableRankCache: !cached,
	})
	svc.Register(&core.DelayRanker{})
	svc.Register(&core.BandwidthRanker{})
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	if !cached {
		coll.SetSnapshotCaching(false)
	}
	pairs, _, err := probe.PlanCoverage(topo.Net.PathBetween, topo.Hosts, topo.Scheduler)
	if err != nil {
		return nil, err
	}
	var devices []netsim.NodeID
	for _, h := range topo.Hosts {
		if h != topo.Scheduler {
			probe.InstallRelay(domain.Stack(h), topo.Scheduler)
			devices = append(devices, h)
		}
	}
	probe.NewPlannedFleet(topo.Net, pairs, cfg.ProbeInterval)
	engine.Run(engine.Now() + cfg.Warm)
	return &QueryRig{
		Engine:        engine,
		Coll:          coll,
		Svc:           svc,
		Devices:       devices,
		Reg:           reg,
		probeInterval: cfg.ProbeInterval,
	}, nil
}

// Tick advances the simulation by one probe cadence, delivering a fresh
// round of INT probes to the collector.
func (r *QueryRig) Tick() {
	r.Engine.Run(r.Engine.Now() + r.probeInterval)
}

// Query issues the i-th ranking query, rotating requesters and alternating
// between the delay and bandwidth metrics.
func (r *QueryRig) Query(i int) []core.Candidate {
	metric := core.MetricDelay
	if i%2 == 1 {
		metric = core.MetricBandwidth
	}
	return r.Svc.RankFor(&core.QueryRequest{
		From:   r.Devices[i%len(r.Devices)],
		Metric: metric,
		Sorted: true,
	})
}

// QPSMode reports one measured configuration of the throughput experiment.
type QPSMode struct {
	Label   string
	Elapsed time.Duration
	QPS     float64
	Cache   core.RankCacheStats
	Epoch   uint64
	// QueryLatency is the registry's per-query latency distribution,
	// merged across the delay and bandwidth metrics.
	QueryLatency obs.HistogramSnapshot
}

// HitRate is the cache hit fraction in [0, 1], and whether any lookups
// happened.
func (m QPSMode) HitRate() (float64, bool) {
	total := m.Cache.Hits + m.Cache.Misses
	if total == 0 {
		return 0, false
	}
	return float64(m.Cache.Hits) / float64(total), true
}

// QPSResult is the before/after comparison.
type QPSResult struct {
	Queries  int
	Cached   QPSMode
	Uncached QPSMode
	// Speedup is Cached.QPS / Uncached.QPS.
	Speedup float64
}

// QPS measures scheduler query throughput with and without the
// epoch-versioned snapshot + rank cache, with telemetry churning at the
// probe cadence throughout. Probe processing is included in the measured
// time — the comparison is end-to-end scheduler work, not cache lookups in
// isolation.
func QPS(cfg QPSConfig) (*QPSResult, error) {
	cfg.normalize()
	run := func(label string, cached bool) (QPSMode, error) {
		rig, err := NewQueryRig(cached, cfg)
		if err != nil {
			return QPSMode{}, err
		}
		start := wallclock.Now()
		sinceProbe := 0
		for i := 0; i < cfg.Queries; i++ {
			if sinceProbe == cfg.QueriesPerProbe {
				rig.Tick()
				sinceProbe = 0
			}
			if got := rig.Query(i); len(got) == 0 {
				return QPSMode{}, fmt.Errorf("%s: empty ranking at query %d", label, i)
			}
			sinceProbe++
		}
		elapsed := wallclock.Since(start)
		lat, _ := rig.Reg.FindHistogram("intsched_query_latency_seconds")
		return QPSMode{
			Label:        label,
			Elapsed:      elapsed,
			QPS:          float64(cfg.Queries) / elapsed.Seconds(),
			Cache:        rig.Svc.CacheStats(),
			Epoch:        rig.Coll.Epoch(),
			QueryLatency: lat,
		}, nil
	}
	uncached, err := run("uncached (pre-refactor)", false)
	if err != nil {
		return nil, err
	}
	cached, err := run("cached (epoch snapshots + rank cache)", true)
	if err != nil {
		return nil, err
	}
	res := &QPSResult{Queries: cfg.Queries, Cached: cached, Uncached: uncached}
	if uncached.QPS > 0 {
		res.Speedup = cached.QPS / uncached.QPS
	}
	return res, nil
}
