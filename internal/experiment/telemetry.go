package experiment

import (
	"fmt"
	"hash/fnv"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/pint"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/stats"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
	"intsched/internal/workload"
)

// The telemetry experiment quantifies the PINT trade: probabilistic per-hop
// insertion shrinks probes (each switch samples independently, so a probe
// carries ~p×hops records instead of all of them) while the collector
// reassembles fragments across successive probes, paying for the savings
// with telemetry freshness. Two sweeps share the mode/rate axis:
//
//   - Quality: the fault-recovery workload (same Fig 4 schedule as -exp
//     faults) replays once per telemetry configuration; the cell reports the
//     mis-schedule rate, task metrics, and an FNV-1a digest over every
//     placement decision. The p=1.0 cell must reproduce the deterministic
//     digest bit-for-bit — sampling at certainty is the identity.
//   - Overhead: a probe-only rig on the metro fabric measures encoded
//     telemetry bytes per probe at the collector, giving the bytes-on-wire
//     reduction factor each rate buys.

// TelemetryConfig shapes the telemetry experiment.
type TelemetryConfig struct {
	// Seed drives workload generation, probe-loss draws, and the per-switch
	// sampling streams.
	Seed int64
	// TaskCount is the number of tasks per quality cell (default 200).
	TaskCount int
	// ProbeInterval is the INT probing period (default 100 ms).
	ProbeInterval time.Duration
	// MeanInterarrival is the mean job inter-arrival time (default 600 ms,
	// matching the faults experiment the quality cells replay).
	MeanInterarrival time.Duration
	// Metric is the ranking strategy under test (the zero value is the
	// delay metric).
	Metric core.Metric
	// Rates are the probabilistic sampling rates to sweep (default 1.0,
	// 0.5, 0.25, 0.1). A deterministic baseline cell always runs first.
	Rates []float64
	// QueueDeltaThreshold is the value-approximation threshold applied to
	// probabilistic cells below full rate: a switch re-reports a port's
	// queue maximum only when it moved by more than this many packets
	// (default 1; negative disables). The p=1.0 cells always run with
	// approximation off — sampling at certainty is the deterministic
	// identity, and suppression would change queue reports.
	QueueDeltaThreshold int
	// Rounds is the number of measured probe rounds per overhead cell
	// (default 20).
	Rounds int
	// Smoke shrinks the experiment to CI size: fewer tasks, two rates, and
	// a two-region metro fabric.
	Smoke bool
}

func (c *TelemetryConfig) normalize() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TaskCount <= 0 {
		c.TaskCount = 200
		if c.Smoke {
			c.TaskCount = 60
		}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 600 * time.Millisecond
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1.0, 0.5, 0.25, 0.1}
		if c.Smoke {
			c.Rates = []float64{1.0, 0.25}
		}
	}
	if c.QueueDeltaThreshold == 0 {
		c.QueueDeltaThreshold = 1
	} else if c.QueueDeltaThreshold < 0 {
		c.QueueDeltaThreshold = 0
	}
	if c.Rounds <= 0 {
		c.Rounds = 20
		if c.Smoke {
			c.Rounds = 8
		}
	}
}

// metroSpec returns the overhead rig's fabric.
func (c *TelemetryConfig) metroSpec() (*TopoSpec, error) {
	if c.Smoke {
		return MetroSpec(MetroConfig{Regions: 2, PodsPerRegion: 2, TorsPerPod: 2, ServersPerTor: 2, Seed: c.Seed})
	}
	return MetroSpec(MetroConfig{Seed: c.Seed})
}

// telemetryModeLabel names one mode/rate cell.
func telemetryModeLabel(mode telemetry.Mode, rate float64) string {
	if mode == telemetry.ModeDeterministic {
		return "deterministic"
	}
	return fmt.Sprintf("p=%.2f", rate)
}

// TelemetryCell is one quality measurement: the faults workload under one
// telemetry configuration.
type TelemetryCell struct {
	// Mode labels the cell ("deterministic" or "p=<rate>").
	Mode string
	// Rate is the sampling rate (1.0 for the deterministic baseline).
	Rate float64
	// Decisions / Mis count placement decisions and mis-schedules; MisPct
	// is their ratio in percent.
	Decisions, Mis int
	MisPct         float64
	MeanCompletion time.Duration
	Incomplete     int
	// TelemetryBytes is the encoded probe payload volume the collector
	// ingested over the run.
	TelemetryBytes uint64
	// RecordsReassembled / ReassemblyCompletions count fragment merges and
	// closed reassembly cycles (zero for the deterministic baseline).
	RecordsReassembled    uint64
	ReassemblyCompletions uint64
	// Digest hashes every placement decision and the figure-level task
	// metrics (bytes excluded: identical scheduling at lower cost is the
	// point, not a violation).
	Digest string
}

// TelemetryOverheadCell is one bytes-on-wire measurement on the metro rig.
type TelemetryOverheadCell struct {
	Topo string
	Mode string
	Rate float64
	// Probes / TelemetryBytes are the collector's ingest totals.
	Probes         uint64
	TelemetryBytes uint64
	// BytesPerProbe is the mean encoded payload size.
	BytesPerProbe float64
	// Reduction is deterministic bytes-per-probe divided by this cell's
	// (1.0 for the baseline itself).
	Reduction             float64
	ReassemblyCompletions uint64
}

// TelemetryResult is the full experiment.
type TelemetryResult struct {
	Cfg TelemetryConfig
	// Quality cells: deterministic first, then one per Cfg.Rates entry.
	Quality []TelemetryCell
	// Overhead cells on the metro fabric, same order.
	Overhead []TelemetryOverheadCell
}

// telemetryDigest hashes a run's decisions and figure-level metrics.
func telemetryDigest(run *RunResult) string {
	h := fnv.New64a()
	for i := range run.Decisions {
		d := &run.Decisions[i]
		fmt.Fprintf(h, "%d %d %s %s %t\n", d.At.Nanoseconds(), d.TaskID, d.Device, d.Server, d.Usable)
	}
	fmt.Fprintf(h, "mc=%d mt=%d inc=%d\n",
		run.MeanCompletion().Nanoseconds(), run.MeanTransfer().Nanoseconds(), run.Incomplete)
	return fmt.Sprintf("%016x", h.Sum64())
}

// runTelemetryOverheadCell runs the probe-only rig under one configuration.
func runTelemetryOverheadCell(spec *TopoSpec, mode telemetry.Mode, rate float64, cfg TelemetryConfig) (TelemetryOverheadCell, error) {
	engine := simtime.NewEngine()
	topo, err := spec.Build(engine)
	if err != nil {
		return TelemetryOverheadCell{}, err
	}
	intCfg := dataplane.INTConfig{}
	if mode == telemetry.ModeProbabilistic {
		intCfg.Sampler = pint.NewSampler(simtime.NewRand(cfg.Seed).Stream("pint"))
		if rate < 1.0 {
			intCfg.QueueDeltaThreshold = cfg.QueueDeltaThreshold
		}
	}
	dataplane.AttachINT(topo.Net, intCfg)
	domain := transport.NewDomain(topo.Net).InstallAll()
	coll := collector.New(topo.Scheduler, engine.Now, collector.Config{
		QueueWindow: 2 * cfg.ProbeInterval,
	})
	coll.Bind(domain.Stack(topo.Scheduler))
	devices := make([]netsim.NodeID, 0, len(topo.Hosts))
	for _, h := range topo.Hosts {
		if h != topo.Scheduler {
			probe.InstallRelay(domain.Stack(h), topo.Scheduler)
			devices = append(devices, h)
		}
	}
	fleet := probe.NewFleet(topo.Net, devices, topo.Scheduler, cfg.ProbeInterval)
	if mode == telemetry.ModeProbabilistic {
		fleet.SetTelemetry(mode, telemetry.RateToWire(rate))
	}
	engine.Run(engine.Now() + time.Duration(cfg.Rounds)*cfg.ProbeInterval)
	fleet.Stop()

	st := coll.Stats()
	cell := TelemetryOverheadCell{
		Topo:                  spec.Name,
		Mode:                  telemetryModeLabel(mode, rate),
		Rate:                  rate,
		Probes:                st.ProbesReceived,
		TelemetryBytes:        st.TelemetryBytes,
		ReassemblyCompletions: st.ReassemblyCompletions,
	}
	if st.ProbesReceived > 0 {
		cell.BytesPerProbe = float64(st.TelemetryBytes) / float64(st.ProbesReceived)
	}
	return cell, nil
}

// Telemetry sweeps telemetry configurations over the quality and overhead
// rigs and verifies the identity contract: probabilistic sampling at p=1.0
// must reproduce the deterministic baseline's decision digest exactly.
func (p *Pool) Telemetry(cfg TelemetryConfig) (*TelemetryResult, error) {
	cfg.normalize()

	// One mode/rate axis shared by both sweeps: deterministic, then each
	// probabilistic rate.
	type axis struct {
		mode telemetry.Mode
		rate float64
	}
	cells := []axis{{telemetry.ModeDeterministic, 1.0}}
	for _, r := range cfg.Rates {
		cells = append(cells, axis{telemetry.ModeProbabilistic, r})
	}

	// Quality cells replay the faults workload, so degraded telemetry has
	// failures to mis-schedule around.
	events := FaultsConfig{
		TaskCount:        cfg.TaskCount,
		MeanInterarrival: cfg.MeanInterarrival,
	}.normalize().Schedule()
	scenarios := make([]Scenario, len(cells))
	for i, ax := range cells {
		scenarios[i] = Scenario{
			Seed:               cfg.Seed,
			Workload:           workload.Serverless,
			Metric:             cfg.Metric,
			TaskCount:          cfg.TaskCount,
			MeanInterarrival:   cfg.MeanInterarrival,
			ProbeInterval:      cfg.ProbeInterval,
			Faults:             events,
			ExcludeUnreachable: true,
			RecordDecisions:    true,
			TelemetryMode:      ax.mode,
			SampleRate:         ax.rate,
		}
		if ax.mode == telemetry.ModeProbabilistic && ax.rate < 1.0 {
			scenarios[i].QueueDeltaThreshold = cfg.QueueDeltaThreshold
		}
		if err := scenarios[i].Validate(); err != nil {
			return nil, err
		}
	}
	runs, err := p.RunScenarios(scenarios)
	if err != nil {
		return nil, err
	}
	quality := make([]TelemetryCell, len(runs))
	for i, run := range runs {
		cell := TelemetryCell{
			Mode:                  telemetryModeLabel(cells[i].mode, cells[i].rate),
			Rate:                  cells[i].rate,
			Decisions:             len(run.Decisions),
			Mis:                   run.MisScheduled(),
			MeanCompletion:        run.MeanCompletion(),
			Incomplete:            run.Incomplete,
			TelemetryBytes:        run.TelemetryBytes,
			RecordsReassembled:    run.RecordsReassembled,
			ReassemblyCompletions: run.ReassemblyCompletions,
			Digest:                telemetryDigest(run),
		}
		if cell.Decisions > 0 {
			cell.MisPct = 100 * float64(cell.Mis) / float64(cell.Decisions)
		}
		quality[i] = cell
	}

	// Identity contract: p=1.0 samples every hop of every probe with value
	// approximation off, so its run must be indistinguishable from the
	// deterministic baseline.
	for _, cell := range quality {
		if cell.Mode == "p=1.00" && cell.Digest != quality[0].Digest {
			return nil, fmt.Errorf("telemetry: p=1.0 digest %s != deterministic %s (sampling at certainty changed scheduling)",
				cell.Digest, quality[0].Digest)
		}
	}

	// Overhead cells on the metro fabric.
	spec, err := cfg.metroSpec()
	if err != nil {
		return nil, err
	}
	overhead := make([]TelemetryOverheadCell, len(cells))
	err = p.run(len(cells), func(i int) error {
		cell, err := runTelemetryOverheadCell(spec, cells[i].mode, cells[i].rate, cfg)
		if err != nil {
			return fmt.Errorf("telemetry %s: %w", telemetryModeLabel(cells[i].mode, cells[i].rate), err)
		}
		overhead[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range overhead {
		if overhead[i].BytesPerProbe > 0 {
			overhead[i].Reduction = overhead[0].BytesPerProbe / overhead[i].BytesPerProbe
		}
	}
	return &TelemetryResult{Cfg: cfg, Quality: quality, Overhead: overhead}, nil
}

// Telemetry runs the sweep serially; see (*Pool).Telemetry.
func Telemetry(cfg TelemetryConfig) (*TelemetryResult, error) {
	return (*Pool)(nil).Telemetry(cfg)
}

// QualityTable renders the scheduling-quality sweep. DeltaMis columns are
// percentage-point differences from the deterministic baseline.
func (r *TelemetryResult) QualityTable() string {
	tb := stats.NewTable("telemetry", "decisions", "mis", "mis %", "Δ vs det (pp)",
		"mean completion", "incomplete", "probe bytes", "reassembled", "cycles", "digest")
	base := r.Quality[0].MisPct
	for _, c := range r.Quality {
		tb.AddRow(c.Mode, c.Decisions, c.Mis, fmt.Sprintf("%.2f", c.MisPct),
			fmt.Sprintf("%+.2f", c.MisPct-base),
			c.MeanCompletion.Round(time.Millisecond), c.Incomplete,
			c.TelemetryBytes, c.RecordsReassembled, c.ReassemblyCompletions, c.Digest)
	}
	return tb.String()
}

// OverheadTable renders the bytes-on-wire sweep.
func (r *TelemetryResult) OverheadTable() string {
	tb := stats.NewTable("telemetry", "topology", "probes", "probe bytes", "bytes/probe", "reduction", "cycles")
	for _, c := range r.Overhead {
		tb.AddRow(c.Mode, c.Topo, c.Probes, c.TelemetryBytes,
			fmt.Sprintf("%.1f", c.BytesPerProbe), fmt.Sprintf("%.2fx", c.Reduction),
			c.ReassemblyCompletions)
	}
	return tb.String()
}
