package experiment

import (
	"math"

	"intsched/internal/core"
)

// CompareSeeds replays the comparison across several seeds, giving the
// statistical backing single-seed runs lack (the paper reports single-run
// averages over 200 tasks; multiple seeds expose run-to-run variance).
// It executes serially; use Pool.CompareSeeds to spread the seeds × metrics
// grid across workers with identical output.
func CompareSeeds(sc Scenario, metrics []core.Metric, seeds []int64) ([]*Comparison, error) {
	return (*Pool)(nil).CompareSeeds(sc, metrics, seeds)
}

// GainStats aggregates the overall gain of metric vs. baseline across
// seed-replicated comparisons, returning the mean and population standard
// deviation.
func GainStats(cmps []*Comparison, metric, baseline core.Metric, transfer bool) (mean, std float64) {
	if len(cmps) == 0 {
		return 0, 0
	}
	var sum float64
	gains := make([]float64, 0, len(cmps))
	for _, c := range cmps {
		g := c.OverallGain(metric, baseline, transfer)
		gains = append(gains, g)
		sum += g
	}
	mean = sum / float64(len(gains))
	var ss float64
	for _, g := range gains {
		d := g - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(gains)))
	return mean, std
}
