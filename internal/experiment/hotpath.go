package experiment

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/netsim"
	"intsched/internal/wallclock"
)

// The hotpath experiment micro-benchmarks the scheduler's index-space read
// path against the string APIs it replaced, on one warmed Fig 4 deployment
// and one frozen snapshot: path walks (Path vs PathInto with reused
// scratch), per-hop metric reads (string accessors vs CSR arena slots),
// single warm ranking queries (string recompute vs cache-hit entry views),
// and warm batches. Every cell digests both variants' outputs and fails if
// they diverge — the speedup is only admissible because the answers are
// byte-identical. Timings are wall-clock (a statement about this machine);
// allocation counts come from the runtime's Mallocs counter and are exact.
//
// All PathInto walks live in closure-free top-level helpers: the walked
// path aliases reusable scratch (the scratchalias contract), so it is
// consumed in place or copied via copyPath, never captured or returned.

// HotpathConfig shapes the micro-benchmark.
type HotpathConfig struct {
	// Sweeps is the number of measured passes per cell; each pass covers
	// every (device, host) pair or every request once (default 300).
	Sweeps int
	// BatchSize is the rankbatch cell's requests per batch (default 256).
	BatchSize int
}

func (c *HotpathConfig) normalize() {
	if c.Sweeps <= 0 {
		c.Sweeps = 300
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
}

// HotpathCell is one measured micro-benchmark: the old (string) and new
// (index) variant of the same read, per single operation.
type HotpathCell struct {
	Name        string
	Ops         int // operations per sweep (pairs, hops, or requests)
	OldNsOp     float64
	NewNsOp     float64
	OldAllocsOp float64
	NewAllocsOp float64
	// Digest is the shared FNV-1a digest of the cell's outputs; the cell
	// fails before reporting if the two variants' digests differ.
	Digest string
}

// Speedup is OldNsOp / NewNsOp.
func (c HotpathCell) Speedup() float64 {
	if c.NewNsOp <= 0 {
		return 0
	}
	return c.OldNsOp / c.NewNsOp
}

// HotpathResult is the full run.
type HotpathResult struct {
	Cells []HotpathCell
}

// hotPair is one (device, host) walk endpoint pair in both coordinate
// systems.
type hotPair struct {
	src, dst   string
	isrc, idst int32
}

// hotMeter accumulates one variant's measurement: wall-clock time and the
// runtime's exact Mallocs delta around the measured region.
type hotMeter struct {
	m0    runtime.MemStats
	start time.Time
}

func startMeter() *hotMeter {
	m := &hotMeter{}
	runtime.ReadMemStats(&m.m0)
	m.start = wallclock.Now()
	return m
}

// perOp finalizes the measurement over the given operation count.
func (m *hotMeter) perOp(ops int) (nsOp, allocsOp float64) {
	elapsed := wallclock.Since(m.start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(ops), float64(m1.Mallocs-m.m0.Mallocs) / float64(ops)
}

// hotDigestW hashes one variant's output stream.
type hotDigestW struct{ h hash.Hash64 }

func newHotDigest() *hotDigestW { return &hotDigestW{h: fnv.New64a()} }

func (d *hotDigestW) str(s string) {
	d.h.Write([]byte(s))
	d.h.Write([]byte{0})
}

func (d *hotDigestW) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.h.Write(b[:])
}

func (d *hotDigestW) dur(v time.Duration) { d.u64(uint64(v)) }
func (d *hotDigestW) f64(v float64)       { d.u64(math.Float64bits(v)) }

func (d *hotDigestW) sum() string { return fmt.Sprintf("%016x", d.h.Sum64()) }

// cands hashes a ranked list.
func (d *hotDigestW) cands(cs []core.Candidate) {
	for _, c := range cs {
		d.str(string(c.Node))
		d.dur(c.Delay)
		d.f64(c.BandwidthBps)
		d.u64(uint64(c.Hops))
		if c.Reachable {
			d.u64(1)
		} else {
			d.u64(0)
		}
	}
}

// copyPath returns a private copy of a walked index path (the returned path
// aliases reusable scratch and must not be retained).
func copyPath(p []int32) []int32 {
	out := make([]int32, len(p))
	copy(out, p)
	return out
}

// digestPathwalk hashes every pair's walked path under both APIs and
// returns the two digests (equal iff the index walk reproduces the string
// walk exactly, unreachability included).
func digestPathwalk(snap *collector.Topology, pairs []hotPair) (old, new string) {
	dOld, dNew := newHotDigest(), newHotDigest()
	var scratch []int32
	for _, p := range pairs {
		if sp, err := snap.Path(p.src, p.dst); err == nil {
			for _, n := range sp {
				dOld.str(n)
			}
		} else {
			dOld.str("unreachable")
		}
		ip, code, _ := snap.PathInto(p.isrc, p.idst, scratch)
		scratch = ip
		if code == collector.PathOK {
			for _, n := range ip {
				dNew.str(snap.NodeName(n))
			}
		} else {
			dNew.str("unreachable")
		}
	}
	return dOld.sum(), dNew.sum()
}

// measurePathwalkString times Path over every pair, Sweeps times.
func measurePathwalkString(snap *collector.Topology, pairs []hotPair, sweeps int) (nsOp, allocsOp float64) {
	m := startMeter()
	for i := 0; i < sweeps; i++ {
		for _, p := range pairs {
			_, _ = snap.Path(p.src, p.dst)
		}
	}
	return m.perOp(sweeps * len(pairs))
}

// measurePathwalkIndex times PathInto with reused scratch over every pair.
func measurePathwalkIndex(snap *collector.Topology, pairs []hotPair, sweeps int) (nsOp, allocsOp float64) {
	m := startMeter()
	var scratch []int32
	for i := 0; i < sweeps; i++ {
		for _, p := range pairs {
			ip, _, _ := snap.PathInto(p.isrc, p.idst, scratch)
			scratch = ip
		}
	}
	return m.perOp(sweeps * len(pairs))
}

// buildIndexPaths walks every reachable pair once and returns private
// copies of the index paths alongside the matching string paths.
func buildIndexPaths(snap *collector.Topology, pairs []hotPair) ([][]string, [][]int32) {
	var sPaths [][]string
	var iPaths [][]int32
	var scratch []int32
	for _, p := range pairs {
		sp, err := snap.Path(p.src, p.dst)
		if err != nil {
			continue
		}
		ip, code, _ := snap.PathInto(p.isrc, p.idst, scratch)
		scratch = ip
		if code != collector.PathOK {
			continue
		}
		sPaths = append(sPaths, sp)
		iPaths = append(iPaths, copyPath(ip))
	}
	return sPaths, iPaths
}

// readHopsString accumulates every per-hop metric over prewalked string
// paths through the string accessors.
func readHopsString(snap *collector.Topology, sPaths [][]string) (delay time.Duration, acc int64) {
	for _, sp := range sPaths {
		for i := 0; i+1 < len(sp); i++ {
			a, b := sp[i], sp[i+1]
			if ld, ok := snap.LinkDelay(a, b); ok {
				delay += ld
			}
			delay += snap.LinkJitter(a, b)
			acc += snap.LinkRate(a, b)
			if q, ok := snap.QueueMax(a, b); ok {
				acc += int64(q)
			}
		}
	}
	return delay, acc
}

// readHopsIndex accumulates the same per-hop metrics through the CSR arena
// slots.
func readHopsIndex(snap *collector.Topology, iPaths [][]int32) (delay time.Duration, acc int64) {
	for _, ip := range iPaths {
		for i := 0; i+1 < len(ip); i++ {
			slot := snap.DirSlot(ip[i], ip[i+1])
			if ld, ok := snap.SlotDelay(slot); ok {
				delay += ld
			}
			delay += snap.SlotJitter(slot)
			acc += snap.SlotRate(slot)
			if q, ok := snap.SlotQueueMax(slot); ok {
				acc += int64(q)
			}
		}
	}
	return delay, acc
}

// measureHot times fn (which performs opsPerSweep operations) over sweeps
// passes. Only used by cells whose work does not touch reusable scratch.
func measureHot(sweeps, opsPerSweep int, fn func()) (nsOp, allocsOp float64) {
	m := startMeter()
	for i := 0; i < sweeps; i++ {
		fn()
	}
	return m.perOp(sweeps * opsPerSweep)
}

// Hotpath runs the micro-benchmark. Cells are measured sequentially on one
// snapshot; the rig's probe fleet is stopped (the engine is not advanced),
// so the epoch is frozen and warm cache entries stay valid throughout.
func Hotpath(cfg HotpathConfig) (*HotpathResult, error) {
	cfg.normalize()
	rig, err := NewQueryRig(true, QPSConfig{})
	if err != nil {
		return nil, err
	}
	snap := rig.Coll.Snapshot()
	hosts := snap.Hosts()
	if len(rig.Devices) == 0 || len(hosts) == 0 {
		return nil, fmt.Errorf("hotpath: rig learned no devices/hosts")
	}

	// The pair set every path cell walks: each device toward each host.
	var pairs []hotPair
	for _, d := range rig.Devices {
		isrc, ok := snap.NodeIndex(string(d))
		if !ok {
			continue
		}
		for _, h := range hosts {
			if h == string(d) {
				continue
			}
			idst, ok := snap.NodeIndex(h)
			if !ok {
				continue
			}
			pairs = append(pairs, hotPair{src: string(d), dst: h, isrc: isrc, idst: idst})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("hotpath: no indexable (device, host) pairs")
	}

	res := &HotpathResult{}
	addCell := func(name string, ops int, digestOld, digestNew string,
		oldNs, oldAllocs, newNs, newAllocs float64) error {
		if digestOld != digestNew {
			return fmt.Errorf("hotpath %s: index digest %s != string digest %s (answers diverged)", name, digestNew, digestOld)
		}
		if newAllocs > oldAllocs {
			return fmt.Errorf("hotpath %s: index path allocates more than the string path (%.2f > %.2f allocs/op)", name, newAllocs, oldAllocs)
		}
		res.Cells = append(res.Cells, HotpathCell{
			Name: name, Ops: ops,
			OldNsOp: oldNs, NewNsOp: newNs,
			OldAllocsOp: oldAllocs, NewAllocsOp: newAllocs,
			Digest: digestOld,
		})
		return nil
	}

	// Cell 1: path walk. Old = Path (allocates the []string result), new =
	// PathInto into reused scratch (allocation-free once grown).
	{
		dOld, dNew := digestPathwalk(snap, pairs)
		oldNs, oldAllocs := measurePathwalkString(snap, pairs, cfg.Sweeps)
		newNs, newAllocs := measurePathwalkIndex(snap, pairs, cfg.Sweeps)
		if err := addCell("pathwalk", len(pairs), dOld, dNew, oldNs, oldAllocs, newNs, newAllocs); err != nil {
			return nil, err
		}
	}

	// Cell 2: per-hop metric read over prewalked paths. Old = string
	// accessors keyed by node names, new = CSR arena slot loads. Both
	// accumulate the same per-hop values; the digest proves the slots carry
	// exactly what the string maps do.
	{
		sPaths, iPaths := buildIndexPaths(snap, pairs)
		hops := 0
		for _, sp := range sPaths {
			hops += len(sp) - 1
		}
		if hops == 0 {
			return nil, fmt.Errorf("hotpath: no reachable pairs for the hopmetric cell")
		}
		dOld, dNew := newHotDigest(), newHotDigest()
		sd, sa := readHopsString(snap, sPaths)
		dOld.dur(sd)
		dOld.u64(uint64(sa))
		id, ia := readHopsIndex(snap, iPaths)
		dNew.dur(id)
		dNew.u64(uint64(ia))
		oldNs, oldAllocs := measureHot(cfg.Sweeps, hops, func() { readHopsString(snap, sPaths) })
		newNs, newAllocs := measureHot(cfg.Sweeps, hops, func() { readHopsIndex(snap, iPaths) })
		if err := addCell("hopmetric", hops, dOld.sum(), dNew.sum(), oldNs, oldAllocs, newNs, newAllocs); err != nil {
			return nil, err
		}
	}

	// Request mix shared by the ranking cells: every device, alternating
	// delay and bandwidth.
	mkReqs := func(n int) []*core.QueryRequest {
		reqs := make([]*core.QueryRequest, n)
		for i := range reqs {
			metric := core.MetricDelay
			if i%2 == 1 {
				metric = core.MetricBandwidth
			}
			reqs[i] = &core.QueryRequest{From: rig.Devices[i%len(rig.Devices)], Metric: metric, Sorted: true}
		}
		return reqs
	}
	// stringRank is the pre-index read path per query: build the candidate
	// set and run the ranker through the public string API.
	delay := &core.DelayRanker{}
	bw := &core.BandwidthRanker{}
	stringRank := func(req *core.QueryRequest) []core.Candidate {
		cands := make([]netsim.NodeID, 0, len(hosts))
		for _, h := range hosts {
			if h != string(req.From) {
				cands = append(cands, netsim.NodeID(h))
			}
		}
		var r core.Ranker = delay
		if req.Metric == core.MetricBandwidth {
			r = bw
		}
		return r.Rank(snap, req.From, cands)
	}

	// Cell 3: a warm single query. Old = string recompute per query, new =
	// rank-cache hit served as zero-copy entry views.
	{
		reqs := mkReqs(len(rig.Devices) * 2)
		dOld, dNew := newHotDigest(), newHotDigest()
		for _, req := range reqs {
			dOld.cands(stringRank(req))
			dNew.cands(rig.Svc.RankOn(snap, req)) // also warms the cache
		}
		oldNs, oldAllocs := measureHot(cfg.Sweeps, len(reqs), func() {
			for _, req := range reqs {
				stringRank(req)
			}
		})
		newNs, newAllocs := measureHot(cfg.Sweeps, len(reqs), func() {
			for _, req := range reqs {
				rig.Svc.RankOn(snap, req)
			}
		})
		if err := addCell("rankfor", len(reqs), dOld.sum(), dNew.sum(), oldNs, oldAllocs, newNs, newAllocs); err != nil {
			return nil, err
		}
	}

	// Cell 4: a warm batch. Old = one string recompute per request, new =
	// RankBatchOn against the shared entries.
	{
		reqs := mkReqs(cfg.BatchSize)
		dOld, dNew := newHotDigest(), newHotDigest()
		for _, req := range reqs {
			dOld.cands(stringRank(req))
		}
		for _, ranked := range rig.Svc.RankBatchOn(snap, reqs) {
			dNew.cands(ranked)
		}
		oldNs, oldAllocs := measureHot(cfg.Sweeps, len(reqs), func() {
			for _, req := range reqs {
				stringRank(req)
			}
		})
		newNs, newAllocs := measureHot(cfg.Sweeps, len(reqs), func() {
			rig.Svc.RankBatchOn(snap, reqs)
		})
		if err := addCell("rankbatch", len(reqs), dOld.sum(), dNew.sum(), oldNs, oldAllocs, newNs, newAllocs); err != nil {
			return nil, err
		}
	}

	// The point of the refactor: strictly fewer heap allocations overall.
	var oldTotal, newTotal float64
	for _, c := range res.Cells {
		oldTotal += c.OldAllocsOp
		newTotal += c.NewAllocsOp
	}
	if newTotal >= oldTotal {
		return nil, fmt.Errorf("hotpath: index path total %.2f allocs/op, string path %.2f — not reduced", newTotal, oldTotal)
	}
	return res, nil
}
