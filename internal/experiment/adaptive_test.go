package experiment

import (
	"reflect"
	"testing"
	"time"

	"intsched/internal/core"
	"intsched/internal/workload"
)

func adaptiveTestConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Seed:      3,
		TaskCount: 60,
		Budgets:   []float64{0.5},
		Smoke:     true,
	}
}

// TestAdaptiveSmoke: the sweep runs end to end with its claims (bytes below
// static-full, mis and detection no worse than the equal-budget static cell,
// controller engaged) enforced inside Adaptive; the test checks the cell
// shape on top.
func TestAdaptiveSmoke(t *testing.T) {
	res, err := Adaptive(adaptiveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want static-full + static/adaptive pair", len(res.Cells))
	}
	full, st, ad := res.Cells[0], res.Cells[1], res.Cells[2]
	if full.Adaptive || st.Adaptive || !ad.Adaptive {
		t.Fatalf("cell roles wrong: %+v", res.Cells)
	}
	if full.Directives != 0 || st.Directives != 0 {
		t.Fatalf("static cells recorded controller activity: full=%d static=%d",
			full.Directives, st.Directives)
	}
	if ad.Directives == 0 || ad.Backoffs+ad.BudgetClamps == 0 {
		t.Fatalf("adaptive cell never slowed a stream: %+v", ad)
	}
	if ad.Decisions != full.Decisions {
		t.Fatalf("adaptive made %d decisions, static-full %d (same workload)", ad.Decisions, full.Decisions)
	}
	if ad.ProbesSent >= full.ProbesSent {
		t.Fatalf("adaptive sent %d probes, static-full %d", ad.ProbesSent, full.ProbesSent)
	}
	if full.Evictions == 0 || ad.Evictions == 0 {
		t.Fatal("fault schedule drove no evictions; the detection claim tested nothing")
	}
	if full.Digest == ad.Digest || st.Digest == ad.Digest {
		t.Fatalf("adaptive digest matched a static cell: %+v", res.Cells)
	}
}

// TestAdaptiveParallelMatchesSerial: pooled and serial sweeps must be
// byte-identical — the CI digest diff at -parallel 1 vs 4 relies on it.
func TestAdaptiveParallelMatchesSerial(t *testing.T) {
	cfg := adaptiveTestConfig()
	serial, err := Adaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPool(4).Adaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatalf("cells depend on -parallel:\nserial   %+v\nparallel %+v", serial.Cells, parallel.Cells)
	}
}

// TestBackedOffStreamStillDetectsFailure: the safety property behind the
// whole control loop. Streams the controller has slowed to the maximum
// cadence sit on an edge that then fails; adjacency aging plus the eviction
// hook must still evict it, and back-off may cost at most one max-cadence
// probe gap over the static detection bound — the controller tightens on
// silence rather than masking it.
func TestBackedOffStreamStillDetectsFailure(t *testing.T) {
	const interval = 100 * time.Millisecond
	base := Scenario{
		Seed:               3,
		Workload:           workload.Serverless,
		Metric:             core.MetricDelay,
		TaskCount:          60,
		MeanInterarrival:   600 * time.Millisecond,
		ProbeInterval:      interval,
		ExcludeUnreachable: true,
		RecordDecisions:    true,
		Faults: FaultsConfig{
			TaskCount:        60,
			MeanInterarrival: 600 * time.Millisecond,
		}.normalize().Schedule(),
	}
	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.Adaptive = true // no budget: back-off comes from stability alone
	ad, err := Run(adaptive)
	if err != nil {
		t.Fatal(err)
	}

	// The controller must actually have backed streams off before the first
	// fault (warmup 2 s + two 500 ms evaluations beat the 15%-of-span
	// LinkDown), and must have tightened on the silence the fault created.
	if ad.CadenceBackoffs == 0 {
		t.Fatalf("no back-offs recorded; the test never slowed a stream: %+v", ad.FaultStats)
	}
	if ad.SilenceTightens == 0 {
		t.Fatal("the fault silenced streams but the controller never tightened on it")
	}
	if len(static.EvictionSilences) == 0 || len(ad.EvictionSilences) == 0 {
		t.Fatalf("fault drove no evictions (static %d, adaptive %d); nothing detected",
			len(static.EvictionSilences), len(ad.EvictionSilences))
	}

	// Documented budget: a backed-off stream widens the probe silence at
	// eviction by at most one MaxInterval (= 4× base) beyond the static
	// bound, and stays within the faults experiment's detection budget plus
	// that same one-gap allowance.
	maxInterval := 4 * interval
	if got, bound := ad.MaxEvictionSilence(), static.MaxEvictionSilence()+maxInterval; got > bound {
		t.Fatalf("adaptive worst-case eviction silence %v exceeds static %v + one max-cadence gap %v",
			got, static.MaxEvictionSilence(), maxInterval)
	}
	if got, bound := ad.MaxEvictionSilence(), DetectBudgetIntervals*interval+maxInterval; got > bound {
		t.Fatalf("adaptive worst-case eviction silence %v exceeds the detection budget %v", got, bound)
	}
}

// TestAdaptiveDisabledIsInert: with the controller off, the scenario must
// not even construct it — the run replays exactly the pre-adaptive event
// sequence (the existing smoke digests in CI enforce the byte-level
// identity; this guards the flag plumbing).
func TestAdaptiveDisabledIsInert(t *testing.T) {
	sc := Scenario{
		Seed:            5,
		Workload:        workload.Serverless,
		Metric:          core.MetricDelay,
		TaskCount:       15,
		RecordDecisions: true,
	}
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.DirectivesApplied != 0 || plain.CadenceTightens != 0 || plain.CadenceBackoffs != 0 {
		t.Fatalf("disabled run recorded controller activity: %+v", plain)
	}
	again, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if telemetryDigest(plain) != telemetryDigest(again) {
		t.Fatal("disabled runs not reproducible")
	}
}

func TestAdaptiveRejectsBadBudget(t *testing.T) {
	cfg := adaptiveTestConfig()
	cfg.Budgets = []float64{1.5}
	if _, err := Adaptive(cfg); err == nil {
		t.Fatal("budget fraction above 1 accepted")
	}
	cfg.Budgets = []float64{0}
	if _, err := Adaptive(cfg); err == nil {
		t.Fatal("zero budget fraction accepted")
	}
}
