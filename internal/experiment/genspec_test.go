package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"intsched/internal/simtime"
)

// marshalSpec renders a spec to canonical JSON (encoding/json sorts map
// keys, so equal specs produce byte-identical output).
func marshalSpec(t *testing.T, s *TopoSpec) []byte {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClosSpecDeterministic: equal seeds must reproduce byte-identical
// topology JSON; different seeds must differ (the jitter is real).
func TestClosSpecDeterministic(t *testing.T) {
	cfg := ClosConfig{Pods: 4, Cores: 4, AggsPerPod: 2, TorsPerPod: 2, HostsPerTor: 2, Seed: 11}
	a, err := ClosSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClosSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalSpec(t, a), marshalSpec(t, b)) {
		t.Fatal("same seed produced different Clos specs")
	}
	cfg.Seed = 12
	c, err := ClosSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshalSpec(t, a), marshalSpec(t, c)) {
		t.Fatal("different seeds produced identical Clos specs")
	}
}

// TestMetroSpecDeterministic mirrors TestClosSpecDeterministic for the
// metro generator.
func TestMetroSpecDeterministic(t *testing.T) {
	cfg := MetroConfig{Regions: 3, PodsPerRegion: 2, TorsPerPod: 2, ServersPerTor: 2, Seed: 5}
	a, err := MetroSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MetroSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalSpec(t, a), marshalSpec(t, b)) {
		t.Fatal("same seed produced different metro specs")
	}
	cfg.Seed = 6
	c, err := MetroSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshalSpec(t, a), marshalSpec(t, c)) {
		t.Fatal("different seeds produced identical metro specs")
	}
}

// TestClosSpecDefaultScale: the default Clos config meets the scale
// experiment's floor (>=200 switches) and builds a routable network.
func TestClosSpecDefaultScale(t *testing.T) {
	spec, err := ClosSpec(ClosConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Switches) < 200 {
		t.Fatalf("default Clos has %d switches, want >= 200", len(spec.Switches))
	}
	if len(spec.Hosts) < 200 {
		t.Fatalf("default Clos has %d hosts, want >= 200", len(spec.Hosts))
	}
	// Partition sanity: pods beyond partition 0, scheduler covered.
	fn, count := spec.PartitionFn()
	if fn == nil || count < 2 {
		t.Fatalf("partition count %d", count)
	}
	if fn("core00") != 0 {
		t.Fatal("core layer must be partition 0")
	}
	if got := fn("p03t01"); got != 4 {
		t.Fatalf("pod 3 ToR in partition %d, want 4", got)
	}
}

// TestMetroSpecDefaultScaleBuilds: the default metro config meets the
// >=1000-edge-node floor and builds end to end (gated reachability check).
func TestMetroSpecDefaultScaleBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("metro build is heavyweight")
	}
	spec, err := MetroSpec(MetroConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Hosts) < 1000 {
		t.Fatalf("default metro has %d hosts, want >= 1000", len(spec.Hosts))
	}
	topo, err := spec.Build(simtime.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	if topo.Scheduler != "sched" {
		t.Fatalf("scheduler %q", topo.Scheduler)
	}
	if len(topo.Hosts) != len(spec.Hosts) {
		t.Fatalf("built %d hosts, spec has %d", len(topo.Hosts), len(spec.Hosts))
	}
}

// TestSmallClosBuildsAndRoutes: a small Clos builds with per-link delay
// overrides applied and full pairwise reachability.
func TestSmallClosBuildsAndRoutes(t *testing.T) {
	spec, err := ClosSpec(ClosConfig{Pods: 2, Cores: 2, AggsPerPod: 2, TorsPerPod: 2, HostsPerTor: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.LinkDelayUs) != len(spec.Links) {
		t.Fatalf("%d delays for %d links", len(spec.LinkDelayUs), len(spec.Links))
	}
	if _, err := spec.Build(simtime.NewEngine()); err != nil {
		t.Fatal(err)
	}
}
