package experiment

import (
	"testing"
	"time"

	"intsched/internal/core"
)

func TestFig3ConfigDefaults(t *testing.T) {
	cfg := Fig3Config{}.withDefaults()
	if len(cfg.Utilizations) != 11 {
		t.Fatalf("default sweep %v", cfg.Utilizations)
	}
	if cfg.Utilizations[0] != 0 || cfg.Utilizations[10] != 1.0 {
		t.Fatalf("sweep endpoints %v", cfg.Utilizations)
	}
	if cfg.Duration <= 0 || cfg.ProbeInterval <= 0 {
		t.Fatal("defaults missing")
	}
}

func TestCalibrationFromFig3(t *testing.T) {
	pts := []Fig3Point{
		{Utilization: 0, MeanMaxQueue: 0},
		{Utilization: 0.5, MeanMaxQueue: 3.4},
		{Utilization: 1.0, MeanMaxQueue: 41},
	}
	cal, err := CalibrationFromFig3(pts)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Utilization(0) != 0 {
		t.Fatal("zero queue should map to zero utilization")
	}
	if got := cal.Utilization(41); got != 1.0 {
		t.Fatalf("saturated queue maps to %v", got)
	}
	if u3, u20 := cal.Utilization(3), cal.Utilization(20); u3 >= u20 {
		t.Fatalf("non-monotone: %v %v", u3, u20)
	}
}

func TestKFromFig3(t *testing.T) {
	pts := []Fig3Point{
		{Utilization: 0, MeanMaxQueue: 0, MeanRTT: 40 * time.Millisecond},
		{Utilization: 0.8, MeanMaxQueue: 10, MeanRTT: 60 * time.Millisecond},
		{Utilization: 1.0, MeanMaxQueue: 40, MeanRTT: 120 * time.Millisecond},
	}
	k, err := KFromFig3(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Extra one-way delay: 10ms over 10 pkts and 40ms over 40 pkts, i.e.
	// exactly 1 ms per queued packet.
	if k < 900*time.Microsecond || k > 1100*time.Microsecond {
		t.Fatalf("k=%v, want ≈1ms", k)
	}
	if k2, err := KFromFig3(nil); err != nil || k2 != 0 {
		t.Fatalf("empty fit: %v %v", k2, err)
	}
}

func TestFig9SweepSmall(t *testing.T) {
	pts, err := Fig9(Fig9Config{
		Seed:      2,
		TaskCount: 4,
		Intervals: []time.Duration{100 * time.Millisecond, 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.Traffic1MeanTransfer <= 0 || p.Traffic2MeanTransfer <= 0 {
			t.Fatalf("empty transfer times %+v", p)
		}
	}
}

func TestFig9ConfigDefaults(t *testing.T) {
	cfg := Fig9Config{}.withDefaults()
	if len(cfg.Intervals) != 5 {
		t.Fatalf("default intervals %v", cfg.Intervals)
	}
	if cfg.Intervals[0] != 100*time.Millisecond || cfg.Intervals[4] != 30*time.Second {
		t.Fatalf("interval endpoints %v", cfg.Intervals)
	}
	if cfg.TaskCount != 200 {
		t.Fatalf("default task count %d", cfg.TaskCount)
	}
}

func TestOverheadTelemetryBytesGrowsLinearly(t *testing.T) {
	b1, err := OverheadTelemetryBytes(1)
	if err != nil {
		t.Fatal(err)
	}
	b5, err := OverheadTelemetryBytes(5)
	if err != nil {
		t.Fatal(err)
	}
	if b5 <= b1 {
		t.Fatalf("bytes %d vs %d", b1, b5)
	}
	perHop := (b5 - b1) / 4
	if perHop < 20 || perHop > 80 {
		t.Fatalf("per-hop bytes %d implausible", perHop)
	}
}

func TestFig8CurveFromScenario(t *testing.T) {
	cmp := smallComparison(t)
	curve := BuildFig8Curve("x", cmp, core.MetricDelay)
	// ECDF fractions reach exactly 1.
	last := curve.ECDF[len(curve.ECDF)-1]
	if last.Fraction != 1 {
		t.Fatalf("ECDF tail %v", last)
	}
}
