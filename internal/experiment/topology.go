// Package experiment builds the paper's experimental setup and regenerates
// its figures: the Fig 4 topology, the end-to-end scenario runner (workload
// + background traffic + probing + scheduling), cross-algorithm comparisons
// with identical replayed inputs, and the per-figure experiment drivers.
package experiment

import (
	"fmt"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// Paper-calibrated defaults.
const (
	// DefaultLinkRate is the effective link rate (the paper observed a
	// 20 Mbps ceiling with BMv2 under Mininet).
	DefaultLinkRate int64 = 20_000_000
	// DefaultLinkDelay is the paper's per-link propagation delay.
	DefaultLinkDelay = 10 * time.Millisecond
	// DefaultQueueCap matches BMv2's default queue depth.
	DefaultQueueCap = 64
)

// Topology bundles a built network with its experiment roles.
type Topology struct {
	Net *netsim.Network
	// Hosts are the edge nodes (devices and servers), in ID order.
	Hosts []netsim.NodeID
	// Scheduler is the host running the collector and scheduler service
	// (Node 6 in the paper's Fig 4).
	Scheduler netsim.NodeID
}

// DefaultHostEgressRate is the host NIC rate. In the paper's testbed the
// BMv2 switches cap forwarding at ~20 Mbps while Mininet's veth host links
// are fast, so the bottleneck — and therefore the queueing that INT
// observes — sits at switch egress ports. Host egress is modeled at 1 Gbps
// so bursts reach the first switch unsmoothed, as they do in the testbed.
const DefaultHostEgressRate int64 = 1_000_000_000

// LinkParams describes the uniform link characteristics of a topology.
type LinkParams struct {
	// RateBps is the switch egress rate (paper: 20 Mbps effective).
	RateBps int64
	// HostEgressBps is the host-side egress rate of host uplinks
	// (DefaultHostEgressRate when zero).
	HostEgressBps int64
	// Delay is the per-link propagation delay (paper: 10 ms).
	Delay time.Duration
	// QueueCap is the egress queue capacity in packets.
	QueueCap int
}

func (p LinkParams) withDefaults() LinkParams {
	if p.RateBps <= 0 {
		p.RateBps = DefaultLinkRate
	}
	if p.HostEgressBps <= 0 {
		p.HostEgressBps = DefaultHostEgressRate
	}
	if p.Delay <= 0 {
		p.Delay = DefaultLinkDelay
	}
	if p.QueueCap <= 0 {
		p.QueueCap = DefaultQueueCap
	}
	return p
}

// config returns the switch-switch link configuration.
func (p LinkParams) config() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: p.RateBps, Delay: p.Delay, QueueCap: p.QueueCap}
}

// hostConfig returns the host-uplink configuration for Connect(host, switch):
// the host egresses at NIC speed; the switch egresses toward the host at the
// switch rate.
func (p LinkParams) hostConfig() netsim.LinkConfig {
	return netsim.LinkConfig{
		RateBps:        p.HostEgressBps,
		ReverseRateBps: p.RateBps,
		Delay:          p.Delay,
		QueueCap:       p.QueueCap,
	}
}

// BuildFig4 reconstructs the paper's experimental topology: 8 edge nodes
// connected through 12 P4 switches. The figure in the paper is an image, so
// the exact wiring is reconstructed as a 12-switch ring with two chord links
// (for path diversity) and hosts placed so every node has a 3-hop nearest
// neighbor — e.g. n7 and n8 are each other's nearest nodes, matching the
// paper's example. Node n6 is the scheduler.
func BuildFig4(engine *simtime.Engine, params LinkParams) (*Topology, error) {
	params = params.withDefaults()
	nw := netsim.New(engine)

	// Switch ring s01..s12.
	var switches []netsim.NodeID
	for i := 1; i <= 12; i++ {
		id := netsim.NodeID(fmt.Sprintf("s%02d", i))
		nw.AddSwitch(id)
		switches = append(switches, id)
	}
	for i := range switches {
		a := switches[i]
		b := switches[(i+1)%len(switches)]
		if _, err := nw.Connect(a, b, params.config()); err != nil {
			return nil, err
		}
	}
	// Chords for path diversity (so remote-but-uncongested servers can win
	// under bandwidth ranking).
	for _, chord := range [][2]netsim.NodeID{{"s01", "s07"}, {"s04", "s10"}} {
		if _, err := nw.Connect(chord[0], chord[1], params.config()); err != nil {
			return nil, err
		}
	}

	// Hosts n1..n8 attached so adjacent-switch pairs give 3-hop nearest
	// neighbors: (n1,n2), (n3,n4), (n5,n6), (n7,n8).
	attach := map[netsim.NodeID]netsim.NodeID{
		"n1": "s01", "n2": "s02",
		"n3": "s04", "n4": "s05",
		"n5": "s07", "n6": "s08",
		"n7": "s10", "n8": "s11",
	}
	hosts := []netsim.NodeID{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"}
	for _, h := range hosts {
		nw.AddHost(h)
		if _, err := nw.Connect(h, attach[h], params.hostConfig()); err != nil {
			return nil, err
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}
	return &Topology{Net: nw, Hosts: hosts, Scheduler: "n6"}, nil
}

// BuildDumbbell builds the Fig 3 calibration topology: two hosts connected
// through a single P4 switch.
func BuildDumbbell(engine *simtime.Engine, params LinkParams) (*Topology, error) {
	params = params.withDefaults()
	nw := netsim.New(engine)
	nw.AddSwitch("s1")
	nw.AddHost("h1")
	nw.AddHost("h2")
	if _, err := nw.Connect("h1", "s1", params.hostConfig()); err != nil {
		return nil, err
	}
	if _, err := nw.Connect("h2", "s1", params.hostConfig()); err != nil {
		return nil, err
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}
	return &Topology{Net: nw, Hosts: []netsim.NodeID{"h1", "h2"}, Scheduler: "h1"}, nil
}

// BuildLinear builds a chain topology h1 - s1 - s2 - ... - sN - h2, useful
// for unit tests and INT-overhead ablations.
func BuildLinear(engine *simtime.Engine, switches int, params LinkParams) (*Topology, error) {
	if switches < 1 {
		return nil, fmt.Errorf("experiment: linear topology needs at least one switch")
	}
	params = params.withDefaults()
	nw := netsim.New(engine)
	nw.AddHost("h1")
	nw.AddHost("h2")
	prev := netsim.NodeID("h1")
	for i := 1; i <= switches; i++ {
		id := netsim.NodeID(fmt.Sprintf("s%02d", i))
		nw.AddSwitch(id)
		cfg := params.config()
		if prev == "h1" {
			cfg = params.hostConfig()
		}
		if _, err := nw.Connect(prev, id, cfg); err != nil {
			return nil, err
		}
		prev = id
	}
	// Final switch -> h2: switch egresses at switch rate, host egresses at
	// NIC rate (hostConfig is host-first, so swap arguments).
	if _, err := nw.Connect("h2", prev, params.hostConfig()); err != nil {
		return nil, err
	}
	if err := nw.ComputeRoutes(); err != nil {
		return nil, err
	}
	return &Topology{Net: nw, Hosts: []netsim.NodeID{"h1", "h2"}, Scheduler: "h2"}, nil
}
