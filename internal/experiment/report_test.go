package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"intsched/internal/core"
	"intsched/internal/stats"
)

func TestWriteResultsCSV(t *testing.T) {
	cmp := smallComparison(t)
	run := cmp.Runs[core.MetricDelay]
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, run); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(run.Results)+1 {
		t.Fatalf("rows %d, want %d", len(records), len(run.Results)+1)
	}
	if records[0][0] != "task_id" {
		t.Fatalf("header %v", records[0])
	}
	for _, row := range records[1:] {
		if len(row) != len(records[0]) {
			t.Fatalf("ragged row %v", row)
		}
	}
}

func TestWriteSummaryJSON(t *testing.T) {
	cmp := smallComparison(t)
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, cmp.Runs[core.MetricDelay]); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Metric != "delay" || s.Workload != "serverless" {
		t.Fatalf("summary %+v", s)
	}
	if s.MeanCompletion <= 0 {
		t.Fatal("mean completion not positive")
	}
	total := 0
	for _, c := range s.Classes {
		total += c.Count
	}
	if total != len(cmp.Runs[core.MetricDelay].Results) {
		t.Fatalf("class counts %d", total)
	}
}

func TestWriteComparisonJSON(t *testing.T) {
	cmp := smallComparison(t)
	var buf bytes.Buffer
	if err := WriteComparisonJSON(&buf, cmp, core.MetricNearest); err != nil {
		t.Fatal(err)
	}
	var out ComparisonSummary
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 2 {
		t.Fatalf("runs %v", out.Runs)
	}
	g, ok := out.Gains["delay"]
	if !ok {
		t.Fatalf("gains %v", out.Gains)
	}
	if _, ok := g["overall_completion"]; !ok {
		t.Fatal("missing overall gain")
	}
	if _, ok := out.Gains["nearest"]; ok {
		t.Fatal("baseline has gains vs itself")
	}
}

func TestWriteECDFCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := stats.ECDF([]float64{0.1, 0.2, 0.2, 0.5})
	if err := WriteECDFCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(pts)+1 {
		t.Fatalf("lines %d", len(lines))
	}
}

func TestWriteFig3CSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []Fig3Point{{Utilization: 0.5, MeanMaxQueue: 3.2, PeakQueue: 9, MeanRTT: 41e6, Drops: 2}}
	if err := WriteFig3CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.50") || !strings.Contains(out, "3.200") {
		t.Fatalf("csv %q", out)
	}
}
