package experiment

import (
	"testing"

	"intsched/internal/core"
	"intsched/internal/workload"
)

func TestPerPacketINTModeCompletes(t *testing.T) {
	res, err := Run(Scenario{
		Seed:         4,
		Workload:     workload.Serverless,
		Metric:       core.MetricDelay,
		TaskCount:    8,
		Background:   BackgroundRandom,
		PerPacketINT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d incomplete tasks", res.Incomplete)
	}
	if res.INTOverheadBytes == 0 {
		t.Fatal("per-packet mode accounted no telemetry overhead")
	}
	if res.ProbesSent != 0 {
		t.Fatal("probes ran in per-packet mode")
	}
	// Telemetry still reached the collector (as relayed/extracted stacks).
	if res.ProbesReceived == 0 {
		t.Fatal("collector ingested no embedded telemetry")
	}
}

func TestStagedModeHasZeroPacketOverhead(t *testing.T) {
	res, err := Run(Scenario{
		Seed:      4,
		Workload:  workload.Serverless,
		Metric:    core.MetricDelay,
		TaskCount: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.INTOverheadBytes != 0 {
		t.Fatalf("register staging added %d bytes to production packets", res.INTOverheadBytes)
	}
}
