// Package pint implements the probabilistic lightweight telemetry mode
// (PINT-style, arxiv 2007.03731): instead of every switch appending its INT
// record to every probe — per-hop header growth the lightweight-INT
// literature attacks — each switch inserts its record with probability p.
// A single probe then carries a sampled subset of hops bounded by a small
// constant, and the collector reassembles the full path across successive
// probes of the same flow (see internal/collector's reassembly stage).
//
// Two pieces live here:
//
//   - Sampler: the per-hop insertion decision. Draws come from a named
//     simtime.Rand stream derived per (switch, flow), so simulation runs
//     stay a pure function of the seed — adding a switch or a flow never
//     perturbs the draws any other (switch, flow) pair sees — and a
//     full-rate sampler (p = 1.0) samples every hop, making probabilistic
//     mode at p=1.0 byte-identical to deterministic mode.
//
//   - ValueApprox: PINT's value aggregation for queue maxima. A switch
//     reports a port's queue maximum only when the observed value moved by
//     more than a configured threshold since the last report, trading
//     precision for fewer on-wire queue entries.
package pint

import (
	"math"
	"sync"

	"intsched/internal/simtime"
)

// flowKey identifies one switch's view of one probe flow. Keying streams by
// switch AND flow (rather than switch alone) keeps draws independent: the
// hops a probe of flow A samples never depend on how many probes of flow B
// passed through the same switch.
type flowKey struct {
	device string
	origin string
	target string
}

// Sampler makes deterministic per-hop insertion decisions. It is safe for
// concurrent use (the live soft switch drains ports from several
// goroutines); the simulator calls it from the single event-loop goroutine.
type Sampler struct {
	mu      sync.Mutex
	root    *simtime.Rand
	streams map[flowKey]*simtime.Rand
}

// NewSampler returns a sampler whose streams derive from root. Pass a
// dedicated named stream (e.g. rng.Stream("pint")) so sampling draws never
// share a sequence with workload or traffic generation.
func NewSampler(root *simtime.Rand) *Sampler {
	return &Sampler{root: root, streams: make(map[flowKey]*simtime.Rand)}
}

// stream returns the (switch, flow) stream, deriving it on first use.
// Callers hold s.mu.
func (s *Sampler) stream(device, origin, target string) *simtime.Rand {
	k := flowKey{device: device, origin: origin, target: target}
	st, ok := s.streams[k]
	if !ok {
		st = s.root.Stream("pint/" + device + "/" + origin + ">" + target)
		s.streams[k] = st
	}
	return st
}

// Sample reports whether device should insert its record into a probe of
// flow origin→target carrying the given fixed-point sampling rate
// (telemetry.RateToWire form). The maximum rate always samples — Float64
// draws lie in [0, 1) — which is what makes p=1.0 probabilistic output
// identical to deterministic output.
func (s *Sampler) Sample(device, origin, target string, rate uint16) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream(device, origin, target).Float64() < float64(rate)/math.MaxUint16
}

// Slot returns a uniform slot index in [0, n) from the same (switch, flow)
// stream, for reservoir-style replacement once a probe's record budget is
// full: replacing a uniformly chosen earlier record keeps the carried subset
// unbiased while bounding probe size at O(1).
func (s *Sampler) Slot(device, origin, target string, n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream(device, origin, target).Intn(n)
}

// Streams reports how many (switch, flow) streams have been derived
// (diagnostics and tests).
func (s *Sampler) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// ValueApprox filters per-port queue-maximum reports by change magnitude
// (PINT §value aggregation): a port is reported only when its observed
// value moved by more than Threshold since the last reported value. A
// threshold of zero (or negative) disables filtering — every port is always
// reported, preserving deterministic-equivalent output.
type ValueApprox struct {
	mu        sync.Mutex
	threshold int
	last      map[int]int64
}

// NewValueApprox returns a filter with the given report threshold.
func NewValueApprox(threshold int) *ValueApprox {
	return &ValueApprox{threshold: threshold, last: make(map[int]int64)}
}

// Threshold returns the configured report threshold.
func (v *ValueApprox) Threshold() int { return v.threshold }

// ShouldReport decides whether a port's current value is worth carrying on
// the wire, updating the last-reported value when it is. Ports never seen
// before always report.
func (v *ValueApprox) ShouldReport(port int, value int64) bool {
	if v.threshold <= 0 {
		return true
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	last, seen := v.last[port]
	if seen {
		delta := value - last
		if delta < 0 {
			delta = -delta
		}
		if delta <= int64(v.threshold) {
			return false
		}
	}
	v.last[port] = value
	return true
}
