package pint

import (
	"testing"

	"intsched/internal/simtime"
	"intsched/internal/telemetry"
)

// TestSamplerDeterministic checks the same (seed, switch, flow) always makes
// the same decisions, independent of what other flows drew in between.
func TestSamplerDeterministic(t *testing.T) {
	draw := func(perturb bool) []bool {
		s := NewSampler(simtime.NewRand(42).Stream("pint"))
		rate := telemetry.RateToWire(0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			if perturb {
				// Interleaved draws of an unrelated flow must not change
				// what the flow under test sees.
				s.Sample("s01", "other", "collector", rate)
			}
			out = append(out, s.Sample("s01", "n1", "collector", rate))
		}
		return out
	}
	a, b := draw(false), draw(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs with interleaved flow: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSamplerFullRate checks p=1.0 samples every hop — the property the
// p=1.0 ≡ deterministic acceptance criterion rests on.
func TestSamplerFullRate(t *testing.T) {
	s := NewSampler(simtime.NewRand(7))
	rate := telemetry.RateToWire(1.0)
	for i := 0; i < 4096; i++ {
		if !s.Sample("sw", "origin", "target", rate) {
			t.Fatalf("full-rate draw %d did not sample", i)
		}
	}
	if s.Sample("sw", "origin", "target", telemetry.RateToWire(0)) {
		t.Fatal("zero-rate draw sampled")
	}
}

// TestSamplerRateConvergence sanity-checks the empirical sampling frequency.
func TestSamplerRateConvergence(t *testing.T) {
	s := NewSampler(simtime.NewRand(11))
	rate := telemetry.RateToWire(0.25)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Sample("sw", "o", "t", rate) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.23 || got > 0.27 {
		t.Fatalf("empirical rate %.3f, want ~0.25", got)
	}
}

func TestSamplerSlot(t *testing.T) {
	s := NewSampler(simtime.NewRand(3))
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		slot := s.Slot("sw", "o", "t", 8)
		if slot < 0 || slot >= 8 {
			t.Fatalf("slot %d out of [0, 8)", slot)
		}
		seen[slot] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d of 8 slots drawn", len(seen))
	}
}

func TestValueApproxThreshold(t *testing.T) {
	v := NewValueApprox(5)
	if !v.ShouldReport(0, 10) {
		t.Fatal("first observation must report")
	}
	if v.ShouldReport(0, 12) {
		t.Fatal("change within threshold reported")
	}
	if v.ShouldReport(0, 15) {
		t.Fatal("change equal to threshold reported")
	}
	if !v.ShouldReport(0, 16) {
		t.Fatal("change above threshold suppressed")
	}
	// The reported value becomes the new baseline.
	if v.ShouldReport(0, 20) {
		t.Fatal("baseline not updated on report")
	}
	if !v.ShouldReport(0, 4) {
		t.Fatal("drop below baseline suppressed")
	}
	// Distinct ports track independently.
	if !v.ShouldReport(1, 0) {
		t.Fatal("unseen port suppressed")
	}
}

// TestValueApproxDisabled checks threshold <= 0 always reports — the mode
// the p=1.0 identity experiment cells run with.
func TestValueApproxDisabled(t *testing.T) {
	v := NewValueApprox(0)
	for i := 0; i < 10; i++ {
		if !v.ShouldReport(0, 7) {
			t.Fatal("zero-threshold filter suppressed a report")
		}
	}
}
