// Package workload generates the paper's experimental workloads: serverless
// computing jobs (one task per job) and distributed computing jobs (three
// tasks per job, e.g. distributed/federated training), with task classes
// Very Small / Small / Medium / Large drawn from Table I's data-size and
// execution-time ranges.
//
// Generation is fully deterministic for a given seed, and — critically for
// the paper's methodology — the same generated job sequence is replayed
// against every scheduling algorithm so comparisons are fair.
package workload

import (
	"fmt"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// Class is a task size class from Table I.
type Class uint8

const (
	// VerySmall: 0–1000 KB data, 0–2000 ms execution.
	VerySmall Class = iota
	// Small: 1500–2500 KB data, 2500–4500 ms execution.
	Small
	// Medium: 3000–4000 KB data, 5000–7000 ms execution.
	Medium
	// Large: 4500–5500 KB data, 7500–9500 ms execution.
	Large
	numClasses
)

var classNames = [...]string{"VS", "S", "M", "L"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes lists all task classes in Table I order.
func Classes() []Class { return []Class{VerySmall, Small, Medium, Large} }

// ClassSpec is one row of Table I.
type ClassSpec struct {
	Class       Class
	MinDataKB   int
	MaxDataKB   int
	MinExecMs   int
	MaxExecMs   int
	Description string
}

// TableI returns the paper's Table I.
func TableI() []ClassSpec {
	return []ClassSpec{
		{VerySmall, 0, 1000, 0, 2000, "Very small (VS)"},
		{Small, 1500, 2500, 2500, 4500, "Small (S)"},
		{Medium, 3000, 4000, 5000, 7000, "Medium (M)"},
		{Large, 4500, 5500, 7500, 9500, "Large (L)"},
	}
}

// Spec returns the Table I row for class c.
func Spec(c Class) ClassSpec {
	return TableI()[c]
}

// Kind selects the workload type.
type Kind uint8

const (
	// Serverless jobs submit one task (FaaS-style offload).
	Serverless Kind = iota
	// Distributed jobs submit three tasks to three servers.
	Distributed
)

func (k Kind) String() string {
	if k == Serverless {
		return "serverless"
	}
	return "distributed"
}

// TasksPerJob returns the number of tasks a job of this kind submits.
func (k Kind) TasksPerJob() int {
	if k == Serverless {
		return 1
	}
	return 3
}

// Task is one unit of offloaded work.
type Task struct {
	// ID is unique within a generated workload.
	ID uint64
	// JobID identifies the parent job.
	JobID uint64
	// Class is the Table I size class.
	Class Class
	// DataBytes is the input data transferred from device to server.
	DataBytes int64
	// ExecTime is the server-side execution duration.
	ExecTime time.Duration
}

// Job is a unit of submission from one edge device.
type Job struct {
	ID uint64
	// Device is the submitting edge device.
	Device netsim.NodeID
	// SubmitAt is the virtual submission time.
	SubmitAt time.Duration
	// Kind is the workload type.
	Kind Kind
	// Tasks are the job's tasks (1 for serverless, 3 for distributed).
	Tasks []Task
}

// GenConfig parameterizes workload generation.
type GenConfig struct {
	// Kind is the workload type.
	Kind Kind
	// TaskCount is the total number of tasks to generate (the paper uses
	// 200 per experiment). The last job is truncated if needed.
	TaskCount int
	// Devices are the submitting hosts; each job picks one uniformly.
	Devices []netsim.NodeID
	// MeanInterarrival is the mean of the exponential job inter-arrival
	// time. Zero means DefaultInterarrival.
	MeanInterarrival time.Duration
	// Classes restricts generation to the given classes; nil means all
	// four classes uniformly (the main experiments). Fig 9 uses a single
	// class (Medium for Traffic 1, Small for Traffic 2).
	Classes []Class
	// Start offsets the first submission. Zero starts after one mean
	// inter-arrival.
	Start time.Duration
}

// DefaultInterarrival is the default mean job inter-arrival time.
const DefaultInterarrival = 5 * time.Second

// Generate produces a deterministic job sequence. The same (config, seed)
// always yields the same jobs, which is how the experiment harness replays
// identical workloads across scheduling algorithms.
func Generate(cfg GenConfig, rng *simtime.Rand) ([]Job, error) {
	if cfg.TaskCount <= 0 {
		return nil, fmt.Errorf("workload: TaskCount must be positive")
	}
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("workload: no devices")
	}
	mean := cfg.MeanInterarrival
	if mean <= 0 {
		mean = DefaultInterarrival
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = Classes()
	}

	r := rng.Stream("workload")
	var jobs []Job
	var taskID, jobID uint64
	at := cfg.Start
	remaining := cfg.TaskCount
	for remaining > 0 {
		at += time.Duration(r.Exp(float64(mean)))
		jobID++
		ntasks := cfg.Kind.TasksPerJob()
		if ntasks > remaining {
			ntasks = remaining
		}
		job := Job{
			ID:       jobID,
			Device:   simtime.Pick(r, cfg.Devices),
			SubmitAt: at,
			Kind:     cfg.Kind,
		}
		class := simtime.Pick(r, classes)
		for i := 0; i < ntasks; i++ {
			taskID++
			job.Tasks = append(job.Tasks, sampleTask(r, taskID, jobID, class))
		}
		jobs = append(jobs, job)
		remaining -= ntasks
	}
	return jobs, nil
}

// sampleTask draws a task's data size and execution time from its class's
// Table I ranges.
func sampleTask(r *simtime.Rand, taskID, jobID uint64, class Class) Task {
	spec := Spec(class)
	dataKB := r.UniformInt(spec.MinDataKB, spec.MaxDataKB)
	execMs := r.UniformInt(spec.MinExecMs, spec.MaxExecMs)
	data := int64(dataKB) * 1000
	if data <= 0 {
		data = 1000 // at least one small packet of payload
	}
	return Task{
		ID:        taskID,
		JobID:     jobID,
		Class:     class,
		DataBytes: data,
		ExecTime:  time.Duration(execMs) * time.Millisecond,
	}
}

// CountByClass tallies tasks per class across jobs.
func CountByClass(jobs []Job) map[Class]int {
	out := make(map[Class]int)
	for _, j := range jobs {
		for _, t := range j.Tasks {
			out[t.Class]++
		}
	}
	return out
}

// TotalTasks returns the task count across jobs.
func TotalTasks(jobs []Job) int {
	n := 0
	for _, j := range jobs {
		n += len(j.Tasks)
	}
	return n
}
