package workload

import (
	"testing"
	"testing/quick"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

var devices = []netsim.NodeID{"n1", "n2", "n3", "n4"}

func gen(t *testing.T, cfg GenConfig, seed int64) []Job {
	t.Helper()
	jobs, err := Generate(cfg, simtime.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestTableIRanges(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	want := []struct {
		cls                        Class
		minKB, maxKB, minMs, maxMs int
	}{
		{VerySmall, 0, 1000, 0, 2000},
		{Small, 1500, 2500, 2500, 4500},
		{Medium, 3000, 4000, 5000, 7000},
		{Large, 4500, 5500, 7500, 9500},
	}
	for i, w := range want {
		r := rows[i]
		if r.Class != w.cls || r.MinDataKB != w.minKB || r.MaxDataKB != w.maxKB ||
			r.MinExecMs != w.minMs || r.MaxExecMs != w.maxMs {
			t.Errorf("row %d = %+v", i, r)
		}
	}
}

func TestGenerateExactTaskCount(t *testing.T) {
	for _, kind := range []Kind{Serverless, Distributed} {
		for _, count := range []int{1, 2, 3, 7, 200} {
			jobs := gen(t, GenConfig{Kind: kind, TaskCount: count, Devices: devices}, 1)
			if got := TotalTasks(jobs); got != count {
				t.Errorf("%v count=%d: generated %d tasks", kind, count, got)
			}
		}
	}
}

func TestGenerateTasksPerJob(t *testing.T) {
	jobs := gen(t, GenConfig{Kind: Distributed, TaskCount: 30, Devices: devices}, 2)
	for i, j := range jobs {
		if i < len(jobs)-1 && len(j.Tasks) != 3 {
			t.Fatalf("distributed job %d has %d tasks", i, len(j.Tasks))
		}
		// All tasks of one job share a class (one logical job).
		for _, task := range j.Tasks {
			if task.Class != j.Tasks[0].Class {
				t.Fatalf("job %d mixes classes", i)
			}
			if task.JobID != j.ID {
				t.Fatalf("task jobID mismatch")
			}
		}
	}
	sl := gen(t, GenConfig{Kind: Serverless, TaskCount: 5, Devices: devices}, 2)
	for _, j := range sl {
		if len(j.Tasks) != 1 {
			t.Fatal("serverless job with multiple tasks")
		}
	}
}

func TestGenerateWithinTableIRanges(t *testing.T) {
	jobs := gen(t, GenConfig{Kind: Serverless, TaskCount: 400, Devices: devices}, 3)
	for _, j := range jobs {
		for _, task := range j.Tasks {
			spec := Spec(task.Class)
			maxData := int64(spec.MaxDataKB) * 1000
			if task.DataBytes <= 0 || task.DataBytes > maxData {
				t.Fatalf("task %d data %d outside (0, %d]", task.ID, task.DataBytes, maxData)
			}
			if task.DataBytes > 1000 && task.DataBytes < int64(spec.MinDataKB)*1000 {
				t.Fatalf("task %d data %d below class min", task.ID, task.DataBytes)
			}
			minE := time.Duration(spec.MinExecMs) * time.Millisecond
			maxE := time.Duration(spec.MaxExecMs) * time.Millisecond
			if task.ExecTime < minE || task.ExecTime > maxE {
				t.Fatalf("task %d exec %v outside [%v, %v]", task.ID, task.ExecTime, minE, maxE)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Kind: Distributed, TaskCount: 60, Devices: devices}
	a := gen(t, cfg, 42)
	b := gen(t, cfg, 42)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Device != b[i].Device || a[i].SubmitAt != b[i].SubmitAt {
			t.Fatal("job sequence diverged")
		}
		for k := range a[i].Tasks {
			if a[i].Tasks[k] != b[i].Tasks[k] {
				t.Fatal("task diverged")
			}
		}
	}
	c := gen(t, cfg, 43)
	same := true
	for i := range a {
		if i < len(c) && a[i].SubmitAt != c[i].SubmitAt {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateClassRestriction(t *testing.T) {
	jobs := gen(t, GenConfig{Kind: Serverless, TaskCount: 50, Devices: devices,
		Classes: []Class{Medium}}, 4)
	counts := CountByClass(jobs)
	if counts[Medium] != 50 {
		t.Fatalf("counts %v", counts)
	}
}

func TestGenerateAllClassesAppear(t *testing.T) {
	jobs := gen(t, GenConfig{Kind: Serverless, TaskCount: 200, Devices: devices}, 5)
	counts := CountByClass(jobs)
	for _, c := range Classes() {
		if counts[c] < 20 {
			t.Errorf("class %v underrepresented: %d/200", c, counts[c])
		}
	}
}

func TestGenerateSubmitTimesIncrease(t *testing.T) {
	jobs := gen(t, GenConfig{Kind: Serverless, TaskCount: 50, Devices: devices,
		MeanInterarrival: time.Second, Start: 10 * time.Second}, 6)
	prev := 10 * time.Second
	for _, j := range jobs {
		if j.SubmitAt <= prev {
			t.Fatalf("submit times not strictly increasing: %v then %v", prev, j.SubmitAt)
		}
		prev = j.SubmitAt
	}
}

func TestGenerateValidation(t *testing.T) {
	r := simtime.NewRand(1)
	if _, err := Generate(GenConfig{TaskCount: 0, Devices: devices}, r); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := Generate(GenConfig{TaskCount: 5}, r); err == nil {
		t.Error("no devices accepted")
	}
}

func TestTaskIDsUniqueProperty(t *testing.T) {
	f := func(seed int64, countRaw uint8) bool {
		count := int(countRaw%100) + 1
		jobs, err := Generate(GenConfig{Kind: Distributed, TaskCount: count, Devices: devices},
			simtime.NewRand(seed))
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for _, j := range jobs {
			for _, task := range j.Tasks {
				if seen[task.ID] {
					return false
				}
				seen[task.ID] = true
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if Serverless.String() != "serverless" || Distributed.String() != "distributed" {
		t.Error("kind strings")
	}
	if Serverless.TasksPerJob() != 1 || Distributed.TasksPerJob() != 3 {
		t.Error("tasks per job")
	}
	names := []string{"VS", "S", "M", "L"}
	for i, c := range Classes() {
		if c.String() != names[i] {
			t.Errorf("class %d string %q", i, c.String())
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class string empty")
	}
}
