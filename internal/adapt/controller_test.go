package adapt

import (
	"reflect"
	"testing"
	"time"
)

const base = 100 * time.Millisecond

func sig(origin, target string, age time.Duration) Signal {
	return Signal{Origin: origin, Target: target, Age: age}
}

// one evaluation with a fresh stream registers it at the base cadence and
// emits nothing.
func TestNewStreamStartsAtBase(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	dirs := c.Decide([]Signal{sig("n1", "ctl", base)})
	if len(dirs) != 0 {
		t.Fatalf("fresh stream emitted %v, want none", dirs)
	}
	cs := c.Cadences()
	if cs.BaseStreams != 1 || cs.TightStreams != 0 || cs.BackoffStreams != 0 {
		t.Fatalf("cadence summary %+v, want one base stream", cs)
	}
}

func TestSilenceTightensToMin(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{sig("n1", "ctl", base)})
	// Age beyond SilenceIntervals × current interval: the stream is silent.
	dirs := c.Decide([]Signal{sig("n1", "ctl", 4*base)})
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	d := dirs[0]
	if d.Interval != base/4 || d.Reason != ReasonSilence {
		t.Fatalf("directive %+v, want interval %v reason silence", d, base/4)
	}
	if st := c.Stats(); st.SilenceTightens != 1 {
		t.Fatalf("SilenceTightens = %d, want 1", st.SilenceTightens)
	}
}

func TestChurnHalvesInterval(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 2}})
	// A remap delta marks the stream churning: halve toward MinInterval.
	dirs := c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 3}})
	if len(dirs) != 1 || dirs[0].Interval != base/2 || dirs[0].Reason != ReasonTighten {
		t.Fatalf("directives %+v, want one tighten to %v", dirs, base/2)
	}
	// Repeated churn clamps at MinInterval and then stops emitting.
	c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 4}})
	dirs = c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 5}})
	if len(dirs) != 0 {
		t.Fatalf("churn at MinInterval emitted %+v, want none", dirs)
	}
	if iv := c.Cadences(); iv.TightStreams != 1 || iv.TightMicros != float64((base/4).Microseconds()) {
		t.Fatalf("cadence summary %+v, want one tight stream at %v", iv, base/4)
	}
}

func TestQueueVarianceCountsAsChurn(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{sig("n1", "ctl", 0)})
	dirs := c.Decide([]Signal{{Origin: "n1", Target: "ctl", QueueVar: DefaultQueueVarThreshold}})
	if len(dirs) != 1 || dirs[0].Reason != ReasonTighten {
		t.Fatalf("directives %+v, want one tighten on queue variance", dirs)
	}
}

func TestEvictionOnPathCountsAsChurn(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{sig("n1", "ctl", 0)})
	dirs := c.Decide([]Signal{{Origin: "n1", Target: "ctl", EvictedOnPath: 1}})
	if len(dirs) != 1 || dirs[0].Reason != ReasonTighten {
		t.Fatalf("directives %+v, want one tighten on path eviction", dirs)
	}
}

func TestBackoffAfterStableRounds(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{sig("n1", "ctl", 0)}) // register, quiet 1
	dirs := c.Decide([]Signal{sig("n1", "ctl", 0)})
	if len(dirs) != 1 || dirs[0].Interval != 2*base || dirs[0].Reason != ReasonBackoff {
		t.Fatalf("directives %+v, want one backoff to %v after %d quiet rounds",
			dirs, 2*base, DefaultStableRounds)
	}
	// Two more quiet rounds double again; two more after that are clamped
	// at MaxInterval and emit nothing.
	c.Decide([]Signal{sig("n1", "ctl", 0)})
	dirs = c.Decide([]Signal{sig("n1", "ctl", 0)})
	if len(dirs) != 1 || dirs[0].Interval != 4*base {
		t.Fatalf("directives %+v, want one backoff to max %v", dirs, 4*base)
	}
	c.Decide([]Signal{sig("n1", "ctl", 0)})
	dirs = c.Decide([]Signal{sig("n1", "ctl", 0)})
	if len(dirs) != 0 {
		t.Fatalf("backoff at MaxInterval emitted %+v, want none", dirs)
	}
}

// A backed-off stream must never stay backed off once it goes silent: the
// silence rule overrides, dropping straight to MinInterval.
func TestSilenceOverridesBackoff(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{sig("n1", "ctl", 0)})
	c.Decide([]Signal{sig("n1", "ctl", 0)}) // backed off to 2×base
	// Age just over SilenceIntervals × the backed-off interval.
	dirs := c.Decide([]Signal{sig("n1", "ctl", 7*base)})
	if len(dirs) != 1 || dirs[0].Interval != base/4 || dirs[0].Reason != ReasonSilence {
		t.Fatalf("directives %+v, want silence drop to %v", dirs, base/4)
	}
}

func TestFanOutPullsSharedDeviceStreams(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	quiet := Signal{Origin: "n1", Target: "ctl", Devices: []string{"s1", "s2"}}
	other := Signal{Origin: "n2", Target: "ctl", Devices: []string{"s2", "s3"}}
	c.Decide([]Signal{quiet, other})
	c.Decide([]Signal{quiet, other}) // both back off to 2×base
	// n2's path churns; n1 shares device s2 and must fall back to base.
	churned := other
	churned.Remaps = 1
	dirs := c.Decide([]Signal{quiet, churned})
	want := map[string]struct {
		interval time.Duration
		reason   Reason
	}{
		"n1": {base, ReasonFanOut},
		"n2": {base, ReasonTighten},
	}
	if len(dirs) != len(want) {
		t.Fatalf("got %d directives %+v, want %d", len(dirs), dirs, len(want))
	}
	for _, d := range dirs {
		w := want[d.Origin]
		if d.Interval != w.interval || d.Reason != w.reason {
			t.Fatalf("directive %+v, want interval %v reason %v", d, w.interval, w.reason)
		}
	}
	// A stream with no shared device is left alone.
	far := Signal{Origin: "n3", Target: "ctl", Devices: []string{"s9"}}
	c = NewController(Config{BaseInterval: base})
	c.Decide([]Signal{far, other})
	c.Decide([]Signal{far, other})
	dirs = c.Decide([]Signal{far, churned})
	for _, d := range dirs {
		if d.Origin == "n3" {
			t.Fatalf("unrelated stream got directive %+v", d)
		}
	}
}

// The budget allocator grows backed-off streams before base-cadence ones and
// tightened streams last, in (priority, origin, target) order.
func TestBudgetAllocatorPriorityOrder(t *testing.T) {
	// Budget of 3 streams × base rate would be 30/s; cap at 17.5/s forces
	// the allocator to slow the backed-off stream (n3) and then one base
	// stream (n1 before n2 by name) while the tightened stream keeps pace.
	c := NewController(Config{BaseInterval: base, MaxProbesPerSec: 17.5})
	s1 := Signal{Origin: "n1", Target: "ctl"}
	s2 := Signal{Origin: "n2", Target: "ctl"}
	s3 := Signal{Origin: "n3", Target: "ctl", Remaps: 0}
	c.Decide([]Signal{s1, s2, s3})
	s3churn := s3
	s3churn.Remaps = 1
	dirs := c.Decide([]Signal{s1, s2, s3churn})
	got := map[string]time.Duration{}
	for _, d := range dirs {
		got[d.Origin] = d.Interval
	}
	// Rates: n3 tightens to 50ms (20/s); n1 and n2 back off to 200ms (5/s
	// each) for 30/s total. The allocator grows the backoffs first (n1 then
	// n2, 200→400ms, down to 25/s) and only then touches the tightened n3
	// (50→100ms, 15/s ≤ cap).
	want := map[string]time.Duration{"n1": 4 * base, "n2": 4 * base, "n3": base}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("allocated intervals %v, want %v", got, want)
	}
	st := c.Stats()
	if st.BudgetClamps == 0 {
		t.Fatalf("stats %+v, want budget clamps recorded", st)
	}
	if st.ProbeRate > 17.5 {
		t.Fatalf("allocated rate %.2f exceeds cap", st.ProbeRate)
	}
	if st.BudgetUtilization <= 0 || st.BudgetUtilization > 1 {
		t.Fatalf("budget utilization %.2f outside (0, 1]", st.BudgetUtilization)
	}
}

func TestBytesBudgetConvertsToProbeRate(t *testing.T) {
	// 2 streams at base = 20/s. MaxBytesPerSec 15000 at 1500 B/probe = 10/s
	// cap: both streams must double.
	c := NewController(Config{BaseInterval: base, MaxBytesPerSec: 15000})
	dirs := c.Decide([]Signal{sig("n1", "ctl", 0), sig("n2", "ctl", 0)})
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want both streams grown", len(dirs))
	}
	for _, d := range dirs {
		if d.Interval != 2*base || d.Reason != ReasonBudget {
			t.Fatalf("directive %+v, want budget grow to %v", d, 2*base)
		}
	}
}

// Identical signal sequences through fresh controllers yield byte-identical
// directive sequences — the determinism contract behind the CI digest diff.
func TestDecideIsDeterministic(t *testing.T) {
	rounds := [][]Signal{
		{sig("n1", "ctl", 0), sig("n2", "ctl", 0), {Origin: "n3", Target: "ctl", Devices: []string{"s1"}}},
		{sig("n1", "ctl", 0), {Origin: "n2", Target: "ctl", Remaps: 1, Devices: []string{"s1"}}, {Origin: "n3", Target: "ctl", Devices: []string{"s1"}}},
		{sig("n1", "ctl", 9*base), sig("n2", "ctl", 0), {Origin: "n3", Target: "ctl", Devices: []string{"s1"}}},
	}
	run := func() [][]Directive {
		c := NewController(Config{BaseInterval: base, MaxProbesPerSec: 25})
		var out [][]Directive
		for _, r := range rounds {
			rc := make([]Signal, len(r))
			copy(rc, r)
			out = append(out, c.Decide(rc))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed directives diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestSeqStrictlyIncreases(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	var last uint64
	for i := 0; i < 6; i++ {
		age := time.Duration(0)
		if i%2 == 1 {
			age = 9 * base // alternate silence and recovery to force churn
		}
		for _, d := range c.Decide([]Signal{sig("n1", "ctl", age), sig("n2", "ctl", age)}) {
			if d.Seq <= last {
				t.Fatalf("seq %d not greater than previous %d", d.Seq, last)
			}
			last = d.Seq
		}
	}
	if last == 0 {
		t.Fatal("no directives emitted; test exercised nothing")
	}
}

// Streams absent from the signal set are forgotten and restart at base.
func TestStatePrunedForVanishedStreams(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{sig("n1", "ctl", 0)})
	c.Decide([]Signal{sig("n1", "ctl", 0)}) // backed off to 2×base
	c.Decide([]Signal{sig("n2", "ctl", 0)}) // n1 gone: state dropped
	if cs := c.Cadences(); cs.BackoffStreams != 0 || cs.BaseStreams != 1 {
		t.Fatalf("cadence summary %+v, want only n2 at base", cs)
	}
	dirs := c.Decide([]Signal{sig("n1", "ctl", 0), sig("n2", "ctl", 0)})
	for _, d := range dirs {
		if d.Origin == "n1" {
			t.Fatalf("reappeared stream emitted %+v before re-earning a change", d)
		}
	}
}

// Counters that go backwards (stream restart) are a fresh baseline, not
// churn.
func TestCounterRegressionIsNotChurn(t *testing.T) {
	c := NewController(Config{BaseInterval: base})
	c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 10, Resets: 4}})
	// The regression round counts as quiet — the stream may back off, but
	// must not tighten.
	for _, d := range c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 1}}) {
		if d.Reason == ReasonTighten {
			t.Fatalf("counter regression tightened: %+v", d)
		}
	}
	// The regressed value is the new baseline: a later increment is churn.
	dirs := c.Decide([]Signal{{Origin: "n1", Target: "ctl", Remaps: 2}})
	if len(dirs) != 1 || dirs[0].Reason != ReasonTighten {
		t.Fatalf("directives %+v, want one tighten after the new baseline", dirs)
	}
}

func TestConfigDefaultsAndClamps(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BaseInterval != DefaultBaseInterval ||
		cfg.MinInterval != DefaultBaseInterval/4 ||
		cfg.MaxInterval != 4*DefaultBaseInterval ||
		cfg.EvalInterval != 5*DefaultBaseInterval {
		t.Fatalf("defaults %+v", cfg)
	}
	// Inverted bounds are pulled back to the base interval.
	cfg = Config{BaseInterval: base, MinInterval: 2 * base, MaxInterval: base / 2}.withDefaults()
	if cfg.MinInterval != base || cfg.MaxInterval != base {
		t.Fatalf("clamped config %+v, want min=max=base", cfg)
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonNone: "none", ReasonTighten: "tighten", ReasonSilence: "silence",
		ReasonFanOut: "fanout", ReasonBackoff: "backoff", ReasonBudget: "budget",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}
