// Package adapt implements the adaptive probing control loop: a
// deterministic, rule-based controller (an AdapINT-lite feedback loop, after
// arxiv 2310.19331) that consumes collector-side churn signals — per-device
// windowed queue variance, adjacency eviction tombstones, path-remap and
// reassembly-reset events — and emits per-stream probe-cadence directives.
// Edges that are churning get probed faster (halving toward MinInterval),
// stable edges back off (doubling toward MaxInterval), streams that share a
// device with a churning stream are pulled back to the base cadence
// (fan-out tightening), and a stream that has gone silent is tightened to
// MinInterval rather than backed off — silence is the one signal the
// controller must never mask, because adjacency aging turns it into an
// eviction.
//
// The whole loop is clamped to a global probes-per-second / bytes-per-second
// telemetry budget: when the allocated cadences oversubscribe the budget,
// a deterministic priority-ordered allocator doubles the intervals of the
// least-important streams (backed-off first, tightened last) until the
// aggregate rate fits.
//
// The controller is a pure function of its inputs: no wall clock, no
// randomness, no map-ordered output. Signals arrive sorted by (origin,
// target); directives are emitted in that order with a monotonic sequence
// number. Replaying the same signal sequence therefore replays the same
// directives byte for byte, which is what lets the sim driver keep scenario
// digests identical at any pool parallelism. The controller is not
// goroutine-safe; drivers serialize calls (the sim engine is single-threaded
// per scenario, the live daemon runs one control goroutine).
package adapt

import "time"

// Defaults for Config.
const (
	// DefaultBaseInterval is the paper's static probing period.
	DefaultBaseInterval = 100 * time.Millisecond
	// DefaultBytesPerProbe is the assumed on-wire cost of one probe when
	// translating a bytes-per-second budget into probes per second (probes
	// are MTU-sized).
	DefaultBytesPerProbe = 1500
	// DefaultQueueVarThreshold is the windowed max-queue variance (in
	// packets²) above which a stream's path counts as churning.
	DefaultQueueVarThreshold = 4.0
	// DefaultSilenceIntervals is how many of the stream's own intervals may
	// pass without an accepted probe before the stream counts as silent.
	DefaultSilenceIntervals = 3
	// DefaultStableRounds is how many consecutive quiet evaluations a
	// stream must accumulate before its cadence backs off one step.
	DefaultStableRounds = 2
)

// Config tunes the controller. The zero value gives the documented
// defaults: base 100 ms, clamp bounds [base/4, 4×base], evaluation every
// 5×base, no budget.
//
// MaxInterval must stay below half the collector's adjacency TTL (the
// default 4×base = 400 ms against the experiment's TTL of 10×base = 1 s)
// so that even a fully backed-off stream re-confirms its edges at least
// twice per TTL: back-off must never cause a live edge to age out.
type Config struct {
	// BaseInterval is the cadence assigned to new streams and the level
	// fan-out tightening pulls shared-path streams back to. Zero means
	// DefaultBaseInterval.
	BaseInterval time.Duration
	// MinInterval and MaxInterval clamp every directive. Zero means
	// BaseInterval/4 and 4×BaseInterval respectively.
	MinInterval time.Duration
	MaxInterval time.Duration
	// EvalInterval is how often drivers run Decide. Zero means
	// 5×BaseInterval.
	EvalInterval time.Duration
	// MaxProbesPerSec and MaxBytesPerSec cap the aggregate allocated probe
	// rate; zero means unlimited. When both are set the tighter one wins.
	MaxProbesPerSec float64
	MaxBytesPerSec  float64
	// BytesPerProbe converts MaxBytesPerSec into probes per second. Zero
	// means DefaultBytesPerProbe.
	BytesPerProbe int
	// QueueVarThreshold classifies a path as churning when any of its
	// devices' in-window max-queue variance reaches it. Zero means
	// DefaultQueueVarThreshold.
	QueueVarThreshold float64
	// SilenceIntervals and StableRounds tune the silence and back-off
	// rules. Zero means the defaults.
	SilenceIntervals int
	StableRounds     int
}

func (c Config) withDefaults() Config {
	if c.BaseInterval <= 0 {
		c.BaseInterval = DefaultBaseInterval
	}
	if c.MinInterval <= 0 {
		c.MinInterval = c.BaseInterval / 4
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 4 * c.BaseInterval
	}
	if c.MinInterval > c.BaseInterval {
		c.MinInterval = c.BaseInterval
	}
	if c.MaxInterval < c.BaseInterval {
		c.MaxInterval = c.BaseInterval
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 5 * c.BaseInterval
	}
	if c.BytesPerProbe <= 0 {
		c.BytesPerProbe = DefaultBytesPerProbe
	}
	if c.QueueVarThreshold <= 0 {
		c.QueueVarThreshold = DefaultQueueVarThreshold
	}
	if c.SilenceIntervals <= 0 {
		c.SilenceIntervals = DefaultSilenceIntervals
	}
	if c.StableRounds <= 0 {
		c.StableRounds = DefaultStableRounds
	}
	return c
}

// Signal is the controller-facing digest of one probe stream, derived from
// collector state (collector.StreamSignals). Probabilistic streams carry no
// reassembled path between completions, so Devices may be empty and
// QueueVar/EvictedOnPath zero; Age, Remaps, and Resets still drive the
// silence and churn rules.
type Signal struct {
	Origin, Target string
	// Age is the time since the stream's last accepted probe.
	Age time.Duration
	// Remaps and Resets are the stream's cumulative path-remap and
	// reassembly-reset counts; the controller reacts to their deltas.
	Remaps, Resets uint64
	// Devices are the interior devices of the stream's last known path.
	Devices []string
	// QueueVar is the maximum in-window max-queue variance across Devices.
	QueueVar float64
	// EvictedOnPath counts path edges currently tombstoned by aging.
	EvictedOnPath int
}

// Reason classifies why a directive changed a stream's cadence.
type Reason uint8

const (
	// ReasonNone marks an unchanged cadence (never emitted).
	ReasonNone Reason = iota
	// ReasonTighten halves the interval of a churning stream.
	ReasonTighten
	// ReasonSilence drops a silent stream to MinInterval: probes have
	// stopped arriving and the fastest cadence gives adjacency aging the
	// earliest possible confirmation or eviction.
	ReasonSilence
	// ReasonFanOut pulls a stream sharing a device with a churning path
	// back to the base cadence.
	ReasonFanOut
	// ReasonBackoff doubles the interval of a stream that has been quiet
	// for StableRounds evaluations.
	ReasonBackoff
	// ReasonBudget marks an interval grown by the budget allocator.
	ReasonBudget
)

// String returns the reason's stable label (used as an obs counter label).
func (r Reason) String() string {
	switch r {
	case ReasonTighten:
		return "tighten"
	case ReasonSilence:
		return "silence"
	case ReasonFanOut:
		return "fanout"
	case ReasonBackoff:
		return "backoff"
	case ReasonBudget:
		return "budget"
	default:
		return "none"
	}
}

// Directive instructs one probe stream to adopt a new cadence. Seq is a
// controller-wide monotonic sequence number; appliers must ignore
// directives whose Seq is not newer than the last one they applied, so a
// reordered frame on the live path cannot roll a cadence back.
type Directive struct {
	Origin, Target string
	Interval       time.Duration
	Reason         Reason
	Seq            uint64
}

// Stats are the controller's cumulative decision counters plus the
// allocation state of the latest evaluation.
type Stats struct {
	// Evaluations counts Decide calls; Directives counts emitted cadence
	// changes.
	Evaluations, Directives uint64
	// Tightens counts churn-driven halvings, SilenceTightens the
	// silence-rule drops to MinInterval, FanOuts the shared-device pulls,
	// Backoffs the stability doublings, BudgetClamps the allocator grows.
	Tightens, SilenceTightens, FanOuts, Backoffs, BudgetClamps uint64
	// ProbeRate is the aggregate allocated probe rate (probes/s) after the
	// latest evaluation; BudgetUtilization is ProbeRate over the effective
	// budget cap (zero when unlimited).
	ProbeRate, BudgetUtilization float64
}

// CadenceSummary buckets the current per-stream cadences into the three
// exported edge classes: tight (< base), base (== base), and backoff
// (> base), with the mean interval of each class in microseconds — the
// shape behind the intsched_probe_cadence_us gauges.
type CadenceSummary struct {
	TightStreams, BaseStreams, BackoffStreams int
	TightMicros, BaseMicros, BackoffMicros    float64
}
