package adapt

import (
	"intsched/internal/collector"
	"intsched/internal/probe"
	"intsched/internal/simtime"
)

// SimDriver runs the control loop inside the simulator: a sim-time ticker
// at the controller's evaluation interval reads the collector's stream
// signals, runs Decide, and applies the resulting directives to the probe
// fleet's per-stream tickers. Everything happens on the engine's
// single-threaded event loop, so a fixed seed replays identical controller
// decisions regardless of how the experiment pool schedules scenarios.
type SimDriver struct {
	ctrl    *Controller
	coll    *collector.Collector
	fleet   *probe.Fleet
	ticker  *simtime.Ticker
	applied uint64
}

// NewSimDriver starts the control loop on eng. The first evaluation fires
// after one EvalInterval, so the fleet warms up at its configured static
// cadence.
func NewSimDriver(eng *simtime.Engine, ctrl *Controller, coll *collector.Collector, fleet *probe.Fleet) *SimDriver {
	d := &SimDriver{ctrl: ctrl, coll: coll, fleet: fleet}
	d.ticker = eng.NewTicker(ctrl.Config().EvalInterval, d.tick)
	return d
}

func (d *SimDriver) tick() {
	for _, dir := range d.ctrl.Decide(SignalsFrom(d.coll)) {
		if d.fleet.SetStreamInterval(dir.Origin, dir.Target, dir.Interval) {
			d.applied++
		}
	}
}

// Controller returns the driven controller.
func (d *SimDriver) Controller() *Controller { return d.ctrl }

// Applied returns how many directives reached a fleet prober.
func (d *SimDriver) Applied() uint64 { return d.applied }

// Stop halts the control loop.
func (d *SimDriver) Stop() { d.ticker.Stop() }

// SignalsFrom converts the collector's per-stream signal snapshot into
// controller signals, preserving its (origin, target) sort order.
func SignalsFrom(coll *collector.Collector) []Signal {
	raw := coll.StreamSignals()
	out := make([]Signal, len(raw))
	for i := range raw {
		out[i] = Signal{
			Origin:        raw[i].Origin,
			Target:        raw[i].Target,
			Age:           raw[i].Age,
			Remaps:        raw[i].Remaps,
			Resets:        raw[i].Resets,
			Devices:       raw[i].Devices,
			QueueVar:      raw[i].QueueVar,
			EvictedOnPath: raw[i].EvictedOnPath,
		}
	}
	return out
}
