package adapt

import (
	"sort"
	"time"
)

// streamKey identifies one probe stream, mirroring the collector's
// (origin, target) sequence spaces.
type streamKey struct{ origin, target string }

// streamState is the controller's memory of one stream between
// evaluations.
type streamState struct {
	interval       time.Duration
	remaps, resets uint64
	quiet          int
	seen           bool
}

// Controller applies the cadence rules. Construct with NewController; call
// Decide with the full sorted signal set each evaluation. Not
// goroutine-safe — drivers serialize access.
type Controller struct {
	cfg     Config
	streams map[streamKey]*streamState
	seq     uint64
	stats   Stats
}

// NewController creates a controller with cfg's zero fields defaulted.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), streams: make(map[streamKey]*streamState)}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns the cumulative decision counters.
func (c *Controller) Stats() Stats { return c.stats }

// SetBudget replaces the rate caps before the next evaluation (zero means
// unlimited). The live daemon uses it to re-derive an absolute
// probes-per-second cap from a budget fraction as streams come and go; the
// sim driver never calls it, so scenario budgets stay fixed.
func (c *Controller) SetBudget(probesPerSec, bytesPerSec float64) {
	c.cfg.MaxProbesPerSec = probesPerSec
	c.cfg.MaxBytesPerSec = bytesPerSec
}

// Cadences buckets the tracked streams into the tight/base/backoff edge
// classes. Map iteration order does not matter: the sums are commutative
// over integer nanosecond intervals.
func (c *Controller) Cadences() CadenceSummary {
	var s CadenceSummary
	var tightNs, baseNs, backoffNs int64
	for _, st := range c.streams {
		switch {
		case st.interval < c.cfg.BaseInterval:
			s.TightStreams++
			tightNs += int64(st.interval)
		case st.interval > c.cfg.BaseInterval:
			s.BackoffStreams++
			backoffNs += int64(st.interval)
		default:
			s.BaseStreams++
			baseNs += int64(st.interval)
		}
	}
	if s.TightStreams > 0 {
		s.TightMicros = float64(tightNs) / float64(s.TightStreams) / 1e3
	}
	if s.BaseStreams > 0 {
		s.BaseMicros = float64(baseNs) / float64(s.BaseStreams) / 1e3
	}
	if s.BackoffStreams > 0 {
		s.BackoffMicros = float64(backoffNs) / float64(s.BackoffStreams) / 1e3
	}
	return s
}

// budgetCap returns the effective probes-per-second ceiling, or 0 when
// unlimited.
func (c *Controller) budgetCap() float64 {
	cap := c.cfg.MaxProbesPerSec
	if c.cfg.MaxBytesPerSec > 0 {
		byCap := c.cfg.MaxBytesPerSec / float64(c.cfg.BytesPerProbe)
		if cap <= 0 || byCap < cap {
			cap = byCap
		}
	}
	return cap
}

func (c *Controller) clamp(d time.Duration) time.Duration {
	if d < c.cfg.MinInterval {
		return c.cfg.MinInterval
	}
	if d > c.cfg.MaxInterval {
		return c.cfg.MaxInterval
	}
	return d
}

// pending is one stream's provisional decision before the fan-out and
// budget passes.
type pending struct {
	sig     *Signal
	st      *streamState
	desired time.Duration
	reason  Reason
	churn   bool
}

// prio orders streams for the budget allocator: lower values grow first.
// Backed-off streams are the cheapest to slow further, base-cadence
// streams next, fan-out pulls after that; churn- and silence-tightened
// streams are slowed only when nothing else fits.
func (p *pending) prio() int {
	switch p.reason {
	case ReasonSilence, ReasonTighten:
		return 3
	case ReasonFanOut:
		return 2
	case ReasonBackoff:
		return 0
	default:
		return 1
	}
}

// Decide runs one evaluation over the full signal set (sorted by origin,
// target — collector.StreamSignals' order) and returns the cadence
// directives for every stream whose interval changed. State for streams
// absent from sigs is forgotten.
func (c *Controller) Decide(sigs []Signal) []Directive {
	c.stats.Evaluations++
	for _, st := range c.streams {
		st.seen = false
	}

	pend := make([]pending, 0, len(sigs))
	churnDevs := make(map[string]bool)
	for i := range sigs {
		sig := &sigs[i]
		key := streamKey{sig.Origin, sig.Target}
		st := c.streams[key]
		if st == nil {
			st = &streamState{interval: c.cfg.BaseInterval, remaps: sig.Remaps, resets: sig.Resets}
			c.streams[key] = st
		}
		st.seen = true

		dRemaps := sig.Remaps - st.remaps
		dResets := sig.Resets - st.resets
		if sig.Remaps < st.remaps || sig.Resets < st.resets {
			// The stream restarted (counters went backwards); treat the
			// new counters as a fresh baseline, not as churn.
			dRemaps, dResets = 0, 0
		}
		st.remaps, st.resets = sig.Remaps, sig.Resets

		cur := st.interval
		churn := dRemaps+dResets > 0 || sig.EvictedOnPath > 0 || sig.QueueVar >= c.cfg.QueueVarThreshold
		silent := sig.Age > time.Duration(c.cfg.SilenceIntervals)*cur

		p := pending{sig: sig, st: st, desired: cur, churn: churn || silent}
		switch {
		case silent:
			// Probes stopped arriving: tighten to the floor so adjacency
			// aging sees the earliest possible re-confirmation or gets to
			// evict on schedule. Never back off a silent stream.
			p.desired = c.cfg.MinInterval
			p.reason = ReasonSilence
			st.quiet = 0
		case churn:
			p.desired = c.clamp(cur / 2)
			p.reason = ReasonTighten
			st.quiet = 0
		default:
			st.quiet++
			if st.quiet >= c.cfg.StableRounds {
				st.quiet = 0
				if next := c.clamp(cur * 2); next != cur {
					p.desired = next
					p.reason = ReasonBackoff
				}
			}
		}
		if p.churn {
			for _, d := range sig.Devices {
				churnDevs[d] = true
			}
		}
		pend = append(pend, p)
	}

	// Fan-out pass: a quiet stream sharing a device with a churning path
	// must not sit above the base cadence — the churn may be about to
	// spill onto its edges.
	if len(churnDevs) > 0 {
		for i := range pend {
			p := &pend[i]
			if p.churn || p.desired <= c.cfg.BaseInterval {
				continue
			}
			shared := false
			for _, d := range p.sig.Devices {
				if churnDevs[d] {
					shared = true
					break
				}
			}
			if shared {
				p.desired = c.cfg.BaseInterval
				p.reason = ReasonFanOut
				p.st.quiet = 0
			}
		}
	}

	// Budget pass: grow the lowest-priority intervals, in deterministic
	// (priority, origin, target) order, until the aggregate rate fits.
	rate := 0.0
	for i := range pend {
		rate += 1 / pend[i].desired.Seconds()
	}
	if cap := c.budgetCap(); cap > 0 && len(pend) > 0 {
		order := make([]int, len(pend))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			pa, pb := &pend[order[a]], &pend[order[b]]
			if pa.prio() != pb.prio() {
				return pa.prio() < pb.prio()
			}
			if pa.sig.Origin != pb.sig.Origin {
				return pa.sig.Origin < pb.sig.Origin
			}
			return pa.sig.Target < pb.sig.Target
		})
		for rate > cap {
			grew := false
			for _, i := range order {
				if rate <= cap {
					break
				}
				p := &pend[i]
				if p.desired >= c.cfg.MaxInterval {
					continue
				}
				old := 1 / p.desired.Seconds()
				p.desired = c.clamp(p.desired * 2)
				p.reason = ReasonBudget
				rate += 1/p.desired.Seconds() - old
				grew = true
			}
			if !grew {
				break
			}
		}
	}
	c.stats.ProbeRate = rate
	if cap := c.budgetCap(); cap > 0 {
		c.stats.BudgetUtilization = rate / cap
	} else {
		c.stats.BudgetUtilization = 0
	}

	// Emit directives for changed intervals, in signal (sorted) order.
	var out []Directive
	for i := range pend {
		p := &pend[i]
		if p.desired == p.st.interval {
			continue
		}
		p.st.interval = p.desired
		c.seq++
		out = append(out, Directive{
			Origin:   p.sig.Origin,
			Target:   p.sig.Target,
			Interval: p.desired,
			Reason:   p.reason,
			Seq:      c.seq,
		})
		c.stats.Directives++
		switch p.reason {
		case ReasonTighten:
			c.stats.Tightens++
		case ReasonSilence:
			c.stats.SilenceTightens++
		case ReasonFanOut:
			c.stats.FanOuts++
		case ReasonBackoff:
			c.stats.Backoffs++
		case ReasonBudget:
			c.stats.BudgetClamps++
		}
	}

	for key, st := range c.streams {
		if !st.seen {
			delete(c.streams, key)
		}
	}
	return out
}
