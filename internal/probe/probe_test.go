package probe

import (
	"testing"
	"time"

	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
)

func buildStar(t *testing.T) (*netsim.Network, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddSwitch("s1")
	for _, h := range []netsim.NodeID{"n1", "n2", "sched"} {
		n.AddHost(h)
		if _, err := n.Connect(h, "s1", netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	dataplane.AttachINT(n, dataplane.INTConfig{})
	return n, e
}

func TestProberEmitsAtInterval(t *testing.T) {
	n, e := buildStar(t)
	var got []*telemetry.ProbePayload
	n.Node("sched").Handler = func(p *netsim.Packet) {
		if p.Kind == netsim.KindProbe {
			got = append(got, p.Probe)
		}
	}
	p := NewProber(n, "n1", "sched", 100*time.Millisecond)
	e.Run(time.Second)
	p.Stop()
	if p.Sent != 10 {
		t.Fatalf("sent %d probes in 1s at 100ms, want 10", p.Sent)
	}
	if len(got) < 9 {
		t.Fatalf("delivered %d probes", len(got))
	}
	// Sequence numbers increase; origin is stamped.
	for i, pp := range got {
		if pp.Origin != "n1" {
			t.Fatalf("origin %q", pp.Origin)
		}
		if pp.Seq != uint64(i+1) {
			t.Fatalf("seq %d at index %d", pp.Seq, i)
		}
		if len(pp.Stack.Records) != 1 || pp.Stack.Records[0].Device != "s1" {
			t.Fatalf("INT stack %v", pp.Stack.Path())
		}
	}
}

func TestProberDefaultInterval(t *testing.T) {
	n, _ := buildStar(t)
	p := NewProber(n, "n1", "sched", 0)
	if p.Interval() != DefaultInterval {
		t.Fatalf("interval %v", p.Interval())
	}
	p.SetInterval(0)
	if p.Interval() != DefaultInterval {
		t.Fatalf("reset interval %v", p.Interval())
	}
}

func TestProberSetInterval(t *testing.T) {
	n, e := buildStar(t)
	p := NewProber(n, "n1", "sched", 100*time.Millisecond)
	e.Run(time.Second) // 10 probes
	p.SetInterval(time.Second)
	e.Run(4 * time.Second) // 3 more
	p.Stop()
	if p.Sent != 13 {
		t.Fatalf("sent %d, want 13", p.Sent)
	}
}

func TestFleetSkipsCollector(t *testing.T) {
	n, e := buildStar(t)
	f := NewFleet(n, []netsim.NodeID{"n1", "n2", "sched"}, "sched", 100*time.Millisecond)
	if len(f.Probers()) != 2 {
		t.Fatalf("fleet size %d, want 2 (collector excluded)", len(f.Probers()))
	}
	e.Run(time.Second)
	if f.TotalSent() != 20 {
		t.Fatalf("total sent %d", f.TotalSent())
	}
	f.SetInterval(time.Second)
	for _, p := range f.Probers() {
		if p.Interval() != time.Second {
			t.Fatal("fleet SetInterval not applied")
		}
	}
	f.Stop()
	before := f.TotalSent()
	e.Run(5 * time.Second)
	if f.TotalSent() != before {
		t.Fatal("fleet kept probing after Stop")
	}
}

func TestFleetSetStreamInterval(t *testing.T) {
	n, e := buildStar(t)
	f := NewFleet(n, []netsim.NodeID{"n1", "n2", "sched"}, "sched", 100*time.Millisecond)
	defer f.Stop()
	// Directives address one (origin, target) stream; the rest of the
	// fleet keeps its cadence.
	if !f.SetStreamInterval("n1", "sched", 500*time.Millisecond) {
		t.Fatal("SetStreamInterval rejected a known stream")
	}
	if iv, ok := f.StreamInterval("n1", "sched"); !ok || iv != 500*time.Millisecond {
		t.Fatalf("stream interval %v/%v after directive", iv, ok)
	}
	if iv, ok := f.StreamInterval("n2", "sched"); !ok || iv != 100*time.Millisecond {
		t.Fatalf("untargeted stream moved to %v/%v", iv, ok)
	}
	// Unknown streams are reported, not invented.
	if f.SetStreamInterval("n9", "sched", time.Second) {
		t.Fatal("SetStreamInterval accepted an unknown origin")
	}
	if _, ok := f.StreamInterval("n1", "elsewhere"); ok {
		t.Fatal("StreamInterval reported an unknown target")
	}
	// The directive changes the emission rate, not just the accessor.
	e.Run(time.Second)
	var n1, n2 uint64
	for _, p := range f.Probers() {
		switch p.Origin() {
		case "n1":
			n1 = p.Sent
		case "n2":
			n2 = p.Sent
		}
	}
	if n2 != 10 {
		t.Fatalf("n2 sent %d probes in 1s at 100ms, want 10", n2)
	}
	if n1 != 2 {
		t.Fatalf("n1 sent %d probes in 1s at 500ms, want 2", n1)
	}
}

func TestProbePacketsAreFixedSize(t *testing.T) {
	n, e := buildStar(t)
	n.Node("sched").Handler = func(p *netsim.Packet) {
		if p.Size != telemetry.ProbePacketSize {
			t.Fatalf("probe size %d, want %d", p.Size, telemetry.ProbePacketSize)
		}
	}
	NewProber(n, "n1", "sched", 100*time.Millisecond)
	e.Run(500 * time.Millisecond)
}
