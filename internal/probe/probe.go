// Package probe implements the INT probing subsystem: each edge server
// periodically emits a Geneve-marked, MTU-sized probe packet toward the
// scheduler. As a probe traverses the network, every switch's dataplane
// flushes its telemetry registers into the probe's INT stack (see the
// dataplane package); the scheduler's collector parses the arriving probes.
//
// The paper's default probing interval is 100 ms; Fig 9 sweeps the interval
// up to 30 s (a typical SNMP cadence) to quantify how telemetry freshness
// affects scheduling quality.
package probe

import (
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
)

// DefaultInterval is the paper's probing period.
const DefaultInterval = 100 * time.Millisecond

// Prober periodically emits probe packets from one host toward a collector
// host.
type Prober struct {
	net       *netsim.Network
	origin    netsim.NodeID
	collector netsim.NodeID
	ticker    *simtime.Ticker
	interval  time.Duration

	seq        uint64
	mode       telemetry.Mode
	sampleRate uint16
	// Sent counts emitted probes.
	Sent uint64
}

// NewProber creates and starts a prober from origin to collector with the
// given interval (DefaultInterval when zero). The first probe is emitted
// after one interval, mirroring a periodic cron-style sender.
func NewProber(nw *netsim.Network, origin, collector netsim.NodeID, interval time.Duration) *Prober {
	if interval <= 0 {
		interval = DefaultInterval
	}
	p := &Prober{net: nw, origin: origin, collector: collector, interval: interval}
	p.ticker = nw.Engine().NewTicker(interval, p.emit)
	return p
}

// Origin returns the probing host.
func (p *Prober) Origin() netsim.NodeID { return p.origin }

// Target returns the host the prober sends toward — the stream's target in
// the collector's (origin, target) keying.
func (p *Prober) Target() netsim.NodeID { return p.collector }

// Interval returns the current probing period.
func (p *Prober) Interval() time.Duration { return p.interval }

// SetInterval changes the probing period.
func (p *Prober) SetInterval(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	p.interval = interval
	p.ticker.SetPeriod(interval)
}

// SetTelemetry selects the telemetry mode and per-hop sampling rate stamped
// into emitted probe headers. Switches honor the header, so a mixed fleet
// (some probers deterministic, some probabilistic) shares one fabric.
func (p *Prober) SetTelemetry(mode telemetry.Mode, rate uint16) {
	p.mode = mode
	p.sampleRate = rate
}

// Stop halts the prober.
func (p *Prober) Stop() { p.ticker.Stop() }

// emit sends one probe packet.
func (p *Prober) emit() {
	p.seq++
	pkt := p.net.NewPacket(netsim.KindProbe, p.origin, p.collector, telemetry.ProbePacketSize)
	pkt.Probe = &telemetry.ProbePayload{
		Origin:     string(p.origin),
		Target:     string(p.collector),
		Seq:        p.seq,
		SentAt:     p.net.Now(),
		Mode:       p.mode,
		SampleRate: p.sampleRate,
	}
	p.Sent++
	_ = p.net.Send(pkt)
}

// Fleet manages the probers of all edge servers in an experiment so their
// interval can be swept together (Fig 9).
type Fleet struct {
	probers []*Prober
}

// NewFleet starts one prober per origin toward collector. Origins equal to
// the collector itself are skipped (the scheduler does not probe itself).
func NewFleet(nw *netsim.Network, origins []netsim.NodeID, collector netsim.NodeID, interval time.Duration) *Fleet {
	f := &Fleet{}
	for _, o := range origins {
		if o == collector {
			continue
		}
		f.probers = append(f.probers, NewProber(nw, o, collector, interval))
	}
	return f
}

// Probers returns the managed probers.
func (f *Fleet) Probers() []*Prober { return f.probers }

// SetInterval updates every prober's period.
func (f *Fleet) SetInterval(interval time.Duration) {
	for _, p := range f.probers {
		p.SetInterval(interval)
	}
}

// SetStreamInterval updates the period of the single prober matching the
// (origin, target) stream key, reporting whether one was found — the
// application point for adaptive cadence directives. The fleet is small
// (one prober per edge host), so a linear scan beats maintaining an index.
func (f *Fleet) SetStreamInterval(origin, target string, interval time.Duration) bool {
	for _, p := range f.probers {
		if string(p.origin) == origin && string(p.collector) == target {
			p.SetInterval(interval)
			return true
		}
	}
	return false
}

// StreamInterval returns the current period of the prober matching the
// (origin, target) stream key, and whether one exists.
func (f *Fleet) StreamInterval(origin, target string) (time.Duration, bool) {
	for _, p := range f.probers {
		if string(p.origin) == origin && string(p.collector) == target {
			return p.interval, true
		}
	}
	return 0, false
}

// SetTelemetry updates every prober's telemetry mode and sampling rate.
func (f *Fleet) SetTelemetry(mode telemetry.Mode, rate uint16) {
	for _, p := range f.probers {
		p.SetTelemetry(mode, rate)
	}
}

// Stop halts every prober.
func (f *Fleet) Stop() {
	for _, p := range f.probers {
		p.Stop()
	}
}

// TotalSent returns the number of probes emitted across the fleet.
func (f *Fleet) TotalSent() uint64 {
	var n uint64
	for _, p := range f.probers {
		n += p.Sent
	}
	return n
}
