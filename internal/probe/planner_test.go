package probe

import (
	"fmt"
	"testing"
	"time"

	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
)

// ringNet builds hosts attached to a ring of switches: h_i on s_i, ring of
// n switches.
func ringNet(t *testing.T, n int) (*netsim.Network, []netsim.NodeID) {
	t.Helper()
	e := simtime.NewEngine()
	nw := netsim.New(e)
	cfg := netsim.LinkConfig{RateBps: 10_000_000, Delay: time.Millisecond}
	var hosts []netsim.NodeID
	for i := 0; i < n; i++ {
		sw := netsim.NodeID(fmt.Sprintf("s%02d", i))
		nw.AddSwitch(sw)
	}
	for i := 0; i < n; i++ {
		a := netsim.NodeID(fmt.Sprintf("s%02d", i))
		b := netsim.NodeID(fmt.Sprintf("s%02d", (i+1)%n))
		if _, err := nw.Connect(a, b, cfg); err != nil {
			t.Fatal(err)
		}
		h := netsim.NodeID(fmt.Sprintf("h%02d", i))
		nw.AddHost(h)
		if _, err := nw.Connect(h, a, cfg); err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return nw, hosts
}

// planEdges returns the set of links covered by the plan's routed paths.
func planEdges(t *testing.T, nw *netsim.Network, plan []Pair) map[[2]string]bool {
	t.Helper()
	covered := map[[2]string]bool{}
	for _, p := range plan {
		path, err := nw.PathBetween(p.Src, p.Dst)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(path); i++ {
			a, b := string(path[i]), string(path[i+1])
			if a > b {
				a, b = b, a
			}
			covered[[2]string{a, b}] = true
		}
	}
	return covered
}

func TestPlanCoverageCoversAllReachableLinks(t *testing.T) {
	nw, hosts := ringNet(t, 8)
	collector := hosts[0]
	plan, blind, err := PlanCoverage(nw.PathBetween, hosts, collector)
	if err != nil {
		t.Fatal(err)
	}
	if len(blind) != 0 {
		t.Fatalf("blind links on a ring: %v", blind)
	}
	covered := planEdges(t, nw, plan)
	for _, l := range nw.Links() {
		a, b := l.Ends()
		sa, sb := string(a), string(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		if !covered[[2]string{sa, sb}] {
			t.Errorf("link %s-%s not covered by plan %v", sa, sb, plan)
		}
	}
}

func TestPlanCoverageIncludesAllCollectorPairs(t *testing.T) {
	nw, hosts := ringNet(t, 6)
	collector := hosts[2]
	plan, _, err := PlanCoverage(nw.PathBetween, hosts, collector)
	if err != nil {
		t.Fatal(err)
	}
	toCollector := map[netsim.NodeID]bool{}
	for _, p := range plan {
		if p.Dst == collector {
			toCollector[p.Src] = true
		}
	}
	for _, h := range hosts {
		if h == collector {
			continue
		}
		if !toCollector[h] {
			t.Errorf("host %s has no probe route to the collector", h)
		}
	}
}

func TestPlanCoverageIsSmall(t *testing.T) {
	nw, hosts := ringNet(t, 8)
	plan, _, err := PlanCoverage(nw.PathBetween, hosts, hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	// 7 mandatory collector pairs + a handful of greedy extras; the full
	// quadratic candidate set is 56 pairs, so the plan should be much
	// smaller.
	if len(plan) > 14 {
		t.Fatalf("plan has %d pairs, expected a small cover", len(plan))
	}
}

func TestPlannedFleetSkipsSelfPairs(t *testing.T) {
	nw, hosts := ringNet(t, 4)
	f := NewPlannedFleet(nw, []Pair{{hosts[0], hosts[1]}, {hosts[2], hosts[2]}}, time.Second)
	if len(f.Probers()) != 1 {
		t.Fatalf("probers %d, want 1", len(f.Probers()))
	}
	f.Stop()
}

func TestInstallRelayForwardsPayload(t *testing.T) {
	nw, hosts := ringNet(t, 4)
	dataplane.AttachINT(nw, dataplane.INTConfig{})
	domain := transport.NewDomain(nw).InstallAll()
	collector := hosts[0]
	sink := hosts[2]

	var relayed any
	domain.Stack(collector).ControlHandler = func(_ netsim.NodeID, payload any) {
		relayed = payload
	}
	InstallRelay(domain.Stack(sink), collector)

	// A probe from hosts[1] targeted at the sink host.
	NewProber(nw, hosts[1], sink, 10*time.Millisecond)
	nw.Engine().Run(200 * time.Millisecond)

	p, ok := relayed.(*telemetry.ProbePayload)
	if !ok || p == nil {
		t.Fatalf("relayed payload %T", relayed)
	}
	if p.Target != string(sink) || p.Origin != string(hosts[1]) {
		t.Fatalf("payload origin=%q target=%q", p.Origin, p.Target)
	}
	if p.LastHopLatency <= 0 {
		t.Fatal("relay did not measure the final hop latency")
	}
}
