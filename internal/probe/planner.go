package probe

import (
	"fmt"
	"sort"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/transport"
)

// Pair is one planned probe route: Src periodically probes toward Dst.
// When Dst is not the collector, Dst relays arriving probe payloads to the
// collector (see InstallRelay).
type Pair struct {
	Src, Dst netsim.NodeID
}

// PathFunc returns the routed node sequence between two hosts (endpoints
// included). The planner treats it as ground truth; in deployment it can
// come from the operator's topology database or the collector's learned
// topology.
type PathFunc func(src, dst netsim.NodeID) ([]netsim.NodeID, error)

// PlanCoverage implements the paper's probe-route-optimization future work:
// it selects a small set of probe pairs whose routed paths visit every link
// reachable by any host pair. Host→collector pairs are always included
// (they bootstrap host-attachment learning and serve the base telemetry
// feed); remaining links are covered greedily (classic set cover), always
// choosing the pair that covers the most still-uncovered links.
//
// Links that lie on no host-pair route are unreachable by probing and are
// reported in the second return value so operators can see the residual
// blind spots.
func PlanCoverage(paths PathFunc, hosts []netsim.NodeID, collector netsim.NodeID) ([]Pair, []string, error) {
	type edge [2]string
	canonical := func(a, b netsim.NodeID) edge {
		if a > b {
			a, b = b, a
		}
		return edge{string(a), string(b)}
	}
	pathEdges := func(src, dst netsim.NodeID) (map[edge]bool, error) {
		p, err := paths(src, dst)
		if err != nil {
			return nil, err
		}
		out := make(map[edge]bool, len(p))
		for i := 0; i+1 < len(p); i++ {
			out[canonical(p[i], p[i+1])] = true
		}
		return out, nil
	}

	// Universe: every link on any host-pair path.
	universe := make(map[edge]bool)
	type candidate struct {
		pair  Pair
		edges map[edge]bool
	}
	var candidates []candidate
	sorted := append([]netsim.NodeID(nil), hosts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, a := range sorted {
		for _, b := range sorted {
			if a == b {
				continue
			}
			es, err := pathEdges(a, b)
			if err != nil {
				return nil, nil, fmt.Errorf("probe: planning %s->%s: %w", a, b, err)
			}
			for e := range es {
				universe[e] = true
			}
			candidates = append(candidates, candidate{Pair{a, b}, es})
		}
	}

	covered := make(map[edge]bool)
	var plan []Pair
	take := func(c candidate) {
		plan = append(plan, c.pair)
		for e := range c.edges {
			covered[e] = true
		}
	}
	// Mandatory: every host probes the collector.
	for _, c := range candidates {
		if c.pair.Dst == collector {
			take(c)
		}
	}
	// Greedy set cover for the rest.
	for len(covered) < len(universe) {
		best, bestGain := -1, 0
		for i, c := range candidates {
			gain := 0
			for e := range c.edges {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // remaining links unreachable by any candidate
		}
		take(candidates[best])
	}

	var blind []string
	for e := range universe {
		if !covered[e] {
			blind = append(blind, e[0]+"-"+e[1])
		}
	}
	sort.Strings(blind)
	return plan, blind, nil
}

// NewPlannedFleet starts one prober per planned pair. Pairs whose source is
// the collector itself are allowed (the scheduler can probe outward to
// cover its local links; the far host relays the telemetry back).
func NewPlannedFleet(nw *netsim.Network, pairs []Pair, interval time.Duration) *Fleet {
	f := &Fleet{}
	for _, p := range pairs {
		if p.Src == p.Dst {
			continue
		}
		f.probers = append(f.probers, NewProber(nw, p.Src, p.Dst, interval))
	}
	return f
}

// InstallRelay makes a host a probe sink: probes addressed to it get their
// final-hop latency measured (extracting the last device's egress
// timestamp) and their payload relayed to the collector as a control
// message of the same wire size — the INT-sink → monitoring-engine export
// found in real INT deployments.
func InstallRelay(stack *transport.Stack, collector netsim.NodeID) {
	stack.ProbeHandler = func(pkt *netsim.Packet) {
		p := pkt.Probe
		if p == nil {
			return
		}
		p.Target = string(stack.Host())
		if n := len(p.Stack.Records); n > 0 {
			last := &p.Stack.Records[n-1]
			if lat := stack.Engine().Now() - last.EgressTS; lat > 0 {
				p.LastHopLatency = lat
			}
		}
		stack.SendControl(collector, pkt.Size, p)
	}
}
