package dataplane

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterArrayBasics(t *testing.T) {
	r := NewRegisterArray("q", 4)
	if r.Name() != "q" || r.Size() != 4 {
		t.Fatalf("name=%q size=%d", r.Name(), r.Size())
	}
	r.Write(1, 7)
	if r.Read(1) != 7 {
		t.Fatal("write/read failed")
	}
	if r.Read(0) != 0 {
		t.Fatal("fresh cell not zero")
	}
}

func TestRegisterMaxSemantics(t *testing.T) {
	r := NewRegisterArray("q", 1)
	if got := r.Max(0, 5); got != 5 {
		t.Fatalf("max=%d", got)
	}
	if got := r.Max(0, 3); got != 5 {
		t.Fatalf("smaller value overwrote: %d", got)
	}
	if got := r.Max(0, 9); got != 9 {
		t.Fatalf("larger value ignored: %d", got)
	}
}

func TestRegisterSwapFlushes(t *testing.T) {
	r := NewRegisterArray("q", 1)
	r.Write(0, 42)
	if old := r.Swap(0, 0); old != 42 {
		t.Fatalf("swap returned %d", old)
	}
	if r.Read(0) != 0 {
		t.Fatal("swap did not reset")
	}
}

func TestRegisterAddAndReset(t *testing.T) {
	r := NewRegisterArray("c", 2)
	r.Add(0, 3)
	r.Add(0, 4)
	r.Add(1, -2)
	if r.Read(0) != 7 || r.Read(1) != -2 {
		t.Fatalf("adds wrong: %v", r.Snapshot())
	}
	r.Reset()
	for i, v := range r.Snapshot() {
		if v != 0 {
			t.Fatalf("cell %d not reset: %d", i, v)
		}
	}
}

func TestRegisterConcurrentMax(t *testing.T) {
	// The register file backs the live soft switch too, so it must be
	// race-safe; the final value must be the true maximum.
	r := NewRegisterArray("q", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Max(0, int64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if r.Read(0) != 7999 {
		t.Fatalf("concurrent max = %d, want 7999", r.Read(0))
	}
}

func TestRegisterInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero size did not panic")
		}
	}()
	NewRegisterArray("bad", 0)
}

func TestRegisterFileDeclareIdempotent(t *testing.T) {
	f := NewRegisterFile()
	a := f.Declare("x", 3)
	b := f.Declare("x", 3)
	if a != b {
		t.Fatal("redeclare returned a different array")
	}
	if f.Get("x") != a {
		t.Fatal("Get returned wrong array")
	}
	if f.Get("missing") != nil {
		t.Fatal("Get invented an array")
	}
	if len(f.Names()) != 1 {
		t.Fatalf("names %v", f.Names())
	}
}

func TestRegisterFileRedeclareSizeMismatchPanics(t *testing.T) {
	f := NewRegisterFile()
	f.Declare("x", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	f.Declare("x", 4)
}

func TestRegisterMaxIsIdempotentProperty(t *testing.T) {
	// Property: after any sequence of Max ops the cell equals the max of
	// all submitted values (and zero's initial value).
	f := func(vals []int64) bool {
		r := NewRegisterArray("q", 1)
		want := int64(0)
		for _, v := range vals {
			r.Max(0, v)
			if v > want {
				want = v
			}
		}
		return r.Read(0) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
