package dataplane

import "testing"

func TestTableExactMatch(t *testing.T) {
	tb := NewTable("fwd", MatchExact)
	var gotPort int64 = -1
	tb.RegisterAction("forward", func(params []int64) { gotPort = params[0] })
	if err := tb.Insert("h2", "forward", 3); err != nil {
		t.Fatal(err)
	}
	if !tb.Apply("h2") {
		t.Fatal("miss on installed key")
	}
	if gotPort != 3 {
		t.Fatalf("action param %d", gotPort)
	}
	if tb.Apply("h9") {
		t.Fatal("hit on missing key with no default")
	}
	hits, misses := tb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestTableDefaultAction(t *testing.T) {
	tb := NewTable("fwd", MatchExact)
	dropped := false
	tb.RegisterAction("drop", func([]int64) { dropped = true })
	if err := tb.SetDefault("drop"); err != nil {
		t.Fatal(err)
	}
	if !tb.Apply("anything") {
		t.Fatal("default action did not run")
	}
	if !dropped {
		t.Fatal("default action body not executed")
	}
}

func TestTableUnknownActionRejected(t *testing.T) {
	tb := NewTable("fwd", MatchExact)
	if err := tb.Insert("k", "nope"); err == nil {
		t.Error("insert with unknown action accepted")
	}
	if err := tb.SetDefault("nope"); err == nil {
		t.Error("default with unknown action accepted")
	}
}

func TestTableDeleteAndKeys(t *testing.T) {
	tb := NewTable("fwd", MatchExact)
	tb.RegisterAction("a", func([]int64) {})
	_ = tb.Insert("k2", "a")
	_ = tb.Insert("k1", "a")
	keys := tb.Keys()
	if len(keys) != 2 || keys[0] != "k1" || keys[1] != "k2" {
		t.Fatalf("keys %v", keys)
	}
	tb.Delete("k1")
	tb.Delete("k1") // idempotent
	if len(tb.Keys()) != 1 {
		t.Fatal("delete failed")
	}
}

func TestTableLPM(t *testing.T) {
	tb := NewTable("routes", MatchLPM)
	tb.RegisterAction("via", func([]int64) {})
	_ = tb.Insert("rack1", "via", 1)
	_ = tb.Insert("rack1/row2", "via", 2)
	action, params, ok := tb.Lookup("rack1/row2/h3")
	if !ok || action != "via" || params[0] != 2 {
		t.Fatalf("LPM picked %s %v %v, want longest prefix", action, params, ok)
	}
	_, params, ok = tb.Lookup("rack1/row9")
	if !ok || params[0] != 1 {
		t.Fatalf("LPM fallback wrong: %v %v", params, ok)
	}
	if _, _, ok := tb.Lookup("rack9"); ok {
		t.Fatal("LPM matched unrelated key")
	}
	// Exact key also matches.
	if _, params, ok := tb.Lookup("rack1"); !ok || params[0] != 1 {
		t.Fatal("LPM exact-equal failed")
	}
	// Prefix must end on a '/' boundary.
	if _, _, ok := tb.Lookup("rack12"); ok {
		t.Fatal("LPM matched mid-segment prefix")
	}
}

func TestTableLookupDefault(t *testing.T) {
	tb := NewTable("t", MatchExact)
	tb.RegisterAction("d", func([]int64) {})
	if _, _, ok := tb.Lookup("x"); ok {
		t.Fatal("lookup hit with no entries and no default")
	}
	_ = tb.SetDefault("d", 7)
	action, params, ok := tb.Lookup("x")
	if !ok || action != "d" || params[0] != 7 {
		t.Fatalf("default lookup %s %v %v", action, params, ok)
	}
}
