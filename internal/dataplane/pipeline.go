package dataplane

import (
	"math"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/pint"
	"intsched/internal/telemetry"
)

// Headers is the parsed representation of a packet, produced by a Program's
// Parse stage and consumed by the control stages — the P4 "headers" struct.
type Headers struct {
	// Kind is the packet's demultiplexing tag.
	Kind netsim.PacketKind
	// Src and Dst are the endpoint host IDs.
	Src, Dst netsim.NodeID
	// IsProbe reports whether the Geneve-style probe marker was parsed.
	IsProbe bool
	// Probe is the INT payload for probe packets (nil otherwise).
	Probe *telemetry.ProbePayload
}

// Program is a four-stage P4-style packet program. The Pipeline adaptor runs
// Parse and Deparse around the control stages so a Program matches the
// paper's Parser / Ingress Control Flow / Egress Control Flow / Deparser
// structure.
type Program interface {
	// Parse extracts headers from the packet (the Parser block).
	Parse(pkt *netsim.Packet) Headers
	// IngressControl runs after the forwarding decision, before the packet
	// is enqueued on the egress port.
	IngressControl(ctx *netsim.ProcessorContext, hdrs *Headers, pkt *netsim.Packet)
	// EgressControl runs when the packet reaches the head of the egress
	// queue and begins transmission.
	EgressControl(ctx *netsim.ProcessorContext, hdrs *Headers, pkt *netsim.Packet)
	// Deparse reassembles the packet after processing (the Deparser block).
	Deparse(hdrs *Headers, pkt *netsim.Packet)
}

// Pipeline adapts a Program to netsim.Processor, invoking the parser and
// deparser around each control stage.
type Pipeline struct {
	program Program

	// Stats
	IngressPackets uint64
	EgressPackets  uint64
	ProbePackets   uint64
}

// NewPipeline wraps program for attachment to a switch.
func NewPipeline(program Program) *Pipeline {
	return &Pipeline{program: program}
}

// Program returns the wrapped program.
func (p *Pipeline) Program() Program { return p.program }

// Ingress implements netsim.Processor.
func (p *Pipeline) Ingress(ctx *netsim.ProcessorContext, pkt *netsim.Packet) {
	p.IngressPackets++
	hdrs := p.program.Parse(pkt)
	if hdrs.IsProbe {
		p.ProbePackets++
	}
	p.program.IngressControl(ctx, &hdrs, pkt)
	p.program.Deparse(&hdrs, pkt)
}

// Egress implements netsim.Processor.
func (p *Pipeline) Egress(ctx *netsim.ProcessorContext, pkt *netsim.Packet) {
	p.EgressPackets++
	hdrs := p.program.Parse(pkt)
	p.program.EgressControl(ctx, &hdrs, pkt)
	p.program.Deparse(&hdrs, pkt)
}

// INTConfig tunes the INT telemetry program.
type INTConfig struct {
	// ClockSkew is added to every timestamp this device writes, modeling
	// imperfect NTP sync between devices. Zero means a perfect clock.
	ClockSkew time.Duration
	// CountProbesInQueueStats includes probe packets themselves in the
	// max-queue register updates. Default false: only production traffic
	// drives congestion registers, matching the paper's iperf-driven
	// measurements.
	CountProbesInQueueStats bool
	// PerPacket switches to classic per-packet INT embedding — the
	// approach the paper argues against: every switch appends a telemetry
	// record to every DATA packet (growing it by PerHopBytes on the
	// wire), and the destination host extracts the stack. Register
	// staging still runs for probes, but in this mode visibility comes
	// from production traffic itself: only paths that carry traffic are
	// observed, and every packet pays the telemetry tax.
	PerPacket bool
	// PerHopBytes is the on-wire growth per traversed switch in
	// per-packet mode (default DefaultPerHopBytes).
	PerHopBytes int
	// Sampler makes the per-hop insertion decision for probes emitted in
	// telemetry.ModeProbabilistic (the PINT-style lightweight mode). The
	// decision is per probe, drawn from the sampler's (switch, flow)
	// stream at the probe's carried SampleRate. Nil falls back to
	// deterministic insertion regardless of probe mode. Deterministic
	// probes never consult the sampler, so mixed fleets coexist on one
	// switch.
	Sampler *pint.Sampler
	// QueueDeltaThreshold, when positive, enables PINT-style value
	// approximation for queue maxima: a port's register is flushed into a
	// record only when its observed value moved by more than the threshold
	// since the port was last reported (unreported ports keep
	// accumulating). Zero reports every port on every record — the
	// deterministic-equivalent setting.
	QueueDeltaThreshold int
}

// DefaultPerHopBytes approximates a classic INT per-hop report: switch ID,
// ports, and queue depth (the paper's example uses two 4-byte fields plus
// the shim).
const DefaultPerHopBytes = 16

// INTProgram is the paper's telemetry program for one switch:
//
//   - On every packet's ingress (after forwarding, before enqueue) it
//     updates the per-egress-port max-queue register with the observed
//     queue occupancy and bumps the per-port packet counter.
//   - On a probe's ingress it extracts the previous device's egress
//     timestamp (before the probe is enqueued, so the measurement excludes
//     local queueing) and computes the arrival link's latency.
//   - On a probe's egress it flushes all port registers into an INT record
//     appended to the probe, resets them, and writes its own egress
//     timestamp for the next hop.
//
// Production packets are never modified, so INT adds zero bytes to regular
// traffic — the register-staging scheme that is the paper's key collection
// idea.
type INTProgram struct {
	deviceID string
	cfg      INTConfig

	regs     *RegisterFile
	maxQueue *RegisterArray // per egress port: max occupancy since flush
	pktCount *RegisterArray // per egress port: packets since flush

	// pendingLink holds, per in-flight probe packet ID, the link latency
	// and ingress port measured at ingress, consumed at egress.
	pendingLink map[uint64]pendingProbe

	// valueApprox filters queue reports by change magnitude when
	// cfg.QueueDeltaThreshold is positive (nil otherwise).
	valueApprox *pint.ValueApprox

	// Stats
	RecordsEmitted uint64
	// RecordsSkipped counts probabilistic-mode probes this device chose not
	// to insert a record into (the hop was still counted and egress-stamped,
	// so link latency stays measured end to end).
	RecordsSkipped uint64
	Flushes        uint64
	// OverheadBytes counts wire bytes added to production packets in
	// per-packet mode (always zero with register staging — the paper's
	// headline collection property).
	OverheadBytes uint64
}

type pendingProbe struct {
	linkLatency time.Duration
	hasLatency  bool
	inPort      int
}

// NewINTProgram creates the telemetry program for a switch with numPorts
// ports.
func NewINTProgram(deviceID string, numPorts int, cfg INTConfig) *INTProgram {
	regs := NewRegisterFile()
	p := &INTProgram{
		deviceID:    deviceID,
		cfg:         cfg,
		regs:        regs,
		maxQueue:    regs.Declare("max_queue", numPorts),
		pktCount:    regs.Declare("pkt_count", numPorts),
		pendingLink: make(map[uint64]pendingProbe),
	}
	if cfg.QueueDeltaThreshold > 0 {
		p.valueApprox = pint.NewValueApprox(cfg.QueueDeltaThreshold)
	}
	return p
}

// Registers exposes the device's register file (for tests and the control
// plane).
func (p *INTProgram) Registers() *RegisterFile { return p.regs }

// localClock returns the device's possibly-skewed clock reading.
func (p *INTProgram) localClock(now time.Duration) time.Duration {
	return now + p.cfg.ClockSkew
}

// Parse implements Program.
func (p *INTProgram) Parse(pkt *netsim.Packet) Headers {
	return Headers{
		Kind:    pkt.Kind,
		Src:     pkt.Src,
		Dst:     pkt.Dst,
		IsProbe: pkt.Kind == netsim.KindProbe && pkt.Probe != nil,
		Probe:   pkt.Probe,
	}
}

// IngressControl implements Program.
func (p *INTProgram) IngressControl(ctx *netsim.ProcessorContext, hdrs *Headers, pkt *netsim.Packet) {
	if !hdrs.IsProbe || p.cfg.CountProbesInQueueStats {
		// Production packet (or probe, if configured to count): update the
		// congestion registers for the chosen egress port.
		p.maxQueue.Max(ctx.OutPort, int64(ctx.QueueLen))
		p.pktCount.Add(ctx.OutPort, 1)
	}
	if p.cfg.PerPacket && (hdrs.Kind == netsim.KindData || hdrs.Kind == netsim.KindDatagram) {
		p.embedPerPacket(ctx, pkt)
	}
	if hdrs.IsProbe {
		// Extract the previous hop's egress timestamp *before* the probe
		// is enqueued so the link-latency measurement excludes our own
		// queueing delay.
		pend := pendingProbe{inPort: ctx.InPort}
		if stamp, ok := pkt.TakeEgressStamp(); ok {
			pend.linkLatency = p.localClock(ctx.Now) - stamp
			if pend.linkLatency < 0 {
				// Clock skew can drive the measurement negative; clamp,
				// as a real implementation must.
				pend.linkLatency = 0
			}
			pend.hasLatency = true
		}
		p.pendingLink[pkt.ID] = pend
	}
}

// EgressControl implements Program.
func (p *INTProgram) EgressControl(ctx *netsim.ProcessorContext, hdrs *Headers, pkt *netsim.Packet) {
	if !hdrs.IsProbe {
		return
	}
	pend := p.pendingLink[pkt.ID]
	delete(p.pendingLink, pkt.ID)

	now := p.localClock(ctx.Now)
	probe := hdrs.Probe

	// Every traversed device counts the hop and stamps egress, sampled or
	// not: the collector then knows the true path length from any probe,
	// and link latency stays measured hop by hop even when the record that
	// would carry it is not inserted until a later probe samples this hop.
	hopIdx := probe.HopCount
	if probe.HopCount < math.MaxUint8 {
		probe.HopCount++
	}

	if p.sampleHop(probe, hdrs) {
		rec := telemetry.Record{
			Device:      p.deviceID,
			HopIndex:    hopIdx,
			IngressPort: pend.inPort,
			EgressPort:  ctx.OutPort,
			HopLatency:  ctx.Now - pkt.IngressAt(),
			EgressTS:    now,
		}
		if pend.hasLatency {
			rec.LinkLatency = pend.linkLatency
		}
		// Flush-and-reset port registers into the record. With value
		// approximation on, a port whose maximum did not move enough is
		// skipped and its register keeps accumulating toward the next
		// report.
		nports := p.maxQueue.Size()
		rec.Queues = make([]telemetry.PortQueue, 0, nports)
		for port := 0; port < nports; port++ {
			if p.valueApprox != nil && !p.valueApprox.ShouldReport(port, p.maxQueue.Read(port)) {
				continue
			}
			mq := p.maxQueue.Swap(port, 0)
			cnt := p.pktCount.Swap(port, 0)
			rec.Queues = append(rec.Queues, telemetry.PortQueue{
				Port:     port,
				MaxQueue: int(mq),
				Packets:  uint32(cnt),
			})
		}
		p.Flushes++
		p.insertRecord(probe, hdrs, rec)
		p.RecordsEmitted++
	} else {
		p.RecordsSkipped++
	}

	// Stamp our egress time for the next hop's link-latency measurement.
	pkt.StampEgress(now)
}

// sampleHop decides whether this device's record goes into the probe.
// Deterministic probes (and probabilistic probes on a switch with no
// sampler) always insert.
func (p *INTProgram) sampleHop(probe *telemetry.ProbePayload, hdrs *Headers) bool {
	if probe.Mode != telemetry.ModeProbabilistic || p.cfg.Sampler == nil {
		return true
	}
	return p.cfg.Sampler.Sample(p.deviceID, probe.Origin, flowTarget(probe, hdrs), probe.SampleRate)
}

// insertRecord places rec into the probe's stack. Probabilistic probes whose
// record budget is already full replace a uniformly chosen earlier record
// (reservoir backstop) instead of appending, so probe size stays O(1) in
// path length; deterministic probes keep the append-with-truncation
// contract.
func (p *INTProgram) insertRecord(probe *telemetry.ProbePayload, hdrs *Headers, rec telemetry.Record) {
	if probe.Mode == telemetry.ModeProbabilistic && p.cfg.Sampler != nil &&
		len(probe.Stack.Records) >= telemetry.MaxRecords {
		slot := p.cfg.Sampler.Slot(p.deviceID, probe.Origin, flowTarget(probe, hdrs), len(probe.Stack.Records))
		probe.Stack.Records[slot] = rec
		return
	}
	probe.Stack.Append(rec)
}

// flowTarget is the flow's stable destination key for sampling streams:
// planned probes carry an explicit relay Target, direct probes leave it
// empty and address the collector in the packet header.
func flowTarget(probe *telemetry.ProbePayload, hdrs *Headers) string {
	if probe.Target != "" {
		return probe.Target
	}
	return string(hdrs.Dst)
}

// embedPerPacket appends a classic INT record to a production packet,
// growing its wire size — the per-packet overhead the paper's register
// staging avoids.
func (p *INTProgram) embedPerPacket(ctx *netsim.ProcessorContext, pkt *netsim.Packet) {
	if pkt.Probe == nil {
		pkt.Probe = &telemetry.ProbePayload{
			Origin: string(pkt.Src),
			Target: string(pkt.Dst),
			Seq:    pkt.ID,
			SentAt: pkt.SentAt,
		}
	}
	pkt.Probe.Stack.Append(telemetry.Record{
		Device:      p.deviceID,
		IngressPort: ctx.InPort,
		EgressPort:  ctx.OutPort,
		Queues: []telemetry.PortQueue{
			{Port: ctx.OutPort, MaxQueue: ctx.QueueLen, Packets: 1},
		},
	})
	perHop := p.cfg.PerHopBytes
	if perHop <= 0 {
		perHop = DefaultPerHopBytes
	}
	pkt.Size += perHop
	p.OverheadBytes += uint64(perHop)
	p.RecordsEmitted++
}

// Deparse implements Program. Probe packets are padded to a fixed MTU-sized
// frame at the origin, so appending records never changes the wire size;
// nothing to reassemble here.
func (p *INTProgram) Deparse(hdrs *Headers, pkt *netsim.Packet) {}

// AttachINT installs an INT pipeline on every switch in the network and
// returns the per-switch programs keyed by node ID.
func AttachINT(net *netsim.Network, cfg INTConfig) map[netsim.NodeID]*INTProgram {
	programs := make(map[netsim.NodeID]*INTProgram)
	for _, id := range net.Switches() {
		sw := net.Node(id)
		prog := NewINTProgram(string(id), len(sw.Ports), cfg)
		sw.Processor = NewPipeline(prog)
		programs[id] = prog
	}
	return programs
}

// PerPacketINTOverhead computes, for the classic per-packet INT embedding
// the paper argues against, the fraction of payload consumed by telemetry
// when each of hops devices appends fields of fieldBytes each to a packet
// of packetBytes. With 2 fields × 4 bytes over 5 switches on a 1000-byte
// packet this reproduces the paper's 4.2% figure (40/960 ≈ 4.2%).
func PerPacketINTOverhead(hops, fields, fieldBytes, packetBytes int) float64 {
	if packetBytes <= 0 {
		return 0
	}
	telemetryBytes := hops * fields * fieldBytes
	if telemetryBytes >= packetBytes {
		return 1
	}
	return float64(telemetryBytes) / float64(packetBytes-telemetryBytes)
}
