package dataplane

import (
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
)

// buildChain returns h1 - s01 - s02 - h2 with INT attached.
func buildChain(t *testing.T, cfg INTConfig) (*netsim.Network, *simtime.Engine, map[netsim.NodeID]*INTProgram) {
	t.Helper()
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s01")
	n.AddSwitch("s02")
	link := netsim.LinkConfig{RateBps: 12_000_000, Delay: 10 * time.Millisecond}
	for _, pair := range [][2]netsim.NodeID{{"h1", "s01"}, {"s01", "s02"}, {"s02", "h2"}} {
		if _, err := n.Connect(pair[0], pair[1], link); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	progs := AttachINT(n, cfg)
	return n, e, progs
}

func sendProbe(n *netsim.Network, src, dst netsim.NodeID) *telemetry.ProbePayload {
	pkt := n.NewPacket(netsim.KindProbe, src, dst, telemetry.ProbePacketSize)
	pkt.Probe = &telemetry.ProbePayload{Origin: string(src), Seq: 1, SentAt: n.Now()}
	_ = n.Send(pkt)
	return pkt.Probe
}

func TestINTProbeCollectsRecordsInPathOrder(t *testing.T) {
	n, e, _ := buildChain(t, INTConfig{})
	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) { got = p.Probe }
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	if got == nil {
		t.Fatal("probe not delivered")
	}
	path := got.Stack.Path()
	if len(path) != 2 || path[0] != "s01" || path[1] != "s02" {
		t.Fatalf("INT path %v, want [s01 s02]", path)
	}
}

func TestINTLinkLatencyMeasurement(t *testing.T) {
	n, e, _ := buildChain(t, INTConfig{})
	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) { got = p.Probe }
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	// Each hop's link latency = serialization (1500B @ 12Mbps = 1ms) +
	// propagation (10ms) = 11ms; the first record measures the host link
	// because hosts stamp outgoing probes.
	for i, rec := range got.Stack.Records {
		if rec.LinkLatency < 10*time.Millisecond || rec.LinkLatency > 12*time.Millisecond {
			t.Errorf("record %d link latency %v, want ≈11ms", i, rec.LinkLatency)
		}
	}
}

func TestINTRegisterStagingAndFlush(t *testing.T) {
	n, e, progs := buildChain(t, INTConfig{})
	// Push data packets through so s01/s02 see queue occupancy.
	for i := 0; i < 20; i++ {
		_ = n.Send(n.NewPacket(netsim.KindData, "h1", "h2", 1500))
	}
	e.RunUntilIdle()

	s01 := progs["s01"]
	maxQ := s01.Registers().Get("max_queue")
	port := n.Node("s01").PortTo("s02")
	if maxQ.Read(port) == 0 {
		t.Fatal("max_queue register not updated by data packets")
	}
	if cnt := s01.Registers().Get("pkt_count").Read(port); cnt != 20 {
		t.Fatalf("pkt_count=%d, want 20", cnt)
	}

	// A probe flushes and resets the registers.
	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) { got = p.Probe }
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	rec := got.Stack.Records[0]
	if q, ok := rec.MaxQueueFor(port); !ok || q == 0 {
		t.Fatalf("probe did not carry flushed queue: %d,%v", q, ok)
	}
	if maxQ.Read(port) != 0 {
		t.Fatal("register not reset after flush")
	}
	if s01.Flushes != 1 || s01.RecordsEmitted != 1 {
		t.Fatalf("flushes=%d records=%d", s01.Flushes, s01.RecordsEmitted)
	}
}

func TestINTProductionPacketsNeverModified(t *testing.T) {
	n, e, _ := buildChain(t, INTConfig{})
	var delivered *netsim.Packet
	n.Node("h2").Handler = func(p *netsim.Packet) { delivered = p }
	pkt := n.NewPacket(netsim.KindData, "h1", "h2", 1500)
	_ = n.Send(pkt)
	e.RunUntilIdle()
	if delivered == nil {
		t.Fatal("not delivered")
	}
	if delivered.Probe != nil {
		t.Fatal("data packet grew a telemetry payload")
	}
	if delivered.Size != 1500 {
		t.Fatalf("data packet size changed: %d", delivered.Size)
	}
	if _, ok := delivered.TakeEgressStamp(); ok {
		t.Fatal("data packet carries an egress stamp")
	}
}

func TestINTProbesExcludedFromQueueStatsByDefault(t *testing.T) {
	n, e, progs := buildChain(t, INTConfig{})
	n.Node("h2").Handler = func(p *netsim.Packet) {}
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	port := n.Node("s01").PortTo("s02")
	if cnt := progs["s01"].Registers().Get("pkt_count").Read(port); cnt != 0 {
		t.Fatalf("probe counted in pkt_count: %d", cnt)
	}
}

func TestINTProbesCountedWhenConfigured(t *testing.T) {
	n, e, progs := buildChain(t, INTConfig{CountProbesInQueueStats: true})
	n.Node("h2").Handler = func(p *netsim.Packet) {}
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	// The probe itself flushed s01's registers at its own egress, so
	// verify via total flush count + register state of s02 (flushed too).
	// Send a second probe and check the first's count got flushed into it.
	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) { got = p.Probe }
	_ = progs
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	rec := got.Stack.Records[0]
	port := n.Node("s01").PortTo("s02")
	var pkts uint32
	for _, q := range rec.Queues {
		if q.Port == port {
			pkts = q.Packets
		}
	}
	if pkts != 1 {
		t.Fatalf("second probe reports %d packets, want 1 (the second probe itself)", pkts)
	}
}

func TestINTClockSkewClampsNegativeLatency(t *testing.T) {
	// Give s02 a clock 30 ms behind: link latency measured at s02 would be
	// 11ms - 30ms < 0 and must clamp to zero rather than go negative.
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s01")
	n.AddSwitch("s02")
	link := netsim.LinkConfig{RateBps: 12_000_000, Delay: 10 * time.Millisecond}
	for _, pair := range [][2]netsim.NodeID{{"h1", "s01"}, {"s01", "s02"}, {"s02", "h2"}} {
		_, _ = n.Connect(pair[0], pair[1], link)
	}
	_ = n.ComputeRoutes()
	s01 := n.Node("s01")
	s01.Processor = NewPipeline(NewINTProgram("s01", len(s01.Ports), INTConfig{}))
	s02 := n.Node("s02")
	s02.Processor = NewPipeline(NewINTProgram("s02", len(s02.Ports), INTConfig{ClockSkew: -30 * time.Millisecond}))

	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) { got = p.Probe }
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	if got.Stack.Records[1].LinkLatency != 0 {
		t.Fatalf("skewed link latency %v, want clamped 0", got.Stack.Records[1].LinkLatency)
	}
}

func TestINTHopLatencyReflectsQueueing(t *testing.T) {
	// Fast host uplink so the burst reaches s01 unsmoothed and queues at
	// the slow switch egress (the paper's bottleneck placement).
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s01")
	n.AddSwitch("s02")
	slow := netsim.LinkConfig{RateBps: 12_000_000, Delay: 10 * time.Millisecond}
	fastUp := netsim.LinkConfig{RateBps: 1_000_000_000, ReverseRateBps: 12_000_000, Delay: 10 * time.Millisecond}
	_, _ = n.Connect("h1", "s01", fastUp)
	_, _ = n.Connect("s01", "s02", slow)
	_, _ = n.Connect("h2", "s02", fastUp)
	_ = n.ComputeRoutes()
	AttachINT(n, INTConfig{})
	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) {
		if p.Kind == netsim.KindProbe {
			got = p.Probe
		}
	}
	// Fill s01's egress queue toward s02, then send the probe behind it.
	for i := 0; i < 10; i++ {
		_ = n.Send(n.NewPacket(netsim.KindData, "h1", "h2", 1500))
	}
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	// The probe queued behind ~9-10 data packets at 1 ms each at s01.
	hop := got.Stack.Records[0].HopLatency
	if hop < 5*time.Millisecond {
		t.Fatalf("hop latency %v, want ≥5ms of queueing", hop)
	}
}

func TestPerPacketModeEmbedsInDataPackets(t *testing.T) {
	n, e, progs := buildChain(t, INTConfig{PerPacket: true})
	var got *netsim.Packet
	n.Node("h2").Handler = func(p *netsim.Packet) { got = p }
	pkt := n.NewPacket(netsim.KindData, "h1", "h2", 1500)
	_ = n.Send(pkt)
	e.RunUntilIdle()
	if got == nil || got.Probe == nil {
		t.Fatal("data packet carries no embedded INT")
	}
	if len(got.Probe.Stack.Records) != 2 {
		t.Fatalf("records %d, want 2 (one per switch)", len(got.Probe.Stack.Records))
	}
	if got.Probe.Origin != "h1" || got.Probe.Target != "h2" {
		t.Fatalf("origin/target %q/%q", got.Probe.Origin, got.Probe.Target)
	}
	// The wire size grew by two per-hop reports.
	if got.Size != 1500+2*DefaultPerHopBytes {
		t.Fatalf("size %d, want %d", got.Size, 1500+2*DefaultPerHopBytes)
	}
	if progs["s01"].OverheadBytes != DefaultPerHopBytes {
		t.Fatalf("s01 overhead %d", progs["s01"].OverheadBytes)
	}
}

func TestPerPacketModeLeavesProbesAlone(t *testing.T) {
	n, e, _ := buildChain(t, INTConfig{PerPacket: true})
	var got *telemetry.ProbePayload
	n.Node("h2").Handler = func(p *netsim.Packet) {
		if p.Kind == netsim.KindProbe {
			got = p.Probe
		}
	}
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	if got == nil || len(got.Stack.Records) != 2 {
		t.Fatal("probes must still work in per-packet mode")
	}
}

func TestPerPacketINTOverheadMatchesPaperExample(t *testing.T) {
	// Paper: two INT fields over five switches consume 4.2% of payload.
	got := PerPacketINTOverhead(5, 2, 4, 1000)
	if got < 0.040 || got > 0.045 {
		t.Fatalf("overhead %.4f, want ≈0.042", got)
	}
	if PerPacketINTOverhead(100, 10, 4, 1000) != 1 {
		t.Fatal("saturated overhead not clamped to 1")
	}
	if PerPacketINTOverhead(1, 1, 1, 0) != 0 {
		t.Fatal("zero packet size not handled")
	}
}

func TestPipelineStats(t *testing.T) {
	n, e, _ := buildChain(t, INTConfig{})
	n.Node("h2").Handler = func(p *netsim.Packet) {}
	_ = n.Send(n.NewPacket(netsim.KindData, "h1", "h2", 1500))
	sendProbe(n, "h1", "h2")
	e.RunUntilIdle()
	pl := n.Node("s01").Processor.(*Pipeline)
	if pl.IngressPackets != 2 || pl.EgressPackets != 2 {
		t.Fatalf("pipeline counters in=%d out=%d", pl.IngressPackets, pl.EgressPackets)
	}
	if pl.ProbePackets != 1 {
		t.Fatalf("probe counter %d", pl.ProbePackets)
	}
	if pl.Program() == nil {
		t.Fatal("program accessor nil")
	}
}
