package dataplane

import (
	"fmt"
	"sort"
	"sync"
)

// MatchKind selects how a table key is matched, mirroring P4 match kinds.
type MatchKind uint8

const (
	// MatchExact requires key equality.
	MatchExact MatchKind = iota
	// MatchLPM performs longest-prefix matching on '/'-separated keys
	// (a stand-in for IP LPM that works on the simulator's string IDs,
	// e.g. "rack1/h3" matches entry "rack1").
	MatchLPM
)

// Action is the code executed on a table hit. It receives the action
// parameters installed with the entry.
type Action func(params []int64)

// entry is one installed table row.
type entry struct {
	key    string
	action string
	params []int64
}

// Table is a match-action table: the control plane installs entries mapping
// keys to named actions; the dataplane applies the table to a key and
// executes the bound action.
type Table struct {
	name  string
	match MatchKind

	mu      sync.Mutex
	actions map[string]Action
	entries map[string]entry
	// defaultAction runs on a miss when set.
	defaultAction string
	defaultParams []int64
	hits, misses  uint64
}

// NewTable creates a table with the given match kind.
func NewTable(name string, match MatchKind) *Table {
	return &Table{
		name:    name,
		match:   match,
		actions: make(map[string]Action),
		entries: make(map[string]entry),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// RegisterAction makes an action available for entries to bind.
func (t *Table) RegisterAction(name string, fn Action) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.actions[name] = fn
}

// Insert installs an entry. The action must have been registered.
func (t *Table) Insert(key, action string, params ...int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.actions[action]; !ok {
		return fmt.Errorf("dataplane: table %s: unknown action %q", t.name, action)
	}
	t.entries[key] = entry{key: key, action: action, params: params}
	return nil
}

// Delete removes an entry; deleting a missing key is a no-op.
func (t *Table) Delete(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, key)
}

// SetDefault sets the action executed on a miss.
func (t *Table) SetDefault(action string, params ...int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.actions[action]; !ok {
		return fmt.Errorf("dataplane: table %s: unknown action %q", t.name, action)
	}
	t.defaultAction = action
	t.defaultParams = params
	return nil
}

// Apply looks up key and executes the matched (or default) action. It
// reports whether any action ran.
func (t *Table) Apply(key string) bool {
	t.mu.Lock()
	e, ok := t.lookupLocked(key)
	var fn Action
	var params []int64
	if ok {
		t.hits++
		fn = t.actions[e.action]
		params = e.params
	} else if t.defaultAction != "" {
		t.misses++
		fn = t.actions[t.defaultAction]
		params = t.defaultParams
		ok = true
	} else {
		t.misses++
	}
	t.mu.Unlock()
	if fn != nil {
		fn(params)
	}
	return ok
}

// Lookup returns the action name and params matched for key.
func (t *Table) Lookup(key string) (action string, params []int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.lookupLocked(key)
	if !ok {
		if t.defaultAction == "" {
			return "", nil, false
		}
		return t.defaultAction, t.defaultParams, true
	}
	return e.action, e.params, true
}

func (t *Table) lookupLocked(key string) (entry, bool) {
	switch t.match {
	case MatchExact:
		e, ok := t.entries[key]
		return e, ok
	case MatchLPM:
		// Longest matching '/'-prefix wins; full key counts as a prefix.
		best, found := entry{}, false
		for k, e := range t.entries {
			if k == key || (len(key) > len(k) && key[:len(k)] == k && key[len(k)] == '/') {
				if !found || len(k) > len(best.key) {
					best, found = e, true
				}
			}
		}
		return best, found
	}
	return entry{}, false
}

// Stats returns hit and miss counters.
func (t *Table) Stats() (hits, misses uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// Keys returns installed keys in sorted order (for tests and dumps).
func (t *Table) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
