// Package dataplane implements a P4-style programmable packet-processing
// pipeline for simulated switches: named register arrays, match-action
// tables, and the four-stage (parser / ingress / egress / deparser)
// program structure described by the paper.
//
// The package's centerpiece is INTProgram, the paper's telemetry program:
// regular packets update per-port registers (max egress-queue occupancy);
// probe packets get the registers flushed into their INT stack at egress
// and reset, so production traffic never carries telemetry bytes.
package dataplane

import (
	"fmt"
	"sync"
)

// RegisterArray is a named array of int64 cells, the P4 register
// abstraction. It is safe for concurrent use so the same implementation can
// back the live (real-socket) soft switch.
type RegisterArray struct {
	name  string
	mu    sync.Mutex
	cells []int64
}

// NewRegisterArray creates an array of size cells initialized to zero.
func NewRegisterArray(name string, size int) *RegisterArray {
	if size <= 0 {
		panic(fmt.Sprintf("dataplane: register array %q size must be positive", name))
	}
	return &RegisterArray{name: name, cells: make([]int64, size)}
}

// Name returns the array's name.
func (r *RegisterArray) Name() string { return r.name }

// Size returns the number of cells.
func (r *RegisterArray) Size() int { return len(r.cells) }

// Read returns the value at index i.
func (r *RegisterArray) Read(i int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cells[i]
}

// Write stores v at index i.
func (r *RegisterArray) Write(i int, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells[i] = v
}

// Max stores v at index i if v is greater than the current value, returning
// the resulting value. This is the paper's "save it to the register if the
// value is larger than all queue length values observed within a probing
// interval" update, done in one step.
func (r *RegisterArray) Max(i int, v int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v > r.cells[i] {
		r.cells[i] = v
	}
	return r.cells[i]
}

// Add increments index i by delta and returns the new value.
func (r *RegisterArray) Add(i int, delta int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells[i] += delta
	return r.cells[i]
}

// Swap stores v at index i and returns the previous value atomically,
// which implements the paper's flush-and-reset in a single operation.
func (r *RegisterArray) Swap(i int, v int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cells[i]
	r.cells[i] = v
	return old
}

// Reset zeroes every cell.
func (r *RegisterArray) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.cells {
		r.cells[i] = 0
	}
}

// Snapshot returns a copy of all cells.
func (r *RegisterArray) Snapshot() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.cells))
	copy(out, r.cells)
	return out
}

// RegisterFile groups a device's register arrays by name.
type RegisterFile struct {
	mu     sync.Mutex
	arrays map[string]*RegisterArray
}

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{arrays: make(map[string]*RegisterArray)}
}

// Declare creates (or returns the existing) array with the given name and
// size. Redeclaring with a different size panics: it is a program bug.
func (f *RegisterFile) Declare(name string, size int) *RegisterArray {
	f.mu.Lock()
	defer f.mu.Unlock()
	if a, ok := f.arrays[name]; ok {
		if a.Size() != size {
			panic(fmt.Sprintf("dataplane: register %q redeclared with size %d (was %d)", name, size, a.Size()))
		}
		return a
	}
	a := NewRegisterArray(name, size)
	f.arrays[name] = a
	return a
}

// Get returns the named array, or nil.
func (f *RegisterFile) Get(name string) *RegisterArray {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.arrays[name]
}

// Names returns the declared array names (unordered).
func (f *RegisterFile) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.arrays))
	for k := range f.arrays {
		out = append(out, k)
	}
	return out
}
