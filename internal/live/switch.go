// Package live is the real-socket deployment of the INT scheduling system:
// userspace soft switches forward UDP overlay datagrams between rate-limited
// egress queues and stamp INT telemetry into probe packets exactly like the
// simulated dataplane; probe agents emit probes from edge servers; the
// collector daemon ingests probes, maintains the learned topology, and
// serves ranking queries over TCP.
//
// This is the "wire the INT collector manually" path: the same telemetry
// model as the simulator, but over real packets, goroutines, and sockets —
// runnable on loopback (see examples/livedemo) or across machines.
package live

import (
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"sync"
	"time"

	"intsched/internal/dataplane"
	"intsched/internal/pint"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// Defaults for soft-switch construction.
const (
	// DefaultRateBps mirrors the paper's effective BMv2 forwarding rate.
	DefaultRateBps int64 = 20_000_000
	// DefaultQueueCap matches the simulator's per-port queue depth.
	DefaultQueueCap = 64
	// maxDatagram bounds received overlay datagrams.
	maxDatagram = 9000
)

// frame is one queued overlay packet with its ingress bookkeeping.
type frame struct {
	d         *wire.Datagram
	size      int
	ingressAt time.Time
	linkLat   time.Duration
	hasLat    bool
	inPort    int
}

// swPort is one egress port: a bounded queue drained at the port rate.
type swPort struct {
	index    int
	neighbor string
	addr     *net.UDPAddr
	ch       chan frame

	// Stats (atomic not needed: single writer per counter).
	mu        sync.Mutex
	txPackets uint64
	drops     uint64

	// Scratch reused by stampProbe, which only ever runs on this port's
	// drain goroutine: decode target, and the encode buffer the outgoing
	// payload points into until the datagram is marshalled for the wire.
	probeScratch telemetry.ProbePayload
	encScratch   []byte
}

// SoftSwitch is a userspace P4-style switch over UDP.
type SoftSwitch struct {
	id   string
	conn *net.UDPConn

	rateBps  int64
	queueCap int

	mu       sync.Mutex
	ports    []*swPort
	routes   map[string]int // dst node -> egress port
	addrPort map[string]int // remote UDP addr -> ingress port index

	regs     *dataplane.RegisterFile
	maxQueue *dataplane.RegisterArray
	pktCount *dataplane.RegisterArray
	sampler  *pint.Sampler

	rxWg    sync.WaitGroup // receive loop
	drainWg sync.WaitGroup // per-port drain goroutines
	closed  chan struct{}
	started bool

	// Drops counts datagrams discarded (no route, TTL, queue full,
	// decode errors).
	Drops uint64
	// Forwarded counts datagrams enqueued for egress.
	Forwarded uint64
}

// NewSoftSwitch binds a UDP socket on addr (use "127.0.0.1:0" for an
// ephemeral port). rateBps and queueCap of zero take the defaults.
func NewSoftSwitch(id, addr string, rateBps int64, queueCap int) (*SoftSwitch, error) {
	if rateBps <= 0 {
		rateBps = DefaultRateBps
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: switch %s: %w", id, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("live: switch %s: %w", id, err)
	}
	regs := dataplane.NewRegisterFile()
	// Per-flow sampling streams for probabilistic (PINT) probes, seeded
	// from the switch id so a restarted switch samples reproducibly. The
	// probe header selects the mode, so a mixed fleet shares one fabric.
	h := fnv.New64a()
	h.Write([]byte(id))
	return &SoftSwitch{
		id:       id,
		conn:     conn,
		rateBps:  rateBps,
		queueCap: queueCap,
		routes:   make(map[string]int),
		addrPort: make(map[string]int),
		regs:     regs,
		sampler:  pint.NewSampler(simtime.NewRand(int64(h.Sum64()))),
		closed:   make(chan struct{}),
	}, nil
}

// ID returns the switch identifier.
func (s *SoftSwitch) ID() string { return s.id }

// Addr returns the switch's bound UDP address.
func (s *SoftSwitch) Addr() string { return s.conn.LocalAddr().String() }

// AddPort attaches an egress port toward neighbor at the given UDP address
// and returns its index. Ports must be added before Start.
func (s *SoftSwitch) AddPort(neighbor, addr string) (int, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return -1, fmt.Errorf("live: switch %s port to %s: %w", s.id, neighbor, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return -1, fmt.Errorf("live: switch %s: AddPort after Start", s.id)
	}
	p := &swPort{
		index:    len(s.ports),
		neighbor: neighbor,
		addr:     udpAddr,
		ch:       make(chan frame, s.queueCap),
	}
	s.ports = append(s.ports, p)
	s.addrPort[udpAddr.String()] = p.index
	return p.index, nil
}

// SetRoute installs dst -> port forwarding.
func (s *SoftSwitch) SetRoute(dst string, port int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port < 0 || port >= len(s.ports) {
		return fmt.Errorf("live: switch %s: route %s via invalid port %d", s.id, dst, port)
	}
	s.routes[dst] = port
	return nil
}

// Start launches the receive loop and per-port drain goroutines.
func (s *SoftSwitch) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	nports := len(s.ports)
	s.maxQueue = s.regs.Declare("max_queue", maxInt(nports, 1))
	s.pktCount = s.regs.Declare("pkt_count", maxInt(nports, 1))
	ports := s.ports
	s.mu.Unlock()

	for _, p := range ports {
		s.drainWg.Add(1)
		go s.drain(p)
	}
	s.rxWg.Add(1)
	go s.receiveLoop()
}

// Close shuts the switch down and waits for its goroutines. The receive
// loop must fully exit before the port channels close (it enqueues into
// them).
func (s *SoftSwitch) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	s.conn.Close()
	s.rxWg.Wait()
	s.mu.Lock()
	for _, p := range s.ports {
		close(p.ch)
	}
	s.mu.Unlock()
	s.drainWg.Wait()
}

// Registers exposes the switch's register file (tests, control plane).
func (s *SoftSwitch) Registers() *dataplane.RegisterFile { return s.regs }

func (s *SoftSwitch) receiveLoop() {
	defer s.rxWg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		d, err := wire.UnmarshalDatagram(buf[:n])
		if err != nil {
			s.Drops++
			continue
		}
		inPort := -1
		if from != nil {
			s.mu.Lock()
			if idx, ok := s.addrPort[from.String()]; ok {
				inPort = idx
			}
			s.mu.Unlock()
		}
		s.handle(d, n, inPort)
	}
}

// handle implements the forwarding + INT ingress pipeline.
func (s *SoftSwitch) handle(d *wire.Datagram, size, inPort int) {
	if d.TTL == 0 {
		s.Drops++
		return
	}
	d.TTL--

	s.mu.Lock()
	portIdx, ok := s.routes[d.Dst]
	var port *swPort
	if ok {
		port = s.ports[portIdx]
	}
	s.mu.Unlock()
	if port == nil {
		s.Drops++
		return
	}

	f := frame{d: d, size: size, ingressAt: time.Now(), inPort: inPort}
	qlen := len(port.ch)
	if d.Kind == wire.KindProbe {
		// Extract the previous hop's egress stamp before enqueueing so
		// the measurement excludes our queueing delay.
		if d.EgressTS > 0 {
			lat := time.Duration(time.Now().UnixNano() - d.EgressTS)
			if lat < 0 {
				lat = 0
			}
			f.linkLat, f.hasLat = lat, true
			d.EgressTS = 0
		}
	} else {
		// Production traffic updates the congestion registers.
		s.maxQueue.Max(port.index, int64(qlen))
		s.pktCount.Add(port.index, 1)
	}

	select {
	case port.ch <- f:
		s.Forwarded++
	default:
		port.mu.Lock()
		port.drops++
		port.mu.Unlock()
		s.Drops++
	}
}

// drain transmits queued frames at the port rate, running INT egress
// processing on probes.
func (s *SoftSwitch) drain(p *swPort) {
	defer s.drainWg.Done()
	for f := range p.ch {
		if f.d.Kind == wire.KindProbe {
			s.stampProbe(p, &f)
			// Re-measure size after the INT record grew the payload.
			f.size = 22 + len(f.d.Src) + len(f.d.Dst) + len(f.d.Payload)
		}
		txTime := time.Duration(float64(f.size*8) / float64(s.rateBps) * float64(time.Second))
		if txTime > 0 {
			timer := time.NewTimer(txTime)
			select {
			case <-timer.C:
			case <-s.closed:
				timer.Stop()
				return
			}
		}
		out, err := f.d.Marshal()
		if err != nil {
			s.Drops++
			continue
		}
		if _, err := s.conn.WriteToUDP(out, p.addr); err != nil {
			return // socket closed
		}
		p.mu.Lock()
		p.txPackets++
		p.mu.Unlock()
	}
}

// stampProbe runs the INT egress stage on a probe — the live twin of the
// simulated dataplane's EgressControl. Every hop claims its index and stamps
// the egress timestamp; whether the registers are flushed into a record
// depends on the probe header's telemetry mode (deterministic: always;
// probabilistic: an independent per-hop sampling draw). The payload is
// re-encoded even when the hop skipped its record, because the hop count
// advanced.
func (s *SoftSwitch) stampProbe(p *swPort, f *frame) {
	payload := &p.probeScratch
	if err := telemetry.UnmarshalProbeInto(payload, f.d.Payload); err != nil {
		return // malformed probe: forward untouched
	}
	now := time.Now()
	hopIdx := payload.HopCount
	if payload.HopCount < math.MaxUint8 {
		payload.HopCount++
	}
	target := payload.Target
	if target == "" {
		target = f.d.Dst
	}
	sampled := payload.Mode != telemetry.ModeProbabilistic ||
		s.sampler.Sample(s.id, payload.Origin, target, payload.SampleRate)
	if sampled {
		recs := payload.Stack.Records
		var rec *telemetry.Record
		switch {
		case len(recs) < telemetry.MaxRecords:
			// Append our record in place, reviving the slice slot (and
			// its queue backing array) a previous probe through this port
			// left in the scratch payload. Every field is overwritten.
			if len(recs) < cap(recs) {
				recs = recs[:len(recs)+1]
			} else {
				recs = append(recs, telemetry.Record{})
			}
			rec = &recs[len(recs)-1]
			payload.Stack.Records = recs
		case payload.Mode == telemetry.ModeProbabilistic:
			// Reservoir backstop: the budget is spent, replace a uniform
			// slot so late hops still surface.
			rec = &recs[s.sampler.Slot(s.id, payload.Origin, target, len(recs))]
		default:
			payload.Stack.Truncated = true
		}
		if rec != nil {
			inPort := f.inPort
			if inPort < 0 {
				inPort = 0 // unknown sender: the wire codec requires a valid port
			}
			rec.Device = s.id
			rec.HopIndex = hopIdx
			rec.IngressPort = inPort
			rec.EgressPort = p.index
			rec.HopLatency = now.Sub(f.ingressAt)
			rec.EgressTS = time.Duration(now.UnixNano())
			rec.LinkLatency = 0
			if f.hasLat {
				rec.LinkLatency = f.linkLat
			}
			n := s.maxQueue.Size()
			queues := rec.Queues[:0]
			for port := 0; port < n; port++ {
				mq := s.maxQueue.Swap(port, 0)
				cnt := s.pktCount.Swap(port, 0)
				queues = append(queues, telemetry.PortQueue{Port: port, MaxQueue: int(mq), Packets: uint32(cnt)})
			}
			rec.Queues = queues
		}
	}
	if encoded, err := telemetry.AppendProbe(p.encScratch[:0], payload); err == nil {
		p.encScratch = encoded
		f.d.Payload = encoded
		f.d.EgressTS = now.UnixNano()
	}
}

// PortStats returns (txPackets, drops) for a port.
func (s *SoftSwitch) PortStats(port int) (tx, drops uint64) {
	s.mu.Lock()
	p := s.ports[port]
	s.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txPackets, p.drops
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
