package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"intsched/internal/obs"
	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// sendRaw delivers one raw datagram to the daemon's probe socket.
func sendRaw(t *testing.T, addr string, buf []byte) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

func marshalDatagram(t *testing.T, d *wire.Datagram) []byte {
	t.Helper()
	buf, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestDaemonBadInputCounted feeds the probe socket every class of malformed
// input and checks that each lands in its own counter instead of being
// silently swallowed.
func TestDaemonBadInputCounted(t *testing.T) {
	d, err := NewCollectorDaemon("sched", DaemonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// 1. Garbage bytes: datagram unmarshal failure.
	sendRaw(t, d.UDPAddr(), []byte{0xde, 0xad, 0xbe, 0xef})
	// 2. Well-formed datagram of a non-probe kind.
	sendRaw(t, d.UDPAddr(), marshalDatagram(t, &wire.Datagram{
		Kind: wire.KindData, TTL: wire.DefaultTTL, Src: "dev", Dst: "sched",
	}))
	// 3. Probe-kind datagram whose INT payload does not decode.
	sendRaw(t, d.UDPAddr(), marshalDatagram(t, &wire.Datagram{
		Kind: wire.KindProbe, TTL: wire.DefaultTTL, Src: "dev", Dst: "sched",
		Payload: []byte{0x01, 0x02},
	}))
	// 4. A valid probe.
	encoded, err := telemetry.MarshalProbe(&telemetry.ProbePayload{Origin: "e1", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	sendRaw(t, d.UDPAddr(), marshalDatagram(t, &wire.Datagram{
		Kind: wire.KindProbe, TTL: wire.DefaultTTL, Src: "e1", Dst: "sched",
		Payload: encoded,
	}))

	waitFor(t, 5*time.Second, func() bool {
		st := d.Stats()
		return st.DatagramErrors == 1 && st.UnexpectedKinds == 1 &&
			st.PayloadErrors == 1 && st.ProbesReceived == 1
	}, "each drop class counted once")
}

// TestDaemonAnswerErrorPaths exercises the query paths that do not produce a
// ranking: unknown metrics, metrics not served live, an empty learned
// topology, and Count truncation of a populated one.
func TestDaemonAnswerErrorPaths(t *testing.T) {
	d, err := NewCollectorDaemon("sched", DaemonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if resp := d.Answer(&wire.QueryRequest{From: "dev", Metric: "bogus"}); !strings.Contains(resp.Error, "unknown metric") {
		t.Fatalf("unknown metric: %+v", resp)
	}
	if resp := d.Answer(&wire.QueryRequest{From: "dev", Metric: "nearest"}); !strings.Contains(resp.Error, "not served live") {
		t.Fatalf("unserved metric: %+v", resp)
	}
	// Empty topology: no error and no usable candidates — only the daemon's
	// own node is known, and it is unreachable without learned paths.
	if resp := d.Answer(&wire.QueryRequest{From: "dev", Metric: "delay"}); resp.Error != "" ||
		len(resp.Candidates) != 1 || resp.Candidates[0].Node != "sched" || resp.Candidates[0].Reachable {
		t.Fatalf("empty topology: %+v", resp)
	}
	// Both rejections were counted.
	var errorsTotal float64
	for _, m := range d.Metrics().Snapshot() {
		if m.Name == "intsched_query_errors_total" {
			errorsTotal = m.Value
		}
	}
	if errorsTotal != 2 {
		t.Fatalf("query errors counted %v, want 2", errorsTotal)
	}

	// Learn three hosts via direct host-to-host probes, then truncate.
	for i, origin := range []string{"e1", "e2", "e3"} {
		encoded, err := telemetry.MarshalProbe(&telemetry.ProbePayload{Origin: origin, Seq: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		payload, err := telemetry.UnmarshalProbe(encoded)
		if err != nil {
			t.Fatal(err)
		}
		d.Collector().HandleProbe(payload)
	}
	full := d.Answer(&wire.QueryRequest{From: "e1", Metric: "delay", Sorted: true})
	if full.Error != "" || len(full.Candidates) != 3 {
		t.Fatalf("full answer: %+v", full)
	}
	truncated := d.Answer(&wire.QueryRequest{From: "e1", Metric: "delay", Sorted: true, Count: 2})
	if truncated.Error != "" || len(truncated.Candidates) != 2 {
		t.Fatalf("truncated answer: %+v", truncated)
	}
	if truncated.Candidates[0] != full.Candidates[0] || truncated.Candidates[1] != full.Candidates[1] {
		t.Fatalf("truncation reordered: %+v vs %+v", truncated.Candidates, full.Candidates)
	}
}

// httpGet fetches a daemon observability URL and returns status and body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestOverlayHealthFlip is the acceptance scenario: a live overlay whose
// /healthz degrades when one edge's probes stop for longer than the
// configured silence threshold (> queue window) and recovers when they
// resume.
func TestOverlayHealthFlip(t *testing.T) {
	spec := chainSpec()
	spec.HTTPAddr = "127.0.0.1:0"
	spec.QueueWindow = 150 * time.Millisecond
	spec.DegradedAfter = 450 * time.Millisecond // 3 windows, well above the 20 ms probe cadence
	o, err := StartOverlay(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	base := "http://" + o.Daemon.HTTPAddr()

	health := func() (int, obs.HealthReport) {
		code, body := httpGet(t, base+"/healthz")
		var rep obs.HealthReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("healthz body %q: %v", body, err)
		}
		return code, rep
	}

	// All agents probing: health settles at ok.
	waitFor(t, 5*time.Second, func() bool {
		code, rep := health()
		return code == http.StatusOK && rep.Status == obs.HealthOK
	}, "healthy overlay")

	// Stop e1's probes: after > DegradedAfter of silence the daemon must
	// flag exactly that edge.
	o.Agents["e1"].SetPaused(true)
	waitFor(t, 5*time.Second, func() bool {
		code, rep := health()
		if code != http.StatusServiceUnavailable || !rep.Degraded() {
			return false
		}
		for _, r := range rep.Reasons {
			if strings.Contains(r, "no probes from edge e1") {
				return true
			}
		}
		return false
	}, "health degraded on e1 probe silence")

	// Resume: the next accepted probe resets e1's stream age and health
	// recovers.
	o.Agents["e1"].SetPaused(false)
	waitFor(t, 5*time.Second, func() bool {
		code, rep := health()
		return code == http.StatusOK && rep.Status == obs.HealthOK
	}, "health recovered after probes resumed")
}

// TestOverlayMetricsEndpoint checks both exposition formats against a live
// overlay.
func TestOverlayMetricsEndpoint(t *testing.T) {
	spec := chainSpec()
	spec.HTTPAddr = "127.0.0.1:0"
	o, err := StartOverlay(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return o.Daemon.Stats().ProbesReceived >= 6
	}, "probes at the daemon")

	code, body := httpGet(t, "http://"+o.Daemon.HTTPAddr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE intsched_probes_received_total counter",
		"intsched_probes_received_total ",
		"intsched_collector_epoch ",
		`intsched_query_latency_seconds_bucket{metric="delay",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	code, body = httpGet(t, "http://"+o.Daemon.HTTPAddr()+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("json metrics status %d", code)
	}
	var series []obs.MetricSnapshot
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range series {
		if m.Name == "intsched_probes_received_total" && m.Value >= 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("json exposition missing probes counter: %+v", series)
	}
}

// TestOverlayMetricsScrapeRace scrapes /metrics and /healthz concurrently
// with TCP ranking queries while the probe fleet churns the collector —
// the full observability read path under go test -race.
func TestOverlayMetricsScrapeRace(t *testing.T) {
	spec := chainSpec()
	spec.HTTPAddr = "127.0.0.1:0"
	o, err := StartOverlay(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return len(o.Daemon.Collector().Snapshot().Hosts()) == 4
	}, "learned hosts")

	base := "http://" + o.Daemon.HTTPAddr()
	queryAddr := o.Daemon.QueryAddr()
	const scrapers, queriers, iters = 4, 4, 15
	errs := make(chan error, scrapers+queriers)
	for g := 0; g < scrapers; g++ {
		go func(g int) {
			paths := []string{"/metrics", "/metrics?format=json", "/healthz"}
			for i := 0; i < iters; i++ {
				resp, err := http.Get(base + paths[(g+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < queriers; g++ {
		go func(g int) {
			metrics := []string{"delay", "bandwidth"}
			for i := 0; i < iters; i++ {
				resp, err := Query(queryAddr, &wire.QueryRequest{
					From: "dev", Metric: metrics[(g+i)%2], Sorted: true,
				}, 3*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Candidates) != 3 {
					errs <- fmt.Errorf("scrape-race query: %+v", resp.Candidates)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < scrapers+queriers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Queries were answered during the scrape window, so the latency
	// histograms must have observations.
	lat, ok := o.Daemon.Metrics().FindHistogram("intsched_query_latency_seconds")
	if !ok || lat.Count < queriers*iters {
		t.Fatalf("query latency histogram %+v ok=%v", lat, ok)
	}
}
