package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/netsim"
	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// CollectorDaemon is the live scheduler: it ingests INT probes over UDP,
// maintains the learned topology in a collector.Collector, and serves
// ranking queries over a TCP API.
type CollectorDaemon struct {
	id   string
	base time.Time

	udp *net.UDPConn
	tcp net.Listener

	coll     *collector.Collector
	delay    core.Ranker
	bw       core.Ranker
	xfer     *core.TransferTimeRanker
	cache    core.RankCache
	wg       sync.WaitGroup
	closed   chan struct{}
	closeOne sync.Once

	mu sync.Mutex
	// ProbesReceived counts decoded probe datagrams.
	ProbesReceived uint64
}

// DaemonConfig tunes the collector daemon.
type DaemonConfig struct {
	// UDPAddr and TCPAddr are the bind addresses ("127.0.0.1:0" for
	// ephemeral ports).
	UDPAddr, TCPAddr string
	// K is the queue→latency conversion factor (core.DefaultK when zero).
	K time.Duration
	// LinkRateBps is the assumed link capacity for bandwidth estimates.
	LinkRateBps int64
	// QueueWindow bounds queue-report freshness (collector default when
	// zero).
	QueueWindow time.Duration
	// Hysteresis, when positive, suppresses candidate switching on
	// estimate changes smaller than this relative margin.
	Hysteresis float64
}

// NewCollectorDaemon starts the daemon for scheduler node id.
func NewCollectorDaemon(id string, cfg DaemonConfig) (*CollectorDaemon, error) {
	if cfg.UDPAddr == "" {
		cfg.UDPAddr = "127.0.0.1:0"
	}
	if cfg.TCPAddr == "" {
		cfg.TCPAddr = "127.0.0.1:0"
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
	if err != nil {
		return nil, err
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	tcp, err := net.Listen("tcp", cfg.TCPAddr)
	if err != nil {
		udp.Close()
		return nil, err
	}
	delayRanker := &core.DelayRanker{K: cfg.K}
	bwRanker := &core.BandwidthRanker{}
	d := &CollectorDaemon{
		id:     id,
		base:   time.Now(),
		udp:    udp,
		tcp:    tcp,
		closed: make(chan struct{}),
		delay:  core.Ranker(delayRanker),
		bw:     core.Ranker(bwRanker),
		xfer:   &core.TransferTimeRanker{Delay: delayRanker, Bandwidth: bwRanker},
	}
	if cfg.Hysteresis > 0 {
		d.delay = core.NewHysteresisRanker(delayRanker, cfg.Hysteresis)
		d.bw = core.NewHysteresisRanker(bwRanker, cfg.Hysteresis)
	}
	d.coll = collector.New(netsim.NodeID(id), d.clock, collector.Config{
		QueueWindow:        cfg.QueueWindow,
		DefaultLinkRateBps: cfg.LinkRateBps,
	})
	d.wg.Add(2)
	go d.probeLoop()
	go d.queryLoop()
	return d, nil
}

// clock returns daemon-relative time, the collector's timebase.
func (d *CollectorDaemon) clock() time.Duration { return time.Since(d.base) }

// ID returns the scheduler node name.
func (d *CollectorDaemon) ID() string { return d.id }

// UDPAddr returns the probe ingestion address.
func (d *CollectorDaemon) UDPAddr() string { return d.udp.LocalAddr().String() }

// QueryAddr returns the TCP query API address.
func (d *CollectorDaemon) QueryAddr() string { return d.tcp.Addr().String() }

// Collector exposes the underlying collector (tests, coverage reports).
func (d *CollectorDaemon) Collector() *collector.Collector { return d.coll }

// CacheStats reports the daemon's rank-cache counters.
func (d *CollectorDaemon) CacheStats() core.RankCacheStats { return d.cache.Stats() }

// Close shuts the daemon down.
func (d *CollectorDaemon) Close() {
	d.closeOne.Do(func() {
		close(d.closed)
		d.udp.Close()
		d.tcp.Close()
	})
	d.wg.Wait()
}

func (d *CollectorDaemon) probeLoop() {
	defer d.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := d.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		dg, err := wire.UnmarshalDatagram(buf[:n])
		if err != nil || dg.Kind != wire.KindProbe {
			continue
		}
		payload, err := telemetry.UnmarshalProbe(dg.Payload)
		if err != nil {
			continue
		}
		d.ingest(payload)
	}
}

// ingest converts the probe's absolute (UnixNano) timestamps into the
// daemon's relative timebase and hands it to the collector.
func (d *CollectorDaemon) ingest(p *telemetry.ProbePayload) {
	baseNs := d.base.UnixNano()
	for i := range p.Stack.Records {
		r := &p.Stack.Records[i]
		if r.EgressTS > 0 {
			r.EgressTS -= time.Duration(baseNs)
			if r.EgressTS < 0 {
				r.EgressTS = 0
			}
		}
	}
	if p.SentAt > 0 {
		p.SentAt -= time.Duration(baseNs)
	}
	d.mu.Lock()
	d.ProbesReceived++
	d.mu.Unlock()
	d.coll.HandleProbe(p)
}

func (d *CollectorDaemon) queryLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.tcp.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			d.serve(conn)
		}()
	}
}

// serve handles one query connection (one request per connection).
func (d *CollectorDaemon) serve(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req wire.QueryRequest
	if err := wire.ReadFrame(conn, &req); err != nil {
		return
	}
	resp := d.Answer(&req)
	_ = wire.WriteFrame(conn, resp)
}

// Answer computes the response for a query (exported for tests and for the
// cmd/intsched daemon's local diagnostics). It is safe for concurrent
// callers — queries read one immutable epoch-versioned snapshot, and
// repeated queries between probe arrivals are served from the same rank
// cache machinery the simulated scheduler service uses.
func (d *CollectorDaemon) Answer(req *wire.QueryRequest) *wire.QueryResponse {
	metric, ok := core.ParseMetric(req.Metric)
	if !ok {
		return &wire.QueryResponse{Metric: req.Metric, Error: fmt.Sprintf("unknown metric %q", req.Metric)}
	}
	var ranker core.Ranker
	switch metric {
	case core.MetricDelay:
		ranker = d.delay
	case core.MetricBandwidth:
		ranker = d.bw
	case core.MetricTransferTime:
		ranker = d.xfer
	default:
		return &wire.QueryResponse{Metric: req.Metric, Error: fmt.Sprintf("metric %q not served live", req.Metric)}
	}
	topo := d.coll.Snapshot()
	// Hysteresis-wrapped rankers are stateful and bypass the cache.
	cacheable := core.RankerCacheable(ranker)
	key := core.RankKey{From: netsim.NodeID(req.From), Metric: metric, DataBytes: req.DataBytes}
	ranked, hit, gen := []core.Candidate(nil), false, uint64(0)
	if cacheable {
		// Cached lists are shared between queries; the marshalling below
		// only reads (and slicing for Count does not mutate), so no copy
		// is needed.
		ranked, hit, gen = d.cache.Lookup(topo.Epoch(), key)
	}
	if !hit {
		var cands []netsim.NodeID
		for _, h := range topo.Hosts() {
			if h != req.From {
				cands = append(cands, netsim.NodeID(h))
			}
		}
		if sa, ok := ranker.(core.SizeAwareRanker); ok && req.DataBytes > 0 {
			ranked = sa.RankSize(topo, netsim.NodeID(req.From), cands, req.DataBytes)
		} else {
			ranked = ranker.Rank(topo, netsim.NodeID(req.From), cands)
		}
		if cacheable {
			d.cache.Store(topo.Epoch(), gen, key, ranked)
		}
	}
	if req.Count > 0 && req.Count < len(ranked) {
		ranked = ranked[:req.Count]
	}
	resp := &wire.QueryResponse{Metric: req.Metric}
	for _, c := range ranked {
		resp.Candidates = append(resp.Candidates, wire.CandidateInfo{
			Node:         string(c.Node),
			DelayNs:      int64(c.Delay),
			BandwidthBps: c.BandwidthBps,
			Hops:         c.Hops,
			Reachable:    c.Reachable,
		})
	}
	return resp
}

// Query is the device-side client: it dials the daemon's TCP API, sends one
// request, and returns the response.
func Query(addr string, req *wire.QueryRequest, timeout time.Duration) (*wire.QueryResponse, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	var resp wire.QueryResponse
	if err := wire.ReadFrame(conn, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}
