package live

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"intsched/internal/adapt"
	"intsched/internal/collector"
	"intsched/internal/core"
	"intsched/internal/netsim"
	"intsched/internal/obs"
	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// CollectorDaemon is the live scheduler: it ingests INT probes over UDP,
// maintains the learned topology in a collector.Collector, and serves
// ranking queries over a TCP API. An optional HTTP listener exposes the
// daemon's metrics registry (/metrics) and telemetry health (/healthz).
type CollectorDaemon struct {
	id   string
	base time.Time

	udp   *net.UDPConn
	tcp   net.Listener
	hsrv  *http.Server
	haddr string

	coll     *collector.Collector
	delay    core.Ranker
	bw       core.Ranker
	xfer     *core.TransferTimeRanker
	cache    core.RankCache
	wg       sync.WaitGroup
	closed   chan struct{}
	closeOne sync.Once

	reg    *obs.Registry
	health *obs.Health
	// Ingest-path counters: every probe datagram lands in exactly one of
	// these four (plus the collector's own out-of-order drop counter). All
	// are single atomic adds — the probe hot path takes no daemon lock.
	probesReceived *obs.Counter
	datagramErrors *obs.Counter
	unexpectedKind *obs.Counter
	payloadErrors  *obs.Counter
	queryErrors    *obs.Counter
	queryLatency   map[core.Metric]*obs.Histogram

	// Fault observability: detection latency is the probe silence observed
	// when a learned edge ages out; rerouted queries count answers whose
	// best candidate changed from the same device's previous answer.
	faultDetection *obs.Histogram
	// reassemblyLatency observes full probabilistic-telemetry reassembly
	// cycles (every hop of a stream reported at least once).
	reassemblyLatency *obs.Histogram
	queriesRerouted   *obs.Counter
	rerouteMu         sync.Mutex
	lastTop           map[rerouteKey]netsim.NodeID
	exclUnre          bool

	// Adaptive cadence control (nil ctrl when disabled). The control loop
	// is the only writer of ctrl state; metrics readers share adaptMu.
	adaptMu        sync.Mutex
	adaptCtrl      *adapt.Controller
	adaptBudget    float64 // budget fraction of the full static rate
	directivesSent *obs.Counter
	// originAddrs records the return UDP address (the last-hop soft switch)
	// of each origin's newest probe, so directives can ride the probe path
	// back toward the agent.
	originMu    sync.Mutex
	originAddrs map[string]*net.UDPAddr
}

// rerouteKey identifies a device's query stream for reroute tracking.
type rerouteKey struct {
	from   string
	metric core.Metric
}

// DaemonConfig tunes the collector daemon.
type DaemonConfig struct {
	// UDPAddr and TCPAddr are the bind addresses ("127.0.0.1:0" for
	// ephemeral ports).
	UDPAddr, TCPAddr string
	// HTTPAddr, when non-empty, binds the observability endpoints
	// (/metrics, /healthz). Empty disables the HTTP listener.
	HTTPAddr string
	// K is the queue→latency conversion factor (core.DefaultK when zero).
	K time.Duration
	// LinkRateBps is the assumed link capacity for bandwidth estimates.
	LinkRateBps int64
	// QueueWindow bounds queue-report freshness (collector default when
	// zero).
	QueueWindow time.Duration
	// DegradedAfter is the probe silence per edge after which /healthz
	// reports degraded. Zero means 3 queue windows — the paper's ranking
	// inputs (windowed queue maxima) have fully aged out well before that.
	DegradedAfter time.Duration
	// Hysteresis, when positive, suppresses candidate switching on
	// estimate changes smaller than this relative margin.
	Hysteresis float64
	// AdjacencyTTL bounds how long a learned edge outlives its last
	// supporting probe (collector default of 5 queue windows when zero;
	// collector.NoAdjacencyAging disables aging).
	AdjacencyTTL time.Duration
	// ExcludeUnreachable enables the fault-recovery policy: candidates
	// whose learned path aged out are dropped from answers, unless no
	// candidate is reachable (graceful fallback to the full estimate list).
	ExcludeUnreachable bool
	// Shards partitions the collector's link state (collector clamps to
	// [1, collector.MaxShards]); probes through disjoint partitions ingest
	// concurrently and epoch invalidation stays confined to the touched
	// partitions. Zero or one keeps the single-shard collector.
	Shards int
	// Partition optionally maps node IDs to shard partitions (e.g. a
	// topology's pod/region map); nil hashes node IDs.
	Partition func(node string) int
	// IngestQueue, when positive, switches probe ingest to one bounded
	// queue plus one worker goroutine per shard with this queue depth;
	// overload then drops probes (counted in the collector's IngestDrops)
	// instead of stalling the UDP receive loop. Zero keeps ingest
	// synchronous on the receive goroutine.
	IngestQueue int
	// Adaptive starts the cadence control loop: the daemon periodically
	// runs the adapt controller over the collector's stream signals and
	// sends the resulting directives back along each stream's probe return
	// path. Agents only honor them after ProbeAgent.EnableAdaptive, so a
	// mixed fleet degrades to static cadence.
	Adaptive bool
	// AdaptiveBase is the fleet's static probe interval, anchoring the
	// controller's cadence clamps and evaluation period (100 ms when zero).
	AdaptiveBase time.Duration
	// ProbeBudget caps the aggregate directive-allocated probe rate as a
	// fraction (0, 1] of the full static rate (stream count / AdaptiveBase).
	// Zero means no budget: streams still back off on stability but are
	// never force-slowed.
	ProbeBudget float64
}

// NewCollectorDaemon starts the daemon for scheduler node id.
func NewCollectorDaemon(id string, cfg DaemonConfig) (*CollectorDaemon, error) {
	if cfg.UDPAddr == "" {
		cfg.UDPAddr = "127.0.0.1:0"
	}
	if cfg.TCPAddr == "" {
		cfg.TCPAddr = "127.0.0.1:0"
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
	if err != nil {
		return nil, err
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	tcp, err := net.Listen("tcp", cfg.TCPAddr)
	if err != nil {
		udp.Close()
		return nil, err
	}
	delayRanker := &core.DelayRanker{K: cfg.K}
	bwRanker := &core.BandwidthRanker{}
	d := &CollectorDaemon{
		id:     id,
		base:   time.Now(),
		udp:    udp,
		tcp:    tcp,
		closed: make(chan struct{}),
		delay:  core.Ranker(delayRanker),
		bw:     core.Ranker(bwRanker),
		xfer:   &core.TransferTimeRanker{Delay: delayRanker, Bandwidth: bwRanker},
	}
	if cfg.Hysteresis > 0 {
		d.delay = core.NewHysteresisRanker(delayRanker, cfg.Hysteresis)
		d.bw = core.NewHysteresisRanker(bwRanker, cfg.Hysteresis)
	}
	d.coll = collector.New(netsim.NodeID(id), d.clock, collector.Config{
		QueueWindow:        cfg.QueueWindow,
		DefaultLinkRateBps: cfg.LinkRateBps,
		AdjacencyTTL:       cfg.AdjacencyTTL,
		Shards:             cfg.Shards,
		Partition:          cfg.Partition,
	})
	if cfg.IngestQueue > 0 {
		d.coll.StartIngestWorkers(cfg.IngestQueue)
	}
	d.exclUnre = cfg.ExcludeUnreachable
	d.lastTop = make(map[rerouteKey]netsim.NodeID)
	if cfg.Adaptive {
		d.adaptCtrl = adapt.NewController(adapt.Config{BaseInterval: cfg.AdaptiveBase})
		d.adaptBudget = cfg.ProbeBudget
		d.originAddrs = make(map[string]*net.UDPAddr)
	}
	d.initObs(cfg)
	if cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			udp.Close()
			tcp.Close()
			return nil, err
		}
		d.haddr = ln.Addr().String()
		d.hsrv = &http.Server{Handler: obs.Handler(d.reg, d.health)}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			_ = d.hsrv.Serve(ln)
		}()
	}
	d.wg.Add(2)
	go d.probeLoop()
	go d.queryLoop()
	if d.adaptCtrl != nil {
		d.wg.Add(1)
		go d.controlLoop()
	}
	return d, nil
}

// controlLoop periodically runs the adaptive controller over the collector's
// stream signals and sends each resulting cadence directive back along its
// stream's probe return path. Live mode runs on the wall clock — determinism
// is the simulator driver's contract, not this loop's.
func (d *CollectorDaemon) controlLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.adaptCtrl.Config().EvalInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.closed:
			return
		case <-ticker.C:
			sigs := adapt.SignalsFrom(d.coll)
			d.adaptMu.Lock()
			if d.adaptBudget > 0 && len(sigs) > 0 {
				base := d.adaptCtrl.Config().BaseInterval
				d.adaptCtrl.SetBudget(d.adaptBudget*float64(len(sigs))/base.Seconds(), 0)
			}
			dirs := d.adaptCtrl.Decide(sigs)
			d.adaptMu.Unlock()
			for _, dir := range dirs {
				d.sendDirective(dir)
			}
		}
	}
}

// sendDirective encodes one cadence directive and sends it toward the
// origin agent via the UDP peer (the last-hop soft switch) that delivered
// the origin's newest probe; the switch forwards it by overlay destination.
// Origins whose return address is not yet known are skipped — the next
// evaluation retries, since the controller re-emits on any further change
// and agents seq-gate whatever arrives.
func (d *CollectorDaemon) sendDirective(dir adapt.Directive) {
	d.originMu.Lock()
	addr := d.originAddrs[dir.Origin]
	d.originMu.Unlock()
	if addr == nil {
		return
	}
	dg := &wire.Datagram{
		Kind:     wire.KindDirective,
		TTL:      wire.DefaultTTL,
		Src:      d.id,
		Dst:      dir.Origin,
		SentAtNs: time.Now().UnixNano(),
		Payload:  telemetry.EncodeDirective(telemetry.CadenceDirective{Interval: dir.Interval, Seq: dir.Seq}),
	}
	buf, err := dg.Marshal()
	if err != nil {
		return
	}
	if _, err := d.udp.WriteToUDP(buf, addr); err == nil {
		d.directivesSent.Inc()
	}
}

// initObs builds the daemon's metrics registry and health model.
func (d *CollectorDaemon) initObs(cfg DaemonConfig) {
	d.reg = obs.NewRegistry()
	d.health = &obs.Health{}

	d.probesReceived = d.reg.Counter(obs.Opts{
		Name: "intsched_probes_received_total",
		Help: "Probe datagrams decoded and handed to the collector.",
	})
	d.datagramErrors = d.reg.Counter(obs.Opts{
		Name: "intsched_probe_datagram_errors_total",
		Help: "UDP datagrams dropped because the overlay header failed to unmarshal.",
	})
	d.unexpectedKind = d.reg.Counter(obs.Opts{
		Name: "intsched_probe_unexpected_kind_total",
		Help: "Well-formed datagrams dropped because they were not probes.",
	})
	d.payloadErrors = d.reg.Counter(obs.Opts{
		Name: "intsched_probe_payload_errors_total",
		Help: "Probe datagrams dropped because the INT payload failed to decode.",
	})
	d.queryErrors = d.reg.Counter(obs.Opts{
		Name: "intsched_query_errors_total",
		Help: "Ranking queries rejected (unknown or unserved metric).",
	})
	d.queryLatency = make(map[core.Metric]*obs.Histogram)
	for _, m := range []core.Metric{core.MetricDelay, core.MetricBandwidth, core.MetricTransferTime} {
		d.queryLatency[m] = d.reg.Histogram(obs.Opts{
			Name:   "intsched_query_latency_seconds",
			Help:   "Answer latency of ranking queries.",
			Labels: []obs.Label{{Key: "metric", Value: m.String()}},
		}, nil)
	}

	// Collector-maintained counts surface through read-through functions:
	// the collector already guards them, so the registry stores no copy.
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_probes_stale_total",
		Help: "Probes dropped by the collector for stale sequence numbers.",
	}, func() float64 { return float64(d.coll.Stats().ProbesOutOfOrder) })
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_collector_records_parsed_total",
		Help: "INT records processed by the collector.",
	}, func() float64 { return float64(d.coll.Stats().RecordsParsed) })
	d.reg.GaugeFunc(obs.Opts{
		Name: "intsched_collector_epoch",
		Help: "Collector state version; advances on every accepted probe and config change.",
	}, func() float64 { return float64(d.coll.Epoch()) })
	for i := range d.coll.EpochVector() {
		shard := i
		d.reg.GaugeFunc(obs.Opts{
			Name:   "intsched_collector_shard_epoch",
			Help:   "Per-shard state version; a probe bumps only the shards owning nodes on its path.",
			Labels: []obs.Label{{Key: "shard", Value: fmt.Sprint(shard)}},
		}, func() float64 { return float64(d.coll.EpochVector()[shard]) })
	}
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_collector_ingest_drops_total",
		Help: "Probes dropped at the asynchronous ingest queues under overload.",
	}, func() float64 { return float64(d.coll.Stats().IngestDrops) })
	d.reg.GaugeFunc(obs.Opts{
		Name: "intsched_collector_snapshot_age_seconds",
		Help: "Age of the current topology snapshot (time since last rebuild).",
	}, func() float64 { return (d.clock() - d.coll.Snapshot().TakenAt).Seconds() })
	d.reg.GaugeFunc(obs.Opts{
		Name: "intsched_probe_streams",
		Help: "Known probe streams (origin/target sequence spaces).",
	}, func() float64 { return float64(len(d.coll.ProbeStreams())) })

	// Fault detection and recovery. The eviction hook runs inside the
	// collector's snapshot rebuild, so it must only touch the histogram's
	// own atomics — never call back into the collector.
	d.faultDetection = d.reg.Histogram(obs.Opts{
		Name: "intsched_fault_detection_latency_seconds",
		Help: "Probe silence observed when a learned edge aged out of the topology: how long a failure went unnoticed.",
	}, nil)
	d.coll.SetEvictionHook(func(from, to string, silence time.Duration) {
		d.faultDetection.ObserveDuration(silence)
	})
	d.queriesRerouted = d.reg.Counter(obs.Opts{
		Name: "intsched_queries_rerouted_total",
		Help: "Answers whose best candidate changed from the same device's previous answer for the metric.",
	})
	d.reg.GaugeFunc(obs.Opts{
		Name: "intsched_topology_evicted_edges",
		Help: "Learned edges currently aged out and awaiting relearning.",
	}, func() float64 { return float64(len(d.coll.EvictedEdges())) })
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_collector_adjacency_evictions_total",
		Help: "Learned edges aged out of the topology after probe silence.",
	}, func() float64 { return float64(d.coll.Stats().AdjacencyEvictions) })
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_collector_path_remaps_total",
		Help: "Probe streams observed arriving over a changed hop sequence.",
	}, func() float64 { return float64(d.coll.Stats().PathRemaps) })

	// Probabilistic (PINT) telemetry: bytes-on-wire, fragment merges, and
	// the latency of full reassembly cycles. The reassembly hook runs with
	// the origin shard's stream lock held, so it must only touch the
	// histogram's own atomics — never call back into the collector.
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_probe_bytes_total",
		Help: "Encoded INT payload bytes of probes handed to the collector.",
	}, func() float64 { return float64(d.coll.Stats().TelemetryBytes) })
	d.reg.CounterFunc(obs.Opts{
		Name: "intsched_probe_records_reassembled_total",
		Help: "Probabilistic probe fragments merged into per-stream reassembly buffers.",
	}, func() float64 { return float64(d.coll.Stats().RecordsReassembled) })
	d.reassemblyLatency = d.reg.Histogram(obs.Opts{
		Name: "intsched_reassembly_latency_seconds",
		Help: "Time for a probabilistic stream to report every hop at least once (one full reassembly cycle).",
	}, nil)
	d.coll.SetReassemblyHook(func(origin, target string, hops int, latency time.Duration) {
		d.reassemblyLatency.ObserveDuration(latency)
	})
	for _, c := range []struct {
		name, help string
		read       func(core.RankCacheStats) uint64
	}{
		{"intsched_rank_cache_hits_total", "Ranking queries served from the epoch-keyed rank cache.",
			func(s core.RankCacheStats) uint64 { return s.Hits }},
		{"intsched_rank_cache_misses_total", "Ranking queries that recomputed from the snapshot.",
			func(s core.RankCacheStats) uint64 { return s.Misses }},
		{"intsched_rank_cache_invalidations_total", "Rank cache flushes on epoch advance.",
			func(s core.RankCacheStats) uint64 { return s.Invalidations }},
	} {
		read := c.read
		d.reg.CounterFunc(obs.Opts{Name: c.name, Help: c.help}, func() float64 {
			return float64(read(d.cache.Stats()))
		})
	}

	// Adaptive cadence control: the allocated per-class cadences, the
	// directive counters by reason, and how much of the probe budget the
	// current allocation uses. Readers run on scrape goroutines, so every
	// controller access shares adaptMu with the control loop.
	if d.adaptCtrl != nil {
		d.directivesSent = d.reg.Counter(obs.Opts{
			Name: "intsched_cadence_directives_sent_total",
			Help: "Cadence directives sent back along probe return paths.",
		})
		for _, c := range []struct {
			class string
			read  func(adapt.CadenceSummary) float64
		}{
			{"tight", func(s adapt.CadenceSummary) float64 { return s.TightMicros }},
			{"base", func(s adapt.CadenceSummary) float64 { return s.BaseMicros }},
			{"backoff", func(s adapt.CadenceSummary) float64 { return s.BackoffMicros }},
		} {
			read := c.read
			d.reg.GaugeFunc(obs.Opts{
				Name:   "intsched_probe_cadence_us",
				Help:   "Mean allocated probe interval per cadence class, microseconds.",
				Labels: []obs.Label{{Key: "class", Value: c.class}},
			}, func() float64 {
				d.adaptMu.Lock()
				defer d.adaptMu.Unlock()
				return read(d.adaptCtrl.Cadences())
			})
		}
		for _, r := range []struct {
			reason string
			read   func(adapt.Stats) uint64
		}{
			{adapt.ReasonTighten.String(), func(s adapt.Stats) uint64 { return s.Tightens }},
			{adapt.ReasonSilence.String(), func(s adapt.Stats) uint64 { return s.SilenceTightens }},
			{adapt.ReasonFanOut.String(), func(s adapt.Stats) uint64 { return s.FanOuts }},
			{adapt.ReasonBackoff.String(), func(s adapt.Stats) uint64 { return s.Backoffs }},
			{adapt.ReasonBudget.String(), func(s adapt.Stats) uint64 { return s.BudgetClamps }},
		} {
			read := r.read
			d.reg.CounterFunc(obs.Opts{
				Name:   "intsched_cadence_directives_total",
				Help:   "Cadence directives decided by the adaptive controller, by reason.",
				Labels: []obs.Label{{Key: "reason", Value: r.reason}},
			}, func() float64 {
				d.adaptMu.Lock()
				defer d.adaptMu.Unlock()
				return float64(read(d.adaptCtrl.Stats()))
			})
		}
		d.reg.GaugeFunc(obs.Opts{
			Name: "intsched_probe_budget_utilization",
			Help: "Allocated probe rate over the effective budget cap (0 when unbudgeted).",
		}, func() float64 {
			d.adaptMu.Lock()
			defer d.adaptMu.Unlock()
			return d.adaptCtrl.Stats().BudgetUtilization
		})
	}

	// Health: the scheduler is only trustworthy while its telemetry stream
	// is alive. Degrade when any known edge falls silent for longer than
	// the windowed ranking inputs stay valid, when devices go stale, or
	// when no probe has ever arrived.
	degradedAfter := cfg.DegradedAfter
	d.health.Register("probe-ingest", func() []string {
		if d.probesReceived.Value() == 0 {
			return []string{"no probes received yet"}
		}
		return nil
	})
	d.health.Register("probe-liveness", func() []string {
		window := d.coll.QueueWindow()
		threshold := degradedAfter
		if threshold <= 0 {
			threshold = 3 * window
		}
		// A host may run several planned probe streams; it is alive if any
		// of them is fresh. ProbeStreams is sorted, so reasons come out in
		// origin order.
		newest := make(map[string]time.Duration)
		var origins []string
		for _, s := range d.coll.ProbeStreams() {
			age, ok := newest[s.Origin]
			if !ok {
				origins = append(origins, s.Origin)
			}
			if !ok || s.Age < age {
				newest[s.Origin] = s.Age
			}
		}
		var reasons []string
		for _, origin := range origins {
			if age := newest[origin]; age > threshold {
				windows := "unbounded"
				if window > 0 {
					windows = fmt.Sprintf("%.0f", float64(age)/float64(window))
				}
				reasons = append(reasons, fmt.Sprintf(
					"no probes from edge %s for %v (%s queue windows)",
					origin, age.Round(time.Millisecond), windows))
			}
		}
		return reasons
	})
	d.health.Register("topology-evictions", func() []string {
		var reasons []string
		for _, e := range d.coll.EvictedEdges() {
			reasons = append(reasons, fmt.Sprintf(
				"learned link %s->%s aged out (silent for %v)",
				e.From, e.To, e.Since.Round(time.Millisecond)))
		}
		return reasons
	})
	d.health.Register("topology-staleness", func() []string {
		cov := d.coll.Coverage()
		var reasons []string
		for _, dev := range cov.Stale {
			age := d.clock() - cov.LastSeen[dev]
			reasons = append(reasons, fmt.Sprintf(
				"stale telemetry from device %s (last report %v ago)",
				dev, age.Round(time.Millisecond)))
		}
		return reasons
	})
}

// clock returns daemon-relative time, the collector's timebase.
func (d *CollectorDaemon) clock() time.Duration { return time.Since(d.base) }

// ID returns the scheduler node name.
func (d *CollectorDaemon) ID() string { return d.id }

// UDPAddr returns the probe ingestion address.
func (d *CollectorDaemon) UDPAddr() string { return d.udp.LocalAddr().String() }

// QueryAddr returns the TCP query API address.
func (d *CollectorDaemon) QueryAddr() string { return d.tcp.Addr().String() }

// HTTPAddr returns the observability endpoint address ("" when the HTTP
// listener is disabled).
func (d *CollectorDaemon) HTTPAddr() string { return d.haddr }

// Collector exposes the underlying collector (tests, coverage reports).
func (d *CollectorDaemon) Collector() *collector.Collector { return d.coll }

// CacheStats reports the daemon's rank-cache counters.
func (d *CollectorDaemon) CacheStats() core.RankCacheStats { return d.cache.Stats() }

// Metrics exposes the daemon's metric registry (the same one /metrics
// serves), for embedding the daemon and for local diagnostics.
func (d *CollectorDaemon) Metrics() *obs.Registry { return d.reg }

// Health exposes the daemon's health model (the same one /healthz serves).
func (d *CollectorDaemon) Health() *obs.Health { return d.health }

// DaemonStats counts the daemon's probe ingest outcomes. Every received
// datagram lands in exactly one bucket; collector-level drops (stale
// sequence numbers) are counted separately in collector.Stats.
type DaemonStats struct {
	// ProbesReceived counts decoded probe datagrams handed to the collector.
	ProbesReceived uint64
	// DatagramErrors counts datagrams whose overlay header failed to
	// unmarshal.
	DatagramErrors uint64
	// UnexpectedKinds counts well-formed datagrams that were not probes.
	UnexpectedKinds uint64
	// PayloadErrors counts probe datagrams whose INT payload failed to
	// decode.
	PayloadErrors uint64
}

// Stats returns the daemon's ingest counters.
func (d *CollectorDaemon) Stats() DaemonStats {
	return DaemonStats{
		ProbesReceived:  d.probesReceived.Value(),
		DatagramErrors:  d.datagramErrors.Value(),
		UnexpectedKinds: d.unexpectedKind.Value(),
		PayloadErrors:   d.payloadErrors.Value(),
	}
}

// Close shuts the daemon down.
func (d *CollectorDaemon) Close() {
	d.closeOne.Do(func() {
		close(d.closed)
		d.udp.Close()
		d.tcp.Close()
		if d.hsrv != nil {
			d.hsrv.Close()
		}
	})
	d.wg.Wait()
	d.coll.StopIngestWorkers()
}

func (d *CollectorDaemon) probeLoop() {
	defer d.wg.Done()
	buf := make([]byte, maxDatagram)
	// Decode target reused across probes: HandleProbe copies everything it
	// keeps into collector-owned maps, so the payload (and its record/queue
	// slices) can be recycled as soon as ingest returns.
	var payload telemetry.ProbePayload
	for {
		n, from, err := d.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		// Bad input is dropped, never fatal — but each drop class is
		// counted so a misbehaving sender shows up in /metrics instead of
		// vanishing silently.
		dg, err := wire.UnmarshalDatagram(buf[:n])
		if err != nil {
			d.datagramErrors.Inc()
			continue
		}
		if dg.Kind != wire.KindProbe {
			d.unexpectedKind.Inc()
			continue
		}
		if err := telemetry.UnmarshalProbeInto(&payload, dg.Payload); err != nil {
			d.payloadErrors.Inc()
			continue
		}
		if d.adaptCtrl != nil {
			// Remember the probe's UDP peer (its last-hop switch) as the
			// origin's directive return path.
			d.originMu.Lock()
			d.originAddrs[payload.Origin] = from
			d.originMu.Unlock()
		}
		d.ingest(&payload)
	}
}

// ingest converts the probe's absolute (UnixNano) timestamps into the
// daemon's relative timebase and hands it to the collector. EnqueueProbe
// clones the payload (or ingests synchronously when no workers run), so the
// decode loop's reused payload buffers are free the moment this returns.
func (d *CollectorDaemon) ingest(p *telemetry.ProbePayload) {
	baseNs := d.base.UnixNano()
	for i := range p.Stack.Records {
		r := &p.Stack.Records[i]
		if r.EgressTS > 0 {
			r.EgressTS -= time.Duration(baseNs)
			if r.EgressTS < 0 {
				r.EgressTS = 0
			}
		}
	}
	if p.SentAt > 0 {
		p.SentAt -= time.Duration(baseNs)
	}
	d.probesReceived.Inc()
	d.coll.EnqueueProbe(p)
}

func (d *CollectorDaemon) queryLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.tcp.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			d.serve(conn)
		}()
	}
}

// serve handles one query connection (one request per connection).
func (d *CollectorDaemon) serve(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req wire.QueryRequest
	if err := wire.ReadFrame(conn, &req); err != nil {
		return
	}
	resp := d.Answer(&req)
	_ = wire.WriteFrame(conn, resp)
}

// Answer computes the response for a query (exported for tests and for the
// cmd/intsched daemon's local diagnostics). It is safe for concurrent
// callers — queries read one immutable epoch-versioned snapshot, and
// repeated queries between probe arrivals are served from the same rank
// cache machinery the simulated scheduler service uses. Requests carrying a
// Batch are dispatched to AnswerBatch.
func (d *CollectorDaemon) Answer(req *wire.QueryRequest) *wire.QueryResponse {
	if len(req.Batch) > 0 {
		return d.AnswerBatch(req.Batch)
	}
	return d.answerOn(d.coll.Snapshot(), req)
}

// AnswerBatch answers a burst of queries against one topology snapshot (one
// merge of the shard views, one epoch for every cache interaction). An
// element's failure — unknown metric, nested batch — sets that element's
// Error; the rest of the batch is still answered.
func (d *CollectorDaemon) AnswerBatch(reqs []wire.QueryRequest) *wire.QueryResponse {
	topo := d.coll.Snapshot()
	resp := &wire.QueryResponse{Batch: make([]wire.QueryResponse, len(reqs))}
	for i := range reqs {
		if len(reqs[i].Batch) > 0 {
			d.queryErrors.Inc()
			resp.Batch[i] = wire.QueryResponse{Metric: reqs[i].Metric, Error: "nested batch"}
			continue
		}
		resp.Batch[i] = *d.answerOn(topo, &reqs[i])
	}
	return resp
}

// answerOn answers one query against an already-acquired snapshot.
func (d *CollectorDaemon) answerOn(topo *collector.Topology, req *wire.QueryRequest) *wire.QueryResponse {
	metric, ok := core.ParseMetric(req.Metric)
	if !ok {
		d.queryErrors.Inc()
		return &wire.QueryResponse{Metric: req.Metric, Error: fmt.Sprintf("unknown metric %q", req.Metric)}
	}
	var ranker core.Ranker
	switch metric {
	case core.MetricDelay:
		ranker = d.delay
	case core.MetricBandwidth:
		ranker = d.bw
	case core.MetricTransferTime:
		ranker = d.xfer
	default:
		d.queryErrors.Inc()
		return &wire.QueryResponse{Metric: req.Metric, Error: fmt.Sprintf("metric %q not served live", req.Metric)}
	}
	if h := d.queryLatency[metric]; h != nil {
		start := time.Now()
		defer func() { h.ObserveDuration(time.Since(start)) }()
	}
	// Hysteresis-wrapped rankers are stateful and bypass the cache, as do
	// requesters outside the snapshot's host list (the index-space cache
	// key cannot represent them).
	var ranked []core.Candidate
	fromHost := -1
	if core.RankerCacheable(ranker) {
		fromHost = topo.HostIndex(req.From)
	}
	if fromHost >= 0 {
		key := core.RankKey{From: int32(fromHost), Metric: metric, DataBytes: req.DataBytes}
		entry, hit, gen := d.cache.Lookup(topo.Epoch(), key)
		if !hit {
			// Index-space computation in pooled scratch; the cache owns
			// the stored clone and returns the entry even if an
			// invalidation raced the insert.
			fresh := core.ComputeRanking(topo, ranker, netsim.NodeID(req.From), req.DataBytes)
			entry = d.cache.Store(topo.Epoch(), gen, key, fresh)
		}
		// Entry views are shared between queries; the recovery filter and
		// the Count cap are reslices, and the marshalling below only reads,
		// so no copy is needed.
		ranked = entry.Shaped(false, d.exclUnre, 0)
	} else {
		ranked = core.ComputeRanking(topo, ranker, netsim.NodeID(req.From), req.DataBytes)
		if d.exclUnre {
			ranked = core.ReachableOnly(ranked)
		}
	}
	d.trackReroute(req.From, metric, ranked)
	if req.Count > 0 && req.Count < len(ranked) {
		ranked = ranked[:req.Count]
	}
	resp := &wire.QueryResponse{Metric: req.Metric}
	for _, c := range ranked {
		resp.Candidates = append(resp.Candidates, wire.CandidateInfo{
			Node:         string(c.Node),
			DelayNs:      int64(c.Delay),
			BandwidthBps: c.BandwidthBps,
			Hops:         c.Hops,
			Reachable:    c.Reachable,
		})
	}
	return resp
}

// trackReroute counts answers whose best candidate changed from the device's
// previous answer for the same metric: after a failure is detected, the
// first corrected answer per affected device surfaces here as a reroute.
func (d *CollectorDaemon) trackReroute(from string, metric core.Metric, ranked []core.Candidate) {
	if len(ranked) == 0 {
		return
	}
	top := ranked[0].Node
	key := rerouteKey{from: from, metric: metric}
	d.rerouteMu.Lock()
	prev, seen := d.lastTop[key]
	d.lastTop[key] = top
	d.rerouteMu.Unlock()
	if seen && prev != top {
		d.queriesRerouted.Inc()
	}
}

// Query is the device-side client: it dials the daemon's TCP API, sends one
// request, and returns the response.
func Query(addr string, req *wire.QueryRequest, timeout time.Duration) (*wire.QueryResponse, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	var resp wire.QueryResponse
	if err := wire.ReadFrame(conn, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}
