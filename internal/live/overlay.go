package live

import (
	"fmt"
	"sort"
	"time"
)

// OverlaySpec declares a live topology: switches, switch-switch links, host
// attachment points, and the scheduler host. All hosts except the scheduler
// get a probe agent.
type OverlaySpec struct {
	// Scheduler is the collector daemon's node name.
	Scheduler string
	// Switches lists switch node names.
	Switches []string
	// Links are switch-switch adjacencies.
	Links [][2]string
	// HostAttach maps host name -> switch name.
	HostAttach map[string]string
	// RateBps is the per-port egress rate (DefaultRateBps when zero).
	RateBps int64
	// QueueCap is the per-port queue depth (DefaultQueueCap when zero).
	QueueCap int
	// ProbeInterval is the agents' probing period (100 ms when zero).
	ProbeInterval time.Duration
	// K and LinkRateBps configure the daemon's rankers.
	K           time.Duration
	LinkRateBps int64
	// HTTPAddr, when non-empty, enables the daemon's observability
	// endpoints (/metrics, /healthz).
	HTTPAddr string
	// QueueWindow and DegradedAfter tune the daemon's telemetry freshness
	// and health thresholds (daemon defaults when zero).
	QueueWindow   time.Duration
	DegradedAfter time.Duration
	// Shards and IngestQueue configure the daemon's sharded collector and
	// asynchronous probe ingest (see DaemonConfig).
	Shards      int
	IngestQueue int
	// Adaptive starts the daemon's cadence control loop (anchored at
	// ProbeInterval) and opts every agent into its directives; ProbeBudget
	// optionally caps the aggregate probe rate as a fraction of the full
	// static rate (see DaemonConfig).
	Adaptive    bool
	ProbeBudget float64
}

// Overlay is a running live topology on loopback sockets.
type Overlay struct {
	Spec     OverlaySpec
	Switches map[string]*SoftSwitch
	Agents   map[string]*ProbeAgent
	Sinks    map[string]*Sink
	Daemon   *CollectorDaemon
}

// StartOverlay boots the declared topology: the collector daemon, one soft
// switch per spec entry, one probe agent per non-scheduler host, and a sink
// per host to absorb overlay traffic addressed to it. Routes are static
// shortest paths with lexicographic tie-breaking (the same rule as the
// simulator and the collector's learned-path traversal).
func StartOverlay(spec OverlaySpec) (*Overlay, error) {
	if spec.Scheduler == "" {
		return nil, fmt.Errorf("live: overlay needs a scheduler")
	}
	if _, ok := spec.HostAttach[spec.Scheduler]; !ok {
		return nil, fmt.Errorf("live: scheduler %q not attached to a switch", spec.Scheduler)
	}
	o := &Overlay{
		Spec:     spec,
		Switches: make(map[string]*SoftSwitch),
		Agents:   make(map[string]*ProbeAgent),
		Sinks:    make(map[string]*Sink),
	}
	fail := func(err error) (*Overlay, error) {
		o.Close()
		return nil, err
	}

	daemon, err := NewCollectorDaemon(spec.Scheduler, DaemonConfig{
		K:             spec.K,
		LinkRateBps:   spec.LinkRateBps,
		HTTPAddr:      spec.HTTPAddr,
		QueueWindow:   spec.QueueWindow,
		DegradedAfter: spec.DegradedAfter,
		Shards:        spec.Shards,
		IngestQueue:   spec.IngestQueue,
		Adaptive:      spec.Adaptive,
		AdaptiveBase:  spec.ProbeInterval,
		ProbeBudget:   spec.ProbeBudget,
	})
	if err != nil {
		return fail(err)
	}
	o.Daemon = daemon

	// Switches bind first so everyone can learn addresses.
	for _, id := range spec.Switches {
		sw, err := NewSoftSwitch(id, "127.0.0.1:0", spec.RateBps, spec.QueueCap)
		if err != nil {
			return fail(err)
		}
		o.Switches[id] = sw
	}

	// Hosts: the scheduler's traffic terminates at the daemon's UDP
	// socket; other hosts get a probe agent plus a sink for data traffic.
	hostAddr := map[string]string{spec.Scheduler: daemon.UDPAddr()}
	hosts := make([]string, 0, len(spec.HostAttach))
	for h := range spec.HostAttach {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		if h == spec.Scheduler {
			continue
		}
		uplink, ok := o.Switches[spec.HostAttach[h]]
		if !ok {
			return fail(fmt.Errorf("live: host %s attached to unknown switch %s", h, spec.HostAttach[h]))
		}
		agent, err := NewProbeAgent(h, uplink.Addr(), spec.Scheduler, spec.ProbeInterval)
		if err != nil {
			return fail(err)
		}
		o.Agents[h] = agent
		hostAddr[h] = agent.Addr()
	}

	// Adjacency over switches and hosts.
	adj := make(map[string][]string)
	addEdge := func(a, b string) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, l := range spec.Links {
		if o.Switches[l[0]] == nil || o.Switches[l[1]] == nil {
			return fail(fmt.Errorf("live: link %v references unknown switch", l))
		}
		addEdge(l[0], l[1])
	}
	for h, sw := range spec.HostAttach {
		if o.Switches[sw] == nil {
			return fail(fmt.Errorf("live: host %s attached to unknown switch %s", h, sw))
		}
		addEdge(h, sw)
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	isHost := func(n string) bool { _, ok := spec.HostAttach[n]; return ok }

	// Ports: every switch gets one port per adjacent node.
	ports := make(map[string]map[string]int) // switch -> neighbor -> port
	for id, sw := range o.Switches {
		ports[id] = make(map[string]int)
		for _, nb := range adj[id] {
			var addr string
			if isHost(nb) {
				addr = hostAddr[nb]
			} else {
				addr = o.Switches[nb].Addr()
			}
			idx, err := sw.AddPort(nb, addr)
			if err != nil {
				return fail(err)
			}
			ports[id][nb] = idx
		}
	}

	// Routes: BFS from each host, hosts never forward.
	for _, dst := range hosts {
		next := map[string]string{}
		visited := map[string]bool{dst: true}
		frontier := []string{dst}
		for len(frontier) > 0 {
			var nf []string
			for _, cur := range frontier {
				for _, nb := range adj[cur] {
					if visited[nb] {
						continue
					}
					visited[nb] = true
					next[nb] = cur
					if !isHost(nb) {
						nf = append(nf, nb)
					}
				}
			}
			frontier = nf
		}
		for node, via := range next {
			if isHost(node) {
				continue
			}
			idx, ok := ports[node][via]
			if !ok {
				return fail(fmt.Errorf("live: no port from %s to %s", node, via))
			}
			if err := o.Switches[node].SetRoute(dst, idx); err != nil {
				return fail(err)
			}
		}
	}

	// Sinks absorb data traffic addressed to non-scheduler hosts. We bind
	// them on the agents' sockets? No — agents own their socket for
	// probing; data traffic to a host is routed to the same address, and
	// the agent simply discards whatever arrives. Nothing to do here.

	for _, sw := range o.Switches {
		sw.Start()
	}
	for _, a := range o.Agents {
		if spec.Adaptive {
			a.EnableAdaptive()
		}
		a.Start()
	}
	return o, nil
}

// Close shuts the whole overlay down.
func (o *Overlay) Close() {
	for _, a := range o.Agents {
		a.Close()
	}
	for _, sw := range o.Switches {
		sw.Close()
	}
	for _, s := range o.Sinks {
		s.Close()
	}
	if o.Daemon != nil {
		o.Daemon.Close()
	}
}
