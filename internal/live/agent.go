package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// ProbeAgent is the live probe emitter running on an edge server: every
// interval it sends one Geneve-marked probe datagram toward the collector
// through the server's attached soft switch.
type ProbeAgent struct {
	id        string
	collector string
	conn      *net.UDPConn
	uplink    *net.UDPAddr

	// adaptive gates cadence directives: until EnableAdaptive, directive
	// datagrams are dropped like any other unexpected kind, so a
	// new-collector/old-agent (or unconfigured) pairing degrades to the
	// static cadence rather than erroring — the v1-compat default.
	adaptive atomic.Bool
	// ticker drives the periodic prober; created in Start so directive
	// handling (which Resets it) and the probe loop share one instance.
	ticker *time.Ticker

	mu         sync.Mutex
	interval   time.Duration // current probe cadence, guarded by mu after Start
	lastDirSeq uint64        // newest applied directive sequence number
	applied    uint64        // directives applied
	seq        uint64
	mode       telemetry.Mode
	sampleRate uint16
	encBuf     []byte // probe encode scratch, guarded by mu
	pings      map[int64]chan time.Duration
	closed     chan struct{}
	wg         sync.WaitGroup
	paused     atomic.Bool

	// Sent counts emitted probes.
	Sent uint64
}

// NewProbeAgent creates an agent for edge server id attached to the soft
// switch at uplinkAddr, probing toward collector every interval.
func NewProbeAgent(id, uplinkAddr, collector string, interval time.Duration) (*ProbeAgent, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	up, err := net.ResolveUDPAddr("udp", uplinkAddr)
	if err != nil {
		return nil, fmt.Errorf("live: agent %s: %w", id, err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("live: agent %s: %w", id, err)
	}
	return &ProbeAgent{
		id:        id,
		collector: collector,
		conn:      conn,
		uplink:    up,
		interval:  interval,
		pings:     make(map[int64]chan time.Duration),
		closed:    make(chan struct{}),
	}, nil
}

// ID returns the agent's node name.
func (a *ProbeAgent) ID() string { return a.id }

// Addr returns the agent's bound UDP address (the switch's return path).
func (a *ProbeAgent) Addr() string { return a.conn.LocalAddr().String() }

// Start launches the periodic prober and a receive loop: the agent answers
// overlay pings, resolves its own pending pings, and discards other
// traffic addressed to this host (the agent doubles as the host's traffic
// sink).
func (a *ProbeAgent) Start() {
	a.ticker = time.NewTicker(a.interval)
	a.wg.Add(2)
	go func() {
		defer a.wg.Done()
		defer a.ticker.Stop()
		for {
			select {
			case <-a.ticker.C:
				if !a.paused.Load() {
					_ = a.EmitProbe()
				}
			case <-a.closed:
				return
			}
		}
	}()
	go func() {
		defer a.wg.Done()
		buf := make([]byte, maxDatagram)
		for {
			n, _, err := a.conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			d, err := wire.UnmarshalDatagram(buf[:n])
			if err != nil {
				continue
			}
			a.handle(d)
		}
	}()
}

// handle processes an overlay datagram delivered to this host.
func (a *ProbeAgent) handle(d *wire.Datagram) {
	switch d.Kind {
	case wire.KindPing:
		pong := &wire.Datagram{
			Kind:     wire.KindPong,
			TTL:      wire.DefaultTTL,
			Src:      a.id,
			Dst:      d.Src,
			SentAtNs: d.SentAtNs, // echo the cookie for RTT matching
		}
		if buf, err := pong.Marshal(); err == nil {
			_, _ = a.conn.WriteToUDP(buf, a.uplink)
		}
	case wire.KindPong:
		a.mu.Lock()
		ch := a.pings[d.SentAtNs]
		delete(a.pings, d.SentAtNs)
		a.mu.Unlock()
		if ch != nil {
			ch <- time.Duration(time.Now().UnixNano() - d.SentAtNs)
		}
	case wire.KindDirective:
		// Cadence directives ride the probe return path. They only apply
		// after explicit opt-in; malformed frames decode as no-directive and
		// stale sequence numbers are ignored, so reordered or replayed
		// datagrams cannot roll the cadence back.
		if !a.adaptive.Load() {
			return
		}
		dir, ok := telemetry.DecodeDirective(d.Payload)
		if !ok {
			return
		}
		a.mu.Lock()
		if dir.Seq <= a.lastDirSeq || dir.Interval == a.interval {
			if dir.Seq > a.lastDirSeq {
				a.lastDirSeq = dir.Seq
			}
			a.mu.Unlock()
			return
		}
		a.lastDirSeq = dir.Seq
		a.interval = dir.Interval
		a.applied++
		a.mu.Unlock()
		a.ticker.Reset(dir.Interval)
	}
}

// EnableAdaptive opts the agent into collector-driven cadence directives.
// Without it the agent keeps its configured static interval and drops
// directive datagrams — the v1-compat default.
func (a *ProbeAgent) EnableAdaptive() { a.adaptive.Store(true) }

// Interval returns the agent's current probe cadence.
func (a *ProbeAgent) Interval() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.interval
}

// DirectivesApplied returns how many cadence directives changed the agent's
// interval.
func (a *ProbeAgent) DirectivesApplied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// Ping measures the overlay round-trip time to another host (whose agent
// answers with a pong), the live analogue of the Fig 3 ping measurements.
func (a *ProbeAgent) Ping(dst string, timeout time.Duration) (time.Duration, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	cookie := time.Now().UnixNano()
	ch := make(chan time.Duration, 1)
	a.mu.Lock()
	a.pings[cookie] = ch
	a.mu.Unlock()
	req := &wire.Datagram{
		Kind:     wire.KindPing,
		TTL:      wire.DefaultTTL,
		Src:      a.id,
		Dst:      dst,
		SentAtNs: cookie,
	}
	buf, err := req.Marshal()
	if err != nil {
		return 0, err
	}
	if _, err := a.conn.WriteToUDP(buf, a.uplink); err != nil {
		return 0, err
	}
	select {
	case rtt := <-ch:
		return rtt, nil
	case <-time.After(timeout):
		a.mu.Lock()
		delete(a.pings, cookie)
		a.mu.Unlock()
		return 0, fmt.Errorf("live: ping %s -> %s timed out", a.id, dst)
	case <-a.closed:
		return 0, fmt.Errorf("live: agent closed")
	}
}

// SetPaused suspends (true) or resumes (false) the periodic prober while
// the agent keeps answering pings — a controllable telemetry outage for
// health-model tests and failure drills.
func (a *ProbeAgent) SetPaused(paused bool) { a.paused.Store(paused) }

// SetTelemetry selects the telemetry mode and per-hop sampling rate stamped
// into this agent's probe headers. Switches honor the header, so agents can
// roll between deterministic and probabilistic telemetry independently.
func (a *ProbeAgent) SetTelemetry(mode telemetry.Mode, rate uint16) {
	a.mu.Lock()
	a.mode, a.sampleRate = mode, rate
	a.mu.Unlock()
}

// EmitProbe sends a single probe immediately (also used by tests).
func (a *ProbeAgent) EmitProbe() error {
	now := time.Now()
	a.mu.Lock()
	a.seq++
	payload := telemetry.ProbePayload{
		Origin:     a.id,
		Seq:        a.seq,
		SentAt:     time.Duration(now.UnixNano()),
		Mode:       a.mode,
		SampleRate: a.sampleRate,
	}
	// Encode into the agent's reusable buffer; the datagram Marshal below
	// copies the payload out before the lock (and with it the buffer) is
	// released for the next emission.
	encoded, err := telemetry.AppendProbe(a.encBuf[:0], &payload)
	a.encBuf = encoded
	if err != nil {
		a.mu.Unlock()
		return err
	}
	d := &wire.Datagram{
		Kind:     wire.KindProbe,
		TTL:      wire.DefaultTTL,
		Src:      a.id,
		Dst:      a.collector,
		SentAtNs: now.UnixNano(),
		// Hosts stamp outgoing probes so the first link is measurable.
		EgressTS: now.UnixNano(),
		Payload:  encoded,
	}
	buf, err := d.Marshal()
	a.mu.Unlock()
	if err != nil {
		return err
	}
	if _, err := a.conn.WriteToUDP(buf, a.uplink); err != nil {
		return err
	}
	a.mu.Lock()
	a.Sent++
	a.mu.Unlock()
	return nil
}

// Close stops the agent.
func (a *ProbeAgent) Close() {
	select {
	case <-a.closed:
		return
	default:
	}
	close(a.closed)
	a.conn.Close()
	a.wg.Wait()
}

// TrafficSource blasts datagrams through the overlay to create congestion
// (the live analogue of the simulator's iperf CBR flows).
type TrafficSource struct {
	id     string
	conn   *net.UDPConn
	uplink *net.UDPAddr
}

// NewTrafficSource creates a datagram source for node id attached to the
// soft switch at uplinkAddr.
func NewTrafficSource(id, uplinkAddr string) (*TrafficSource, error) {
	up, err := net.ResolveUDPAddr("udp", uplinkAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &TrafficSource{id: id, conn: conn, uplink: up}, nil
}

// Addr returns the source's bound UDP address.
func (t *TrafficSource) Addr() string { return t.conn.LocalAddr().String() }

// Blast sends count datagrams of size payloadBytes toward dst back-to-back.
func (t *TrafficSource) Blast(dst string, count, payloadBytes int) error {
	payload := make([]byte, payloadBytes)
	for i := 0; i < count; i++ {
		d := &wire.Datagram{
			Kind:     wire.KindData,
			TTL:      wire.DefaultTTL,
			Src:      t.id,
			Dst:      dst,
			SentAtNs: time.Now().UnixNano(),
			Payload:  payload,
		}
		buf, err := d.Marshal()
		if err != nil {
			return err
		}
		if _, err := t.conn.WriteToUDP(buf, t.uplink); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the source's socket.
func (t *TrafficSource) Close() { t.conn.Close() }

// Sink counts datagrams arriving at a leaf node (the receive side of a
// TrafficSource's flow, or any host that must absorb overlay traffic).
type Sink struct {
	conn *net.UDPConn
	wg   sync.WaitGroup

	mu       sync.Mutex
	received uint64
}

// NewSink binds a UDP socket and starts counting arrivals.
func NewSink() (*Sink, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	s := &Sink{conn: conn}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, maxDatagram)
		for {
			if _, _, err := s.conn.ReadFromUDP(buf); err != nil {
				return
			}
			s.mu.Lock()
			s.received++
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the sink's UDP address.
func (s *Sink) Addr() string { return s.conn.LocalAddr().String() }

// Received returns the number of datagrams absorbed.
func (s *Sink) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Close stops the sink.
func (s *Sink) Close() {
	s.conn.Close()
	s.wg.Wait()
}
