package live

import (
	"reflect"
	"testing"
	"time"

	"intsched/internal/wire"
)

// TestOverlayBatchQuery: a sharded daemon with asynchronous ingest answers a
// batched TCP query; every batch element must match the corresponding single
// query, and per-element failures must not fail the batch.
func TestOverlayBatchQuery(t *testing.T) {
	spec := chainSpec()
	spec.Shards = 4
	spec.IngestQueue = 64
	o, err := StartOverlay(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return len(o.Daemon.Collector().Snapshot().Hosts()) == 4
	}, "learned hosts")

	items := []wire.QueryRequest{
		{From: "dev", Metric: "delay", Sorted: true},
		{From: "e2", Metric: "bandwidth", Sorted: true, Count: 2},
		{From: "dev", Metric: "no-such-metric"},
	}
	resp, err := Query(o.Daemon.QueryAddr(), &wire.QueryRequest{Batch: items}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Batch) != len(items) {
		t.Fatalf("batch returned %d entries for %d items", len(resp.Batch), len(items))
	}
	// The overlay is idle between probe rounds; re-asking each query singly
	// against the same learned state must reproduce the batch answers.
	for i, item := range items[:2] {
		single := o.Daemon.Answer(&item)
		if !reflect.DeepEqual(resp.Batch[i].Candidates, single.Candidates) {
			t.Fatalf("batch item %d %+v != single %+v", i, resp.Batch[i].Candidates, single.Candidates)
		}
		if resp.Batch[i].Error != "" {
			t.Fatalf("batch item %d failed: %s", i, resp.Batch[i].Error)
		}
	}
	if resp.Batch[2].Error == "" {
		t.Fatal("unknown metric in a batch must set that element's Error")
	}
	if len(resp.Batch[0].Candidates) != 3 || len(resp.Batch[1].Candidates) != 2 {
		t.Fatalf("batch shaping: %d and %d candidates", len(resp.Batch[0].Candidates), len(resp.Batch[1].Candidates))
	}
	// The sharded collector must have spread state across partitions:
	// more than one shard epoch moved.
	moved := 0
	for _, e := range o.Daemon.Collector().EpochVector() {
		if e > 0 {
			moved++
		}
	}
	if moved < 2 {
		t.Fatalf("epoch vector %v: expected probes to touch multiple shards", o.Daemon.Collector().EpochVector())
	}
}

// TestDaemonNestedBatchRejected: batch elements may not nest further
// batches; the element fails, the batch survives.
func TestDaemonNestedBatchRejected(t *testing.T) {
	d, err := NewCollectorDaemon("sched", DaemonConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp := d.Answer(&wire.QueryRequest{Batch: []wire.QueryRequest{
		{Batch: []wire.QueryRequest{{From: "dev", Metric: "delay"}}},
		{From: "dev", Metric: "delay", Sorted: true},
	}})
	if len(resp.Batch) != 2 {
		t.Fatalf("batch %+v", resp)
	}
	if resp.Batch[0].Error == "" {
		t.Fatal("nested batch accepted")
	}
	if resp.Batch[1].Error != "" {
		t.Fatalf("sibling of a failed element failed too: %s", resp.Batch[1].Error)
	}
}
