package live

import (
	"fmt"
	"testing"
	"time"

	"intsched/internal/wire"
)

// chainSpec builds dev - sA - sB - {e1, sched}: two switches, a device and
// a server on opposite sides, and the scheduler at the far end.
func chainSpec() OverlaySpec {
	return OverlaySpec{
		Scheduler: "sched",
		Switches:  []string{"sA", "sB"},
		Links:     [][2]string{{"sA", "sB"}},
		HostAttach: map[string]string{
			"dev":   "sA",
			"e1":    "sA",
			"e2":    "sB",
			"sched": "sB",
		},
		RateBps:       50_000_000, // fast enough for quick tests
		ProbeInterval: 20 * time.Millisecond,
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestOverlayProbesReachCollector(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return o.Daemon.Collector().Stats().ProbesReceived >= 6
	}, "probes at the collector")
}

func TestOverlayTopologyLearned(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		topo := o.Daemon.Collector().Snapshot()
		// All three probing hosts plus the scheduler learned.
		hosts := topo.Hosts()
		if len(hosts) != 4 {
			return false
		}
		// dev's probes traverse sA then sB: path dev->sched learned.
		p, err := topo.Path("dev", "sched")
		if err != nil || len(p) != 4 {
			return false
		}
		return p[1] == "sA" && p[2] == "sB"
	}, "full learned topology")
}

func TestOverlayQueryAPI(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	// Wait for topology before querying.
	waitFor(t, 5*time.Second, func() bool {
		return len(o.Daemon.Collector().Snapshot().Hosts()) == 4
	}, "learned hosts")

	resp, err := Query(o.Daemon.QueryAddr(), &wire.QueryRequest{
		From: "dev", Metric: "delay", Sorted: true,
	}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 3 {
		t.Fatalf("candidates %+v", resp.Candidates)
	}
	// e1 shares dev's switch: 2 hops; e2 and sched are 3 hops away.
	if resp.Candidates[0].Node != "e1" {
		t.Fatalf("nearest-by-delay should be e1 on an idle overlay: %+v", resp.Candidates)
	}
	for _, c := range resp.Candidates {
		if !c.Reachable || c.DelayNs <= 0 {
			t.Fatalf("bad candidate %+v", c)
		}
	}
}

func TestOverlayTransferTimeMetric(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return len(o.Daemon.Collector().Snapshot().Hosts()) == 4
	}, "learned hosts")
	resp, err := Query(o.Daemon.QueryAddr(), &wire.QueryRequest{
		From: "dev", Metric: "transfer-time", Sorted: true, DataBytes: 2_000_000,
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 3 {
		t.Fatalf("candidates %+v", resp.Candidates)
	}
	// A 2 MB transfer over ≈20 Mbps should dominate the estimate: ≥0.8 s.
	if resp.Candidates[0].Delay() < 500*time.Millisecond {
		t.Fatalf("transfer-time estimate %v ignores data size", resp.Candidates[0].Delay())
	}
}

func TestDaemonHysteresisOption(t *testing.T) {
	d, err := NewCollectorDaemon("sched", DaemonConfig{Hysteresis: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Just verify the daemon still answers (rankers wrapped correctly).
	resp := d.Answer(&wire.QueryRequest{From: "dev", Metric: "delay"})
	if resp.Error != "" {
		t.Fatalf("error %q", resp.Error)
	}
}

func TestOverlayQueryErrors(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := Query(o.Daemon.QueryAddr(), &wire.QueryRequest{From: "dev", Metric: "bogus"}, time.Second); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := Query(o.Daemon.QueryAddr(), &wire.QueryRequest{From: "dev", Metric: "nearest"}, time.Second); err == nil {
		t.Fatal("unserved metric accepted")
	}
}

func TestOverlayCongestionShiftsRanking(t *testing.T) {
	spec := chainSpec()
	spec.RateBps = 10_000_000 // slow enough to queue under a blast
	o, err := StartOverlay(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return len(o.Daemon.Collector().Snapshot().Hosts()) == 4
	}, "learned hosts")

	// Congest sA's egress port toward e1 with a datagram blast, then
	// verify the bandwidth ranking prefers e2 (remote but clean) over e1
	// (local but congested) — the paper's headline behaviour, live.
	src, err := NewTrafficSource("dev", o.Switches["sA"].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if err := src.Blast("e1", 80, 1200); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
		resp, err := Query(o.Daemon.QueryAddr(), &wire.QueryRequest{
			From: "dev", Metric: "bandwidth", Sorted: true,
		}, time.Second)
		if err != nil {
			continue
		}
		if len(resp.Candidates) > 0 && resp.Candidates[0].Node != "e1" {
			return // congestion detected and ranking shifted
		}
	}
	t.Fatal("bandwidth ranking never shifted away from the congested server")
}

func TestSoftSwitchConfigValidation(t *testing.T) {
	sw, err := NewSoftSwitch("s1", "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	if sw.ID() != "s1" || sw.Addr() == "" {
		t.Fatal("accessors")
	}
	if _, err := sw.AddPort("x", "not-an-addr"); err == nil {
		t.Error("bad port addr accepted")
	}
	idx, err := sw.AddPort("n1", "127.0.0.1:9")
	if err != nil || idx != 0 {
		t.Fatalf("AddPort: %d %v", idx, err)
	}
	if err := sw.SetRoute("n1", 5); err == nil {
		t.Error("route via missing port accepted")
	}
	if err := sw.SetRoute("n1", 0); err != nil {
		t.Error(err)
	}
	sw.Start()
	if _, err := sw.AddPort("late", "127.0.0.1:9"); err == nil {
		t.Error("AddPort after Start accepted")
	}
}

func TestOverlaySpecValidation(t *testing.T) {
	if _, err := StartOverlay(OverlaySpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := StartOverlay(OverlaySpec{Scheduler: "x", HostAttach: map[string]string{}}); err == nil {
		t.Error("unattached scheduler accepted")
	}
	bad := chainSpec()
	bad.HostAttach["ghost"] = "sZ"
	if _, err := StartOverlay(bad); err == nil {
		t.Error("attachment to unknown switch accepted")
	}
	bad2 := chainSpec()
	bad2.Links = append(bad2.Links, [2]string{"sA", "sZ"})
	if _, err := StartOverlay(bad2); err == nil {
		t.Error("link to unknown switch accepted")
	}
}

func TestOverlayPing(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	rtt, err := o.Agents["dev"].Ping("e2", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("rtt %v implausible", rtt)
	}
	// Ping to a nonexistent host times out cleanly.
	if _, err := o.Agents["dev"].Ping("ghost", 300*time.Millisecond); err == nil {
		t.Fatal("ping to ghost succeeded")
	}
}

func TestDaemonCloseIdempotent(t *testing.T) {
	d, err := NewCollectorDaemon("sched", DaemonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close()
}

// TestOverlayConcurrentQueriesUnderChurn issues parallel TCP queries while
// the overlay's probe fleet keeps mutating the collector at a 20 ms cadence
// — the live deployment of the epoch-versioned snapshot + rank cache read
// path, exercised under go test -race.
func TestOverlayConcurrentQueriesUnderChurn(t *testing.T) {
	o, err := StartOverlay(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	waitFor(t, 5*time.Second, func() bool {
		return len(o.Daemon.Collector().Snapshot().Hosts()) == 4
	}, "learned hosts")

	const clients, perClient = 8, 20
	addr := o.Daemon.QueryAddr()
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			metrics := []string{"delay", "bandwidth"}
			for i := 0; i < perClient; i++ {
				resp, err := Query(addr, &wire.QueryRequest{
					From: "dev", Metric: metrics[(g+i)%2], Sorted: true,
				}, 3*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Candidates) != 3 {
					errs <- fmt.Errorf("query %d/%d: candidates %+v", g, i, resp.Candidates)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	startEpoch := o.Daemon.Collector().Epoch()
	waitFor(t, 5*time.Second, func() bool {
		return o.Daemon.Collector().Epoch() > startEpoch
	}, "probe churn advancing the epoch")
	// 160 queries against probes arriving every 20 ms: the cache must have
	// served a meaningful share.
	st := o.Daemon.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("rank cache never hit under churn: %+v", st)
	}
}
