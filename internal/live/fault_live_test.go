package live

import (
	"strings"
	"testing"
	"time"

	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// TestDaemonFaultObservability drives the daemon's fault-recovery surface end
// to end on the wall clock: probes teach it a two-branch topology, one branch
// goes silent past the adjacency TTL, and the failure must show up everywhere
// at once — the detection-latency histogram, the evicted-edges gauge and
// eviction counter, a /healthz reason, the ExcludeUnreachable answer policy,
// and the rerouted-queries counter. Resuming the probes must roll all of it
// back.
func TestDaemonFaultObservability(t *testing.T) {
	const (
		window = 40 * time.Millisecond
		ttl    = 200 * time.Millisecond
	)
	start := time.Now()
	d, err := NewCollectorDaemon("sched", DaemonConfig{
		QueueWindow:        window,
		AdjacencyTTL:       ttl,
		ExcludeUnreachable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	clock := func() time.Duration { return time.Since(start) }

	// Every probe fakes an 80 ms final hop (s1 -> sched) by backdating the
	// last record's egress timestamp, so the scheduler host itself never
	// ranks closest. Wait until the daemon clock can express the offset.
	time.Sleep(120 * time.Millisecond)
	var seq uint64
	probe := func(origin string, recs ...telemetry.Record) {
		seq++
		now := clock()
		recs[len(recs)-1].EgressTS = now - 80*time.Millisecond
		d.Collector().HandleProbe(&telemetry.ProbePayload{
			Origin: origin,
			Seq:    seq,
			SentAt: now,
			Stack:  telemetry.Stack{Records: recs},
		})
	}
	// Topology: dev, e1 and the scheduler hang off s1; e2 sits behind a
	// second switch. Latencies make e2 the best candidate for dev, e1 the
	// runner-up, and the (backdated) scheduler host last.
	probeDev := func() {
		probe("dev", telemetry.Record{Device: "s1", IngressPort: 1, EgressPort: 4, LinkLatency: 40 * time.Millisecond})
	}
	probeE1 := func() {
		probe("e1", telemetry.Record{Device: "s1", IngressPort: 2, EgressPort: 4, LinkLatency: 50 * time.Millisecond})
	}
	probeE2 := func() {
		probe("e2",
			telemetry.Record{Device: "s2", IngressPort: 1, EgressPort: 2, LinkLatency: time.Millisecond},
			telemetry.Record{Device: "s1", IngressPort: 3, EgressPort: 4, LinkLatency: time.Millisecond})
	}
	query := func() *wire.QueryResponse {
		t.Helper()
		resp := d.Answer(&wire.QueryRequest{From: "dev", Metric: "delay", Sorted: true})
		if resp.Error != "" {
			t.Fatalf("query failed: %s", resp.Error)
		}
		return resp
	}
	metricValue := func(name string) float64 {
		t.Helper()
		for _, m := range d.Metrics().Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s not registered", name)
		return 0
	}
	agedOutReason := func() bool {
		for _, r := range d.Health().Evaluate().Reasons {
			if strings.Contains(r, "aged out") {
				return true
			}
		}
		return false
	}

	// Phase 1: everything alive. e2 wins on delay; the answer seeds the
	// reroute tracker's per-device top candidate.
	probeDev()
	probeE1()
	probeE2()
	resp := query()
	if len(resp.Candidates) != 3 || resp.Candidates[0].Node != "e2" {
		t.Fatalf("baseline answer: %+v", resp.Candidates)
	}
	for _, c := range resp.Candidates {
		if !c.Reachable {
			t.Fatalf("candidate %s unreachable at baseline", c.Node)
		}
	}
	if agedOutReason() {
		t.Fatal("eviction health reason before any silence")
	}

	// Phase 2: e2's branch goes silent while dev and e1 keep probing. Once
	// the silence exceeds the adjacency TTL, the next query's snapshot
	// rebuild evicts the s2 edges.
	deadline := time.Now().Add(ttl + 2*window)
	for time.Now().Before(deadline) {
		probeDev()
		probeE1()
		time.Sleep(window)
	}
	probeDev()
	probeE1()
	resp = query()
	if len(resp.Candidates) != 2 || resp.Candidates[0].Node != "e1" {
		t.Fatalf("answer during fault should drop e2 and promote e1: %+v", resp.Candidates)
	}
	if hist, ok := d.Metrics().FindHistogram("intsched_fault_detection_latency_seconds"); !ok || hist.Count == 0 {
		t.Fatalf("no fault detection latency observed (found %v)", ok)
	}
	if v := metricValue("intsched_topology_evicted_edges"); v == 0 {
		t.Fatal("evicted-edges gauge still zero during fault")
	}
	if v := metricValue("intsched_collector_adjacency_evictions_total"); v == 0 {
		t.Fatal("adjacency eviction counter still zero during fault")
	}
	if v := metricValue("intsched_queries_rerouted_total"); v != 1 {
		t.Fatalf("rerouted queries = %v after failover, want 1", v)
	}
	if !agedOutReason() {
		t.Fatalf("health misses the eviction: %+v", d.Health().Evaluate())
	}

	// Phase 3: the branch comes back. Relearning clears the tombstones, the
	// answer includes e2 again, and the top-candidate switch back counts as
	// a second reroute.
	probeDev()
	probeE1()
	probeE2()
	resp = query()
	if len(resp.Candidates) != 3 || resp.Candidates[0].Node != "e2" {
		t.Fatalf("answer after recovery: %+v", resp.Candidates)
	}
	if v := metricValue("intsched_topology_evicted_edges"); v != 0 {
		t.Fatalf("evicted-edges gauge = %v after recovery, want 0", v)
	}
	if v := metricValue("intsched_queries_rerouted_total"); v != 2 {
		t.Fatalf("rerouted queries = %v after recovery, want 2", v)
	}
	if agedOutReason() {
		t.Fatalf("stale eviction health reason after recovery: %+v", d.Health().Evaluate())
	}
}
