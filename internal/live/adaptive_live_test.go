package live

import (
	"testing"
	"time"

	"intsched/internal/obs"
	"intsched/internal/telemetry"
	"intsched/internal/wire"
)

// An adaptive overlay: directives decided by the daemon ride the probe
// return path back through the switches and actually change agent cadences.
func TestAdaptiveDirectivesReachAgents(t *testing.T) {
	spec := chainSpec()
	spec.Adaptive = true
	// Half the static budget: with every stream quiet on an idle overlay,
	// the controller must slow cadences (back-off plus budget clamps), so
	// every agent ends up above the 20 ms base interval.
	spec.ProbeBudget = 0.5
	o, err := StartOverlay(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	base := spec.ProbeInterval
	waitFor(t, 10*time.Second, func() bool {
		for _, a := range o.Agents {
			if a.Interval() <= base {
				return false
			}
		}
		return true
	}, "every agent backed off past the base cadence")
	for _, a := range o.Agents {
		if a.DirectivesApplied() == 0 {
			t.Fatalf("agent %s backed off without applying a directive", a.ID())
		}
		if iv := a.Interval(); iv > 4*base {
			t.Fatalf("agent %s interval %v beyond the 4×base clamp", a.ID(), iv)
		}
	}

	// The daemon's controller state must be visible through /metrics-backed
	// accessors: directives were sent and the cadence gauges moved.
	found := map[string]bool{}
	for _, m := range o.Daemon.Metrics().Snapshot() {
		switch m.Name {
		case "intsched_cadence_directives_sent_total":
			if m.Value == 0 {
				t.Fatal("directives applied but none counted as sent")
			}
			found[m.Name] = true
		case "intsched_probe_cadence_us":
			if labelValue(m, "class") == "backoff" && m.Value > 0 {
				found[m.Name] = true
			}
		case "intsched_probe_budget_utilization":
			if m.Value > 0 && m.Value <= 1.01 {
				found[m.Name] = true
			}
		}
	}
	for _, name := range []string{
		"intsched_cadence_directives_sent_total",
		"intsched_probe_cadence_us",
		"intsched_probe_budget_utilization",
	} {
		if !found[name] {
			t.Fatalf("metric %s missing or never moved", name)
		}
	}
}

func labelValue(m obs.MetricSnapshot, key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// V1 compatibility: an agent that never opted in drops directive datagrams
// on the floor and keeps its static cadence; after opt-in the same frame
// applies, and stale or malformed frames still do not.
func TestAgentDirectiveOptInAndSeqGate(t *testing.T) {
	a, err := NewProbeAgent("e1", "127.0.0.1:9", "sched", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	defer a.Close()

	directive := func(iv time.Duration, seq uint64) *wire.Datagram {
		return &wire.Datagram{
			Kind:    wire.KindDirective,
			TTL:     wire.DefaultTTL,
			Src:     "sched",
			Dst:     "e1",
			Payload: telemetry.EncodeDirective(telemetry.CadenceDirective{Interval: iv, Seq: seq}),
		}
	}

	// Pre-opt-in: dropped silently, static cadence kept.
	a.handle(directive(200*time.Millisecond, 1))
	if iv := a.Interval(); iv != 50*time.Millisecond {
		t.Fatalf("directive applied without opt-in: interval %v", iv)
	}

	a.EnableAdaptive()
	a.handle(directive(200*time.Millisecond, 2))
	if iv := a.Interval(); iv != 200*time.Millisecond {
		t.Fatalf("directive not applied after opt-in: interval %v", iv)
	}
	if a.DirectivesApplied() != 1 {
		t.Fatalf("applied count %d, want 1", a.DirectivesApplied())
	}

	// Stale seq (a reordered datagram) must not roll the cadence back.
	a.handle(directive(20*time.Millisecond, 1))
	if iv := a.Interval(); iv != 200*time.Millisecond {
		t.Fatalf("stale directive rolled cadence back to %v", iv)
	}

	// Malformed frames — truncated, unknown version — decode as
	// no-directive.
	bad := directive(100*time.Millisecond, 3)
	bad.Payload = bad.Payload[:len(bad.Payload)-4]
	a.handle(bad)
	unk := directive(100*time.Millisecond, 4)
	unk.Payload[2] = 0x7f
	a.handle(unk)
	if iv := a.Interval(); iv != 200*time.Millisecond {
		t.Fatalf("malformed directive changed cadence to %v", iv)
	}
	if a.DirectivesApplied() != 1 {
		t.Fatalf("malformed frames counted as applied: %d", a.DirectivesApplied())
	}
}
