package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
)

// Flap tests: a link failure manifests to the collector as probe silence, a
// recovery as the stream resuming. Both transitions must advance the epoch so
// rank-cache entries from before the transition are never served after it.
// The package runs under -race in CI; the concurrent variant below exercises
// the eviction path against lock-free snapshot readers.

// flapFixture drives a service over a hand-clocked collector fed by three
// probe streams: dev and e1 reach sched via s1, e2 via s2-s1. Silencing e2
// models a failure of the s1-s2 link; resuming it models recovery.
type flapFixture struct {
	svc  *Service
	coll *collector.Collector
	now  atomic.Int64
	seq  uint64
}

func newFlapFixture(t *testing.T, cfg ServiceConfig) *flapFixture {
	t.Helper()
	f := &flapFixture{}
	f.now.Store(int64(time.Second))

	// The netsim network exists only to give the service a transport stack;
	// the collector's view is fed by hand-built probes below.
	nw := netsim.New(simtime.NewEngine())
	nw.AddSwitch("s1")
	nw.AddSwitch("s2")
	for _, h := range []netsim.NodeID{"dev", "e1", "sched"} {
		nw.AddHost(h)
		if _, err := nw.Connect(h, "s1", netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	nw.AddHost("e2")
	if _, err := nw.Connect("e2", "s2", netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Connect("s2", "s1", netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	domain := transport.NewDomain(nw).InstallAll()

	// QueueWindow 200 ms -> derived adjacency TTL of 1 s.
	f.coll = collector.New("sched", func() time.Duration { return time.Duration(f.now.Load()) },
		collector.Config{QueueWindow: 200 * time.Millisecond})
	f.svc = NewService(domain.Stack("sched"), f.coll, cfg)
	f.svc.Register(&DelayRanker{})
	return f
}

func (f *flapFixture) advance(d time.Duration) { f.now.Add(int64(d)) }

type flapHop struct {
	dev     string
	in, out int
}

// probeVia ingests one probe from origin whose INT stack lists the given
// switch hops (terminating at the collector).
func (f *flapFixture) probeVia(origin string, hops ...flapHop) {
	f.seq++
	now := time.Duration(f.now.Load())
	p := &telemetry.ProbePayload{Origin: origin, Seq: f.seq}
	for _, h := range hops {
		p.Stack.Append(telemetry.Record{
			Device: h.dev, IngressPort: h.in, EgressPort: h.out,
			LinkLatency: time.Millisecond, EgressTS: now - time.Millisecond,
		})
	}
	f.coll.HandleProbe(p)
}

// probeLive ingests fresh probes from the streams unaffected by the flap.
func (f *flapFixture) probeLive() {
	f.probeVia("dev", flapHop{dev: "s1", in: 1, out: 4})
	f.probeVia("e1", flapHop{dev: "s1", in: 2, out: 4})
}

// probeE2 ingests a probe from the stream that the flap silences.
func (f *flapFixture) probeE2() {
	f.probeVia("e2", flapHop{dev: "s2", in: 1, out: 2}, flapHop{dev: "s1", in: 3, out: 4})
}

func findCand(t *testing.T, cands []Candidate, node netsim.NodeID) Candidate {
	t.Helper()
	for _, c := range cands {
		if c.Node == node {
			return c
		}
	}
	t.Fatalf("candidate %s missing from %v", node, cands)
	return Candidate{}
}

// TestFlapInvalidatesRankCacheAcrossDownAndUp is the end-to-end contract for
// a link-down -> link-up flap: the epoch advances on the down transition
// (adjacency eviction, no probe involved) and again on the up transition
// (stream resumes), and the rank cache never serves a ranking computed on the
// other side of either transition.
func TestFlapInvalidatesRankCacheAcrossDownAndUp(t *testing.T) {
	f := newFlapFixture(t, ServiceConfig{})
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}

	// Phase 1: every stream fresh. All three candidates reachable.
	f.probeLive()
	f.probeE2()
	before := f.svc.RankFor(req)
	if len(before) != 3 {
		t.Fatalf("candidates %v, want e1, e2, sched", before)
	}
	for _, c := range before {
		if !c.Reachable {
			t.Fatalf("%s unreachable with fresh telemetry: %v", c.Node, before)
		}
	}

	// Phase 2: e2 goes silent while dev and e1 keep probing. Stop the live
	// probes before e2's TTL deadline (its last probe was at 1 s, so the
	// deadline is 2 s) and build a snapshot so the pre-eviction epoch is
	// pinned with a current cached snapshot.
	for i := 0; i < 4; i++ {
		f.advance(200 * time.Millisecond) // up to t = 1.8 s
		f.probeLive()
	}
	f.coll.Snapshot()
	preDown := f.coll.Epoch()

	// Cross the deadline with no probe at all: the expiry-triggered rebuild
	// must evict e2's edges and advance the epoch by itself.
	f.advance(400 * time.Millisecond) // t = 2.2 s
	down := f.svc.RankFor(req)
	if f.coll.Epoch() == preDown {
		t.Fatal("adjacency eviction did not advance the epoch")
	}
	if c := findCand(t, down, "e2"); c.Reachable {
		t.Fatalf("e2 still reachable after its stream aged out: %v", down)
	}
	for _, n := range []netsim.NodeID{"e1", "sched"} {
		if c := findCand(t, down, n); !c.Reachable {
			t.Fatalf("%s lost reachability though its stream is fresh: %v", n, down)
		}
	}
	if reflect.DeepEqual(before, down) {
		t.Fatal("down-period ranking identical to pre-fault ranking")
	}
	// While the topology is stable in the down state, the cache serves.
	downAgain := f.svc.RankFor(req)
	if !reflect.DeepEqual(down, downAgain) {
		t.Fatalf("unstable down-period ranking: %v vs %v", down, downAgain)
	}

	// Phase 3: the flap ends — e2's stream resumes. The probe advances the
	// epoch, so the recovery query must recompute, not serve the down-period
	// cache entry.
	preUp := f.coll.Epoch()
	f.advance(200 * time.Millisecond)
	f.probeLive()
	f.probeE2()
	if f.coll.Epoch() == preUp {
		t.Fatal("recovery probes did not advance the epoch")
	}
	up := f.svc.RankFor(req)
	if c := findCand(t, up, "e2"); !c.Reachable {
		t.Fatalf("e2 still unreachable after recovery: %v", up)
	}
	if reflect.DeepEqual(up, down) {
		t.Fatal("down-period ranking served after recovery")
	}
	recomputed := (&DelayRanker{}).Rank(f.coll.Snapshot(), "dev", []netsim.NodeID{"e1", "e2", "sched"})
	if !reflect.DeepEqual(up, recomputed) {
		t.Fatalf("post-recovery RankFor %v, recomputation gives %v", up, recomputed)
	}

	st := f.svc.CacheStats()
	if st.Misses != 3 {
		t.Fatalf("stats %+v, want one computation per phase", st)
	}
	if st.Hits != 1 {
		t.Fatalf("stats %+v, want exactly the stable down-period hit", st)
	}
}

// TestExcludeUnreachableRecoveryPolicy: with the recovery policy on, a
// candidate whose learned path aged out is dropped from responses entirely —
// unless every candidate is unreachable, in which case the full estimate list
// is the graceful fallback.
func TestExcludeUnreachableRecoveryPolicy(t *testing.T) {
	f := newFlapFixture(t, ServiceConfig{ExcludeUnreachable: true})
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}
	f.probeLive()
	f.probeE2()
	if got := f.svc.RankFor(req); len(got) != 3 {
		t.Fatalf("pre-fault candidates %v, want 3", got)
	}

	// e2 silent past its TTL, the others fresh: e2 is excluded.
	for i := 0; i < 6; i++ {
		f.advance(200 * time.Millisecond)
		f.probeLive()
	}
	during := f.svc.RankFor(req)
	if len(during) != 2 {
		t.Fatalf("down-period candidates %v, want e2 excluded", during)
	}
	for _, c := range during {
		if c.Node == "e2" {
			t.Fatalf("e2 served despite ExcludeUnreachable: %v", during)
		}
	}

	// Everything silent past the TTL: no candidate is reachable, so the
	// policy falls back to returning the (unreachable) estimates rather
	// than an empty answer.
	f.advance(2 * time.Second)
	fallback := f.svc.RankFor(req)
	if len(fallback) != 3 {
		t.Fatalf("fallback candidates %v, want the full unreachable list", fallback)
	}
	for _, c := range fallback {
		if c.Reachable {
			t.Fatalf("%s reachable after total silence: %v", c.Node, fallback)
		}
	}

	// Recovery restores the filtered, reachable answer.
	f.advance(100 * time.Millisecond)
	f.probeLive()
	f.probeE2()
	after := f.svc.RankFor(req)
	if len(after) != 3 {
		t.Fatalf("post-recovery candidates %v, want 3", after)
	}
	for _, c := range after {
		if !c.Reachable {
			t.Fatalf("%s unreachable after recovery: %v", c.Node, after)
		}
	}
}

// TestReachableOnlySemantics pins the helper's contract: filtering returns a
// fresh slice, the all-reachable and none-reachable cases return the input
// unchanged, and the input is never mutated (cached lists are passed in).
func TestReachableOnlySemantics(t *testing.T) {
	mixed := []Candidate{
		{Node: "a", Reachable: true},
		{Node: "b", Reachable: false},
		{Node: "c", Reachable: true},
	}
	orig := append([]Candidate(nil), mixed...)
	got := ReachableOnly(mixed)
	if len(got) != 2 || got[0].Node != "a" || got[1].Node != "c" {
		t.Fatalf("filtered %v", got)
	}
	if !reflect.DeepEqual(mixed, orig) {
		t.Fatalf("input mutated: %v", mixed)
	}
	if &got[0] == &mixed[0] {
		t.Fatal("filtered result aliases the input")
	}

	all := []Candidate{{Node: "a", Reachable: true}}
	if out := ReachableOnly(all); len(out) != 1 || &out[0] != &all[0] {
		t.Fatalf("all-reachable input not returned unchanged: %v", out)
	}
	none := []Candidate{{Node: "a"}, {Node: "b"}}
	if out := ReachableOnly(none); len(out) != 2 || &out[0] != &none[0] {
		t.Fatalf("none-reachable input not returned as fallback: %v", out)
	}
	if out := ReachableOnly(nil); out != nil {
		t.Fatalf("nil input: %v", out)
	}
}

// TestConcurrentQueriesAcrossFlaps drives parallel RankFor calls while the
// main goroutine repeatedly flaps e2's stream (silence past the TTL, then
// resume). The eviction path inside snapshot rebuilds must be race-free
// against the lock-free snapshot readers (validated by go test -race).
func TestConcurrentQueriesAcrossFlaps(t *testing.T) {
	f := newFlapFixture(t, ServiceConfig{})
	f.probeLive()
	f.probeE2()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
				if len(got) == 0 {
					t.Error("empty ranking during flap churn")
					return
				}
			}
		}()
	}
	for cycle := 0; cycle < 5; cycle++ {
		// Down: e2 silent for 1.2 s (past the 1 s TTL) while the others probe.
		for i := 0; i < 6; i++ {
			f.advance(200 * time.Millisecond)
			f.probeLive()
		}
		// Take one snapshot inside the down window so the eviction happens
		// deterministically even if no reader goroutine lands here.
		f.coll.Snapshot()
		// Up: e2 resumes.
		f.advance(100 * time.Millisecond)
		f.probeLive()
		f.probeE2()
	}
	close(stop)
	wg.Wait()
	if f.coll.Stats().AdjacencyEvictions == 0 {
		t.Fatal("flap cycles caused no evictions")
	}
}
