package core

import (
	"reflect"
	"testing"

	"intsched/internal/collector"
	"intsched/internal/netsim"
)

// TestRankBatchMatchesSingleQueries: batched answers must be exactly what N
// independent RankFor calls would return, across metrics, shaping variants,
// requirements, and unknown metrics.
func TestRankBatchMatchesSingleQueries(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.Register(&TransferTimeRanker{})
	f.svc.SetCapabilities("e1", Capabilities{Hardware: []string{"gpu"}})
	reqs := []*QueryRequest{
		{From: "dev", Metric: MetricDelay, Sorted: true},
		{From: "e1", Metric: MetricDelay, Sorted: true},
		{From: "dev", Metric: MetricBandwidth, Sorted: true},
		{From: "dev", Metric: MetricDelay, Sorted: false},          // same key as [0], different shaping
		{From: "dev", Metric: MetricDelay, Sorted: true, Count: 1}, // same key as [0], truncated
		{From: "dev", Metric: MetricTransferTime, Sorted: true, DataBytes: 1 << 20},
		{From: "dev", Metric: MetricDelay, Sorted: true, Requirements: &Requirements{Hardware: []string{"gpu"}}},
		{From: "dev", Metric: MetricNearest, Sorted: true}, // no ranker registered: nil
	}
	// Reference: fresh fixture state answered one by one (same topology —
	// the engine is idle, so the epoch is frozen).
	want := make([][]Candidate, len(reqs))
	for i, req := range reqs {
		want[i] = f.svc.RankFor(req)
	}
	// Invalidate so the batch starts from a cold cache too, then compare.
	f.svc.cache.Invalidate()
	got := f.svc.RankBatch(reqs)
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(got), len(reqs))
	}
	for i := range reqs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("request %d: batch %v, single %v", i, got[i], want[i])
		}
	}
	// And a warm-cache batch (every key now cached) must agree as well.
	got = f.svc.RankBatch(reqs)
	for i := range reqs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("warm request %d: batch %v, single %v", i, got[i], want[i])
		}
	}
}

// countingRanker wraps DelayRanker and counts ranking computations; the
// embedded ranker's RankCacheable()=true is promoted, so it is cacheable.
type countingRanker struct {
	DelayRanker
	calls int
}

func (r *countingRanker) Rank(topo *collector.Topology, from netsim.NodeID, cands []netsim.NodeID) []Candidate {
	r.calls++
	return r.DelayRanker.Rank(topo, from, cands)
}

// TestRankBatchDeduplicatesKeys: identical cache keys in one batch must be
// computed once, and later identical batches served entirely as hits.
func TestRankBatchDeduplicatesKeys(t *testing.T) {
	f := newServiceFixture(t)
	cr := &countingRanker{}
	f.svc.Register(cr)
	reqs := []*QueryRequest{
		{From: "dev", Metric: MetricDelay, Sorted: true},
		{From: "dev", Metric: MetricDelay, Sorted: false},
		{From: "dev", Metric: MetricDelay, Count: 1, Sorted: true},
	}
	f.svc.RankBatch(reqs)
	if cr.calls != 1 {
		t.Fatalf("%d ranking computations for three identical keys, want one", cr.calls)
	}
	f.svc.RankBatch(reqs)
	if cr.calls != 1 {
		t.Fatalf("warm batch recomputed: %d calls", cr.calls)
	}
	if st := f.svc.CacheStats(); st.Hits != 3 {
		t.Fatalf("stats %+v, want all hits on the second batch", st)
	}
	// The cached full list must not have been corrupted by the shaped
	// (unsorted, truncated) batch members.
	single := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	if len(single) != 2 || single[0].Delay > single[1].Delay {
		t.Fatalf("cached ordering corrupted: %v", single)
	}
}

// TestRankBatchUncacheablePaths: custom candidate functions and uncacheable
// rankers must fall back to the per-request path, bypassing the cache.
func TestRankBatchUncacheablePaths(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.Register(&ComputeAwareRanker{Network: &DelayRanker{}, LoadFn: f.svc.Load})
	got := f.svc.RankBatch([]*QueryRequest{
		{From: "dev", Metric: MetricComputeAware, Sorted: true},
		{From: "dev", Metric: MetricDelay, Sorted: true},
	})
	if len(got[0]) == 0 || len(got[1]) == 0 {
		t.Fatalf("batch with mixed cacheability: %v", got)
	}
	if st := f.svc.CacheStats(); st.Misses != 1 {
		t.Fatalf("stats %+v: only the delay query may touch the cache", st)
	}
	// With a custom candidate function installed, every batch member must
	// bypass the cache (the function may close over unversioned state).
	calls := 0
	f.svc.SetCandidateFn(func(from netsim.NodeID) []netsim.NodeID {
		calls++
		return []netsim.NodeID{"e1"}
	})
	f.svc.RankBatch([]*QueryRequest{
		{From: "dev", Metric: MetricDelay, Sorted: true},
		{From: "dev", Metric: MetricDelay, Sorted: true},
	})
	if calls != 2 {
		t.Fatalf("custom candidate fn called %d times, want every batch member", calls)
	}
}

// batchFixtureReqs builds a warm-cacheable batch: distinct (from, metric)
// keys, repeated to length n.
func batchFixtureReqs(n int) []*QueryRequest {
	froms := []netsim.NodeID{"dev", "e1", "sched"}
	metrics := []Metric{MetricDelay, MetricBandwidth}
	reqs := make([]*QueryRequest, n)
	for i := range reqs {
		reqs[i] = &QueryRequest{
			From:   froms[i%len(froms)],
			Metric: metrics[(i/len(froms))%len(metrics)],
			Sorted: true,
		}
	}
	return reqs
}

// TestWarmRankAllocations pins the steady-state allocation contract of the
// index-space read path: a warm single query is allocation-free (a cache
// hit is served as zero-copy views of the shared entry), and a warm
// N-request batch allocates only its two result slices, independent of N.
func TestWarmRankAllocations(t *testing.T) {
	f := newServiceFixture(t)
	reqs := batchFixtureReqs(16)
	f.svc.RankBatch(reqs) // warm every key
	single := testing.AllocsPerRun(200, func() {
		for _, req := range reqs {
			f.svc.RankFor(req)
		}
	})
	if single != 0 {
		t.Fatalf("warm single queries allocated %.1f per run, want 0 (zero-copy entry views)", single)
	}
	batch := testing.AllocsPerRun(200, func() {
		f.svc.RankBatch(reqs)
	})
	if batch > 2 {
		t.Fatalf("warm batch allocated %.1f per run, want at most its two result slices", batch)
	}
}

func BenchmarkRankForWarm(b *testing.B) {
	f := newServiceFixture(&testing.T{})
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}
	f.svc.RankFor(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.svc.RankFor(req)
	}
}

func BenchmarkRankBatchWarm(b *testing.B) {
	f := newServiceFixture(&testing.T{})
	reqs := batchFixtureReqs(16)
	f.svc.RankBatch(reqs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.svc.RankBatch(reqs)
	}
}
