package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCalibrationInterpolation(t *testing.T) {
	c, err := NewCalibration([]CalPoint{{0, 0}, {10, 0.5}, {20, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    int
		want float64
	}{
		{-5, 0}, {0, 0}, {5, 0.25}, {10, 0.5}, {15, 0.75}, {20, 1.0}, {100, 1.0},
	}
	for _, tc := range cases {
		if got := c.Utilization(tc.q); got != tc.want {
			t.Errorf("util(%d) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCalibrationForcedMonotone(t *testing.T) {
	c, err := NewCalibration([]CalPoint{{0, 0.5}, {10, 0.2}, {20, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for q := 0; q <= 25; q++ {
		u := c.Utilization(q)
		if u < prev {
			t.Fatalf("non-monotone at q=%d: %v < %v", q, u, prev)
		}
		prev = u
	}
}

func TestCalibrationClampsUtil(t *testing.T) {
	c, _ := NewCalibration([]CalPoint{{0, -1}, {10, 2}})
	if c.Utilization(0) != 0 || c.Utilization(10) != 1 {
		t.Fatalf("clamping failed: %v %v", c.Utilization(0), c.Utilization(10))
	}
}

func TestCalibrationEmptyRejected(t *testing.T) {
	if _, err := NewCalibration(nil); err == nil {
		t.Fatal("empty calibration accepted")
	}
}

func TestDefaultCalibrationMonotoneProperty(t *testing.T) {
	c := DefaultCalibration()
	f := func(a, b uint8) bool {
		qa, qb := int(a), int(b)
		if qa > qb {
			qa, qb = qb, qa
		}
		ua, ub := c.Utilization(qa), c.Utilization(qb)
		return ua <= ub && ua >= 0 && ub <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitCalibrationAveragesDuplicates(t *testing.T) {
	c, err := FitCalibration([]CalPoint{{5, 0.4}, {5, 0.6}, {10, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(5); got != 0.5 {
		t.Fatalf("averaged util %v, want 0.5", got)
	}
	if _, err := FitCalibration(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
}

func TestCalibrationPointsCopy(t *testing.T) {
	c := DefaultCalibration()
	pts := c.Points()
	pts[0].Util = 99
	if c.Utilization(0) == 99 {
		t.Fatal("Points leaked internal state")
	}
}

func TestCalibrateKLeastSquares(t *testing.T) {
	// Perfect k=20ms data.
	var samples []KSample
	for q := 1; q <= 10; q++ {
		samples = append(samples, KSample{QueueSum: q, ExtraDelay: time.Duration(q) * 20 * time.Millisecond})
	}
	k, err := CalibrateK(samples)
	if err != nil {
		t.Fatal(err)
	}
	if k < 19*time.Millisecond || k > 21*time.Millisecond {
		t.Fatalf("k=%v, want 20ms", k)
	}
}

func TestCalibrateKIgnoresZeroQueues(t *testing.T) {
	_, err := CalibrateK([]KSample{{QueueSum: 0, ExtraDelay: time.Hour}})
	if err == nil {
		t.Fatal("zero-queue-only samples accepted")
	}
	k, err := CalibrateK([]KSample{
		{QueueSum: 0, ExtraDelay: time.Hour},
		{QueueSum: 4, ExtraDelay: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k != 10*time.Millisecond {
		t.Fatalf("k=%v, want 10ms", k)
	}
}

func TestCalibrateKNegativeClamped(t *testing.T) {
	k, err := CalibrateK([]KSample{{QueueSum: 5, ExtraDelay: -time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Fatalf("negative k not clamped: %v", k)
	}
}
