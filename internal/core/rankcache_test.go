package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
)

// TestRankerCacheability pins down which rankers may be memoized: pure
// functions of the snapshot yes; RNG-driven, stateful, or load-dependent
// rankers no.
func TestRankerCacheability(t *testing.T) {
	pure := []Ranker{&DelayRanker{}, &BandwidthRanker{}, &TransferTimeRanker{}, &NearestRanker{}}
	for _, r := range pure {
		if !RankerCacheable(r) {
			t.Errorf("%T must be cacheable", r)
		}
	}
	impure := []Ranker{
		NewHysteresisRanker(&DelayRanker{}, 0.2),
		NewRandomRanker(simtime.NewRand(1)),
		&ComputeAwareRanker{},
	}
	for _, r := range impure {
		if RankerCacheable(r) {
			t.Errorf("%T must not be cacheable", r)
		}
	}
}

// TestRankCacheHitWithinEpoch: repeated identical queries between probe
// arrivals must be served from the cache with identical results.
func TestRankCacheHitWithinEpoch(t *testing.T) {
	f := newServiceFixture(t)
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}
	first := f.svc.RankFor(req)
	second := f.svc.RankFor(req)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result diverged: %v vs %v", first, second)
	}
	st := f.svc.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss then 1 hit", st)
	}
}

// TestRankCacheInvalidatesOnEpochAdvance: a new probe must flush the cache
// so rankings reflect the new telemetry.
func TestRankCacheInvalidatesOnEpochAdvance(t *testing.T) {
	f := newServiceFixture(t)
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}
	f.svc.RankFor(req)
	epoch := f.coll.Epoch()
	// Run the simulation so fresh probes arrive (100 ms cadence).
	f.engine.Run(f.engine.Now() + 300*time.Millisecond)
	if f.coll.Epoch() == epoch {
		t.Fatal("probes did not advance the epoch")
	}
	f.svc.RankFor(req)
	st := f.svc.CacheStats()
	if st.Misses != 2 {
		t.Fatalf("stats %+v, want a second miss after epoch advance", st)
	}
	if st.Invalidations == 0 {
		t.Fatal("no invalidation recorded")
	}
}

// TestRankCacheServesShapedRequests: Sorted=false and Count shape a private
// copy; the cached full list must stay intact and best-first.
func TestRankCacheServesShapedRequests(t *testing.T) {
	f := newServiceFixture(t)
	sorted := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	if len(sorted) != 2 {
		t.Fatalf("candidates %v", sorted)
	}
	// ID-ordered view from the cache.
	unsorted := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: false})
	for i := 1; i < len(unsorted); i++ {
		if unsorted[i-1].Node > unsorted[i].Node {
			t.Fatalf("option two not ID-ordered: %v", unsorted)
		}
	}
	// Truncated view from the cache.
	top := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Count: 1, Sorted: true})
	if len(top) != 1 || top[0].Node != sorted[0].Node {
		t.Fatalf("count-limited view %v, want best %v", top, sorted[0].Node)
	}
	// The cached ordering must have survived the ID-sort of the unsorted
	// view.
	again := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	if !reflect.DeepEqual(sorted, again) {
		t.Fatalf("cache corrupted by shaped request: %v vs %v", sorted, again)
	}
	if st := f.svc.CacheStats(); st.Misses != 1 {
		t.Fatalf("stats %+v, want a single computation", st)
	}
}

// TestRankCacheKeySeparation: different devices, metrics, and data sizes
// must not share entries.
func TestRankCacheKeySeparation(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.Register(&TransferTimeRanker{})
	a := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricTransferTime, Sorted: true, DataBytes: 1 << 20})
	b := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricTransferTime, Sorted: true, DataBytes: 1 << 24})
	if a[0].Delay == b[0].Delay {
		t.Fatalf("different sizes produced identical estimates: %v vs %v", a[0], b[0])
	}
	if st := f.svc.CacheStats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats %+v, want two distinct computations", st)
	}
	f.svc.RankFor(&QueryRequest{From: "e1", Metric: MetricDelay, Sorted: true})
	f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	if st := f.svc.CacheStats(); st.Hits != 0 {
		t.Fatalf("stats %+v, cross-key hit", st)
	}
}

// TestRankCacheBypassedForCustomCandidates: a custom candidate function may
// close over mutable state the epoch does not version.
func TestRankCacheBypassedForCustomCandidates(t *testing.T) {
	f := newServiceFixture(t)
	calls := 0
	f.svc.SetCandidateFn(func(from netsim.NodeID) []netsim.NodeID {
		calls++
		return []netsim.NodeID{"e1"}
	})
	f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	if calls != 2 {
		t.Fatalf("custom candidate fn called %d times, want every query", calls)
	}
	if st := f.svc.CacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("stats %+v, cache consulted despite custom candidates", st)
	}
}

// TestRankCacheInvalidatedByCapabilities: capability changes re-filter the
// candidate set, so cached rankings must be dropped.
func TestRankCacheInvalidatedByCapabilities(t *testing.T) {
	f := newServiceFixture(t)
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true,
		Requirements: &Requirements{Hardware: []string{"gpu"}}}
	if got := f.svc.RankFor(req); len(got) != 0 {
		t.Fatalf("no server has a gpu yet: %v", got)
	}
	f.svc.SetCapabilities("e1", Capabilities{Hardware: []string{"gpu"}})
	if got := f.svc.RankFor(req); len(got) != 1 || got[0].Node != "e1" {
		t.Fatalf("stale capability filter served from cache: %v", got)
	}
}

// TestRankCacheInvalidatedByQueueWindowExpiry: windowed queue maxima change
// when a report ages out of the queue window even though no probe arrived;
// the expiry-driven snapshot rebuild advances the epoch, so RankFor must
// recompute instead of serving the ranking cached against the pre-expiry
// maxima.
func TestRankCacheInvalidatedByQueueWindowExpiry(t *testing.T) {
	engine := simtime.NewEngine()
	nw := netsim.New(engine)
	nw.AddSwitch("s1")
	for _, h := range []netsim.NodeID{"dev", "sched"} {
		nw.AddHost(h)
		if _, err := nw.Connect(h, "s1", netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	domain := transport.NewDomain(nw).InstallAll()
	// Hand-driven clock: the report must age out with no probe (and no
	// simulation event) in between, which the fixture's fleet cannot do.
	now := time.Second
	coll := collector.New("sched", func() time.Duration { return now },
		collector.Config{QueueWindow: 200 * time.Millisecond})
	svc := NewService(domain.Stack("sched"), coll, ServiceConfig{})
	svc.Register(&DelayRanker{})

	// One probe teaches dev--s1--sched and reports a deep queue on s1's
	// egress port toward sched.
	p := &telemetry.ProbePayload{Origin: "dev", Seq: 1}
	p.Stack.Append(telemetry.Record{
		Device: "s1", IngressPort: 0, EgressPort: 2,
		LinkLatency: time.Millisecond, EgressTS: now,
		Queues: []telemetry.PortQueue{{Port: 2, MaxQueue: 40, Packets: 5}},
	})
	coll.HandleProbe(p)

	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}
	before := svc.RankFor(req)
	if len(before) != 1 || before[0].Node != "sched" {
		t.Fatalf("candidates %v, want just sched", before)
	}
	// Age the queue report out of the window without any probe arriving.
	now += 250 * time.Millisecond
	after := svc.RankFor(req)
	recomputed := (&DelayRanker{}).Rank(coll.Snapshot(), "dev", []netsim.NodeID{"sched"})
	if !reflect.DeepEqual(after, recomputed) {
		t.Fatalf("post-expiry RankFor %v, recomputation gives %v", after, recomputed)
	}
	if after[0].Delay >= before[0].Delay {
		t.Fatalf("queue penalty survived expiry: before %v, after %v", before[0].Delay, after[0].Delay)
	}
}

// TestRankCacheStoreDroppedAfterInvalidate: an Invalidate between a missed
// Lookup and the corresponding Store — the lost-invalidation race, e.g.
// SetCapabilities landing while a ranking is being computed — must drop the
// entry, since it may have been computed from the superseded inputs.
func TestRankCacheStoreDroppedAfterInvalidate(t *testing.T) {
	var c RankCache
	key := RankKey{From: 3, Metric: MetricDelay}
	_, ok, gen := c.Lookup(7, key)
	if ok {
		t.Fatal("unexpected hit in empty cache")
	}
	c.Invalidate()
	c.Store(7, gen, key, []Candidate{{Node: "stale"}})
	if entry, ok, _ := c.Lookup(7, key); ok {
		t.Fatalf("stale entry resurrected after Invalidate: %v", entry.Ranked())
	}
	// A Store with the current generation token is accepted.
	_, _, gen = c.Lookup(7, key)
	c.Store(7, gen, key, []Candidate{{Node: "fresh"}})
	if entry, ok, _ := c.Lookup(7, key); !ok || entry.Ranked()[0].Node != "fresh" {
		t.Fatalf("current-generation entry not stored (hit=%v)", ok)
	}
}

// TestRankCacheDisabled: DisableRankCache must force recomputation.
func TestRankCacheDisabled(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.cfg.DisableRankCache = true
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true}
	f.svc.RankFor(req)
	f.svc.RankFor(req)
	if st := f.svc.CacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("stats %+v, cache consulted while disabled", st)
	}
}

// TestDataBytesBucketing: a configured bucket function coarsens cache keys
// so near-equal sizes share one entry.
func TestDataBytesBucketing(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.cfg.DataBytesBucket = func(b int64) int64 { return b >> 20 } // 1 MiB buckets
	f.svc.Register(&TransferTimeRanker{})
	f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricTransferTime, Sorted: true, DataBytes: 1<<20 + 100})
	f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricTransferTime, Sorted: true, DataBytes: 1<<20 + 999})
	if st := f.svc.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats %+v, want bucketed hit", st)
	}
}

// TestConcurrentQueriesWhileProbesMutate drives parallel RankFor calls
// against live probe ingestion — the epoch-versioned read path must be
// race-free (validated by go test -race).
func TestConcurrentQueriesWhileProbesMutate(t *testing.T) {
	f := newServiceFixture(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			metrics := []Metric{MetricDelay, MetricBandwidth}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got := f.svc.RankFor(&QueryRequest{From: "dev", Metric: metrics[i%2], Sorted: true})
				if len(got) == 0 {
					t.Error("empty ranking during churn")
					return
				}
			}
		}(g)
	}
	// Mutate collector state concurrently: direct probe ingestion at high
	// rate (the transport path would need the single-threaded engine).
	for i := 0; i < 500; i++ {
		p := &telemetry.ProbePayload{Origin: "dev", Seq: uint64(1_000_000 + i)}
		p.Stack.Append(telemetry.Record{
			Device: "s1", IngressPort: 0, EgressPort: 2,
			LinkLatency: time.Millisecond, EgressTS: f.engine.Now(),
			Queues: []telemetry.PortQueue{{Port: 2, MaxQueue: i % 20, Packets: 5}},
		})
		f.coll.HandleProbe(p)
	}
	close(stop)
	wg.Wait()
}
