package core

import (
	"strings"
	"sync"
)

// This file implements the shared rank-result cache used across the
// scheduler read path (the simulated Service and the live CollectorDaemon).
// Between telemetry updates — the common case at high query rates, since
// probes arrive every 100 ms — the learned topology is frozen at one
// collector epoch, so a ranking computed for (from, metric, dataBytes,
// requirements) is valid for every identical query until the epoch
// advances. Invalidation is by epoch comparison only; no timers.
//
// Entries are immutable RankEntry values holding the best-first ranking
// with its reachable prefix length (and a lazily computed ID-ordered
// variant), so every per-request shaping — unreachable filtering, ID order,
// count truncation — is a zero-allocation reslice of shared storage instead
// of a clone-and-sort per query.

// CacheableRanker is implemented by rankers that declare whether their
// output is a pure function of the topology snapshot and the query. Rankers
// that do not implement it, or return false, are never cached: RandomRanker
// draws from an RNG stream, HysteresisRanker keeps per-device state, and
// ComputeAwareRanker reads load reports that change without a collector
// epoch advance.
type CacheableRanker interface {
	// RankCacheable reports whether equal (snapshot, query) inputs always
	// produce equal output with no side effects.
	RankCacheable() bool
}

// RankerCacheable reports whether r's results may be served from the rank
// cache.
func RankerCacheable(r Ranker) bool {
	c, ok := r.(CacheableRanker)
	return ok && c.RankCacheable()
}

// RankCacheable implements CacheableRanker: Algorithm 1 is a pure function
// of the snapshot.
func (r *DelayRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: the bottleneck estimate is a
// pure function of the snapshot.
func (r *BandwidthRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: hop counts are static.
func (r *NearestRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: the estimate depends only on
// the snapshot and the query's data size.
func (r *TransferTimeRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: hysteresis is stateful (the
// previous top pick per device shapes the next answer), so its results
// must be recomputed every query.
func (r *HysteresisRanker) RankCacheable() bool { return false }

// RankKey identifies one cacheable ranking computation within an epoch.
// The key is fully index-space: no strings are hashed on the hot path
// except the canonical requirements encoding (empty for typical queries).
type RankKey struct {
	// From is the querying device's position in the snapshot's sorted host
	// list. Host indices are stable within an epoch (and the cache is
	// epoch-keyed), so the index identifies the device exactly; queries
	// from non-host devices bypass the cache.
	From int32
	// Metric is the ranking strategy.
	Metric Metric
	// DataBytes is the (possibly bucketed) transfer-size hint.
	DataBytes int64
	// Reqs is the canonical requirements encoding ("" for none).
	Reqs string
}

// ReqKey canonicalizes a Requirements value for use in a RankKey.
func ReqKey(r *Requirements) string {
	if r == nil {
		return ""
	}
	return "hw=" + strings.Join(r.Hardware, ",") + "|sw=" + strings.Join(r.Software, ",")
}

// RankEntry is one cached ranking: the full best-first candidate list plus
// the precomputed handles request shaping needs. Entries are immutable
// after Store — Shaped returns views of shared storage, and callers must
// not modify what they are handed (clone first to mutate).
type RankEntry struct {
	// ranked is the best-first list. Every built-in cacheable ranker ends
	// with sortCandidates, which groups reachable candidates before
	// unreachable ones; reach is the length of that reachable prefix, or
	// -1 when a custom ranker broke the grouping invariant (Shaped then
	// falls back to allocating filters).
	ranked []Candidate
	reach  int
	// byID materializes the ID-ordered variant (the paper's option two) on
	// first use; many workloads never request it.
	byIDOnce sync.Once
	byID     []Candidate
}

func newRankEntry(ranked []Candidate) *RankEntry {
	e := &RankEntry{ranked: ranked}
	for e.reach < len(ranked) && ranked[e.reach].Reachable {
		e.reach++
	}
	for _, c := range ranked[e.reach:] {
		if c.Reachable {
			e.reach = -1 // ungrouped: disable prefix-based shaping
			break
		}
	}
	return e
}

// Ranked returns the best-first list. Shared storage — read only.
func (e *RankEntry) Ranked() []Candidate { return e.ranked }

// sortedByID returns the list re-sorted by node ID (reachable first),
// computing it on first use. Shared storage — read only.
func (e *RankEntry) sortedByID() []Candidate {
	e.byIDOnce.Do(func() {
		e.byID = CloneCandidates(e.ranked)
		sortCandidates(e.byID, func(a, b Candidate) bool { return a.Node < b.Node })
	})
	return e.byID
}

// Shaped applies per-request response shaping as zero-allocation views of
// the entry's storage: idOrder selects the ID-ordered variant (option two),
// exclUnre applies the recovery policy's unreachable filter (with the
// all-unreachable graceful fallback), and count > 0 truncates. The result
// is shared storage — read only.
func (e *RankEntry) Shaped(idOrder, exclUnre bool, count int) []Candidate {
	list := e.ranked
	if idOrder {
		list = e.sortedByID()
	}
	if exclUnre {
		if e.reach < 0 {
			// Ungrouped custom ranking: filter the slow, allocating way.
			list = ReachableOnly(CloneCandidates(list))
		} else if e.reach > 0 && e.reach < len(list) {
			// Both orderings group the reachable prefix first, so the
			// filter is a prefix view; reach == 0 or == len is the
			// unchanged case (graceful fallback / nothing to drop).
			list = list[:e.reach]
		}
	}
	if count > 0 && count < len(list) {
		list = list[:count]
	}
	return list
}

// RankCacheStats reports cache effectiveness.
type RankCacheStats struct {
	Hits, Misses uint64
	// Invalidations counts epoch advances observed by the cache.
	Invalidations uint64
}

// RankCache memoizes ranked candidate lists per collector epoch. All
// methods are safe for concurrent use. Entries from older epochs are
// discarded wholesale the first time a newer epoch is observed, so the
// cache never serves results computed from a superseded topology.
type RankCache struct {
	mu    sync.Mutex
	valid bool
	epoch uint64
	// gen counts Invalidate() calls. A ranking computed before an
	// Invalidate may have used superseded inputs (e.g. the old capability
	// set), so Store drops entries whose generation token — captured at
	// Lookup time, before the computation — is no longer current.
	gen     uint64
	entries map[RankKey]*RankEntry
	stats   RankCacheStats
}

// syncEpochLocked resets the cache when the observed epoch moved.
func (c *RankCache) syncEpochLocked(epoch uint64) {
	if c.valid && c.epoch == epoch {
		return
	}
	if c.valid {
		c.stats.Invalidations++
	}
	c.valid = true
	c.epoch = epoch
	c.entries = make(map[RankKey]*RankEntry)
}

// Lookup returns the cached entry for key at the given epoch, plus a
// generation token to pass back to Store on a miss. The entry's contents
// are shared — shape with Shaped, or CloneCandidates before mutating.
func (c *RankCache) Lookup(epoch uint64, key RankKey) (*RankEntry, bool, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEpochLocked(epoch)
	entry, ok := c.entries[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return entry, ok, c.gen
}

// Store records a computed ranking for key at the given epoch, taking
// ownership of ranked (hand it a private slice; it becomes shared entry
// storage). gen is the token Lookup returned before the ranking was
// computed; if an Invalidate ran in between, the entry is not inserted —
// its inputs may be stale. The built entry is returned either way, so the
// caller can serve views of the computation it just performed.
func (c *RankCache) Store(epoch, gen uint64, key RankKey, ranked []Candidate) *RankEntry {
	entry := newRankEntry(ranked)
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return entry
	}
	c.syncEpochLocked(epoch)
	if c.epoch == epoch {
		c.entries[key] = entry
	}
	return entry
}

// Invalidate drops all entries regardless of epoch (used when inputs
// outside the collector change, e.g. server capabilities) and advances the
// generation so in-flight computations cannot resurrect stale entries.
func (c *RankCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.valid = false
	c.entries = nil
}

// Stats returns a snapshot of the cache counters.
func (c *RankCache) Stats() RankCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CloneCandidates returns a private copy of a ranked list, so cached
// entries can be reordered/truncated per request without corrupting the
// cache.
func CloneCandidates(cs []Candidate) []Candidate {
	if cs == nil {
		return nil
	}
	out := make([]Candidate, len(cs))
	copy(out, cs)
	return out
}
