package core

import (
	"strings"
	"sync"

	"intsched/internal/netsim"
)

// This file implements the shared rank-result cache used across the
// scheduler read path (the simulated Service and the live CollectorDaemon).
// Between telemetry updates — the common case at high query rates, since
// probes arrive every 100 ms — the learned topology is frozen at one
// collector epoch, so a ranking computed for (from, metric, dataBytes,
// requirements) is valid for every identical query until the epoch
// advances. Invalidation is by epoch comparison only; no timers.

// CacheableRanker is implemented by rankers that declare whether their
// output is a pure function of the topology snapshot and the query. Rankers
// that do not implement it, or return false, are never cached: RandomRanker
// draws from an RNG stream, HysteresisRanker keeps per-device state, and
// ComputeAwareRanker reads load reports that change without a collector
// epoch advance.
type CacheableRanker interface {
	// RankCacheable reports whether equal (snapshot, query) inputs always
	// produce equal output with no side effects.
	RankCacheable() bool
}

// RankerCacheable reports whether r's results may be served from the rank
// cache.
func RankerCacheable(r Ranker) bool {
	c, ok := r.(CacheableRanker)
	return ok && c.RankCacheable()
}

// RankCacheable implements CacheableRanker: Algorithm 1 is a pure function
// of the snapshot.
func (r *DelayRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: the bottleneck estimate is a
// pure function of the snapshot.
func (r *BandwidthRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: hop counts are static.
func (r *NearestRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: the estimate depends only on
// the snapshot and the query's data size.
func (r *TransferTimeRanker) RankCacheable() bool { return true }

// RankCacheable implements CacheableRanker: hysteresis is stateful (the
// previous top pick per device shapes the next answer), so its results
// must be recomputed every query.
func (r *HysteresisRanker) RankCacheable() bool { return false }

// RankKey identifies one cacheable ranking computation within an epoch.
type RankKey struct {
	// From is the querying device.
	From netsim.NodeID
	// Metric is the ranking strategy.
	Metric Metric
	// DataBytes is the (possibly bucketed) transfer-size hint.
	DataBytes int64
	// Reqs is the canonical requirements encoding ("" for none).
	Reqs string
}

// ReqKey canonicalizes a Requirements value for use in a RankKey.
func ReqKey(r *Requirements) string {
	if r == nil {
		return ""
	}
	return "hw=" + strings.Join(r.Hardware, ",") + "|sw=" + strings.Join(r.Software, ",")
}

// RankCacheStats reports cache effectiveness.
type RankCacheStats struct {
	Hits, Misses uint64
	// Invalidations counts epoch advances observed by the cache.
	Invalidations uint64
}

// RankCache memoizes ranked candidate lists per collector epoch. All
// methods are safe for concurrent use. Entries from older epochs are
// discarded wholesale the first time a newer epoch is observed, so the
// cache never serves results computed from a superseded topology.
type RankCache struct {
	mu    sync.Mutex
	valid bool
	epoch uint64
	// gen counts Invalidate() calls. A ranking computed before an
	// Invalidate may have used superseded inputs (e.g. the old capability
	// set), so Store drops entries whose generation token — captured at
	// Lookup time, before the computation — is no longer current.
	gen     uint64
	entries map[RankKey][]Candidate
	stats   RankCacheStats
}

// syncEpochLocked resets the cache when the observed epoch moved.
func (c *RankCache) syncEpochLocked(epoch uint64) {
	if c.valid && c.epoch == epoch {
		return
	}
	if c.valid {
		c.stats.Invalidations++
	}
	c.valid = true
	c.epoch = epoch
	c.entries = make(map[RankKey][]Candidate)
}

// Lookup returns the cached ranking for key at the given epoch, plus a
// generation token to pass back to Store on a miss. The returned slice is
// shared — callers must CloneCandidates before mutating (reordering,
// in-place truncation of shared backing arrays, etc.).
func (c *RankCache) Lookup(epoch uint64, key RankKey) ([]Candidate, bool, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEpochLocked(epoch)
	ranked, ok := c.entries[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return ranked, ok, c.gen
}

// Store records a computed ranking for key at the given epoch. gen is the
// token Lookup returned before the ranking was computed; if an Invalidate
// ran in between, the entry is silently dropped — its inputs may be stale.
// The cache keeps the slice as passed; hand it a private copy.
func (c *RankCache) Store(epoch, gen uint64, key RankKey, ranked []Candidate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	c.syncEpochLocked(epoch)
	if c.epoch == epoch {
		c.entries[key] = ranked
	}
}

// Invalidate drops all entries regardless of epoch (used when inputs
// outside the collector change, e.g. server capabilities) and advances the
// generation so in-flight computations cannot resurrect stale entries.
func (c *RankCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.valid = false
	c.entries = nil
}

// Stats returns a snapshot of the cache counters.
func (c *RankCache) Stats() RankCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CloneCandidates returns a private copy of a ranked list, so cached
// entries can be reordered/truncated per request without corrupting the
// cache.
func CloneCandidates(cs []Candidate) []Candidate {
	if cs == nil {
		return nil
	}
	out := make([]Candidate, len(cs))
	copy(out, cs)
	return out
}
