package core

import (
	"fmt"
	"sort"
	"time"
)

// Calibration maps observed max queue occupancy (packets) to estimated link
// utilization in [0, 1], exploiting the positive correlation between
// utilization and max queue size measured in the paper's Fig 3. The mapping
// is a monotone piecewise-linear curve.
type Calibration struct {
	points []CalPoint // sorted by Queue
}

// CalPoint is one (queue occupancy, utilization) calibration point.
type CalPoint struct {
	Queue int
	Util  float64
}

// NewCalibration builds a calibration from points. Points are sorted by
// queue; utilizations are clamped to [0, 1] and forced monotone
// non-decreasing (a calibration that predicted lower utilization for a
// longer queue would be physically meaningless).
func NewCalibration(points []CalPoint) (*Calibration, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("core: calibration needs at least one point")
	}
	ps := make([]CalPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Queue < ps[j].Queue })
	prev := 0.0
	for i := range ps {
		if ps[i].Util < 0 {
			ps[i].Util = 0
		}
		if ps[i].Util > 1 {
			ps[i].Util = 1
		}
		if ps[i].Util < prev {
			ps[i].Util = prev
		}
		prev = ps[i].Util
	}
	return &Calibration{points: ps}, nil
}

// DefaultCalibration returns the curve fitted from the Fig 3 reproduction:
// queues stay under ~5 packets below 50% utilization and exceed 30 packets
// approaching saturation.
func DefaultCalibration() *Calibration {
	c, _ := NewCalibration([]CalPoint{
		{Queue: 0, Util: 0.0},
		{Queue: 1, Util: 0.15},
		{Queue: 3, Util: 0.40},
		{Queue: 5, Util: 0.50},
		{Queue: 10, Util: 0.65},
		{Queue: 18, Util: 0.80},
		{Queue: 30, Util: 0.95},
		{Queue: 45, Util: 1.0},
	})
	return c
}

// Utilization returns the estimated utilization for a max queue occupancy.
func (c *Calibration) Utilization(queue int) float64 {
	ps := c.points
	if queue <= ps[0].Queue {
		return ps[0].Util
	}
	last := ps[len(ps)-1]
	if queue >= last.Queue {
		return last.Util
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Queue >= queue })
	lo, hi := ps[i-1], ps[i]
	frac := float64(queue-lo.Queue) / float64(hi.Queue-lo.Queue)
	return lo.Util + frac*(hi.Util-lo.Util)
}

// Points returns a copy of the calibration points.
func (c *Calibration) Points() []CalPoint {
	out := make([]CalPoint, len(c.points))
	copy(out, c.points)
	return out
}

// FitCalibration builds a calibration from paired (utilization, max queue)
// observations, e.g. from a Fig 3 sweep: for each distinct queue value the
// mean observed utilization is used as the curve value.
func FitCalibration(obs []CalPoint) (*Calibration, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: no observations to fit")
	}
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for _, o := range obs {
		sum[o.Queue] += o.Util
		cnt[o.Queue]++
	}
	var pts []CalPoint
	for q, s := range sum {
		pts = append(pts, CalPoint{Queue: q, Util: s / float64(cnt[q])})
	}
	return NewCalibration(pts)
}

// KSample is one paired observation for fitting the queue→latency factor k:
// the summed max queue occupancy along a path and the measured extra delay
// beyond the path's uncongested baseline.
type KSample struct {
	QueueSum   int
	ExtraDelay time.Duration
}

// CalibrateK fits the conversion factor k by least squares through the
// origin: k = Σ(q·d) / Σ(q²). The paper leaves automating k as future work;
// this implements it from (queue, delay) pairs such as Fig 3 measurements.
// Samples with zero queue are ignored (they carry no information about k).
func CalibrateK(samples []KSample) (time.Duration, error) {
	var num, den float64
	for _, s := range samples {
		if s.QueueSum <= 0 {
			continue
		}
		q := float64(s.QueueSum)
		num += q * float64(s.ExtraDelay)
		den += q * q
	}
	if den == 0 {
		return 0, fmt.Errorf("core: no samples with positive queue occupancy")
	}
	k := time.Duration(num / den)
	if k < 0 {
		k = 0
	}
	return k, nil
}
