// Package core implements the paper's contribution: the network-aware task
// scheduler for edge computing. It ranks candidate edge servers for a
// querying edge device using INT-derived telemetry — either by estimated
// end-to-end delay (Algorithm 1 of the paper) or by estimated bottleneck
// available bandwidth — and serves ranking queries over the network.
//
// The two baselines the paper compares against (Nearest and Random) are
// implemented here too, plus the paper's future-work extensions:
// compute-aware ranking, heterogeneous capability filtering, and automatic
// calibration of the queue→latency conversion factor k.
package core

import (
	"sort"
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// Metric selects the ranking strategy.
type Metric uint8

const (
	// MetricDelay ranks by estimated one-way network delay (Algorithm 1).
	MetricDelay Metric = iota
	// MetricBandwidth ranks by estimated bottleneck available bandwidth.
	MetricBandwidth
	// MetricNearest is the static closest-node baseline.
	MetricNearest
	// MetricRandom is the random load-balancing baseline.
	MetricRandom
	// MetricComputeAware is the future-work extension combining network
	// delay with reported server backlog.
	MetricComputeAware
	// MetricTransferTime is the size-aware extension estimating total
	// transfer completion time (delay + data / bottleneck bandwidth).
	MetricTransferTime
)

var metricNames = [...]string{"delay", "bandwidth", "nearest", "random", "compute-aware", "transfer-time"}

func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return "unknown"
}

// ParseMetric converts a string (as used by CLI flags) to a Metric.
func ParseMetric(s string) (Metric, bool) {
	for i, n := range metricNames {
		if n == s {
			return Metric(i), true
		}
	}
	return 0, false
}

// Candidate is one ranked edge server with the scheduler's performance
// estimates, returned to edge devices (the paper's step 4: a list of edge
// servers along with expected bandwidth and latency).
type Candidate struct {
	// Node is the edge server.
	Node netsim.NodeID
	// Delay is the estimated one-way delay from the querying device.
	Delay time.Duration
	// BandwidthBps is the estimated bottleneck available bandwidth.
	BandwidthBps float64
	// Hops is the learned path length in links.
	Hops int
	// Reachable is false when the learned topology has no path; such
	// candidates sort last.
	Reachable bool
}

// Ranker orders candidate edge servers for a querying device using a
// topology snapshot.
type Ranker interface {
	// Metric identifies the strategy.
	Metric() Metric
	// Rank returns candidates ordered best-first.
	Rank(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate
}

// DefaultK is the paper's queue-occupancy→latency conversion factor: each
// queued packet on a hop contributes k of estimated queueing delay. The
// paper found k = 20 ms sufficient to identify major congestion events.
const DefaultK = 20 * time.Millisecond

// FallbackLinkDelay is assumed for learned links that have no latency
// measurement yet (e.g. before the first probe crosses them).
const FallbackLinkDelay = 10 * time.Millisecond

// DelayRanker implements Algorithm 1: for every candidate edge server it
// sums measured link delays along the learned path and adds k × (windowed
// max queue occupancy) for every hop, then sorts ascending.
type DelayRanker struct {
	// K is the queue→latency conversion factor (DefaultK when zero).
	K time.Duration
	// JitterWeight, when positive, adds weight × (link latency standard
	// deviation) per link — a conservative estimate that penalizes
	// unstable paths (the paper measures jitter but does not use it;
	// zero keeps the paper's Algorithm 1 exactly).
	JitterWeight float64
}

// Metric implements Ranker.
func (r *DelayRanker) Metric() Metric { return MetricDelay }

// Estimate computes the delay estimate for a single device→server path.
// It is exported so the compute-aware extension and tests can reuse it.
func (r *DelayRanker) Estimate(topo *collector.Topology, from, to netsim.NodeID) (Candidate, error) {
	k := r.K
	if k <= 0 {
		k = DefaultK
	}
	cand := Candidate{Node: to}
	path, err := topo.Path(string(from), string(to))
	if err != nil {
		return cand, err
	}
	cand.Reachable = true
	cand.Hops = len(path) - 1
	var totalLinkDelay, totalHopDelay time.Duration
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if d, ok := topo.LinkDelay(a, b); ok {
			totalLinkDelay += d
		} else {
			totalLinkDelay += FallbackLinkDelay
		}
		if r.JitterWeight > 0 {
			totalLinkDelay += time.Duration(r.JitterWeight * float64(topo.LinkJitter(a, b)))
		}
		// Queueing contribution of the egress port feeding this link.
		// Hosts have no measured queues; only switch hops contribute,
		// matching Algorithm 1's per-hop Q(h) term.
		if !topo.IsHost(a) {
			if q, ok := topo.QueueMax(a, b); ok {
				totalHopDelay += time.Duration(q) * k
			}
		}
	}
	cand.Delay = totalLinkDelay + totalHopDelay
	return cand, nil
}

// Rank implements Ranker.
func (r *DelayRanker) Rank(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	out := make([]Candidate, 0, len(candidates))
	for _, c := range candidates {
		cand, err := r.Estimate(topo, from, c)
		if err != nil {
			cand = Candidate{Node: c, Reachable: false}
		}
		out = append(out, cand)
	}
	sortCandidates(out, func(a, b Candidate) bool { return a.Delay < b.Delay })
	return out
}

// BandwidthRanker estimates per-link available bandwidth from the windowed
// max queue occupancy via a queue→utilization calibration, takes the
// bottleneck minimum along the learned path, and sorts descending.
type BandwidthRanker struct {
	// Calibration maps queue occupancy to utilization (DefaultCalibration
	// when nil).
	Calibration *Calibration
}

// Metric implements Ranker.
func (r *BandwidthRanker) Metric() Metric { return MetricBandwidth }

// Estimate computes the bandwidth estimate for a single device→server path.
func (r *BandwidthRanker) Estimate(topo *collector.Topology, from, to netsim.NodeID) (Candidate, error) {
	cal := r.Calibration
	if cal == nil {
		cal = DefaultCalibration()
	}
	cand := Candidate{Node: to}
	path, err := topo.Path(string(from), string(to))
	if err != nil {
		return cand, err
	}
	cand.Reachable = true
	cand.Hops = len(path) - 1
	bottleneck := -1.0
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		rate := float64(topo.LinkRate(a, b))
		util := 0.0
		if !topo.IsHost(a) {
			if q, ok := topo.QueueMax(a, b); ok {
				util = cal.Utilization(q)
			}
		}
		avail := rate * (1 - util)
		if bottleneck < 0 || avail < bottleneck {
			bottleneck = avail
		}
	}
	if bottleneck < 0 {
		bottleneck = 0
	}
	cand.BandwidthBps = bottleneck
	return cand, nil
}

// Rank implements Ranker.
func (r *BandwidthRanker) Rank(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	out := make([]Candidate, 0, len(candidates))
	for _, c := range candidates {
		cand, err := r.Estimate(topo, from, c)
		if err != nil {
			cand = Candidate{Node: c, Reachable: false}
		}
		out = append(out, cand)
	}
	sortCandidates(out, func(a, b Candidate) bool { return a.BandwidthBps > b.BandwidthBps })
	return out
}

// NearestRanker is the paper's Nearest baseline: it ranks candidates by a
// statically precomputed hop count, oblivious to congestion. The paper
// computes nearest nodes ahead of time, so this ranker takes ground-truth
// hop counts at construction and never consults telemetry.
type NearestRanker struct {
	hops map[netsim.NodeID]map[netsim.NodeID]int
}

// NewNearestRanker precomputes hop counts between all pairs of the given
// hosts using the network's installed routes.
func NewNearestRanker(nw *netsim.Network, hosts []netsim.NodeID) (*NearestRanker, error) {
	r := &NearestRanker{hops: make(map[netsim.NodeID]map[netsim.NodeID]int, len(hosts))}
	for _, a := range hosts {
		r.hops[a] = make(map[netsim.NodeID]int, len(hosts))
		for _, b := range hosts {
			if a == b {
				continue
			}
			h, err := nw.HopCount(a, b)
			if err != nil {
				return nil, err
			}
			r.hops[a][b] = h
		}
	}
	return r, nil
}

// Metric implements Ranker.
func (r *NearestRanker) Metric() Metric { return MetricNearest }

// Rank implements Ranker.
func (r *NearestRanker) Rank(_ *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	out := make([]Candidate, 0, len(candidates))
	for _, c := range candidates {
		h, ok := r.hops[from][c]
		out = append(out, Candidate{Node: c, Hops: h, Reachable: ok})
	}
	sortCandidates(out, func(a, b Candidate) bool { return a.Hops < b.Hops })
	return out
}

// RandomRanker is the paper's Random baseline: a uniformly random order for
// load balancing, oblivious to both distance and congestion.
type RandomRanker struct {
	rng *simtime.Rand
}

// NewRandomRanker creates a random ranker with its own deterministic
// sub-stream.
func NewRandomRanker(rng *simtime.Rand) *RandomRanker {
	return &RandomRanker{rng: rng.Stream("random-ranker")}
}

// Metric implements Ranker.
func (r *RandomRanker) Metric() Metric { return MetricRandom }

// Rank implements Ranker.
func (r *RandomRanker) Rank(_ *collector.Topology, _ netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	perm := r.rng.Perm(len(candidates))
	out := make([]Candidate, 0, len(candidates))
	for _, i := range perm {
		out = append(out, Candidate{Node: candidates[i], Reachable: true})
	}
	return out
}

// sortCandidates sorts with the provided better-than predicate; unreachable
// candidates always sort last, and ties break by node ID so rankings are
// deterministic.
func sortCandidates(cs []Candidate, better func(a, b Candidate) bool) {
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Reachable != b.Reachable {
			return a.Reachable
		}
		if !a.Reachable {
			return a.Node < b.Node
		}
		if better(a, b) {
			return true
		}
		if better(b, a) {
			return false
		}
		return a.Node < b.Node
	})
}
