package core

import "intsched/internal/collector"

// Batched ranking. A scheduler answering a burst of queries — one datagram
// carrying N task requests, or an experiment driving many devices per tick —
// repeats per-query overhead N times through RankFor: a snapshot
// acquisition and a cache lookup per query. RankBatch answers the whole
// burst against ONE topology snapshot and one rank-cache generation: every
// request sees the same epoch, hits are served as zero-copy views of their
// shared cache entries, and duplicate cache keys within the batch are
// computed once.

// batchMiss is one cacheable request whose ranking was not in the cache.
// The generation token is captured at Lookup time, per the rank-cache
// contract: if an Invalidate runs between Lookup and Store, the token has
// moved and Store drops the entry.
type batchMiss struct {
	idx int     // index into reqs/out
	key RankKey // cache key, also used for intra-batch dedup
	gen uint64  // generation token from the Lookup that missed
	dup int     // index into the miss list of the first miss with this key, or -1
}

// RankBatch answers every request against one topology snapshot. The result
// is index-aligned with reqs; requests whose metric has no registered
// ranker get a nil entry. Per-request shaping (Sorted/Count/recovery
// filtering) is applied to private slices exactly as RankFor does.
func (s *Service) RankBatch(reqs []*QueryRequest) [][]Candidate {
	if len(reqs) == 0 {
		return nil
	}
	return s.RankBatchOn(s.coll.Snapshot(), reqs)
}

// RankBatchOn is RankBatch with the snapshot already acquired.
func (s *Service) RankBatchOn(topo *collector.Topology, reqs []*QueryRequest) [][]Candidate {
	out := make([][]Candidate, len(reqs))
	epoch := topo.Epoch()

	// Phase 1: probe the cache for every cacheable request, collecting the
	// hit entries and the pending misses. Uncacheable requests (and
	// non-host requesters, whose index key cannot represent them) fall
	// through to the single-query path.
	entries := make([]*RankEntry, len(reqs))
	var misses []batchMiss
	var missKeys map[RankKey]int
	for i, req := range reqs {
		ranker := s.rankers[req.Metric]
		if ranker == nil {
			continue
		}
		if s.cfg.DisableRankCache || s.customCandidates != nil || !RankerCacheable(ranker) {
			out[i] = s.RankOn(topo, req)
			continue
		}
		fromHost := topo.HostIndex(string(req.From))
		if fromHost < 0 {
			out[i] = s.RankOn(topo, req)
			continue
		}
		key := RankKey{From: int32(fromHost), Metric: req.Metric, DataBytes: s.bucketBytes(req.DataBytes), Reqs: ReqKey(req.Requirements)}
		entry, ok, gen := s.cache.Lookup(epoch, key)
		if ok {
			entries[i] = entry
			continue
		}
		m := batchMiss{idx: i, key: key, gen: gen, dup: -1}
		if missKeys == nil {
			missKeys = make(map[RankKey]int)
		}
		if first, dup := missKeys[key]; dup {
			m.dup = first
		} else {
			missKeys[key] = len(misses)
		}
		misses = append(misses, m)
	}

	// Phase 2: compute each distinct missed key once — in index space with
	// pooled scratch when the ranker supports it — and store it under its
	// Lookup-time generation token; Store returns the built entry even
	// when an invalidation raced the insert, so the batch still serves
	// what it computed. Duplicates share the first occurrence's entry.
	for _, m := range misses {
		if m.dup >= 0 {
			continue
		}
		req := reqs[m.idx]
		ranked := s.computeRanked(topo, s.rankers[req.Metric], req, int(m.key.From))
		entries[m.idx] = s.cache.Store(epoch, m.gen, m.key, ranked)
	}
	for _, m := range misses {
		if m.dup >= 0 {
			entries[m.idx] = entries[misses[m.dup].idx]
		}
	}

	// Phase 3: shape every entry-served request as zero-copy views of the
	// shared entry storage.
	for i, e := range entries {
		if e != nil {
			out[i] = s.shapeEntry(e, reqs[i])
		}
	}
	return out
}
