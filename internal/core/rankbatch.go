package core

import "intsched/internal/collector"

// Batched ranking. A scheduler answering a burst of queries — one datagram
// carrying N task requests, or an experiment driving many devices per tick —
// repeats per-query overhead N times through RankFor: a snapshot
// acquisition, a cache lookup, and a private clone allocation per query.
// RankBatch answers the whole burst against ONE topology snapshot and one
// rank-cache generation: every request sees the same epoch, cache hits are
// materialized into a single shared arena (one allocation for the batch
// instead of one clone per query), and duplicate cache keys within the
// batch are computed once.

// batchMiss is one cacheable request whose ranking was not in the cache.
// The generation token is captured at Lookup time, per the rank-cache
// contract: if an Invalidate runs between Lookup and Store, the token has
// moved and Store drops the entry.
type batchMiss struct {
	idx int     // index into reqs/out
	key RankKey // cache key, also used for intra-batch dedup
	gen uint64  // generation token from the Lookup that missed
	dup int     // index into the miss list of the first miss with this key, or -1
}

// RankBatch answers every request against one topology snapshot. The result
// is index-aligned with reqs; requests whose metric has no registered
// ranker get a nil entry. Per-request shaping (Sorted/Count/recovery
// filtering) is applied to private slices exactly as RankFor does.
func (s *Service) RankBatch(reqs []*QueryRequest) [][]Candidate {
	if len(reqs) == 0 {
		return nil
	}
	return s.RankBatchOn(s.coll.Snapshot(), reqs)
}

// RankBatchOn is RankBatch with the snapshot already acquired.
func (s *Service) RankBatchOn(topo *collector.Topology, reqs []*QueryRequest) [][]Candidate {
	out := make([][]Candidate, len(reqs))
	epoch := topo.Epoch()

	// Phase 1: probe the cache for every cacheable request, collecting the
	// shared cached slices of hits and the pending misses. Nothing from the
	// cache is mutated here; hit slices are copied out in phase 2.
	shared := make([][]Candidate, len(reqs))
	var misses []batchMiss
	var missKeys map[RankKey]int
	arena := 0
	for i, req := range reqs {
		ranker := s.rankers[req.Metric]
		if ranker == nil {
			continue
		}
		if s.cfg.DisableRankCache || s.customCandidates != nil || !RankerCacheable(ranker) {
			out[i] = s.RankOn(topo, req)
			continue
		}
		key := RankKey{From: req.From, Metric: req.Metric, DataBytes: s.bucketBytes(req.DataBytes), Reqs: ReqKey(req.Requirements)}
		ranked, ok, gen := s.cache.Lookup(epoch, key)
		if ok {
			shared[i] = ranked
			arena += len(ranked)
			continue
		}
		m := batchMiss{idx: i, key: key, gen: gen, dup: -1}
		if missKeys == nil {
			missKeys = make(map[RankKey]int)
		}
		if first, dup := missKeys[key]; dup {
			m.dup = first
		} else {
			missKeys[key] = len(misses)
		}
		misses = append(misses, m)
	}

	// Phase 2: materialize hits from one arena — one allocation for the
	// whole batch; each request's shaping then works on its private region.
	if arena > 0 {
		buf := make([]Candidate, arena)
		off := 0
		for i, ranked := range shared {
			if ranked == nil {
				continue
			}
			region := buf[off : off+len(ranked) : off+len(ranked)]
			copy(region, ranked)
			off += len(ranked)
			out[i] = s.finishRanked(region, reqs[i])
		}
	}

	// Phase 3: compute each distinct missed key once and store it under its
	// Lookup-time generation token. A duplicate's first occurrence always
	// precedes it in the miss list, so duplicates clone the (still
	// unshaped) first computation instead of re-ranking; firsts are shaped
	// last, after every duplicate has taken its clone.
	for _, m := range misses {
		req := reqs[m.idx]
		if m.dup >= 0 {
			out[m.idx] = s.finishRanked(CloneCandidates(out[misses[m.dup].idx]), req)
			continue
		}
		ranked := s.rankUncached(topo, req)
		s.cache.Store(epoch, m.gen, m.key, CloneCandidates(ranked))
		out[m.idx] = ranked
	}
	for _, m := range misses {
		if m.dup == -1 {
			out[m.idx] = s.finishRanked(out[m.idx], reqs[m.idx])
		}
	}
	return out
}

// rankUncached runs the ranking computation for one request (the RankOn
// miss path without the cache bookkeeping).
func (s *Service) rankUncached(topo *collector.Topology, req *QueryRequest) []Candidate {
	ranker := s.rankers[req.Metric]
	cands := candidatesOn(topo, req.From)
	if req.Requirements != nil {
		cands = s.filterCapable(cands, req.Requirements)
	}
	if sa, ok := ranker.(SizeAwareRanker); ok && req.DataBytes > 0 {
		return sa.RankSize(topo, req.From, cands, req.DataBytes)
	}
	return ranker.Rank(topo, req.From, cands)
}
