package core

import (
	"sync"
	"testing"
)

// TestShapedViewAliasesCachedStorage is the sequential proof behind the
// snapshot-immutability contract (and the snapshotimmutable analyzer):
// Shaped returns a zero-copy prefix view of the entry's backing array, so a
// store through the view corrupts what every other caller — present and
// future — is served. Do not mutate views; CloneCandidates first.
func TestShapedViewAliasesCachedStorage(t *testing.T) {
	e := newRankEntry([]Candidate{
		{Node: "a", Delay: 1, Reachable: true},
		{Node: "b", Delay: 2, Reachable: true},
	})
	v := e.Shaped(false, true, 1)
	if len(v) != 1 || v[0].Node != "a" {
		t.Fatalf("shaped view = %+v, want prefix [a]", v)
	}
	v[0].Delay = 42 // the store the analyzer forbids outside tests
	if got := e.Ranked()[0].Delay; got != 42 {
		t.Fatalf("Shaped no longer aliases the entry storage (Delay=%v); "+
			"the zero-copy contract changed — update the snapshotimmutable analyzer", got)
	}
}

// TestRankForConcurrentWithShapedMutation runs under -race in CI: many
// goroutines take shared Shaped views from RankFor (both orderings, racing
// the sortedByID lazy init) while mutating private clones. This is the
// sanctioned concurrent idiom — it must be data-race free, and none of the
// clone mutations may leak into the shared entry.
func TestRankForConcurrentWithShapedMutation(t *testing.T) {
	f := newServiceFixture(t)
	reqs := []*QueryRequest{
		{From: "dev", Metric: MetricDelay, Sorted: true},
		{From: "dev", Metric: MetricDelay, Sorted: false},
		{From: "dev", Metric: MetricDelay, Sorted: true, Count: 1},
	}
	// Prime the cache so every goroutine shares one entry's storage.
	_ = f.svc.RankFor(reqs[0])

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				view := f.svc.RankFor(reqs[(g+i)%len(reqs)])
				own := CloneCandidates(view)
				for j := range own {
					own[j].Delay = -1
					own[j].Hops = -1
				}
			}
		}()
	}
	wg.Wait()

	for _, req := range reqs {
		for _, c := range f.svc.RankFor(req) {
			if c.Delay < 0 || c.Hops < 0 {
				t.Fatalf("clone mutation leaked into the shared cache entry: %+v", c)
			}
		}
	}
}
