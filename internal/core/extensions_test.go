package core

import (
	"testing"
	"time"

	"intsched/internal/netsim"
)

func TestTransferTimeRankerPrefersBandwidthForLargeTasks(t *testing.T) {
	// e1: clean but we make its branch moderately congested (queue 18 ->
	// util 0.8 -> 4 Mbps avail); e2: clean 20 Mbps.
	topo := learnedTopo(t, 18, 0)
	r := &TransferTimeRanker{}

	// Tiny task: bandwidth barely matters; both paths have equal latency
	// except e1's queueing penalty, so e2 wins for any size here. Instead
	// compare estimates directly.
	small := r.RankSize(topo, "dev", []netsim.NodeID{"e1", "e2"}, 1_000)
	large := r.RankSize(topo, "dev", []netsim.NodeID{"e1", "e2"}, 5_000_000)
	if small[0].Node != "e2" || large[0].Node != "e2" {
		t.Fatalf("congested branch won: small=%v large=%v", small, large)
	}
	// The estimate gap must grow with size: serialization over 4 Mbps vs
	// 20 Mbps dominates for 5 MB.
	gapSmall := small[1].Delay - small[0].Delay
	gapLarge := large[1].Delay - large[0].Delay
	if gapLarge <= gapSmall {
		t.Fatalf("size did not amplify the gap: %v vs %v", gapSmall, gapLarge)
	}
	// Sanity: 5 MB over 20 Mbps = 2 s baseline for the winner.
	if large[0].Delay < 2*time.Second || large[0].Delay > 3*time.Second {
		t.Fatalf("winner estimate %v, want ≈2s+latency", large[0].Delay)
	}
}

func TestTransferTimeRankerZeroSizeDegeneratesToDelay(t *testing.T) {
	topo := learnedTopo(t, 10, 0)
	tt := &TransferTimeRanker{}
	dl := &DelayRanker{}
	a := tt.RankSize(topo, "dev", []netsim.NodeID{"e1", "e2"}, 0)
	b := dl.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Delay != b[i].Delay {
			t.Fatalf("zero-size transfer-time != delay: %v vs %v", a, b)
		}
	}
}

func TestTransferTimeRankerFloorsDeadLinks(t *testing.T) {
	// Saturated branch: queue 45 -> util 1.0 -> avail 0; the floor must
	// keep the estimate finite.
	topo := learnedTopo(t, 45, 0)
	r := &TransferTimeRanker{}
	ranked := r.RankSize(topo, "dev", []netsim.NodeID{"e1"}, 1_000_000)
	if ranked[0].Delay <= 0 || ranked[0].Delay > time.Hour {
		t.Fatalf("estimate %v not finite-and-positive", ranked[0].Delay)
	}
}

func TestTransferTimeRankerUnreachable(t *testing.T) {
	topo := learnedTopo(t, 0, 0)
	r := &TransferTimeRanker{}
	ranked := r.RankSize(topo, "dev", []netsim.NodeID{"ghost", "e1"}, 1000)
	if ranked[0].Node != "e1" || ranked[1].Reachable {
		t.Fatalf("ranked %v", ranked)
	}
	if r.Metric() != MetricTransferTime {
		t.Fatal("metric")
	}
}

func TestHysteresisSticksOnMarginalChange(t *testing.T) {
	r := NewHysteresisRanker(&DelayRanker{K: 20 * time.Millisecond}, 0.5)

	// Round 1: e1 congested -> e2 chosen.
	topo := learnedTopo(t, 10, 0)
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("round 1: %v", ranked)
	}
	// Round 2: tiny queue blip on e2's branch makes e1 marginally better
	// (30ms vs 50ms = 40% improvement, within the 50% margin): stick.
	topo = learnedTopo(t, 0, 1)
	ranked = r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("round 2 switched on marginal change: %v", ranked)
	}
	// Both candidates still present.
	if len(ranked) != 2 || ranked[1].Node != "e1" {
		t.Fatalf("round 2 list corrupted: %v", ranked)
	}
	// Round 3: heavy congestion on e2's branch: must switch.
	topo = learnedTopo(t, 0, 30)
	ranked = r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e1" {
		t.Fatalf("round 3 failed to switch under real congestion: %v", ranked)
	}
}

func TestHysteresisFirstQueryPassesThrough(t *testing.T) {
	r := NewHysteresisRanker(&DelayRanker{}, 0.2)
	topo := learnedTopo(t, 10, 0)
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("first query altered: %v", ranked)
	}
}

func TestHysteresisPerDeviceState(t *testing.T) {
	r := NewHysteresisRanker(&DelayRanker{}, 0.99)
	topo := learnedTopo(t, 10, 0)
	// dev picks e2; a different device's history must not affect dev.
	_ = r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	topo2 := learnedTopo(t, 0, 10)
	rankedOther := r.Rank(topo2, "dev2", []netsim.NodeID{"e1", "e2"})
	if rankedOther[0].Node != "e1" {
		t.Fatalf("fresh device influenced by other device's history: %v", rankedOther)
	}
}

func TestHysteresisMetricPassthrough(t *testing.T) {
	r := NewHysteresisRanker(&BandwidthRanker{}, 0.2)
	if r.Metric() != MetricBandwidth {
		t.Fatal("wrapped metric not reported")
	}
}

func TestHysteresisBandwidthAxis(t *testing.T) {
	r := NewHysteresisRanker(&BandwidthRanker{}, 0.5)
	// Round 1: e1 congested -> e2.
	_ = r.Rank(learnedTopo(t, 30, 0), "dev", []netsim.NodeID{"e1", "e2"})
	// Round 2: mild congestion on e2's branch (queue 5 -> util .5,
	// avail 10 Mbps) vs clean e1 (20 Mbps): 50% improvement, at margin:
	// stick with e2.
	ranked := r.Rank(learnedTopo(t, 0, 5), "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("switched at margin: %v", ranked)
	}
}
