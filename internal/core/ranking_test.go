package core

import (
	"testing"
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/telemetry"
)

// learnedTopo builds a collector-learned star: device "dev" on s1; servers
// e1 via s1-s2 (queue q12 on that direction), e2 via s1-s3 (queue q13).
// All link latencies 10ms.
func learnedTopo(t *testing.T, q12, q13 int) *collector.Topology {
	t.Helper()
	now := time.Second
	clock := func() time.Duration { return now }
	c := collector.New("sched", clock, collector.Config{
		QueueWindow:        time.Second,
		DefaultLinkRateBps: 20_000_000,
	})
	probe := func(origin string, devs ...telemetry.Record) {
		p := &telemetry.ProbePayload{Origin: origin, Seq: 1}
		for _, r := range devs {
			p.Stack.Append(r)
		}
		c.HandleProbe(p)
	}
	lat := 10 * time.Millisecond
	// Queue reports for s1: port0=dev, port1=s2, port2=s3, port3=sched.
	s1q := []telemetry.PortQueue{{Port: 1, MaxQueue: q12, Packets: 1}, {Port: 2, MaxQueue: q13, Packets: 1}}
	// e1 probes: e1 -> s2 -> s1 -> sched.
	probe("e1",
		telemetry.Record{Device: "s2", IngressPort: 0, EgressPort: 1, LinkLatency: lat, EgressTS: now},
		telemetry.Record{Device: "s1", IngressPort: 1, EgressPort: 3, LinkLatency: lat, EgressTS: now, Queues: s1q},
	)
	// e2 probes: e2 -> s3 -> s1 -> sched.
	probe("e2",
		telemetry.Record{Device: "s3", IngressPort: 0, EgressPort: 1, LinkLatency: lat, EgressTS: now},
		telemetry.Record{Device: "s1", IngressPort: 2, EgressPort: 3, LinkLatency: lat, EgressTS: now, Queues: s1q},
	)
	// dev probes: dev -> s1 -> sched.
	probe("dev",
		telemetry.Record{Device: "s1", IngressPort: 0, EgressPort: 3, LinkLatency: lat, EgressTS: now, Queues: s1q},
	)
	return c.Snapshot()
}

func TestDelayRankerAlgorithm1(t *testing.T) {
	// e1's branch congested (queue 10 toward s2), e2's clean.
	topo := learnedTopo(t, 10, 0)
	r := &DelayRanker{K: 20 * time.Millisecond}
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if len(ranked) != 2 {
		t.Fatalf("ranked %v", ranked)
	}
	if ranked[0].Node != "e2" {
		t.Fatalf("congested server ranked first: %v", ranked)
	}
	// e2: 3 links x 10ms = 30ms, no queueing.
	if ranked[0].Delay != 30*time.Millisecond {
		t.Errorf("e2 delay %v, want 30ms", ranked[0].Delay)
	}
	// e1: 30ms + 10 packets x 20ms = 230ms.
	if ranked[1].Delay != 230*time.Millisecond {
		t.Errorf("e1 delay %v, want 230ms", ranked[1].Delay)
	}
}

func TestDelayRankerDefaultK(t *testing.T) {
	topo := learnedTopo(t, 1, 0)
	r := &DelayRanker{} // zero K -> DefaultK (20ms)
	cand, err := r.Estimate(topo, "dev", "e1")
	if err != nil {
		t.Fatal(err)
	}
	if cand.Delay != 30*time.Millisecond+DefaultK {
		t.Fatalf("delay %v", cand.Delay)
	}
}

func TestDelayRankerUnreachableSortsLast(t *testing.T) {
	topo := learnedTopo(t, 0, 0)
	r := &DelayRanker{}
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"ghost", "e1"})
	if ranked[0].Node != "e1" || ranked[1].Node != "ghost" {
		t.Fatalf("ranked %v", ranked)
	}
	if ranked[1].Reachable {
		t.Fatal("ghost marked reachable")
	}
}

func TestDelayRankerDeterministicTies(t *testing.T) {
	topo := learnedTopo(t, 0, 0)
	r := &DelayRanker{}
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"e2", "e1"})
	// Equal delays: sorted by node ID.
	if ranked[0].Node != "e1" || ranked[1].Node != "e2" {
		t.Fatalf("tie-break wrong: %v", ranked)
	}
}

func TestDelayRankerJitterPenalty(t *testing.T) {
	// Both branches clean; jitter on e1's branch should tip the ranking
	// toward e2 when JitterWeight is set, and leave a tie (ID order)
	// without it.
	now := time.Second
	clock := func() time.Duration { return now }
	c := collector.New("sched", clock, collector.Config{QueueWindow: time.Second, DefaultLinkRateBps: 20_000_000})
	push := func(origin string, seq uint64, lat time.Duration, dev string, in int) {
		p := &telemetry.ProbePayload{Origin: origin, Seq: seq}
		p.Stack.Append(telemetry.Record{Device: dev, IngressPort: 0, EgressPort: 1, LinkLatency: lat, EgressTS: now})
		p.Stack.Append(telemetry.Record{Device: "s1", IngressPort: in, EgressPort: 3, LinkLatency: 10 * time.Millisecond, EgressTS: now})
		c.HandleProbe(p)
	}
	for i := 0; i < 8; i++ {
		// e1's first link jitters between 5 and 15 ms (mean 10); e2's is
		// a steady 10 ms.
		lat := 5 * time.Millisecond
		if i%2 == 1 {
			lat = 15 * time.Millisecond
		}
		push("e1", uint64(i+1), lat, "s2", 1)
		push("e2", uint64(i+1), 10*time.Millisecond, "s3", 2)
	}
	p := &telemetry.ProbePayload{Origin: "dev", Seq: 1}
	p.Stack.Append(telemetry.Record{Device: "s1", IngressPort: 0, EgressPort: 3, LinkLatency: 10 * time.Millisecond, EgressTS: now})
	c.HandleProbe(p)
	topo := c.Snapshot()

	plainE1, err := (&DelayRanker{}).Estimate(topo, "dev", "e1")
	if err != nil {
		t.Fatal(err)
	}
	jr := &DelayRanker{JitterWeight: 2}
	jitterE1, err := jr.Estimate(topo, "dev", "e1")
	if err != nil {
		t.Fatal(err)
	}
	// The jittery branch must pay a penalty of roughly 2 × ~5ms stddev.
	if jitterE1.Delay <= plainE1.Delay+5*time.Millisecond {
		t.Fatalf("jitter penalty too small: %v vs %v", jitterE1.Delay, plainE1.Delay)
	}
	ranked := jr.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("jitter-aware ranking should prefer the stable path: %v", ranked)
	}
}

func TestBandwidthRankerBottleneck(t *testing.T) {
	// e1 branch congested: queue 30 -> utilization 0.95 -> avail 1 Mbps.
	topo := learnedTopo(t, 30, 0)
	r := &BandwidthRanker{}
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("ranked %v", ranked)
	}
	if ranked[0].BandwidthBps != 20_000_000 {
		t.Errorf("clean path bw %.0f, want 20M", ranked[0].BandwidthBps)
	}
	want := 20_000_000 * (1 - DefaultCalibration().Utilization(30))
	if diff := ranked[1].BandwidthBps - want; diff > 1 || diff < -1 {
		t.Errorf("congested bw %.0f, want %.0f", ranked[1].BandwidthBps, want)
	}
}

func TestNearestRankerUsesStaticHops(t *testing.T) {
	engine := simtime.NewEngine()
	nw := netsim.New(engine)
	// chain: a - s1 - b, and c two switches away: a - s1 - s2 - c.
	nw.AddHost("a")
	nw.AddHost("b")
	nw.AddHost("c")
	nw.AddSwitch("s1")
	nw.AddSwitch("s2")
	cfg := netsim.LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	for _, pr := range [][2]netsim.NodeID{{"a", "s1"}, {"b", "s1"}, {"s1", "s2"}, {"c", "s2"}} {
		if _, err := nw.Connect(pr[0], pr[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	r, err := NewNearestRanker(nw, []netsim.NodeID{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	ranked := r.Rank(nil, "a", []netsim.NodeID{"c", "b"})
	if ranked[0].Node != "b" || ranked[0].Hops != 2 {
		t.Fatalf("nearest wrong: %v", ranked)
	}
	if ranked[1].Node != "c" || ranked[1].Hops != 3 {
		t.Fatalf("second wrong: %v", ranked)
	}
}

func TestRandomRankerPermutesDeterministically(t *testing.T) {
	cands := []netsim.NodeID{"a", "b", "c", "d", "e"}
	r1 := NewRandomRanker(simtime.NewRand(5))
	r2 := NewRandomRanker(simtime.NewRand(5))
	seq1 := r1.Rank(nil, "x", cands)
	seq2 := r2.Rank(nil, "x", cands)
	for i := range seq1 {
		if seq1[i].Node != seq2[i].Node {
			t.Fatal("same seed produced different permutations")
		}
	}
	// All candidates present exactly once.
	seen := map[netsim.NodeID]bool{}
	for _, c := range seq1 {
		if seen[c.Node] {
			t.Fatal("duplicate in permutation")
		}
		seen[c.Node] = true
	}
	if len(seen) != len(cands) {
		t.Fatal("missing candidates")
	}
	// Successive calls differ (eventually).
	diff := false
	for i := 0; i < 10 && !diff; i++ {
		next := r1.Rank(nil, "x", cands)
		for j := range next {
			if next[j].Node != seq1[j].Node {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("random ranker frozen")
	}
}

func TestComputeAwareRankerAddsBacklog(t *testing.T) {
	topo := learnedTopo(t, 0, 0)
	load := map[netsim.NodeID]time.Duration{"e1": 5 * time.Second, "e2": 0}
	r := &ComputeAwareRanker{
		Network: &DelayRanker{K: 20 * time.Millisecond},
		LoadFn:  func(s netsim.NodeID) time.Duration { return load[s] },
	}
	ranked := r.Rank(topo, "dev", []netsim.NodeID{"e1", "e2"})
	if ranked[0].Node != "e2" {
		t.Fatalf("loaded server ranked first: %v", ranked)
	}
	if ranked[1].Delay < 5*time.Second {
		t.Fatalf("backlog not added: %v", ranked[1].Delay)
	}
}

func TestMetricStringsAndParse(t *testing.T) {
	for _, m := range []Metric{MetricDelay, MetricBandwidth, MetricNearest, MetricRandom, MetricComputeAware} {
		parsed, ok := ParseMetric(m.String())
		if !ok || parsed != m {
			t.Errorf("round trip failed for %v", m)
		}
	}
	if _, ok := ParseMetric("bogus"); ok {
		t.Error("bogus metric parsed")
	}
	if Metric(200).String() != "unknown" {
		t.Error("unknown metric string")
	}
}
