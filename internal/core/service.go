package core

import (
	"fmt"
	"sync"
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
	"intsched/internal/obs"
	"intsched/internal/telemetry"
	"intsched/internal/transport"
)

// QueryRequest is the control message an edge device sends to the scheduler
// (Figure 1, step 3/5): "give me candidate edge servers for my task(s)".
type QueryRequest struct {
	// From is the querying edge device.
	From netsim.NodeID
	// QueryID correlates the response at the device.
	QueryID uint64
	// Metric selects the ranking strategy.
	Metric Metric
	// Count limits the returned list (0 returns all candidates). The
	// paper's second query option — an unsorted full list for custom
	// device-side selection — is Count = 0 with Sorted = false.
	Count int
	// Sorted=false requests the paper's option two: the full candidate
	// list with estimates but in arbitrary (ID) order, for devices that
	// implement their own selection.
	Sorted bool
	// DataBytes optionally hints the task's transfer size so size-aware
	// rankers (transfer-time extension) can estimate total completion.
	DataBytes int64
	// Requirements optionally restricts candidates to capable servers
	// (heterogeneous-server extension).
	Requirements *Requirements
}

// QueryResponse is the scheduler's reply (Figure 1, step 4/6).
type QueryResponse struct {
	QueryID    uint64
	Metric     Metric
	Candidates []Candidate
}

// Requirements expresses task constraints for the heterogeneous-server
// extension (paper future work): required hardware (e.g. "gpu") and
// software (e.g. "keras") features.
type Requirements struct {
	Hardware []string
	Software []string
}

// Capabilities describes what one edge server offers.
type Capabilities struct {
	Hardware []string
	Software []string
}

// Satisfies reports whether the capabilities meet the requirements.
func (c Capabilities) Satisfies(r *Requirements) bool {
	if r == nil {
		return true
	}
	has := func(set []string, want string) bool {
		for _, s := range set {
			if s == want {
				return true
			}
		}
		return false
	}
	for _, hw := range r.Hardware {
		if !has(c.Hardware, hw) {
			return false
		}
	}
	for _, sw := range r.Software {
		if !has(c.Software, sw) {
			return false
		}
	}
	return true
}

// LoadReport is the control message servers send for the compute-aware
// extension: the backlog of execution time queued on the server.
type LoadReport struct {
	Server  netsim.NodeID
	Backlog time.Duration
}

// ServiceConfig configures the scheduler service.
type ServiceConfig struct {
	// QueryResponseSize is the on-wire size of a query response packet.
	// Zero means 256 bytes (a handful of candidate entries).
	QueryResponseSize int
	// ComputeAware* tune the compute-aware ranking extension.
	ComputeAwareBase Ranker // underlying network ranker (delay by default)
	// DisableRankCache turns off epoch-keyed rank memoization (every query
	// recomputes from the snapshot); for benchmarking and debugging.
	DisableRankCache bool
	// DataBytesBucket optionally coarsens the DataBytes component of rank
	// cache keys (e.g. rounding to powers of two) so size-aware queries of
	// similar sizes share entries, trading estimate exactness for hit
	// rate. Nil keys on the exact size, which preserves exact estimates.
	DataBytesBucket func(int64) int64
	// ExcludeUnreachable is the fault-recovery policy: drop candidates
	// whose learned-path lookup failed from responses whenever at least
	// one reachable candidate exists, so servers behind evicted links stop
	// receiving tasks as soon as the collector notices the failure. When
	// every candidate is unreachable the full list is returned unchanged —
	// the graceful fallback; stale estimates beat refusing to schedule.
	// Off by default: without fault injection the historical behavior
	// (unreachable candidates ranked last) is preserved.
	ExcludeUnreachable bool
}

// Service is the scheduler: it owns the collector's learned topology,
// answers ranking queries from edge devices over the network, and tracks
// server capabilities and load reports for the extensions.
//
// RankFor is safe for concurrent callers: it reads one immutable topology
// snapshot, and the rank cache and mutable service state carry their own
// locks. (Ranker registration and configuration are setup-time only.)
type Service struct {
	stack *transport.Stack
	coll  *collector.Collector
	cfg   ServiceConfig

	rankers map[Metric]Ranker

	// customCandidates, when set via SetCandidateFn, overrides candidate
	// selection. The default (nil) is every host in the snapshot except
	// the device itself (the paper: all nodes, scheduler included, execute
	// tasks unless they submitted). Custom functions may close over
	// arbitrary mutable state, so their results bypass the rank cache.
	customCandidates func(from netsim.NodeID) []netsim.NodeID

	// cache memoizes ranked candidate lists per collector epoch.
	cache RankCache

	// queryLatency times RankOn per metric when Instrument installed a
	// registry (nil map otherwise — the uninstrumented hot path pays one
	// nil-map lookup).
	queryLatency map[Metric]*obs.Histogram

	// stateMu guards capabilities and load, which change on control
	// messages while queries may be reading them concurrently.
	stateMu      sync.RWMutex
	capabilities map[netsim.NodeID]Capabilities
	load         map[netsim.NodeID]time.Duration

	// Demux receives control messages the service does not handle
	// (e.g. task lifecycle messages when the scheduler host also acts as
	// an edge server/device). NewService captures any handler previously
	// installed on the stack, so layering composes automatically.
	Demux func(from netsim.NodeID, payload any)

	// Stats
	QueriesServed uint64
}

// NewService creates the scheduler service on the given host stack, serving
// rankings computed from the collector's learned state. Rankers for the
// strategies in use must be registered with Register before queries of that
// metric arrive.
func NewService(stack *transport.Stack, coll *collector.Collector, cfg ServiceConfig) *Service {
	if cfg.QueryResponseSize <= 0 {
		cfg.QueryResponseSize = 256
	}
	s := &Service{
		stack:        stack,
		coll:         coll,
		cfg:          cfg,
		rankers:      make(map[Metric]Ranker),
		capabilities: make(map[netsim.NodeID]Capabilities),
		load:         make(map[netsim.NodeID]time.Duration),
	}
	s.Demux = stack.ControlHandler
	stack.ControlHandler = s.handleControl
	return s
}

// Register installs a ranker for its metric.
func (s *Service) Register(r Ranker) { s.rankers[r.Metric()] = r }

// SetCandidateFn overrides candidate selection. Queries answered through a
// custom candidate function bypass the rank cache (the function may depend
// on state the collector epoch does not version).
func (s *Service) SetCandidateFn(fn func(from netsim.NodeID) []netsim.NodeID) {
	s.customCandidates = fn
	s.cache.Invalidate()
}

// SetCapabilities records an edge server's capabilities. Cached rankings
// may have been filtered against the old capability set, so the rank cache
// is invalidated.
func (s *Service) SetCapabilities(server netsim.NodeID, caps Capabilities) {
	s.stateMu.Lock()
	s.capabilities[server] = caps
	s.stateMu.Unlock()
	s.cache.Invalidate()
}

// Load returns the last reported backlog for a server.
func (s *Service) Load(server netsim.NodeID) time.Duration {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	return s.load[server]
}

// CacheStats reports the rank cache counters.
func (s *Service) CacheStats() RankCacheStats { return s.cache.Stats() }

// Instrument registers the service's observability series on reg — the rank
// cache counters as read-through functions and one query-latency histogram
// per registered metric (the same series names the live daemon exposes, so
// the simulated and live schedulers are observed identically). Call it at
// setup time, after Register; it is not safe to race with queries.
func (s *Service) Instrument(reg *obs.Registry) {
	for _, c := range []struct {
		name, help string
		read       func(RankCacheStats) uint64
	}{
		{"intsched_rank_cache_hits_total", "Ranking queries served from the epoch-keyed rank cache.",
			func(st RankCacheStats) uint64 { return st.Hits }},
		{"intsched_rank_cache_misses_total", "Ranking queries that recomputed from the snapshot.",
			func(st RankCacheStats) uint64 { return st.Misses }},
		{"intsched_rank_cache_invalidations_total", "Rank cache flushes on epoch advance.",
			func(st RankCacheStats) uint64 { return st.Invalidations }},
	} {
		read := c.read
		reg.CounterFunc(obs.Opts{Name: c.name, Help: c.help}, func() float64 {
			return float64(read(s.cache.Stats()))
		})
	}
	reg.CounterFunc(obs.Opts{
		Name: "intsched_collector_adjacency_evictions_total",
		Help: "Learned edges aged out of the topology after probe silence.",
	}, func() float64 { return float64(s.coll.Stats().AdjacencyEvictions) })
	reg.CounterFunc(obs.Opts{
		Name: "intsched_collector_path_remaps_total",
		Help: "Probe streams observed arriving over a changed hop sequence.",
	}, func() float64 { return float64(s.coll.Stats().PathRemaps) })
	s.queryLatency = make(map[Metric]*obs.Histogram, len(s.rankers))
	for m := range s.rankers {
		s.queryLatency[m] = reg.Histogram(obs.Opts{
			Name:   "intsched_query_latency_seconds",
			Help:   "Answer latency of ranking queries.",
			Labels: []obs.Label{{Key: "metric", Value: m.String()}},
		}, nil)
	}
}

// candidatesOn lists the default candidates from one topology snapshot:
// every host the collector has learned about except the requester. The
// scheduler itself is a valid server (per the paper's experimental setup).
func candidatesOn(topo *collector.Topology, from netsim.NodeID) []netsim.NodeID {
	var out []netsim.NodeID
	for _, h := range topo.Hosts() {
		if netsim.NodeID(h) != from {
			out = append(out, netsim.NodeID(h))
		}
	}
	return out
}

// handleControl demultiplexes scheduler-bound control messages.
func (s *Service) handleControl(from netsim.NodeID, payload any) {
	switch msg := payload.(type) {
	case *QueryRequest:
		s.handleQuery(from, msg)
	case *LoadReport:
		s.stateMu.Lock()
		s.load[msg.Server] = msg.Backlog
		s.stateMu.Unlock()
	case *telemetry.ProbePayload:
		// Relayed INT report from a probe-sink host (coverage-planned
		// probes that terminated away from the scheduler).
		s.coll.HandleProbe(msg)
	default:
		if s.Demux != nil {
			s.Demux(from, payload)
		}
	}
}

func (s *Service) handleQuery(from netsim.NodeID, req *QueryRequest) {
	resp := &QueryResponse{QueryID: req.QueryID, Metric: req.Metric}
	resp.Candidates = s.RankFor(req)
	s.QueriesServed++
	s.stack.SendControl(from, s.responseSize(len(resp.Candidates)), resp)
}

// RankFor computes the ranked candidate list for a query without the
// network round trip (used by the service itself, tests, and the live
// daemon). It acquires one topology snapshot for the whole computation —
// candidate selection and ranking see the same epoch — and serves repeated
// queries between telemetry updates from the epoch-keyed rank cache.
func (s *Service) RankFor(req *QueryRequest) []Candidate {
	return s.RankOn(s.coll.Snapshot(), req)
}

// RankOn answers a query against a caller-supplied snapshot (RankFor with
// the snapshot already acquired). Cacheable queries are served as read-only
// views of the shared cache entry — a warmed hit performs zero heap
// allocations; callers that mutate results must CloneCandidates first.
func (s *Service) RankOn(topo *collector.Topology, req *QueryRequest) []Candidate {
	ranker := s.rankers[req.Metric]
	if ranker == nil {
		return nil
	}
	if h := s.queryLatency[req.Metric]; h != nil {
		start := time.Now()
		defer func() { h.ObserveDuration(time.Since(start)) }()
	}
	// The cache stores the full ranked list (pre reorder/truncation); the
	// per-request Sorted/Count shaping is a reslice of the entry's storage.
	if entry, ok := s.rankCached(topo, ranker, req); ok {
		return s.shapeEntry(entry, req)
	}
	// Uncacheable path (disabled cache, custom candidates, stateful or
	// randomized rankers, non-host requesters): the historical string-space
	// computation on fresh slices — HysteresisRanker relies on receiving
	// private, mutable rankings here.
	var cands []netsim.NodeID
	if s.customCandidates != nil {
		cands = s.customCandidates(req.From)
	} else {
		cands = candidatesOn(topo, req.From)
	}
	if req.Requirements != nil {
		cands = s.filterCapable(cands, req.Requirements)
	}
	var ranked []Candidate
	if sa, ok := ranker.(SizeAwareRanker); ok && req.DataBytes > 0 {
		ranked = sa.RankSize(topo, req.From, cands, req.DataBytes)
	} else {
		ranked = ranker.Rank(topo, req.From, cands)
	}
	return s.finishRanked(ranked, req)
}

// rankCached serves one cacheable query as a shared cache entry: a hit
// returns it outright; a miss computes the ranking — in index space with
// pooled scratch when the ranker supports it — and stores the clone. ok is
// false when the query cannot go through the cache.
func (s *Service) rankCached(topo *collector.Topology, ranker Ranker, req *QueryRequest) (*RankEntry, bool) {
	if s.cfg.DisableRankCache || s.customCandidates != nil || !RankerCacheable(ranker) {
		return nil, false
	}
	fromHost := topo.HostIndex(string(req.From))
	if fromHost < 0 {
		// Not a known host: the index key cannot represent it. Rare (the
		// default candidate rule targets host requesters); recompute.
		return nil, false
	}
	key := RankKey{From: int32(fromHost), Metric: req.Metric, DataBytes: s.bucketBytes(req.DataBytes), Reqs: ReqKey(req.Requirements)}
	entry, ok, gen := s.cache.Lookup(topo.Epoch(), key)
	if ok {
		return entry, true
	}
	ranked := s.computeRanked(topo, ranker, req, fromHost)
	return s.cache.Store(topo.Epoch(), gen, key, ranked), true
}

// computeRanked runs one cacheable ranking computation and returns a
// private slice for the cache to own. Index-capable rankers compute in
// pooled scratch; others take the string path.
func (s *Service) computeRanked(topo *collector.Topology, ranker Ranker, req *QueryRequest, fromHost int) []Candidate {
	sizeAware, _ := ranker.(SizeAwareRanker)
	sized := sizeAware != nil && req.DataBytes > 0
	si, siOK := asSizeIndexRanker(ranker)
	ir, irOK := asIndexRanker(ranker)
	if (sized && siOK) || (!sized && irOK) {
		fromIdx := int32(-1)
		if i, ok := topo.NodeIndex(string(req.From)); ok {
			fromIdx = i
		}
		sc := scratchPool.Get().(*rankScratch)
		sc.cands = hostCandidatesIdx(topo, fromHost, sc.cands)
		cands := sc.cands
		if req.Requirements != nil {
			cands = s.filterCapableIdx(topo, cands, req.Requirements)
		}
		var ranked []Candidate
		if sized {
			ranked = si.rankSizeIdx(topo, req.From, fromIdx, cands, req.DataBytes, sc)
		} else {
			ranked = ir.rankIdx(topo, req.From, fromIdx, cands, sc)
		}
		out := CloneCandidates(ranked)
		scratchPool.Put(sc)
		return out
	}
	cands := candidatesOn(topo, req.From)
	if req.Requirements != nil {
		cands = s.filterCapable(cands, req.Requirements)
	}
	if sized {
		return sizeAware.RankSize(topo, req.From, cands, req.DataBytes)
	}
	return ranker.Rank(topo, req.From, cands)
}

// shapeEntry applies the per-request response shaping to a cache entry as
// zero-copy views (the entry-backed counterpart of finishRanked).
func (s *Service) shapeEntry(e *RankEntry, req *QueryRequest) []Candidate {
	idOrder := !req.Sorted && req.Metric != MetricRandom
	return e.Shaped(idOrder, s.cfg.ExcludeUnreachable, req.Count)
}

// filterCapableIdx filters candidate host indices in place against the
// requirements (the index-space counterpart of filterCapable).
func (s *Service) filterCapableIdx(topo *collector.Topology, cands []int32, req *Requirements) []int32 {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	out := cands[:0]
	for _, j := range cands {
		if s.capabilities[netsim.NodeID(topo.HostName(int(j)))].Satisfies(req) {
			out = append(out, j)
		}
	}
	return out
}

// bucketBytes maps a DataBytes hint to its cache-key bucket.
func (s *Service) bucketBytes(b int64) int64 {
	if s.cfg.DataBytesBucket != nil {
		return s.cfg.DataBytesBucket(b)
	}
	return b
}

// ReachableOnly returns only the reachable candidates — unless none are, in
// which case the input is returned unchanged (the graceful fallback when
// every learned path is stale). The input is never mutated; when filtering
// occurs a fresh slice is returned, so cached candidate lists can be passed
// directly.
func ReachableOnly(cands []Candidate) []Candidate {
	reachable := 0
	for _, c := range cands {
		if c.Reachable {
			reachable++
		}
	}
	if reachable == 0 || reachable == len(cands) {
		return cands
	}
	out := make([]Candidate, 0, reachable)
	for _, c := range cands {
		if c.Reachable {
			out = append(out, c)
		}
	}
	return out
}

// finishRanked applies the per-request response shaping: the recovery
// policy's unreachable filter, the paper's option two (estimates in ID order
// for device-side selection), and the count limit. ranked must be private to
// the caller.
func (s *Service) finishRanked(ranked []Candidate, req *QueryRequest) []Candidate {
	if s.cfg.ExcludeUnreachable {
		ranked = ReachableOnly(ranked)
	}
	if !req.Sorted && req.Metric != MetricRandom {
		// Option two from the paper: return estimates unsorted (by ID) so
		// the device can run its own selection.
		sortCandidates(ranked, func(a, b Candidate) bool { return a.Node < b.Node })
	}
	if req.Count > 0 && req.Count < len(ranked) {
		ranked = ranked[:req.Count]
	}
	return ranked
}

func (s *Service) filterCapable(cands []netsim.NodeID, req *Requirements) []netsim.NodeID {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	var out []netsim.NodeID
	for _, c := range cands {
		if s.capabilities[c].Satisfies(req) {
			out = append(out, c)
		}
	}
	return out
}

// responseSize estimates the wire size of a response carrying n candidates.
func (s *Service) responseSize(n int) int {
	size := s.cfg.QueryResponseSize
	if extra := 24*n + 64 - size; extra > 0 {
		size += extra
	}
	return size
}

// ComputeAwareRanker implements the paper's first future-work item: it
// combines the network delay estimate with each server's reported compute
// backlog, ranking by (network delay + pending execution time).
type ComputeAwareRanker struct {
	// Network is the underlying delay estimator.
	Network *DelayRanker
	// LoadFn returns the current backlog estimate for a server.
	LoadFn func(server netsim.NodeID) time.Duration
}

// Metric implements Ranker.
func (r *ComputeAwareRanker) Metric() Metric { return MetricComputeAware }

// Rank implements Ranker.
func (r *ComputeAwareRanker) Rank(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	net := r.Network
	if net == nil {
		net = &DelayRanker{}
	}
	out := make([]Candidate, 0, len(candidates))
	for _, c := range candidates {
		cand, err := net.Estimate(topo, from, c)
		if err != nil {
			cand = Candidate{Node: c, Reachable: false}
		} else if r.LoadFn != nil {
			cand.Delay += r.LoadFn(c)
		}
		out = append(out, cand)
	}
	sortCandidates(out, func(a, b Candidate) bool { return a.Delay < b.Delay })
	return out
}

// Client is the device-side query helper: it sends a QueryRequest to the
// scheduler and invokes the callback when the response arrives. It owns the
// host's control-message handler.
type Client struct {
	stack     *transport.Stack
	scheduler netsim.NodeID
	nextID    uint64
	pending   map[uint64]func(*QueryResponse)
	// QueryRequestSize is the wire size of a query packet.
	QueryRequestSize int
	// Demux receives control messages that are not query responses
	// (e.g. task lifecycle messages handled by the edge package).
	Demux func(from netsim.NodeID, payload any)
}

// NewClient installs a query client on the device's stack.
func NewClient(stack *transport.Stack, scheduler netsim.NodeID) *Client {
	c := &Client{
		stack:            stack,
		scheduler:        scheduler,
		pending:          make(map[uint64]func(*QueryResponse)),
		QueryRequestSize: 128,
	}
	c.Demux = stack.ControlHandler
	stack.ControlHandler = c.handleControl
	return c
}

// Scheduler returns the scheduler host this client queries.
func (c *Client) Scheduler() netsim.NodeID { return c.scheduler }

func (c *Client) handleControl(from netsim.NodeID, payload any) {
	if resp, ok := payload.(*QueryResponse); ok {
		if cb := c.pending[resp.QueryID]; cb != nil {
			delete(c.pending, resp.QueryID)
			cb(resp)
			return
		}
	}
	if c.Demux != nil {
		c.Demux(from, payload)
	}
}

// Query sends a ranking request and invokes cb with the response.
func (c *Client) Query(metric Metric, count int, reqs *Requirements, cb func(*QueryResponse)) {
	c.QuerySized(metric, count, 0, reqs, cb)
}

// QuerySized sends a ranking request carrying the task's data size so
// size-aware rankers can estimate total transfer completion time.
func (c *Client) QuerySized(metric Metric, count int, dataBytes int64, reqs *Requirements, cb func(*QueryResponse)) {
	c.send(&QueryRequest{
		Metric:       metric,
		Count:        count,
		Sorted:       true,
		DataBytes:    dataBytes,
		Requirements: reqs,
	}, cb)
}

// QueryUnsorted requests the paper's second option: the full candidate
// list with bandwidth/latency estimates in ID order, for devices that
// implement their own selection policy.
func (c *Client) QueryUnsorted(metric Metric, dataBytes int64, reqs *Requirements, cb func(*QueryResponse)) {
	c.send(&QueryRequest{
		Metric:       metric,
		Sorted:       false,
		DataBytes:    dataBytes,
		Requirements: reqs,
	}, cb)
}

// send assigns identity fields and transmits the request.
func (c *Client) send(req *QueryRequest, cb func(*QueryResponse)) {
	c.nextID++
	req.From = c.stack.Host()
	req.QueryID = c.nextID
	c.pending[req.QueryID] = cb
	c.stack.SendControl(c.scheduler, c.QueryRequestSize, req)
}

// ReportLoad sends a compute backlog report to the scheduler.
func (c *Client) ReportLoad(backlog time.Duration) {
	c.stack.SendControl(c.scheduler, 64, &LoadReport{Server: c.stack.Host(), Backlog: backlog})
}

// String renders a candidate for logs.
func (c Candidate) String() string {
	return fmt.Sprintf("%s(delay=%v bw=%.1fMbps hops=%d)", c.Node, c.Delay, c.BandwidthBps/1e6, c.Hops)
}
