package core

import (
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
)

// This file implements extensions beyond the paper's evaluated system,
// motivated by its own observations:
//
//   - Fig 8 shows 19-38% of tasks see zero or negative gain because
//     measurement jitter de-prioritizes nearest nodes under light
//     congestion; HysteresisRanker suppresses switching on small estimate
//     differences.
//   - Delay ranking favors nearby servers and bandwidth ranking favors
//     uncongested paths; TransferTimeRanker combines both using the task's
//     data size: estimated time = propagation delay + queueing + bytes /
//     bottleneck bandwidth.

// SizeAwareRanker is implemented by rankers whose estimates depend on the
// task's transfer size. The scheduler service passes the DataBytes hint
// from the query when present.
type SizeAwareRanker interface {
	Ranker
	// RankSize orders candidates for a transfer of the given size.
	RankSize(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID, dataBytes int64) []Candidate
}

// TransferTimeRanker estimates the end-to-end transfer completion time for
// a task of a known size: the delay estimate (Algorithm 1) plus the
// serialization time of the task's data through the path's bottleneck
// available bandwidth. With DataBytes == 0 it degenerates to delay ranking.
type TransferTimeRanker struct {
	// Delay estimates the latency component (DefaultK when nil).
	Delay *DelayRanker
	// Bandwidth estimates the bottleneck component (default calibration
	// when nil).
	Bandwidth *BandwidthRanker
	// MinBandwidthBps floors the bandwidth estimate so a fully congested
	// link (estimate 0) yields a large-but-finite time. Default 1% of
	// 20 Mbps.
	MinBandwidthBps float64
}

// Metric implements Ranker.
func (r *TransferTimeRanker) Metric() Metric { return MetricTransferTime }

// Rank implements Ranker (no size hint: delay-dominated ordering).
func (r *TransferTimeRanker) Rank(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	return r.RankSize(topo, from, candidates, 0)
}

// RankSize implements SizeAwareRanker.
func (r *TransferTimeRanker) RankSize(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID, dataBytes int64) []Candidate {
	delay := r.Delay
	if delay == nil {
		delay = &DelayRanker{}
	}
	bw := r.Bandwidth
	if bw == nil {
		bw = &BandwidthRanker{}
	}
	floor := r.MinBandwidthBps
	if floor <= 0 {
		floor = 200_000 // 1% of the paper's 20 Mbps links
	}
	out := make([]Candidate, 0, len(candidates))
	for _, c := range candidates {
		dc, err1 := delay.Estimate(topo, from, c)
		bc, err2 := bw.Estimate(topo, from, c)
		if err1 != nil || err2 != nil {
			out = append(out, Candidate{Node: c, Reachable: false})
			continue
		}
		avail := bc.BandwidthBps
		if avail < floor {
			avail = floor
		}
		est := dc.Delay
		if dataBytes > 0 {
			est += time.Duration(float64(dataBytes*8) / avail * float64(time.Second))
		}
		out = append(out, Candidate{
			Node:         c,
			Delay:        est,
			BandwidthBps: bc.BandwidthBps,
			Hops:         dc.Hops,
			Reachable:    true,
		})
	}
	sortCandidates(out, func(a, b Candidate) bool { return a.Delay < b.Delay })
	return out
}

// HysteresisRanker wraps another ranker and suppresses candidate switching
// on marginal estimate changes: the previously chosen server for a device
// stays at the top of the list unless the new best candidate improves on
// it by more than Margin (relative). This directly targets the paper's
// Fig 8 observation that probing jitter causes suboptimal de-prioritization
// of nearest nodes when the network is only lightly congested.
type HysteresisRanker struct {
	// Inner is the wrapped ranker (required).
	Inner Ranker
	// Margin is the relative improvement required to switch away from the
	// previous choice (default 0.2 = 20%).
	Margin float64

	last map[netsim.NodeID]netsim.NodeID // device -> previous top pick
}

// NewHysteresisRanker wraps inner with the given switching margin.
func NewHysteresisRanker(inner Ranker, margin float64) *HysteresisRanker {
	if margin <= 0 {
		margin = 0.2
	}
	return &HysteresisRanker{
		Inner:  inner,
		Margin: margin,
		last:   make(map[netsim.NodeID]netsim.NodeID),
	}
}

// Metric implements Ranker (it reports the wrapped ranker's metric).
func (r *HysteresisRanker) Metric() Metric { return r.Inner.Metric() }

// Rank implements Ranker.
func (r *HysteresisRanker) Rank(topo *collector.Topology, from netsim.NodeID, candidates []netsim.NodeID) []Candidate {
	ranked := r.Inner.Rank(topo, from, candidates)
	if len(ranked) == 0 {
		return ranked
	}
	defer func() { r.last[from] = ranked[0].Node }()
	prev, ok := r.last[from]
	if !ok || prev == ranked[0].Node {
		return ranked
	}
	// Find the previous pick; keep it on top unless the new best clears
	// the margin.
	idx := -1
	for i := range ranked {
		if ranked[i].Node == prev {
			idx = i
			break
		}
	}
	if idx < 0 || !ranked[idx].Reachable {
		return ranked
	}
	if !r.withinMargin(ranked[0], ranked[idx]) {
		return ranked // improvement is substantial: switch
	}
	// Marginal difference: stick with the previous choice.
	prevCand := ranked[idx]
	copy(ranked[1:idx+1], ranked[0:idx])
	ranked[0] = prevCand
	return ranked
}

// withinMargin reports whether best improves on prev by no more than the
// margin, comparing on the wrapped metric's natural axis.
func (r *HysteresisRanker) withinMargin(best, prev Candidate) bool {
	switch r.Inner.Metric() {
	case MetricBandwidth:
		if best.BandwidthBps <= 0 {
			return true
		}
		return (best.BandwidthBps-prev.BandwidthBps)/best.BandwidthBps <= r.Margin
	default:
		if prev.Delay <= 0 {
			return true
		}
		return float64(prev.Delay-best.Delay)/float64(prev.Delay) <= r.Margin
	}
}
