package core

import (
	"sync"
	"time"

	"intsched/internal/collector"
	"intsched/internal/netsim"
)

// Index-space ranking hot path. The built-in cacheable rankers walk paths
// and read per-hop metrics entirely in the snapshot's int32 node-index
// coordinate system — PathInto into reusable scratch, metric reads as CSR
// arena slot loads (see collector/arena.go) — and convert to strings only
// when forming Candidate.Node (a reference to the snapshot's interned host
// name, not a new string). A pooled rankScratch owns every intermediate
// buffer, so a warmed miss computation allocates only the cloned result
// the cache takes ownership of.

// rankScratch holds the reusable buffers of one in-flight index-space
// ranking computation. All slices follow the store-back idiom: helpers
// return the (possibly re-homed) slice and the owner stores it back.
type rankScratch struct {
	cands []int32     // unit:host — candidate positions in the sorted host list
	path  []int32     // unit:node — PathInto walk scratch (merged node indices)
	out   []Candidate // ranking output buffer (cloned before caching)
}

var scratchPool = sync.Pool{New: func() any { return new(rankScratch) }}

// indexRanker is implemented by rankers that can rank candidates given as
// host indices of the snapshot. cands are positions in the snapshot's
// sorted host list; from/fromIdx are the querying device's ID and merged
// node index (-1 when it has no adjacency). The returned slice aliases
// s.out — callers clone before retaining.
type indexRanker interface {
	rankIdx(topo *collector.Topology, from netsim.NodeID, fromIdx int32, cands []int32, s *rankScratch) []Candidate
}

// sizeIndexRanker is the index-space counterpart of SizeAwareRanker.
type sizeIndexRanker interface {
	rankSizeIdx(topo *collector.Topology, from netsim.NodeID, fromIdx int32, cands []int32, dataBytes int64, s *rankScratch) []Candidate
}

// asIndexRanker returns r's index-space implementation — but only when r IS
// one of the built-in rankers, not merely satisfies the interface. Embedding
// promotes the unexported rankIdx method, so a wrapper type overriding Rank
// would otherwise have its override silently bypassed by the fast path.
func asIndexRanker(r Ranker) (indexRanker, bool) {
	switch r.(type) {
	case *DelayRanker, *BandwidthRanker, *NearestRanker, *TransferTimeRanker:
		return r.(indexRanker), true
	}
	return nil, false
}

// asSizeIndexRanker is asIndexRanker for the size-aware fast path.
func asSizeIndexRanker(r Ranker) (sizeIndexRanker, bool) {
	tr, ok := r.(*TransferTimeRanker)
	return tr, ok
}

// delayOverPath computes Algorithm 1's estimate over a walked index path:
// measured link delays (fallback for unmeasured), optional jitter penalty,
// and k × windowed queue max per switch hop. The accumulation order matches
// DelayRanker.Estimate exactly.
func (r *DelayRanker) delayOverPath(topo *collector.Topology, p []int32, k time.Duration) time.Duration {
	var totalLinkDelay, totalHopDelay time.Duration
	for i := 0; i+1 < len(p); i++ {
		a, b := p[i], p[i+1]
		slot := topo.DirSlot(a, b)
		if d, ok := topo.SlotDelay(slot); ok {
			totalLinkDelay += d
		} else {
			totalLinkDelay += FallbackLinkDelay
		}
		if r.JitterWeight > 0 {
			totalLinkDelay += time.Duration(r.JitterWeight * float64(topo.SlotJitter(slot)))
		}
		if !topo.IsHostIdx(a) {
			if q, ok := topo.SlotQueueMax(slot); ok {
				totalHopDelay += time.Duration(q) * k
			}
		}
	}
	return totalLinkDelay + totalHopDelay
}

// rankIdx implements indexRanker for Algorithm 1.
func (r *DelayRanker) rankIdx(topo *collector.Topology, _ netsim.NodeID, fromIdx int32, cands []int32, s *rankScratch) []Candidate {
	k := r.K
	if k <= 0 {
		k = DefaultK
	}
	out := s.out[:0]
	for _, j := range cands {
		cand := Candidate{Node: netsim.NodeID(topo.HostName(int(j)))}
		p, code, _ := topo.PathInto(fromIdx, topo.HostNodeIndex(int(j)), s.path)
		s.path = p
		if code == collector.PathOK {
			cand.Reachable = true
			cand.Hops = len(p) - 1
			cand.Delay = r.delayOverPath(topo, p, k)
		}
		out = append(out, cand)
	}
	s.out = out
	sortCandidates(out, func(a, b Candidate) bool { return a.Delay < b.Delay })
	return out
}

// bottleneckOverPath computes the bottleneck available bandwidth over a
// walked index path, matching BandwidthRanker.Estimate exactly.
func (r *BandwidthRanker) bottleneckOverPath(topo *collector.Topology, p []int32, cal *Calibration) float64 {
	bottleneck := -1.0
	for i := 0; i+1 < len(p); i++ {
		a, b := p[i], p[i+1]
		slot := topo.DirSlot(a, b)
		rate := float64(topo.SlotRate(slot))
		util := 0.0
		if !topo.IsHostIdx(a) {
			if q, ok := topo.SlotQueueMax(slot); ok {
				util = cal.Utilization(q)
			}
		}
		avail := rate * (1 - util)
		if bottleneck < 0 || avail < bottleneck {
			bottleneck = avail
		}
	}
	if bottleneck < 0 {
		bottleneck = 0
	}
	return bottleneck
}

// rankIdx implements indexRanker for the bandwidth strategy.
func (r *BandwidthRanker) rankIdx(topo *collector.Topology, _ netsim.NodeID, fromIdx int32, cands []int32, s *rankScratch) []Candidate {
	cal := r.Calibration
	if cal == nil {
		cal = DefaultCalibration()
	}
	out := s.out[:0]
	for _, j := range cands {
		cand := Candidate{Node: netsim.NodeID(topo.HostName(int(j)))}
		p, code, _ := topo.PathInto(fromIdx, topo.HostNodeIndex(int(j)), s.path)
		s.path = p
		if code == collector.PathOK {
			cand.Reachable = true
			cand.Hops = len(p) - 1
			cand.BandwidthBps = r.bottleneckOverPath(topo, p, cal)
		}
		out = append(out, cand)
	}
	s.out = out
	sortCandidates(out, func(a, b Candidate) bool { return a.BandwidthBps > b.BandwidthBps })
	return out
}

// rankIdx implements indexRanker for the Nearest baseline: the precomputed
// hop table is keyed by node ID, so only the candidate enumeration is
// index-space here (the table lookups were already allocation-free).
func (r *NearestRanker) rankIdx(topo *collector.Topology, from netsim.NodeID, _ int32, cands []int32, s *rankScratch) []Candidate {
	hops := r.hops[from]
	out := s.out[:0]
	for _, j := range cands {
		node := netsim.NodeID(topo.HostName(int(j)))
		h, ok := hops[node]
		out = append(out, Candidate{Node: node, Hops: h, Reachable: ok})
	}
	s.out = out
	sortCandidates(out, func(a, b Candidate) bool { return a.Hops < b.Hops })
	return out
}

// rankIdx implements indexRanker (no size hint: delay-dominated ordering).
func (r *TransferTimeRanker) rankIdx(topo *collector.Topology, from netsim.NodeID, fromIdx int32, cands []int32, s *rankScratch) []Candidate {
	return r.rankSizeIdx(topo, from, fromIdx, cands, 0, s)
}

// rankSizeIdx implements sizeIndexRanker: one path walk per candidate
// feeds both the delay and the bottleneck estimate (the string path walks
// the identical learned path twice), keeping each accumulation chain's
// operation order — and therefore every float result — unchanged.
func (r *TransferTimeRanker) rankSizeIdx(topo *collector.Topology, _ netsim.NodeID, fromIdx int32, cands []int32, dataBytes int64, s *rankScratch) []Candidate {
	delay := r.Delay
	if delay == nil {
		delay = &DelayRanker{}
	}
	bw := r.Bandwidth
	if bw == nil {
		bw = &BandwidthRanker{}
	}
	cal := bw.Calibration
	if cal == nil {
		cal = DefaultCalibration()
	}
	k := delay.K
	if k <= 0 {
		k = DefaultK
	}
	floor := r.MinBandwidthBps
	if floor <= 0 {
		floor = 200_000 // 1% of the paper's 20 Mbps links
	}
	out := s.out[:0]
	for _, j := range cands {
		node := netsim.NodeID(topo.HostName(int(j)))
		p, code, _ := topo.PathInto(fromIdx, topo.HostNodeIndex(int(j)), s.path)
		s.path = p
		if code != collector.PathOK {
			out = append(out, Candidate{Node: node})
			continue
		}
		avail := bw.bottleneckOverPath(topo, p, cal)
		bwBps := avail
		if avail < floor {
			avail = floor
		}
		est := delay.delayOverPath(topo, p, k)
		if dataBytes > 0 {
			est += time.Duration(float64(dataBytes*8) / avail * float64(time.Second))
		}
		out = append(out, Candidate{
			Node:         node,
			Delay:        est,
			BandwidthBps: bwBps,
			Hops:         len(p) - 1,
			Reachable:    true,
		})
	}
	s.out = out
	sortCandidates(out, func(a, b Candidate) bool { return a.Delay < b.Delay })
	return out
}

// ComputeRanking computes one fresh best-first ranking against a snapshot
// with the default candidate set (every host except from), using the
// index-space fast path when the ranker supports it and the string path
// otherwise. The returned slice is private to the caller. This is the
// uncached single-query entry point the live daemon uses for rankers the
// cache cannot serve.
func ComputeRanking(topo *collector.Topology, r Ranker, from netsim.NodeID, dataBytes int64) []Candidate {
	fromIdx := int32(-1)
	if i, ok := topo.NodeIndex(string(from)); ok {
		fromIdx = i
	}
	fromHost := topo.HostIndex(string(from))
	if dataBytes > 0 {
		if _, ok := r.(SizeAwareRanker); ok {
			if si, ok := asSizeIndexRanker(r); ok {
				sc := scratchPool.Get().(*rankScratch)
				sc.cands = hostCandidatesIdx(topo, fromHost, sc.cands)
				ranked := CloneCandidates(si.rankSizeIdx(topo, from, fromIdx, sc.cands, dataBytes, sc))
				scratchPool.Put(sc)
				return ranked
			}
			return r.(SizeAwareRanker).RankSize(topo, from, candidatesOn(topo, from), dataBytes)
		}
	}
	if ir, ok := asIndexRanker(r); ok {
		sc := scratchPool.Get().(*rankScratch)
		sc.cands = hostCandidatesIdx(topo, fromHost, sc.cands)
		ranked := CloneCandidates(ir.rankIdx(topo, from, fromIdx, sc.cands, sc))
		scratchPool.Put(sc)
		return ranked
	}
	return r.Rank(topo, from, candidatesOn(topo, from))
}

// hostCandidatesIdx appends every host index except fromHost into buf[:0]
// — the index-space equivalent of the default candidate rule (every known
// host except the requester; fromHost = -1 excludes nobody).
func hostCandidatesIdx(topo *collector.Topology, fromHost int, buf []int32) []int32 {
	out := buf[:0]
	for j := 0; j < topo.HostCount(); j++ {
		if j != fromHost {
			out = append(out, int32(j))
		}
	}
	return out
}
