package core

import (
	"testing"
	"time"

	"intsched/internal/collector"
	"intsched/internal/dataplane"
	"intsched/internal/netsim"
	"intsched/internal/probe"
	"intsched/internal/simtime"
	"intsched/internal/transport"
)

// serviceFixture wires a 3-host star (dev, e1, sched via one switch) with
// INT, probing, a collector, and the scheduler service.
type serviceFixture struct {
	engine *simtime.Engine
	nw     *netsim.Network
	domain *transport.Domain
	coll   *collector.Collector
	svc    *Service
}

func newServiceFixture(t *testing.T) *serviceFixture {
	t.Helper()
	engine := simtime.NewEngine()
	nw := netsim.New(engine)
	nw.AddSwitch("s1")
	for _, h := range []netsim.NodeID{"dev", "e1", "sched"} {
		nw.AddHost(h)
		cfg := netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}
		if _, err := nw.Connect(h, "s1", cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	dataplane.AttachINT(nw, dataplane.INTConfig{})
	domain := transport.NewDomain(nw).InstallAll()
	coll := collector.New("sched", engine.Now, collector.Config{QueueWindow: time.Second})
	coll.Bind(domain.Stack("sched"))
	svc := NewService(domain.Stack("sched"), coll, ServiceConfig{})
	svc.Register(&DelayRanker{})
	svc.Register(&BandwidthRanker{})
	probe.NewFleet(nw, []netsim.NodeID{"dev", "e1"}, "sched", 100*time.Millisecond)
	// Warm the collector.
	engine.Run(500 * time.Millisecond)
	return &serviceFixture{engine: engine, nw: nw, domain: domain, coll: coll, svc: svc}
}

func TestQueryRoundTripOverNetwork(t *testing.T) {
	f := newServiceFixture(t)
	client := NewClient(f.domain.Stack("dev"), "sched")
	var resp *QueryResponse
	client.Query(MetricDelay, 0, nil, func(r *QueryResponse) { resp = r })
	f.engine.Run(f.engine.Now() + time.Second)
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Metric != MetricDelay {
		t.Fatalf("metric %v", resp.Metric)
	}
	// Candidates: every known host except the requester (e1 and sched).
	if len(resp.Candidates) != 2 {
		t.Fatalf("candidates %v", resp.Candidates)
	}
	for _, c := range resp.Candidates {
		if c.Node == "dev" {
			t.Fatal("requester offered as its own server")
		}
		if !c.Reachable || c.Delay <= 0 {
			t.Fatalf("bad candidate %+v", c)
		}
	}
	if f.svc.QueriesServed != 1 {
		t.Fatalf("QueriesServed=%d", f.svc.QueriesServed)
	}
}

func TestQueryCountLimit(t *testing.T) {
	f := newServiceFixture(t)
	got := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Count: 1, Sorted: true})
	if len(got) != 1 {
		t.Fatalf("count limit ignored: %v", got)
	}
}

func TestQueryUnknownMetricYieldsNil(t *testing.T) {
	f := newServiceFixture(t)
	if got := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricNearest}); got != nil {
		t.Fatalf("unregistered metric returned %v", got)
	}
}

func TestQueryOptionTwoUnsorted(t *testing.T) {
	f := newServiceFixture(t)
	got := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: false})
	// Paper option two: full list ordered by ID, estimates included.
	for i := 1; i < len(got); i++ {
		if got[i-1].Node > got[i].Node {
			t.Fatalf("unsorted option not ID-ordered: %v", got)
		}
	}
	for _, c := range got {
		if c.Delay <= 0 {
			t.Fatalf("estimates missing in option two: %+v", c)
		}
	}
}

func TestCapabilityFiltering(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.SetCapabilities("e1", Capabilities{Hardware: []string{"gpu"}, Software: []string{"keras"}})
	// sched has no declared capabilities.
	req := &QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true,
		Requirements: &Requirements{Hardware: []string{"gpu"}}}
	got := f.svc.RankFor(req)
	if len(got) != 1 || got[0].Node != "e1" {
		t.Fatalf("capability filter wrong: %v", got)
	}
	req.Requirements = &Requirements{Hardware: []string{"gpu"}, Software: []string{"tensorflow"}}
	if got := f.svc.RankFor(req); len(got) != 0 {
		t.Fatalf("unsatisfiable requirements matched: %v", got)
	}
}

func TestCapabilitiesSatisfies(t *testing.T) {
	caps := Capabilities{Hardware: []string{"gpu", "tpu"}, Software: []string{"keras"}}
	if !caps.Satisfies(nil) {
		t.Error("nil requirements must always pass")
	}
	if !caps.Satisfies(&Requirements{Hardware: []string{"tpu"}}) {
		t.Error("present hardware rejected")
	}
	if caps.Satisfies(&Requirements{Software: []string{"torch"}}) {
		t.Error("absent software accepted")
	}
}

func TestLoadReportOverNetwork(t *testing.T) {
	f := newServiceFixture(t)
	client := NewClient(f.domain.Stack("e1"), "sched")
	client.ReportLoad(3 * time.Second)
	f.engine.Run(f.engine.Now() + time.Second)
	if f.svc.Load("e1") != 3*time.Second {
		t.Fatalf("load %v", f.svc.Load("e1"))
	}
}

func TestServiceDemuxChaining(t *testing.T) {
	f := newServiceFixture(t)
	// The scheduler host also runs a client (it submits tasks too). The
	// service must forward non-service messages to the prior handler.
	schedClient := NewClient(f.domain.Stack("dev"), "sched")
	type custom struct{ V int }
	var got any
	schedClient.Demux = func(_ netsim.NodeID, payload any) { got = payload }
	f.domain.Stack("e1").SendControl("dev", 64, &custom{V: 9})
	f.engine.Run(f.engine.Now() + time.Second)
	if c, ok := got.(*custom); !ok || c.V != 9 {
		t.Fatalf("demux got %v", got)
	}
}

func TestSetCandidateFn(t *testing.T) {
	f := newServiceFixture(t)
	f.svc.SetCandidateFn(func(from netsim.NodeID) []netsim.NodeID {
		return []netsim.NodeID{"e1"}
	})
	got := f.svc.RankFor(&QueryRequest{From: "dev", Metric: MetricDelay, Sorted: true})
	if len(got) != 1 || got[0].Node != "e1" {
		t.Fatalf("candidate override ignored: %v", got)
	}
}

func TestCandidateStringFormat(t *testing.T) {
	c := Candidate{Node: "e1", Delay: 30 * time.Millisecond, BandwidthBps: 20e6, Hops: 3}
	s := c.String()
	if s == "" || s[0:2] != "e1" {
		t.Fatalf("string %q", s)
	}
}
