package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// snapshotExemptPackages build the shared structures and may mutate them:
// collector materializes Topology snapshots (merge, initArena, incremental
// SPT repair), so stores through a Topology are its job.
var snapshotExemptPackages = map[string]bool{
	"intsched/internal/collector": true,
}

// SnapshotImmutableAnalyzer enforces the published-snapshot immutability
// contract.
var SnapshotImmutableAnalyzer = &Analyzer{
	Name: "snapshotimmutable",
	Doc: `forbid stores through published snapshots and cached rank views

Collector.Snapshot returns a shared *Topology served concurrently to every
caller until the epoch moves; RankCache.Lookup/Store hand out *RankEntry
values whose Ranked()/Shaped() results are zero-copy reslice views of the
cached backing array. All of it is immutable by contract: a store through
any of these values corrupts answers served to concurrent readers (and,
via Shaped's prefix reslicing, answers served to future callers). This
analyzer taint-tracks everything aliasing a snapshot, entry, or view
inside each function — including *collector.Topology parameters, which are
snapshots by construction outside the collector — and reports element or
field stores, appends (which may write into the shared backing array past
the view's length), copy-into, and in-place sorts. Reading, reslicing, and
rebinding are legal; mutation requires an explicit clone
(core.CloneCandidates) first.`,
	Run: runSnapshotImmutable,
}

func runSnapshotImmutable(pass *Pass) (any, error) {
	if snapshotExemptPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.nonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSnapshotFunc(pass, fd)
		}
	}
	return nil, nil
}

// snapState is the per-function taint state: exprPath strings of values
// aliasing a published snapshot or cached view.
type snapState struct {
	pass    *Pass
	tainted map[string]bool
	what    map[string]string // taint path -> human name of its seed
}

// seedCallResult reports whether a call yields a shared snapshot/view and
// names it. Only the first result of RankCache.Lookup is shared (the second
// is the generation token).
func seedCallResult(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.funcObj(call)
	switch {
	case isMethodOf(fn, "intsched/internal/collector", "Collector", "Snapshot"):
		return "topology snapshot", true
	case isMethodOf(fn, "intsched/internal/core", "RankCache", "Lookup"),
		isMethodOf(fn, "intsched/internal/core", "RankCache", "Store"):
		return "cached rank entry", true
	case isMethodOf(fn, "intsched/internal/core", "RankEntry", "Ranked"),
		isMethodOf(fn, "intsched/internal/core", "RankEntry", "Shaped"):
		return "cached candidate view", true
	}
	return "", false
}

func checkSnapshotFunc(pass *Pass, fd *ast.FuncDecl) {
	st := &snapState{pass: pass, tainted: make(map[string]bool), what: make(map[string]string)}

	// Parameters of snapshot/entry type are published values: outside the
	// builder package every *Topology or *RankEntry a function receives
	// came (transitively) from Snapshot or the cache. Receivers are NOT
	// seeded: a method on the shared type itself is where sanctioned
	// internal mutation lives (RankEntry's once-guarded lazy byID init).
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if what, ok := sharedParamType(obj.Type()); ok {
					st.mark(objPath(obj), what)
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.handleAssign(n)
		case *ast.IncDecStmt:
			if path := exprPath(pass.TypesInfo, n.X); st.extendsTaint(path) {
				st.reportStore(n.X, n.Pos())
			}
		case *ast.RangeStmt:
			st.handleRange(n)
		case *ast.CallExpr:
			st.handleCall(n)
		}
		return true
	})
}

// sharedParamType classifies parameter/receiver types that are published
// shared state by construction.
func sharedParamType(t types.Type) (string, bool) {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	switch {
	case named.Obj().Pkg().Path() == "intsched/internal/collector" && named.Obj().Name() == "Topology":
		return "topology snapshot", true
	case named.Obj().Pkg().Path() == "intsched/internal/core" && named.Obj().Name() == "RankEntry":
		return "cached rank entry", true
	}
	return "", false
}

func (st *snapState) mark(path, what string) {
	if path == "" {
		return
	}
	st.tainted[path] = true
	if _, ok := st.what[path]; !ok {
		st.what[path] = what
	}
}

// extendsTaint reports whether path refers to storage inside a tainted
// value: it equals a tainted path or extends one by a field selection
// (indexing and slicing don't change a path, so shaped[i].Delay extends
// shaped).
func (st *snapState) extendsTaint(path string) bool {
	if path == "" {
		return false
	}
	if st.tainted[path] {
		return true
	}
	for t := range st.tainted {
		if strings.HasPrefix(path, t+".") {
			return true
		}
	}
	return false
}

// taintName returns the seed description for a path that extends taint.
func (st *snapState) taintName(path string) string {
	if w, ok := st.what[path]; ok {
		return w
	}
	for t, w := range st.what {
		if strings.HasPrefix(path, t+".") {
			return w
		}
	}
	return "published snapshot"
}

// taintedExpr reports whether e evaluates to a value aliasing tainted
// storage, tracking through parens, slicing, indexing, address-of, and
// conversions.
func (st *snapState) taintedExpr(e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	if path := exprPath(st.pass.TypesInfo, e); path != "" && st.extendsTaint(path) {
		return path, true
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return st.taintedExpr(e.X)
	case *ast.IndexExpr:
		return st.taintedExpr(e.X)
	case *ast.StarExpr:
		return st.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return st.taintedExpr(e.X)
		}
	case *ast.CallExpr:
		if _, ok := seedCallResult(st.pass, e); ok {
			return "", true
		}
		if tv, ok := st.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return st.taintedExpr(e.Args[0])
		}
	}
	return "", false
}

func (st *snapState) reportStore(lhs ast.Expr, pos token.Pos) {
	path := exprPath(st.pass.TypesInfo, lhs)
	st.pass.Reportf(pos, "store through %s (%s): published snapshots and cached views are shared and immutable; clone before mutating (core.CloneCandidates for candidate views)",
		st.taintName(path), renderLHS(lhs))
}

// handleAssign reports stores into tainted storage and propagates aliases
// created by plain rebinding.
func (st *snapState) handleAssign(n *ast.AssignStmt) {
	info := st.pass.TypesInfo
	// Stores: any LHS that is a field/element of a tainted value. A bare
	// identifier rebinding is legal (it changes what the name refers to,
	// not the shared storage).
	for _, lhs := range n.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			continue
		}
		if path := exprPath(info, lhs); st.extendsTaint(path) {
			st.reportStore(lhs, lhs.Pos())
		}
	}
	// Alias propagation: ident := tainted-expr (also through tuple
	// assignment from a seed call: topo := c.Snapshot(); e, gen := cache.Lookup(k)).
	if len(n.Rhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			if what, ok := seedCallResult(st.pass, call); ok {
				// Only the first result is the shared value, and only a bare
				// identifier becomes an alias: entries[i] = cache.Store(...)
				// replaces an element of a local pointer slice, it does not
				// turn that slice into shared storage.
				if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					st.mark(exprPath(info, id), what)
				}
				return
			}
		}
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		if _, tainted := st.taintedExpr(n.Rhs[i]); tainted {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				st.mark(exprPath(info, id), st.rhsName(n.Rhs[i]))
			}
		} else if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			// Rebinding to a fresh value clears the name's taint.
			if path := exprPath(info, id); path != "" {
				delete(st.tainted, path)
				delete(st.what, path)
			}
		}
	}
}

func (st *snapState) rhsName(e ast.Expr) string {
	if path := exprPath(st.pass.TypesInfo, e); path != "" {
		return st.taintName(path)
	}
	return "published snapshot"
}

// handleRange propagates taint into reference-typed range values: ranging
// over a tainted slice of pointers (or slices/maps) yields aliases, while
// struct/scalar elements are copies and safe to mutate.
func (st *snapState) handleRange(n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	id, ok := n.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if _, tainted := st.taintedExpr(n.X); !tainted {
		return
	}
	obj := st.pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	switch types.Unalias(obj.Type()).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		st.mark(objPath(obj), st.rhsName(n.X))
	}
}

// handleCall reports calls that mutate tainted storage: append (which may
// write into the shared backing array beyond the view's length), copy with
// a tainted destination, and in-place sorts.
func (st *snapState) handleCall(call *ast.CallExpr) {
	info := st.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 {
					if path, tainted := st.taintedExpr(call.Args[0]); tainted {
						st.pass.Reportf(call.Pos(), "append to %s: the view is a prefix reslice of a shared backing array, so append may overwrite cached elements past the view; clone first (core.CloneCandidates)",
							st.taintName(path))
					}
				}
			case "copy":
				if len(call.Args) > 0 {
					if path, tainted := st.taintedExpr(call.Args[0]); tainted {
						st.pass.Reportf(call.Pos(), "copy into %s: published snapshots and cached views are shared and immutable; copy into a fresh slice instead",
							st.taintName(path))
					}
				}
			}
			return
		}
	}
	fn := st.pass.funcObj(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sort" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			if path, tainted := st.taintedExpr(call.Args[0]); tainted {
				st.pass.Reportf(call.Pos(), "in-place sort of %s: sorting mutates the shared storage concurrent readers are iterating; sort a clone (core.CloneCandidates)",
					st.taintName(path))
			}
		}
	}
}
