package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// This file is intlint's machine-readable reporting layer: findings as JSON
// diagnostics, plus a checked-in baseline that suppresses known findings so
// CI fails only on NEW ones. The baseline matches on (analyzer, file,
// message) with an occurrence count — deliberately not on line numbers, so
// unrelated edits that shift a suppressed finding don't break the build —
// and it is a ratchet: entries that no longer match anything are "stale" and
// fail the run too, forcing the baseline to shrink as findings are fixed.

// JSONRelated is a secondary position of a diagnostic.
type JSONRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// JSONDiagnostic is one finding with a module-root-relative position.
type JSONDiagnostic struct {
	Analyzer  string        `json:"analyzer"`
	File      string        `json:"file"`
	Line      int           `json:"line"`
	Col       int           `json:"col"`
	Message   string        `json:"message"`
	Related   []JSONRelated `json:"related,omitempty"`
	Baselined bool          `json:"baselined,omitempty"`
}

// BaselineEntry suppresses up to Count findings matching the key.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the on-disk accepted-findings file (lint.baseline.json).
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// JSONReport is the top-level -json output.
type JSONReport struct {
	Module      string           `json:"module"`
	Diagnostics []JSONDiagnostic `json:"diagnostics"`
	Stale       []BaselineEntry  `json:"stale,omitempty"`
}

// relPath renders pos as a module-root-relative slash path plus line/col.
func relPath(fset *token.FileSet, moduleRoot string, pos token.Pos) (string, int, int) {
	p := fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(moduleRoot, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !isParentPath(rel) {
		file = rel
	}
	return filepath.ToSlash(file), p.Line, p.Column
}

func isParentPath(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

// FindingsToJSON converts findings to JSON diagnostics with paths relative
// to moduleRoot.
func FindingsToJSON(fset *token.FileSet, moduleRoot string, findings []Finding) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(findings))
	for _, f := range findings {
		file, line, col := relPath(fset, moduleRoot, f.Pos)
		d := JSONDiagnostic{Analyzer: f.Analyzer, File: file, Line: line, Col: col, Message: f.Message}
		for _, r := range f.Related {
			rf, rl, rc := relPath(fset, moduleRoot, r.Pos)
			d.Related = append(d.Related, JSONRelated{File: rf, Line: rl, Col: rc, Message: r.Message})
		}
		out = append(out, d)
	}
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — the stable order the golden files and baseline diffs rely on.
func SortDiagnostics(diags []JSONDiagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

type baselineKey struct {
	analyzer, file, message string
}

// Apply marks diagnostics covered by the baseline (setting Baselined) and
// returns the number of fresh (uncovered) diagnostics plus the stale
// entries whose budget was not fully consumed.
func (b *Baseline) Apply(diags []JSONDiagnostic) (fresh int, stale []BaselineEntry) {
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += n
	}
	for i := range diags {
		k := baselineKey{diags[i].Analyzer, diags[i].File, diags[i].Message}
		if budget[k] > 0 {
			budget[k]--
			diags[i].Baselined = true
		} else {
			fresh++
		}
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if budget[k] > 0 {
			left := e.Count
			if left <= 0 {
				left = 1
			}
			if budget[k] < left {
				left = budget[k]
			}
			budget[k] = 0 // attribute leftover budget to the first entry with this key
			e.Count = left
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// BaselineFromDiagnostics aggregates diagnostics into baseline entries.
func BaselineFromDiagnostics(diags []JSONDiagnostic) *Baseline {
	counts := make(map[baselineKey]int)
	var order []baselineKey
	for _, d := range diags {
		k := baselineKey{d.Analyzer, d.File, d.Message}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	bl := &Baseline{Entries: make([]BaselineEntry, 0, len(order))}
	for _, k := range order {
		bl.Entries = append(bl.Entries, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: counts[k]})
	}
	return bl
}

// LoadBaseline reads a baseline file. An empty or entry-less file is a
// valid empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if len(data) > 0 {
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("parse baseline %s: %w", path, err)
		}
	}
	return &b, nil
}

// WriteBaseline writes the baseline as stable, indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
