package lint_test

import (
	"testing"

	"intsched/internal/lint"
	"intsched/internal/lint/linttest"
)

// The fixture packages live under testdata (invisible to go build) and are
// loaded by the source loader with synthetic fixture/... import paths, so
// they can import the real intsched packages whose contracts they violate.

func TestSimDeterminism(t *testing.T) {
	// The fixture registers itself as sim-side; production membership is
	// the literal in SimSidePackages.
	lint.SimSidePackages["fixture/simdet"] = true
	linttest.Run(t, "internal/lint/testdata/src/simdet", "fixture/simdet", lint.SimDeterminismAnalyzer)
}

// TestSimDeterminismFault covers the fault-injection subsystem's hazards:
// wall-clock event scheduling, global-rand probe-loss draws, and map-ordered
// fault reports would all break byte-identical fault replays.
func TestSimDeterminismFault(t *testing.T) {
	lint.SimSidePackages["fixture/faultdet"] = true
	linttest.Run(t, "internal/lint/testdata/src/faultdet", "fixture/faultdet", lint.SimDeterminismAnalyzer)
}

// TestSimDeterminismPint covers the probabilistic telemetry subsystem: a
// sampler drawing hop-insertion decisions from the global rand stream, or
// seeding itself from the wall clock, would make which hops each probe
// carries — and therefore the reassembled topology — non-reproducible.
func TestSimDeterminismPint(t *testing.T) {
	lint.SimSidePackages["fixture/pintdet"] = true
	linttest.Run(t, "internal/lint/testdata/src/pintdet", "fixture/pintdet", lint.SimDeterminismAnalyzer)
}

// TestSimDeterminismAdapt covers the adaptive probing controller: cadence
// decisions stamped from the wall clock or jittered through the global rand
// stream would break the byte-identity of the adaptive decision digest that
// CI diffs across -parallel settings.
func TestSimDeterminismAdapt(t *testing.T) {
	lint.SimSidePackages["fixture/adaptdet"] = true
	linttest.Run(t, "internal/lint/testdata/src/adaptdet", "fixture/adaptdet", lint.SimDeterminismAnalyzer)
}

// TestTransientPacket includes the PR 3 regression: a handler retaining
// delivered packets in a ring buffer while netsim recycles them.
func TestTransientPacket(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/transient", "fixture/transient", lint.TransientPacketAnalyzer)
}

// TestRankCacheToken includes the PR 1 regression: discarding Lookup's
// generation token and fabricating one at the Store site.
func TestRankCacheToken(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/rankcache", "fixture/rankcache", lint.RankCacheTokenAnalyzer)
}

func TestObsNaming(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/obsname", "fixture/obsname", lint.ObsNamingAnalyzer)
}

func TestScratchAlias(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/scratch", "fixture/scratch", lint.ScratchAliasAnalyzer)
}

// TestShardLock includes the PR 6 regression shape: pairwise shard locking
// with nothing ordering the pair, alongside every blessed acquisition idiom
// in collector (ascending sorted sweep, canonical scan, sequential,
// swap-ordered pairwise, single+defer, *Locked callees).
func TestShardLock(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/shardlock", "fixture/shardlock", lint.ShardLockAnalyzer)
}

// TestSnapshotImmutable covers stores through published Topology snapshots
// and cached RankEntry candidate views, against the read/reslice/clone
// idioms the service actually uses.
func TestSnapshotImmutable(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/snapimm", "fixture/snapimm", lint.SnapshotImmutableAnalyzer)
}

// TestIndexSpace covers the fabricated arena-slot mix-up: int32 values
// crossing between node-index, host-index, CSR-edge, and metric-slot
// coordinate systems.
func TestIndexSpace(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/idxspace", "fixture/idxspace", lint.IndexSpaceAnalyzer)
}

// TestModuleIsClean runs the full suite over the repository itself: the
// production tree must stay free of violations (intentional wall-clock use
// goes through internal/wallclock, and so on).
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	linttest.RunModule(t, lint.Analyzers())
}
