package lint

import (
	"go/ast"
	"go/types"
)

const rankCachePkg = "intsched/internal/core"

// RankCacheTokenAnalyzer enforces the RankCache generation-token protocol.
var RankCacheTokenAnalyzer = &Analyzer{
	Name: "rankcachetoken",
	Doc: `require every RankCache.Store to pass a generation token obtained from Lookup

RankCache.Invalidate advances a generation counter so that a ranking
computed from superseded inputs (an old capability set, a pre-invalidation
snapshot) cannot be resurrected by an in-flight Store. That protection only
works when Store's gen argument is the token Lookup returned before the
computation began — the PR 1 review bug was a Store that fabricated its
token. This analyzer requires the gen argument of every RankCache.Store
call to be (a copy of) the third result of a Lookup on the same cache
within the enclosing function, or a parameter of the enclosing function
(the token threaded down a call chain). A struct field is accepted when a
composite literal in the same function populates that field from a tracked
token (the batched-miss shape: record the token at Lookup time, Store it
after computing the batch). Literals, computed values, fields never fed
from a Lookup, and tokens from a different cache are reported.`,
	Run: runRankCacheToken,
}

func runRankCacheToken(pass *Pass) (any, error) {
	for _, file := range pass.nonTestFiles() {
		// Visit each function body independently: token provenance is
		// per-function.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRankCacheTokens(pass, fd)
		}
	}
	return nil, nil
}

// checkRankCacheTokens verifies every RankCache.Store in one function.
func checkRankCacheTokens(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}

	// tokens maps a variable object to the cache path whose Lookup
	// produced it (directly or through copies). tokenFields maps a struct
	// field object to the same: a composite literal populated that field
	// from a tracked token (or a parameter, recorded as ""), so reading it
	// back via a selector preserves provenance.
	tokens := make(map[types.Object]string)
	tokenFields := make(map[types.Object]string)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// miss{key: k, gen: gen} — the field inherits the token's
		// provenance (source order puts the Lookup before the literal).
		if lit, ok := n.(*ast.CompositeLit); ok {
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyID, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				valID, ok := ast.Unparen(kv.Value).(*ast.Ident)
				if !ok {
					continue
				}
				valObj := info.ObjectOf(valID)
				if valObj == nil {
					continue
				}
				fieldObj := info.ObjectOf(keyID)
				if fieldObj == nil {
					continue
				}
				if cachePath, ok := tokens[valObj]; ok {
					tokenFields[fieldObj] = cachePath
				} else if params[valObj] {
					tokenFields[fieldObj] = ""
				}
			}
			return true
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// ranked, ok, gen := cache.Lookup(...)
		if len(assign.Rhs) == 1 && len(assign.Lhs) == 3 {
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
				if isMethodOf(pass.funcObj(call), rankCachePkg, "RankCache", "Lookup") {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						cachePath := exprPath(info, sel.X)
						if id, ok := assign.Lhs[2].(*ast.Ident); ok && id.Name != "_" {
							if obj := info.ObjectOf(id); obj != nil && cachePath != "" {
								tokens[obj] = cachePath
							}
						}
					}
				}
			}
			return true
		}
		// gen = g (token copies keep their provenance)
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) {
				break
			}
			src, ok := ast.Unparen(assign.Rhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			srcObj := info.ObjectOf(src)
			if srcObj == nil {
				continue
			}
			if cachePath, ok := tokens[srcObj]; ok {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil {
						tokens[obj] = cachePath
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isMethodOf(pass.funcObj(call), rankCachePkg, "RankCache", "Store") || len(call.Args) != 4 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		cachePath := exprPath(info, sel.X)
		genArg := ast.Unparen(call.Args[1])
		if fieldSel, ok := genArg.(*ast.SelectorExpr); ok {
			fieldObj := info.ObjectOf(fieldSel.Sel)
			if fieldObj == nil {
				return true
			}
			src, carrier := tokenFields[fieldObj]
			if !carrier {
				pass.Reportf(genArg.Pos(), "RankCache.Store generation token field %q is never populated from a Lookup token in this function: fabricated tokens defeat Invalidate and can resurrect rankings computed from superseded inputs", fieldSel.Sel.Name)
				return true
			}
			if cachePath != "" && src != "" && src != cachePath {
				pass.Reportf(genArg.Pos(), "RankCache.Store generation token field %q carries a token from a Lookup on a different cache: generation counters are per-cache", fieldSel.Sel.Name)
			}
			return true
		}
		id, ok := genArg.(*ast.Ident)
		if !ok {
			pass.Reportf(genArg.Pos(), "RankCache.Store generation token must be the third result of Lookup on the same cache (or a parameter threading it down), not a computed value: an Invalidate between Lookup and Store must be able to drop this entry")
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if params[obj] {
			return true // token threaded in from the caller
		}
		src, isToken := tokens[obj]
		if !isToken {
			pass.Reportf(genArg.Pos(), "RankCache.Store generation token %q does not come from a Lookup on this cache in this function (or a parameter): fabricated tokens defeat Invalidate and can resurrect rankings computed from superseded inputs", id.Name)
			return true
		}
		if cachePath != "" && src != cachePath {
			pass.Reportf(genArg.Pos(), "RankCache.Store generation token %q was obtained from a Lookup on a different cache: generation counters are per-cache", id.Name)
		}
		return true
	})
}
