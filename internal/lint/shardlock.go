package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardLockAnalyzer enforces the collector's two-level shard locking
// protocol.
var ShardLockAnalyzer = &Analyzer{
	Name: "shardlock",
	Doc: `enforce ascending-order multi-shard lock acquisition

The sharded collector guards each partition's link state with shard.mu and
each origin's probe-stream state with shard.streamMu. The deadlock-freedom
argument (internal/collector/shard.go) is a total lock order: at most one
streamMu, acquired before any mu; multiple mu only in ascending shard-index
order. This analyzer builds a per-function acquisition sequence over every
Lock/Unlock of a mu or streamMu field of a struct type named "shard" and
reports:

  - a loop that acquires shard mutexes without releasing them in the same
    iteration, unless the loop provably visits shard indices in ascending
    order (a ranged slice sorted by sort.Ints/slices.Sort beforehand, or a
    canonical "for i := 0; i < n; i++" scan);
  - a second shard mu acquired while one is held, unless a preceding
    "if i > j { i, j = j, i }" swap orders the pair's indices;
  - a streamMu acquired while any shard mu (or another streamMu) is held —
    the documented order is streamMu strictly first, at most one;
  - a call made while holding a shard lock into a same-package function
    that itself (transitively) acquires shard locks: the callee's
    acquisition nests at an unordered level, the deadlock shape the
    *Locked naming convention exists to prevent.

Functions following the convention — acquiring nothing and relying on the
caller's locks — pass vacuously.`,
	Run: runShardLock,
}

// Lock-event kinds.
const (
	evLock = iota
	evUnlock
	evCall
)

// Lock classes.
const (
	classMu = iota
	classStream
)

var lockClassName = [...]string{classMu: "shard.mu", classStream: "shard.streamMu"}

// lockEvent is one lock-relevant action in a function body, in source order.
type lockEvent struct {
	pos   token.Pos
	kind  int
	class int         // for evLock/evUnlock
	index ast.Expr    // innermost index expr of the locked shard (shards[i].mu), or nil
	loop  ast.Node    // innermost enclosing for/range statement, or nil
	fn    *types.Func // for evCall: the same-package callee
}

// lockFunc is the per-function analysis unit (declared function or literal).
type lockFunc struct {
	name   string
	body   *ast.BlockStmt
	events []lockEvent
	loops  []ast.Node
}

func runShardLock(pass *Pass) (any, error) {
	var fns []*lockFunc
	decls := make(map[*types.Func]*lockFunc)
	for _, file := range pass.nonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lf := collectLockFunc(pass, fd.Name.Name, fd.Body)
			fns = append(fns, lf)
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = lf
			}
			// Function literals get their own acquisition sequence: a
			// closure's locks are not held at the point of its definition.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fns = append(fns, collectLockFunc(pass, fd.Name.Name+" (closure)", lit.Body))
					return false
				}
				return true
			})
		}
	}

	acquires := transitiveAcquirers(decls)
	for _, lf := range fns {
		checkLockFunc(pass, lf, acquires)
	}
	return nil, nil
}

// shardLockClass classifies a Lock/Unlock call target: mu or streamMu fields
// of type sync.Mutex on a struct type named "shard". Everything else —
// including same-named fields on other types, such as sptStore.mu — is not a
// shard lock. Returns the class, the innermost shard index expression
// (c.shards[i].mu -> i), and ok.
func shardLockClass(pass *Pass, call *ast.CallExpr) (class int, index ast.Expr, ok bool) {
	fun, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if fun == nil {
		return 0, nil, false
	}
	name := fun.Sel.Name
	if name != "Lock" && name != "Unlock" {
		return 0, nil, false
	}
	field, _ := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if field == nil {
		return 0, nil, false
	}
	switch field.Sel.Name {
	case "mu":
		class = classMu
	case "streamMu":
		class = classStream
	default:
		return 0, nil, false
	}
	sel := pass.TypesInfo.Selections[field]
	if sel == nil {
		return 0, nil, false
	}
	if named := namedOf(sel.Recv()); named == nil || named.Obj().Name() != "shard" {
		return 0, nil, false
	}
	obj, _ := sel.Obj().(*types.Var)
	if obj == nil || !isSyncMutex(obj.Type()) {
		return 0, nil, false
	}
	if idx, okIdx := ast.Unparen(field.X).(*ast.IndexExpr); okIdx {
		index = idx.Index
	}
	return class, index, true
}

func isSyncMutex(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

// collectLockFunc gathers the lock events of one function body in source
// order, skipping nested function literals (analyzed separately).
func collectLockFunc(pass *Pass, name string, body *ast.BlockStmt) *lockFunc {
	lf := &lockFunc{name: name, body: body}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			lf.loops = append(lf.loops, n.(ast.Node))
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			if class, index, ok := shardLockClass(pass, n); ok {
				sel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				kind := evLock
				if sel.Sel.Name == "Unlock" {
					kind = evUnlock
				}
				if kind == evUnlock && deferred[n] {
					// A deferred unlock releases at return: the lock stays
					// held for the rest of the body, so no unlock event.
					return true
				}
				lf.events = append(lf.events, lockEvent{
					pos: n.Pos(), kind: kind, class: class,
					index: index, loop: innermostLoop(lf.loops, n.Pos()),
				})
				return true
			}
			if fn := pass.funcObj(n); fn != nil && fn.Pkg() == pass.Pkg {
				lf.events = append(lf.events, lockEvent{pos: n.Pos(), kind: evCall, fn: fn})
			}
		}
		return true
	})
	return lf
}

// innermostLoop returns the smallest recorded loop whose range contains pos.
func innermostLoop(loops []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, l := range loops {
		if l.Pos() <= pos && pos < l.End() {
			if best == nil || l.Pos() > best.Pos() {
				best = l
			}
		}
	}
	return best
}

// transitiveAcquirers computes, for each declared function, whether it
// acquires shard.mu / shard.streamMu directly or through same-package calls.
func transitiveAcquirers(decls map[*types.Func]*lockFunc) map[*types.Func][2]bool {
	acquires := make(map[*types.Func][2]bool, len(decls))
	for fn, lf := range decls {
		var a [2]bool
		for _, ev := range lf.events {
			if ev.kind == evLock {
				a[ev.class] = true
			}
		}
		acquires[fn] = a
	}
	for changed := true; changed; {
		changed = false
		for fn, lf := range decls {
			a := acquires[fn]
			for _, ev := range lf.events {
				if ev.kind != evCall {
					continue
				}
				if ca, ok := acquires[ev.fn]; ok {
					if ca[classMu] && !a[classMu] {
						a[classMu] = true
						changed = true
					}
					if ca[classStream] && !a[classStream] {
						a[classStream] = true
						changed = true
					}
				}
			}
			acquires[fn] = a
		}
	}
	return acquires
}

// checkLockFunc simulates one function's acquisition sequence and reports
// protocol violations.
func checkLockFunc(pass *Pass, lf *lockFunc, acquires map[*types.Func][2]bool) {
	// held tracks the stack of currently-held lock events per class under
	// the linear source-order approximation (sound for the straight-line
	// lock regions this protocol produces).
	var held [2][]lockEvent
	for _, ev := range lf.events {
		switch ev.kind {
		case evLock:
			multi := lockLoopAcquiresWithoutRelease(lf, ev)
			switch ev.class {
			case classMu:
				if multi && !ascendingLoopProof(pass, lf, ev) {
					pass.Report(Diagnostic{
						Pos: ev.pos,
						Message: "loop acquires multiple shard.mu without releasing in the same iteration " +
							"and without an ascending shard-index proof; sort the index set first " +
							"(sort.Ints) or scan indices with for i := 0; i < n; i++",
						Related: relatedLoop(ev),
					})
				}
				if len(held[classMu]) > 0 && !multi {
					first := held[classMu][len(held[classMu])-1]
					if !pairwiseSwapProof(pass, lf, first, ev) {
						pass.Report(Diagnostic{
							Pos: ev.pos,
							Message: "second shard.mu acquired while one is held, without an ordering proof; " +
								"swap the indices first (if i > j { i, j = j, i }) so acquisition is ascending",
							Related: []RelatedInfo{{Pos: first.pos, Message: "first shard.mu acquired here"}},
						})
					}
				}
			case classStream:
				if multi || len(held[classStream]) > 0 {
					msg := "second shard.streamMu acquired while one is held; the protocol allows at most one stream lock"
					var rel []RelatedInfo
					if multi {
						msg = "loop acquires multiple shard.streamMu without releasing in the same iteration; the protocol allows at most one stream lock"
						rel = relatedLoop(ev)
					} else {
						rel = []RelatedInfo{{Pos: held[classStream][len(held[classStream])-1].pos, Message: "first shard.streamMu acquired here"}}
					}
					pass.Report(Diagnostic{Pos: ev.pos, Message: msg, Related: rel})
				}
				if len(held[classMu]) > 0 {
					pass.Report(Diagnostic{
						Pos: ev.pos,
						Message: "shard.streamMu acquired while holding shard.mu; the lock order is " +
							"streamMu strictly before any shard.mu",
						Related: []RelatedInfo{{Pos: held[classMu][len(held[classMu])-1].pos, Message: "shard.mu acquired here"}},
					})
				}
			}
			held[ev.class] = append(held[ev.class], ev)
		case evUnlock:
			if n := len(held[ev.class]); n > 0 {
				held[ev.class] = held[ev.class][:n-1]
			}
		case evCall:
			a, ok := acquires[ev.fn]
			if !ok {
				continue
			}
			if len(held[classMu]) > 0 && (a[classMu] || a[classStream]) {
				pass.Report(Diagnostic{
					Pos: ev.pos,
					Message: "call to " + ev.fn.Name() + " while holding shard.mu: the callee (transitively) acquires " +
						"shard locks, nesting an unordered acquisition; restructure as a *Locked helper that relies on the caller's locks",
					Related: []RelatedInfo{{Pos: held[classMu][len(held[classMu])-1].pos, Message: "shard.mu acquired here"}},
				})
			} else if len(held[classStream]) > 0 && a[classStream] {
				pass.Report(Diagnostic{
					Pos: ev.pos,
					Message: "call to " + ev.fn.Name() + " while holding shard.streamMu: the callee (transitively) acquires " +
						"a stream lock, but the protocol allows at most one",
					Related: []RelatedInfo{{Pos: held[classStream][len(held[classStream])-1].pos, Message: "shard.streamMu acquired here"}},
				})
			}
		}
	}
}

func relatedLoop(ev lockEvent) []RelatedInfo {
	if ev.loop == nil {
		return nil
	}
	return []RelatedInfo{{Pos: ev.loop.Pos(), Message: "acquiring loop starts here"}}
}

// lockLoopAcquiresWithoutRelease reports whether ev is a Lock inside a loop
// whose body contains no Unlock of the same class: each iteration acquires
// another shard's lock and holds it (the multi-shard acquisition idiom).
// A loop that pairs each Lock with an Unlock in the same body visits shards
// one at a time and holds at most one lock.
func lockLoopAcquiresWithoutRelease(lf *lockFunc, ev lockEvent) bool {
	if ev.loop == nil {
		return false
	}
	for _, other := range lf.events {
		if other.kind == evUnlock && other.class == ev.class &&
			other.pos >= ev.loop.Pos() && other.pos < ev.loop.End() {
			return false
		}
	}
	return true
}

// ascendingLoopProof reports whether the multi-acquiring loop provably
// visits shard indices in ascending order: either it ranges over a slice
// sorted earlier in the function (sort.Ints(set) / slices.Sort(set) before
// the loop, and no later re-population), or it is a canonical ascending
// index scan (for i := 0; i < n; i++ locking shards[i]).
func ascendingLoopProof(pass *Pass, lf *lockFunc, ev lockEvent) bool {
	switch loop := ev.loop.(type) {
	case *ast.RangeStmt:
		path := exprPath(pass.TypesInfo, loop.X)
		if path == "" {
			return false
		}
		return sortedBefore(pass, lf.body, path, loop.Pos())
	case *ast.ForStmt:
		return ascendingForScan(pass, loop, ev.index)
	}
	return false
}

// sortedBefore reports whether a sort.Ints / sort.Sort / slices.Sort call
// whose argument has the given exprPath occurs before pos in body.
func sortedBefore(pass *Pass, body *ast.BlockStmt, path string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || len(call.Args) == 0 {
			return true
		}
		fn := pass.funcObj(call)
		if isPkgFunc(fn, "sort", "Ints") || isPkgFunc(fn, "sort", "Sort") || isPkgFunc(fn, "slices", "Sort") {
			if exprPath(pass.TypesInfo, call.Args[0]) == path {
				found = true
			}
		}
		return true
	})
	return found
}

// ascendingForScan recognizes for i := 0; i < n; i++ (or i <= n) where the
// lock's shard index is exactly i.
func ascendingForScan(pass *Pass, loop *ast.ForStmt, index ast.Expr) bool {
	if loop.Init == nil || loop.Cond == nil || loop.Post == nil || index == nil {
		return false
	}
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return false
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok || !isZeroLiteral(pass, init.Rhs[0]) {
		return false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) || !sameObject(pass, cond.X, iv) {
		return false
	}
	post, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC || !sameObject(pass, post.X, iv) {
		return false
	}
	return sameObject(pass, index, iv)
}

func isZeroLiteral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// sameObject reports whether both expressions are identifiers resolving to
// the same object.
func sameObject(pass *Pass, a, b ast.Expr) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	if !ok {
		return false
	}
	ao := pass.TypesInfo.ObjectOf(ai)
	return ao != nil && ao == pass.TypesInfo.ObjectOf(bi)
}

// pairwiseSwapProof reports whether the pair of lock index expressions is
// ordered by a preceding conditional swap: if a > b { a, b = b, a } (or
// b < a), with the first lock indexing by a and the second by b.
func pairwiseSwapProof(pass *Pass, lf *lockFunc, first, second lockEvent) bool {
	if first.index == nil || second.index == nil {
		return false
	}
	ai, ok := ast.Unparen(first.index).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ast.Unparen(second.index).(*ast.Ident)
	if !ok {
		return false
	}
	aObj, bObj := pass.TypesInfo.ObjectOf(ai), pass.TypesInfo.ObjectOf(bi)
	if aObj == nil || bObj == nil || aObj == bObj {
		return false // same index relocked is a self-deadlock; unresolvable indices are unprovable
	}
	found := false
	ast.Inspect(lf.body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() >= first.pos {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.GTR && cond.Op != token.LSS) {
			return true
		}
		// The comparison must involve exactly the two index objects.
		x, okx := ast.Unparen(cond.X).(*ast.Ident)
		y, oky := ast.Unparen(cond.Y).(*ast.Ident)
		if !okx || !oky {
			return true
		}
		xo, yo := pass.TypesInfo.ObjectOf(x), pass.TypesInfo.ObjectOf(y)
		if !(xo == aObj && yo == bObj || xo == bObj && yo == aObj) {
			return true
		}
		if swapsObjects(pass, ifs.Body, aObj, bObj) {
			found = true
		}
		return true
	})
	return found
}

// swapsObjects reports whether the block contains a, b = b, a over the two
// objects.
func swapsObjects(pass *Pass, body *ast.BlockStmt, a, b types.Object) bool {
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 2 {
			continue
		}
		l0, ok0 := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		l1, ok1 := ast.Unparen(as.Lhs[1]).(*ast.Ident)
		r0, ok2 := ast.Unparen(as.Rhs[0]).(*ast.Ident)
		r1, ok3 := ast.Unparen(as.Rhs[1]).(*ast.Ident)
		if !ok0 || !ok1 || !ok2 || !ok3 {
			continue
		}
		info := pass.TypesInfo
		lo0, lo1 := info.ObjectOf(l0), info.ObjectOf(l1)
		ro0, ro1 := info.ObjectOf(r0), info.ObjectOf(r1)
		if lo0 == ro1 && lo1 == ro0 &&
			(lo0 == a && lo1 == b || lo0 == b && lo1 == a) {
			return true
		}
	}
	return false
}
