package lint

import (
	"go/ast"
	"go/types"
)

// SimSidePackages is the structural allowlist at the heart of the
// determinism contract: the packages whose outputs must be a pure function
// of (topology, workload, seed), because the paper's figures are only
// comparable across schedulers when every run is bit-reproducible. Wall
// clocks, the global math/rand stream, and map-iteration-ordered output are
// forbidden here. Everything else — the live daemons under internal/live,
// the cmd mains, obs, and the shared core read path (whose wall-clock use
// feeds latency histograms, never sim results) — is exempt by omission,
// not by suppression comments. The collector joined the sim side once it
// became fully clock-injected (its clock is a func() time.Duration bound
// by the caller): sharded snapshot merges must stay byte-identical per
// seed, so it carries the same obligations as the simulator proper.
//
// The map is mutable so the analysistest fixtures can register themselves;
// production membership is fixed at compile time by this literal.
var SimSidePackages = map[string]bool{
	"intsched/internal/simtime":    true,
	"intsched/internal/netsim":     true,
	"intsched/internal/experiment": true,
	"intsched/internal/transport":  true,
	"intsched/internal/traffic":    true,
	"intsched/internal/workload":   true,
	"intsched/internal/edge":       true,
	"intsched/internal/stats":      true,
	"intsched/internal/fault":      true,
	"intsched/internal/collector":  true,
	// pint's sampling draws decide which hops appear in every probe, so an
	// unnamed or global rand stream there would make the reassembled
	// topology — and every figure derived from it — non-reproducible.
	"intsched/internal/pint": true,
	// adapt's cadence decisions feed the per-cell adaptive digest that CI
	// diffs across -parallel settings: a wall-clock age or global-rand
	// jitter inside the controller would break that byte-identity.
	"intsched/internal/adapt": true,
}

// forbiddenTimeFuncs are package time functions that read or wait on the
// wall clock. time.Duration arithmetic and constants remain fine — the
// simulator's virtual clock is expressed in time.Duration.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level functions that do not
// touch the global (process-seeded) Source. Everything else package-level
// (Intn, Float64, Perm, Shuffle, Seed, ...) draws from shared state whose
// stream depends on what every other goroutine consumed — poison for
// seed-determinism. Methods on an explicit *rand.Rand are always fine;
// simtime.Rand wraps one per seed.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// outputMethodNames are methods that emit bytes in call order: calling one
// inside a map-range loop makes the output depend on Go's randomized map
// iteration order.
var outputMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// SimDeterminismAnalyzer enforces seed-determinism in the sim-side
// packages.
var SimDeterminismAnalyzer = &Analyzer{
	Name: "simdeterminism",
	Doc: `forbid wall-clock reads, the global math/rand stream, and map-iteration-ordered output in simulation packages

The simulation must be bit-reproducible per seed. In the packages listed in
SimSidePackages this analyzer reports:

  - calls to time.Now, time.Sleep, time.Since, time.Until, time.After,
    time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker (virtual time
    comes from simtime.Engine; wall-clock perf timing goes through the
    sanctioned internal/wallclock package);
  - calls to package-level math/rand functions other than New/NewSource/
    NewZipf (draws must come from an explicitly seeded *rand.Rand, i.e.
    simtime.Rand);
  - print/encode/write calls inside a range over a map (collect the keys,
    sort them, then emit).`,
	Run: runSimDeterminism,
}

func runSimDeterminism(pass *Pass) (any, error) {
	if !SimSidePackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.nonTestFiles() {
		mapRangeDepth := 0
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				ast.Walk(visitorFunc(walk), n.X)
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					mapRangeDepth++
					for _, stmt := range n.Body.List {
						ast.Walk(visitorFunc(walk), stmt)
					}
					mapRangeDepth--
				} else {
					ast.Walk(visitorFunc(walk), n.Body)
				}
				return false
			case *ast.CallExpr:
				checkDeterminismCall(pass, n, mapRangeDepth > 0)
			}
			return true
		}
		ast.Walk(visitorFunc(walk), file)
	}
	return nil, nil
}

// visitorFunc adapts a func to ast.Visitor.
type visitorFunc func(ast.Node) bool

func (f visitorFunc) Visit(n ast.Node) ast.Visitor {
	if n == nil || !f(n) {
		return nil
	}
	return f
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr, inMapRange bool) {
	fn := pass.funcObj(call)
	if fn != nil && fn.Pkg() != nil {
		sig, _ := fn.Type().(*types.Signature)
		pkgLevel := sig != nil && sig.Recv() == nil
		switch fn.Pkg().Path() {
		case "time":
			if pkgLevel && forbiddenTimeFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "call to time.%s in sim-side package %s: simulation code must use simtime.Engine virtual time (wall-clock perf timing belongs in internal/wallclock)", fn.Name(), pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if pkgLevel && !allowedRandFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "call to global %s.%s in sim-side package %s: draw from an explicitly seeded *rand.Rand (simtime.Rand) so runs are seed-deterministic", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
			}
		}
	}
	if !inMapRange {
		return
	}
	// Direct output inside a map-range body.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		if len(name) > 0 && (name == "Print" || name == "Println" || name == "Printf" ||
			name == "Fprint" || name == "Fprintln" || name == "Fprintf") {
			pass.Reportf(call.Pos(), "fmt.%s inside a range over a map: output order follows randomized map iteration; collect the keys, sort, then print", name)
		}
		return
	}
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && outputMethodNames[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s inside a range over a map: emitted order follows randomized map iteration; collect the keys, sort, then emit", recvTypeString(sig), fn.Name())
		}
	}
}

func recvTypeString(sig *types.Signature) string {
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return sig.Recv().Type().String()
}
