// Package linttest is an analysistest-style harness for the intlint suite:
// it loads a fixture package from testdata, runs analyzers over it, and
// checks the diagnostics against `// want "regexp"` comments in the fixture
// source. The comment syntax matches golang.org/x/tools/go/analysis/
// analysistest for the subset used here (one or more quoted or backquoted
// regexps per line, each consuming exactly one diagnostic on that line), so
// the fixtures port unchanged if the upstream harness ever becomes
// available.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"intsched/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader returns a process-wide loader rooted at the enclosing
// module. Sharing it across tests means the standard library and the repo's
// own packages are type-checked from source once, not once per fixture.
func sharedLoader() (*lint.Loader, error) {
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := findModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	return loader, loaderErr
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// Run loads the fixture package in dir (relative to the module root) under
// the given import path, applies the analyzers, and asserts the diagnostics
// match the fixture's want comments exactly.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	lp, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(dir)), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	findings, err := lint.RunAnalyzers(l.Fset, lp.Files, lp.Pkg, lp.Info, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	wants := collectWants(t, l.Fset, lp)
	for _, f := range findings {
		pos := l.Fset.Position(f.Pos)
		k := lineKey{filepath.Base(pos.Filename), pos.Line}
		if !consumeWant(wants[k], f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, f.Message, f.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re.String())
			}
		}
	}
}

// RunModule applies the analyzers to every package of the enclosing module
// and fails on any finding: the production tree itself must be clean.
func RunModule(t *testing.T, analyzers []*lint.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, lp := range pkgs {
		findings, err := lint.RunAnalyzers(l.Fset, lp.Files, lp.Pkg, lp.Info, analyzers)
		if err != nil {
			t.Fatalf("run analyzers on %s: %v", lp.Path, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s (%s)", l.Fset.Position(f.Pos), f.Message, f.Analyzer)
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// consumeWant marks the first unmatched want whose regexp matches msg.
func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantComment extracts the expectation list from one comment.
var wantComment = regexp.MustCompile(`^//\s*want\s+(.+)$`)

// wantLiteral matches one Go string literal (quoted or raw) in a want
// comment's payload.
var wantLiteral = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// collectWants parses // want comments out of the fixture's syntax.
func collectWants(t *testing.T, fset *token.FileSet, lp *lint.LoadedPackage) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, file := range lp.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{filepath.Base(pos.Filename), pos.Line}
				lits := wantLiteral.FindAllString(m[1], -1)
				if len(lits) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, lit := range lits {
					var pattern string
					if strings.HasPrefix(lit, "`") {
						pattern = strings.Trim(lit, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	return wants
}
