package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

const obsPkg = "intsched/internal/obs"

// obsUnitSuffixes are the unit suffixes the series-name scheme accepts for
// measured quantities. Histograms must use one (their _bucket/_sum/_count
// expansions hang off the base name); gauges may be dimensionless counts
// (intsched_probe_streams) or versions (intsched_collector_epoch).
var obsUnitSuffixes = []string{"_seconds", "_bytes", "_ratio", "_packets"}

// ObsNamingAnalyzer enforces the metric series-name scheme shared between
// the sim-side core.Service instrumentation and the live daemon, so series
// exported by /metrics and reported by intbench -exp qps stay joinable.
var ObsNamingAnalyzer = &Analyzer{
	Name: "obsnaming",
	Doc: `require obs metric names to follow the shared snake_case, unit-suffixed scheme

Every series registered with internal/obs outside the obs package itself
must be named intsched_<snake_case>: lowercase letters, digits, and single
underscores only. Counters (Counter/CounterFunc) end in _total; histograms
end in a unit suffix (_seconds, _bytes, _ratio, _packets); gauges must not
end in _total; no name may end in _bucket, _sum, or _count (reserved for
histogram expansion). Names must be statically checkable: string literals
or named constants, or — for registration tables — the range variable of a
loop over a slice literal whose name fields are constants.`,
	Run: runObsNaming,
}

func runObsNaming(pass *Pass) (any, error) {
	if pass.Pkg.Path() == obsPkg {
		return nil, nil
	}
	for _, file := range pass.nonTestFiles() {
		var stack []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			if lit, ok := n.(*ast.CompositeLit); ok {
				if named := namedOf(pass.TypesInfo.TypeOf(lit)); named != nil &&
					named.Obj().Name() == "Opts" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsPkg {
					checkOptsLit(pass, lit, stack)
				}
			}
			return true
		}
		// ast.Inspect with a push/pop stack so checkOptsLit can see the
		// enclosing call (for the metric kind) and function (for the
		// registration-table trace).
		ast.Inspect(file, visit)
	}
	return nil, nil
}

// checkOptsLit validates the Name field of one obs.Opts literal.
func checkOptsLit(pass *Pass, lit *ast.CompositeLit, stack []ast.Node) {
	var nameExpr ast.Expr
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
			nameExpr = kv.Value
		}
	}
	if nameExpr == nil {
		pass.Reportf(lit.Pos(), "obs.Opts without a Name field: every series needs a statically checkable name")
		return
	}
	kind := metricKindFromContext(pass, lit, stack)
	if tv, ok := pass.TypesInfo.Types[nameExpr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		checkMetricName(pass, nameExpr.Pos(), constant.StringVal(tv.Value), kind)
		return
	}
	// Registration-table idiom: Name is <rangeVar>.<field> where rangeVar
	// ranges over a slice literal with constant name fields.
	if names, ok := traceRangeTable(pass, nameExpr, stack); ok {
		for _, nm := range names {
			checkMetricName(pass, nm.pos, nm.value, kind)
		}
		return
	}
	pass.Reportf(nameExpr.Pos(), "metric name is not statically checkable: use a string literal, a named constant, or a range over a slice literal of constant names so the series scheme can be enforced")
}

// metricKind is the registration method the Opts literal flows into.
type metricKind int

const (
	kindUnknown metricKind = iota
	kindCounter
	kindGauge
	kindHistogram
)

// metricKindFromContext inspects the enclosing call: reg.Counter(Opts{...})
// makes the literal's kind a counter, and so on. An Opts literal stored in
// a variable first has unknown kind; only the base rules apply.
func metricKindFromContext(pass *Pass, lit *ast.CompositeLit, stack []ast.Node) metricKind {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		arg := false
		for _, a := range call.Args {
			if containsNode(a, lit) {
				arg = true
				break
			}
		}
		if !arg {
			continue
		}
		fn := pass.funcObj(call)
		switch {
		case isMethodOf(fn, obsPkg, "Registry", "Counter"), isMethodOf(fn, obsPkg, "Registry", "CounterFunc"):
			return kindCounter
		case isMethodOf(fn, obsPkg, "Registry", "Gauge"), isMethodOf(fn, obsPkg, "Registry", "GaugeFunc"):
			return kindGauge
		case isMethodOf(fn, obsPkg, "Registry", "Histogram"):
			return kindHistogram
		}
		return kindUnknown
	}
	return kindUnknown
}

// containsNode reports whether outer's subtree contains n.
func containsNode(outer ast.Node, n ast.Node) bool {
	if outer == nil {
		return false
	}
	found := false
	ast.Inspect(outer, func(x ast.Node) bool {
		if x == n {
			found = true
		}
		return !found
	})
	return found
}

// constName is one statically resolved name with its source position.
type constName struct {
	pos   token.Pos
	value string
}

// traceRangeTable resolves a non-constant Name expression of the form
// c.name (or c), where c is the value variable of a range over a slice/
// array composite literal in the same function, to the constant name field
// of every element.
func traceRangeTable(pass *Pass, nameExpr ast.Expr, stack []ast.Node) ([]constName, bool) {
	var fieldName string
	var rootObj types.Object
	switch e := ast.Unparen(nameExpr).(type) {
	case *ast.SelectorExpr:
		root, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return nil, false
		}
		fieldName = e.Sel.Name
		rootObj = pass.TypesInfo.ObjectOf(root)
	case *ast.Ident:
		rootObj = pass.TypesInfo.ObjectOf(e)
	default:
		return nil, false
	}
	if rootObj == nil {
		return nil, false
	}
	// Find the enclosing function, then the range statement binding rootObj.
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = f.Body
		case *ast.FuncLit:
			fnBody = f.Body
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return nil, false
	}
	var names []constName
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || found {
			return !found
		}
		val, ok := rng.Value.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(val) != rootObj {
			return true
		}
		tableLit, ok := ast.Unparen(rng.X).(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range tableLit.Elts {
			elemLit, ok := elt.(*ast.CompositeLit)
			if !ok {
				return true
			}
			nameField := fieldInCompositeLit(pass, elemLit, fieldName)
			if nameField == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[nameField]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			names = append(names, constName{pos: nameField.Pos(), value: constant.StringVal(tv.Value)})
		}
		found = true
		return false
	})
	return names, found
}

// fieldInCompositeLit returns the value of the named field in a struct
// composite literal, resolving both keyed and positional forms. For the
// positional form the field order comes from the struct type. When
// fieldName is empty the element itself is returned (table of plain
// strings).
func fieldInCompositeLit(pass *Pass, lit *ast.CompositeLit, fieldName string) ast.Expr {
	if fieldName == "" {
		return lit
	}
	structType, ok := types.Unalias(pass.TypesInfo.TypeOf(lit)).Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == fieldName {
				return kv.Value
			}
			continue
		}
		if i < structType.NumFields() && structType.Field(i).Name() == fieldName {
			return elt
		}
	}
	return nil
}

// checkMetricName applies the naming scheme to one resolved name.
func checkMetricName(pass *Pass, pos token.Pos, name string, kind metricKind) {
	if !validSchemeName(name) {
		pass.Reportf(pos, "metric name %q does not follow the series scheme: names are intsched_<snake_case> (lowercase letters, digits, single underscores)", name)
		return
	}
	for _, reserved := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, reserved) {
			pass.Reportf(pos, "metric name %q ends in %s, which is reserved for histogram exposition; pick a different base name", name, reserved)
			return
		}
	}
	switch kind {
	case kindCounter:
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total (the scheme keeps daemon /metrics and sim-side series joinable)", name)
		}
	case kindHistogram:
		if !hasUnitSuffix(name) {
			pass.Reportf(pos, "histogram %q must end in a unit suffix (%s)", name, strings.Join(obsUnitSuffixes, ", "))
		}
	case kindGauge:
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix marks counters)", name)
		}
	}
}

func hasUnitSuffix(name string) bool {
	for _, s := range obsUnitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// validSchemeName checks intsched_<snake_case>: ^intsched(_[a-z0-9]+)+$.
func validSchemeName(name string) bool {
	rest, ok := strings.CutPrefix(name, "intsched_")
	if !ok || rest == "" {
		return false
	}
	for _, part := range strings.Split(rest, "_") {
		if part == "" {
			return false // leading/trailing/double underscore
		}
		for _, r := range part {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				return false
			}
		}
	}
	return true
}
