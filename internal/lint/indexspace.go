package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// IndexSpaceAnalyzer is a units checker for the int32 index coordinate
// systems of the scheduler hot path.
var IndexSpaceAnalyzer = &Analyzer{
	Name: "indexspace",
	Doc: `forbid mixing node-index, host-index, edge-position, and metric-slot values

PR 8 flattened the read path into index space, where four distinct
coordinate systems share the Go type int32: merged node indices (positions
in Topology.Nodes), host indices (positions in the sorted host list, the
RankKey.From key space), CSR edge positions (into nbrFlat), and directed
metric slots (2e / 2e+1 into the dir* arenas). The compiler cannot tell
them apart; indexing an arena with a node index reads garbage silently.

This checker tags int32 values with their unit at defining sites — results
and parameters of the Topology index API (NodeIndex, HostNodeIndex,
DirSlot, SlotDelay, PathInto, ...), known fields (edgeStart, nbrFlat, the
dir* arenas, hostIdx, destTree.next, RankKey.From), and declarations
carrying a trailing "// unit:U", "// unit:U[I]", or "// unit:[I]"
annotation (element unit U, indexed-by unit I) — and propagates units
through assignment, conversion, +/- constant offsets, len, append, range,
and slicing. It reports indexing U-indexed storage with a value of a
different unit, cross-unit assignment (including struct literals and
annotated fields), cross-unit +/- arithmetic and comparisons, and passing
a value of one unit where the API expects another. Values with no known
unit are never reported, so code outside the index space is untouched.`,
	Run: runIndexSpace,
}

// The units.
type unit uint8

const (
	unitNone unit = iota
	unitNode      // position in Topology.Nodes (merged node index)
	unitHost      // position in the sorted host list
	unitEdge      // CSR edge position (into nbrFlat)
	unitSlot      // directed metric slot (2e / 2e+1 into the dir* arenas)
)

func (u unit) String() string {
	switch u {
	case unitNode:
		return "node-index"
	case unitHost:
		return "host-index"
	case unitEdge:
		return "edge-position"
	case unitSlot:
		return "metric-slot"
	}
	return "unitless"
}

// unitSpec is the unit shape of a value: elem is the unit of the value
// itself (for containers: of its leaf elements), index is the unit that
// indexes it (for slices/arrays/maps).
type unitSpec struct{ elem, index unit }

func unitConflict(a, b unit) bool { return a != unitNone && b != unitNone && a != b }

const (
	collectorPkg = "intsched/internal/collector"
	corePkg      = "intsched/internal/core"
)

// unitFieldKey identifies a struct field carrying builtin units.
type unitFieldKey struct{ pkg, typ, field string }

// unitFields is the builtin field table: the index-space storage of the
// snapshot arena (collector/arena.go documents the coordinate systems).
var unitFields = map[unitFieldKey]unitSpec{
	{collectorPkg, "Topology", "Nodes"}:      {index: unitNode},
	{collectorPkg, "Topology", "nodeIndex"}:  {elem: unitNode},
	{collectorPkg, "Topology", "nbrIdx"}:     {index: unitNode, elem: unitNode},
	{collectorPkg, "Topology", "hostFlag"}:   {index: unitNode},
	{collectorPkg, "Topology", "hostList"}:   {index: unitHost},
	{collectorPkg, "Topology", "hostIdx"}:    {index: unitHost, elem: unitNode},
	{collectorPkg, "Topology", "edgeStart"}:  {index: unitNode, elem: unitEdge},
	{collectorPkg, "Topology", "nbrFlat"}:    {index: unitEdge, elem: unitNode},
	{collectorPkg, "Topology", "dirDelay"}:   {index: unitSlot},
	{collectorPkg, "Topology", "dirDelayOK"}: {index: unitSlot},
	{collectorPkg, "Topology", "dirJitter"}:  {index: unitSlot},
	{collectorPkg, "Topology", "dirRate"}:    {index: unitSlot},
	{collectorPkg, "Topology", "dirQueue"}:   {index: unitSlot},
	{collectorPkg, "Topology", "dirQueueOK"}: {index: unitSlot},
	{collectorPkg, "destTree", "next"}:       {index: unitNode, elem: unitNode},
	{collectorPkg, "destTree", "dist"}:       {index: unitNode},
	{corePkg, "RankKey", "From"}:             {elem: unitHost},
}

// unitMethodKey identifies a function or method carrying builtin units
// (typ is "" for package-level functions).
type unitMethodKey struct{ pkg, typ, name string }

type methodUnits struct{ params, results []unitSpec }

var unitMethods = map[unitMethodKey]methodUnits{
	{collectorPkg, "Topology", "NodeIndex"}:     {results: []unitSpec{{elem: unitNode}, {}}},
	{collectorPkg, "Topology", "NodeName"}:      {params: []unitSpec{{elem: unitNode}}},
	{collectorPkg, "Topology", "IsHostIdx"}:     {params: []unitSpec{{elem: unitNode}}},
	{collectorPkg, "Topology", "HostNodeIndex"}: {params: []unitSpec{{elem: unitHost}}, results: []unitSpec{{elem: unitNode}}},
	{collectorPkg, "Topology", "HostName"}:      {params: []unitSpec{{elem: unitHost}}},
	{collectorPkg, "Topology", "HostIndex"}:     {results: []unitSpec{{elem: unitHost}}},
	{collectorPkg, "Topology", "DirSlot"}:       {params: []unitSpec{{elem: unitNode}, {elem: unitNode}}, results: []unitSpec{{elem: unitSlot}}},
	{collectorPkg, "Topology", "csrEdge"}:       {params: []unitSpec{{elem: unitNode}, {elem: unitNode}}, results: []unitSpec{{elem: unitEdge}}},
	{collectorPkg, "Topology", "SlotDelay"}:     {params: []unitSpec{{elem: unitSlot}}},
	{collectorPkg, "Topology", "SlotJitter"}:    {params: []unitSpec{{elem: unitSlot}}},
	{collectorPkg, "Topology", "SlotRate"}:      {params: []unitSpec{{elem: unitSlot}}},
	{collectorPkg, "Topology", "SlotQueueMax"}:  {params: []unitSpec{{elem: unitSlot}}},
	{collectorPkg, "Topology", "PathInto"}: {
		params:  []unitSpec{{elem: unitNode}, {elem: unitNode}, {elem: unitNode}},
		results: []unitSpec{{elem: unitNode}, {}, {elem: unitNode}},
	},
	{collectorPkg, "Topology", "HopCountInto"}: {
		params:  []unitSpec{{elem: unitNode}, {elem: unitNode}, {elem: unitNode}},
		results: []unitSpec{{}, {elem: unitNode}, {}},
	},
	{collectorPkg, "Topology", "treeForIdx"}:  {params: []unitSpec{{elem: unitNode}}},
	{collectorPkg, "Topology", "scratchTree"}: {params: []unitSpec{{}, {elem: unitNode}}},
	{collectorPkg, "", "buildDestTree"}:       {params: []unitSpec{{}, {elem: unitNode}}},
}

// unitAnnotation matches "unit:elem[index]" in a trailing comment: both
// parts optional ("unit:host", "unit:[slot]", "unit:node[edge]").
var unitAnnotation = regexp.MustCompile(`\bunit:([a-z]*)(?:\[([a-z]+)\])?`)

var unitNames = map[string]unit{
	"node": unitNode, "host": unitHost, "edge": unitEdge, "slot": unitSlot,
}

type unitLineKey struct {
	file string
	line int
}

func runIndexSpace(pass *Pass) (any, error) {
	c := &unitChecker{
		pass:     pass,
		ann:      make(map[unitLineKey]unitSpec),
		reported: make(map[token.Pos]bool),
	}
	for _, file := range pass.nonTestFiles() {
		for _, group := range file.Comments {
			for _, cm := range group.List {
				m := unitAnnotation.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				spec := unitSpec{elem: unitNames[m[1]], index: unitNames[m[2]]}
				if spec == (unitSpec{}) {
					continue
				}
				pos := pass.Fset.Position(cm.Pos())
				c.ann[unitLineKey{pos.Filename, pos.Line}] = spec
			}
		}
	}
	for _, file := range pass.nonTestFiles() {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

type unitChecker struct {
	pass     *Pass
	ann      map[unitLineKey]unitSpec
	env      map[types.Object]unitSpec
	reported map[token.Pos]bool
}

func (c *unitChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// declaredSpec returns the annotation-declared unit of an object: a
// "// unit:..." trailing comment on the line declaring it (field, var, or
// parameter in a multiline signature). Declared specs are pinned — flow
// does not override them.
func (c *unitChecker) declaredSpec(obj types.Object) (unitSpec, bool) {
	if obj == nil || !obj.Pos().IsValid() {
		return unitSpec{}, false
	}
	pos := c.pass.Fset.Position(obj.Pos())
	spec, ok := c.ann[unitLineKey{pos.Filename, pos.Line}]
	return spec, ok
}

// methodUnitsOf resolves a called function against the builtin unit table.
func (c *unitChecker) methodUnitsOf(fn *types.Func) (methodUnits, bool) {
	if fn == nil || fn.Pkg() == nil {
		return methodUnits{}, false
	}
	key := unitMethodKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		named := namedOf(sig.Recv().Type())
		if named == nil {
			return methodUnits{}, false
		}
		key.typ = named.Obj().Name()
	}
	mu, ok := unitMethods[key]
	return mu, ok
}

func (c *unitChecker) checkFunc(fd *ast.FuncDecl) {
	c.env = make(map[types.Object]unitSpec)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.handleAssign(n)
		case *ast.ValueSpec:
			c.handleValueSpec(n)
		case *ast.RangeStmt:
			c.handleRange(n)
		case *ast.CallExpr:
			c.checkCallArgs(n)
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.IndexExpr:
			c.specOf(n)
		case *ast.SliceExpr:
			c.specOf(n)
		case *ast.BinaryExpr:
			c.specOf(n)
		}
		return true
	})
}

// specOf computes the unit shape of an expression, firing index/arithmetic
// mixing checks as it descends (reports are position-deduplicated, so
// revisits are free).
func (c *unitChecker) specOf(e ast.Expr) unitSpec {
	info := c.pass.TypesInfo
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.specOf(e.X)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return unitSpec{}
		}
		if ds, ok := c.declaredSpec(obj); ok {
			return ds
		}
		return c.env[obj]
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil {
			if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
				key := unitFieldKey{named.Obj().Pkg().Path(), named.Obj().Name(), s.Obj().Name()}
				if fs, ok := unitFields[key]; ok {
					return fs
				}
			}
			if ds, ok := c.declaredSpec(s.Obj()); ok {
				return ds
			}
			return unitSpec{}
		}
		if ds, ok := c.declaredSpec(info.ObjectOf(e.Sel)); ok {
			return ds
		}
		return unitSpec{}
	case *ast.IndexExpr:
		cs := c.specOf(e.X)
		is := c.specOf(e.Index)
		if unitConflict(cs.index, is.elem) {
			c.reportf(e.Index.Pos(), "indexing %s-indexed storage with a %s value", cs.index, is.elem)
		}
		return unitSpec{elem: cs.elem}
	case *ast.SliceExpr:
		cs := c.specOf(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b == nil {
				continue
			}
			bs := c.specOf(b)
			if unitConflict(cs.index, bs.elem) {
				c.reportf(b.Pos(), "slicing %s-indexed storage with a %s bound", cs.index, bs.elem)
			}
		}
		return cs
	case *ast.StarExpr:
		return c.specOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return c.specOf(e.X)
		}
		return unitSpec{}
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return c.specOf(e.Args[0]) // conversion preserves the unit
			}
			return unitSpec{}
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap":
					// The length of U-indexed storage is a U-space bound.
					if len(e.Args) == 1 {
						return unitSpec{elem: c.specOf(e.Args[0]).index}
					}
				case "append":
					if len(e.Args) > 0 {
						return c.specOf(e.Args[0])
					}
				}
				return unitSpec{}
			}
		}
		if mu, ok := c.methodUnitsOf(c.pass.funcObj(e)); ok && len(mu.results) > 0 {
			return mu.results[0]
		}
		return unitSpec{}
	case *ast.BinaryExpr:
		return c.binarySpec(e)
	}
	return unitSpec{}
}

// binarySpec handles +/- offset arithmetic (constants preserve the unit)
// and flags cross-unit arithmetic and comparisons. Multiplicative ops
// legitimately change unit (slot = 2e+1), so they yield no unit and are
// never flagged.
func (c *unitChecker) binarySpec(e *ast.BinaryExpr) unitSpec {
	info := c.pass.TypesInfo
	isConst := func(x ast.Expr) bool {
		tv, ok := info.Types[x]
		return ok && tv.Value != nil
	}
	switch e.Op {
	case token.ADD, token.SUB:
		switch {
		case isConst(e.X) && isConst(e.Y):
			return unitSpec{}
		case isConst(e.Y):
			return c.specOf(e.X) // i+1, i-1: an offset in the same space
		case isConst(e.X):
			if e.Op == token.ADD {
				return c.specOf(e.Y)
			}
			return unitSpec{} // n-i reverses the axis
		}
		xs, ys := c.specOf(e.X), c.specOf(e.Y)
		if unitConflict(xs.elem, ys.elem) {
			c.reportf(e.OpPos, "mixing %s and %s values in arithmetic", xs.elem, ys.elem)
		}
		// A difference/sum of two same-unit indices is a distance, not an
		// index in either space.
		return unitSpec{}
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		if isConst(e.X) || isConst(e.Y) {
			return unitSpec{}
		}
		xs, ys := c.specOf(e.X), c.specOf(e.Y)
		if unitConflict(xs.elem, ys.elem) {
			c.reportf(e.OpPos, "comparing a %s value with a %s value", xs.elem, ys.elem)
		}
	}
	return unitSpec{}
}

// bindIdent records (or checks) the unit of an identifier being assigned.
func (c *unitChecker) bindIdent(id *ast.Ident, rs unitSpec) {
	if id.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if ds, ok := c.declaredSpec(obj); ok {
		if unitConflict(ds.elem, rs.elem) {
			c.reportf(id.Pos(), "assigning a %s value to %s, declared %s", rs.elem, id.Name, ds.elem)
		}
		return // declared specs are pinned
	}
	c.env[obj] = rs
}

func (c *unitChecker) handleAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple assignment from a call: bind per-result units when the
		// callee is in the builtin table.
		var results []unitSpec
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			if mu, ok := c.methodUnitsOf(c.pass.funcObj(call)); ok {
				results = mu.results
			}
		}
		for i, lhs := range n.Lhs {
			var rs unitSpec
			if i < len(results) {
				rs = results[i]
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				c.bindIdent(id, rs)
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		rs := c.specOf(n.Rhs[i])
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			c.bindIdent(id, rs)
			continue
		}
		ls := c.specOf(lhs)
		if unitConflict(ls.elem, rs.elem) {
			c.reportf(lhs.Pos(), "assigning a %s value into %s storage (%s)", rs.elem, ls.elem, renderLHS(lhs))
		}
	}
}

func (c *unitChecker) handleValueSpec(n *ast.ValueSpec) {
	for i, name := range n.Names {
		var rs unitSpec
		if i < len(n.Values) {
			rs = c.specOf(n.Values[i])
		}
		c.bindIdent(name, rs)
	}
}

func (c *unitChecker) handleRange(n *ast.RangeStmt) {
	cs := c.specOf(n.X)
	if cs == (unitSpec{}) {
		return
	}
	if id, ok := n.Key.(*ast.Ident); ok && n.Tok == token.DEFINE {
		c.bindIdent(id, unitSpec{elem: cs.index})
	}
	if id, ok := n.Value.(*ast.Ident); ok && n.Tok == token.DEFINE {
		c.bindIdent(id, unitSpec{elem: cs.elem})
	}
}

// checkCallArgs checks call arguments against builtin parameter units and
// annotated parameters of same-package functions.
func (c *unitChecker) checkCallArgs(call *ast.CallExpr) {
	fn := c.pass.funcObj(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	mu, hasTable := c.methodUnitsOf(fn)
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= sig.Params().Len() {
			idx = sig.Params().Len() - 1
		}
		if idx < 0 || idx >= sig.Params().Len() {
			continue
		}
		var ps unitSpec
		if hasTable && idx < len(mu.params) {
			ps = mu.params[idx]
		} else if ds, ok := c.declaredSpec(sig.Params().At(idx)); ok {
			ps = ds
		} else {
			continue
		}
		as := c.specOf(arg)
		if unitConflict(ps.elem, as.elem) {
			c.reportf(arg.Pos(), "passing a %s value where %s expects a %s", as.elem, fn.Name(), ps.elem)
		}
	}
}

// checkCompositeLit checks keyed struct literal fields against builtin and
// annotated field units (core.RankKey{From: ...} must get a host index).
func (c *unitChecker) checkCompositeLit(lit *ast.CompositeLit) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fs, ok := unitFields[unitFieldKey{named.Obj().Pkg().Path(), named.Obj().Name(), key.Name}]
		if !ok {
			if ds, okd := c.declaredSpec(info.ObjectOf(key)); okd {
				fs = ds
			} else {
				continue
			}
		}
		vs := c.specOf(kv.Value)
		if unitConflict(fs.elem, vs.elem) {
			c.reportf(kv.Value.Pos(), "assigning a %s value to field %s, declared %s", vs.elem, key.Name, fs.elem)
		}
	}
}
