package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages of this module from source, resolving
// module-internal imports by walking the module tree and everything else
// through the standard library's source importer. It exists so intlint (and
// its analysistest harness) can run without network access, export data, or
// golang.org/x/tools: the only inputs are GOROOT and the module checkout.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*LoadedPackage // by import path
	loading map[string]bool           // cycle guard
}

// LoadedPackage is one type-checked package plus its syntax.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewLoader creates a loader for the module rooted at moduleRoot (the
// directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// source via go/build. Disable cgo so packages like net resolve to
	// their pure-Go variants; type checking never needs the cgo halves.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*LoadedPackage),
		loading:    make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Import implements types.Importer for the type checker: module-internal
// paths load from source under the module root; "unsafe" and the standard
// library come from the stdlib importers.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		lp, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are excluded: the analyzers skip them anyway,
// and excluding them keeps external-test-package plumbing out of the
// loader. Results are memoized by import path.
func (l *Loader) LoadDir(dir, importPath string) (*LoadedPackage, error) {
	if lp, ok := l.pkgs[importPath]; ok {
		return lp, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	lp := &LoadedPackage{Path: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.pkgs[importPath] = lp
	return lp, nil
}

// LoadModule loads every non-test package under the module root, skipping
// testdata, hidden, and results directories. Packages are returned sorted
// by import path.
func (l *Loader) LoadModule() ([]*LoadedPackage, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "results" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []*LoadedPackage
	sort.Strings(dirs)
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		lp, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// Finding is one diagnostic attributed to the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	Related  []RelatedInfo
}

// RunAnalyzers applies the given analyzers to a type-checked package and
// returns the findings sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				findings = append(findings, Finding{Analyzer: a.Name, Pos: d.Pos, Message: d.Message, Related: d.Related})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}
