// Package obsname is the obsnaming fixture: metric names registered with
// internal/obs must follow the intsched_<snake_case> scheme with kind
// suffixes, and must be statically checkable — including through the
// registration-table idiom the daemons use.
package obsname

import "intsched/internal/obs"

const queryCounter = "intsched_scheduler_queries_total"

func Register(reg *obs.Registry) {
	reg.Counter(obs.Opts{Name: "intsched_probes_received_total", Help: "ok"})
	reg.Counter(obs.Opts{Name: queryCounter, Help: "named constant: ok"})
	reg.Counter(obs.Opts{Name: "intsched_probes_received", Help: "x"}) // want `counter "intsched_probes_received" must end in _total`
	reg.Counter(obs.Opts{Name: "intschedProbes_total", Help: "x"})     // want `does not follow the series scheme`
	reg.Counter(obs.Opts{Name: "probes_received_total", Help: "x"})    // want `does not follow the series scheme`
	reg.Counter(obs.Opts{Name: "intsched__probes_total", Help: "x"})   // want `does not follow the series scheme`
	reg.Gauge(obs.Opts{Name: "intsched_queue_depth_packets", Help: "ok"})
	reg.Gauge(obs.Opts{Name: "intsched_drops_total", Help: "x"}) // want `gauge "intsched_drops_total" must not end in _total`
	reg.Gauge(obs.Opts{Name: "intsched_queue_count", Help: "x"}) // want `reserved for histogram exposition`
	reg.Histogram(obs.Opts{Name: "intsched_query_latency_seconds", Help: "ok"}, nil)
	reg.Histogram(obs.Opts{Name: "intsched_query_latency", Help: "x"}, nil) // want `histogram "intsched_query_latency" must end in a unit suffix`
	reg.Counter(obs.Opts{Help: "no name"})                                  // want `obs\.Opts without a Name field`
}

// RegisterTable is the table-driven registration idiom: the analyzer
// resolves the range variable back to the slice literal and checks every
// constant element.
func RegisterTable(reg *obs.Registry) {
	for _, c := range []struct{ name, help string }{
		{"intsched_probes_received_total", "ok"},
		{name: "intsched_acks_sent_total", help: "keyed element: ok"},
		{"intsched_probes_dropped", "bad"}, // want `counter "intsched_probes_dropped" must end in _total`
	} {
		reg.Counter(obs.Opts{Name: c.name, Help: c.help})
	}
}

func RegisterDynamic(reg *obs.Registry, name string) {
	reg.Counter(obs.Opts{Name: name}) // want `not statically checkable`
}
