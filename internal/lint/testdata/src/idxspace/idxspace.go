// Package idxspace is the indexspace fixture: the four int32 coordinate
// systems of the flattened read path (node index, host index, CSR edge
// position, directed metric slot), mixed up and used correctly. The local
// arena type shows the trailing-comment annotation grammar; the Topology
// calls exercise the builtin unit table.
package idxspace

import (
	"intsched/internal/collector"
	"intsched/internal/core"
)

// arena mirrors the scheduler's flattened read path.
type arena struct {
	delay  []int64 // unit:[slot] — per-direction delay, indexed by metric slot
	nbr    []int32 // unit:node[edge] — neighbor node at each CSR edge position
	starts []int32 // unit:edge[node] — CSR row starts, indexed by node
}

// BadArenaNodeIndex indexes a slot-indexed arena with a node index — the
// fabricated mix-up: it compiles, reads garbage, and corrupts silently.
func BadArenaNodeIndex(a *arena, topo *collector.Topology, name string) int64 {
	n, ok := topo.NodeIndex(name)
	if !ok {
		return 0
	}
	return a.delay[n] // want `indexing metric-slot-indexed storage with a node-index value`
}

// BadEdgeIndex walks the CSR neighbor array with a node index.
func BadEdgeIndex(a *arena, topo *collector.Topology, name string) int32 {
	n, ok := topo.NodeIndex(name)
	if !ok {
		return 0
	}
	return a.nbr[n] // want `indexing edge-position-indexed storage with a node-index value`
}

// BadSlotIntoAPI hands a node index to the slot-keyed metric API.
func BadSlotIntoAPI(topo *collector.Topology, name string) bool {
	n, ok := topo.NodeIndex(name)
	if !ok {
		return false
	}
	_, okd := topo.SlotDelay(n) // want `passing a node-index value where SlotDelay expects a metric-slot`
	return okd
}

// BadNodeIntoHostAPI confuses the merged node index with the sorted host
// list position.
func BadNodeIntoHostAPI(topo *collector.Topology, name string) string {
	n, ok := topo.NodeIndex(name)
	if !ok {
		return ""
	}
	return topo.HostName(int(n)) // want `passing a node-index value where HostName expects a host-index`
}

// BadAnnotatedLocal assigns across units into a declared local.
func BadAnnotatedLocal(topo *collector.Topology, name string) int32 {
	var h int32 // unit:host — candidate position in the sorted host list
	n, ok := topo.NodeIndex(name)
	if !ok {
		return -1
	}
	h = n // want `assigning a node-index value to h, declared host-index`
	return h
}

// BadArith mixes coordinate systems in arithmetic.
func BadArith(topo *collector.Topology, name string) int32 {
	n, _ := topo.NodeIndex(name)
	h := topo.HostIndex(name)
	return n + int32(h) // want `mixing node-index and host-index values in arithmetic`
}

// BadCompare compares indices from different spaces.
func BadCompare(topo *collector.Topology, name string) bool {
	n, _ := topo.NodeIndex(name)
	h := topo.HostIndex(name)
	return int(n) == h // want `comparing a node-index value with a host-index value`
}

// BadStoreWrongElem stores a host index where neighbor node indices live.
func BadStoreWrongElem(a *arena, topo *collector.Topology, name string) {
	h := topo.HostIndex(name)
	a.nbr[0] = int32(h) // want `assigning a host-index value into node-index storage`
}

// BadRankKeyFrom keys the rank cache by node index; its From field is a
// host-list position.
func BadRankKeyFrom(topo *collector.Topology, name string) core.RankKey {
	n, _ := topo.NodeIndex(name)
	return core.RankKey{From: n} // want `assigning a node-index value to field From, declared host-index`
}

// GoodRankKeyFrom converts the host position the cache key wants.
func GoodRankKeyFrom(topo *collector.Topology, name string) core.RankKey {
	h := topo.HostIndex(name)
	return core.RankKey{From: int32(h)}
}

// GoodSlotRead derives the slot from the directed pair and reads with it.
func GoodSlotRead(a *arena, topo *collector.Topology, name string) int64 {
	n, ok := topo.NodeIndex(name)
	if !ok {
		return 0
	}
	s := topo.DirSlot(n, n)
	if s < 0 {
		return 0
	}
	return a.delay[s]
}

// GoodCSRWalk: row bounds come from the node-indexed starts, the row is
// sliced with edge positions, and iteration yields node indices.
func GoodCSRWalk(a *arena, topo *collector.Topology, name string) int32 {
	n, ok := topo.NodeIndex(name)
	if !ok {
		return 0
	}
	lo, hi := a.starts[n], a.starts[n+1]
	var sum int32
	for _, v := range a.nbr[lo:hi] {
		if topo.IsHostIdx(v) {
			sum += v
		}
	}
	return sum
}

// GoodHostRoundTrip: host position -> node index -> path walk, each value
// staying in its own space.
func GoodHostRoundTrip(topo *collector.Topology, name string, scratch []int32) int {
	h := topo.HostIndex(name)
	if h < 0 {
		return 0
	}
	dst := topo.HostNodeIndex(h)
	src, ok := topo.NodeIndex(name)
	if !ok {
		return 0
	}
	p, code, _ := topo.PathInto(src, dst, scratch)
	if code != collector.PathOK {
		return 0
	}
	return len(p) - 1
}

// GoodLenBound: the length of U-indexed storage is a bound in U space.
func GoodLenBound(a *arena) bool {
	var e int32 // unit:edge — current CSR edge position
	e = int32(len(a.nbr)) - 1
	return e > 0
}
