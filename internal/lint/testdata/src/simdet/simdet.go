// Package simdet is the simdeterminism fixture: wall clocks, the global
// math/rand stream, and map-iteration-ordered output must be flagged, while
// the sanctioned idioms (explicitly seeded rand, Duration arithmetic,
// sort-then-emit) stay clean.
package simdet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func Wallclock() time.Duration {
	start := time.Now()          // want `call to time\.Now in sim-side package`
	time.Sleep(time.Millisecond) // want `call to time\.Sleep in sim-side package`
	return time.Since(start)     // want `call to time\.Since in sim-side package`
}

func Deadline(now time.Duration) time.Duration {
	return now + 250*time.Millisecond // Duration arithmetic is fine
}

func GlobalRand() int {
	return rand.Intn(10) // want `call to global math/rand\.Intn in sim-side package`
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `call to global math/rand\.Shuffle`
}

func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit source: fine
	return r.Intn(10)
}

func PrintMap(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a range over a map`
	}
}

func BuildFromMap(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `Builder\.WriteString inside a range over a map`
	}
	return b.String()
}

func PrintSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collecting keys inside the range is fine
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // slice range: deterministic order
	}
}
