// Package shardlock is the shardlock fixture: every acquisition shape of
// the collector's two-level locking protocol, blessed and broken. The mini
// shard/coll types mirror internal/collector's shape — the analyzer keys on
// mu/streamMu fields of a struct type named "shard", wherever it lives.
package shardlock

import (
	"sort"
	"sync"
)

type shard struct {
	mu       sync.Mutex
	streamMu sync.Mutex
	links    map[string]int
}

type coll struct {
	shards []shard
}

// GoodAscendingSorted is the HandleProbe idiom: sort the index set, lock
// ascending, unlock in reverse.
func (c *coll) GoodAscendingSorted(set []int) {
	sort.Ints(set)
	for _, i := range set {
		c.shards[i].mu.Lock()
	}
	for k := len(set) - 1; k >= 0; k-- {
		c.shards[set[k]].mu.Unlock()
	}
}

// GoodAscendingScan locks every shard via the canonical ascending index
// scan.
func (c *coll) GoodAscendingScan() {
	for i := 0; i < len(c.shards); i++ {
		c.shards[i].mu.Lock()
	}
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
}

// GoodSequential holds at most one lock at a time: no ordering obligation.
func (c *coll) GoodSequential() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += len(c.shards[i].links)
		c.shards[i].mu.Unlock()
	}
	return total
}

// GoodPairwise is the SetLinkRate idiom: order the pair before locking.
func (c *coll) GoodPairwise(a, b int) {
	i, j := a, b
	if i > j {
		i, j = j, i
	}
	c.shards[i].mu.Lock()
	if j != i {
		c.shards[j].mu.Lock()
	}
	if j != i {
		c.shards[j].mu.Unlock()
	}
	c.shards[i].mu.Unlock()
}

// GoodSingleDefer holds one lock to function end via defer.
func (c *coll) GoodSingleDefer(i int) int {
	c.shards[i].mu.Lock()
	defer c.shards[i].mu.Unlock()
	return len(c.shards[i].links)
}

// GoodStreamThenMu is the documented two-level order: one streamMu strictly
// before any ascending mu set.
func (c *coll) GoodStreamThenMu(o int, set []int) {
	c.shards[o].streamMu.Lock()
	sort.Ints(set)
	for _, i := range set {
		c.shards[i].mu.Lock()
	}
	for k := len(set) - 1; k >= 0; k-- {
		c.shards[set[k]].mu.Unlock()
	}
	c.shards[o].streamMu.Unlock()
}

// GoodClosure: a closure's locks belong to the closure, not the definer.
func (c *coll) GoodClosure(i int) func() int {
	return func() int {
		c.shards[i].mu.Lock()
		defer c.shards[i].mu.Unlock()
		return len(c.shards[i].links)
	}
}

// pruneLocked follows the *Locked convention: it relies on the caller's
// lock and acquires nothing itself.
func (c *coll) pruneLocked(i int) {
	for k := range c.shards[i].links {
		delete(c.shards[i].links, k)
	}
}

// GoodLockedHelper calls a non-acquiring helper while holding the lock.
func (c *coll) GoodLockedHelper(i int) {
	c.shards[i].mu.Lock()
	c.pruneLocked(i)
	c.shards[i].mu.Unlock()
}

// lint:shardlock — the deliberately reversed acquisition this analyzer
// exists to catch: nothing orders i and j, so when shardOf(b) < shardOf(a)
// this runs descending against HandleProbe's ascending sweep and deadlocks.
func (c *coll) BadReversedPair(i, j int) {
	c.shards[i].mu.Lock()
	c.shards[j].mu.Lock() // want `second shard\.mu acquired while one is held`
	c.shards[j].mu.Unlock()
	c.shards[i].mu.Unlock()
}

// BadUnsortedLoop accumulates locks over an index set nothing sorted.
func (c *coll) BadUnsortedLoop(set []int) {
	for _, i := range set {
		c.shards[i].mu.Lock() // want `loop acquires multiple shard\.mu without releasing`
	}
	for k := len(set) - 1; k >= 0; k-- {
		c.shards[set[k]].mu.Unlock()
	}
}

// BadStreamAfterMu inverts the two-level order.
func (c *coll) BadStreamAfterMu(i, o int) {
	c.shards[i].mu.Lock()
	c.shards[o].streamMu.Lock() // want `shard\.streamMu acquired while holding shard\.mu`
	c.shards[o].streamMu.Unlock()
	c.shards[i].mu.Unlock()
}

// BadDoubleStream holds two stream locks; the protocol allows at most one.
func (c *coll) BadDoubleStream(a, b int) {
	c.shards[a].streamMu.Lock()
	c.shards[b].streamMu.Lock() // want `second shard\.streamMu acquired while one is held`
	c.shards[b].streamMu.Unlock()
	c.shards[a].streamMu.Unlock()
}

// rebalance acquires a shard lock itself.
func (c *coll) rebalance(i int) {
	c.shards[i].mu.Lock()
	c.shards[i].links = nil
	c.shards[i].mu.Unlock()
}

// touch acquires transitively, through rebalance.
func (c *coll) touch(i int) {
	c.rebalance(i)
}

// BadCallWhileHeld nests rebalance's acquisition under a held lock.
func (c *coll) BadCallWhileHeld(i int) {
	c.shards[i].mu.Lock()
	c.rebalance(i) // want `call to rebalance while holding shard\.mu`
	c.shards[i].mu.Unlock()
}

// BadTransitiveCall nests an acquisition two calls deep.
func (c *coll) BadTransitiveCall(i int) {
	c.shards[i].mu.Lock()
	c.touch(i) // want `call to touch while holding shard\.mu`
	c.shards[i].mu.Unlock()
}

// store has a mu field too, but its owner is not a shard: the sptStore-style
// exclusion. Unordered double acquisition here is someone else's protocol.
type store struct {
	mu sync.Mutex
}

func (s *store) Twice(other *store) {
	s.mu.Lock()
	other.mu.Lock()
	other.mu.Unlock()
	s.mu.Unlock()
}
