// Package adaptdet is the simdeterminism fixture for the adaptive probing
// controller: cadence decisions derived from the wall clock (signal ages
// measured with time.Now) or jittered through the global math/rand stream
// would make the directive sequence — and the per-cell adaptive digest the
// CI diffs across -parallel settings — differ run to run. Signal ages must
// come from the collector's injected clock and any jitter from a named,
// explicitly seeded stream (simtime.Rand.Stream).
package adaptdet

import (
	"math/rand"
	"time"

	"intsched/internal/adapt"
	"intsched/internal/simtime"
)

// WallclockAge stamps a signal's probe-silence age off the wall clock, so
// two replays of the same scenario feed the controller different ages.
func WallclockAge(lastProbe time.Time) adapt.Signal {
	age := time.Since(lastProbe) // want `call to time\.Since in sim-side package`
	return adapt.Signal{Origin: "n1", Target: "sched", Age: age}
}

// GlobalJitter perturbs a directive interval through the unnamed global
// stream, entangling the cadence plan with every other goroutine's draws.
func GlobalJitter(iv time.Duration) time.Duration {
	return iv + time.Duration(rand.Int63n(int64(iv/8))) // want `call to global math/rand\.Int63n in sim-side package`
}

// SeededEval is the sanctioned idiom: ages come in pre-computed from the
// collector's injected clock, and any randomness the caller wants is drawn
// from a named stream derived from the scenario seed.
func SeededEval(ctrl *adapt.Controller, sigs []adapt.Signal, root *simtime.Rand) []adapt.Directive {
	_ = root.Stream("adapt")
	return ctrl.Decide(sigs)
}
