// Package scratch is the scratchalias fixture: values aliasing the probe
// codec's reused decode/encode scratch — and paths walked into reusable
// scratch by Topology.PathInto — must not outlive the call, while the
// store-back, in-place-mutation, and synchronous-callee idioms stay clean.
package scratch

import (
	"intsched/internal/collector"
	"intsched/internal/telemetry"
)

type daemon struct {
	decodeScratch telemetry.ProbePayload
	encScratch    []byte
	lastRecords   []telemetry.Record
	history       map[uint64]*telemetry.ProbePayload
}

// GoodEncode is the sanctioned encoder shape: regrow the scratch back into
// the field it came from and hand the buffer to a synchronous callee.
func (d *daemon) GoodEncode(p *telemetry.ProbePayload) {
	encoded, err := telemetry.AppendProbe(d.encScratch[:0], p)
	if err != nil {
		return
	}
	d.encScratch = encoded
	send(encoded)
}

func send(b []byte) { _ = len(b) }

// GoodDecode decodes into the reusable scratch, mutates it in place, and
// passes it to a synchronous same-package consumer.
func (d *daemon) GoodDecode(raw []byte) {
	payload := &d.decodeScratch
	if err := telemetry.UnmarshalProbeInto(payload, raw); err != nil {
		return
	}
	for i := range payload.Stack.Records {
		payload.Stack.Records[i].Queues = payload.Stack.Records[i].Queues[:0]
	}
	consume(payload)
}

func consume(p *telemetry.ProbePayload) { _ = p.Origin }

func (d *daemon) BadRetainRecords(raw []byte) {
	payload := &d.decodeScratch
	if err := telemetry.UnmarshalProbeInto(payload, raw); err != nil {
		return
	}
	d.lastRecords = payload.Stack.Records // want `probe-codec scratch stored in receiver field d\.lastRecords`
}

func (d *daemon) BadHistory(raw []byte) {
	payload := &d.decodeScratch
	if err := telemetry.UnmarshalProbeInto(payload, raw); err != nil {
		return
	}
	d.history[payload.Seq] = payload // want `probe-codec scratch stored in receiver field`
}

func (d *daemon) BadReturn(p *telemetry.ProbePayload) []byte {
	encoded, err := telemetry.AppendProbe(d.encScratch[:0], p)
	if err != nil {
		return nil
	}
	d.encScratch = encoded
	return encoded // want `probe-codec scratch returned to the caller`
}

var lastPayload *telemetry.ProbePayload

func BadGlobal(raw []byte) {
	var p telemetry.ProbePayload
	if err := telemetry.UnmarshalProbeInto(&p, raw); err != nil {
		return
	}
	lastPayload = &p // want `probe-codec scratch stored in package-level variable lastPayload`
}

var deferred []func()

func BadCapture(raw []byte) {
	var p telemetry.ProbePayload
	if err := telemetry.UnmarshalProbeInto(&p, raw); err != nil {
		return
	}
	deferred = append(deferred, func() { consume(&p) }) // want `probe-codec scratch captured by a closure`
}

// walker ranks over index paths the way core's rankers do: PathInto walks
// into reusable scratch that the next walk overwrites.
type walker struct {
	path     []int32
	lastPath []int32
}

// GoodPathStoreBack is the sanctioned shape: the returned path is stored
// back into the scratch field it was walked into, and only derived scalars
// (hop counts, per-hop reads) outlive the call.
func (w *walker) GoodPathStoreBack(topo *collector.Topology, src, dst int32) int {
	p, code, _ := topo.PathInto(src, dst, w.path)
	w.path = p
	if code != collector.PathOK {
		return -1
	}
	return len(p) - 1
}

// GoodPathLocal keeps the walked path in a local and hands it to a
// synchronous callee, which copies what it keeps.
func GoodPathLocal(topo *collector.Topology, src, dst int32, scratch []int32) {
	p, _, _ := topo.PathInto(src, dst, scratch)
	walkHops(p)
}

func walkHops(p []int32) { _ = len(p) }

func (w *walker) BadPathRetained(topo *collector.Topology, src, dst int32) {
	p, _, _ := topo.PathInto(src, dst, w.path)
	w.path = p
	w.lastPath = p // want `probe-codec scratch stored in receiver field w\.lastPath`
}

func BadPathReturned(topo *collector.Topology, src, dst int32, scratch []int32) []int32 {
	p, _, _ := topo.PathInto(src, dst, scratch)
	return p // want `probe-codec scratch returned to the caller`
}
