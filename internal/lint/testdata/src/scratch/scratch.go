// Package scratch is the scratchalias fixture: values aliasing the probe
// codec's reused decode/encode scratch must not outlive the call, while the
// store-back, in-place-mutation, and synchronous-callee idioms stay clean.
package scratch

import "intsched/internal/telemetry"

type daemon struct {
	decodeScratch telemetry.ProbePayload
	encScratch    []byte
	lastRecords   []telemetry.Record
	history       map[uint64]*telemetry.ProbePayload
}

// GoodEncode is the sanctioned encoder shape: regrow the scratch back into
// the field it came from and hand the buffer to a synchronous callee.
func (d *daemon) GoodEncode(p *telemetry.ProbePayload) {
	encoded, err := telemetry.AppendProbe(d.encScratch[:0], p)
	if err != nil {
		return
	}
	d.encScratch = encoded
	send(encoded)
}

func send(b []byte) { _ = len(b) }

// GoodDecode decodes into the reusable scratch, mutates it in place, and
// passes it to a synchronous same-package consumer.
func (d *daemon) GoodDecode(raw []byte) {
	payload := &d.decodeScratch
	if err := telemetry.UnmarshalProbeInto(payload, raw); err != nil {
		return
	}
	for i := range payload.Stack.Records {
		payload.Stack.Records[i].Queues = payload.Stack.Records[i].Queues[:0]
	}
	consume(payload)
}

func consume(p *telemetry.ProbePayload) { _ = p.Origin }

func (d *daemon) BadRetainRecords(raw []byte) {
	payload := &d.decodeScratch
	if err := telemetry.UnmarshalProbeInto(payload, raw); err != nil {
		return
	}
	d.lastRecords = payload.Stack.Records // want `probe-codec scratch stored in receiver field d\.lastRecords`
}

func (d *daemon) BadHistory(raw []byte) {
	payload := &d.decodeScratch
	if err := telemetry.UnmarshalProbeInto(payload, raw); err != nil {
		return
	}
	d.history[payload.Seq] = payload // want `probe-codec scratch stored in receiver field`
}

func (d *daemon) BadReturn(p *telemetry.ProbePayload) []byte {
	encoded, err := telemetry.AppendProbe(d.encScratch[:0], p)
	if err != nil {
		return nil
	}
	d.encScratch = encoded
	return encoded // want `probe-codec scratch returned to the caller`
}

var lastPayload *telemetry.ProbePayload

func BadGlobal(raw []byte) {
	var p telemetry.ProbePayload
	if err := telemetry.UnmarshalProbeInto(&p, raw); err != nil {
		return
	}
	lastPayload = &p // want `probe-codec scratch stored in package-level variable lastPayload`
}

var deferred []func()

func BadCapture(raw []byte) {
	var p telemetry.ProbePayload
	if err := telemetry.UnmarshalProbeInto(&p, raw); err != nil {
		return
	}
	deferred = append(deferred, func() { consume(&p) }) // want `probe-codec scratch captured by a closure`
}
