// Package transient is the transientpacket fixture. The ring-buffer
// retention in HandleRing reproduces the PR 3 transient-retention bug: a
// handler kept delivered packets in a ring while netsim recycled them, so
// the ring's entries were rewritten under it by later NewPacket calls.
package transient

import (
	"intsched/internal/netsim"
	"intsched/internal/telemetry"
)

type sink struct {
	last *netsim.Packet
	ring []*netsim.Packet
	seen map[uint64]*netsim.Packet
	ch   chan *netsim.Packet
}

func (s *sink) HandleLast(pkt *netsim.Packet) {
	s.last = pkt // want `transient packet stored in receiver field s\.last`
}

func (s *sink) HandleRing(pkt *netsim.Packet) {
	s.ring = append(s.ring, pkt) // want `transient packet stored in receiver field s\.ring`
}

func (s *sink) HandleMap(pkt *netsim.Packet) {
	s.seen[pkt.ID] = pkt // want `transient packet stored in receiver field`
}

func (s *sink) HandleChan(pkt *netsim.Packet) {
	s.ch <- pkt // want `transient packet sent on a channel`
}

var lastSeen *netsim.Packet

func HandleGlobal(pkt *netsim.Packet) {
	lastSeen = pkt // want `transient packet stored in package-level variable lastSeen`
}

func HandleGo(pkt *netsim.Packet) {
	go sinkhole("late", pkt) // want `transient packet passed to a goroutine`
}

var callbacks []func()

func HandleClosure(pkt *netsim.Packet) {
	callbacks = append(callbacks, func() { sinkhole("later", pkt) }) // want `transient packet captured by a closure`
}

// HandleForward hands the packet to same-package helpers: taint follows the
// call and the leaks are reported inside the callees.
func HandleForward(pkt *netsim.Packet) {
	hold("tag", pkt)
	_ = leak(pkt)
}

func hold(tag string, p *netsim.Packet) {
	_ = tag
	lastSeen = p // want `transient packet stored in package-level variable lastSeen`
}

func leak(p *netsim.Packet) *netsim.Packet {
	return p // want `transient packet returned to the caller`
}

func sinkhole(tag string, p *netsim.Packet) {
	_ = tag
	_ = p
}

var (
	total     int
	lastProbe *telemetry.ProbePayload
)

// HandleRead shows the sanctioned patterns: field reads copy data out, the
// Probe pointee survives recycling, and an explicit struct copy may be kept.
func HandleRead(pkt *netsim.Packet) {
	total += pkt.Size
	lastProbe = pkt.Probe
}

var copies []netsim.Packet

func HandleCopy(pkt *netsim.Packet) {
	cp := *pkt
	copies = append(copies, cp)
}
