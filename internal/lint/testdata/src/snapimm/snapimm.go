// Package snapimm is the snapshotimmutable fixture: stores through
// published Topology snapshots and cached RankEntry views, against the
// sanctioned read/reslice/clone idioms.
package snapimm

import (
	"sort"

	"intsched/internal/collector"
	"intsched/internal/core"
)

// BadSnapshotStore mutates the snapshot every concurrent caller shares.
func BadSnapshotStore(c *collector.Collector) {
	topo := c.Snapshot()
	topo.Nodes[0] = "renamed" // want `store through topology snapshot`
}

// BadParamStore: outside the collector, every *Topology parameter came from
// Snapshot — it is published state by construction.
func BadParamStore(topo *collector.Topology) {
	topo.Nodes[0] = "renamed" // want `store through topology snapshot`
}

// BadViewElementStore writes into the cached backing array through a
// zero-copy view.
func BadViewElementStore(e *core.RankEntry) {
	view := e.Ranked()
	view[0].Delay = 0 // want `store through cached candidate view`
}

// BadViewElementReplace overwrites a whole cached element.
func BadViewElementReplace(cache *core.RankCache, epoch, gen uint64, key core.RankKey, ranked []core.Candidate) {
	entry := cache.Store(epoch, gen, key, ranked)
	view := entry.Ranked()
	view[0] = core.Candidate{} // want `store through cached candidate view`
}

// BadIncDec mutates through the view with ++.
func BadIncDec(e *core.RankEntry) {
	view := e.Ranked()
	view[0].Hops++ // want `store through cached candidate view`
}

// BadAppend may write past the view's length into cached elements a
// Shaped prefix still serves.
func BadAppend(e *core.RankEntry, extra core.Candidate) []core.Candidate {
	view := e.Shaped(false, true, 3)
	return append(view, extra) // want `append to cached candidate view`
}

// BadCopy clobbers the shared storage wholesale.
func BadCopy(e *core.RankEntry, src []core.Candidate) {
	view := e.Ranked()
	copy(view, src) // want `copy into cached candidate view`
}

// BadSort reorders the storage concurrent readers are iterating.
func BadSort(e *core.RankEntry) {
	view := e.Ranked()
	sort.Slice(view, func(i, j int) bool { // want `in-place sort of cached candidate view`
		return view[i].Delay < view[j].Delay
	})
}

// BadLookupEntry taints through the cache's lookup path.
func BadLookupEntry(cache *core.RankCache, epoch uint64, key core.RankKey) {
	entry, ok, _ := cache.Lookup(epoch, key)
	if !ok {
		return
	}
	view := entry.Ranked()
	view[0].Reachable = false // want `store through cached candidate view`
}

// GoodClone is the sanctioned mutation idiom: clone, then do anything.
func GoodClone(e *core.RankEntry) []core.Candidate {
	own := core.CloneCandidates(e.Ranked())
	sort.Slice(own, func(i, j int) bool { return own[i].Delay < own[j].Delay })
	if len(own) > 0 {
		own[0].Hops = 0
	}
	return own
}

// GoodReslice: rebinding a name to a narrower view changes the name, not
// the shared storage.
func GoodReslice(e *core.RankEntry) []core.Candidate {
	view := e.Ranked()
	if len(view) > 3 {
		view = view[:3]
	}
	return view
}

// GoodRangeCopy: ranging over the view yields struct copies; mutating a
// copy is local.
func GoodRangeCopy(e *core.RankEntry) int {
	total := 0
	for _, c := range e.Ranked() {
		c.Delay = 0
		total += c.Hops
	}
	return total
}

// GoodHostsCopy: Topology.Hosts returns a fresh copy, not a view.
func GoodHostsCopy(topo *collector.Topology) []string {
	hosts := topo.Hosts()
	if len(hosts) > 0 {
		hosts[0] = "mine"
	}
	return hosts
}

// GoodGenToken: only Lookup's first result is shared; the generation token
// is a plain value.
func GoodGenToken(cache *core.RankCache, epoch uint64, key core.RankKey) uint64 {
	entry, ok, gen := cache.Lookup(epoch, key)
	_ = entry
	_ = ok
	gen++
	return gen
}

// GoodRebind: a name that held a view may be rebound to fresh storage and
// mutated freely afterwards.
func GoodRebind(e *core.RankEntry) []core.Candidate {
	view := e.Ranked()
	view = core.CloneCandidates(view)
	view[0].Hops = 99
	return view
}

// GoodEntrySlicePointer: storing shared entry pointers into a local slice
// replaces local elements; it is not a store through shared storage.
func GoodEntrySlicePointer(cache *core.RankCache, epoch uint64, keys []core.RankKey) []*core.RankEntry {
	entries := make([]*core.RankEntry, len(keys))
	for i, k := range keys {
		if e, ok, _ := cache.Lookup(epoch, k); ok {
			entries[i] = e
		}
	}
	return entries
}
