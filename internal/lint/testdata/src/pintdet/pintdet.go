// Package pintdet is the simdeterminism fixture for the probabilistic
// telemetry subsystem: a sampler drawing per-hop insertion decisions from
// the global math/rand stream (or seeding itself off the wall clock) makes
// which hops appear in each probe depend on every other goroutine's draws,
// so the reassembled topology would differ run to run. Sampling randomness
// must come from a named, explicitly seeded stream (simtime.Rand.Stream).
package pintdet

import (
	"math/rand"
	"time"

	"intsched/internal/pint"
	"intsched/internal/simtime"
)

// GlobalSample draws the per-hop decision from the unnamed global stream.
func GlobalSample(rate float64) bool {
	return rand.Float64() < rate // want `call to global math/rand\.Float64 in sim-side package`
}

// WallclockSeed derives the sampler seed from the wall clock, so two runs
// of the same scenario sample different hops.
func WallclockSeed() *pint.Sampler {
	seed := time.Now().UnixNano() // want `call to time\.Now in sim-side package`
	return pint.NewSampler(simtime.NewRand(seed))
}

// NamedStream is the sanctioned idiom: the sampler owns a stream derived
// from the scenario seed under a stable name, independent of every other
// consumer of the parent.
func NamedStream(root *simtime.Rand, device, origin, target string, rate uint16) bool {
	s := pint.NewSampler(root.Stream("pint"))
	return s.Sample(device, origin, target, rate)
}
