// Package rankcache is the rankcachetoken fixture. BadDiscarded reproduces
// the PR 1 review bug: the generation token Lookup returned was discarded
// and the Store fabricated its own, so an Invalidate between Lookup and
// Store could no longer drop the stale entry.
package rankcache

import "intsched/internal/core"

type sched struct {
	cache *core.RankCache
	other *core.RankCache
}

func (s *sched) Good(epoch uint64, key core.RankKey, rank func() []core.Candidate) []core.Candidate {
	entry, ok, gen := s.cache.Lookup(epoch, key)
	if ok {
		return entry.Ranked()
	}
	return s.cache.Store(epoch, gen, key, rank()).Ranked()
}

func (s *sched) GoodCopy(epoch uint64, key core.RankKey) {
	_, _, g := s.cache.Lookup(epoch, key)
	gen := g
	s.cache.Store(epoch, gen, key, nil)
}

// GoodParam is the threaded-token shape: the caller did the Lookup and
// passes the token down.
func (s *sched) GoodParam(epoch, gen uint64, key core.RankKey) {
	s.cache.Store(epoch, gen, key, nil)
}

func (s *sched) BadDiscarded(epoch uint64, key core.RankKey, rank func() []core.Candidate) {
	_, ok, _ := s.cache.Lookup(epoch, key)
	if ok {
		return
	}
	s.cache.Store(epoch, 0, key, rank()) // want `must be the third result of Lookup`
}

func (s *sched) BadFabricated(epoch uint64, key core.RankKey) {
	gen := uint64(1)
	s.cache.Store(epoch, gen, key, nil) // want `fabricated tokens defeat Invalidate`
}

func (s *sched) BadComputed(epoch uint64, key core.RankKey) {
	_, _, gen := s.cache.Lookup(epoch, key)
	s.cache.Store(epoch, gen+1, key, nil) // want `must be the third result of Lookup`
}

func (s *sched) BadCrossCache(epoch uint64, key core.RankKey) {
	_, _, gen := s.other.Lookup(epoch, key)
	s.cache.Store(epoch, gen, key, nil) // want `obtained from a Lookup on a different cache`
}

// miss is the batched-miss shape: the token recorded at Lookup time rides a
// struct field until the whole batch has been computed.
type miss struct {
	key core.RankKey
	gen uint64
}

// GoodField: the composite literal carries the Lookup token, so reading it
// back through the field keeps its provenance.
func (s *sched) GoodField(epoch uint64, key core.RankKey, rank func() []core.Candidate) {
	_, ok, gen := s.cache.Lookup(epoch, key)
	if ok {
		return
	}
	m := miss{key: key, gen: gen}
	s.cache.Store(epoch, m.gen, m.key, rank())
}

// GoodFieldParam: a threaded-in token parameter may ride a field too.
func (s *sched) GoodFieldParam(epoch, gen uint64, key core.RankKey) {
	m := miss{key: key, gen: gen}
	s.cache.Store(epoch, m.gen, m.key, nil)
}

// BadFieldFabricated: the field was filled with a literal, never a token.
func (s *sched) BadFieldFabricated(epoch uint64, key core.RankKey) {
	m := miss{key: key, gen: 1}
	s.cache.Store(epoch, m.gen, key, nil) // want `never populated from a Lookup token`
}

// BadFieldCrossCache: the field carries the other cache's token.
func (s *sched) BadFieldCrossCache(epoch uint64, key core.RankKey) {
	_, _, gen := s.other.Lookup(epoch, key)
	m := miss{key: key, gen: gen}
	s.cache.Store(epoch, m.gen, key, nil) // want `token from a Lookup on a different cache`
}
