// Package rankcache is the rankcachetoken fixture. BadDiscarded reproduces
// the PR 1 review bug: the generation token Lookup returned was discarded
// and the Store fabricated its own, so an Invalidate between Lookup and
// Store could no longer drop the stale entry.
package rankcache

import "intsched/internal/core"

type sched struct {
	cache *core.RankCache
	other *core.RankCache
}

func (s *sched) Good(epoch uint64, key core.RankKey, rank func() []core.Candidate) []core.Candidate {
	ranked, ok, gen := s.cache.Lookup(epoch, key)
	if ok {
		return ranked
	}
	ranked = rank()
	s.cache.Store(epoch, gen, key, ranked)
	return ranked
}

func (s *sched) GoodCopy(epoch uint64, key core.RankKey) {
	_, _, g := s.cache.Lookup(epoch, key)
	gen := g
	s.cache.Store(epoch, gen, key, nil)
}

// GoodParam is the threaded-token shape: the caller did the Lookup and
// passes the token down.
func (s *sched) GoodParam(epoch, gen uint64, key core.RankKey) {
	s.cache.Store(epoch, gen, key, nil)
}

func (s *sched) BadDiscarded(epoch uint64, key core.RankKey, rank func() []core.Candidate) {
	_, ok, _ := s.cache.Lookup(epoch, key)
	if ok {
		return
	}
	s.cache.Store(epoch, 0, key, rank()) // want `must be the third result of Lookup`
}

func (s *sched) BadFabricated(epoch uint64, key core.RankKey) {
	gen := uint64(1)
	s.cache.Store(epoch, gen, key, nil) // want `fabricated tokens defeat Invalidate`
}

func (s *sched) BadComputed(epoch uint64, key core.RankKey) {
	_, _, gen := s.cache.Lookup(epoch, key)
	s.cache.Store(epoch, gen+1, key, nil) // want `must be the third result of Lookup`
}

func (s *sched) BadCrossCache(epoch uint64, key core.RankKey) {
	_, _, gen := s.other.Lookup(epoch, key)
	s.cache.Store(epoch, gen, key, nil) // want `obtained from a Lookup on a different cache`
}
