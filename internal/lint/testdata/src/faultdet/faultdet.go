// Package faultdet is the simdeterminism fixture for the fault-injection
// subsystem: a fault timeline must be replayable byte-for-byte per seed, so
// event application may not read the wall clock, draw probe-loss decisions
// from the global math/rand stream, or report applied events in map order.
package faultdet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Event is a stand-in for a scripted failure.
type Event struct {
	At   time.Duration
	Node string
}

func ScheduleOnWallClock(ev Event) time.Duration {
	start := time.Now()              // want `call to time\.Now in sim-side package`
	deadline := time.Until(start)    // want `call to time\.Until in sim-side package`
	time.AfterFunc(ev.At, func() {}) // want `call to time\.AfterFunc in sim-side package`
	return deadline + ev.At + time.Second
}

func VirtualDeadline(now time.Duration, ev Event) time.Duration {
	return now + ev.At // Duration arithmetic on the virtual clock is fine
}

func GlobalProbeLoss(rate float64) bool {
	return rand.Float64() < rate // want `call to global math/rand\.Float64 in sim-side package`
}

func SeededProbeLoss(seed int64, rate float64) bool {
	r := rand.New(rand.NewSource(seed)) // explicit source: fine
	return r.Float64() < rate
}

func ReportApplied(applied map[string]Event) {
	for node := range applied {
		fmt.Println("fault applied at", node) // want `fmt\.Println inside a range over a map`
	}
}

func ReportAppliedSorted(applied map[string]Event) {
	nodes := make([]string, 0, len(applied))
	for node := range applied {
		nodes = append(nodes, node) // collecting keys is fine
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		fmt.Println("fault applied at", node) // slice range: deterministic
	}
}
