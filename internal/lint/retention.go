package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared escape/retention engine behind transientpacket
// and scratchalias. Both analyzers answer the same shape of question — "may
// this value, which the current function does not own beyond the current
// call, be retained past return?" — and differ only in what counts as
// tainted and which stores are sanctioned.
//
// The analysis is intraprocedural with same-package transitive propagation:
// when a tainted value is passed to a function or method declared in the
// package under analysis, that callee is analyzed with the corresponding
// parameter tainted. Calls that cross the package boundary are trusted —
// the convention, documented on MarkTransient and UnmarshalProbeInto, is
// that a synchronous callee copies anything it keeps. The engine is a
// deliberate approximation: it trades completeness at package boundaries
// for zero false positives on the ownership idioms the codebase actually
// uses (scratch store-back, in-place mutation, copy-then-retain).

// retentionMode selects how taint propagates.
type retentionMode int

const (
	// taintPointer tracks only the tainted pointer value itself: reading a
	// field through it yields an untainted value (copying fields out of a
	// transient packet is the sanctioned pattern, and the Payload/Probe
	// pointees survive recycling).
	taintPointer retentionMode = iota
	// taintAliasing tracks everything reachable: selections, indexing,
	// slicing, and range elements alias the tainted backing arrays (the
	// probe codec's reused Records/Queues scratch).
	taintAliasing
)

// retentionConfig parameterizes one analyzer built on the engine.
type retentionConfig struct {
	mode retentionMode
	// what names the tainted value in diagnostics.
	what string
	// allowParamFieldStores permits stores into fields of (non-receiver)
	// parameters: caller-provided transient state that the caller consumes
	// before the scratch is reused.
	allowParamFieldStores bool
}

// funcParam identifies one (function, tainted parameter) work item.
type funcParam struct {
	fn    *types.Func
	param *types.Var
}

// retentionChecker runs the engine over one package.
type retentionChecker struct {
	pass *Pass
	cfg  retentionConfig

	decls    map[*types.Func]*ast.FuncDecl
	visited  map[funcParam]bool
	queue    []funcParam
	reported map[token.Pos]bool
}

func newRetentionChecker(pass *Pass, cfg retentionConfig) *retentionChecker {
	c := &retentionChecker{
		pass:     pass,
		cfg:      cfg,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		visited:  make(map[funcParam]bool),
		reported: make(map[token.Pos]bool),
	}
	for _, file := range pass.nonTestFiles() {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	return c
}

func (c *retentionChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// enqueue schedules a same-package callee for analysis with param tainted.
func (c *retentionChecker) enqueue(fn *types.Func, param *types.Var) {
	if fn == nil || param == nil || c.decls[fn] == nil {
		return
	}
	key := funcParam{fn, param}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	c.queue = append(c.queue, key)
}

// drain processes transitively discovered work items.
func (c *retentionChecker) drain() {
	for len(c.queue) > 0 {
		item := c.queue[0]
		c.queue = c.queue[1:]
		decl := c.decls[item.fn]
		c.analyzeFunc(decl.Type, decl.Recv, decl.Body, map[string]bool{objPath(item.param): true})
	}
}

// objPath renders the taint-path key of a bare object; it must agree with
// exprPath's rendering of a bare identifier.
func objPath(obj types.Object) string { return fmt.Sprintf("%p", obj) }

// analyzeFunc analyzes one function body (declared func/method or literal)
// with the given seed taint paths. ftype/recv provide the parameter and
// receiver lists.
func (c *retentionChecker) analyzeFunc(ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt, seeds map[string]bool) {
	st := &taintState{
		c:       c,
		tainted: make(map[string]bool),
		params:  make(map[types.Object]bool),
	}
	for p := range seeds {
		st.tainted[p] = true
	}
	if recv != nil && len(recv.List) > 0 && len(recv.List[0].Names) > 0 {
		st.recv = c.pass.TypesInfo.Defs[recv.List[0].Names[0]]
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					st.params[obj] = true
				}
			}
		}
	}
	st.walk(body)
}

// taintState is the per-entry flow state.
type taintState struct {
	c *retentionChecker
	// tainted is a set of exprPath strings. In aliasing mode a path is
	// tainted when it extends a tainted path (derived view of scratch) or
	// is extended by one (container holding an aliased part); in pointer
	// mode only exact matches count.
	tainted map[string]bool
	params  map[types.Object]bool
	recv    types.Object
}

func (st *taintState) pathTainted(path string) bool {
	if path == "" {
		return false
	}
	if st.tainted[path] {
		return true
	}
	if st.c.cfg.mode == taintPointer {
		return false
	}
	for t := range st.tainted {
		if strings.HasPrefix(path, t+".") || strings.HasPrefix(t, path+".") {
			return true
		}
	}
	return false
}

// taintedExpr reports whether e evaluates to (or contains) a tainted value.
func (st *taintState) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	info := st.c.pass.TypesInfo
	if path := exprPath(info, e); path != "" {
		// In pointer mode a selection through the pointer copies data out
		// and is clean; only the bare pointer chain itself is hot.
		if st.c.cfg.mode == taintPointer {
			if _, isIdent := ast.Unparen(e).(*ast.Ident); isIdent {
				return st.pathTainted(path)
			}
			return false
		}
		return st.pathTainted(path)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return st.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return st.taintedExpr(e.X)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if st.taintedExpr(elt) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return st.taintedExpr(e.Value)
	case *ast.CallExpr:
		// Conversions and append propagate their operands; other call
		// results are fresh values owned by the caller.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && st.taintedExpr(e.Args[0])
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				for _, a := range e.Args {
					if st.taintedExpr(a) {
						return true
					}
				}
			}
		}
	case *ast.SliceExpr:
		return st.taintedExpr(e.X)
	case *ast.IndexExpr:
		if st.c.cfg.mode == taintAliasing {
			return st.taintedExpr(e.X)
		}
	case *ast.StarExpr:
		if st.c.cfg.mode == taintAliasing {
			return st.taintedExpr(e.X)
		}
	}
	return false
}

// markTainted taints the path of e (used for LHS of sanctioned stores and
// newly bound locals).
func (st *taintState) markTainted(e ast.Expr) {
	if path := exprPath(st.c.pass.TypesInfo, e); path != "" {
		st.tainted[path] = true
	}
}

// walk traverses a statement tree, tracking taint and reporting escapes.
func (st *taintState) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.handleAssign(n)
		case *ast.RangeStmt:
			if st.c.cfg.mode == taintAliasing && st.taintedExpr(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					st.markTainted(id)
				}
			}
		case *ast.SendStmt:
			if st.taintedExpr(n.Value) {
				st.c.reportf(n.Value.Pos(), "%s sent on a channel: the receiver outlives this call; send a copy instead", st.c.cfg.what)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if st.taintedExpr(res) {
					st.c.reportf(res.Pos(), "%s returned to the caller: it escapes the scope that owns it; return a copy instead", st.c.cfg.what)
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if st.taintedExpr(arg) {
					st.c.reportf(arg.Pos(), "%s passed to a goroutine: it outlives this call; pass a copy instead", st.c.cfg.what)
				}
			}
		case *ast.CallExpr:
			st.handleCall(n)
		case *ast.FuncLit:
			st.checkCapture(n)
			return false // captures are the closure hazard; don't double-walk
		}
		return true
	})
}

// handleAssign classifies every (lhs, rhs) store of a tainted value.
func (st *taintState) handleAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		return // tuple from a call: results are fresh values
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		rhs := n.Rhs[i]
		if !st.taintedExpr(rhs) {
			continue
		}
		st.checkStore(lhs, rhs)
	}
}

// checkStore enforces the retention rules for one store lhs = rhs where rhs
// is tainted.
func (st *taintState) checkStore(lhs, rhs ast.Expr) {
	info := st.c.pass.TypesInfo
	what := st.c.cfg.what
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if isPackageLevel(obj) {
			st.c.reportf(lhs.Pos(), "%s stored in package-level variable %s: it outlives the call that owns it; store a copy instead", what, id.Name)
			return
		}
		st.markTainted(id) // local alias: legal, tracked
		return
	}
	lhsPath := exprPath(info, lhs)
	if st.c.cfg.mode == taintAliasing && st.pathTainted(lhsPath) {
		return // in-place mutation of the scratch itself (rec.Queues = queues)
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	robj := info.ObjectOf(root)
	switch {
	case robj == nil:
	case isPackageLevel(robj):
		st.c.reportf(lhs.Pos(), "%s stored in package-level state %s: it outlives the call that owns it; store a copy instead", what, root.Name)
	case robj == st.recv:
		st.c.reportf(lhs.Pos(), "%s stored in receiver field %s: the receiver outlives this call; store a copy instead", what, renderLHS(lhs))
	case st.params[robj]:
		if !st.c.cfg.allowParamFieldStores {
			st.c.reportf(lhs.Pos(), "%s stored in %s, reachable from a parameter that outlives this call; store a copy instead", what, renderLHS(lhs))
		} else if lhsPath != "" {
			st.tainted[lhsPath] = true
		}
	default:
		// Local container. In aliasing mode the container inherits the
		// taint (returning or re-storing it is caught later); in pointer
		// mode any field/element store of the raw pointer is retention.
		if st.c.cfg.mode == taintPointer {
			st.c.reportf(lhs.Pos(), "%s stored in %s: struct fields, maps, and slices retain the pointer past return; store a copy instead", what, renderLHS(lhs))
		} else if lhsPath != "" {
			st.tainted[lhsPath] = true
		}
	}
}

// handleCall propagates taint into same-package callees and trusts calls
// across the package boundary (callee-copies convention).
func (st *taintState) handleCall(call *ast.CallExpr) {
	info := st.c.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fn := st.c.pass.funcObj(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != st.c.pass.Pkg {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sig.Recv() != nil {
		if st.taintedExpr(sel.X) {
			st.c.enqueue(fn, sig.Recv())
		}
	}
	for i, arg := range call.Args {
		if !st.taintedExpr(arg) {
			continue
		}
		idx := i
		if sig.Variadic() && idx >= sig.Params().Len() {
			idx = sig.Params().Len() - 1
		}
		if idx >= 0 && idx < sig.Params().Len() {
			st.c.enqueue(fn, sig.Params().At(idx))
		}
	}
}

// checkCapture reports tainted values captured by a function literal: the
// closure may run after the owner reclaims the value (timers, handlers).
func (st *taintState) checkCapture(lit *ast.FuncLit) {
	info := st.c.pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if st.pathTainted(objPath(obj)) {
			st.c.reportf(id.Pos(), "%s captured by a closure: the closure may run after the value is reclaimed; capture a copy instead", st.c.cfg.what)
		}
		return true
	})
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// renderLHS prints a store target for diagnostics.
func renderLHS(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderLHS(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return renderLHS(e.X) + "[...]"
	case *ast.SliceExpr:
		return renderLHS(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + renderLHS(e.X)
	case *ast.ParenExpr:
		return renderLHS(e.X)
	}
	return "this location"
}
