package lint_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"intsched/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files")

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// TestJSONGolden locks down the machine-readable output shape: the
// shardlock fixture's findings, rendered exactly as intlint -json renders
// them (module-root-relative paths, related positions, stable order).
// Regenerate with: go test ./internal/lint/ -run TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	root := moduleRoot(t)
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	lp, err := l.LoadDir(filepath.Join(root, "internal/lint/testdata/src/shardlock"), "fixture/shardlock")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	findings, err := lint.RunAnalyzers(l.Fset, lp.Files, lp.Pkg, lp.Info, []*lint.Analyzer{lint.ShardLockAnalyzer})
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	diags := lint.FindingsToJSON(l.Fset, root, findings)
	lint.SortDiagnostics(diags)
	rep := lint.JSONReport{Module: "fixture", Diagnostics: diags}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join(root, "internal/lint/testdata/shardlock.json.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func cloneDiags(diags []lint.JSONDiagnostic) []lint.JSONDiagnostic {
	out := make([]lint.JSONDiagnostic, len(diags))
	copy(out, diags)
	return out
}

// TestBaselineRoundTrip exercises the ratchet: recording findings
// suppresses exactly those findings, a new finding stays fresh, and fixing
// a recorded finding re-fires as a stale entry until the baseline shrinks.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []lint.JSONDiagnostic{
		{Analyzer: "shardlock", File: "internal/collector/ingest.go", Line: 40, Col: 3,
			Message: "second shard.mu acquired while one is held, without an ordering proof"},
		{Analyzer: "shardlock", File: "internal/collector/ingest.go", Line: 88, Col: 3,
			Message: "second shard.mu acquired while one is held, without an ordering proof"},
		{Analyzer: "indexspace", File: "internal/core/rankidx.go", Line: 120, Col: 9,
			Message: "indexing metric-slot-indexed storage with a node-index value"},
	}

	// Record, write, reload: the same findings are fully suppressed.
	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	if err := lint.WriteBaseline(path, lint.BaselineFromDiagnostics(diags)); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	bl, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("load baseline: %v", err)
	}
	same := cloneDiags(diags)
	fresh, stale := bl.Apply(same)
	if fresh != 0 || len(stale) != 0 {
		t.Fatalf("identical findings: fresh=%d stale=%d, want 0/0", fresh, len(stale))
	}
	for i, d := range same {
		if !d.Baselined {
			t.Errorf("diagnostic %d not marked baselined", i)
		}
	}

	// A new finding is fresh — the baseline only covers what it recorded.
	// Same file+analyzer, different message: the key includes the message.
	withNew := append(cloneDiags(diags), lint.JSONDiagnostic{
		Analyzer: "shardlock", File: "internal/collector/ingest.go", Line: 91, Col: 3,
		Message: "shard.streamMu acquired while holding shard.mu"})
	fresh, stale = bl.Apply(withNew)
	if fresh != 1 || len(stale) != 0 {
		t.Fatalf("new finding: fresh=%d stale=%d, want 1/0", fresh, len(stale))
	}
	if withNew[len(withNew)-1].Baselined {
		t.Error("new finding wrongly marked baselined")
	}

	// Line moves don't invalidate the match: the key is (analyzer, file,
	// message) with a count, not positions.
	moved := cloneDiags(diags)
	moved[0].Line += 7
	if fresh, stale = bl.Apply(moved); fresh != 0 || len(stale) != 0 {
		t.Fatalf("moved finding: fresh=%d stale=%d, want 0/0", fresh, len(stale))
	}

	// Fixing a finding makes its entry stale: the run fails until the
	// baseline is regenerated without it.
	fixedOne := cloneDiags(diags[:2])
	fresh, stale = bl.Apply(fixedOne)
	if fresh != 0 || len(stale) != 1 {
		t.Fatalf("fixed finding: fresh=%d stale=%d, want 0/1", fresh, len(stale))
	}
	if stale[0].Analyzer != "indexspace" {
		t.Errorf("stale entry analyzer = %q, want indexspace", stale[0].Analyzer)
	}
	// One of a doubled finding fixed: the shared entry's leftover count
	// surfaces as stale too.
	fresh, stale = bl.Apply(cloneDiags(diags[1:]))
	if fresh != 0 || len(stale) != 1 {
		t.Fatalf("half-fixed doubled finding: fresh=%d stale=%d, want 0/1", fresh, len(stale))
	}
	if stale[0].Count != 1 {
		t.Errorf("stale leftover count = %d, want 1", stale[0].Count)
	}

	// Regenerating the baseline from the reduced findings clears the ratchet.
	bl2 := lint.BaselineFromDiagnostics(fixedOne)
	if fresh, stale = bl2.Apply(cloneDiags(fixedOne)); fresh != 0 || len(stale) != 0 {
		t.Fatalf("regenerated baseline: fresh=%d stale=%d, want 0/0", fresh, len(stale))
	}
}
