// Package lint implements intlint, the repo-specific static-analysis suite
// that mechanically enforces the contracts the scheduler's correctness and
// reproducibility depend on: seed-determinism of the simulation packages,
// the transient-packet relinquish rule, the RankCache generation-token
// protocol, the obs metric naming scheme shared between sim and daemon, and
// the probe-codec scratch-aliasing rules.
//
// The package is a small, dependency-free re-implementation of the parts of
// golang.org/x/tools/go/analysis that the suite needs (the container that
// builds this repo is offline, so the x/tools module is not available). The
// Analyzer/Pass/Diagnostic surface is API-compatible with go/analysis for
// the subset used here, so the analyzers port to the upstream framework
// unchanged if the dependency ever becomes available.
//
// The suite runs three ways:
//
//   - go vet -vettool=$(which intlint) ./...   (cmd/intlint speaks go vet's
//     unitchecker protocol: -flags, -V=full, and per-package vet.cfg units)
//   - intlint ./...                            (delegates to go vet)
//   - intlint -source [dir]                    (pure source-load mode, no
//     go tool required; used offline and by the analysistest harness)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis: its name, documentation, and entry
// point. It mirrors golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description shown by intlint -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass provides one analyzer run with a single type-checked package and a
// sink for diagnostics. It mirrors go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Related points at secondary positions that explain the finding (the
	// first lock of an unordered pair, the seed of a taint chain, the
	// defining site of a unit). It mirrors go/analysis.RelatedInformation.
	Related []RelatedInfo
}

// RelatedInfo is one secondary position attached to a diagnostic.
type RelatedInfo struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full intlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminismAnalyzer,
		TransientPacketAnalyzer,
		RankCacheTokenAnalyzer,
		ObsNamingAnalyzer,
		ScratchAliasAnalyzer,
		ShardLockAnalyzer,
		SnapshotImmutableAnalyzer,
		IndexSpaceAnalyzer,
	}
}

// inTestFile reports whether pos is inside a _test.go file. The analyzers
// skip test files by design: tests deliberately alias recycled packets to
// assert identity reuse, register throwaway metric series, and measure wall
// time; the contracts the suite enforces are about production sim/daemon
// code.
func (p *Pass) inTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// nonTestFiles returns the pass's files excluding _test.go files.
func (p *Pass) nonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.inTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// funcObj resolves the called function/method object of a call expression,
// or nil for calls through function values and type conversions.
func (p *Pass) funcObj(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isMethodOf reports whether fn is a method named name whose receiver's
// (pointer-stripped) named type is pkgPath.typeName.
func isMethodOf(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == typeName &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkgPath
}

// namedOf strips pointers and aliases and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// rootIdent returns the base identifier of a selector/index/slice/paren/
// star/address chain (x in x.a.b[i][:n]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			e = v.X
		default:
			return nil
		}
	}
}

// exprPath renders a stable identity for an lvalue chain rooted at an
// identifier: the root's object pointer plus the field path, ignoring
// indexing and slicing (p.encScratch[:0] and p.encScratch share a path).
// The empty string means the expression is not a simple rooted chain.
func exprPath(info *types.Info, e ast.Expr) string {
	var fields []string
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(v)
			if obj == nil {
				return ""
			}
			return fmt.Sprintf("%p%s", obj, strings.Join(fields, ""))
		case *ast.SelectorExpr:
			fields = append([]string{"." + v.Sel.Name}, fields...)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return ""
			}
			e = v.X
		default:
			return ""
		}
	}
}
