package lint

import (
	"go/ast"
)

// scratchAliasExemptPackages are skipped by scratchalias: telemetry
// implements the codec, and collector implements PathInto (whose wrappers
// legitimately return the re-homed scratch), so returning and growing their
// own scratch is their job, not a leak.
var scratchAliasExemptPackages = map[string]bool{
	"intsched/internal/telemetry": true,
	"intsched/internal/collector": true,
}

// ScratchAliasAnalyzer enforces the probe-codec scratch-reuse contract.
var ScratchAliasAnalyzer = &Analyzer{
	Name: "scratchalias",
	Doc: `forbid letting reusable scratch escape its reuse loop

telemetry.UnmarshalProbeInto decodes into a reusable payload whose Records
and Queues slices are recycled on the next decode, telemetry.AppendProbe
returns (a regrowth of) the caller's scratch buffer, and
collector.Topology.PathInto walks a path into (a regrowth of) caller-owned
scratch that the next walk overwrites. Everything reachable from the decode
target, the encoder's returned buffer, and the returned path aliases that
scratch: in the function performing the call (and same-package functions it
forwards the scratch to) those values must not be stored into receiver
fields, package variables, maps, or channels, must not be captured by
closures or goroutines, and must not be returned. Sanctioned idioms stay
legal: in-place mutation of the payload, growing the scratch back into the
place it came from (p.encScratch = encoded; s.path = p), handing the value
to a synchronous callee (which copies what it keeps, as the collector
does), and filling caller-provided transient state such as a frame being
marshalled before the next reuse.`,
	Run: runScratchAlias,
}

func runScratchAlias(pass *Pass) (any, error) {
	if scratchAliasExemptPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	checker := newRetentionChecker(pass, retentionConfig{
		mode:                  taintAliasing,
		what:                  "probe-codec scratch",
		allowParamFieldStores: true,
	})
	for _, decl := range checker.decls {
		seeds := scratchSeeds(pass, decl.Body)
		if len(seeds) == 0 {
			continue
		}
		checker.analyzeFunc(decl.Type, decl.Recv, decl.Body, seeds)
	}
	checker.drain()
	return nil, nil
}

// scratchSeeds collects the taint roots of one function body: the decode
// targets of UnmarshalProbeInto calls, both the result and the dst buffer
// of AppendProbe calls, and both the returned path and the scratch argument
// of Topology.PathInto calls (seeding the input buffer legalizes the
// store-back idiom: a store into an already-tainted path is in-place
// scratch maintenance).
func scratchSeeds(pass *Pass, body *ast.BlockStmt) map[string]bool {
	seeds := make(map[string]bool)
	seed := func(e ast.Expr) {
		if path := exprPath(pass.TypesInfo, e); path != "" {
			seeds[path] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := pass.funcObj(n)
			switch {
			case isPkgFunc(fn, "intsched/internal/telemetry", "UnmarshalProbeInto"):
				if len(n.Args) > 0 {
					seed(n.Args[0])
				}
			case isPkgFunc(fn, "intsched/internal/telemetry", "AppendProbe"):
				if len(n.Args) > 0 {
					seed(n.Args[0])
				}
			case isMethodOf(fn, "intsched/internal/collector", "Topology", "PathInto"):
				if len(n.Args) > 2 {
					seed(n.Args[2])
				}
			}
		case *ast.AssignStmt:
			// Bind the returned buffer/path to its destination.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					fn := pass.funcObj(call)
					if isPkgFunc(fn, "intsched/internal/telemetry", "AppendProbe") ||
						isMethodOf(fn, "intsched/internal/collector", "Topology", "PathInto") {
						seed(n.Lhs[0])
					}
				}
			}
		}
		return true
	})
	if len(seeds) == 0 {
		return nil
	}
	return seeds
}
