package lint

import (
	"go/ast"
	"go/types"
)

// transientPacketExemptPackages are skipped by transientpacket: netsim owns
// the packet free list (its queues and recycling machinery hold packets by
// design), so the relinquish contract binds its clients, not the owner.
var transientPacketExemptPackages = map[string]bool{
	"intsched/internal/netsim": true,
}

// TransientPacketAnalyzer enforces the MarkTransient relinquish contract on
// packet handlers.
var TransientPacketAnalyzer = &Analyzer{
	Name: "transientpacket",
	Doc: `forbid retaining a delivered packet past handler return

netsim recycles transient packets (MarkTransient) through a free list the
moment they are delivered or dropped, so any handler may receive a packet
whose backing object is reused by the very next NewPacket call. Handlers —
every function or method with the netsim handler shape func(*netsim.Packet),
plus everything they forward the packet to inside the same package — must
not retain the pointer past return: no stores into struct fields, package
variables, maps, slices, or channels, no capture by closures, no handing it
to goroutines, no returning it. Field reads (pkt.Seq, pkt.Payload,
pkt.Probe) are fine: recycling only reuses the Packet struct itself, and
the sanctioned way to keep a whole packet is an explicit copy or a fresh
NewPacket. Calls that leave the package are trusted to follow the same
documented convention.`,
	Run: runTransientPacket,
}

func runTransientPacket(pass *Pass) (any, error) {
	if transientPacketExemptPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	checker := newRetentionChecker(pass, retentionConfig{
		mode: taintPointer,
		what: "transient packet",
	})
	// Entries: every declared function or method with the handler shape.
	for fn, decl := range checker.decls {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !isPacketHandlerSig(sig) {
			continue
		}
		param := sig.Params().At(0)
		checker.analyzeFunc(decl.Type, decl.Recv, decl.Body, map[string]bool{objPath(param): true})
	}
	// Entries: handler-shaped function literals (closures registered as
	// ProbeHandler/DatagramHandler/INTSink or netsim.Handler).
	for _, file := range pass.nonTestFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature)
			if !ok || !isPacketHandlerSig(sig) {
				return true
			}
			if len(lit.Type.Params.List) == 1 && len(lit.Type.Params.List[0].Names) == 1 {
				param := pass.TypesInfo.Defs[lit.Type.Params.List[0].Names[0]]
				if param != nil {
					checker.analyzeFunc(lit.Type, nil, lit.Body, map[string]bool{objPath(param): true})
				}
			}
			return true
		})
	}
	checker.drain()
	return nil, nil
}

// isPacketHandlerSig reports whether sig is func(*netsim.Packet) — the
// netsim.Handler shape shared by Stack.ProbeHandler, DatagramHandler, and
// INTSink.
func isPacketHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	named := namedOf(sig.Params().At(0).Type())
	return named != nil && named.Obj().Name() == "Packet" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "intsched/internal/netsim"
}
