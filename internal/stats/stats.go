// Package stats provides the summary statistics used by the experiment
// harness: means, percentiles, empirical CDFs, and the per-task performance
// gain computation behind the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanDuration returns the mean of durations (0 for empty input).
func MeanDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0–100) using linear interpolation
// between closest ranks. It panics for p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Gain returns the relative improvement of measured over baseline:
// (baseline − measured) / baseline. Positive means measured is better
// (smaller). Zero baseline yields zero.
func Gain(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - measured) / baseline
}

// GainDuration is Gain over durations.
func GainDuration(baseline, measured time.Duration) float64 {
	return Gain(float64(baseline), float64(measured))
}

// ECDFPoint is one point of an empirical CDF: fraction of samples ≤ Value.
type ECDFPoint struct {
	Value    float64
	Fraction float64
}

// ECDF computes the empirical cumulative distribution function of xs,
// returning one point per distinct value.
func ECDF(xs []float64) []ECDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var out []ECDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		out = append(out, ECDFPoint{Value: s[i], Fraction: float64(j) / n})
		i = j
	}
	return out
}

// FractionAtMost returns the fraction of samples ≤ v.
func FractionAtMost(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtLeast returns the fraction of samples ≥ v.
func FractionAtLeast(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Table renders a simple aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
