package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty not 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("stddev of single not 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.0) > 1e-9 {
		t.Errorf("stddev %v, want 2", got)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("empty not 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("mean %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {12.5, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("singleton percentile")
	}
	if Median(xs) != 3 {
		t.Error("median")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestGain(t *testing.T) {
	if Gain(10, 7) != 0.3 {
		t.Errorf("gain %v", Gain(10, 7))
	}
	if Gain(10, 13) != -0.3 {
		t.Errorf("negative gain %v", Gain(10, 13))
	}
	if Gain(0, 5) != 0 {
		t.Error("zero baseline")
	}
	if GainDuration(10*time.Second, 5*time.Second) != 0.5 {
		t.Error("duration gain")
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{3, 1, 2, 2})
	if len(pts) != 3 {
		t.Fatalf("points %v", pts)
	}
	want := []ECDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	for i, w := range want {
		if pts[i] != w {
			t.Fatalf("pts[%d]=%v, want %v", i, pts[i], w)
		}
	}
	if ECDF(nil) != nil {
		t.Error("empty ECDF not nil")
	}
}

func TestECDFProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		pts := ECDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		// Fractions strictly increasing, ending at 1; values sorted.
		prev := 0.0
		for i, p := range pts {
			if p.Fraction <= prev {
				return false
			}
			if i > 0 && pts[i-1].Value >= p.Value {
				return false
			}
			prev = p.Fraction
		}
		if math.Abs(pts[len(pts)-1].Fraction-1) > 1e-12 {
			return false
		}
		// Fraction at each point equals the true CDF.
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		for _, p := range pts {
			if FractionAtMost(xs, p.Value) != p.Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{-0.1, 0, 0.2, 0.5, 0.9}
	if FractionAtMost(xs, 0) != 0.4 {
		t.Errorf("atMost %v", FractionAtMost(xs, 0))
	}
	if FractionAtLeast(xs, 0.2) != 0.6 {
		t.Errorf("atLeast %v", FractionAtLeast(xs, 0.2))
	}
	if FractionAtMost(nil, 1) != 0 || FractionAtLeast(nil, 1) != 0 {
		t.Error("empty fractions")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value", "time")
	tb.AddRow("alpha", 3.14159, 1500*time.Millisecond)
	tb.AddRow("b", 2, time.Second)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "1.500s") {
		t.Fatalf("duration formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator equal width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}
