package traffic

import (
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/transport"
)

func buildNet(t *testing.T) (*transport.Domain, *simtime.Engine, []netsim.NodeID) {
	t.Helper()
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddSwitch("s1")
	hosts := []netsim.NodeID{"n1", "n2", "n3", "n4"}
	for _, h := range hosts {
		n.AddHost(h)
		if _, err := n.Connect(h, "s1", netsim.LinkConfig{RateBps: 100_000_000, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return transport.NewDomain(n).InstallAll(), e, hosts
}

func TestRandomBackgroundKeepsFlowsRunning(t *testing.T) {
	d, e, hosts := buildNet(t)
	rng := simtime.NewRand(1)
	bg := StartRandom(d, hosts, rng, Config{RateBps: 5_000_000})
	e.Run(5 * time.Minute)
	bg.Stop()
	// Slot 0 cycles continuously: ≥ 5min/60s = 5 flows; slot 1 adds more.
	if bg.FlowsStarted < 6 {
		t.Fatalf("only %d flows started in 5 minutes", bg.FlowsStarted)
	}
	if d.Network().Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
}

func TestRandomBackgroundDeterministic(t *testing.T) {
	run := func() (int, uint64) {
		d, e, hosts := buildNet(t)
		bg := StartRandom(d, hosts, simtime.NewRand(7), Config{RateBps: 5_000_000})
		e.Run(3 * time.Minute)
		bg.Stop()
		return bg.FlowsStarted, d.Network().Delivered
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", f1, d1, f2, d2)
	}
}

func TestBackgroundStopHaltsTraffic(t *testing.T) {
	d, e, hosts := buildNet(t)
	bg := StartRandom(d, hosts, simtime.NewRand(2), Config{RateBps: 5_000_000})
	e.Run(10 * time.Second)
	bg.Stop()
	delivered := d.Network().Delivered
	e.Run(e.Now() + time.Minute)
	// In-flight packets may still land, but no meaningful new traffic.
	if d.Network().Delivered > delivered+100 {
		t.Fatalf("traffic continued after Stop: %d -> %d", delivered, d.Network().Delivered)
	}
}

func TestPatternTraffic1Shape(t *testing.T) {
	cfg := Traffic1()
	if cfg.Flows != 3 || cfg.On != 30*time.Second || cfg.Off != 30*time.Second || cfg.Stagger != 10*time.Second {
		t.Fatalf("Traffic1 = %+v", cfg)
	}
	cfg2 := Traffic2()
	if cfg2.Flows != 3 || cfg2.On != 5*time.Second || cfg2.Off != 5*time.Second {
		t.Fatalf("Traffic2 = %+v", cfg2)
	}
}

func TestPatternCyclesOnOff(t *testing.T) {
	d, e, hosts := buildNet(t)
	pat := PatternConfig{Flows: 1, On: 5 * time.Second, Off: 5 * time.Second,
		Traffic: Config{RateBps: 5_000_000}}
	bg := StartPattern(d, hosts, simtime.NewRand(3), pat)
	e.Run(60 * time.Second)
	bg.Stop()
	// 60s of 5on/5off cycles ≈ 6 flows.
	if bg.FlowsStarted < 5 || bg.FlowsStarted > 7 {
		t.Fatalf("flows started %d, want ≈6", bg.FlowsStarted)
	}
	// Duty cycle ≈ 50%: delivered bytes ≈ rate × 30s.
	gotBits := float64(d.Stack("n1").DatagramBytes+d.Stack("n2").DatagramBytes+
		d.Stack("n3").DatagramBytes+d.Stack("n4").DatagramBytes) * 8
	wantBits := 5_000_000.0 * 30
	if gotBits < wantBits*0.7 || gotBits > wantBits*1.3 {
		t.Fatalf("delivered %.1f Mbit, want ≈%.1f", gotBits/1e6, wantBits/1e6)
	}
}

func TestPatternStagger(t *testing.T) {
	d, e, hosts := buildNet(t)
	pat := PatternConfig{Flows: 3, On: 30 * time.Second, Off: 30 * time.Second,
		Stagger: 10 * time.Second, Traffic: Config{RateBps: 1_000_000}}
	bg := StartPattern(d, hosts, simtime.NewRand(4), pat)
	// After 5s only the first flow has started.
	e.Run(5 * time.Second)
	if bg.FlowsStarted != 1 {
		t.Fatalf("at t=5s: %d flows, want 1", bg.FlowsStarted)
	}
	e.Run(25 * time.Second)
	if bg.FlowsStarted != 3 {
		t.Fatalf("at t=25s: %d flows, want 3", bg.FlowsStarted)
	}
	bg.Stop()
}

func TestConfigRateDefault(t *testing.T) {
	if (Config{}).rate() != DefaultRateBps {
		t.Fatal("default rate")
	}
	if (Config{RateBps: 5}).rate() != 5 {
		t.Fatal("explicit rate")
	}
}
