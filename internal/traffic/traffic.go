// Package traffic injects background congestion into the simulated network,
// reproducing the paper's iperf-based scenarios:
//
//   - Random background (main experiments): at any time one or two iperf
//     transfers run between randomly selected nodes for 30 or 60 seconds,
//     congesting different regions of the network over time.
//   - Traffic 1 (Fig 9, infrequent): three transfers cycling 30 s on /
//     30 s off, started 10 s apart.
//   - Traffic 2 (Fig 9, frequent): three transfers cycling 5 s on / 5 s off.
//
// Like the workload generator, traffic schedules are deterministic for a
// given seed and are replayed identically across scheduling algorithms.
package traffic

import (
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
	"intsched/internal/transport"
)

// DefaultRateBps is the default iperf flow rate. The paper's links max out
// at 20 Mbps (the BMv2 ceiling); a 18 Mbps background flow congests its
// path without fully starving it.
const DefaultRateBps = 18_000_000

// Config tunes background traffic generation.
type Config struct {
	// RateBps is the per-flow sending rate (DefaultRateBps when zero).
	RateBps int64
	// DeterministicBursts disables Poisson pacing in favor of fixed
	// back-to-back bursts (mainly for tests).
	DeterministicBursts bool
	// Burst is the burst size when DeterministicBursts is set.
	Burst int
}

func (c Config) rate() int64 {
	if c.RateBps > 0 {
		return c.RateBps
	}
	return DefaultRateBps
}

// Background drives a set of flow slots until stopped.
type Background struct {
	domain *transport.Domain
	nodes  []netsim.NodeID
	rng    *simtime.Rand
	cfg    Config

	stopped bool
	active  []*transport.CBR

	// FlowsStarted counts flows launched over the generator's lifetime.
	FlowsStarted int
}

// StartRandom launches the main experiments' background pattern over the
// given candidate nodes: slot 0 always has a flow running (30 s or 60 s,
// random endpoints); slot 1 alternates between an idle gap of 0–30 s and a
// flow, so one or two flows are active at any time.
func StartRandom(domain *transport.Domain, nodes []netsim.NodeID, rng *simtime.Rand, cfg Config) *Background {
	b := &Background{domain: domain, nodes: nodes, rng: rng.Stream("traffic-random"), cfg: cfg}
	b.runSlot(0, false)
	b.runSlot(1, true)
	return b
}

func (b *Background) runSlot(slot int, withGaps bool) {
	if b.stopped {
		return
	}
	start := func() {
		if b.stopped {
			return
		}
		src, dst := b.randomPair()
		dur := 30 * time.Second
		if b.rng.Intn(2) == 1 {
			dur = 60 * time.Second
		}
		flow := b.launch(src, dst, dur)
		flow.OnStop = func(*transport.CBR) { b.runSlot(slot, withGaps) }
	}
	if withGaps {
		gap := time.Duration(b.rng.Uniform(0, 30)) * time.Second
		b.domain.Network().Engine().After(gap, start)
	} else {
		start()
	}
}

func (b *Background) randomPair() (src, dst netsim.NodeID) {
	pair := simtime.PickN(b.rng, b.nodes, 2)
	return pair[0], pair[1]
}

func (b *Background) launch(src, dst netsim.NodeID, dur time.Duration) *transport.CBR {
	stack := b.domain.Stack(src)
	cfg := transport.CBRConfig{
		RateBps:  b.cfg.rate(),
		Burst:    b.cfg.Burst,
		Duration: dur,
	}
	if !b.cfg.DeterministicBursts {
		cfg.Jitter = b.rng
	}
	flow := stack.StartCBR(dst, cfg)
	b.FlowsStarted++
	b.active = append(b.active, flow)
	return flow
}

// Stop halts all background traffic.
func (b *Background) Stop() {
	b.stopped = true
	for _, f := range b.active {
		if f.Active() {
			f.OnStop = nil
			f.Stop()
		}
	}
	b.active = nil
}

// PatternConfig describes an on/off cycling flow set (Fig 9's Traffic 1 and
// Traffic 2).
type PatternConfig struct {
	// Flows is the number of concurrent cycling flows (the paper uses 3).
	Flows int
	// On and Off are the transfer and sleep durations of each cycle.
	On, Off time.Duration
	// Stagger delays flow i's first cycle by i × Stagger so the degree of
	// background congestion varies over time (the paper staggers Traffic 1
	// by 10 s).
	Stagger time.Duration
	// Traffic tunes the flows themselves.
	Traffic Config
}

// Traffic1 returns the paper's infrequently changing background pattern:
// three 30 s transfers with 30 s sleeps, staggered 10 s apart.
func Traffic1() PatternConfig {
	return PatternConfig{Flows: 3, On: 30 * time.Second, Off: 30 * time.Second, Stagger: 10 * time.Second}
}

// Traffic2 returns the paper's frequently changing background pattern:
// three 5 s transfers with 5 s sleeps, staggered 2 s apart.
func Traffic2() PatternConfig {
	return PatternConfig{Flows: 3, On: 5 * time.Second, Off: 5 * time.Second, Stagger: 2 * time.Second}
}

// StartPattern launches an on/off cycling background pattern. Each cycle
// picks fresh random endpoints, so congestion moves around the network.
func StartPattern(domain *transport.Domain, nodes []netsim.NodeID, rng *simtime.Rand, cfg PatternConfig) *Background {
	b := &Background{domain: domain, nodes: nodes, rng: rng.Stream("traffic-pattern"), cfg: cfg.Traffic}
	engine := domain.Network().Engine()
	for i := 0; i < cfg.Flows; i++ {
		delay := time.Duration(i) * cfg.Stagger
		engine.After(delay, func() { b.runCycle(cfg) })
	}
	return b
}

func (b *Background) runCycle(cfg PatternConfig) {
	if b.stopped {
		return
	}
	src, dst := b.randomPair()
	flow := b.launch(src, dst, cfg.On)
	flow.OnStop = func(*transport.CBR) {
		if b.stopped {
			return
		}
		b.domain.Network().Engine().After(cfg.Off, func() { b.runCycle(cfg) })
	}
}
