package transport

import (
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// Congestion-control constants (Reno-style).
const (
	initialCwnd     = 4.0 // segments (RFC 6928 scaled down for small BDPs)
	initialSsthresh = 64.0
	minCwnd         = 1.0
	dupAckThresh    = 3

	initialRTO = 1 * time.Second
	minRTO     = 200 * time.Millisecond
	maxRTO     = 60 * time.Second
)

// FlowStats summarizes a completed (or failed) transfer.
type FlowStats struct {
	FlowID      uint64
	Src, Dst    netsim.NodeID
	Bytes       int64
	Start, End  time.Duration
	Retransmits int
	Timeouts    int
	SRTT        time.Duration
}

// Duration returns the flow completion time.
func (f FlowStats) Duration() time.Duration { return f.End - f.Start }

// ThroughputBps returns the achieved goodput in bits per second.
func (f FlowStats) ThroughputBps() float64 {
	d := f.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(f.Bytes*8) / d
}

// Flow is the sender-side handle of a reliable transfer.
type Flow struct{ s *tcpSender }

// ID returns the network-unique flow ID.
func (f *Flow) ID() uint64 { return f.s.flowID }

// Done reports whether the transfer has completed.
func (f *Flow) Done() bool { return f.s.done }

// Stats returns the current stats snapshot.
func (f *Flow) Stats() FlowStats { return f.s.stats() }

// Transfer starts a reliable transfer of the given number of bytes from this
// host to dst. onComplete (may be nil) fires once when the final byte is
// acknowledged.
func (s *Stack) Transfer(dst netsim.NodeID, bytes int64, onComplete func(FlowStats)) *Flow {
	if bytes <= 0 {
		bytes = 1
	}
	nseg := (bytes + MSS - 1) / MSS
	snd := &tcpSender{
		stack:      s,
		flowID:     s.domain.allocFlowID(),
		dst:        dst,
		totalBytes: bytes,
		nseg:       nseg,
		cwnd:       initialCwnd,
		ssthresh:   initialSsthresh,
		rto:        initialRTO,
		start:      s.now(),
		onComplete: onComplete,
		sendTimes:  make(map[int64]time.Duration),
	}
	s.senders[snd.flowID] = snd
	snd.pump()
	return &Flow{s: snd}
}

// tcpSender implements a simplified TCP Reno sender operating on whole
// segments: slow start, congestion avoidance, fast retransmit on three
// duplicate ACKs, and an RTO timer with exponential backoff and Karn's
// algorithm for RTT sampling.
type tcpSender struct {
	stack      *Stack
	flowID     uint64
	dst        netsim.NodeID
	totalBytes int64
	nseg       int64

	sndUna int64 // lowest unacknowledged segment
	sndNxt int64 // next segment to send

	cwnd     float64
	ssthresh float64
	dupAcks  int

	srtt, rttvar time.Duration
	hasSRTT      bool
	rto          time.Duration
	rtoTimer     simtime.Timer

	// sendTimes records first-transmission times for RTT sampling; an
	// entry is removed on retransmission (Karn's algorithm).
	sendTimes map[int64]time.Duration

	retransmits int
	timeouts    int
	start       time.Duration
	end         time.Duration
	done        bool
	onComplete  func(FlowStats)
}

func (t *tcpSender) stats() FlowStats {
	return FlowStats{
		FlowID:      t.flowID,
		Src:         t.stack.host.ID,
		Dst:         t.dst,
		Bytes:       t.totalBytes,
		Start:       t.start,
		End:         t.end,
		Retransmits: t.retransmits,
		Timeouts:    t.timeouts,
		SRTT:        t.srtt,
	}
}

// segSize returns the payload size of segment seq.
func (t *tcpSender) segSize(seq int64) int {
	if seq == t.nseg-1 {
		rem := int(t.totalBytes - seq*MSS)
		if rem > 0 && rem < MSS {
			return rem
		}
	}
	return MSS
}

// pump sends as many segments as the window allows.
func (t *tcpSender) pump() {
	if t.done {
		return
	}
	win := int64(t.cwnd)
	if win < 1 {
		win = 1
	}
	for t.sndNxt < t.nseg && t.sndNxt < t.sndUna+win {
		t.sendSegment(t.sndNxt, false)
		t.sndNxt++
	}
	t.armRTO()
}

func (t *tcpSender) sendSegment(seq int64, isRetransmit bool) {
	payload := t.segSize(seq)
	pkt := t.stack.domain.net.NewPacket(netsim.KindData, t.stack.host.ID, t.dst, payload+HeaderSize).MarkTransient()
	pkt.FlowID = t.flowID
	pkt.Seq = seq
	if isRetransmit {
		t.retransmits++
		delete(t.sendTimes, seq) // Karn: never sample retransmitted segments
	} else {
		t.sendTimes[seq] = t.stack.now()
	}
	_ = t.stack.domain.net.Send(pkt)
}

// onAck processes a cumulative acknowledgement: ack is the next segment the
// receiver expects (all segments < ack received).
func (t *tcpSender) onAck(ack int64) {
	if t.done {
		return
	}
	if ack > t.sndUna {
		// New data acknowledged.
		if sent, ok := t.sendTimes[ack-1]; ok {
			t.sampleRTT(t.stack.now() - sent)
		}
		for s := t.sndUna; s < ack; s++ {
			delete(t.sendTimes, s)
		}
		t.sndUna = ack
		t.dupAcks = 0
		t.rto = t.computeRTO() // reset backoff on progress
		if t.cwnd < t.ssthresh {
			t.cwnd++ // slow start: +1 per ACK
		} else {
			t.cwnd += 1 / t.cwnd // congestion avoidance: ~+1 per RTT
		}
		if t.sndUna >= t.nseg {
			t.finish()
			return
		}
		t.pump()
		return
	}
	// Duplicate ACK.
	t.dupAcks++
	if t.dupAcks == dupAckThresh {
		// Fast retransmit + (simplified) fast recovery.
		t.ssthresh = maxf(t.cwnd/2, 2)
		t.cwnd = t.ssthresh
		t.sendSegment(t.sndUna, true)
		t.armRTO()
	}
}

func (t *tcpSender) sampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !t.hasSRTT {
		t.srtt = rtt
		t.rttvar = rtt / 2
		t.hasSRTT = true
	} else {
		// Jacobson/Karels: alpha=1/8, beta=1/4.
		diff := t.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		t.rttvar = (3*t.rttvar + diff) / 4
		t.srtt = (7*t.srtt + rtt) / 8
	}
	t.rto = t.computeRTO()
}

func (t *tcpSender) computeRTO() time.Duration {
	if !t.hasSRTT {
		return initialRTO
	}
	rto := t.srtt + 4*t.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

func (t *tcpSender) armRTO() {
	t.rtoTimer.Cancel()
	if t.done || t.sndUna >= t.nseg {
		return
	}
	t.rtoTimer = t.stack.domain.engine.After(t.rto, t.onTimeout)
}

func (t *tcpSender) onTimeout() {
	if t.done || t.sndUna >= t.nseg {
		return
	}
	t.timeouts++
	t.ssthresh = maxf(t.cwnd/2, 2)
	t.cwnd = minCwnd
	t.dupAcks = 0
	t.rto *= 2
	if t.rto > maxRTO {
		t.rto = maxRTO
	}
	// Go-back-N from the hole.
	t.sndNxt = t.sndUna + 1
	t.sendSegment(t.sndUna, true)
	t.armRTO()
}

func (t *tcpSender) finish() {
	t.done = true
	t.end = t.stack.now()
	t.rtoTimer.Cancel()
	delete(t.stack.senders, t.flowID)
	if t.onComplete != nil {
		t.onComplete(t.stats())
	}
}

// tcpReceiver acknowledges every data segment with a cumulative ACK and
// buffers out-of-order arrivals.
type tcpReceiver struct {
	stack  *Stack
	flowID uint64
	peer   netsim.NodeID

	rcvNxt int64
	// buffered holds out-of-order segments' payload sizes until the
	// in-order head reaches them.
	buffered map[int64]int

	// BytesReceived counts distinct payload bytes received in order.
	BytesReceived int64
}

func newTCPReceiver(s *Stack, flowID uint64, peer netsim.NodeID) *tcpReceiver {
	return &tcpReceiver{stack: s, flowID: flowID, peer: peer, buffered: make(map[int64]int)}
}

func (r *tcpReceiver) onData(pkt *netsim.Packet) {
	seq := pkt.Seq
	if seq == r.rcvNxt {
		r.rcvNxt++
		r.BytesReceived += int64(pkt.Size - HeaderSize)
		for {
			size, ok := r.buffered[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.buffered, r.rcvNxt)
			r.BytesReceived += int64(size)
			r.rcvNxt++
		}
	} else if seq > r.rcvNxt {
		r.buffered[seq] = pkt.Size - HeaderSize
	}
	ack := r.stack.domain.net.NewPacket(netsim.KindAck, r.stack.host.ID, r.peer, AckSize).MarkTransient()
	ack.FlowID = r.flowID
	ack.Seq = r.rcvNxt
	_ = r.stack.domain.net.Send(ack)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
