package transport

import (
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// TestTransferExactlyOnceUnderRandomLoss is the transport's core
// reliability property: under uniform random loss the receiver must obtain
// exactly the transferred byte count — never fewer (reliability), never
// more counted (exactly-once in-order delivery) — across many seeds.
func TestTransferExactlyOnceUnderRandomLoss(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, lossPct := range []int{2, 10} {
			d, e := testNet(t, 20_000_000, 64)
			rng := simtime.NewRand(seed)
			d.Network().SetFaultInjector(func(p *netsim.Packet, at *netsim.Node) bool {
				// Lose data and acks alike, only at the switch.
				if at.ID != "s1" {
					return false
				}
				return rng.Intn(100) < lossPct
			})
			const bytes = 400_000
			completed := false
			var fs FlowStats
			d.Stack("h1").Transfer("h2", bytes, func(s FlowStats) { completed = true; fs = s })
			e.RunUntilIdle()
			if !completed {
				t.Fatalf("seed=%d loss=%d%%: transfer never completed", seed, lossPct)
			}
			var rcv *tcpReceiver
			for _, r := range d.Stack("h2").receivers {
				rcv = r
			}
			if rcv == nil {
				t.Fatalf("seed=%d: no receiver", seed)
			}
			if rcv.BytesReceived != bytes {
				t.Fatalf("seed=%d loss=%d%%: receiver got %d bytes, want %d (retransmits=%d timeouts=%d)",
					seed, lossPct, rcv.BytesReceived, bytes, fs.Retransmits, fs.Timeouts)
			}
		}
	}
}

// TestControlReliabilityUnderLoss: reliable control messages must deliver
// exactly once despite loss of messages and acknowledgements.
func TestControlReliabilityUnderLoss(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	rng := simtime.NewRand(3)
	d.Network().SetFaultInjector(func(p *netsim.Packet, at *netsim.Node) bool {
		if at.ID != "s1" {
			return false
		}
		return rng.Intn(100) < 30 // brutal 30% loss
	})
	type msg struct{ N int }
	var got []int
	d.Stack("h2").ControlHandler = func(_ netsim.NodeID, payload any) {
		got = append(got, payload.(*msg).N)
	}
	const count = 40
	for i := 0; i < count; i++ {
		d.Stack("h1").SendControl("h2", 100, &msg{N: i})
	}
	e.RunUntilIdle()
	if len(got) != count {
		t.Fatalf("delivered %d control messages, want %d", len(got), count)
	}
	seen := map[int]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("duplicate delivery of %d", n)
		}
		seen[n] = true
	}
	if d.Stack("h1").ControlRetransmits == 0 {
		t.Fatal("expected control retransmissions under 30% loss")
	}
}

// TestControlGivesUpAfterMaxRetries: with a fully black-holed path the
// sender must stop retrying eventually (no infinite timers).
func TestControlGivesUpAfterMaxRetries(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	d.Network().SetFaultInjector(func(p *netsim.Packet, at *netsim.Node) bool {
		return at.ID == "s1" && p.Kind == netsim.KindControl
	})
	d.Stack("h1").SendControl("h2", 100, "lost forever")
	e.RunUntilIdle()
	if e.Now() > 60*time.Second {
		t.Fatalf("retry loop ran for %v; should give up after ~%v", e.Now(), ctlMaxRetries*ctlRTO)
	}
	if len(d.Stack("h1").ctlPending) != 0 {
		t.Fatal("pending control state leaked")
	}
}

// TestProbeLossDegradesGracefully: probe packets are unreliable by design;
// losing them must not wedge anything, and delivered probes still carry
// telemetry.
func TestProbeLossDegradesGracefully(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	rng := simtime.NewRand(9)
	d.Network().SetFaultInjector(func(p *netsim.Packet, at *netsim.Node) bool {
		return p.Kind == netsim.KindProbe && at.ID == "s1" && rng.Intn(2) == 0
	})
	received := 0
	d.Stack("h2").ProbeHandler = func(p *netsim.Packet) { received++ }
	for i := 0; i < 40; i++ {
		pkt := d.Network().NewPacket(netsim.KindProbe, "h1", "h2", 1500)
		pkt.Probe = nil // raw probe without payload is tolerated
		_ = d.Network().Send(pkt)
	}
	e.RunUntilIdle()
	if received == 0 || received == 40 {
		t.Fatalf("received %d probes, want partial delivery", received)
	}
}
