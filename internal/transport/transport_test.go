package transport

import (
	"testing"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// testNet builds h1 - s1 - h2 with fast host uplinks and a configurable
// switch egress rate, returning the installed domain.
func testNet(t *testing.T, switchRate int64, queueCap int) (*Domain, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	up := netsim.LinkConfig{RateBps: 1_000_000_000, ReverseRateBps: switchRate, Delay: 5 * time.Millisecond, QueueCap: queueCap}
	if _, err := n.Connect("h1", "s1", up); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("h2", "s1", up); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return NewDomain(n).InstallAll(), e
}

func TestTransferCompletesAndDeliversAllBytes(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	var done FlowStats
	completed := false
	d.Stack("h1").Transfer("h2", 500_000, func(fs FlowStats) {
		done = fs
		completed = true
	})
	e.RunUntilIdle()
	if !completed {
		t.Fatal("transfer never completed")
	}
	if done.Bytes != 500_000 {
		t.Fatalf("bytes %d", done.Bytes)
	}
	if done.Duration() <= 0 {
		t.Fatalf("duration %v", done.Duration())
	}
	// 500 KB at 20 Mbps ≈ 0.2 s minimum; with slow start overhead it
	// should still land well under 2 s on an idle path.
	if done.Duration() > 2*time.Second {
		t.Fatalf("idle-path transfer took %v", done.Duration())
	}
}

func TestTransferThroughputApproachesLineRate(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	var fs FlowStats
	d.Stack("h1").Transfer("h2", 5_000_000, func(s FlowStats) { fs = s })
	e.RunUntilIdle()
	tp := fs.ThroughputBps()
	if tp < 12_000_000 {
		t.Fatalf("goodput %.1f Mbps, want >12 on an idle 20 Mbps path", tp/1e6)
	}
	if tp > 20_000_000 {
		t.Fatalf("goodput %.1f Mbps exceeds line rate", tp/1e6)
	}
}

func TestTransferSurvivesHeavyLoss(t *testing.T) {
	// Tiny queue forces drops during slow start; the flow must still
	// complete via fast retransmit / RTO.
	d, e := testNet(t, 5_000_000, 4)
	var fs FlowStats
	completed := false
	d.Stack("h1").Transfer("h2", 1_000_000, func(s FlowStats) { fs = s; completed = true })
	e.RunUntilIdle()
	if !completed {
		t.Fatal("transfer did not complete under loss")
	}
	if fs.Retransmits == 0 {
		t.Fatal("expected retransmissions with a 4-packet queue")
	}
	if d.Network().Dropped == 0 {
		t.Fatal("expected drops")
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	var a, b FlowStats
	d.Stack("h1").Transfer("h2", 2_000_000, func(s FlowStats) { a = s })
	d.Stack("h1").Transfer("h2", 2_000_000, func(s FlowStats) { b = s })
	e.RunUntilIdle()
	if a.End == 0 || b.End == 0 {
		t.Fatal("a flow did not finish")
	}
	ra, rb := a.ThroughputBps(), b.ThroughputBps()
	ratio := ra / rb
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("unfair share: %.1f vs %.1f Mbps", ra/1e6, rb/1e6)
	}
}

func TestSmallTransferSinglePacket(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	completed := false
	d.Stack("h1").Transfer("h2", 1, func(FlowStats) { completed = true })
	e.RunUntilIdle()
	if !completed {
		t.Fatal("1-byte transfer did not complete")
	}
}

func TestTransferZeroBytesClamped(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	completed := false
	d.Stack("h1").Transfer("h2", 0, func(FlowStats) { completed = true })
	e.RunUntilIdle()
	if !completed {
		t.Fatal("zero-byte transfer did not complete")
	}
}

func TestFlowHandleAndStats(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	f := d.Stack("h1").Transfer("h2", 100_000, nil)
	if f.Done() {
		t.Fatal("flow done before running")
	}
	e.RunUntilIdle()
	if !f.Done() {
		t.Fatal("flow not done after run")
	}
	fs := f.Stats()
	if fs.Src != "h1" || fs.Dst != "h2" || fs.SRTT <= 0 {
		t.Fatalf("stats %+v", fs)
	}
	if f.ID() == 0 {
		t.Fatal("flow ID zero")
	}
}

func TestPingRTT(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	var rtt time.Duration
	ok := false
	d.Stack("h1").Ping("h2", func(r time.Duration, o bool) { rtt, ok = r, o })
	e.RunUntilIdle()
	if !ok {
		t.Fatal("ping timed out on idle network")
	}
	// 4 propagation legs of 5ms plus tiny serialization.
	if rtt < 20*time.Millisecond || rtt > 25*time.Millisecond {
		t.Fatalf("rtt %v, want ≈20ms", rtt)
	}
}

func TestPingTimeout(t *testing.T) {
	// Destination exists but all replies die: use a 1-packet queue and
	// saturate it so the reply drops... simpler: ping an unreachable host
	// by disconnecting routes — here we ping a host with no handler
	// installed by removing its stack.
	e := simtime.NewEngine()
	n := netsim.New(e)
	n.AddHost("h1")
	n.AddHost("h2")
	n.AddSwitch("s1")
	up := netsim.LinkConfig{RateBps: 1_000_000, Delay: time.Millisecond}
	_, _ = n.Connect("h1", "s1", up)
	_, _ = n.Connect("h2", "s1", up)
	_ = n.ComputeRoutes()
	d := NewDomain(n)
	d.Install("h1") // h2 has no stack: echo request is dropped on delivery
	var ok = true
	d.Stack("h1").Ping("h2", func(_ time.Duration, o bool) { ok = o })
	e.RunUntilIdle()
	if ok {
		t.Fatal("ping to a deaf host did not time out")
	}
}

func TestPingerCollectsSeries(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	p := d.Stack("h1").StartPinger("h2", time.Second)
	e.Run(10500 * time.Millisecond)
	p.Stop()
	if len(p.RTTs) != 10 {
		t.Fatalf("collected %d RTTs, want 10", len(p.RTTs))
	}
	if p.MeanRTT() < 20*time.Millisecond {
		t.Fatalf("mean RTT %v", p.MeanRTT())
	}
	if p.Lost != 0 {
		t.Fatalf("lost %d on idle network", p.Lost)
	}
}

func TestCBRSustainsRate(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	c := d.Stack("h1").StartCBR("h2", CBRConfig{RateBps: 10_000_000, Duration: 10 * time.Second})
	e.Run(12 * time.Second)
	if c.Active() {
		t.Fatal("CBR still active after its duration")
	}
	// 10 Mbps for 10 s = 12.5 MB ≈ 8333 packets (burst quantization ±1).
	sentBits := float64(c.BytesSent * 8)
	rate := sentBits / 10.0
	if rate < 9_000_000 || rate > 11_000_000 {
		t.Fatalf("offered rate %.2f Mbps, want ≈10", rate/1e6)
	}
	rx := d.Stack("h2").DatagramsReceived
	if rx < c.PacketsSent*9/10 {
		t.Fatalf("received %d of %d datagrams", rx, c.PacketsSent)
	}
}

func TestCBRPoissonPacingSustainsRate(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	rng := simtime.NewRand(11)
	c := d.Stack("h1").StartCBR("h2", CBRConfig{RateBps: 10_000_000, Jitter: rng, Duration: 10 * time.Second})
	e.Run(12 * time.Second)
	rate := float64(c.BytesSent*8) / 10.0
	if rate < 8_500_000 || rate > 11_500_000 {
		t.Fatalf("Poisson offered rate %.2f Mbps, want ≈10", rate/1e6)
	}
}

func TestCBRStopIdempotent(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	stops := 0
	c := d.Stack("h1").StartCBR("h2", CBRConfig{RateBps: 1_000_000})
	c.OnStop = func(*CBR) { stops++ }
	e.Run(time.Second)
	c.Stop()
	c.Stop()
	if stops != 1 {
		t.Fatalf("OnStop fired %d times", stops)
	}
	if c.StoppedAt == 0 {
		t.Fatal("StoppedAt not recorded")
	}
}

func TestControlMessageRoundTrip(t *testing.T) {
	d, e := testNet(t, 20_000_000, 64)
	type msg struct{ X int }
	var got any
	var from netsim.NodeID
	d.Stack("h2").ControlHandler = func(f netsim.NodeID, payload any) { from, got = f, payload }
	d.Stack("h1").SendControl("h2", 100, &msg{X: 7})
	e.RunUntilIdle()
	m, ok := got.(*msg)
	if !ok || m.X != 7 || from != "h1" {
		t.Fatalf("got %v from %v", got, from)
	}
}

func TestDomainInstallIdempotentAndValidating(t *testing.T) {
	d, _ := testNet(t, 20_000_000, 64)
	if d.Install("h1") != d.Stack("h1") {
		t.Fatal("Install not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("installing on a switch did not panic")
		}
	}()
	d.Install("s1")
}

func TestRTOBackoffRecoversFromBlackout(t *testing.T) {
	// Start a transfer, then blackhole the path for a while by saturating
	// the tiny queue with datagrams; the sender must recover via RTO.
	d, e := testNet(t, 2_000_000, 2)
	var fs FlowStats
	completed := false
	d.Stack("h1").Transfer("h2", 300_000, func(s FlowStats) { fs = s; completed = true })
	// Blast datagrams for 3 seconds to starve the flow.
	d.Stack("h1").StartCBR("h2", CBRConfig{RateBps: 10_000_000, Duration: 3 * time.Second})
	e.RunUntilIdle()
	if !completed {
		t.Fatal("flow never recovered from blackout")
	}
	if fs.Timeouts == 0 && fs.Retransmits == 0 {
		t.Fatal("expected timeouts or retransmits during blackout")
	}
}

func TestFlowStatsThroughputZeroDuration(t *testing.T) {
	fs := FlowStats{Bytes: 100, Start: time.Second, End: time.Second}
	if fs.ThroughputBps() != 0 {
		t.Fatal("zero duration throughput not zero")
	}
}
