// Package transport implements the host-side protocol stack for the
// simulator: a TCP-like reliable byte-stream (slow start, AIMD congestion
// avoidance, fast retransmit, RTO with exponential backoff), iperf-style
// constant-bit-rate datagram flows for background congestion, ICMP-echo
// style ping, and a small control-message service used by the scheduler
// query protocol and the task lifecycle.
package transport

import (
	"fmt"
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// Wire-size constants (bytes).
const (
	// MSS is the maximum transport payload per data segment.
	MSS = 1460
	// HeaderSize approximates IP+transport headers per segment.
	HeaderSize = 40
	// SegmentWireSize is the on-wire size of a full data segment.
	SegmentWireSize = MSS + HeaderSize
	// AckSize is the on-wire size of a pure acknowledgement.
	AckSize = HeaderSize
	// PingSize is the on-wire size of a ping request/response.
	PingSize = 64
)

// Domain owns the transport stacks of all hosts in one network and
// allocates network-unique flow IDs.
type Domain struct {
	net      *netsim.Network
	engine   *simtime.Engine
	stacks   map[netsim.NodeID]*Stack
	nextFlow uint64
}

// NewDomain creates a transport domain for the network.
func NewDomain(nw *netsim.Network) *Domain {
	return &Domain{
		net:    nw,
		engine: nw.Engine(),
		stacks: make(map[netsim.NodeID]*Stack),
	}
}

// Network returns the underlying network.
func (d *Domain) Network() *netsim.Network { return d.net }

// InstallAll installs a stack on every host and returns the domain.
func (d *Domain) InstallAll() *Domain {
	for _, id := range d.net.Hosts() {
		d.Install(id)
	}
	return d
}

// Install creates (or returns) the stack for the given host and wires it as
// the host's packet handler.
func (d *Domain) Install(host netsim.NodeID) *Stack {
	if s, ok := d.stacks[host]; ok {
		return s
	}
	node := d.net.Node(host)
	if node == nil {
		panic(fmt.Sprintf("transport: unknown host %s", host))
	}
	if node.Kind != netsim.Host {
		panic(fmt.Sprintf("transport: %s is not a host", host))
	}
	s := &Stack{
		domain:     d,
		host:       node,
		senders:    make(map[uint64]*tcpSender),
		receivers:  make(map[uint64]*tcpReceiver),
		pings:      make(map[int64]*pendingPing),
		ctlPending: make(map[int64]*pendingControl),
		ctlSeen:    make(map[netsim.NodeID]map[int64]bool),
	}
	node.Handler = s.handle
	d.stacks[host] = s
	return s
}

// Stack returns the stack installed on host, or nil.
func (d *Domain) Stack(host netsim.NodeID) *Stack { return d.stacks[host] }

func (d *Domain) allocFlowID() uint64 {
	d.nextFlow++
	return d.nextFlow
}

// Stack is one host's transport endpoint.
type Stack struct {
	domain *Domain
	host   *netsim.Node

	senders   map[uint64]*tcpSender
	receivers map[uint64]*tcpReceiver

	pings    map[int64]*pendingPing
	nextPing int64

	// Reliable control-message state.
	ctlSeq     int64
	ctlPending map[int64]*pendingControl
	ctlSeen    map[netsim.NodeID]map[int64]bool

	// ControlRetransmits counts control-message retransmissions.
	ControlRetransmits uint64

	// ProbeHandler receives INT probe packets addressed to this host
	// (set on the scheduler host by the collector).
	ProbeHandler func(pkt *netsim.Packet)
	// ControlHandler receives control messages addressed to this host.
	ControlHandler func(from netsim.NodeID, payload any)
	// DatagramHandler, when set, observes unreliable datagrams (CBR
	// traffic sinks do not need it; counters suffice).
	DatagramHandler func(pkt *netsim.Packet)
	// INTSink, when set, observes data packets carrying embedded
	// per-packet INT stacks (classic INT mode): the destination host is
	// the INT sink that extracts telemetry and exports it to the
	// monitoring engine.
	INTSink func(pkt *netsim.Packet)

	// Stats
	DatagramsReceived uint64
	DatagramBytes     uint64
}

// Host returns the host node ID.
func (s *Stack) Host() netsim.NodeID { return s.host.ID }

// Engine returns the simulation engine.
func (s *Stack) Engine() *simtime.Engine { return s.domain.engine }

func (s *Stack) now() time.Duration { return s.domain.engine.Now() }

// handle demultiplexes packets delivered to this host.
func (s *Stack) handle(pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.KindData:
		s.handleData(pkt)
	case netsim.KindAck:
		if snd := s.senders[pkt.FlowID]; snd != nil {
			snd.onAck(pkt.Seq)
		}
	case netsim.KindProbe:
		if s.ProbeHandler != nil {
			s.ProbeHandler(pkt)
		}
	case netsim.KindPingReq:
		// Echo back to the source, preserving the sequence cookie.
		resp := s.domain.net.NewPacket(netsim.KindPingResp, s.host.ID, pkt.Src, PingSize).MarkTransient()
		resp.Seq = pkt.Seq
		_ = s.domain.net.Send(resp)
	case netsim.KindPingResp:
		if p := s.pings[pkt.Seq]; p != nil {
			delete(s.pings, pkt.Seq)
			p.timeout.Cancel()
			p.cb(s.now()-p.sentAt, true)
		}
	case netsim.KindControl:
		s.handleControlPacket(pkt)
	case netsim.KindControlAck:
		s.handleControlAck(pkt)
	case netsim.KindDatagram:
		s.DatagramsReceived++
		s.DatagramBytes += uint64(pkt.Size)
		if pkt.Probe != nil && s.INTSink != nil {
			s.INTSink(pkt)
		}
		if s.DatagramHandler != nil {
			s.DatagramHandler(pkt)
		}
	}
}

func (s *Stack) handleData(pkt *netsim.Packet) {
	if pkt.Probe != nil && s.INTSink != nil {
		s.INTSink(pkt)
	}
	rcv := s.receivers[pkt.FlowID]
	if rcv == nil {
		rcv = newTCPReceiver(s, pkt.FlowID, pkt.Src)
		s.receivers[pkt.FlowID] = rcv
	}
	rcv.onData(pkt)
}

// Control-message reliability parameters: a lost query or task lifecycle
// message must not strand a task, so control packets are retransmitted
// until acknowledged.
const (
	ctlRTO        = 500 * time.Millisecond
	ctlMaxRetries = 20
)

type pendingControl struct {
	pkt   *netsim.Packet
	tries int
	timer simtime.Timer
}

// SendControl sends a small control message to dst reliably: the packet is
// retransmitted on a fixed timeout until the receiver acknowledges it (or
// ctlMaxRetries is exhausted). size is the on-wire size in bytes (clamped
// to at least the header size).
func (s *Stack) SendControl(dst netsim.NodeID, size int, payload any) {
	if size < HeaderSize {
		size = HeaderSize
	}
	s.ctlSeq++
	seq := s.ctlSeq
	pkt := s.domain.net.NewPacket(netsim.KindControl, s.host.ID, dst, size)
	pkt.Seq = seq
	pkt.Payload = payload
	pend := &pendingControl{pkt: pkt}
	s.ctlPending[seq] = pend
	s.sendControlAttempt(pend)
}

func (s *Stack) sendControlAttempt(pend *pendingControl) {
	pend.tries++
	// Re-issue a fresh packet per attempt: the previous copy may still be
	// queued somewhere in the network.
	copyPkt := s.domain.net.NewPacket(netsim.KindControl, pend.pkt.Src, pend.pkt.Dst, pend.pkt.Size).MarkTransient()
	copyPkt.Seq = pend.pkt.Seq
	copyPkt.Payload = pend.pkt.Payload
	_ = s.domain.net.Send(copyPkt)
	if pend.tries > 1 {
		s.ControlRetransmits++
	}
	if pend.tries >= ctlMaxRetries {
		delete(s.ctlPending, pend.pkt.Seq)
		return
	}
	pend.timer = s.domain.engine.After(ctlRTO, func() {
		if _, ok := s.ctlPending[pend.pkt.Seq]; ok {
			s.sendControlAttempt(pend)
		}
	})
}

// handleControlPacket delivers a control packet exactly once and always
// acknowledges it (duplicates re-acknowledge in case the first ack was
// lost).
func (s *Stack) handleControlPacket(pkt *netsim.Packet) {
	ack := s.domain.net.NewPacket(netsim.KindControlAck, s.host.ID, pkt.Src, AckSize).MarkTransient()
	ack.Seq = pkt.Seq
	_ = s.domain.net.Send(ack)

	seen := s.ctlSeen[pkt.Src]
	if seen == nil {
		seen = make(map[int64]bool)
		s.ctlSeen[pkt.Src] = seen
	}
	if seen[pkt.Seq] {
		return // duplicate delivery from a retransmission
	}
	seen[pkt.Seq] = true
	if s.ControlHandler != nil {
		s.ControlHandler(pkt.Src, pkt.Payload)
	}
}

func (s *Stack) handleControlAck(pkt *netsim.Packet) {
	if pend, ok := s.ctlPending[pkt.Seq]; ok {
		delete(s.ctlPending, pkt.Seq)
		pend.timer.Cancel()
	}
}

type pendingPing struct {
	sentAt  time.Duration
	cb      func(rtt time.Duration, ok bool)
	timeout simtime.Timer
}

// DefaultPingTimeout is how long a ping waits for its echo.
const DefaultPingTimeout = 2 * time.Second

// Ping sends an echo request to dst and invokes cb with the measured RTT,
// or ok=false on timeout.
func (s *Stack) Ping(dst netsim.NodeID, cb func(rtt time.Duration, ok bool)) {
	s.nextPing++
	seq := s.nextPing
	req := s.domain.net.NewPacket(netsim.KindPingReq, s.host.ID, dst, PingSize).MarkTransient()
	req.Seq = seq
	p := &pendingPing{sentAt: s.now(), cb: cb}
	p.timeout = s.domain.engine.After(DefaultPingTimeout, func() {
		if _, ok := s.pings[seq]; ok {
			delete(s.pings, seq)
			cb(0, false)
		}
	})
	s.pings[seq] = p
	_ = s.domain.net.Send(req)
}

// Pinger periodically pings a destination and records the observed RTTs —
// the simulator's equivalent of the paper's background `ping` used to
// measure end-to-end delay in the Fig 3 calibration.
type Pinger struct {
	stack  *Stack
	ticker *simtime.Ticker

	// RTTs holds every successful measurement in order.
	RTTs []time.Duration
	// Lost counts timed-out pings.
	Lost int
}

// StartPinger pings dst every interval until Stop is called.
func (s *Stack) StartPinger(dst netsim.NodeID, interval time.Duration) *Pinger {
	p := &Pinger{stack: s}
	p.ticker = s.domain.engine.NewTicker(interval, func() {
		s.Ping(dst, func(rtt time.Duration, ok bool) {
			if ok {
				p.RTTs = append(p.RTTs, rtt)
			} else {
				p.Lost++
			}
		})
	})
	return p
}

// Stop halts the pinger.
func (p *Pinger) Stop() { p.ticker.Stop() }

// MeanRTT returns the average of recorded RTTs (0 when none).
func (p *Pinger) MeanRTT() time.Duration {
	if len(p.RTTs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, r := range p.RTTs {
		sum += r
	}
	return sum / time.Duration(len(p.RTTs))
}
