package transport

import (
	"time"

	"intsched/internal/netsim"
	"intsched/internal/simtime"
)

// CBRPacketSize is the on-wire size of an iperf-style datagram.
const CBRPacketSize = 1500

// DefaultBurst is the number of back-to-back packets emitted per burst.
// Real iperf/UDP senders are bursty (socket buffers, timer quantization, OS
// scheduling), which is what makes egress queues build up in proportion to
// utilization — the effect the paper's Fig 3 measures. A perfectly paced
// CBR source would never queue below 100% utilization.
const DefaultBurst = 8

// CBRConfig tunes a constant-bit-rate datagram flow.
type CBRConfig struct {
	// RateBps is the target sending rate in bits per second.
	RateBps int64
	// Jitter, when set, switches the flow to Poisson pacing: inter-packet
	// gaps are exponential with the mean matching RateBps. This models
	// the arrival variability of a real iperf UDP sender (socket buffers,
	// timer quantization, OS scheduling) and is what makes egress queues
	// grow with utilization. When nil, the flow sends deterministic
	// back-to-back bursts instead.
	Jitter *simtime.Rand
	// Burst is the number of packets sent back-to-back each burst interval
	// in deterministic mode (DefaultBurst when zero). Ignored with Jitter.
	Burst int
	// Duration stops the flow after this much time (runs until Stop when
	// zero).
	Duration time.Duration
	// PacketSize overrides the datagram size (CBRPacketSize when zero).
	PacketSize int
}

// CBR is an iperf-like unreliable constant-bit-rate flow.
type CBR struct {
	stack  *Stack
	dst    netsim.NodeID
	cfg    CBRConfig
	flowID uint64

	ticker  *simtime.Ticker
	meanGap float64
	stopped bool

	// PacketsSent and BytesSent count emitted traffic.
	PacketsSent uint64
	BytesSent   uint64
	// Started and Stopped record the flow's lifetime.
	Started   time.Duration
	StoppedAt time.Duration
	// OnStop fires once when the flow ends (by duration or Stop).
	OnStop func(*CBR)
}

// StartCBR begins an iperf-style datagram flow from this host to dst.
func (s *Stack) StartCBR(dst netsim.NodeID, cfg CBRConfig) *CBR {
	if cfg.RateBps <= 0 {
		panic("transport: CBR rate must be positive")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = CBRPacketSize
	}
	c := &CBR{
		stack:   s,
		dst:     dst,
		cfg:     cfg,
		flowID:  s.domain.allocFlowID(),
		Started: s.now(),
	}
	if cfg.Jitter != nil {
		// Poisson pacing: exponential gaps with mean packet-time/rate.
		c.meanGap = float64(cfg.PacketSize*8) / float64(cfg.RateBps) * float64(time.Second)
		c.scheduleNext()
	} else {
		// One burst of B packets every (B * bits-per-packet / rate)
		// seconds keeps the long-run average at RateBps while preserving
		// burstiness.
		bitsPerBurst := float64(cfg.Burst * cfg.PacketSize * 8)
		interval := time.Duration(bitsPerBurst / float64(cfg.RateBps) * float64(time.Second))
		if interval <= 0 {
			interval = time.Microsecond
		}
		// First burst goes out immediately; the ticker then sustains the
		// rate.
		c.sendBurst()
		c.ticker = s.domain.engine.NewTicker(interval, c.sendBurst)
	}
	if cfg.Duration > 0 {
		s.domain.engine.After(cfg.Duration, c.Stop)
	}
	return c
}

// scheduleNext emits one packet and schedules the next with an exponential
// gap (Poisson pacing).
func (c *CBR) scheduleNext() {
	if c.stopped {
		return
	}
	c.sendOne()
	gap := time.Duration(c.cfg.Jitter.Exp(c.meanGap))
	c.stack.domain.engine.After(gap, c.scheduleNext)
}

// Dst returns the flow's destination.
func (c *CBR) Dst() netsim.NodeID { return c.dst }

// Active reports whether the flow is still sending.
func (c *CBR) Active() bool { return !c.stopped }

func (c *CBR) sendBurst() {
	if c.stopped {
		return
	}
	for i := 0; i < c.cfg.Burst; i++ {
		c.sendOne()
	}
}

func (c *CBR) sendOne() {
	pkt := c.stack.domain.net.NewPacket(netsim.KindDatagram, c.stack.host.ID, c.dst, c.cfg.PacketSize).MarkTransient()
	pkt.FlowID = c.flowID
	pkt.Seq = int64(c.PacketsSent)
	c.PacketsSent++
	c.BytesSent += uint64(c.cfg.PacketSize)
	_ = c.stack.domain.net.Send(pkt)
}

// Stop halts the flow. Safe to call multiple times.
func (c *CBR) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.StoppedAt = c.stack.now()
	if c.ticker != nil {
		c.ticker.Stop()
	}
	if c.OnStop != nil {
		c.OnStop(c)
	}
}
