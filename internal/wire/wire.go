// Package wire defines the on-the-wire encodings shared by the live
// (real-socket) deployment: a compact binary encapsulation header for
// datagrams forwarded through the soft-switch overlay, and length-prefixed
// JSON framing for the scheduler's TCP query protocol.
//
// Probe payloads inside probe datagrams use the binary codec from the
// telemetry package; this package only frames and addresses them.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Magic identifies overlay datagrams.
const Magic uint16 = 0x1A7E

// Kind tags an overlay datagram's role (mirrors netsim.PacketKind for the
// kinds the live overlay carries).
type Kind uint8

// Overlay datagram kinds.
const (
	KindData Kind = iota
	KindProbe
	KindPing
	KindPong
	// KindDirective carries a collector→prober cadence directive
	// (telemetry.CadenceDirective) back along the probe return path.
	// Pre-directive receivers drop unknown kinds silently, so mixed-version
	// fleets degrade to static cadence rather than erroring.
	KindDirective
)

// MaxNodeName bounds node identifiers on the wire.
const MaxNodeName = 255

// DefaultTTL is the initial hop limit for overlay datagrams.
const DefaultTTL = 32

// Datagram is one encapsulated overlay packet.
type Datagram struct {
	Kind Kind
	TTL  uint8
	// Src and Dst are overlay node names.
	Src, Dst string
	// SentAtNs is the sender's wall-clock timestamp (for ping RTT).
	SentAtNs int64
	// EgressTS carries the previous hop's egress timestamp for link
	// latency measurement (0 when absent), exactly like the simulator's
	// probe stamping.
	EgressTS int64
	// Payload is the opaque upper-layer content (e.g. an encoded probe).
	Payload []byte
}

// Marshal encodes the datagram.
//
//	magic u16 | kind u8 | ttl u8 | sentAt i64 | egressTS i64 |
//	srcLen u8 | src | dstLen u8 | dst | payloadLen u16 | payload
func (d *Datagram) Marshal() ([]byte, error) {
	if len(d.Src) > MaxNodeName || len(d.Dst) > MaxNodeName {
		return nil, fmt.Errorf("wire: node name too long")
	}
	if len(d.Payload) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: payload too large (%d)", len(d.Payload))
	}
	buf := make([]byte, 0, 24+len(d.Src)+len(d.Dst)+len(d.Payload))
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, byte(d.Kind), d.TTL)
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.SentAtNs))
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.EgressTS))
	buf = append(buf, byte(len(d.Src)))
	buf = append(buf, d.Src...)
	buf = append(buf, byte(len(d.Dst)))
	buf = append(buf, d.Dst...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Payload)))
	buf = append(buf, d.Payload...)
	return buf, nil
}

// ErrShortDatagram is returned for malformed overlay datagrams.
var ErrShortDatagram = errors.New("wire: short datagram")

// UnmarshalDatagram decodes an overlay datagram.
func UnmarshalDatagram(b []byte) (*Datagram, error) {
	if len(b) < 22 {
		return nil, ErrShortDatagram
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return nil, fmt.Errorf("wire: bad magic %#x", binary.BigEndian.Uint16(b))
	}
	d := &Datagram{Kind: Kind(b[2]), TTL: b[3]}
	d.SentAtNs = int64(binary.BigEndian.Uint64(b[4:]))
	d.EgressTS = int64(binary.BigEndian.Uint64(b[12:]))
	off := 20
	take := func() (string, bool) {
		if off >= len(b) {
			return "", false
		}
		n := int(b[off])
		off++
		if off+n > len(b) {
			return "", false
		}
		s := string(b[off : off+n])
		off += n
		return s, true
	}
	var ok bool
	if d.Src, ok = take(); !ok {
		return nil, ErrShortDatagram
	}
	if d.Dst, ok = take(); !ok {
		return nil, ErrShortDatagram
	}
	if off+2 > len(b) {
		return nil, ErrShortDatagram
	}
	plen := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if off+plen > len(b) {
		return nil, ErrShortDatagram
	}
	d.Payload = append([]byte(nil), b[off:off+plen]...)
	return d, nil
}

// --- TCP query protocol -------------------------------------------------

// MaxFrame bounds a framed JSON message.
const MaxFrame = 1 << 20

// WriteFrame writes a 4-byte big-endian length prefix followed by the JSON
// encoding of v.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// QueryRequest is the scheduler query sent by a live edge device.
type QueryRequest struct {
	From   string `json:"from"`
	Metric string `json:"metric"`
	Count  int    `json:"count,omitempty"`
	Sorted bool   `json:"sorted"`
	// DataBytes optionally hints the task's transfer size for size-aware
	// rankings (metric "transfer-time").
	DataBytes int64 `json:"data_bytes,omitempty"`
	// Batch, when non-empty, carries a burst of queries answered together
	// against one topology snapshot and one rank-cache generation; the
	// top-level single-query fields are then ignored and the reply returns
	// one entry in its Batch per element, index-aligned. Elements may not
	// nest further batches. Absent on the wire for single queries, so old
	// clients and servers interoperate unchanged.
	Batch []QueryRequest `json:"batch,omitempty"`
}

// CandidateInfo is one ranked edge server in a live query response.
type CandidateInfo struct {
	Node         string  `json:"node"`
	DelayNs      int64   `json:"delay_ns"`
	BandwidthBps float64 `json:"bandwidth_bps"`
	Hops         int     `json:"hops"`
	Reachable    bool    `json:"reachable"`
}

// Delay returns the candidate's delay estimate as a duration.
func (c CandidateInfo) Delay() time.Duration { return time.Duration(c.DelayNs) }

// QueryResponse is the scheduler's reply.
type QueryResponse struct {
	Metric     string          `json:"metric"`
	Error      string          `json:"error,omitempty"`
	Candidates []CandidateInfo `json:"candidates"`
	// Batch answers a batched request, index-aligned with the request's
	// Batch. Per-element failures (e.g. an unknown metric) set that
	// element's Error without failing the rest of the batch.
	Batch []QueryResponse `json:"batch,omitempty"`
}
