package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDatagramRoundTrip(t *testing.T) {
	d := &Datagram{
		Kind:     KindProbe,
		TTL:      17,
		Src:      "n1",
		Dst:      "sched",
		SentAtNs: 123456789,
		EgressTS: 987654321,
		Payload:  []byte("hello telemetry"),
	}
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != d.Kind || got.TTL != d.TTL || got.Src != d.Src || got.Dst != d.Dst ||
		got.SentAtNs != d.SentAtNs || got.EgressTS != d.EgressTS ||
		!bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, d)
	}
}

func TestDatagramEmptyPayload(t *testing.T) {
	d := &Datagram{Kind: KindData, TTL: 1, Src: "a", Dst: "b"}
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload %v", got.Payload)
	}
}

func TestDatagramValidation(t *testing.T) {
	long := strings.Repeat("x", 300)
	if _, err := (&Datagram{Src: long, Dst: "b"}).Marshal(); err == nil {
		t.Error("overlong src accepted")
	}
	if _, err := (&Datagram{Src: "a", Dst: "b", Payload: make([]byte, 70000)}).Marshal(); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestUnmarshalDatagramMalformed(t *testing.T) {
	if _, err := UnmarshalDatagram(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalDatagram(make([]byte, 10)); err == nil {
		t.Error("short accepted")
	}
	good, _ := (&Datagram{Src: "a", Dst: "b", Payload: []byte("xy")}).Marshal()
	bad := append([]byte(nil), good...)
	bad[0] = 0
	if _, err := UnmarshalDatagram(bad); err == nil {
		t.Error("bad magic accepted")
	}
	for i := 1; i < len(good); i++ {
		if _, err := UnmarshalDatagram(good[:i]); err == nil {
			t.Errorf("prefix %d accepted", i)
		}
	}
}

func TestDatagramPropertyRoundTrip(t *testing.T) {
	f := func(kind uint8, ttl uint8, src, dst string, sent, egress int64, payload []byte) bool {
		if len(src) > MaxNodeName || len(dst) > MaxNodeName || len(payload) > 65535 {
			return true
		}
		d := &Datagram{Kind: Kind(kind), TTL: ttl, Src: src, Dst: dst,
			SentAtNs: sent, EgressTS: egress, Payload: payload}
		b, err := d.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalDatagram(b)
		if err != nil {
			return false
		}
		return got.Kind == d.Kind && got.TTL == d.TTL && got.Src == src &&
			got.Dst == dst && got.SentAtNs == sent && got.EgressTS == egress &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &QueryRequest{From: "n1", Metric: "delay", Count: 3, Sorted: true}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	resp := &QueryResponse{Metric: "delay", Candidates: []CandidateInfo{
		{Node: "e1", DelayNs: int64(30e6), BandwidthBps: 2e7, Hops: 3, Reachable: true},
	}}
	if err := WriteFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}
	var gotReq QueryRequest
	if err := ReadFrame(&buf, &gotReq); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, *req) {
		t.Fatalf("request %+v", gotReq)
	}
	var gotResp QueryResponse
	if err := ReadFrame(&buf, &gotResp); err != nil {
		t.Fatal(err)
	}
	if len(gotResp.Candidates) != 1 || gotResp.Candidates[0] != resp.Candidates[0] {
		t.Fatalf("response %+v", gotResp)
	}
	if gotResp.Candidates[0].Delay().Milliseconds() != 30 {
		t.Fatal("Delay() accessor")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &QueryRequest{From: "n1"})
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		var req QueryRequest
		if err := ReadFrame(bytes.NewReader(data[:i]), &req); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", i)
		}
	}
}

func TestReadFrameOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var v any
	if err := ReadFrame(&buf, &v); err == nil {
		t.Fatal("oversize frame accepted")
	}
}
