package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "probes_total"}).Add(2)
	srv := httptest.NewServer(Handler(r, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "probes_total 2") {
		t.Fatalf("exposition:\n%s", body)
	}

	resp2, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var series []MetricSnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Name != "probes_total" || series[0].Value != 2 {
		t.Fatalf("json series %+v", series)
	}
}

func TestHandlerHealthz(t *testing.T) {
	var h Health
	degraded := false
	h.Register("probe-liveness", func() []string {
		if degraded {
			return []string{"no probes from edge e1"}
		}
		return nil
	})
	srv := httptest.NewServer(Handler(NewRegistry(), &h))
	defer srv.Close()

	get := func() (int, HealthReport) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rep
	}
	if code, rep := get(); code != http.StatusOK || rep.Status != HealthOK {
		t.Fatalf("healthy: %d %+v", code, rep)
	}
	degraded = true
	if code, rep := get(); code != http.StatusServiceUnavailable || !rep.Degraded() || len(rep.Reasons) != 1 {
		t.Fatalf("degraded: %d %+v", code, rep)
	}
}
