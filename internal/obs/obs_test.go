package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 30)) // uniform over [0,30)
	}
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 20 {
		t.Fatalf("p50 = %v, want within [10,20]", p50)
	}
	// Empty histogram: NaN, and 0 as a duration.
	empty := NewHistogram([]float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	if d := empty.Snapshot().QuantileDuration(0.5); d != 0 {
		t.Fatalf("empty duration quantile = %v", d)
	}
	// Everything in +Inf saturates at the last finite bound.
	sat := NewHistogram([]float64{1, 2})
	sat.Observe(50)
	if got := sat.Quantile(0.99); got != 2 {
		t.Fatalf("saturated quantile = %v, want 2", got)
	}
}

func TestHistogramObserveDurationAndLatencyBuckets(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.QuantileDuration(0.5); got < time.Millisecond || got > 10*time.Millisecond {
		t.Fatalf("p50 = %v, want ~3ms", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 || m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Fatalf("merged %+v", m)
	}
	c := NewHistogram([]float64{5})
	if _, err := a.Snapshot().Merge(c.Snapshot()); err == nil {
		t.Fatal("mismatched merge accepted")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter(Opts{Name: "x_total"})
	c2 := r.Counter(Opts{Name: "x_total"})
	if c1 != c2 {
		t.Fatal("same series produced distinct counters")
	}
	// Distinct labels are distinct series.
	l1 := r.Counter(Opts{Name: "y_total", Labels: []Label{{"metric", "delay"}}})
	l2 := r.Counter(Opts{Name: "y_total", Labels: []Label{{"metric", "bandwidth"}}})
	if l1 == l2 {
		t.Fatal("distinct labels shared a counter")
	}
	// Kind mismatch on an existing series panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch accepted")
			}
		}()
		r.Gauge(Opts{Name: "x_total"})
	}()
	// Invalid names panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name accepted")
			}
		}()
		r.Counter(Opts{Name: "1bad name"})
	}()
}

func TestRegistrySnapshotSortedAndKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "b_total", Help: "b help"}).Add(2)
	r.Gauge(Opts{Name: "a_gauge"}).Set(1.5)
	r.GaugeFunc(Opts{Name: "c_fn"}, func() float64 { return 7 })
	r.CounterFunc(Opts{Name: "d_fn_total"}, func() float64 { return 9 })
	r.Histogram(Opts{Name: "h_seconds"}, []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d series", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Series() >= snap[i].Series() {
			t.Fatalf("snapshot unsorted: %q >= %q", snap[i-1].Series(), snap[i].Series())
		}
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if byName["b_total"].Value != 2 || byName["b_total"].Kind != KindCounter {
		t.Fatalf("counter snapshot %+v", byName["b_total"])
	}
	if byName["a_gauge"].Value != 1.5 || byName["c_fn"].Value != 7 || byName["d_fn_total"].Value != 9 {
		t.Fatalf("gauge/func snapshots %+v", byName)
	}
	if h := byName["h_seconds"].Histogram; h == nil || h.Count != 1 {
		t.Fatalf("histogram snapshot %+v", byName["h_seconds"])
	}
}

func TestFindHistogramMergesLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Opts{Name: "q_seconds", Labels: []Label{{"metric", "delay"}}}, []float64{1, 2}).Observe(0.5)
	r.Histogram(Opts{Name: "q_seconds", Labels: []Label{{"metric", "bandwidth"}}}, []float64{1, 2}).Observe(1.5)
	m, ok := r.FindHistogram("q_seconds")
	if !ok || m.Count != 2 {
		t.Fatalf("merged %+v ok=%v", m, ok)
	}
	if _, ok := r.FindHistogram("missing"); ok {
		t.Fatal("missing histogram found")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "probes_total", Help: "probes received"}).Add(3)
	r.Histogram(Opts{Name: "lat_seconds", Labels: []Label{{"metric", "delay"}}}, []float64{1, 2}).Observe(1.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP probes_total probes received",
		"# TYPE probes_total counter",
		"probes_total 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{metric="delay",le="1"} 0`,
		`lat_seconds_bucket{metric="delay",le="2"} 1`,
		`lat_seconds_bucket{metric="delay",le="+Inf"} 1`,
		`lat_seconds_sum{metric="delay"} 1.5`,
		`lat_seconds_count{metric="delay"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHealthEvaluate(t *testing.T) {
	var h Health
	if rep := h.Evaluate(); rep.Degraded() || rep.Status != HealthOK {
		t.Fatalf("empty health %+v", rep)
	}
	var failing bool
	h.Register("probe-liveness", func() []string {
		if failing {
			return []string{"no probes from edge e3 for 812ms"}
		}
		return nil
	})
	h.Register("always-ok", func() []string { return nil })
	if rep := h.Evaluate(); rep.Degraded() {
		t.Fatalf("healthy checks degraded: %+v", rep)
	}
	failing = true
	rep := h.Evaluate()
	if !rep.Degraded() || len(rep.Reasons) != 1 || !strings.Contains(rep.Reasons[0], "e3") {
		t.Fatalf("degraded report %+v", rep)
	}
}
