package obs

import "sync"

// HealthStatus is the overall verdict of a health evaluation.
type HealthStatus string

// Health verdicts. There are deliberately only two: either every check
// passes, or the telemetry feeding the scheduler has degraded and rankings
// may be built on stale state.
const (
	HealthOK       HealthStatus = "ok"
	HealthDegraded HealthStatus = "degraded"
)

// HealthReport is the result of evaluating all registered checks.
type HealthReport struct {
	Status HealthStatus `json:"status"`
	// Reasons lists every active degradation, e.g. "no probes from edge e3
	// for 812ms (> 3 queue windows)". Empty when Status is ok.
	Reasons []string `json:"reasons,omitempty"`
}

// Degraded reports whether the evaluation found any problem.
func (r HealthReport) Degraded() bool { return r.Status == HealthDegraded }

// healthCheck is one named rule.
type healthCheck struct {
	name string
	fn   func() []string
}

// Health aggregates named degradation checks. A check returns the list of
// currently active degradation reasons (nil/empty when healthy); Evaluate
// runs every check and combines the reasons into one report. Checks must be
// safe for concurrent use — /healthz may be scraped while the daemon ingests
// probes.
type Health struct {
	mu     sync.RWMutex
	checks []healthCheck
}

// Register adds a named check. Registration order is evaluation (and reason)
// order.
func (h *Health) Register(name string, fn func() []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks = append(h.checks, healthCheck{name: name, fn: fn})
}

// Evaluate runs all checks and reports ok or degraded with reasons.
func (h *Health) Evaluate() HealthReport {
	h.mu.RLock()
	checks := make([]healthCheck, len(h.checks))
	copy(checks, h.checks)
	h.mu.RUnlock()

	rep := HealthReport{Status: HealthOK}
	for _, c := range checks {
		rep.Reasons = append(rep.Reasons, c.fn()...)
	}
	if len(rep.Reasons) > 0 {
		rep.Status = HealthDegraded
	}
	return rep
}
