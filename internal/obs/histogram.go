package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram for latency-like observations. The
// bucket layout is immutable after construction; Observe is lock-free (one
// binary search over the bounds plus three atomic adds), so it is safe on the
// query hot path. Quantiles are estimated from the bucket counts by linear
// interpolation, the same rule as Prometheus histogram_quantile.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, strictly
	// increasing. An implicit +Inf bucket catches everything above the last
	// bound.
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the running sum, CAS-updated
}

// NewHistogram creates a histogram with the given finite upper bounds, which
// must be non-empty and strictly increasing. It panics otherwise: bucket
// layouts are compile-time decisions, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %v <= %v", own[i], own[i-1]))
		}
	}
	return &Histogram{
		bounds: own,
		counts: make([]atomic.Uint64, len(own)+1),
	}
}

// LatencyBuckets returns the default bucket bounds for query/RPC latencies:
// exponential from 1 µs to ~8.4 s (doubling), in seconds. Sub-microsecond
// observations land in the first bucket; anything slower than ~8 s lands in
// +Inf.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 24)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s returns the first bound >= v for the inclusive
	// upper-bound convention (le in Prometheus terms).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot captures the current bucket counts. Concurrent Observe calls may
// land between the individual bucket reads, so the sum can straggle the
// counts by in-flight observations; Count is derived from the bucket reads
// themselves and is internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, shared
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// observations. See HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts holds per-bucket observation counts; its last element is the
	// +Inf bucket (observations above the final bound).
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
}

// Quantile estimates the q-quantile by locating the bucket containing the
// target rank and interpolating linearly inside it (Prometheus
// histogram_quantile semantics). With no observations it returns NaN; ranks
// that fall in the +Inf bucket return the last finite bound (the estimate
// saturates — fixed buckets cannot resolve the far tail).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			// +Inf bucket: saturate at the largest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		// Position of the target rank inside this bucket.
		within := (rank - (cum - float64(c))) / float64(c)
		return lo + (hi-lo)*within
	}
	return s.Bounds[len(s.Bounds)-1]
}

// QuantileDuration is Quantile for latency histograms observed in seconds.
// NaN (no observations) maps to 0.
func (s HistogramSnapshot) QuantileDuration(q float64) time.Duration {
	v := s.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return time.Duration(v * float64(time.Second))
}

// Merge combines two snapshots with identical bucket layouts (e.g. the same
// latency metric observed per ranking strategy) into one.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Bounds) == 0 {
		return o, nil
	}
	if len(o.Bounds) == 0 {
		return s, nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bounds at bucket %d", i)
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}
