package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves the observability endpoints:
//
//	GET /metrics   — Prometheus text exposition (default), or the JSON
//	                 snapshot with ?format=json / Accept: application/json
//	GET /healthz   — 200 {"status":"ok"} or 503 {"status":"degraded",
//	                 "reasons":[...]} from evaluating health
//
// health may be nil, in which case /healthz always reports ok (a daemon
// with no registered checks has nothing to degrade on).
func Handler(reg *Registry, health *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		rep := HealthReport{Status: HealthOK}
		if health != nil {
			rep = health.Evaluate()
		}
		w.Header().Set("Content-Type", "application/json")
		if rep.Degraded() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(rep)
	})
	return mux
}

// wantJSON decides the /metrics representation.
func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}
