package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies a registered metric.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Opts names a metric series: a Prometheus-style base name, optional help
// text, and optional labels distinguishing series that share the name (e.g.
// query latency per ranking metric).
type Opts struct {
	Name   string
	Help   string
	Labels []Label
}

// seriesID is the canonical identity: name plus sorted labels.
func (o Opts) seriesID() string {
	if len(o.Labels) == 0 {
		return o.Name
	}
	return o.Name + labelString(o.Labels, "")
}

// labelString renders {k="v",...} with labels sorted by key; extra, when
// non-empty, is appended as a pre-rendered label (the histogram le bound).
func labelString(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extra != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// entry is one registered series.
type entry struct {
	opts Opts
	kind Kind

	counter   *Counter
	gauge     *Gauge
	valueFn   func() float64 // CounterFunc / GaugeFunc callback
	histogram *Histogram
}

// Registry is a named collection of metrics. Registration methods are
// get-or-create: asking for an existing (name, labels) series returns the
// already-registered instrument, so hot paths may re-resolve by name without
// duplicating state. Registering the same series as a different kind panics
// — that is a programming error, not runtime input.
//
// The zero value is not usable; create registries with NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

// lookup returns the existing entry for id, checking the kind.
func (r *Registry) lookup(id string, kind Kind, o Opts) *entry {
	e := r.metrics[id]
	if e == nil {
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested as %s", id, e.kind, kind))
	}
	return e
}

// register get-or-creates the entry for o with the given kind, invoking
// create only when absent.
func (r *Registry) register(o Opts, kind Kind, create func() *entry) *entry {
	if !validMetricName(o.Name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", o.Name))
	}
	id := o.seriesID()
	r.mu.RLock()
	e := r.lookup(id, kind, o)
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(id, kind, o); e != nil {
		return e
	}
	e = create()
	e.opts = o
	e.kind = kind
	r.metrics[id] = e
	return e
}

// Counter get-or-creates a counter series.
func (r *Registry) Counter(o Opts) *Counter {
	return r.register(o, KindCounter, func() *entry {
		return &entry{counter: &Counter{}}
	}).counter
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(o Opts) *Gauge {
	return r.register(o, KindGauge, func() *entry {
		return &entry{gauge: &Gauge{}}
	}).gauge
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — for monotone counts already maintained elsewhere (e.g. collector
// ingestion stats) that should appear in the exposition without double
// bookkeeping.
func (r *Registry) CounterFunc(o Opts, fn func() float64) {
	r.register(o, KindCounter, func() *entry {
		return &entry{valueFn: fn}
	})
}

// GaugeFunc registers a gauge computed by fn at snapshot time (e.g. epoch
// age, goroutine counts).
func (r *Registry) GaugeFunc(o Opts, fn func() float64) {
	r.register(o, KindGauge, func() *entry {
		return &entry{valueFn: fn}
	})
}

// Histogram get-or-creates a histogram series with the given bucket bounds
// (LatencyBuckets() when nil). The bounds are fixed by whichever call
// registers the series first.
func (r *Registry) Histogram(o Opts, bounds []float64) *Histogram {
	return r.register(o, KindHistogram, func() *entry {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		return &entry{histogram: NewHistogram(bounds)}
	}).histogram
}

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Labels    []Label            `json:"labels,omitempty"`
	Kind      Kind               `json:"kind"`
	Help      string             `json:"help,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Series renders the full series identity (name plus labels).
func (m MetricSnapshot) Series() string { return m.Name + labelString(m.Labels, "") }

// Snapshot freezes every registered series, sorted by series identity. The
// result is immutable — safe to hand across goroutines or serialize.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.metrics))
	for _, e := range r.metrics {
		entries = append(entries, e)
	}
	r.mu.RUnlock()

	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		m := MetricSnapshot{
			Name:   e.opts.Name,
			Labels: append([]Label(nil), e.opts.Labels...),
			Kind:   e.kind,
			Help:   e.opts.Help,
		}
		switch {
		case e.counter != nil:
			m.Value = float64(e.counter.Value())
		case e.gauge != nil:
			m.Value = e.gauge.Value()
		case e.valueFn != nil:
			m.Value = e.valueFn()
		case e.histogram != nil:
			h := e.histogram.Snapshot()
			m.Histogram = &h
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series() < out[j].Series() })
	return out
}

// FindHistogram returns the snapshot of the histogram series with the given
// base name, merging all labeled series under it (e.g. per-metric query
// latencies combined into one distribution). ok is false when no such
// histogram exists or layouts conflict.
func (r *Registry) FindHistogram(name string) (HistogramSnapshot, bool) {
	var merged HistogramSnapshot
	found := false
	for _, m := range r.Snapshot() {
		if m.Name != name || m.Histogram == nil {
			continue
		}
		if !found {
			merged = *m.Histogram
			found = true
			continue
		}
		next, err := merged.Merge(*m.Histogram)
		if err != nil {
			return HistogramSnapshot{}, false
		}
		merged = next
	}
	return merged, found
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers once per base name, then one
// line per series, histograms expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	seenHeader := make(map[string]bool)
	for _, m := range snap {
		if !seenHeader[m.Name] {
			seenHeader[m.Name] = true
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		if m.Histogram == nil {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels, ""), formatValue(m.Value)); err != nil {
				return err
			}
			continue
		}
		h := m.Histogram
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatValue(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelString(m.Labels, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelString(m.Labels, ""), formatValue(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels, ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a JSON array of series.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}

// formatValue renders a float the way Prometheus clients do: integral values
// without an exponent, everything else in shortest form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validMetricName checks the Prometheus metric name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
