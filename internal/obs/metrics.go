// Package obs is the scheduler's runtime observability subsystem: lock-cheap
// metric primitives (atomic counters and gauges, fixed-bucket latency
// histograms with quantile estimates), a named registry with immutable
// snapshots and Prometheus/JSON exposition, and a health model that turns
// collector-derived signals (probe liveness, topology staleness) into an
// ok/degraded verdict with reasons.
//
// The design constraint is the ingest and query hot paths: a probe arrives
// every 100 ms per edge while ranking queries can outnumber probes 100:1, so
// every per-event instrument is a single atomic operation — no locks, no
// allocation. Locks appear only at the edges: registry mutation (setup time)
// and exposition (scrape time).
//
// One registry observes both deployments of the scheduler: the live
// CollectorDaemon serves it over HTTP (/metrics, /healthz) and the simulated
// experiment rigs read the same snapshots to report cache hit rates and
// query-latency quantiles.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use. All methods are safe for concurrent use; Inc/Add are a single atomic
// add, suitable for per-datagram hot paths.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use
// and reads 0. All methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
