package simtime

import (
	"testing"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired in order %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineAfterRelative(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(time.Second, func() {
		e.After(500*time.Millisecond, func() { at = e.Now() })
	})
	e.RunUntilIdle()
	if at != 1500*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 1.5s", at)
	}
}

func TestEngineAfterNegativeClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-time.Second, func() { fired = true })
	e.RunUntilIdle()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, func() {})
	e.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(500*time.Millisecond, func() {})
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(time.Second, func() { fired = true })
	ev.Cancel()
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	// Double cancel is a no-op.
	ev.Cancel()
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		e.At(d, func() { fired = append(fired, d) })
	}
	n := e.Run(2 * time.Second)
	if n != 2 {
		t.Fatalf("fired %d events, want 2", n)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock at %v, want 2s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d, want 2", e.Pending())
	}
	// Run to a horizon past the queue: clock advances to the horizon.
	e.Run(10 * time.Second)
	if e.Now() != 10*time.Second {
		t.Fatalf("clock at %v, want 10s", e.Now())
	}
}

func TestEngineStopAbortsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(time.Hour)
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestEngineStepSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.At(time.Second, func() { t.Fatal("cancelled fired") })
	fired := false
	e.At(2*time.Second, func() { fired = true })
	ev.Cancel()
	if !e.Step() {
		t.Fatal("Step returned false with a live event pending")
	}
	if !fired {
		t.Fatal("live event did not fire")
	}
	if e.Step() {
		t.Fatal("Step returned true on empty queue")
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime reported an event on an empty queue")
	}
	e.At(3*time.Second, func() {})
	at, ok := e.NextEventTime()
	if !ok || at != 3*time.Second {
		t.Fatalf("NextEventTime = %v, %v", at, ok)
	}
}

func TestTickerPeriodicFiring(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	tk := e.NewTicker(time.Second, func() { times = append(times, e.Now()) })
	e.Run(3500 * time.Millisecond)
	tk.Stop()
	e.Run(10 * time.Second)
	if len(times) != 3 {
		t.Fatalf("ticker fired %d times, want 3: %v", len(times), times)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if times[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestTickerSetPeriod(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	tk := e.NewTicker(time.Second, func() { times = append(times, e.Now()) })
	e.Run(2500 * time.Millisecond) // ticks at 1s, 2s
	tk.SetPeriod(5 * time.Second)  // next tick 2.5+5 = 7.5s
	e.Run(8 * time.Second)
	tk.Stop()
	if len(times) != 3 {
		t.Fatalf("got ticks %v", times)
	}
	if times[2] != 7500*time.Millisecond {
		t.Fatalf("rescheduled tick at %v, want 7.5s", times[2])
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(time.Second, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run(time.Minute)
	if count != 2 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 2", count)
	}
}

func TestTickerInvalidPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	e.NewTicker(0, func() {})
}

func TestProcessedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunUntilIdle()
	if e.Processed != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed)
	}
}

func TestEventNodeRecycling(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.After(time.Millisecond, func() {})
		e.RunUntilIdle()
	}
	if e.Recycled < 99 {
		t.Fatalf("Recycled = %d, want >= 99 (free list not reusing nodes)", e.Recycled)
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine()
	tm := e.At(time.Second, func() { t.Fatal("cancelled event fired") })
	e.At(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	tm.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after Cancel, want 1 (eager removal)", e.Pending())
	}
	if tm.Pending() {
		t.Fatal("timer still pending after Cancel")
	}
	e.RunUntilIdle()
}

func TestStaleTimerCancelIsSafe(t *testing.T) {
	e := NewEngine()
	fired := 0
	// Fire and recycle the first node...
	stale := e.At(time.Millisecond, func() { fired++ })
	e.RunUntilIdle()
	// ...then schedule a new event, which reuses the node.
	e.At(2*time.Millisecond, func() { fired++ })
	if e.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", e.Recycled)
	}
	// Cancelling the stale handle must not cancel the node's new occupant.
	stale.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("stale Cancel removed the new event (pending = %d)", e.Pending())
	}
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	e := NewEngine()
	var order []int
	timers := make([]Timer, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers = append(timers, e.At(time.Duration(i+1)*time.Second, func() { order = append(order, i) }))
	}
	// Cancel a scattering of events, including the heap top.
	for _, idx := range []int{0, 3, 7, 9} {
		timers[idx].Cancel()
	}
	e.RunUntilIdle()
	want := []int{1, 2, 4, 5, 6, 8}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestTimerPendingLifecycle(t *testing.T) {
	e := NewEngine()
	tm := e.At(time.Second, func() {})
	if !tm.Pending() {
		t.Fatal("fresh timer not pending")
	}
	if tm.Time() != time.Second {
		t.Fatalf("Time() = %v, want 1s", tm.Time())
	}
	e.RunUntilIdle()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancelled() {
		t.Fatal("fired timer reports cancelled")
	}
	tm.Cancel() // no-op after firing
	if !tm.Cancelled() {
		t.Fatal("Cancelled() false after explicit Cancel")
	}
}

// BenchmarkEngineScheduleFire measures the steady-state At→fire cycle; with
// the free list it should run allocation-free.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}
