package simtime

import "math/rand"

// Rand is a deterministic random source for simulations. It wraps math/rand
// with helpers used throughout the workload and traffic generators, and it
// supports deriving independent sub-streams so that adding a consumer does
// not perturb the draws seen by existing consumers (critical for the paper's
// "same order across algorithms" fairness requirement).
type Rand struct {
	seed int64
	rng  *rand.Rand
}

// NewRand returns a source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this source was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Stream derives an independent sub-stream identified by name. The same
// (seed, name) pair always yields the same stream.
func (r *Rand) Stream(name string) *Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return NewRand(r.seed ^ h)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 { return r.rng.Int63n(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + (hi-lo)*r.rng.Float64()
}

// UniformInt returns a uniform int in [lo, hi] inclusive.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.rng.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.rng.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Pick returns a uniformly chosen element of xs. It panics on an empty slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// PickN returns n distinct uniformly chosen elements of xs (n <= len(xs)).
func PickN[T any](r *Rand, xs []T, n int) []T {
	idx := r.Perm(len(xs))[:n]
	out := make([]T, n)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
