package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministicForSeed(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	base := NewRand(1)
	s1 := base.Stream("alpha")
	s2 := base.Stream("beta")
	// Streams must differ from each other.
	same := 0
	for i := 0; i < 50; i++ {
		if s1.Intn(1<<20) == s2.Intn(1<<20) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams alpha/beta collide too often: %d/50", same)
	}
	// Same (seed, name) reproduces the same stream.
	r1 := NewRand(1).Stream("alpha")
	r2 := NewRand(1).Stream("alpha")
	for i := 0; i < 50; i++ {
		if r1.Intn(1<<20) != r2.Intn(1<<20) {
			t.Fatal("stream not reproducible")
		}
	}
}

func TestStreamDoesNotPerturbParent(t *testing.T) {
	a := NewRand(5)
	b := NewRand(5)
	_ = a.Stream("consumer") // deriving a stream must not draw from parent
	for i := 0; i < 20; i++ {
		if a.Intn(100) != b.Intn(100) {
			t.Fatal("deriving a stream perturbed the parent sequence")
		}
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRand(3)
	f := func(lo, hi float64) bool {
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if d := hi - lo; math.IsInf(d, 0) || math.IsInf(-d, 0) {
			return true // range wider than float64 can represent
		}
		v := r.Uniform(lo, hi)
		mn, mx := lo, hi
		if mx < mn {
			mn, mx = mx, mn
		}
		return v >= mn && (v < mx || mn == mx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformIntBoundsProperty(t *testing.T) {
	r := NewRand(4)
	f := func(a, b int16) bool {
		lo, hi := int(a), int(b)
		v := r.UniformInt(lo, hi)
		mn, mx := lo, hi
		if mx < mn {
			mn, mx = mx, mn
		}
		return v >= mn && v <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(6)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("exponential mean %v, want ≈5", mean)
	}
}

func TestPickAndPickN(t *testing.T) {
	r := NewRand(7)
	xs := []string{"a", "b", "c", "d"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick never chose some elements: %v", seen)
	}
	picked := PickN(r, xs, 2)
	if len(picked) != 2 || picked[0] == picked[1] {
		t.Fatalf("PickN returned %v", picked)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
