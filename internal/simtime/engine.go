// Package simtime implements the discrete-event simulation engine that
// underlies the network simulator. It provides a virtual clock, an event
// queue with deterministic ordering, and cancellable timers.
//
// All simulated components schedule work through an *Engine. Events that are
// scheduled for the same instant fire in the order they were scheduled, which
// makes every simulation run fully deterministic for a given seed.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending events.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index, -1 when not queued
	cancel bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	e.cancel = true
	e.fn = nil
}

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancel }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated activity runs on the goroutine that calls
// Run/Step.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool

	// Processed counts events that have fired, for instrumentation.
	Processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in a simulated component.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v, before now %v", t, e.now))
	}
	if fn == nil {
		panic("simtime: nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step fires the next pending event and advances the clock to its time.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.Processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until are executed. It returns the
// number of events fired.
func (e *Engine) Run(until time.Duration) uint64 {
	e.stopped = false
	start := e.Processed
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > until {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < until {
		// Advance the clock even if the queue drained early so that
		// successive Run calls observe monotonic time.
		e.now = until
	}
	return e.Processed - start
}

// RunUntilIdle executes events until the queue is empty, leaving the clock
// at the last event's time. Use with care: a self-rescheduling component
// (e.g. a periodic prober) keeps the queue non-empty forever; prefer Run
// with a horizon in that case.
func (e *Engine) RunUntilIdle() uint64 {
	e.stopped = false
	start := e.Processed
	for !e.stopped && e.Step() {
	}
	return e.Processed - start
}

// Stop aborts a Run in progress after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].cancel {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// NextEventTime returns the firing time of the next pending event and true,
// or zero and false when the queue is empty.
func (e *Engine) NextEventTime() (time.Duration, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Ticker repeatedly invokes fn every period until cancelled. The first tick
// fires one period from now.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	next    *Event
	stopped bool
}

// NewTicker schedules fn every period. period must be positive.
func (e *Engine) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.next = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}

// SetPeriod changes the tick period for subsequent ticks. The currently
// pending tick is rescheduled from now using the new period.
func (t *Ticker) SetPeriod(period time.Duration) {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	if t.stopped {
		t.period = period
		return
	}
	if t.next != nil {
		t.next.Cancel()
	}
	t.period = period
	t.schedule()
}
