// Package simtime implements the discrete-event simulation engine that
// underlies the network simulator. It provides a virtual clock, an event
// queue with deterministic ordering, and cancellable timers.
//
// All simulated components schedule work through an *Engine. Events that are
// scheduled for the same instant fire in the order they were scheduled, which
// makes every simulation run fully deterministic for a given seed.
//
// Event nodes are recycled through a per-engine free list: firing or
// cancelling an event returns its node for reuse by a later At/After call, so
// steady-state scheduling (packet transmissions, tickers, timers) allocates
// nothing. Timers are generation-checked handles, so holding a Timer past its
// event's lifetime stays safe even though the underlying node is reused.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// event is a scheduled callback: one node of the event heap. Nodes are owned
// by the engine and recycled via its free list; external code only sees them
// through generation-checked Timer handles.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// index is the heap index, -1 when not queued.
	index int
	// gen increments every time the node is released (fired or cancelled),
	// invalidating any Timer handed out for a previous occupancy.
	gen uint64
	// nextFree links released nodes into the engine's free list.
	nextFree *event
}

// Timer is a cancellable handle to a scheduled event. The zero value is a
// valid, already-inert timer. Timers are generation-checked: cancelling a
// timer whose event has already fired (and whose node may since have been
// recycled for an unrelated event) is a safe no-op.
type Timer struct {
	eng       *Engine
	ev        *event
	gen       uint64
	at        time.Duration
	cancelled bool
}

// Time returns the virtual time at which the event fires (or fired).
func (t *Timer) Time() time.Duration { return t.at }

// Cancel prevents a pending event from firing, removing it from the queue
// immediately so long-lived tickers and retransmission timers don't strand
// cancelled garbage in the heap. Cancelling an event that has already fired
// (or was already cancelled) is a no-op.
func (t *Timer) Cancel() {
	t.cancelled = true
	if t.eng == nil || t.ev == nil || t.ev.gen != t.gen {
		return
	}
	ev := t.ev
	t.ev = nil
	heap.Remove(&t.eng.queue, ev.index)
	t.eng.release(ev)
}

// Cancelled reports whether Cancel has been called on this handle.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Pending reports whether the event is still waiting to fire.
func (t *Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated activity runs on the goroutine that calls
// Run/Step. Independent engines share no state, so separate simulations can
// run on separate goroutines (see experiment.Pool).
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	free    *event

	// Processed counts events that have fired, for instrumentation.
	Processed uint64
	// Recycled counts event nodes reused from the free list instead of
	// freshly allocated (allocation diagnostics).
	Recycled uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// release returns a node to the free list, invalidating outstanding Timers.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.nextFree = e.free
	e.free = ev
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in a simulated component.
// The returned Timer is a value, not a pointer: callers that discard it pay
// no allocation, and the whole At→fire cycle reuses free-listed nodes.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v, before now %v", t, e.now))
	}
	if fn == nil {
		panic("simtime: nil event function")
	}
	ev := e.free
	if ev != nil {
		e.free = ev.nextFree
		ev.nextFree = nil
		e.Recycled++
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.index = t, e.seq, fn, -1
	e.seq++
	heap.Push(&e.queue, ev)
	return Timer{eng: e, ev: ev, gen: ev.gen, at: t}
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// fire pops the head event, advances the clock, and runs the callback. The
// caller must ensure the queue is non-empty. The node is released before the
// callback runs so the callback's own scheduling can reuse it.
func (e *Engine) fire() {
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	fn := ev.fn
	e.release(ev)
	e.Processed++
	fn()
}

// Step fires the next pending event and advances the clock to its time.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.fire()
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until are executed. It returns the
// number of events fired.
func (e *Engine) Run(until time.Duration) uint64 {
	e.stopped = false
	start := e.Processed
	for !e.stopped && len(e.queue) > 0 {
		// Cancelled events are removed eagerly, so the heap head is always
		// live: one peek plus one pop per fired event, no second traversal.
		if e.queue[0].at > until {
			break
		}
		e.fire()
	}
	if !e.stopped && e.now < until {
		// Advance the clock even if the queue drained early so that
		// successive Run calls observe monotonic time.
		e.now = until
	}
	return e.Processed - start
}

// RunUntilIdle executes events until the queue is empty, leaving the clock
// at the last event's time. Use with care: a self-rescheduling component
// (e.g. a periodic prober) keeps the queue non-empty forever; prefer Run
// with a horizon in that case.
func (e *Engine) RunUntilIdle() uint64 {
	e.stopped = false
	start := e.Processed
	for !e.stopped && e.Step() {
	}
	return e.Processed - start
}

// Stop aborts a Run in progress after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// NextEventTime returns the firing time of the next pending event and true,
// or zero and false when the queue is empty.
func (e *Engine) NextEventTime() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Ticker repeatedly invokes fn every period until cancelled. The first tick
// fires one period from now.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	next    Timer
	stopped bool
}

// NewTicker schedules fn every period. period must be positive.
func (e *Engine) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.next = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.next.Cancel()
}

// SetPeriod changes the tick period for subsequent ticks. The currently
// pending tick is rescheduled from now using the new period.
func (t *Ticker) SetPeriod(period time.Duration) {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	if t.stopped {
		t.period = period
		return
	}
	t.next.Cancel()
	t.period = period
	t.schedule()
}
